// Package core is the library's front door: the paper's average-complexity
// measure as a first-class API. It evaluates a LOCAL algorithm on an
// instance and reports BOTH running-time measures side by side —
//
//	classic:  max_G max_v r(v)
//	average:  max_G (Σ_v r(v))/n        (this paper's contribution)
//
// — together with worst-case/expectation aggregation over identifier
// permutations and multi-algorithm comparisons. The heavy lifting lives in
// internal/local (engines), internal/algorithms (the paper's algorithms)
// and internal/measure (statistics); core wires them into the workflows
// the examples and experiments repeat.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/problems"
)

// Evaluation is the outcome of one run: both measures plus the underlying
// radius statistics, with the outputs verified when a Problem is supplied.
type Evaluation struct {
	// Algorithm names the evaluated algorithm.
	Algorithm string
	// Classic is the paper's baseline measure max_v r(v).
	Classic int
	// Average is the paper's new measure (Σ_v r(v))/n.
	Average float64
	// Stats carries the full radius distribution summary.
	Stats measure.Summary
	// Result is the raw execution (outputs and radii).
	Result *local.Result
}

// Evaluate runs alg on g under assignment a with the view engine and, when
// problem is non-nil, verifies the outputs before reporting measures: a
// measurement of an incorrect algorithm is rejected, not returned.
func Evaluate(g graph.Graph, a ids.Assignment, alg local.ViewAlgorithm, problem problems.Problem) (*Evaluation, error) {
	res, err := local.RunView(g, a, alg)
	if err != nil {
		return nil, err
	}
	if problem != nil {
		if err := problem.Verify(g, a, res.Outputs); err != nil {
			return nil, fmt.Errorf("core: %s output rejected: %w", alg.Name(), err)
		}
	}
	return &Evaluation{
		Algorithm: alg.Name(),
		Classic:   res.MaxRadius(),
		Average:   res.AvgRadius(),
		Stats:     measure.Summarize(res.Radii),
		Result:    res,
	}, nil
}

// Separation quantifies how far the two measures diverge on an evaluation:
// classic/average. The paper's "first type" problems have separation
// growing with n; "second type" problems keep it Θ(1).
func (e *Evaluation) Separation() float64 {
	if e.Average == 0 {
		if e.Classic == 0 {
			return 1
		}
		return float64(e.Classic)
	}
	return float64(e.Classic) / e.Average
}

// SweepPoint aggregates one instance size over sampled permutations.
type SweepPoint struct {
	N int
	measure.Aggregate
}

// Sweep evaluates alg on cycles of each size, sampling `trials` uniformly
// random identifier permutations per size from rng, verifying every run
// against problem (when non-nil). It is the common skeleton of the paper's
// experiments: the WorstAvg column estimates the paper's measure, MeanAvg
// its further-work expectation variant.
func Sweep(sizes []int, trials int, alg local.ViewAlgorithm, problem problems.Problem, rng *rand.Rand) ([]SweepPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", trials)
	}
	out := make([]SweepPoint, 0, len(sizes))
	for _, n := range sizes {
		c, err := graph.NewCycle(n)
		if err != nil {
			return nil, err
		}
		summaries := make([]measure.Summary, 0, trials)
		for t := 0; t < trials; t++ {
			ev, err := Evaluate(c, ids.Random(n, rng), alg, problem)
			if err != nil {
				return nil, fmt.Errorf("core: sweep n=%d trial %d: %w", n, t, err)
			}
			summaries = append(summaries, ev.Stats)
		}
		out = append(out, SweepPoint{N: n, Aggregate: measure.NewAggregate(summaries)})
	}
	return out, nil
}

// Comparison pairs two algorithms' evaluations on the same instance.
type Comparison struct {
	A, B *Evaluation
}

// Compare evaluates two algorithms on one shared instance — e.g. the
// pruning algorithm against the full-view baseline, or Cole-Vishkin
// against the uniform variant.
func Compare(g graph.Graph, a ids.Assignment, algA, algB local.ViewAlgorithm, problem problems.Problem) (*Comparison, error) {
	evA, err := Evaluate(g, a, algA, problem)
	if err != nil {
		return nil, err
	}
	evB, err := Evaluate(g, a, algB, problem)
	if err != nil {
		return nil, err
	}
	return &Comparison{A: evA, B: evB}, nil
}

// String renders the comparison compactly.
func (c *Comparison) String() string {
	return fmt.Sprintf("%s: max=%d avg=%.3f | %s: max=%d avg=%.3f",
		c.A.Algorithm, c.A.Classic, c.A.Average,
		c.B.Algorithm, c.B.Classic, c.B.Average)
}
