package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestEvaluateReportsBothMeasures(t *testing.T) {
	c := graph.MustCycle(64)
	a := ids.Random(64, rand.New(rand.NewSource(1)))
	ev, err := Evaluate(c, a, largestid.Pruning{}, problems.LargestID{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.Classic != 32 {
		t.Errorf("Classic = %d, want 32", ev.Classic)
	}
	if ev.Average <= 0 || ev.Average >= float64(ev.Classic) {
		t.Errorf("Average = %v outside (0, classic)", ev.Average)
	}
	if ev.Stats.Max != ev.Classic {
		t.Errorf("Stats.Max %d != Classic %d", ev.Stats.Max, ev.Classic)
	}
	if ev.Separation() <= 1 {
		t.Errorf("Separation = %v, want > 1 for largest ID", ev.Separation())
	}
}

func TestEvaluateRejectsWrongOutputs(t *testing.T) {
	c := graph.MustCycle(8)
	a := ids.Identity(8)
	// A colouring algorithm verified against the wrong problem must fail.
	if _, err := Evaluate(c, a, coloring.ForMaxID(7), problems.LargestID{}); err == nil {
		t.Fatal("colouring passed largest-ID verification")
	}
}

func TestEvaluateNilProblemSkipsVerification(t *testing.T) {
	c := graph.MustCycle(8)
	a := ids.Identity(8)
	if _, err := Evaluate(c, a, coloring.ForMaxID(7), nil); err != nil {
		t.Fatalf("Evaluate without problem: %v", err)
	}
}

func TestSeparationEdgeCases(t *testing.T) {
	zero := &Evaluation{Classic: 0, Average: 0}
	if zero.Separation() != 1 {
		t.Errorf("0/0 separation = %v, want 1", zero.Separation())
	}
	onlyMax := &Evaluation{Classic: 5, Average: 0}
	if onlyMax.Separation() != 5 {
		t.Errorf("5/0 separation = %v, want 5", onlyMax.Separation())
	}
}

func TestSweepShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, err := Sweep([]int{16, 64, 256}, 3, largestid.Pruning{}, problems.LargestID{}, rng)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for i, p := range points {
		if p.WorstMax != p.N/2 {
			t.Errorf("n=%d: WorstMax = %d, want %d", p.N, p.WorstMax, p.N/2)
		}
		if i > 0 && p.MeanAvg <= points[i-1].MeanAvg {
			t.Errorf("MeanAvg not increasing at n=%d", p.N)
		}
	}
	// The separation must widen: classic grows linearly, average stays log.
	first := float64(points[0].WorstMax) / points[0].WorstAvg
	last := float64(points[2].WorstMax) / points[2].WorstAvg
	if last <= first {
		t.Errorf("separation did not widen: %v -> %v", first, last)
	}
}

func TestSweepErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Sweep([]int{16}, 0, largestid.Pruning{}, nil, rng); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := Sweep([]int{2}, 1, largestid.Pruning{}, nil, rng); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestCompare(t *testing.T) {
	c := graph.MustCycle(32)
	a := ids.Random(32, rand.New(rand.NewSource(4)))
	cmp, err := Compare(c, a, largestid.Pruning{}, largestid.FullView{}, problems.LargestID{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if cmp.A.Average >= cmp.B.Average {
		t.Errorf("pruning avg %v not below fullview avg %v", cmp.A.Average, cmp.B.Average)
	}
	if cmp.A.Classic != cmp.B.Classic {
		t.Errorf("both should have classic n/2: %d vs %d", cmp.A.Classic, cmp.B.Classic)
	}
	s := cmp.String()
	if !strings.Contains(s, "pruning") || !strings.Contains(s, "fullview") {
		t.Errorf("String() = %q missing algorithm names", s)
	}
}

func TestCompareSurfacesFailures(t *testing.T) {
	c := graph.MustCycle(8)
	a := ids.Identity(8)
	if _, err := Compare(c, a, largestid.Pruning{}, badAlg{}, problems.LargestID{}); err == nil {
		t.Error("broken second algorithm accepted")
	}
}

// badAlg answers Yes everywhere — an invalid largest-ID solver.
type badAlg struct{}

func (badAlg) Name() string                  { return "bad" }
func (badAlg) Decide(local.View) (int, bool) { return problems.Yes, true }
