package core_test

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/problems"
)

// ExampleEvaluate measures the paper's two complexities of the pruning
// algorithm on one instance.
func ExampleEvaluate() {
	ring := graph.MustCycle(16)
	assignment, err := ids.MaxAt(16, 0) // maximum identifier at vertex 0
	if err != nil {
		log.Fatal(err)
	}
	ev, err := core.Evaluate(ring, assignment, largestid.Pruning{}, problems.LargestID{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic max_v r(v) = %d\n", ev.Classic)
	fmt.Printf("average measure    = %.3f\n", ev.Average)
	// Output:
	// classic max_v r(v) = 8
	// average measure    = 1.438
}

// ExampleCompare contrasts the pruning algorithm with the full-view
// baseline on a shared instance.
func ExampleCompare() {
	ring := graph.MustCycle(12)
	assignment := ids.Random(12, rand.New(rand.NewSource(5)))
	cmp, err := core.Compare(ring, assignment,
		largestid.Pruning{}, largestid.FullView{}, problems.LargestID{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruning decides faster on average: %v\n", cmp.A.Average < cmp.B.Average)
	fmt.Printf("both pay the same worst case:      %v\n", cmp.A.Classic == cmp.B.Classic)
	// Output:
	// pruning decides faster on average: true
	// both pay the same worst case:      true
}

// ExampleSweep aggregates both measures over random permutations across
// sizes — the skeleton of the paper's experiments.
func ExampleSweep() {
	rng := rand.New(rand.NewSource(9))
	points, err := core.Sweep([]int{8, 64}, 4, largestid.Pruning{}, problems.LargestID{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("n=%-3d worst max=%d\n", p.N, p.WorstMax)
	}
	// Output:
	// n=8   worst max=4
	// n=64  worst max=32
}
