package analytic

import "testing"

func TestWorstSegmentPermAchievesRecurrence(t *testing.T) {
	a, err := Recurrence(256)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 2, 3, 4, 5, 8, 13, 32, 100, 256} {
		perm, err := WorstSegmentPerm(p)
		if err != nil {
			t.Fatalf("WorstSegmentPerm(%d): %v", p, err)
		}
		if len(perm) != p {
			t.Fatalf("p=%d: length %d", p, len(perm))
		}
		seen := make(map[int]bool, p)
		for _, id := range perm {
			if id < 0 || id >= p || seen[id] {
				t.Fatalf("p=%d: not a permutation: %v", p, perm)
			}
			seen[id] = true
		}
		sum := 0
		for _, r := range SegmentRadii(perm) {
			sum += r
		}
		if int64(sum) != a[p] {
			t.Errorf("p=%d: reconstructed sum %d, want a(p)=%d", p, sum, a[p])
		}
	}
}

func TestWorstSegmentPermRejectsNegative(t *testing.T) {
	if _, err := WorstSegmentPerm(-2); err == nil {
		t.Error("negative p accepted")
	}
}

func TestWorstCyclePermShape(t *testing.T) {
	perm, err := WorstCyclePerm(10)
	if err != nil {
		t.Fatalf("WorstCyclePerm: %v", err)
	}
	if perm[0] != 9 {
		t.Errorf("global max not at vertex 0: %v", perm)
	}
	seen := make(map[int]bool, 10)
	for _, id := range perm {
		if id < 0 || id >= 10 || seen[id] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[id] = true
	}
}

func TestWorstCycleSum(t *testing.T) {
	// n=5: a(4) + 2 = 5 + 2 = 7.
	got, err := WorstCycleSum(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("WorstCycleSum(5) = %d, want 7", got)
	}
	if _, err := WorstCycleSum(0); err == nil {
		t.Error("n=0 accepted")
	}
}
