package analytic

import "fmt"

// WorstSegmentPerm reconstructs, from the recurrence's argmax choices, a
// permutation of {0..p-1} whose segment radius sum achieves a(p) exactly.
// The construction mirrors the recurrence: place the segment's largest
// identifier at an optimal split position k, then solve the two
// sub-segments recursively (their identifier ranks can be assigned in
// blocks, since only relative order matters and the split vertex dominates
// both sides).
func WorstSegmentPerm(p int) ([]int, error) {
	if p < 0 {
		return nil, fmt.Errorf("analytic: negative segment length %d", p)
	}
	a, err := Recurrence(p)
	if err != nil {
		return nil, err
	}
	out := make([]int, p)
	var build func(lo, hi, rankLo int)
	build = func(lo, hi, rankLo int) {
		m := hi - lo
		if m <= 0 {
			return
		}
		if m == 1 {
			out[lo] = rankLo
			return
		}
		k := bestSplit(a, m)
		// Positions lo..lo+k-2 form the left sub-segment (k-1 vertices),
		// position lo+k-1 holds the block maximum, the rest is the right
		// sub-segment (m-k vertices).
		build(lo, lo+k-1, rankLo)
		out[lo+k-1] = rankLo + m - 1
		build(lo+k, hi, rankLo+k-1)
	}
	build(0, p, 0)
	return out, nil
}

// bestSplit returns the k achieving the recurrence maximum for length m.
func bestSplit(a []int64, m int) int {
	best, bestK := int64(-1), 1
	half := (m + 1) / 2
	for k := 1; k <= half; k++ {
		if v := int64(k) + a[k-1] + a[m-k]; v > best {
			best, bestK = v, k
		}
	}
	return bestK
}

// WorstCyclePerm builds the identifier assignment of an n-cycle achieving
// the worst-case radius sum of the §2 pruning algorithm exactly: the global
// maximum at vertex 0 (radius floor(n/2)) and the worst segment layout on
// the remaining n-1 vertices (radius sum a(n-1)).
func WorstCyclePerm(n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("analytic: need n >= 1, got %d", n)
	}
	seg, err := WorstSegmentPerm(n - 1)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	out[0] = n - 1
	copy(out[1:], seg)
	return out, nil
}

// WorstCycleSum returns the exact worst-case radius sum of the pruning
// algorithm on an n-cycle: a(n-1) + floor(n/2).
func WorstCycleSum(n int) (int64, error) {
	if n < 1 {
		return 0, fmt.Errorf("analytic: need n >= 1, got %d", n)
	}
	a, err := A000788(int64(n - 1))
	if err != nil {
		return 0, err
	}
	return a + int64(n/2), nil
}
