package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecurrenceSmallValues(t *testing.T) {
	// Hand-computed from the definition in §2.
	want := []int64{0, 1, 2, 4, 5, 7, 9, 12, 13}
	a, err := Recurrence(8)
	if err != nil {
		t.Fatalf("Recurrence: %v", err)
	}
	for p, w := range want {
		if a[p] != w {
			t.Errorf("a(%d) = %d, want %d", p, a[p], w)
		}
	}
}

func TestRecurrenceRejectsNegative(t *testing.T) {
	if _, err := Recurrence(-1); err == nil {
		t.Error("negative p accepted")
	}
}

func TestA000788KnownPrefix(t *testing.T) {
	// OEIS A000788: 0, 1, 2, 4, 5, 7, 9, 12, 13, 15, 17, 20, 22, 25, 28, 32.
	want := []int64{0, 1, 2, 4, 5, 7, 9, 12, 13, 15, 17, 20, 22, 25, 28, 32}
	for n, w := range want {
		got, err := A000788(int64(n))
		if err != nil {
			t.Fatalf("A000788(%d): %v", n, err)
		}
		if got != w {
			t.Errorf("A000788(%d) = %d, want %d", n, got, w)
		}
	}
	if _, err := A000788(-1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestA000788MatchesNaiveSum(t *testing.T) {
	var running int64
	for n := int64(0); n <= 4096; n++ {
		running += BitSum(n)
		got, err := A000788(n)
		if err != nil {
			t.Fatalf("A000788(%d): %v", n, err)
		}
		if got != running {
			t.Fatalf("A000788(%d) = %d, naive sum = %d", n, got, running)
		}
	}
}

// TestRecurrenceEqualsA000788 is the paper's pointer made exact: the
// segment recurrence IS the OEIS sequence, term by term.
func TestRecurrenceEqualsA000788(t *testing.T) {
	const p = 1 << 15
	a, err := Recurrence(p)
	if err != nil {
		t.Fatalf("Recurrence: %v", err)
	}
	for m := 0; m <= p; m += 7 { // sampled; the full check runs in the bench
		want, err := A000788(int64(m))
		if err != nil {
			t.Fatal(err)
		}
		if a[m] != want {
			t.Fatalf("a(%d) = %d, A000788 = %d", m, a[m], want)
		}
	}
}

// TestRecurrenceIsThetaNLogN checks the paper's growth claim: a(n)/(n ln n)
// stays within constant bounds.
func TestRecurrenceIsThetaNLogN(t *testing.T) {
	a, err := Recurrence(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		ratio := float64(a[p]) / NLogN(p)
		// a(n) ~ n log2(n)/2 = n ln n / (2 ln 2) ~ 0.72 n ln n.
		if ratio < 0.4 || ratio > 1.1 {
			t.Errorf("a(%d)/(n ln n) = %v outside [0.4, 1.1]", p, ratio)
		}
	}
}

// TestRecurrenceMatchesBruteForce maximises the radius sum over every
// permutation of small segments, confirming that the DP captures exactly
// the worst case of the §2 segment model.
func TestRecurrenceMatchesBruteForce(t *testing.T) {
	a, err := Recurrence(8)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 8; p++ {
		best := 0
		perm := make([]int, p)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == p {
				sum := 0
				for _, r := range SegmentRadii(perm) {
					sum += r
				}
				if sum > best {
					best = sum
				}
				return
			}
			for i := k; i < p; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if int64(best) != a[p] {
			t.Errorf("brute force max for p=%d is %d, recurrence says %d", p, best, a[p])
		}
	}
}

func TestSegmentRadiiExamples(t *testing.T) {
	tests := []struct {
		ids  []int
		want []int
	}{
		{[]int{0}, []int{1}},
		{[]int{0, 1}, []int{1, 1}}, // the max sits at the right end: exits at d=1
		{[]int{1, 0}, []int{1, 1}},
		{[]int{2, 0, 1}, []int{1, 1, 1}},
		{[]int{0, 2, 1}, []int{1, 2, 1}}, // centre max needs d=2 to exit
		// Increasing layout: everyone sees a bigger ID or an end at d=1.
		{[]int{0, 1, 2, 3}, []int{1, 1, 1, 1}},
		// Worst case for p=3 (a(3)=4): max in the middle.
		{[]int{1, 2, 0}, []int{1, 2, 1}},
	}
	for _, tt := range tests {
		got := SegmentRadii(tt.ids)
		for j := range tt.want {
			if got[j] != tt.want[j] {
				t.Errorf("SegmentRadii(%v) = %v, want %v", tt.ids, got, tt.want)
				break
			}
		}
	}
}

func TestSegmentRadiiSumNeverExceedsRecurrence(t *testing.T) {
	a, err := Recurrence(64)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := newDeterministicPerm(seed, 40)
		sum := 0
		for _, r := range SegmentRadii(rng) {
			sum += r
		}
		return int64(sum) <= a[40]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("a(p) is not an upper bound: %v", err)
	}
}

// newDeterministicPerm builds a permutation of 0..n-1 from a seed without
// math/rand, keeping the property test hermetic.
func newDeterministicPerm(seed int64, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		state = state*2862933555777941757 + 3037000493
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

func TestLogStar(t *testing.T) {
	tests := []struct {
		n    float64
		want int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{4, 2},
		{16, 3},
		{65536, 4},
		{1e18, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%v) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(0) != 0 {
		t.Error("H_0 != 0")
	}
	if Harmonic(1) != 1 {
		t.Error("H_1 != 1")
	}
	if math.Abs(Harmonic(2)-1.5) > 1e-12 {
		t.Error("H_2 != 1.5")
	}
	// H_n ~ ln n + gamma.
	const gamma = 0.5772156649015329
	if math.Abs(Harmonic(100000)-(math.Log(100000)+gamma)) > 1e-4 {
		t.Errorf("H_100000 = %v far from ln n + gamma", Harmonic(100000))
	}
}

func TestNLogN(t *testing.T) {
	if NLogN(0) != 0 || NLogN(-5) != 0 {
		t.Error("NLogN of non-positive should be 0")
	}
	if math.Abs(NLogN(8)-8*math.Log(8)) > 1e-12 {
		t.Error("NLogN(8) wrong")
	}
}

func TestBitSum(t *testing.T) {
	tests := []struct {
		v    int64
		want int64
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {255, 8}, {256, 1}, {-5, 0},
	}
	for _, tt := range tests {
		if got := BitSum(tt.v); got != tt.want {
			t.Errorf("BitSum(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}
