// Package analytic provides the number-theoretic companions of §2 and §3 of
// the paper: the exact recurrence a(p) bounding the worst-case sum of
// radii on a p-vertex segment, its OEIS A000788 closed form, the log*
// function from Linial's bound, and harmonic numbers for the
// random-permutation expectation.
package analytic

import (
	"fmt"
	"math"
	"math/bits"
)

// Recurrence computes a(0..p) by exact dynamic programming:
//
//	a(0) = 0,  a(1) = 1,
//	a(p) = max_{1 <= k <= ceil(p/2)} { k + a(k-1) + a(p-k) }
//
// — §2 of the paper: the maximum, over permutations of the identifiers, of
// the sum of radii in a segment with p vertices, where the segment's
// largest identifier sits at position k and contributes radius k, splitting
// the rest into independent sub-segments.
func Recurrence(p int) ([]int64, error) {
	if p < 0 {
		return nil, fmt.Errorf("analytic: negative segment length %d", p)
	}
	a := make([]int64, p+1)
	if p >= 1 {
		a[1] = 1
	}
	for m := 2; m <= p; m++ {
		best := int64(0)
		half := (m + 1) / 2
		for k := 1; k <= half; k++ {
			if v := int64(k) + a[k-1] + a[m-k]; v > best {
				best = v
			}
		}
		a[m] = best
	}
	return a, nil
}

// BitSum returns the number of 1 bits in the binary expansion of v.
func BitSum(v int64) int64 {
	if v < 0 {
		return 0
	}
	return int64(bits.OnesCount64(uint64(v)))
}

// A000788 returns the total number of 1 bits in the binary expansions of
// 0..n — the OEIS sequence the paper points at for a(n) — computed by the
// classic digit-DP closed form in O(log n).
//
// For each bit position b with block size 2^(b+1): full blocks contribute
// 2^b ones each, and the partial block contributes max(0, rem - 2^b).
func A000788(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("analytic: A000788 of negative %d", n)
	}
	m := n + 1 // count over 0..n = the first m non-negative integers
	var total int64
	for b := 0; int64(1)<<uint(b) <= n; b++ {
		block := int64(1) << uint(b+1)
		half := int64(1) << uint(b)
		total += (m / block) * half
		if rem := m % block; rem > half {
			total += rem - half
		}
	}
	return total, nil
}

// LogStar returns the iterated logarithm base 2: the number of times log2
// must be applied to n before the value drops to at most 1. LogStar(1) = 0,
// LogStar(2) = 1, LogStar(16) = 3, LogStar(65536) = 4.
func LogStar(n float64) int {
	if n <= 1 {
		return 0
	}
	count := 0
	for n > 1 {
		n = math.Log2(n)
		count++
	}
	return count
}

// Harmonic returns H_n = 1 + 1/2 + ... + 1/n; H_0 = 0. The expected radius
// of a uniformly random vertex under random identifiers is harmonic-like,
// which experiment E6 checks.
func Harmonic(n int) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / float64(i)
	}
	return sum
}

// NLogN returns n·ln(n) (0 for n < 1), the reference curve for a(n).
func NLogN(n int) float64 {
	if n < 1 {
		return 0
	}
	return float64(n) * math.Log(float64(n))
}

// SegmentRadii computes, for a concrete identifier layout on a p-vertex
// segment, the radius the §2 model assigns to each position: the least d
// such that the window of radius d around the position either leaves the
// segment or contains a strictly larger identifier. This is the quantity
// whose permutation-maximal sum the recurrence a(p) captures, and the
// brute-force oracle the tests compare the DP against.
func SegmentRadii(segIDs []int) []int {
	p := len(segIDs)
	radii := make([]int, p)
	for j := range segIDs {
		d := 1
		for {
			// Leaving the segment on either side stops the search, as does
			// any strictly larger identifier within distance d.
			if j-d < 0 || j+d >= p {
				break
			}
			found := false
			for o := j - d; o <= j+d; o++ {
				if segIDs[o] > segIDs[j] {
					found = true
					break
				}
			}
			if found {
				break
			}
			d++
		}
		radii[j] = d
	}
	return radii
}
