package coloring

import (
	"fmt"

	"repro/internal/local"
)

// ColeVishkinMessage is the native round-based Cole-Vishkin: nodes exchange
// their current colours (O(log)-size messages, not full views) on an
// oriented ring. Rounds 1..k shrink colours along the clockwise direction;
// rounds k+1..k+3 run the classic 6-to-3 reduction; every node decides at
// round k+3 exactly — the message-engine twin of the ColeVishkin view
// algorithm, used to validate that the two formulations of the model agree
// beyond the generic gather adapter.
type ColeVishkinMessage struct {
	// IDBits is the identifier bit budget, as in ColeVishkin.
	IDBits int
}

var _ local.MessageAlgorithm = ColeVishkinMessage{}

// Name implements local.MessageAlgorithm.
func (cv ColeVishkinMessage) Name() string {
	return fmt.Sprintf("coloring/cvmessage(b=%d)", cv.IDBits)
}

// NewNode implements local.MessageAlgorithm; it assumes the oriented-ring
// port convention (port 0 = successor, port 1 = predecessor).
func (cv ColeVishkinMessage) NewNode(id, degree int) local.MessageNode {
	return &cvNode{
		colour: id,
		degree: degree,
		k:      iterationsToSix(cv.IDBits),
	}
}

type cvNode struct {
	colour int
	degree int
	k      int
	round  int

	decided bool
}

// Init sends the initial colour (the identifier) in both directions: the
// successor needs it for the shrink phase, both neighbours for reduction.
func (n *cvNode) Init() []any { return n.broadcast() }

// Round advances the synchronised schedule one step.
func (n *cvNode) Round(recv []any) []any {
	n.round++
	if n.degree >= 2 {
		switch {
		case n.round <= n.k:
			// Shrink: adopt cvStep against the predecessor's colour
			// (received through port 1, i.e. sent by the predecessor).
			if pred, ok := recv[1].(int); ok {
				n.colour = cvStep(n.colour, pred)
			}
		case n.round <= n.k+3:
			// Reduction sub-round for colour class 5, 4, 3.
			class := 5 - (n.round - n.k - 1)
			if n.colour == class {
				left, right := none, none
				if v, ok := recv[1].(int); ok {
					left = v
				}
				if v, ok := recv[0].(int); ok {
					right = v
				}
				n.colour = freeColour(left, right)
			}
		}
	}
	if n.round >= n.k+3 {
		n.decided = true
	}
	return n.broadcast()
}

// Output implements local.MessageNode.
func (n *cvNode) Output() (int, bool) { return n.colour, n.decided }

func (n *cvNode) broadcast() []any {
	msgs := make([]any, n.degree)
	for p := range msgs {
		msgs[p] = n.colour
	}
	return msgs
}
