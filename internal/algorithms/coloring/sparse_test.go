package coloring

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

// TestColeVishkinSparseIDSpace exercises the bit budget with identifiers
// far larger than n: the schedule must lengthen (log* of the space, not of
// n) and stay correct.
func TestColeVishkinSparseIDSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	const n = 128
	c := graph.MustCycle(n)
	for _, spaceBits := range []int{10, 20, 40, 60} {
		a, err := ids.RandomSparse(n, 1<<uint(spaceBits), rng)
		if err != nil {
			t.Fatalf("RandomSparse: %v", err)
		}
		alg := ForMaxID(a.MaxID())
		res, err := local.RunView(c, a, alg)
		if err != nil {
			t.Fatalf("bits=%d: RunView: %v", spaceBits, err)
		}
		if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
			t.Errorf("bits=%d: %v", spaceBits, err)
		}
		want := iterationsToSix(alg.IDBits) + 3
		if res.MaxRadius() != want {
			t.Errorf("bits=%d: radius %d, want %d", spaceBits, res.MaxRadius(), want)
		}
	}
}

// TestUniformSparseIDSpace drives the uniform algorithm into its later
// phases: identifiers around 2^40 defeat the 4-bit and 16-bit guesses, so
// vertices commit in phase 3 — and mixed-magnitude assignments mix phases
// maximally.
func TestUniformSparseIDSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n = 96
	c := graph.MustCycle(n)

	big, err := ids.RandomSparse(n, 1<<40, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.RunView(c, big, Uniform{})
	if err != nil {
		t.Fatalf("RunView big: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, big, res.Outputs); err != nil {
		t.Errorf("big IDs: %v", err)
	}

	// Mixed magnitudes: tiny IDs interleaved with huge ones.
	mixed := make(ids.Assignment, n)
	for v := range mixed {
		if v%2 == 0 {
			mixed[v] = v / 2 // 0..47: phase-0/1 eligible
		} else {
			mixed[v] = 1<<35 + v // enormous: phase 3
		}
	}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	res2, err := local.RunView(c, mixed, Uniform{})
	if err != nil {
		t.Fatalf("RunView mixed: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, mixed, res2.Outputs); err != nil {
		t.Errorf("mixed magnitudes: %v", err)
	}
}

// TestCVMessageSparse runs the native message CV with sparse identifiers.
func TestCVMessageSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const n = 64
	c := graph.MustCycle(n)
	a, err := ids.RandomSparse(n, 1<<30, rng)
	if err != nil {
		t.Fatal(err)
	}
	alg := ColeVishkinMessage{IDBits: ForMaxID(a.MaxID()).IDBits}
	res, err := local.RunMessage(c, a, alg)
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
		t.Errorf("sparse message CV: %v", err)
	}
}
