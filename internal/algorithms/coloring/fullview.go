package coloring

import (
	"sort"

	"repro/internal/local"
)

// FullViewGreedy is the linear-radius baseline colouring: every vertex
// waits until its view provably covers the whole graph, then all vertices
// compute the same canonical greedy colouring (process vertices in
// decreasing identifier order, assign the smallest colour unused by
// already-coloured neighbours). On graphs of maximum degree D it uses at
// most D+1 colours — 3 on cycles.
//
// Its radius is the closure radius for every vertex (Θ(n) on the cycle),
// for both measures: the baseline the adversary experiment (E5) compares
// against, and the "second type" of algorithm in the characterisation
// experiment (E7).
type FullViewGreedy struct{}

var _ local.ViewAlgorithm = FullViewGreedy{}

// Name implements local.ViewAlgorithm.
func (FullViewGreedy) Name() string { return "coloring/fullviewgreedy" }

// Decide waits for a complete view and returns the centre's greedy colour.
func (FullViewGreedy) Decide(v local.View) (int, bool) {
	if !v.Complete() {
		return 0, false
	}
	// Order all visible vertices by decreasing identifier; identifiers are
	// distinct, so the order — and hence the colouring — is identical at
	// every vertex.
	order := make([]int, v.Size())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return v.ID(order[a]) > v.ID(order[b]) })
	colours := make([]int, v.Size())
	for i := range colours {
		colours[i] = none
	}
	for _, i := range order {
		used := make(map[int]bool, v.DegreeWithin(i))
		for _, j := range v.Neighbors(i) {
			if colours[j] != none {
				used[colours[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colours[i] = c
	}
	return colours[0], true
}
