package coloring

import (
	"fmt"
	"math/bits"

	"repro/internal/local"
)

// cvStep performs one Cole-Vishkin colour-reduction step: find the lowest
// bit position i at which own and pred differ and recolour to 2i + own_i.
// The invariant "my colour differs from my predecessor's" is preserved:
// if two neighbours picked the same (i, b), the successor's bit i would
// both differ from and equal its predecessor's bit i.
func cvStep(own, pred int) int {
	diff := own ^ pred
	if diff == 0 {
		// Adjacent equal colours mean the distinct-ID precondition or the
		// bit budget was violated upstream: fail fast.
		panic("coloring: cvStep on equal colours")
	}
	i := bits.TrailingZeros(uint(diff))
	return 2*i + (own>>i)&1
}

// iterationsToSix returns the number of cvStep iterations needed to bring
// colours from the given bit budget strictly below 6: the log*-type
// quantity governing Cole-Vishkin's running time.
func iterationsToSix(bitBudget int) int {
	if bitBudget < 1 {
		return 0
	}
	k := 0
	maxVal := 1<<uint(bitBudget) - 1
	for maxVal >= 6 {
		length := bits.Len(uint(maxVal))
		maxVal = 2*(length-1) + 1
		k++
	}
	return k
}

// fixedEntry marks a cone entry whose colour is already final (committed in
// an earlier phase of the uniform algorithm): it constrains its neighbours
// but is never recoloured.
const fixedEntry = -2

// reduceCone simulates colour-class reduction sub-rounds on a colour cone
// centred at index c of cur and returns the centre's final colour. In the
// sub-round for class `classes[t]`, every position whose ORIGINAL colour is
// that class recolours to the smallest colour of {0,1,2} unused by its two
// neighbours' current colours. cur must extend len(classes) positions on
// each side of c. Entries equal to none impose no constraint and never
// change; fixedEntry originals never recolour but their values constrain.
//
// Sequential in-place updating equals the parallel semantics because two
// adjacent positions never share an original colour class (the 6-colouring
// is proper among committers).
func reduceCone(cur []int, c int, classes []int) int {
	return reduceConeWithOrig(cur, append([]int(nil), cur...), c, classes)
}

// reduceConeWithOrig is reduceCone with an explicit original-class slice,
// letting the uniform algorithm mark earlier-phase finals as fixedEntry
// (constraining but never recolouring).
func reduceConeWithOrig(cur, orig []int, c int, classes []int) int {
	r := len(classes)
	for t, colour := range classes {
		w := r - 1 - t
		for pos := c - w; pos <= c+w; pos++ {
			if orig[pos] != colour {
				continue
			}
			cur[pos] = freeColour(cur[pos-1], cur[pos+1])
		}
	}
	return cur[c]
}

// classicClasses is the textbook 6-to-3 schedule: only colours 5, 4, 3 need
// recolouring when the 6-colouring is globally proper.
var classicClasses = []int{5, 4, 3}

// allClasses recolours every committer once (in the sub-round of its
// original colour), which is what the uniform algorithm needs: a committer
// whose Cole-Vishkin colour already lies in {0,1,2} may still collide with
// a neighbour committed in an earlier phase and must re-pick.
var allClasses = []int{5, 4, 3, 2, 1, 0}

// reduceCircle runs the classic sub-rounds on a whole cycle of colours
// (modular indexing), returning the final colours.
func reduceCircle(cur []int, classes []int) []int {
	n := len(cur)
	out := append([]int(nil), cur...)
	orig := append([]int(nil), cur...)
	for _, colour := range classes {
		next := append([]int(nil), out...)
		for pos := 0; pos < n; pos++ {
			if orig[pos] != colour {
				continue
			}
			next[pos] = freeColour(out[(pos-1+n)%n], out[(pos+1)%n])
		}
		out = next
	}
	return out
}

// freeColour returns the smallest colour in {0,1,2} unused by the two
// neighbour constraints (either may be none).
func freeColour(left, right int) int {
	for c := 0; c < 3; c++ {
		if c != left && c != right {
			return c
		}
	}
	// Unreachable: two constraints cannot block three colours.
	panic("coloring: no free colour among three")
}

// ColeVishkin is the classic synchronised 3-colouring of an oriented ring.
// Every vertex decides at radius k+3 where k = iterationsToSix(IDBits) —
// identical for all vertices, so the average and the maximum radius
// coincide, matching the paper's observation that Cole-Vishkin is already
// optimal for the average measure (Theorem 1 shows Ω(log* n) is unavoidable
// on average).
//
// IDBits is the identifier bit budget the schedule is derived from; every
// identifier in the execution must fit in it. Use NewColeVishkin to bind it
// to an instance.
type ColeVishkin struct {
	// IDBits is the number of bits identifiers are promised to fit in.
	IDBits int
}

var _ local.ViewAlgorithm = ColeVishkin{}

// NewColeVishkin returns a ColeVishkin schedule for identifiers < 2^bits.
func NewColeVishkin(bitBudget int) ColeVishkin {
	return ColeVishkin{IDBits: bitBudget}
}

// ForMaxID returns the schedule for instances whose largest identifier is
// maxID (the standard "IDs fit in ceil(log2 n) bits" assumption).
func ForMaxID(maxID int) ColeVishkin {
	if maxID < 1 {
		return ColeVishkin{IDBits: 1}
	}
	return ColeVishkin{IDBits: bits.Len(uint(maxID))}
}

// Name implements local.ViewAlgorithm.
func (cv ColeVishkin) Name() string {
	return fmt.Sprintf("coloring/colevishkin(b=%d)", cv.IDBits)
}

// Decide simulates the full synchronised schedule (k Cole-Vishkin
// iterations, then the 6-to-3 reduction) on the visible segment. It commits
// once the view either covers the whole ring or spans the k+3 dependency
// cone of the centre's final colour.
func (cv ColeVishkin) Decide(v local.View) (int, bool) {
	k := iterationsToSix(cv.IDBits)
	need := k + 3
	if v.Radius() < need && !v.Closed(2) {
		return 0, false
	}
	seg := extractSegment(v)
	if seg.closed {
		return cv.colourClosed(seg), true
	}
	return cv.colourSegment(seg, k), true
}

// colourSegment computes the centre's final colour from an open segment
// spanning [centre-(k+3), centre+3].
func (cv ColeVishkin) colourSegment(seg segment, k int) int {
	// cur[j] is the colour of position centre-3+j; the CV chain for each of
	// the 7 cone positions consumes its k predecessors.
	cone := make([]int, 7)
	for j := range cone {
		offset := j - 3
		cone[j] = cv.chainColour(seg, offset, k)
	}
	return reduceCone(cone, 3, classicClasses)
}

// chainColour computes the centre-relative position's colour after k
// Cole-Vishkin iterations, consuming its k predecessors within the segment.
func (cv ColeVishkin) chainColour(seg segment, offset, k int) int {
	chain := make([]int, k+1)
	for i := range chain {
		id, ok := seg.id(offset - k + i)
		if !ok {
			// Decide only calls this with a sufficient span; reaching this
			// branch is an engine/algorithm contract violation.
			panic("coloring: segment too short for Cole-Vishkin chain")
		}
		chain[i] = id
	}
	for it := 0; it < k; it++ {
		next := make([]int, len(chain)-1)
		for i := 1; i < len(chain); i++ {
			next[i-1] = cvStep(chain[i], chain[i-1])
		}
		chain = next
	}
	return chain[0]
}

// colourClosed runs the synchronised schedule on the entire (small) ring.
func (cv ColeVishkin) colourClosed(seg segment) int {
	n := len(seg.ids)
	colours := append([]int(nil), seg.ids...)
	k := iterationsToSix(cv.IDBits)
	for it := 0; it < k; it++ {
		next := make([]int, n)
		for pos := 0; pos < n; pos++ {
			next[pos] = cvStep(colours[pos], colours[(pos-1+n)%n])
		}
		colours = next
	}
	final := reduceCircle(colours, classicClasses)
	return final[seg.center]
}
