// Package coloring implements the 3-colouring algorithms of §3 of the
// paper on consistently oriented rings:
//
//   - ColeVishkin: the classic synchronised algorithm [Cole-Vishkin 1986],
//     parameterised by the identifier bit budget, deciding at the same
//     O(log* of the ID space) radius at every vertex;
//   - Uniform: a pruned variant that needs no global knowledge at all
//     (neither n nor the ID space), committing vertices in phases of
//     doubly-exponentially growing bit guesses — the spirit of [2][4] in
//     the paper's references;
//   - FullViewGreedy: the linear-radius baseline that waits for a complete
//     view and colours greedily in decreasing-ID order.
package coloring

import "repro/internal/local"

// segment is the part of an oriented ring a view reveals: identifiers laid
// out in successor (clockwise) order. When closed is true the ids slice is
// the entire cycle and indexing is modular; otherwise ids[center] is the
// viewing vertex and the slice spans [center-left .. center+right].
type segment struct {
	ids    []int
	center int
	closed bool
}

// none is the sentinel for "no colour constraint" in reduction cones.
const none = -1

// extractSegment reads the oriented ID sequence out of a view on a ring.
// It relies on the OrientedRing port convention (port 0 = successor,
// port 1 = predecessor): every interior vertex of the view exposes its full
// port-ordered adjacency row, so the walk follows row[0] forward and row[1]
// backward until it hits the frontier or wraps around.
func extractSegment(v local.View) segment {
	// Walk the successor chain.
	var forward []int
	cur := 0
	for {
		row := v.Neighbors(cur)
		if len(row) < 2 {
			break // frontier vertex: cannot tell its ports apart, stop before it
		}
		next := row[0]
		if next == 0 {
			// Wrapped: the view covers the whole ring.
			ids := make([]int, 0, len(forward)+1)
			ids = append(ids, v.CenterID())
			for _, i := range forward {
				ids = append(ids, v.ID(i))
			}
			return segment{ids: ids, center: 0, closed: true}
		}
		forward = append(forward, next)
		cur = next
	}
	// Walk the predecessor chain.
	var backward []int
	cur = 0
	for {
		row := v.Neighbors(cur)
		if len(row) < 2 {
			break
		}
		prev := row[1]
		backward = append(backward, prev)
		cur = prev
	}
	ids := make([]int, 0, len(backward)+1+len(forward))
	for i := len(backward) - 1; i >= 0; i-- {
		ids = append(ids, v.ID(backward[i]))
	}
	center := len(ids)
	ids = append(ids, v.CenterID())
	for _, i := range forward {
		ids = append(ids, v.ID(i))
	}
	return segment{ids: ids, center: center}
}

// id returns the identifier at the given offset from the segment centre,
// reporting false when the position lies outside the visible range.
func (s segment) id(offset int) (int, bool) {
	if s.closed {
		n := len(s.ids)
		return s.ids[((s.center+offset)%n+n)%n], true
	}
	pos := s.center + offset
	if pos < 0 || pos >= len(s.ids) {
		return 0, false
	}
	return s.ids[pos], true
}

// span reports how far the segment extends to the left and right of the
// centre (both are n-1 when closed, which over-covers harmlessly).
func (s segment) span() (left, right int) {
	if s.closed {
		return len(s.ids) - 1, len(s.ids) - 1
	}
	return s.center, len(s.ids) - 1 - s.center
}
