package coloring

import (
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

var _ local.Kernel = Uniform{}

// DecideAll implements local.Kernel for consistently oriented rings. On a
// graph.Cycle the segment a radius-r view reveals is known analytically —
// the identifiers at ring positions v-r..v+r, closed once 2r+1 covers the
// ring — so the kernel evaluates the phase construction directly over the
// assignment with no View, no atlas rows and no per-radius ball walk. Any
// other graph is declined and runs on the view path.
func (Uniform) DecideAll(run *local.KernelRun) (bool, error) {
	ring, ok := run.Atlas.Graph().(graph.Cycle)
	if !ok {
		return false, nil
	}
	n := ring.N()
	buf := run.IntScratch(n) // segment scratch, shared across vertices, radii and trials
	for v := range run.Radii {
		if err := run.Err(v); err != nil {
			return true, err
		}
		for r := 0; ; r++ {
			ev := uniformEval{seg: ringSegment(run.Assign, buf, v, r, n)}
			colour, ok := ev.finalColour(0)
			if ok {
				run.Outs[v], run.Radii[v] = colour, r
				break
			}
			if r >= run.MaxRadius {
				return true, run.Undecided(Uniform{}.Name(), v)
			}
		}
	}
	return true, nil
}

// ringSegment writes the segment a radius-r view on the oriented n-ring
// reveals around vertex v into buf and returns it: identifiers in successor
// order spanning [v-r, v+r], closed (the whole ring, starting at v) once
// 2r+1 covers every vertex — exactly what extractSegment walks out of the
// equivalent View.
func ringSegment(a ids.Assignment, buf []int, v, r, n int) segment {
	if 2*r+1 >= n {
		s := buf[:n]
		for i := range s {
			p := v + i
			if p >= n {
				p -= n
			}
			s[i] = a[p]
		}
		return segment{ids: s, center: 0, closed: true}
	}
	s := buf[:2*r+1]
	p := v - r
	if p < 0 {
		p += n
	}
	for i := range s {
		s[i] = a[p]
		p++
		if p == n {
			p = 0
		}
	}
	return segment{ids: s, center: r}
}
