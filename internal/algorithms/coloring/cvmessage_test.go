package coloring

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestCVMessageProper(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{3, 4, 5, 8, 17, 64, 256} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 3; trial++ {
			a := ids.Random(n, rng)
			alg := ColeVishkinMessage{IDBits: bitsFor(a.MaxID())}
			res, err := local.RunMessage(c, a, alg)
			if err != nil {
				t.Fatalf("n=%d: RunMessage: %v", n, err)
			}
			if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestCVMessageMatchesViewAlgorithm(t *testing.T) {
	// The native message implementation and the view simulation run the
	// same synchronised schedule, so their colours must coincide exactly.
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{5, 16, 40, 128} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		viewAlg := ForMaxID(a.MaxID())
		msgAlg := ColeVishkinMessage{IDBits: viewAlg.IDBits}

		view, err := local.RunView(c, a, viewAlg)
		if err != nil {
			t.Fatalf("RunView: %v", err)
		}
		msg, err := local.RunMessage(c, a, msgAlg)
		if err != nil {
			t.Fatalf("RunMessage: %v", err)
		}
		for v := 0; v < n; v++ {
			if view.Outputs[v] != msg.Outputs[v] {
				t.Errorf("n=%d vertex %d: view colour %d, message colour %d",
					n, v, view.Outputs[v], msg.Outputs[v])
			}
		}
		want := iterationsToSix(msgAlg.IDBits) + 3
		for v, r := range msg.Radii {
			if r != want {
				t.Errorf("n=%d vertex %d: round %d, want %d", n, v, r, want)
			}
		}
	}
}

func TestCVMessageUniformRounds(t *testing.T) {
	const n = 128
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(52)))
	alg := ColeVishkinMessage{IDBits: bitsFor(a.MaxID())}
	res, err := local.RunMessage(c, a, alg)
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	if res.AvgRadius() != float64(res.MaxRadius()) {
		t.Errorf("avg %v != max %d: CV must be perfectly synchronous",
			res.AvgRadius(), res.MaxRadius())
	}
}

// bitsFor mirrors ForMaxID's bit computation for message construction.
func bitsFor(maxID int) int {
	return ForMaxID(maxID).IDBits
}
