package coloring

import (
	"math/bits"

	"repro/internal/local"
)

// Uniform is a 3-colouring of the oriented ring that uses no global
// knowledge whatsoever — neither n nor the identifier space. It realises
// the paper's remark that 3-colouring the ring is possible "even without
// the knowledge of n" ([2][4] in its references) by a pruned, phase-based
// construction:
//
//   - Phase i guesses that identifiers fit in guessBits[i] bits; the
//     guesses grow as a tower (4, 16, 62), so the first sufficient guess is
//     reached after O(log*) phases and the final guess covers every int.
//   - A vertex commits in the first phase whose guess covers every
//     identifier within its commitment window; committed vertices run the
//     phase's Cole-Vishkin schedule followed by a cross-phase-safe
//     reduction (every committer re-picks a colour in {0,1,2} in the
//     sub-round of its 6-colour, avoiding both same-phase current colours
//     and the final colours of neighbours committed in earlier phases).
//   - Vertices whose neighbourhood contains too-large identifiers stay
//     uncommitted and retry in the next phase, where they must avoid the
//     already-fixed colours around them.
//
// Every quantity above is a deterministic function of an ID window, so the
// whole construction is evaluated demand-driven inside Decide: the vertex
// grows its radius exactly until its own final colour is determined.
type Uniform struct{}

var _ local.ViewAlgorithm = Uniform{}

// guessBits are the per-phase identifier bit guesses. The tower 4 -> 2^4 ->
// (2^16, capped at 62) terminates in three phases for every representable
// identifier, which is the log* phenomenon in miniature.
var guessBits = []int{4, 16, 62}

// Name implements local.ViewAlgorithm.
func (Uniform) Name() string { return "coloring/uniform" }

// Decide evaluates the centre's final colour demand-driven and commits as
// soon as every input of that computation lies inside the view.
func (Uniform) Decide(v local.View) (int, bool) {
	seg := extractSegment(v)
	ev := uniformEval{seg: seg}
	colour, ok := ev.finalColour(0)
	if !ok {
		return 0, false
	}
	return colour, true
}

// uniformEval evaluates the deterministic phase construction over a visible
// segment. Every method returns ok=false when the answer depends on
// identifiers outside the segment — the signal to grow the radius.
type uniformEval struct {
	seg segment
}

// commitWindow is the half-width of the phase-i commitment predicate: the
// Cole-Vishkin chains of a committer and of both its neighbours must be
// valid, which k+2 covers.
func commitWindow(phase int) int {
	return iterationsToSix(guessBits[phase]) + 2
}

// phaseOf returns the first phase whose guess covers every identifier
// within the commitment window of the position.
func (ev uniformEval) phaseOf(offset int) (int, bool) {
	for phase := range guessBits {
		fits, ok := ev.windowFits(offset, commitWindow(phase), guessBits[phase])
		if fits && ok {
			return phase, true
		}
		if !ok {
			// The window is not fully visible and no visible identifier
			// disproves the guess: undecidable at this radius.
			return 0, false
		}
	}
	// Unreachable for int identifiers: the last guess admits everything.
	return 0, false
}

// windowFits reports whether every identifier within distance w of the
// position fits in the bit budget. fits=false with ok=true means a visible
// identifier already disproves the guess.
func (ev uniformEval) windowFits(offset, w, bitBudget int) (fits, ok bool) {
	limitExceeded := false
	allVisible := true
	for d := -w; d <= w; d++ {
		id, visible := ev.seg.id(offset + d)
		if !visible {
			allVisible = false
			continue
		}
		if bits.Len(uint(id)) > bitBudget {
			limitExceeded = true
		}
	}
	if limitExceeded {
		return false, true
	}
	return allVisible, allVisible
}

// cv6 returns the position's colour after the phase's Cole-Vishkin
// iterations (a value < 6 whenever the position committed in this phase).
func (ev uniformEval) cv6(offset, phase int) (int, bool) {
	k := iterationsToSix(guessBits[phase])
	chain := make([]int, k+1)
	for i := range chain {
		id, visible := ev.seg.id(offset - k + i)
		if !visible {
			return 0, false
		}
		chain[i] = id
	}
	for it := 0; it < k; it++ {
		next := make([]int, len(chain)-1)
		for i := 1; i < len(chain); i++ {
			next[i-1] = cvStep(chain[i], chain[i-1])
		}
		chain = next
	}
	return chain[0], true
}

// finalColour returns the position's committed colour in {0,1,2}. It
// recurses into neighbours committed in strictly earlier phases, so the
// recursion depth is bounded by the number of phases.
func (ev uniformEval) finalColour(offset int) (int, bool) {
	phase, ok := ev.phaseOf(offset)
	if !ok {
		return 0, false
	}
	r := len(allClasses)
	cone := make([]int, 2*r+1)
	for j := range cone {
		uOff := offset + j - r
		uPhase, ok := ev.phaseOf(uOff)
		if !ok {
			return 0, false
		}
		switch {
		case uPhase == phase:
			c, ok := ev.cv6(uOff, phase)
			if !ok {
				return 0, false
			}
			cone[j] = c
		case uPhase < phase:
			c, ok := ev.finalColour(uOff)
			if !ok {
				return 0, false
			}
			cone[j] = c
		default:
			cone[j] = none
		}
	}
	// Entries committed earlier are constraints, never recoloured: replace
	// their "original class" with fixedEntry while keeping their value.
	orig := append([]int(nil), cone...)
	for j := range cone {
		uOff := offset + j - r
		uPhase, ok := ev.phaseOf(uOff)
		if !ok {
			return 0, false
		}
		if uPhase < phase {
			orig[j] = fixedEntry
		}
	}
	return reduceConeWithOrig(cone, orig, r, allClasses), true
}
