package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestCVStepInvariant(t *testing.T) {
	// The heart of Cole-Vishkin: distinct inputs yield distinct outputs
	// along an oriented chain: step(b, a) != step(c, b) whenever a != b != c.
	prop := func(aRaw, bRaw, cRaw uint16) bool {
		a, b, c := int(aRaw), int(bRaw), int(cRaw)
		if a == b || b == c {
			return true // precondition violated; nothing to check
		}
		return cvStep(b, a) != cvStep(c, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Errorf("cvStep invariant: %v", err)
	}
}

func TestCVStepShrinks(t *testing.T) {
	// One step from b-bit colours lands below 2(b-1)+2.
	prop := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		if a == b {
			return true
		}
		out := cvStep(b, a)
		return out <= 2*15+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("cvStep range: %v", err)
	}
}

func TestCVStepPanicsOnEqual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cvStep(5,5) did not panic")
		}
	}()
	cvStep(5, 5)
}

func TestIterationsToSix(t *testing.T) {
	tests := []struct {
		bits, want int
	}{
		{0, 0},
		{1, 0},  // values <= 1 < 6 already
		{2, 0},  // values <= 3 < 6
		{3, 1},  // 7 -> 5
		{4, 2},  // 15 -> 7 -> 5
		{16, 4}, // 65535 -> 31 -> 9 -> 7 -> 5
		{62, 4}, // 2^62-1 -> 123 -> 13 -> 7 -> 5
	}
	for _, tt := range tests {
		if got := iterationsToSix(tt.bits); got != tt.want {
			t.Errorf("iterationsToSix(%d) = %d, want %d", tt.bits, got, tt.want)
		}
	}
}

func TestIterationsToSixLogStarGrowth(t *testing.T) {
	// The schedule length grows like log*: doubling the bit budget must add
	// at most one iteration.
	prev := iterationsToSix(2)
	for b := 3; b <= 62; b++ {
		cur := iterationsToSix(b)
		if cur < prev {
			t.Errorf("iterationsToSix not monotone at %d", b)
		}
		if cur > prev+1 {
			t.Errorf("iterationsToSix jumps by more than 1 at %d", b)
		}
		prev = cur
	}
	if iterationsToSix(62) > 5 {
		t.Errorf("iterationsToSix(62) = %d, want <= 5 (log* is tiny)", iterationsToSix(62))
	}
}

func TestFreeColour(t *testing.T) {
	tests := []struct {
		left, right, want int
	}{
		{none, none, 0},
		{0, none, 1},
		{none, 0, 1},
		{0, 1, 2},
		{1, 0, 2},
		{2, 0, 1},
		{1, 2, 0},
		{5, 4, 0}, // non-final constraints outside {0,1,2} block nothing below
	}
	for _, tt := range tests {
		if got := freeColour(tt.left, tt.right); got != tt.want {
			t.Errorf("freeColour(%d,%d) = %d, want %d", tt.left, tt.right, got, tt.want)
		}
	}
}

func TestColeVishkinProperOnRandomRings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{3, 4, 5, 6, 7, 16, 64, 257, 1000} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 3; trial++ {
			a := ids.Random(n, rng)
			alg := ForMaxID(a.MaxID())
			res, err := local.RunView(c, a, alg)
			if err != nil {
				t.Fatalf("n=%d: RunView: %v", n, err)
			}
			if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestColeVishkinSameRadiusEverywhere(t *testing.T) {
	// The paper's observation: Cole-Vishkin spends the same O(log* n) at
	// every vertex, so the average equals the maximum.
	const n = 512
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(9)))
	alg := ForMaxID(a.MaxID())
	res, err := local.RunView(c, a, alg)
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	want := iterationsToSix(alg.IDBits) + 3
	for v, r := range res.Radii {
		if r != want {
			t.Errorf("vertex %d: radius %d, want %d", v, r, want)
		}
	}
	if res.AvgRadius() != float64(res.MaxRadius()) {
		t.Errorf("avg %v != max %d", res.AvgRadius(), res.MaxRadius())
	}
}

func TestColeVishkinRadiusIsLogStar(t *testing.T) {
	// Radii stay single-digit across three orders of magnitude of n.
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{8, 64, 512, 4096} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		res, err := local.RunView(c, a, ForMaxID(a.MaxID()))
		if err != nil {
			t.Fatalf("RunView: %v", err)
		}
		if res.MaxRadius() > 8 {
			t.Errorf("n=%d: MaxRadius %d, want <= 8 (log* flat)", n, res.MaxRadius())
		}
	}
}

func TestColeVishkinSmallRingsCloseEarly(t *testing.T) {
	// On tiny rings the view wraps before the k+3 schedule completes; the
	// closed path must still deliver a proper colouring.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 4, 5} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 10; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunView(c, a, ForMaxID(a.MaxID()))
			if err != nil {
				t.Fatalf("n=%d: RunView: %v", n, err)
			}
			if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
			if res.MaxRadius() > n/2 {
				t.Errorf("n=%d: radius %d beyond closure %d", n, res.MaxRadius(), n/2)
			}
		}
	}
}

func TestColeVishkinExhaustiveTinyRings(t *testing.T) {
	// All 720 permutations of C6: no identifier pattern may break the
	// colouring or the uniform-radius property.
	c := graph.MustCycle(6)
	perm := []int{0, 1, 2, 3, 4, 5}
	var rec func(k int)
	var count int
	rec = func(k int) {
		if k == len(perm) {
			count++
			a, err := ids.FromPerm(perm)
			if err != nil {
				t.Fatal(err)
			}
			res, err := local.RunView(c, a, ForMaxID(5))
			if err != nil {
				t.Fatalf("perm %v: %v", perm, err)
			}
			if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
				t.Fatalf("perm %v: %v", perm, err)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if count != 720 {
		t.Fatalf("enumerated %d permutations, want 720", count)
	}
}
