package coloring

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestUniformProperAcrossSizes(t *testing.T) {
	// Sizes straddle the phase boundaries: n <= 16 commits in phase 0
	// everywhere, larger n mixes phase-0 and phase-1 committers (IDs >= 16
	// appear), which exercises the cross-phase reduction.
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{3, 4, 5, 8, 15, 16, 17, 40, 100, 333, 1024} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 4; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunView(c, a, Uniform{})
			if err != nil {
				t.Fatalf("n=%d: RunView: %v", n, err)
			}
			if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestUniformExhaustiveTinyRings(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		c := graph.MustCycle(n)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				a, err := ids.FromPerm(perm)
				if err != nil {
					t.Fatal(err)
				}
				res, err := local.RunView(c, a, Uniform{})
				if err != nil {
					t.Fatalf("n=%d perm %v: %v", n, perm, err)
				}
				if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
					t.Fatalf("n=%d perm %v: %v", n, perm, err)
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
	}
}

func TestUniformRadiusBoundedByConstant(t *testing.T) {
	// No knowledge of n, yet the radius must stay a small constant across
	// three orders of magnitude: this is the "O(log* n) without n" claim.
	rng := rand.New(rand.NewSource(13))
	maxSeen := 0
	for _, n := range []int{8, 64, 512, 4096, 16384} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		res, err := local.RunView(c, a, Uniform{})
		if err != nil {
			t.Fatalf("n=%d: RunView: %v", n, err)
		}
		if res.MaxRadius() > maxSeen {
			maxSeen = res.MaxRadius()
		}
	}
	if maxSeen > 24 {
		t.Errorf("uniform colouring radius reached %d; want a small constant", maxSeen)
	}
}

func TestUniformAverageTracksMax(t *testing.T) {
	// 3-colouring is the paper's "second type" of problem: averaging does
	// not help. The average radius must stay within a constant factor of
	// the maximum.
	const n = 2048
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(14)))
	res, err := local.RunView(c, a, Uniform{})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	avg := res.AvgRadius()
	max := float64(res.MaxRadius())
	if avg < max/4 {
		t.Errorf("avg %v much smaller than max %v; colouring should not average down", avg, max)
	}
}

func TestUniformSkewedIDMagnitudes(t *testing.T) {
	// Adversarial magnitude layout: a block of tiny IDs (phase-0
	// committers) meets a block of huge IDs (later phases). The boundary is
	// where cross-phase collisions would appear if the reduction were
	// wrong.
	const n = 64
	c := graph.MustCycle(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i // 0..15 are phase-0-eligible IDs, the rest larger
	}
	a, err := ids.FromPerm(perm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.RunView(c, a, Uniform{})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
		t.Errorf("sorted magnitudes: %v", err)
	}

	// Alternating small/huge IDs force maximal phase mixing.
	alt := make([]int, n)
	small, big := 0, n/2
	for i := range alt {
		if i%2 == 0 {
			alt[i] = small
			small++
		} else {
			alt[i] = big
			big++
		}
	}
	a2, err := ids.FromPerm(alt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := local.RunView(c, a2, Uniform{})
	if err != nil {
		t.Fatalf("RunView alternating: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, a2, res2.Outputs); err != nil {
		t.Errorf("alternating magnitudes: %v", err)
	}
}

func TestFullViewGreedyProper(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{3, 4, 9, 32} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		res, err := local.RunView(c, a, FullViewGreedy{})
		if err != nil {
			t.Fatalf("n=%d: RunView: %v", n, err)
		}
		if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		for v, r := range res.Radii {
			if r != n/2 {
				t.Errorf("n=%d vertex %d: radius %d, want closure %d", n, v, r, n/2)
			}
		}
	}
}

func TestFullViewGreedyOnPath(t *testing.T) {
	// The greedy baseline is not ring-specific: paths are 2-colourable by
	// greedy in decreasing-ID order within 3 colours.
	p := graph.MustPath(9)
	a := ids.Random(9, rand.New(rand.NewSource(16)))
	res, err := local.RunView(p, a, FullViewGreedy{})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(p, a, res.Outputs); err != nil {
		t.Errorf("path colouring: %v", err)
	}
}

func TestExtractSegmentOpenAndClosed(t *testing.T) {
	c := graph.MustCycle(9)
	a := ids.Identity(9)
	var segs []segment
	probe := segProbe{radius: 2, out: &segs}
	if _, err := local.RunView(c, a, probe); err != nil {
		t.Fatalf("RunView: %v", err)
	}
	if len(segs) != 9 {
		t.Fatalf("probed %d segments", len(segs))
	}
	s0 := segs[0]
	if s0.closed {
		t.Fatal("radius-2 view of C9 reported closed")
	}
	wantIDs := []int{7, 8, 0, 1, 2}
	if len(s0.ids) != len(wantIDs) || s0.center != 2 {
		t.Fatalf("segment = %+v, want ids %v centred at 2", s0, wantIDs)
	}
	for i := range wantIDs {
		if s0.ids[i] != wantIDs[i] {
			t.Fatalf("segment ids = %v, want %v", s0.ids, wantIDs)
		}
	}

	var closed []segment
	if _, err := local.RunView(c, a, segProbe{radius: 4, out: &closed}); err != nil {
		t.Fatalf("RunView closed: %v", err)
	}
	if !closed[0].closed {
		t.Fatal("radius-4 view of C9 not closed")
	}
	if len(closed[0].ids) != 9 {
		t.Fatalf("closed segment has %d ids", len(closed[0].ids))
	}
	// The closed walk starts at the centre and follows successors.
	for i, id := range closed[0].ids {
		if id != i {
			t.Fatalf("closed ids = %v, want 0..8 in ring order", closed[0].ids)
		}
	}
}

// segProbe records the extracted segment of every vertex at a radius.
type segProbe struct {
	radius int
	out    *[]segment
}

func (segProbe) Name() string { return "segProbe" }
func (p segProbe) Decide(v local.View) (int, bool) {
	if v.Radius() < p.radius {
		return 0, false
	}
	*p.out = append(*p.out, extractSegment(v))
	return 0, true
}

func TestSegmentIDAndSpan(t *testing.T) {
	s := segment{ids: []int{10, 11, 12, 13, 14}, center: 2}
	if id, ok := s.id(0); !ok || id != 12 {
		t.Errorf("id(0) = %d,%v", id, ok)
	}
	if id, ok := s.id(-2); !ok || id != 10 {
		t.Errorf("id(-2) = %d,%v", id, ok)
	}
	if _, ok := s.id(3); ok {
		t.Error("id(3) should be out of range")
	}
	l, r := s.span()
	if l != 2 || r != 2 {
		t.Errorf("span = %d,%d", l, r)
	}

	cs := segment{ids: []int{5, 6, 7}, center: 0, closed: true}
	if id, ok := cs.id(-1); !ok || id != 7 {
		t.Errorf("closed id(-1) = %d,%v, want 7", id, ok)
	}
	if id, ok := cs.id(4); !ok || id != 6 {
		t.Errorf("closed id(4) = %d,%v, want 6", id, ok)
	}
}
