// Package mis derives a maximal independent set from any proper colouring
// algorithm by the classic colour-class schedule: colour classes join the
// set in increasing order, each vertex joining iff none of its neighbours
// joined before it. Composed with an O(log* n) ring colouring this yields
// an O(log* n) MIS — like colouring, a problem where the paper's average
// measure cannot beat the classic one asymptotically.
package mis

import (
	"repro/internal/local"
	"repro/internal/problems"
)

// FromColoring turns a proper-colouring view algorithm into an MIS view
// algorithm. A vertex simulates the colouring of every vertex within the
// needed distance (via local.Subview) and evaluates the join schedule:
//
//	joined(u)  <=>  for all neighbours w of u:
//	                NOT (colour(w) < colour(u) AND joined(w))
//
// The recursion is well-founded (colours strictly decrease) and reaches at
// most maxColour hops, so the decision radius exceeds the base colouring's
// radius by only that constant.
type FromColoring struct {
	// Base must produce a proper colouring on the target graph family.
	Base local.ViewAlgorithm
}

var _ local.ViewAlgorithm = FromColoring{}

// Name implements local.ViewAlgorithm.
func (m FromColoring) Name() string { return "mis(" + m.Base.Name() + ")" }

// Decide evaluates joined(centre) demand-driven; any colour or neighbourhood
// that is not yet visible postpones the decision to a larger radius.
func (m FromColoring) Decide(v local.View) (int, bool) {
	joined, ok := m.joined(v, 0)
	if !ok {
		return 0, false
	}
	if joined {
		return problems.Yes, true
	}
	return problems.No, true
}

// colourOf simulates the base colouring at local vertex u by growing a
// subview until the base decides. Once the subview is complete no larger
// radius can add information, so an undecided base is a dead end rather
// than a request for more view.
func (m FromColoring) colourOf(v local.View, u int) (int, bool) {
	for q := 0; ; q++ {
		sub, ok := local.Subview(v, u, q)
		if !ok {
			return 0, false
		}
		if c, done := m.Base.Decide(sub); done {
			return c, true
		}
		if sub.Complete() {
			return 0, false
		}
	}
}

// joined evaluates the join schedule at local vertex u. It requires u's
// full neighbourhood to be visible.
func (m FromColoring) joined(v local.View, u int) (bool, bool) {
	cu, ok := m.colourOf(v, u)
	if !ok {
		return false, false
	}
	if v.DegreeWithin(u) != v.TrueDegree(u) {
		// Some neighbour of u is invisible: cannot evaluate the schedule.
		return false, false
	}
	for _, w := range v.Neighbors(u) {
		cw, ok := m.colourOf(v, w)
		if !ok {
			return false, false
		}
		if cw >= cu {
			continue // w joins no earlier than u; no constraint
		}
		wJoined, ok := m.joined(v, w)
		if !ok {
			return false, false
		}
		if wJoined {
			return false, true // dominated by an earlier class member
		}
	}
	return true, true
}
