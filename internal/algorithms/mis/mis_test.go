package mis

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestMISFromColeVishkin(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{3, 4, 5, 8, 17, 64, 300} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 3; trial++ {
			a := ids.Random(n, rng)
			alg := FromColoring{Base: coloring.ForMaxID(a.MaxID())}
			res, err := local.RunView(c, a, alg)
			if err != nil {
				t.Fatalf("n=%d: RunView: %v", n, err)
			}
			if err := (problems.MIS{}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestMISFromUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{5, 16, 33, 128} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		res, err := local.RunView(c, a, FromColoring{Base: coloring.Uniform{}})
		if err != nil {
			t.Fatalf("n=%d: RunView: %v", n, err)
		}
		if err := (problems.MIS{}).Verify(c, a, res.Outputs); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestMISFromFullViewGreedyOnOtherTopologies(t *testing.T) {
	// The join schedule is generic: with a full-view greedy base it yields
	// an MIS on paths and trees too.
	rng := rand.New(rand.NewSource(22))
	tree, err := graph.NewRandomTree(20, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := map[string]graph.Graph{
		"P11":  graph.MustPath(11),
		"tree": tree,
	}
	for name, g := range gs {
		a := ids.Random(g.N(), rng)
		res, err := local.RunView(g, a, FromColoring{Base: coloring.FullViewGreedy{}})
		if err != nil {
			t.Fatalf("%s: RunView: %v", name, err)
		}
		if err := (problems.MIS{}).Verify(g, a, res.Outputs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMISRadiusConstantOverhead(t *testing.T) {
	// MIS must cost only a constant more than its base colouring, keeping
	// avg ~ max (the "second type" of problem in the characterisation).
	const n = 1024
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(23)))
	base := coloring.ForMaxID(a.MaxID())
	colRes, err := local.RunView(c, a, base)
	if err != nil {
		t.Fatalf("RunView base: %v", err)
	}
	misRes, err := local.RunView(c, a, FromColoring{Base: base})
	if err != nil {
		t.Fatalf("RunView mis: %v", err)
	}
	if misRes.MaxRadius() > colRes.MaxRadius()+3 {
		t.Errorf("MIS radius %d exceeds colouring radius %d + 3",
			misRes.MaxRadius(), colRes.MaxRadius())
	}
	if misRes.AvgRadius() < float64(misRes.MaxRadius())/4 {
		t.Errorf("MIS avg %v far below max %d; expected flat distribution",
			misRes.AvgRadius(), misRes.MaxRadius())
	}
}

func TestMISExhaustiveTinyRings(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		c := graph.MustCycle(n)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				a, err := ids.FromPerm(perm)
				if err != nil {
					t.Fatal(err)
				}
				res, err := local.RunView(c, a, FromColoring{Base: coloring.ForMaxID(n - 1)})
				if err != nil {
					t.Fatalf("n=%d perm %v: %v", n, perm, err)
				}
				if err := (problems.MIS{}).Verify(c, a, res.Outputs); err != nil {
					t.Fatalf("n=%d perm %v: %v", n, perm, err)
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
	}
}
