// Package largestid implements the algorithms of §2 of the paper for the
// largest-ID problem: every vertex must output Yes iff it carries the
// globally largest identifier — "a classic way to elect a leader".
//
// Pruning is the paper's algorithm: grow the radius until a larger
// identifier appears (output No) or the view provably covers the whole
// graph (output Yes). Its worst-case radius is linear — the maximum-ID
// vertex must see everything — but its average radius is Θ(log n), the
// paper's exponential separation.
//
// FullView is the trivial baseline: every vertex waits until it sees the
// whole graph; both measures are linear.
package largestid

import (
	"repro/internal/local"
	"repro/internal/problems"
)

// Pruning is the §2 algorithm. It is symmetric (needs no orientation) and
// works on any connected graph family, using view-completeness (every
// visible vertex shows its full degree) as the "I have seen everything"
// certificate.
type Pruning struct{}

var _ local.ViewAlgorithm = Pruning{}

// Name implements local.ViewAlgorithm.
func (Pruning) Name() string { return "largestid/pruning" }

// Decide stops at the first radius that reveals a larger identifier (No)
// or proves the view complete (Yes). Only the freshly revealed frontier
// needs scanning: earlier vertices were checked at smaller radii.
func (Pruning) Decide(v local.View) (int, bool) {
	if v.MaxIDIn(v.FrontierStart(), v.Size()) > v.CenterID() {
		return problems.No, true
	}
	if v.Complete() {
		return problems.Yes, true
	}
	return 0, false
}

// FullView is the linear baseline: wait for a complete view, then answer by
// global comparison.
type FullView struct{}

var _ local.ViewAlgorithm = FullView{}

// Name implements local.ViewAlgorithm.
func (FullView) Name() string { return "largestid/fullview" }

// Decide waits for completeness and compares against the global maximum.
func (FullView) Decide(v local.View) (int, bool) {
	if !v.Complete() {
		return 0, false
	}
	if v.MaxIDIn(0, v.Size()) > v.CenterID() {
		return problems.No, true
	}
	return problems.Yes, true
}
