package largestid

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestChangRobertsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{3, 4, 5, 8, 16, 64, 128} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 4; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunMessage(c, a, ChangRoberts{})
			if err != nil {
				t.Fatalf("n=%d: RunMessage: %v", n, err)
			}
			if err := (problems.LargestID{}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestChangRobertsLeaderDecidesAtN(t *testing.T) {
	const n = 32
	c := graph.MustCycle(n)
	a, err := ids.MaxAt(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.RunMessage(c, a, ChangRoberts{})
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	if res.Radii[5] != n {
		t.Errorf("leader decided at round %d, want %d (own probe circles the ring)", res.Radii[5], n)
	}
}

func TestChangRobertsNoDecisionIsDominatorDistance(t *testing.T) {
	// On the identity assignment the nearest counter-clockwise larger
	// identifier of vertex v is v+1 — wait: probes travel clockwise
	// (from predecessor to successor), so vertex v is covered by the probe
	// of its predecessor v-1 iff id(v-1) > id(v). With identity IDs,
	// id(v-1) = v-1 < v, so the covering probe of v comes from the maximum
	// n-1 at distance v+1 clockwise... except intermediate nodes swallow
	// nothing on an increasing run. Verify against an explicit oracle.
	const n = 16
	c := graph.MustCycle(n)
	a := ids.Identity(n)
	res, err := local.RunMessage(c, a, ChangRoberts{})
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	for v := 0; v < n-1; v++ {
		// The only probe that survives past the maximum is the maximum's
		// own; a probe with id u reaching v requires id u > all IDs
		// strictly between u and v (clockwise). Oracle: simulate.
		want := crOracle(a, v)
		if res.Radii[v] != want {
			t.Errorf("vertex %d: decided at round %d, oracle %d", v, res.Radii[v], want)
		}
	}
}

// crOracle computes the first round at which vertex v receives a probe
// larger than its own identifier: the minimum over clockwise distances d
// of d such that the probe of vertex v-d survives to v (it is larger than
// every identifier strictly between) and is larger than id(v).
func crOracle(a ids.Assignment, v int) int {
	n := len(a)
	for d := 1; d < n; d++ {
		origin := ((v-d)%n + n) % n
		if a[origin] <= a[v] {
			continue
		}
		survives := true
		for i := 1; i < d; i++ {
			if a[((origin+i)%n+n)%n] > a[origin] {
				survives = false
				break
			}
		}
		if survives {
			return d
		}
	}
	return n
}

func TestChangRobertsAverageStaysLogarithmic(t *testing.T) {
	// The §2 separation holds for the small-message algorithm too: the
	// leader pays n, the average stays O(log n).
	const n = 512
	c := graph.MustCycle(n)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		a := ids.Random(n, rng)
		res, err := local.RunMessage(c, a, ChangRoberts{})
		if err != nil {
			t.Fatalf("RunMessage: %v", err)
		}
		if res.MaxRadius() != n {
			t.Errorf("max round = %d, want %d", res.MaxRadius(), n)
		}
		if avg := res.AvgRadius(); avg > 30 {
			t.Errorf("avg rounds = %v, expected O(log n)", avg)
		}
	}
}

func TestChangRobertsMatchesPruningOnNonLeaders(t *testing.T) {
	// Outputs must agree with the view-based pruning algorithm everywhere.
	const n = 64
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(42)))
	msg, err := local.RunMessage(c, a, ChangRoberts{})
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	view, err := local.RunView(c, a, Pruning{})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	for v := 0; v < n; v++ {
		if msg.Outputs[v] != view.Outputs[v] {
			t.Errorf("vertex %d: outputs differ", v)
		}
		// One-directional probes can only be slower than bidirectional
		// views.
		if msg.Radii[v] < view.Radii[v] {
			t.Errorf("vertex %d: message round %d below view radius %d",
				v, msg.Radii[v], view.Radii[v])
		}
	}
}
