package largestid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

// expectedCycleRadius computes the §2 prediction for the pruning algorithm
// on a cycle: the maximum-ID vertex needs the closure radius floor(n/2);
// every other vertex stops at its distance to the nearest strictly larger
// identifier.
func expectedCycleRadius(c graph.Cycle, a ids.Assignment, v int) int {
	if v == a.ArgMax() {
		return c.N() / 2
	}
	best := c.N()
	for u := 0; u < c.N(); u++ {
		if a[u] > a[v] && c.Dist(u, v) < best {
			best = c.Dist(u, v)
		}
	}
	return best
}

func TestPruningCorrectOnCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 4, 5, 10, 33, 64} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 5; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunView(c, a, Pruning{})
			if err != nil {
				t.Fatalf("n=%d: RunView: %v", n, err)
			}
			if err := (problems.LargestID{}).Verify(c, a, res.Outputs); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestPruningRadiiMatchPaperPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 4, 7, 16, 41} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 4; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunView(c, a, Pruning{})
			if err != nil {
				t.Fatalf("RunView: %v", err)
			}
			for v := 0; v < n; v++ {
				want := expectedCycleRadius(c, a, v)
				if res.Radii[v] != want {
					t.Errorf("n=%d trial %d vertex %d: radius %d, want %d",
						n, trial, v, res.Radii[v], want)
				}
			}
		}
	}
}

func TestPruningMaxVertexIsLinear(t *testing.T) {
	// The classic measure: the max-ID vertex needs floor(n/2) regardless of
	// the permutation (§2: "needs to see all the cycle").
	for _, n := range []int{4, 5, 100, 101} {
		c := graph.MustCycle(n)
		a, err := ids.MaxAt(n, n/3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := local.RunView(c, a, Pruning{})
		if err != nil {
			t.Fatalf("RunView: %v", err)
		}
		if got := res.Radii[n/3]; got != n/2 {
			t.Errorf("n=%d: max vertex radius %d, want %d", n, got, n/2)
		}
		if res.MaxRadius() != n/2 {
			t.Errorf("n=%d: MaxRadius %d, want %d", n, res.MaxRadius(), n/2)
		}
	}
}

func TestPruningAverageBeatsWorstCase(t *testing.T) {
	// The separation claim in miniature: on a 256-cycle the average radius
	// must be far below the worst case n/2. (Θ(log n) vs Θ(n); the full
	// sweep is experiment E2.)
	const n = 256
	c := graph.MustCycle(n)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		a := ids.Random(n, rng)
		res, err := local.RunView(c, a, Pruning{})
		if err != nil {
			t.Fatalf("RunView: %v", err)
		}
		if res.MaxRadius() != n/2 {
			t.Errorf("MaxRadius = %d, want %d", res.MaxRadius(), n/2)
		}
		if avg := res.AvgRadius(); avg > 20 {
			t.Errorf("trial %d: AvgRadius = %v, expected O(log n) << n/2 = %d", trial, avg, n/2)
		}
	}
}

func TestPruningOnPathsAndTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree, err := graph.NewRandomTree(30, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := map[string]graph.Graph{
		"P17":  graph.MustPath(17),
		"tree": tree,
		"grid": mustGrid(t, 5, 6),
	}
	for name, g := range gs {
		a := ids.Random(g.N(), rng)
		res, err := local.RunView(g, a, Pruning{})
		if err != nil {
			t.Fatalf("%s: RunView: %v", name, err)
		}
		if err := (problems.LargestID{}).Verify(g, a, res.Outputs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFullViewCorrectAndLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 8, 21} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		res, err := local.RunView(c, a, FullView{})
		if err != nil {
			t.Fatalf("RunView: %v", err)
		}
		if err := (problems.LargestID{}).Verify(c, a, res.Outputs); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		for v, r := range res.Radii {
			if r != n/2 {
				t.Errorf("n=%d vertex %d: fullview radius %d, want closure %d", n, v, r, n/2)
			}
		}
	}
}

func TestPruningNeverExceedsFullView(t *testing.T) {
	prop := func(seed int64) bool {
		n := 16
		c := graph.MustCycle(n)
		a := ids.Random(n, rand.New(rand.NewSource(seed)))
		pr, err := local.RunView(c, a, Pruning{})
		if err != nil {
			return false
		}
		fv, err := local.RunView(c, a, FullView{})
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if pr.Radii[v] > fv.Radii[v] {
				return false
			}
			if pr.Outputs[v] != fv.Outputs[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("pruning dominated by fullview violated: %v", err)
	}
}

func TestPruningGatherEquivalence(t *testing.T) {
	c := graph.MustCycle(11)
	a := ids.Random(11, rand.New(rand.NewSource(6)))
	view, err := local.RunView(c, a, Pruning{})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	msg, err := local.RunMessage(c, a, local.NewGather(Pruning{}))
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	for v := 0; v < 11; v++ {
		if view.Outputs[v] != msg.Outputs[v] {
			t.Errorf("vertex %d outputs differ", v)
		}
		want := view.Radii[v]
		if want > 0 {
			want++
		}
		if msg.Radii[v] != want {
			t.Errorf("vertex %d: rounds %d, want %d", v, msg.Radii[v], want)
		}
	}
}

func mustGrid(t *testing.T, r, c int) graph.Graph {
	t.Helper()
	g, err := graph.NewGrid(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
