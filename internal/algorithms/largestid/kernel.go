package largestid

import (
	"repro/internal/local"
	"repro/internal/problems"
)

// The flat kernels below are the Decide loops of this package collapsed
// onto the atlas skeleton: a radius step is an argmax scan over one layer
// window of the centre's flat Verts array plus an O(1) completeness bit,
// with no View construction and no interface dispatch in between. They are
// byte-identical to the view path (see the equivalence suites in
// internal/local and internal/sweep) and exist purely for sweep throughput.

var (
	_ local.Kernel = Pruning{}
	_ local.Kernel = FullView{}
)

// DecideAll implements local.Kernel: per centre, scan each freshly revealed
// layer for an identifier beating the centre's (No at that radius), or stop
// at the first provably complete radius (Yes). Works on any graph family —
// the skeleton is all it reads. The layer window [lo, hi) is carried
// incrementally — the last step's end is the next step's start, exactly
// FrontierStartAt/SizeAt unrolled — because this loop is the innermost of
// exhaustive enumeration, where two accessor calls per radius step are
// measurable.
func (Pruning) DecideAll(run *local.KernelRun) (bool, error) {
	atlas, assign := run.Atlas, run.Assign
	for v := range run.Radii {
		if err := run.Err(v); err != nil {
			return true, err
		}
		st := atlas.Ensure(v, 0)
		if st == nil {
			run.Radii[v] = local.KernelUnserved
			continue
		}
		center := assign[v]
		verts, layerEnd, maxR := st.Verts, st.LayerEnd, st.MaxRadius
		r, lo := 0, 0
		for {
			hi := lo // empty window past MaxRadius (complete balls only)
			if r <= maxR {
				hi = layerEnd[r]
			}
			larger := false
			for _, w := range verts[lo:hi] {
				if assign[w] > center {
					larger = true
					break
				}
			}
			if larger {
				run.Outs[v], run.Radii[v] = problems.No, r
				break
			}
			if st.CompleteAt(r) {
				run.Outs[v], run.Radii[v] = problems.Yes, r
				break
			}
			if r >= run.MaxRadius {
				return true, run.Undecided(Pruning{}.Name(), v)
			}
			r++
			lo = hi
			if !st.Complete && r > maxR {
				if st = atlas.Ensure(v, r); st == nil {
					run.Radii[v] = local.KernelUnserved
					break
				}
				verts, layerEnd, maxR = st.Verts, st.LayerEnd, st.MaxRadius
			}
		}
	}
	return true, nil
}

// DecideAll implements local.Kernel: per centre, advance to the first
// complete radius (an O(1) bit per step), then answer by one max scan over
// the whole ball prefix.
func (FullView) DecideAll(run *local.KernelRun) (bool, error) {
	atlas, assign := run.Atlas, run.Assign
	for v := range run.Radii {
		if err := run.Err(v); err != nil {
			return true, err
		}
		st := atlas.Ensure(v, 0)
		if st == nil {
			run.Radii[v] = local.KernelUnserved
			continue
		}
		r := 0
		for !st.CompleteAt(r) {
			if r >= run.MaxRadius {
				return true, run.Undecided(FullView{}.Name(), v)
			}
			r++
			if !st.Complete && r > st.MaxRadius {
				if st = atlas.Ensure(v, r); st == nil {
					break
				}
			}
		}
		if st == nil {
			run.Radii[v] = local.KernelUnserved
			continue
		}
		center := assign[v]
		out := problems.Yes
		for _, w := range st.Verts[:st.SizeAt(r)] {
			if assign[w] > center {
				out = problems.No
				break
			}
		}
		run.Outs[v], run.Radii[v] = out, r
	}
	return true, nil
}
