package largestid

import (
	"repro/internal/local"
	"repro/internal/problems"
)

// ChangRoberts is the classic small-message leader-election algorithm on an
// oriented ring, as a native MessageAlgorithm: each node launches a probe
// carrying its identifier clockwise; nodes swallow probes smaller than
// their own identifier and relay the rest (keeping only the largest pending
// probe — smaller ones are dominated anyway). The maximum's probe is the
// only one to circle the ring: when a node receives its own identifier back
// it outputs Yes; a node that sees any larger probe outputs No.
//
// It solves the same problem as Pruning with O(1)-size messages instead of
// full views. Decision rounds: No at the distance to the nearest
// counter-clockwise dominator (>= the view radius), Yes at exactly n. Both
// measures keep their §2 character: the worst case is linear, the average
// logarithmic — the separation does not depend on the full-information
// assumption.
type ChangRoberts struct{}

var _ local.MessageAlgorithm = ChangRoberts{}

// Name implements local.MessageAlgorithm.
func (ChangRoberts) Name() string { return "largestid/changroberts" }

// NewNode implements local.MessageAlgorithm. It assumes the oriented-ring
// port convention (port 0 = successor, port 1 = predecessor), hence
// degree 2.
func (ChangRoberts) NewNode(id, degree int) local.MessageNode {
	return &crNode{id: id, degree: degree, pending: id}
}

type crNode struct {
	id      int
	degree  int
	pending int // largest probe waiting to be forwarded clockwise; -1 none

	out     int
	decided bool
}

// Init launches the node's own probe clockwise (port 0).
func (n *crNode) Init() []any {
	msgs := make([]any, n.degree)
	if n.degree > 0 {
		msgs[0] = n.pending
	}
	n.pending = -1
	return msgs
}

// Round processes the probe arriving from the predecessor (port 1).
func (n *crNode) Round(recv []any) []any {
	msgs := make([]any, n.degree)
	if n.degree >= 2 {
		if probe, ok := recv[1].(int); ok {
			switch {
			case probe == n.id:
				// The node's own probe circled the ring: it is the leader.
				n.out = problems.Yes
				n.decided = true
			case probe > n.id:
				if !n.decided {
					n.out = problems.No
					n.decided = true
				}
				if probe > n.pending {
					n.pending = probe
				}
			}
			// probe < n.id is swallowed.
		}
	}
	if n.pending >= 0 {
		msgs[0] = n.pending
		n.pending = -1
	}
	return msgs
}

// Output implements local.MessageNode.
func (n *crNode) Output() (int, bool) { return n.out, n.decided }
