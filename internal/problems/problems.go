// Package problems defines the output specifications the paper's algorithms
// are measured against, with verifiers that are independent of any
// algorithm: LargestID (the leader-election variant of §2), k-Colouring
// (§3), MIS, and LeaderElection. A verifier examines the global outputs of
// one execution and reports the first violated constraint.
package problems

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
)

// Problem is an output specification over a graph with identifiers.
type Problem interface {
	// Name identifies the problem in experiment tables.
	Name() string
	// Verify reports nil iff outputs is a correct solution on g under a.
	Verify(g graph.Graph, a ids.Assignment, outputs []int) error
}

// ErrOutputLength indicates the output vector does not cover all vertices.
var ErrOutputLength = errors.New("problems: outputs length differs from vertex count")

// Outputs of LargestID.
const (
	No  = 0
	Yes = 1
)

// LargestID: every vertex outputs Yes iff it carries the globally largest
// identifier — "a classic way to elect a leader" (§2 of the paper).
type LargestID struct{}

var _ Problem = LargestID{}

// Name implements Problem.
func (LargestID) Name() string { return "largestID" }

// Verify checks that exactly the maximum-identifier vertex said Yes.
func (LargestID) Verify(g graph.Graph, a ids.Assignment, outputs []int) error {
	if len(outputs) != g.N() {
		return ErrOutputLength
	}
	leader := a.ArgMax()
	for v, out := range outputs {
		switch {
		case v == leader && out != Yes:
			return fmt.Errorf("problems: vertex %d holds the largest ID %d but answered %d", v, a[v], out)
		case v != leader && out != No:
			return fmt.Errorf("problems: vertex %d (ID %d) wrongly answered %d", v, a[v], out)
		}
	}
	return nil
}

// Coloring: adjacent vertices must output different colours from {0..K-1}.
type Coloring struct {
	// K is the number of admissible colours.
	K int
}

var _ Problem = Coloring{}

// Name implements Problem.
func (c Coloring) Name() string { return fmt.Sprintf("%d-coloring", c.K) }

// Verify checks range and properness.
func (c Coloring) Verify(g graph.Graph, a ids.Assignment, outputs []int) error {
	if len(outputs) != g.N() {
		return ErrOutputLength
	}
	for v, col := range outputs {
		if col < 0 || col >= c.K {
			return fmt.Errorf("problems: vertex %d colour %d outside [0,%d)", v, col, c.K)
		}
	}
	for _, e := range graph.Edges(g) {
		if outputs[e[0]] == outputs[e[1]] {
			return fmt.Errorf("problems: edge %d-%d monochromatic (colour %d)", e[0], e[1], outputs[e[0]])
		}
	}
	return nil
}

// MIS: vertices outputting Yes must form a maximal independent set.
type MIS struct{}

var _ Problem = MIS{}

// Name implements Problem.
func (MIS) Name() string { return "MIS" }

// Verify checks independence (no two adjacent members) and maximality
// (every non-member has a member neighbour).
func (MIS) Verify(g graph.Graph, a ids.Assignment, outputs []int) error {
	if len(outputs) != g.N() {
		return ErrOutputLength
	}
	for v, out := range outputs {
		if out != Yes && out != No {
			return fmt.Errorf("problems: vertex %d output %d is not Yes/No", v, out)
		}
	}
	for _, e := range graph.Edges(g) {
		if outputs[e[0]] == Yes && outputs[e[1]] == Yes {
			return fmt.Errorf("problems: adjacent vertices %d and %d both in the set", e[0], e[1])
		}
	}
	for v, out := range outputs {
		if out == Yes {
			continue
		}
		dominated := false
		for p := 0; p < g.Degree(v); p++ {
			if outputs[g.Neighbor(v, p)] == Yes {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("problems: vertex %d outside the set has no member neighbour", v)
		}
	}
	return nil
}

// LeaderElection: exactly one vertex outputs Yes. Unlike LargestID it does
// not prescribe which vertex wins.
type LeaderElection struct{}

var _ Problem = LeaderElection{}

// Name implements Problem.
func (LeaderElection) Name() string { return "leaderElection" }

// Verify counts the Yes outputs.
func (LeaderElection) Verify(g graph.Graph, a ids.Assignment, outputs []int) error {
	if len(outputs) != g.N() {
		return ErrOutputLength
	}
	leaders := 0
	for v, out := range outputs {
		switch out {
		case Yes:
			leaders++
		case No:
		default:
			return fmt.Errorf("problems: vertex %d output %d is not Yes/No", v, out)
		}
	}
	if leaders != 1 {
		return fmt.Errorf("problems: %d leaders elected, want exactly 1", leaders)
	}
	return nil
}
