package problems

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

func TestLargestIDVerify(t *testing.T) {
	c := graph.MustCycle(5)
	a, err := ids.MaxAt(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := []int{No, No, Yes, No, No}
	if err := (LargestID{}).Verify(c, a, good); err != nil {
		t.Errorf("correct outputs rejected: %v", err)
	}
	twoLeaders := []int{No, Yes, Yes, No, No}
	if err := (LargestID{}).Verify(c, a, twoLeaders); err == nil {
		t.Error("extra Yes accepted")
	}
	noLeader := []int{No, No, No, No, No}
	if err := (LargestID{}).Verify(c, a, noLeader); err == nil {
		t.Error("missing leader accepted")
	}
	short := []int{No, No, Yes}
	if err := (LargestID{}).Verify(c, a, short); err == nil {
		t.Error("short output vector accepted")
	}
}

func TestColoringVerify(t *testing.T) {
	c := graph.MustCycle(4)
	a := ids.Identity(4)
	proper := []int{0, 1, 0, 1}
	if err := (Coloring{K: 3}).Verify(c, a, proper); err != nil {
		t.Errorf("proper colouring rejected: %v", err)
	}
	mono := []int{0, 0, 1, 2}
	err := (Coloring{K: 3}).Verify(c, a, mono)
	if err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if !strings.Contains(err.Error(), "monochromatic") {
		t.Errorf("unexpected error: %v", err)
	}
	outOfRange := []int{0, 1, 0, 3}
	if err := (Coloring{K: 3}).Verify(c, a, outOfRange); err == nil {
		t.Error("colour 3 accepted for K=3")
	}
	negative := []int{0, 1, 0, -1}
	if err := (Coloring{K: 3}).Verify(c, a, negative); err == nil {
		t.Error("negative colour accepted")
	}
}

func TestColoringOddCycleNeedsThree(t *testing.T) {
	// Sanity: no proper 2-colouring of C5 exists; the verifier must reject
	// every attempt that uses only colours {0,1}.
	c := graph.MustCycle(5)
	a := ids.Identity(5)
	for mask := 0; mask < 1<<5; mask++ {
		outputs := make([]int, 5)
		for v := range outputs {
			outputs[v] = (mask >> v) & 1
		}
		if err := (Coloring{K: 2}).Verify(c, a, outputs); err == nil {
			t.Fatalf("2-colouring %v of C5 accepted", outputs)
		}
	}
}

func TestMISVerify(t *testing.T) {
	c := graph.MustCycle(6)
	a := ids.Identity(6)
	good := []int{Yes, No, Yes, No, Yes, No}
	if err := (MIS{}).Verify(c, a, good); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	dependent := []int{Yes, Yes, No, Yes, No, No}
	if err := (MIS{}).Verify(c, a, dependent); err == nil {
		t.Error("adjacent members accepted")
	}
	notMaximal := []int{Yes, No, No, No, Yes, No}
	if err := (MIS{}).Verify(c, a, notMaximal); err == nil {
		t.Error("non-maximal set accepted")
	}
	junk := []int{Yes, No, 5, No, Yes, No}
	if err := (MIS{}).Verify(c, a, junk); err == nil {
		t.Error("non-binary output accepted")
	}
}

func TestMISOnStar(t *testing.T) {
	star, err := graph.NewStar(5)
	if err != nil {
		t.Fatal(err)
	}
	a := ids.Identity(5)
	centre := []int{Yes, No, No, No, No}
	if err := (MIS{}).Verify(star, a, centre); err != nil {
		t.Errorf("centre-only MIS rejected: %v", err)
	}
	leaves := []int{No, Yes, Yes, Yes, Yes}
	if err := (MIS{}).Verify(star, a, leaves); err != nil {
		t.Errorf("leaves MIS rejected: %v", err)
	}
}

func TestLeaderElectionVerify(t *testing.T) {
	c := graph.MustCycle(4)
	a := ids.Identity(4)
	if err := (LeaderElection{}).Verify(c, a, []int{No, No, Yes, No}); err != nil {
		t.Errorf("single leader rejected: %v", err)
	}
	if err := (LeaderElection{}).Verify(c, a, []int{No, No, No, No}); err == nil {
		t.Error("zero leaders accepted")
	}
	if err := (LeaderElection{}).Verify(c, a, []int{Yes, No, Yes, No}); err == nil {
		t.Error("two leaders accepted")
	}
	if err := (LeaderElection{}).Verify(c, a, []int{2, No, No, No}); err == nil {
		t.Error("non-binary output accepted")
	}
}

func TestNamesStable(t *testing.T) {
	if (LargestID{}).Name() != "largestID" {
		t.Error("LargestID name changed")
	}
	if (Coloring{K: 3}).Name() != "3-coloring" {
		t.Error("Coloring name changed")
	}
	if (MIS{}).Name() != "MIS" {
		t.Error("MIS name changed")
	}
	if (LeaderElection{}).Name() != "leaderElection" {
		t.Error("LeaderElection name changed")
	}
}

func TestVerifyLengthChecks(t *testing.T) {
	c := graph.MustCycle(3)
	a := ids.Identity(3)
	short := []int{0, 1}
	for _, p := range []Problem{LargestID{}, Coloring{K: 3}, MIS{}, LeaderElection{}} {
		if err := p.Verify(c, a, short); err == nil {
			t.Errorf("%s accepted a short output vector", p.Name())
		}
	}
}
