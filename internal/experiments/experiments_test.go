package experiments

import (
	"context"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// smallCfg keeps experiment runs fast in unit tests; the full sweeps run in
// the benchmark suite and cmd/avgbench.
func smallCfg() Config {
	return Config{Seed: 7, Sizes: []int{16, 32, 64}, Trials: 2}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d].ID = %s, want %s", i, all[i].ID, id)
		}
		e, err := Get(id)
		if err != nil {
			t.Errorf("Get(%s): %v", id, err)
		}
		if e.Title == "" || e.Claim == "" {
			t.Errorf("%s missing title or claim", id)
		}
	}
	if _, err := Get("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsRunSmall(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(context.Background(), smallCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			out := tab.Render()
			if !strings.Contains(out, tab.Columns[0]) {
				t.Errorf("%s render missing header", e.ID)
			}
		})
	}
}

func TestExperimentsDeterministicPerSeed(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E6"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := e.Run(context.Background(), smallCfg())
		if err != nil {
			t.Fatalf("%s run 1: %v", id, err)
		}
		t2, err := e.Run(context.Background(), smallCfg())
		if err != nil {
			t.Fatalf("%s run 2: %v", id, err)
		}
		if t1.Render() != t2.Render() {
			t.Errorf("%s not deterministic for a fixed seed", id)
		}
	}
}

// TestExperimentsDeterministicAcrossWorkers is the sharding guarantee
// surfaced at the table level: every experiment renders byte-identically
// whether its sweeps run on one worker or eight.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			seq := smallCfg()
			seq.Workers = 1
			par := smallCfg()
			par.Workers = 8
			t1, err := e.Run(context.Background(), seq)
			if err != nil {
				t.Fatalf("%s workers=1: %v", e.ID, err)
			}
			t2, err := e.Run(context.Background(), par)
			if err != nil {
				t.Fatalf("%s workers=8: %v", e.ID, err)
			}
			if r1, r2 := t1.Render(), t2.Render(); r1 != r2 {
				t.Errorf("%s table depends on the worker count:\nworkers=1:\n%s\nworkers=8:\n%s", e.ID, r1, r2)
			}
		})
	}
}

// TestE3UnsortedSizes regresses the out-of-range panic when the size
// override is not ascending: maxP must be the maximum, not the last entry.
func TestE3UnsortedSizes(t *testing.T) {
	e, err := Get("E3")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), Config{Seed: 1, Sizes: []int{64, 16}})
	if err != nil {
		t.Fatalf("descending sizes: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
}

// TestE5DuplicateSizes regresses the nil-report panic when the size sweep
// repeats a value: per-size slots are keyed by index, not by n.
func TestE5DuplicateSizes(t *testing.T) {
	e, err := Get("E5")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), Config{Seed: 1, Sizes: []int{16, 16}})
	if err != nil {
		t.Fatalf("duplicate sizes: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
}

// TestExperimentsCancellation cancels the context up front: every
// experiment must fail fast instead of computing its table.
func TestExperimentsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range All() {
		if _, err := e.Run(ctx, smallCfg()); err == nil {
			t.Errorf("%s ignored a cancelled context", e.ID)
		}
	}
}

func TestE2ExactIdentity(t *testing.T) {
	// The flagship identity: the engine run on the reconstructed worst
	// permutation must achieve a(n-1) + floor(n/2) exactly; E2 reports it
	// in the "exact" column.
	e, err := Get("E2")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), Config{Seed: 1, Sizes: []int{16, 64, 256, 1024}, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	exactCol := -1
	for i, c := range tab.Columns {
		if c == "exact" {
			exactCol = i
		}
	}
	if exactCol < 0 {
		t.Fatal("no exact column in E2")
	}
	for _, row := range tab.Rows {
		if row[exactCol] != "true" {
			t.Errorf("E2 row %v: engine/theory mismatch", row)
		}
	}
}

// TestE10ExactVsSampled is the CI smoke of the exact-vs-Monte-Carlo
// agreement table: small sizes, reduced sampling, and the hard identities —
// worstGap >= 0 everywhere, full coverage closing the gap to zero.
func TestE10ExactVsSampled(t *testing.T) {
	e, err := Get("E10")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), Config{Seed: 3, Sizes: []int{5, 6}, Trials: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("no %q column", name)
		return -1
	}
	gap := col("worstGap")
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[gap], "-") {
			t.Errorf("negative worstGap in row %v", row)
		}
	}
	// 120 sampled trials cover all 120 permutations of n=5 with high
	// multiplicity... but not necessarily every one; the gap identity is
	// what matters. With sizes beyond the cap the experiment must clamp,
	// not fail.
	tab2, err := e.Run(context.Background(), Config{Seed: 3, Sizes: []int{5, 4096}, Trials: 60})
	if err != nil {
		t.Fatalf("oversized size override: %v", err)
	}
	if len(tab2.Rows) != 1 {
		t.Fatalf("clamped run has %d rows, want 1", len(tab2.Rows))
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow(ci(1), cf(2.5))
	tab.AddRow(cs("x"), cs("y"))
	tab.AddNote("note %d", 7)
	out := tab.Render()
	for _, want := range []string{"demo", "a", "bb", "2.500", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	if err := tab.WriteCSV(csv.NewWriter(&sb)); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(sb.String(), "a,bb") {
		t.Errorf("csv missing header: %q", sb.String())
	}
	lines := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1
	if lines != 3 {
		t.Errorf("csv has %d lines, want 3", lines)
	}
}

// TestConfigKnobsReachEveryExperiment pins the expandSweeps/configSpec
// contract: -backend and -streamids act uniformly whether an experiment
// exposes Sweeps or runs inline specs. The implicit backend must fail
// typed on E9's non-implicit families, must leave bytes alone where it is
// servable, and -streamids must be a no-op (not a conflict) on sweeps
// without sampled draws — E2's fixed worst permutation, E10's exhaustive
// enumeration.
func TestConfigKnobsReachEveryExperiment(t *testing.T) {
	ctx := context.Background()

	e9, err := Get("E9")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.Backend = "implicit"
	if _, err := e9.Run(ctx, cfg); err == nil {
		t.Fatal("E9 with the implicit backend ran; want ImplicitUnsupportedError for the grid family")
	} else {
		var iu *sweep.ImplicitUnsupportedError
		if !errors.As(err, &iu) {
			t.Fatalf("E9 implicit error = %v, want *sweep.ImplicitUnsupportedError", err)
		}
	}

	for _, id := range []string{"E2", "E10", "E5", "E8"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		base, err := e.Run(ctx, smallCfg())
		if err != nil {
			t.Fatalf("%s base: %v", id, err)
		}
		cfg := smallCfg()
		cfg.Backend = "builder"
		viaBuilder, err := e.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%s -backend builder: %v", id, err)
		}
		if base.Render() != viaBuilder.Render() {
			t.Errorf("%s: builder backend changed the bytes", id)
		}
	}

	// StreamIDs applies only to sampled draws: E2 (sweep 0 fixed Assign)
	// and E10 (exhaustive + sampled comparison) must run, and E2's
	// sampled column must change while the exact column stays pinned.
	for _, id := range []string{"E2", "E10"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallCfg()
		cfg.StreamIDs = true
		if _, err := e.Run(ctx, cfg); err != nil {
			t.Fatalf("%s with StreamIDs: %v", id, err)
		}
	}
}
