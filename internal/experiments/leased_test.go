package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestLeasedRunTablesByteIdentical is the lease-mode acceptance at the
// table level: for E2, E6 and the exhaustive E10, executing through the
// lease protocol and collecting from the store renders byte-identical
// tables to a single-process run.
func TestLeasedRunTablesByteIdentical(t *testing.T) {
	cases := []struct {
		id  string
		cfg Config
	}{
		{"E2", Config{Seed: 7, Sizes: []int{16, 32, 64}, Trials: 6}},
		{"E6", Config{Seed: 11, Sizes: []int{16, 33}, Trials: 9}},
		{"E10", Config{Seed: 3, Sizes: []int{5, 6}, Trials: 60}},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			e, err := Get(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.Run(context.Background(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := sweep.NewMemStore()
			stats, err := RunLeasedSweeps(context.Background(), e, tc.cfg, st,
				sweep.LeaseOptions{Worker: "solo", GrainsPerSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Grains == 0 {
				t.Errorf("no grains executed: %+v", stats)
			}
			got, err := MergeLeased(e, tc.cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			if want.Render() != got.Render() {
				t.Errorf("leased table differs from single process\nwant:\n%s\ngot:\n%s",
					want.Render(), got.Render())
			}
			// The store is self-describing: the manifest names the run.
			runs, err := FindLeasedRuns(st)
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != 1 || runs[0].Experiment != tc.id {
				t.Errorf("FindLeasedRuns = %+v, want one %s run", runs, tc.id)
			}
		})
	}
}

// TestLeasedConcurrentExecutorsIdentical runs three unequal-speed executors
// concurrently over one store — the in-process version of three machines —
// and demands the single-process bytes.
func TestLeasedConcurrentExecutorsIdentical(t *testing.T) {
	e, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 13, Sizes: []int{16, 24}, Trials: 30}
	want, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := sweep.NewMemStore()
	delays := []time.Duration{0, time.Millisecond, 2 * time.Millisecond}
	var wg sync.WaitGroup
	errs := make([]error, len(delays))
	for i := range delays {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunLeasedSweeps(context.Background(), e, cfg, st, sweep.LeaseOptions{
				Worker:        fmt.Sprintf("w%d", i),
				GrainsPerSize: 6,
				Poll:          time.Millisecond,
				Throttle:      func(sweep.Block) { time.Sleep(delays[i]) },
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("executor %d: %v", i, err)
		}
	}
	got, err := MergeLeased(e, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Errorf("concurrent leased table differs from single process\nwant:\n%s\ngot:\n%s",
			want.Render(), got.Render())
	}
}

// TestLeasedManifestRejectsForeignRun: a store holding one (experiment,
// config) run must turn away an executor or merger presenting another.
func TestLeasedManifestRejectsForeignRun(t *testing.T) {
	e, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 1, Sizes: []int{16}, Trials: 4}
	st := sweep.NewMemStore()
	if _, err := RunLeasedSweeps(context.Background(), e, cfg, st,
		sweep.LeaseOptions{Worker: "a", GrainsPerSize: 2}); err != nil {
		t.Fatal(err)
	}
	// Same prefix, different config — only possible if someone plants a
	// manifest by hand, but the executor must still refuse to join.
	other := cfg
	other.Trials = 8
	var buf bytes.Buffer
	if err := sweep.EncodeFile(&buf, formatLeaseManifest,
		&LeaseManifest{Experiment: "E6", Config: other}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(manifestKey(LeaseRunPrefix(e, cfg)), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLeasedSweeps(context.Background(), e, cfg, st,
		sweep.LeaseOptions{Worker: "b", GrainsPerSize: 2}); err == nil {
		t.Fatal("foreign manifest: want error")
	}
	// A different config addresses a different namespace: merging it finds
	// nothing rather than mixing runs.
	if _, err := MergeLeased(e, other, st); err == nil {
		t.Fatal("merge of an absent run: want error")
	}
}

// TestMergeShardsRejectsOverlappingRanges is the double-counting
// satellite: shard files whose trial-range claims overlap — the classic
// forgery being one file duplicated and relabelled as another shard index
// — must fail with the typed *sweep.OverlapError, or with the extremal
// containment check when the forgery drops the explicit claims.
func TestMergeShardsRejectsOverlappingRanges(t *testing.T) {
	e, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 2, Sizes: []int{16, 24}, Trials: 20}
	a, err := RunShard(context.Background(), e, cfg, sweep.Shard{Index: 0, Count: 2}, "")
	if err != nil {
		t.Fatal(err)
	}

	// Forgery 1: duplicate shard 0, relabel it shard 1, keep its recorded
	// ranges. The claims collide and the merge says so, typed.
	dup := *a
	dup.Shard = sweep.Shard{Index: 1, Count: 2}
	var ov *sweep.OverlapError
	if _, _, err := MergeShards(a, &dup); !errors.As(err, &ov) {
		t.Fatalf("relabelled duplicate with ranges: want *sweep.OverlapError, got %v", err)
	}

	// Forgery 2: same relabelling with the explicit claims stripped (a
	// pre-Ranges file). Trial counts alone cannot tell — both slices owe 10
	// trials — but the extremal trial indices still point into shard 0's
	// slice and are caught.
	bare := *a
	bare.Shard = sweep.Shard{Index: 1, Count: 2}
	bare.Ranges = nil
	aBare := *a
	aBare.Ranges = nil
	if _, _, err := MergeShards(&aBare, &bare); err == nil {
		t.Fatal("relabelled duplicate without ranges: want error")
	}

	// An honest complement still merges fine.
	b, err := RunShard(context.Background(), e, cfg, sweep.Shard{Index: 1, Count: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeShards(a, b); err != nil {
		t.Fatalf("honest shard set: %v", err)
	}
}
