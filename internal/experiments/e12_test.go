package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestE10QuotientByteIdentical: -quotient is a pure perf toggle at the
// table level — E10's render must be byte-identical with and without it at
// sizes both caps admit (the CI smoke diff automates the same check).
func TestE10QuotientByteIdentical(t *testing.T) {
	e, err := Get("E10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 3, Sizes: []int{5, 6, 7}, Trials: 50}
	full, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Quotient = true
	quot, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f, q := full.Render(), quot.Render(); f != q {
		t.Errorf("E10 table depends on the quotient toggle:\nfull:\n%s\nquotient:\n%s", f, q)
	}
}

// TestE12RejectsQuotientFlag: the cross-check pins its own quotient/full
// split; a config-level -quotient would make the diff a tautology.
func TestE12RejectsQuotientFlag(t *testing.T) {
	e, err := Get("E12")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := e.Run(context.Background(), Config{Seed: 1, Quotient: true})
	if rerr == nil || !strings.Contains(rerr.Error(), "-quotient") {
		t.Errorf("E12 with Quotient: err = %v, want the pinned-split rejection", rerr)
	}
}

// TestE12ReportsIdentity: the table's identical column is true at every
// size (tabulation errors on the first divergence, so a clean run IS the
// identity proof).
func TestE12ReportsIdentity(t *testing.T) {
	e, err := Get("E12")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), Config{Seed: 1, Sizes: []int{5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	if out := tab.Render(); !strings.Contains(out, "true") || strings.Contains(out, "false") {
		t.Errorf("E12 identical column not uniformly true:\n%s", out)
	}
}
