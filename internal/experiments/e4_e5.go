package experiments

import (
	"context"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/algorithms/coloring"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
	"repro/internal/sweep"
)

// verifyColoring adapts the 3-colouring checker to the sweep hook.
func verifyColoring(g graph.Graph, a ids.Assignment, res *local.Result) error {
	return problems.Coloring{K: 3}.Verify(g, a, res.Outputs)
}

// e4 reproduces the upper-bound side of §3: Cole-Vishkin 3-colours the ring
// in O(log* n) for every vertex — with or without knowledge of the
// identifier space — so the average and maximum radius coincide (up to a
// constant) and stay minuscule across orders of magnitude of n.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "3-colouring upper bound: Cole-Vishkin radius is O(log* n), avg ≈ max",
		Claim: "§3: \"it is possible to 3-colour the n-node ring in O(log* n) rounds even without the knowledge of n\"",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			defSizes := []int{16, 64, 256, 1024, 4096, 16384, 65536}

			cvSpec := cycleSpec(cfg, defSizes, 1)
			cvSpec.Alg = func(_ int, a ids.Assignment) local.ViewAlgorithm { return coloring.ForMaxID(a.MaxID()) }
			cvSpec.Verify = verifyColoring
			cvRes, err := sweep.Run(ctx, configSpec(cvSpec, cfg))
			if err != nil {
				return nil, err
			}

			uniSpec := cycleSpec(cfg, defSizes, 1)
			uniSpec.Alg = func(int, ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} }
			uniSpec.Verify = verifyColoring
			uniRes, err := sweep.Run(ctx, configSpec(uniSpec, cfg))
			if err != nil {
				return nil, err
			}

			t := &Table{
				Title:   "E4: Cole-Vishkin (known ID bits) and uniform variant (no knowledge)",
				Columns: []string{"n", "log*(n)", "cvMax", "cvAvg", "uniMax", "uniAvg", "verified"},
			}
			worstCV, worstUni := 0, 0
			for i, cv := range cvRes.Sizes {
				uni := uniRes.Sizes[i]
				if cv.WorstMax.Max > worstCV {
					worstCV = cv.WorstMax.Max
				}
				if uni.WorstMax.Max > worstUni {
					worstUni = uni.WorstMax.Max
				}
				t.AddRow(ci(cv.N), ci(analytic.LogStar(float64(cv.N))), ci(cv.WorstMax.Max), cf(cv.WorstAvg.Avg),
					ci(uni.WorstMax.Max), cf(uni.WorstAvg.Avg), cb(cv.Verified() && uni.Verified()))
			}
			t.AddNote("radii stay <= %d (CV) and <= %d (uniform) across 4 decades of n: the log* plateau", worstCV, worstUni)
			t.AddNote("avg/max ratio stays Θ(1): colouring does not average down (matches Theorem 1)")
			return t, nil
		},
	}
}

// e5 reproduces Theorem 1's construction: the adversarial permutation pi
// keeps the average radius of a 3-colouring algorithm at its Ω(log* n)
// floor; even the most favourable identifier arrangement cannot beat it.
// The three permutation regimes (favourable, random, adversarial) are three
// sweeps sharing the seed; the adversarial builders run concurrently across
// sizes, which is where E5's wall-clock goes.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "3-colouring lower bound: adversarial pi keeps the average at Ω(log* n)",
		Claim: "Theorem 1 and its slice construction (§3)",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			defSizes := []int{64, 128, 256, 512}
			alg := func(int, ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} }

			// Favourable arrangement: sorted magnitudes cluster small
			// identifiers, maximising early phase-0 commitments.
			favSpec := cycleSpec(cfg, defSizes, 1)
			// One deterministic assignment per size: extra trials would be
			// byte-identical reruns.
			favSpec.Trials = 1
			favSpec.Alg = alg
			favSpec.Assign = assignFixed(func(n int) (ids.Assignment, error) { return ids.Identity(n), nil })
			favRes, err := sweep.Run(ctx, configSpec(favSpec, cfg))
			if err != nil {
				return nil, err
			}

			rndSpec := cycleSpec(cfg, defSizes, 1)
			rndSpec.Trials = 1
			rndSpec.Alg = alg
			rndRes, err := sweep.Run(ctx, configSpec(rndSpec, cfg))
			if err != nil {
				return nil, err
			}

			advSpec := cycleSpec(cfg, defSizes, 1)
			// Exactly one adversarial build per size: the reports and lemma3
			// slots below are per-size, so multiple trials would race on
			// them (and burn a builder run each).
			advSpec.Trials = 1
			sizes := advSpec.Sizes
			reports := make([]*adversary.Report, len(sizes))
			lemma3s := make([]float64, len(sizes))
			advSpec.Alg = alg
			advSpec.Assign = func(sizeIdx, n, _ int, rng *rand.Rand) (ids.Assignment, error) {
				builder := adversary.Builder{Alg: coloring.Uniform{}}
				pi, report, err := builder.Build(n, rng)
				if err != nil {
					return nil, err
				}
				reports[sizeIdx] = report
				return pi, nil
			}
			advSpec.Verify = verifyColoring
			advSpec.Observe = func(sizeIdx, _ int, g graph.Graph, _ ids.Assignment, res *local.Result) {
				if c, ok := g.(graph.Cycle); ok {
					if r, ok := adversary.Lemma3Ratio(c, res.Radii); ok {
						lemma3s[sizeIdx] = r
					}
				}
			}
			advRes, err := sweep.Run(ctx, configSpec(advSpec, cfg))
			if err != nil {
				return nil, err
			}

			t := &Table{
				Title:   "E5: uniform 3-colouring under favourable / random / adversarial permutations",
				Columns: []string{"n", "favAvg", "rndAvg", "advAvg", "slices", "sliceR", "lemma3min", "verified"},
			}
			for i, adv := range advRes.Sizes {
				report := reports[i]
				t.AddRow(ci(adv.N), cf(favRes.Sizes[i].WorstAvg.Avg), cf(rndRes.Sizes[i].WorstAvg.Avg),
					cf(adv.WorstAvg.Avg), ci(report.Slices), ci(report.TargetRadius), cf(lemma3s[i]), cb(adv.Verified()))
			}
			t.AddNote("no arrangement pushes the average below the Ω(log* n) floor; the adversarial pi pins slice centres to radius >= R")
			t.AddNote("lemma3min is the empirical constant of Lemma 3 (avg radius near a radius-r vertex / r)")
			return t, nil
		},
	}
}
