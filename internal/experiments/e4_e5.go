package experiments

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/algorithms/coloring"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

// e4 reproduces the upper-bound side of §3: Cole-Vishkin 3-colours the ring
// in O(log* n) for every vertex — with or without knowledge of the
// identifier space — so the average and maximum radius coincide (up to a
// constant) and stay minuscule across orders of magnitude of n.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "3-colouring upper bound: Cole-Vishkin radius is O(log* n), avg ≈ max",
		Claim: "§3: \"it is possible to 3-colour the n-node ring in O(log* n) rounds even without the knowledge of n\"",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{16, 64, 256, 1024, 4096, 16384, 65536})
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E4: Cole-Vishkin (known ID bits) and uniform variant (no knowledge)",
				Columns: []string{"n", "log*(n)", "cvMax", "cvAvg", "uniMax", "uniAvg", "verified"},
			}
			worstCV, worstUni := 0, 0
			for _, n := range sizes {
				c, err := graph.NewCycle(n)
				if err != nil {
					return nil, err
				}
				a := ids.Random(n, rng)
				verified := true

				cv, err := local.RunView(c, a, coloring.ForMaxID(a.MaxID()))
				if err != nil {
					return nil, err
				}
				if err := (problems.Coloring{K: 3}).Verify(c, a, cv.Outputs); err != nil {
					verified = false
				}
				uni, err := local.RunView(c, a, coloring.Uniform{})
				if err != nil {
					return nil, err
				}
				if err := (problems.Coloring{K: 3}).Verify(c, a, uni.Outputs); err != nil {
					verified = false
				}
				if cv.MaxRadius() > worstCV {
					worstCV = cv.MaxRadius()
				}
				if uni.MaxRadius() > worstUni {
					worstUni = uni.MaxRadius()
				}
				t.AddRow(n, analytic.LogStar(float64(n)), cv.MaxRadius(), cv.AvgRadius(),
					uni.MaxRadius(), uni.AvgRadius(), verified)
			}
			t.AddNote("radii stay <= %d (CV) and <= %d (uniform) across 4 decades of n: the log* plateau", worstCV, worstUni)
			t.AddNote("avg/max ratio stays Θ(1): colouring does not average down (matches Theorem 1)")
			return t, nil
		},
	}
}

// e5 reproduces Theorem 1's construction: the adversarial permutation pi
// keeps the average radius of a 3-colouring algorithm at its Ω(log* n)
// floor; even the most favourable identifier arrangement cannot beat it.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "3-colouring lower bound: adversarial pi keeps the average at Ω(log* n)",
		Claim: "Theorem 1 and its slice construction (§3)",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{64, 128, 256, 512})
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E5: uniform 3-colouring under favourable / random / adversarial permutations",
				Columns: []string{"n", "favAvg", "rndAvg", "advAvg", "slices", "sliceR", "lemma3min", "verified"},
			}
			for _, n := range sizes {
				c, err := graph.NewCycle(n)
				if err != nil {
					return nil, err
				}
				alg := coloring.Uniform{}

				// Favourable arrangement: sorted magnitudes cluster small
				// identifiers, maximising early phase-0 commitments.
				fav := ids.Identity(n)
				favRes, err := local.RunView(c, fav, alg)
				if err != nil {
					return nil, err
				}
				rndRes, err := local.RunView(c, ids.Random(n, rng), alg)
				if err != nil {
					return nil, err
				}
				builder := adversary.Builder{Alg: alg}
				pi, report, err := builder.Build(n, rng)
				if err != nil {
					return nil, err
				}
				advRes, err := local.RunView(c, pi, alg)
				if err != nil {
					return nil, err
				}
				verified := true
				if err := (problems.Coloring{K: 3}).Verify(c, pi, advRes.Outputs); err != nil {
					verified = false
				}
				lemma3 := 0.0
				if r, ok := adversary.Lemma3Ratio(c, advRes.Radii); ok {
					lemma3 = r
				}
				t.AddRow(n, favRes.AvgRadius(), rndRes.AvgRadius(), advRes.AvgRadius(),
					report.Slices, report.TargetRadius, lemma3, verified)
			}
			t.AddNote("no arrangement pushes the average below the Ω(log* n) floor; the adversarial pi pins slice centres to radius >= R")
			t.AddNote("lemma3min is the empirical constant of Lemma 3 (avg radius near a radius-r vertex / r)")
			return t, nil
		},
	}
}
