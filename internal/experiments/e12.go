package experiments

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/algorithms/largestid"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// e12Sizes resolves the cross-check's size sweep. Both sides must run, and
// the full side is n!-bounded, so the cap is exact.MaxFullEnumerationN
// regardless of Config.Quotient.
func e12Sizes(cfg Config) (sizes []int, clamped bool) {
	defSizes := []int{5, 6, 7, 8}
	sizes = make([]int, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		if n >= 3 && n <= exact.MaxFullEnumerationN {
			sizes = append(sizes, n)
		} else {
			clamped = true
		}
	}
	if len(sizes) == 0 {
		sizes, clamped = defSizes, clamped && len(cfg.Sizes) > 0
	}
	return sizes, clamped
}

// e12 is the symmetry-quotient acceptance gate: the same exhaustive cycle
// enumeration run twice — once over the full n! rank space, once over the
// n!/2n canonical representatives folded with orbit weight — and diffed
// field by field. The quotient's claim is not approximate agreement but
// BIT identity of every aggregate (totals, histogram, float summaries,
// extremal trial indices, which the quotient reports in full-rank
// coordinates); tabulation fails on the first divergent size. The
// experiment pins its own quotient split, so it rejects Config.Quotient —
// that flag would silently turn the full baseline into a second quotient
// run and the diff into a tautology.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Symmetry-quotient enumeration vs full n! fold: bit-identity",
		Claim: "orbit-weighted canonical folds reproduce the exact §2/§4 ground truth exactly, 2n× cheaper",
		Sweeps: func(cfg Config) ([]sweep.Spec, error) {
			if cfg.Quotient {
				return nil, fmt.Errorf("experiments: E12 pins its own quotient/full split; drop -quotient")
			}
			sizes, _ := e12Sizes(cfg)
			base := sweep.Spec{
				Seed:       cfg.Seed,
				Sizes:      sizes,
				Exhaustive: true,
				Workers:    cfg.Workers,
				NoAtlas:    cfg.NoAtlas,
				NoKernels:  cfg.NoKernels,
				Graph:      func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
				Alg:        func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
			}
			quot := base
			quot.Quotient = true
			return []sweep.Spec{base, quot}, nil
		},
		Tabulate: func(cfg Config, results []*sweep.Result) (*Table, error) {
			full, quot := results[0], results[1]
			_, clamped := e12Sizes(cfg)
			t := &Table{
				Title: "E12: quotient enumeration vs full n! fold",
				Columns: []string{"n", "perms", "reps", "speedup",
					"worstAvg", "meanAvg", "identical"},
			}
			for i := range full.Sizes {
				f, q := full.Sizes[i], quot.Sizes[i]
				n := f.N
				fact, err := ids.Factorial(n)
				if err != nil {
					return nil, err
				}
				reps := fact / uint64(2*n)
				same := reflect.DeepEqual(f, q)
				t.AddRow(ci(n), ci(f.Trials), ci(int64(reps)),
					cf(float64(f.Trials)/float64(reps)),
					cf(f.WorstAvg.Avg), cf(f.MeanAvg()), cb(same))
				if !same {
					return t, fmt.Errorf("E12: quotient aggregates diverge from the full fold at n=%d\nfull:     %+v\nquotient: %+v", n, f, q)
				}
			}
			t.AddNote("identical = reflect.DeepEqual on every SizeStats field: totals, histogram, float summaries, extremal full-rank trial indices")
			t.AddNote("speedup = n!/(n!/2n) = 2n executed representatives saved per orbit — the measured wall-clock gain is benchmarked in BenchmarkExactCycleQuotient*")
			if clamped {
				t.AddNote("sizes beyond exact.MaxFullEnumerationN=%d were dropped: the full-fold baseline must also run", exact.MaxFullEnumerationN)
			}
			return t, nil
		},
	}
}
