package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sweep"
)

// Config tunes an experiment run. The zero value plus a seed gives the
// defaults used in EXPERIMENTS.md; benchmarks use reduced sizes. The JSON
// tags make a Config part of the shard/checkpoint file identity
// (distributed.go): two processes cooperating on one table must present
// equal result-affecting fields (Seed, Sizes, Trials — Workers and the
// perf toggles never change bytes and are ignored by the comparison).
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly,
	// independent of Workers.
	Seed int64 `json:"seed"`
	// Sizes overrides the experiment's default n sweep when non-empty.
	Sizes []int `json:"sizes,omitempty"`
	// Trials is the number of sampled permutations per size (default
	// experiment-specific).
	Trials int `json:"trials,omitempty"`
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// NoAtlas disables the sweep engine's shared per-size ball atlas.
	// Tables are byte-identical either way; the toggle exists for
	// benchmarking the fast path against the builder baseline and for
	// bisecting perf regressions.
	NoAtlas bool `json:"noAtlas,omitempty"`
	// NoKernels pins atlas-backed runs to the per-vertex view path instead
	// of the flat decision kernels. Tables are byte-identical either way;
	// like NoAtlas it exists for A/B profiling (avgbench -nokernels).
	NoKernels bool `json:"noKernels,omitempty"`
	// Backend names the sweep ball-sourcing backend ("", "atlas",
	// "builder", "implicit" — see sweep.Backend). Tables are byte-identical
	// across backends, so like the toggles above it never changes result
	// bytes; the implicit backend is what fits n = 10^6..10^8 sweeps in
	// O(workers) memory (avgbench -backend).
	Backend string `json:"backend,omitempty"`
	// Quotient routes exhaustive sweeps through symmetry-quotient
	// enumeration: only canonical orbit representatives execute, each
	// folded with orbit weight, and the merged aggregates are bit-for-bit
	// identical to the full n! fold. Unlike the pure perf toggles it stays
	// part of the config identity: the plan's trial space becomes the
	// canonical rank space (checkpoints and lease runs carve different
	// coordinates), and it lifts E10's feasible size cap from
	// exact.MaxFullEnumerationN to exact.MaxEnumerationN. Sampled sweeps
	// are unaffected (avgbench -quotient).
	Quotient bool `json:"quotient,omitempty"`
	// StreamIDs switches the sampled identifier draws to the streaming
	// permutation family (ids.StreamPerm). Unlike the perf toggles it
	// CHANGES result bytes — the sampled permutations are a different
	// seeded family — so it is part of the table's identity, like Seed.
	// Sweeps without sampled draws (fixed Assign sources, exhaustive
	// enumeration) are unaffected; see expandSweeps.
	StreamIDs bool `json:"streamIDs,omitempty"`
}

// Experiment is one reproducible claim of the paper.
type Experiment struct {
	// ID is the index key (e.g. "E2").
	ID string
	// Title summarises the claim under test.
	Title string
	// Claim cites the paper location the experiment reproduces.
	Claim string
	// Run executes the experiment and renders its table. The context
	// cancels the underlying sweeps; a cancelled run returns an error.
	// Experiments defining the Sweeps/Tabulate split leave Run nil and the
	// registry derives it, so the single-process path and the sharded
	// cross-process path tabulate through the same code.
	Run func(ctx context.Context, cfg Config) (*Table, error)
	// Sweeps, when non-nil, exposes the experiment's sweeps as plain
	// sweep.Specs — the PLAN an external process can shard or checkpoint
	// (see RunSweeps). Building specs must be pure: no randomness, no
	// execution.
	Sweeps func(cfg Config) ([]sweep.Spec, error)
	// Tabulate folds the merged per-sweep aggregates (one Result per
	// Sweeps entry, same order) into the final table. It must depend on
	// cfg and the aggregates alone, so m merged shard files render the
	// bytes a single process prints.
	Tabulate func(cfg Config, res []*sweep.Result) (*Table, error)
}

// Shardable reports whether the experiment exposes the Sweeps/Tabulate
// split required for cross-process shard and checkpoint runs.
func (e Experiment) Shardable() bool { return e.Sweeps != nil && e.Tabulate != nil }

// registry holds all experiments keyed by ID.
var registry = buildRegistry()

func buildRegistry() map[string]Experiment {
	all := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(), e12(),
	}
	m := make(map[string]Experiment, len(all))
	for _, e := range all {
		if e.Run == nil && e.Shardable() {
			e.Run = derivedRun(e)
		}
		m[e.ID] = e
	}
	return m
}

// derivedRun is the single-process execution of a Sweeps/Tabulate
// experiment: run every sweep unsharded, tabulate the results — the exact
// pipeline shard+merge reproduces across processes.
func derivedRun(e Experiment) func(context.Context, Config) (*Table, error) {
	return func(ctx context.Context, cfg Config) (*Table, error) {
		results, err := RunSweeps(ctx, e, cfg, sweep.Shard{}, "")
		if err != nil {
			return nil, err
		}
		return e.Tabulate(cfg, results)
	}
}

// UnknownExperimentError reports a lookup of an unregistered experiment ID
// and carries the registered IDs so callers (cmd/avgbench) can fail fast
// with the full menu instead of an opaque message.
type UnknownExperimentError struct {
	// ID is the key that missed.
	ID string
	// Known lists the registered IDs in natural order.
	Known []string
}

func (e *UnknownExperimentError) Error() string {
	return fmt.Sprintf("experiments: unknown experiment %q (registered: %s)",
		e.ID, strings.Join(e.Known, ", "))
}

// Get returns the experiment with the given ID; misses are typed
// *UnknownExperimentError listing every registered ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		known := make([]string, 0, len(registry))
		for _, x := range All() {
			known = append(known, x.ID)
		}
		return Experiment{}, &UnknownExperimentError{ID: id, Known: known}
	}
	return e, nil
}

// All returns every experiment in natural ID order (E2 before E10 — plain
// string order would interleave them).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// sizesOrDefault picks the configured sweep or the experiment default.
func sizesOrDefault(cfg Config, def []int) []int {
	if len(cfg.Sizes) > 0 {
		return cfg.Sizes
	}
	return def
}

// trialsOrDefault picks the configured trial count or the default.
func trialsOrDefault(cfg Config, def int) int {
	if cfg.Trials > 0 {
		return cfg.Trials
	}
	return def
}

// cycleSpec is the spec skeleton shared by the ring experiments: sizes and
// trials resolved against the experiment defaults, cycle instances, and the
// config's seed and worker pool.
func cycleSpec(cfg Config, defSizes []int, defTrials int) sweep.Spec {
	return sweep.Spec{
		Seed:      cfg.Seed,
		Sizes:     sizesOrDefault(cfg, defSizes),
		Trials:    trialsOrDefault(cfg, defTrials),
		Workers:   cfg.Workers,
		NoAtlas:   cfg.NoAtlas,
		NoKernels: cfg.NoKernels,
		Graph:     func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
	}
}

// expandSweeps is how every runner obtains an experiment's specs: it calls
// Sweeps and then applies the config's cross-cutting knobs — backend
// selection and streaming identifier draws — uniformly, so E1–E11 all
// honour -backend/-streamids without forwarding them one by one. A spec
// that pinned its own backend (E11 defaulting to implicit) keeps it, and
// StreamIDs only lands where sampled draws actually happen: a fixed
// Assign source or exhaustive rank enumeration draws nothing, so the flag
// is a no-op there rather than a conflict.
func expandSweeps(e Experiment, cfg Config) ([]sweep.Spec, error) {
	specs, err := e.Sweeps(cfg)
	if err != nil {
		return nil, err
	}
	for k := range specs {
		specs[k] = configSpec(specs[k], cfg)
	}
	return specs, nil
}

// configSpec applies the config's backend and streaming-draw knobs to one
// spec — the per-spec form of expandSweeps, for the custom-Run experiments
// (E4, E5, E7, E8, E9) that call sweep.Run with inline specs.
func configSpec(spec sweep.Spec, cfg Config) sweep.Spec {
	if spec.Backend == sweep.BackendAuto {
		spec.Backend = sweep.Backend(cfg.Backend)
	}
	if cfg.StreamIDs && spec.Assign == nil && !spec.Exhaustive {
		spec.StreamIDs = true
	}
	// Quotient only means something on the exhaustive path; sampled sweeps
	// ignore it rather than conflict, mirroring StreamIDs above.
	if cfg.Quotient && spec.Exhaustive {
		spec.Quotient = true
	}
	return spec
}

// assignFixed adapts a deterministic per-size assignment constructor into a
// sweep assignment source.
func assignFixed(build func(n int) (ids.Assignment, error)) func(int, int, int, *rand.Rand) (ids.Assignment, error) {
	return func(_, n, _ int, _ *rand.Rand) (ids.Assignment, error) {
		return build(n)
	}
}
