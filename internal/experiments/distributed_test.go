package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// shardAndMerge runs the experiment as m shard "processes" — each round-
// tripped through the shard-file codec — and merges them back into the
// final table.
func shardAndMerge(t *testing.T, e Experiment, cfg Config, m int) *Table {
	t.Helper()
	files := make([]*ShardFile, m)
	for i := 0; i < m; i++ {
		shardCfg := cfg
		shardCfg.Workers = 1 + i%3 // shard-local parallelism must not matter
		sf, err := RunShard(context.Background(), e, shardCfg, sweep.Shard{Index: i, Count: m}, "")
		if err != nil {
			t.Fatalf("%s shard %d/%d: %v", e.ID, i, m, err)
		}
		var buf bytes.Buffer
		if err := WriteShardFile(&buf, sf); err != nil {
			t.Fatalf("write shard %d/%d: %v", i, m, err)
		}
		decoded, err := ReadShardFile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read shard %d/%d: %v", i, m, err)
		}
		files[i] = decoded
	}
	_, tab, err := MergeShards(files...)
	if err != nil {
		t.Fatalf("%s merge %d shards: %v", e.ID, m, err)
	}
	return tab
}

// TestShardMergeTablesByteIdentical is the tentpole acceptance at the
// table level: for E2, E6 and the exhaustive E10, m shard processes +
// merge render byte-identical tables to a single-process run, for
// m in {1, 2, 4}.
func TestShardMergeTablesByteIdentical(t *testing.T) {
	cases := []struct {
		id  string
		cfg Config
	}{
		{"E2", Config{Seed: 7, Sizes: []int{16, 32, 64}, Trials: 6}},
		{"E6", Config{Seed: 11, Sizes: []int{16, 33}, Trials: 9}},
		{"E10", Config{Seed: 3, Sizes: []int{5, 6}, Trials: 60}},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			e, err := Get(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.Run(context.Background(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []int{1, 2, 4} {
				got := shardAndMerge(t, e, tc.cfg, m)
				if want.Render() != got.Render() {
					t.Errorf("m=%d: merged table differs from single process\nwant:\n%s\ngot:\n%s",
						m, want.Render(), got.Render())
				}
			}
		})
	}
}

// TestCheckpointResumeTableIdentical is the kill+resume acceptance at the
// table level: interrupt a checkpointed E6 run mid-sweep, resume from the
// file with a fresh context, and demand the uninterrupted bytes — then
// check the finished run removed its checkpoint.
func TestCheckpointResumeTableIdentical(t *testing.T) {
	base, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 5, Sizes: []int{16, 24}, Trials: 400, Workers: 2}
	want, err := base.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a copy of E6 whose sweeps cancel the context after a few
	// dozen trials — the "kill".
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int32
	interrupted := base
	interrupted.Sweeps = func(cfg Config) ([]sweep.Spec, error) {
		specs, err := base.Sweeps(cfg)
		if err != nil {
			return nil, err
		}
		for k := range specs {
			specs[k].Observe = func(int, int, graph.Graph, ids.Assignment, *local.Result) {
				if seen.Add(1) == 150 {
					cancel()
				}
			}
		}
		return specs, nil
	}
	if _, err := RunSweeps(ctx, interrupted, cfg, sweep.Shard{}, path); err == nil {
		t.Log("phase 1 completed before the cancel fired; resume runs from scratch")
	}

	// Phase 2: resume with the unwrapped experiment and a fresh context.
	results, err := RunSweeps(context.Background(), base, cfg, sweep.Shard{}, path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := base.Tabulate(cfg, results)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Errorf("resumed table differs from uninterrupted run\nwant:\n%s\ngot:\n%s", want.Render(), got.Render())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("finished run left its checkpoint behind (stat err=%v)", err)
	}
}

// TestCheckpointRejectsForeignRun: a checkpoint written by one
// (experiment, config, shard) must refuse to resume any other.
func TestCheckpointRejectsForeignRun(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 5, Sizes: []int{16}, Trials: 8}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // never lets a block finish the whole run cleanly
	if _, err := RunSweeps(ctx, e6, cfg, sweep.Shard{}, path); err == nil {
		t.Fatal("pre-cancelled run succeeded")
	}
	// The cancelled run may not have written the file; force one.
	specs, err := e6.Sweeps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := loadOrInitCheckpoint(path, e6, cfg, sweep.Shard{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.SaveFile(path, formatCheckpoint, ck); err != nil {
		t.Fatal(err)
	}

	otherCfg := cfg
	otherCfg.Seed = 99
	if _, err := RunSweeps(context.Background(), e6, otherCfg, sweep.Shard{}, path); err == nil {
		t.Error("checkpoint accepted under a different seed")
	}
	if _, err := RunSweeps(context.Background(), e6, cfg, sweep.Shard{Index: 0, Count: 2}, path); err == nil {
		t.Error("checkpoint accepted under a different shard")
	}
	e2, err := Get("E2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweeps(context.Background(), e2, cfg, sweep.Shard{}, path); err == nil {
		t.Error("checkpoint accepted by a different experiment")
	}
	// Workers and perf toggles are normalised away: they never change
	// result bytes, so they must not invalidate a resume.
	relaxed := cfg
	relaxed.Workers = 7
	relaxed.NoAtlas = true
	if _, err := RunSweeps(context.Background(), e6, relaxed, sweep.Shard{}, path); err != nil {
		t.Errorf("perf-only config drift rejected the checkpoint: %v", err)
	}
}

// TestMergeShardsValidation pins the refusal cases: wrong counts, duplicate
// indices, mixed experiments or configs, unshardable targets.
func TestMergeShardsValidation(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 2, Sizes: []int{16}, Trials: 4}
	s0, err := RunShard(context.Background(), e6, cfg, sweep.Shard{Index: 0, Count: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunShard(context.Background(), e6, cfg, sweep.Shard{Index: 1, Count: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeShards(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, _, err := MergeShards(s0); err == nil {
		t.Error("incomplete shard set accepted")
	}
	if _, _, err := MergeShards(s0, s0); err == nil {
		t.Error("duplicate shard accepted")
	}
	other := *s1
	other.Experiment = "E2"
	if _, _, err := MergeShards(s0, &other); err == nil {
		t.Error("mixed experiments accepted")
	}
	driftCfg := *s1
	driftCfg.Config.Seed = 3
	if _, _, err := MergeShards(s0, &driftCfg); err == nil {
		t.Error("mixed configs accepted")
	}
	if _, _, err := MergeShards(s0, s1); err != nil {
		t.Errorf("valid shard set rejected: %v", err)
	}
	forged := *s0
	forged.Experiment = "E3" // E3 is not shardable
	forged.Shard = sweep.Shard{}
	if _, _, err := MergeShards(&forged); err == nil {
		t.Error("shard file for an unshardable experiment accepted")
	}
}

// TestRunSweepsRejectsUnshardable: experiments without the Sweeps/Tabulate
// split fail fast instead of silently running unsharded.
func TestRunSweepsRejectsUnshardable(t *testing.T) {
	e3, err := Get("E3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweeps(context.Background(), e3, Config{Seed: 1}, sweep.Shard{Index: 0, Count: 2}, ""); err == nil {
		t.Error("unshardable experiment accepted a shard run")
	}
}

// TestUnknownExperimentErrorListsIDs: the typed miss carries the whole
// registered menu in natural order.
func TestUnknownExperimentErrorListsIDs(t *testing.T) {
	_, err := Get("E99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var ue *UnknownExperimentError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T is not *UnknownExperimentError", err)
	}
	if ue.ID != "E99" {
		t.Errorf("ID = %q", ue.ID)
	}
	for _, id := range []string{"E1", "E2", "E10"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not list %s", err, id)
		}
	}
	if want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}; len(ue.Known) != len(want) {
		t.Errorf("Known = %v, want %v", ue.Known, want)
	}
}

// TestReadShardFileRejectsForgedPayloads regresses the panic paths: nil
// per-sweep aggregates and invariant-violating stats must fail with the
// codec's typed error, never reach a merge.
func TestReadShardFileRejectsForgedPayloads(t *testing.T) {
	forged := []string{
		`{"format":"experiments.shard","version":2,"payload":{"experiment":"E6","config":{"seed":1},"shard":{"index":0,"count":1},"results":[null]}}`,
		`{"format":"experiments.shard","version":2,"payload":{"experiment":"E6","config":{"seed":1},"shard":{"index":0,"count":1},"results":[{"sizes":[{"n":16,"trials":-5}]}]}}`,
	}
	for i, input := range forged {
		_, err := ReadShardFile(strings.NewReader(input))
		if err == nil {
			t.Errorf("forged payload %d accepted", i)
			continue
		}
		var de *sweep.DecodeError
		if !errors.As(err, &de) {
			t.Errorf("forged payload %d: error %v is not a *sweep.DecodeError", i, err)
		}
	}
}

// TestMergeShardsRejectsWrongShape: files whose aggregates do not match
// the experiment's own sweep plans (sweep count, sizes) are refused with
// an error — previously they panicked in the merge or in Tabulate.
func TestMergeShardsRejectsWrongShape(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 2, Sizes: []int{16}, Trials: 4}
	good, err := RunShard(context.Background(), e6, cfg, sweep.Shard{Index: 0, Count: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	truncated := *good
	truncated.Results = nil
	if _, _, err := MergeShards(&truncated); err == nil {
		t.Error("file with no sweeps accepted")
	}
	nilled := *good
	nilled.Results = []*sweep.Result{nil}
	if _, _, err := MergeShards(&nilled); err == nil {
		t.Error("file with nil aggregates accepted")
	}
	wrongSizes := *good
	wrongSizes.Results = []*sweep.Result{{Sizes: []sweep.SizeStats{{N: 16, Trials: 1}, {N: 32, Trials: 1}}}}
	if _, _, err := MergeShards(&wrongSizes); err == nil {
		t.Error("file with extra sizes accepted")
	}
	wrongN := *good
	wrongN.Results = []*sweep.Result{{Sizes: []sweep.SizeStats{{N: 99, Trials: 1}}}}
	if _, _, err := MergeShards(&wrongN); err == nil {
		t.Error("file with mismatched n accepted")
	}
}

// TestCheckpointFailureAbortsPromptly: a run whose checkpoint cannot be
// written must fail after the first completed block, not execute the
// whole sweep first.
func TestCheckpointFailureAbortsPromptly(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	// Enough trials that completing the sweep would be clearly slower than
	// aborting at the first block.
	cfg := Config{Seed: 8, Sizes: []int{64}, Trials: 50000, Workers: 2}
	var observed atomic.Int32
	counting := e6
	counting.Sweeps = func(cfg Config) ([]sweep.Spec, error) {
		specs, err := e6.Sweeps(cfg)
		if err != nil {
			return nil, err
		}
		for k := range specs {
			specs[k].Observe = func(int, int, graph.Graph, ids.Assignment, *local.Result) {
				observed.Add(1)
			}
		}
		return specs, nil
	}
	_, err = RunSweeps(context.Background(), counting, cfg, sweep.Shard{}, "/nonexistent-dir/sub/ck")
	if err == nil {
		t.Fatal("unwritable checkpoint path accepted")
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("error %v does not name the checkpoint", err)
	}
	if n := observed.Load(); n >= 50000 {
		t.Errorf("sweep ran all %d trials despite a dead checkpoint", n)
	}
}

// TestCheckpointRejectsForgedFile regresses the panic paths on resume: a
// corrupted or hand-edited checkpoint must fail with the codec's typed
// error before any work runs — not nil-deref at the plan comparison or
// blow an index inside Fold mid-sweep.
func TestCheckpointRejectsForgedFile(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 5, Sizes: []int{16}, Trials: 8}
	forged := []string{
		// nil per-sweep record
		`{"format":"experiments.checkpoint","version":2,"payload":{"experiment":"E6","config":{"seed":5,"sizes":[16],"trials":8},"shard":{"index":0,"count":0},"sweeps":[null]}}`,
		// done/sizes arrays shorter than the plan's size list
		`{"format":"experiments.checkpoint","version":2,"payload":{"experiment":"E6","config":{"seed":5,"sizes":[16],"trials":8},"shard":{"index":0,"count":0},"sweeps":[{"plan":{"seed":5,"sizes":[16],"trials":8,"shard":{"index":0,"count":0}},"done":[],"sizes":[]}]}}`,
		// invariant-violating aggregates
		`{"format":"experiments.checkpoint","version":2,"payload":{"experiment":"E6","config":{"seed":5,"sizes":[16],"trials":8},"shard":{"index":0,"count":0},"sweeps":[{"plan":{"seed":5,"sizes":[16],"trials":8,"shard":{"index":0,"count":0}},"done":[[]],"sizes":[{"n":16,"trials":-3}]}]}}`,
	}
	for i, input := range forged {
		path := filepath.Join(t.TempDir(), "forged.ckpt")
		if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := RunSweeps(context.Background(), e6, cfg, sweep.Shard{}, path)
		if err == nil {
			t.Errorf("forged checkpoint %d accepted", i)
			continue
		}
		var de *sweep.DecodeError
		if !errors.As(err, &de) {
			t.Errorf("forged checkpoint %d: error %v is not a *sweep.DecodeError", i, err)
		}
	}
}

// TestRunShardToFileDurability: -out is opened before any sweep runs (bad
// paths fail fast), the happy path leaves a readable shard file and no
// checkpoint, and a failed run leaves no half-written shard file behind.
func TestRunShardToFileDurability(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 3, Sizes: []int{16}, Trials: 6}
	shard := sweep.Shard{Index: 0, Count: 2}

	if err := RunShardToFile(context.Background(), e6, cfg, shard, "", "/nonexistent-dir/out.json"); err == nil {
		t.Error("unwritable -out accepted")
	}

	dir := t.TempDir()
	out := filepath.Join(dir, "s0.json")
	ckpt := filepath.Join(dir, "s0.ckpt")
	if err := RunShardToFile(context.Background(), e6, cfg, shard, ckpt, out); err != nil {
		t.Fatalf("shard run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := ReadShardFile(f)
	f.Close()
	if err != nil {
		t.Fatalf("shard file unreadable: %v", err)
	}
	if sf.Shard != shard {
		t.Errorf("shard file records %+v", sf.Shard)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint survived a durably-written shard file (stat err=%v)", err)
	}

	// A cancelled run must not leave an empty shard file masquerading as
	// real aggregates.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	out2 := filepath.Join(dir, "s1.json")
	if err := RunShardToFile(cancelled, e6, cfg, shard, "", out2); err == nil {
		t.Fatal("cancelled shard run succeeded")
	}
	if _, err := os.Stat(out2); !os.IsNotExist(err) {
		t.Errorf("failed run left a shard file behind (stat err=%v)", err)
	}
}

// TestMergeShardsRejectsTruncatedTrials: an aggregate whose trial count
// does not equal the span its shard slice owes — self-consistent but
// truncated — must be refused, not averaged into a silently wrong table.
func TestMergeShardsRejectsTruncatedTrials(t *testing.T) {
	e6, err := Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 2, Sizes: []int{16}, Trials: 4}
	s0, err := RunShard(context.Background(), e6, cfg, sweep.Shard{Index: 0, Count: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunShard(context.Background(), e6, cfg, sweep.Shard{Index: 1, Count: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	tampered := *s1
	res := *s1.Results[0]
	res.Sizes = append([]sweep.SizeStats(nil), s1.Results[0].Sizes...)
	res.Sizes[0].Trials = 1 // still passes every aggregate invariant
	tampered.Results = []*sweep.Result{&res}
	if _, _, err := MergeShards(s0, &tampered); err == nil {
		t.Error("truncated shard aggregate accepted")
	}
}
