package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

// e9 explores the second further-work question of §4: "we only consider
// the cycle topology, and results for more general graphs are missing".
// The pruning algorithm is topology-agnostic, so we measure both
// complexity measures across graph families. The emerging picture: the
// separation is governed by ball growth — on linearly growing balls
// (cycle, path) the average is Θ(log n); on polynomially growing balls
// (grid) the probability of being a d-ball maximum decays like 1/|B(d)|,
// the expected radius series converges, and the average is O(1); on
// expanders/cliques everything collapses to the diameter.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Largest ID beyond the cycle: ball growth governs the separation",
		Claim: "§4 further work: \"results for more general graphs are missing\"",
		Run: func(cfg Config) (*Table, error) {
			trials := trialsOrDefault(cfg, 3)
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E9: pruning algorithm across graph families (random permutations)",
				Columns: []string{"family", "n", "diam", "worstMax", "worstAvg", "max/avg"},
			}
			type instance struct {
				family string
				build  func() (graph.Graph, error)
			}
			sizes := sizesOrDefault(cfg, []int{256, 1024, 4096})
			var cases []instance
			for _, n := range sizes {
				n := n
				side := 1
				for side*side < n {
					side++
				}
				cases = append(cases,
					instance{"cycle", func() (graph.Graph, error) { return graph.NewCycle(n) }},
					instance{"path", func() (graph.Graph, error) { p, err := graph.NewPath(n); return p, err }},
					instance{"grid", func() (graph.Graph, error) { return graph.NewGrid(side, side) }},
					instance{"tree", func() (graph.Graph, error) { return graph.NewRandomTree(n, rng) }},
				)
			}
			// One clique row: the degenerate diameter-1 extreme.
			cases = append(cases, instance{"complete", func() (graph.Graph, error) { return graph.NewComplete(256) }})

			for _, inst := range cases {
				g, err := inst.build()
				if err != nil {
					return nil, fmt.Errorf("E9 %s: %w", inst.family, err)
				}
				n := g.N()
				worstMax := 0
				worstAvg := 0.0
				for trial := 0; trial < trials; trial++ {
					a := ids.Random(n, rng)
					res, err := local.RunView(g, a, largestid.Pruning{})
					if err != nil {
						return nil, err
					}
					if err := (problems.LargestID{}).Verify(g, a, res.Outputs); err != nil {
						return nil, fmt.Errorf("E9 %s: %w", inst.family, err)
					}
					if res.MaxRadius() > worstMax {
						worstMax = res.MaxRadius()
					}
					if res.AvgRadius() > worstAvg {
						worstAvg = res.AvgRadius()
					}
				}
				ratio := 0.0
				if worstAvg > 0 {
					ratio = float64(worstMax) / worstAvg
				}
				t.AddRow(inst.family, n, graph.Diameter(g), worstMax, worstAvg, ratio)
			}
			t.AddNote("cycle/path: avg grows with log n (linear ball growth)")
			t.AddNote("grid: avg stays O(1) — quadratic ball growth makes Σ P(local max at radius d) converge")
			t.AddNote("complete: both measures collapse to the diameter; no separation to speak of")
			return t, nil
		},
	}
}
