package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// e9 explores the second further-work question of §4: "we only consider
// the cycle topology, and results for more general graphs are missing".
// The pruning algorithm is topology-agnostic, so we measure both
// complexity measures across graph families — one sharded sweep per family.
// The emerging picture: the separation is governed by ball growth — on
// linearly growing balls (cycle, path) the average is Θ(log n); on
// polynomially growing balls (grid) the probability of being a d-ball
// maximum decays like 1/|B(d)|, the expected radius series converges, and
// the average is O(1); on expanders/cliques everything collapses to the
// diameter.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Largest ID beyond the cycle: ball growth governs the separation",
		Claim: "§4 further work: \"results for more general graphs are missing\"",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			trials := trialsOrDefault(cfg, 3)
			sizes := sizesOrDefault(cfg, []int{256, 1024, 4096})

			type family struct {
				name  string
				sizes []int
				build func(n int, rng *rand.Rand) (graph.Graph, error)
			}
			gridSide := func(n int) int {
				side := 1
				for side*side < n {
					side++
				}
				return side
			}
			gridSizes := make([]int, len(sizes))
			for i, n := range sizes {
				s := gridSide(n)
				gridSizes[i] = s * s
			}
			families := []family{
				{"cycle", sizes, func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) }},
				{"path", sizes, func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewPath(n) }},
				{"grid", gridSizes, func(n int, _ *rand.Rand) (graph.Graph, error) {
					side := gridSide(n)
					return graph.NewGrid(side, side)
				}},
				{"tree", sizes, func(n int, rng *rand.Rand) (graph.Graph, error) { return graph.NewRandomTree(n, rng) }},
				// One clique sweep: the degenerate diameter-1 extreme.
				{"complete", []int{256}, func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewComplete(n) }},
			}

			type familyOut struct {
				stats []sweep.SizeStats
				diams []int
			}
			outs := make([]familyOut, len(families))
			for fi, f := range families {
				diams := make([]int, len(f.sizes))
				spec := sweep.Spec{
					Seed:      cfg.Seed,
					Sizes:     f.sizes,
					Trials:    trials,
					Workers:   cfg.Workers,
					NoAtlas:   cfg.NoAtlas,
					NoKernels: cfg.NoKernels,
					Graph:     f.build,
					Alg:       func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
					Verify:    verifyLargestID,
					Strict:    true,
					Observe: func(sizeIdx, trial int, g graph.Graph, _ ids.Assignment, _ *local.Result) {
						if trial == 0 {
							diams[sizeIdx] = graph.Diameter(g)
						}
					},
				}
				res, err := sweep.Run(ctx, configSpec(spec, cfg))
				if err != nil {
					return nil, fmt.Errorf("E9 %s: %w", f.name, err)
				}
				outs[fi] = familyOut{stats: res.Sizes, diams: diams}
			}

			t := &Table{
				Title:   "E9: pruning algorithm across graph families (random permutations)",
				Columns: []string{"family", "n", "diam", "worstMax", "worstAvg", "max/avg"},
			}
			addRow := func(f family, out familyOut, i int) {
				s := out.stats[i]
				worstMax := s.WorstMax.Max
				worstAvg := s.WorstAvg.Avg
				ratio := 0.0
				if worstAvg > 0 {
					ratio = float64(worstMax) / worstAvg
				}
				t.AddRow(cs(f.name), ci(s.N), ci(out.diams[i]), ci(worstMax), cf(worstAvg), cf(ratio))
			}
			// Size-major over the shared sweep, then the clique row, keeping
			// the historical table layout.
			for i := range sizes {
				for fi, f := range families {
					if f.name == "complete" {
						continue
					}
					addRow(f, outs[fi], i)
				}
			}
			last := len(families) - 1
			addRow(families[last], outs[last], 0)

			t.AddNote("cycle/path: avg grows with log n (linear ball growth)")
			t.AddNote("grid: avg stays O(1) — quadratic ball growth makes Σ P(local max at radius d) converge")
			t.AddNote("complete: both measures collapse to the diameter; no separation to speak of")
			return t, nil
		},
	}
}
