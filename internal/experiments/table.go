// Package experiments turns every quantitative claim of the paper into a
// reproducible experiment E1..E10 (see EXPERIMENTS.md for the index) with a
// uniform table output, shared by cmd/avgbench and the root benchmark
// suite. All experiments execute on the sharded sweep engine
// (internal/sweep): equal seeds reproduce tables exactly at any worker
// count, and a context cancels mid-sweep with a prompt error.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// Table is one experiment's output: a titled grid of cells. The JSON tags
// define the machine-readable schema emitted by cmd/avgbench -json.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carry the experiment's verdicts (fits, checks) printed below
	// the grid.
	Notes []string `json:"notes,omitempty"`
}

// Cell is one pre-typed table cell. Rows are built from Cells instead of
// ...any because tables are assembled inside benchmarked experiment runs:
// boxing every int and float into an interface costs an allocation per
// cell, while a []Cell variadic stays on the caller's stack.
type Cell struct {
	kind byte
	i    int64
	f    float64
	s    string
}

const (
	cellInt byte = iota
	cellFloat
	cellString
	cellBool
)

// ci, cf, cs and cb wrap ints (and the bool flavour), %.3f-rendered floats
// and strings as cells.
func ci[T int | int64](v T) Cell { return Cell{kind: cellInt, i: int64(v)} }
func cf(v float64) Cell          { return Cell{kind: cellFloat, f: v} }
func cs(v string) Cell           { return Cell{kind: cellString, s: v} }
func cb(v bool) Cell {
	if v {
		return Cell{kind: cellBool, i: 1}
	}
	return Cell{kind: cellBool}
}

// AddRow appends a row, formatting ints with %d, floats with %.3f, bools
// as true/false. All cells of the row are rendered into one backing string
// and sliced, so a row costs three allocations instead of one per cell.
func (t *Table) AddRow(cells ...Cell) {
	row := make([]string, len(cells))
	var offsArr [16]int
	offs := offsArr[:0]
	if len(cells) > len(offsArr) {
		offs = make([]int, 0, len(cells))
	}
	var buf []byte
	for _, c := range cells {
		switch c.kind {
		case cellInt:
			buf = strconv.AppendInt(buf, c.i, 10)
		case cellFloat:
			buf = strconv.AppendFloat(buf, c.f, 'f', 3, 64)
		case cellString:
			buf = append(buf, c.s...)
		case cellBool:
			buf = strconv.AppendBool(buf, c.i != 0)
		}
		offs = append(offs, len(buf))
	}
	backing := string(buf)
	start := 0
	for i, end := range offs {
		row[i] = backing[start:end]
		start = end
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted verdict line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces an aligned, human-readable text table.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteCSV emits the table (without notes) as CSV.
func (t *Table) WriteCSV(w *csv.Writer) error {
	if err := w.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
