// Package experiments turns every quantitative claim of the paper into a
// reproducible experiment E1..E9 (see EXPERIMENTS.md for the index) with a
// uniform table output, shared by cmd/avgbench and the root benchmark
// suite. All experiments execute on the sharded sweep engine
// (internal/sweep): equal seeds reproduce tables exactly at any worker
// count, and a context cancels mid-sweep with a prompt error.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid of cells. The JSON tags
// define the machine-readable schema emitted by cmd/avgbench -json.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carry the experiment's verdicts (fits, checks) printed below
	// the grid.
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted verdict line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces an aligned, human-readable text table.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteCSV emits the table (without notes) as CSV.
func (t *Table) WriteCSV(w *csv.Writer) error {
	if err := w.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
