package experiments

import (
	"math"

	"repro/internal/algorithms/largestid"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/sweep"
)

// e11 is the implicit-scale extension of E2's average-radius claim: the
// pruning algorithm's sampled average radius keeps its Θ(log n) growth at
// n = 10^5..10^7 — two orders of magnitude past what a materialised atlas
// or adjacency structure fits in memory. The sweep therefore defaults to
// the implicit backend (closed-form ball synthesis, O(workers) memory);
// any other graph.Implicit-capable backend produces byte-identical tables,
// which is the cross-backend hold the sweep suite enforces at small n.
//
// No exact worst permutation at these sizes: reconstructing it is O(n²)
// via the recurrence, so E11 reports Monte-Carlo sampling only — the
// worst-over-samples average, against ln n.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Implicit scale: sampled average radius stays Θ(log n) at n = 10^5..10^7",
		Claim: "§2: \"the average radius is logarithmic in n\" — extended to sizes served by closed-form ball synthesis",
		Sweeps: func(cfg Config) ([]sweep.Spec, error) {
			spec := cycleSpec(cfg, []int{100000, 1000000, 10000000}, 3)
			if cfg.Backend == "" && !cfg.NoAtlas {
				// The default atlas would materialise O(n · ball) state per
				// size; at E11's sizes that is the wrong default. expandSweeps
				// leaves a pinned backend alone, so -backend still overrides.
				spec.Backend = sweep.BackendImplicit
			}
			spec.Alg = func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
			spec.Verify = verifyLargestID
			return []sweep.Spec{spec}, nil
		},
		Tabulate: func(cfg Config, results []*sweep.Result) (*Table, error) {
			res := results[0]
			t := &Table{
				Title:   "E11: pruning algorithm at implicit scale, sampled average measure",
				Columns: []string{"n", "trials", "meanAvg", "worstAvg", "ln n", "median", "p90", "verified"},
			}
			var ns []int
			var avgs []float64
			for _, s := range res.Sizes {
				worst := s.WorstAvg
				t.AddRow(ci(s.N), ci(s.Trials), cf(s.MeanAvg()), cf(worst.Avg),
					cf(math.Log(float64(s.N))), cf(worst.Median), cf(worst.P90), cb(s.Verified()))
				ns = append(ns, s.N)
				avgs = append(avgs, worst.Avg)
			}
			if fit, err := measure.FitAgainstLog(ns, avgs); err == nil {
				t.AddNote("log fit of worstAvg vs ln n: slope=%.4f, R2=%.5f (Θ(log n) ⇔ stable slope, R2≈1)", fit.Slope, fit.R2)
			}
			t.AddNote("balls synthesized from closed forms: no adjacency, no atlas — sweep memory is O(workers), not O(n · ball)")
			return t, nil
		},
	}
}
