package experiments

import (
	"math"
	"math/rand"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
)

// e6 explores the further-work question of §4: the EXPECTED average radius
// under uniformly random identifier permutations, compared with the
// worst-case average of E2. Both are Θ(log n) for largest ID, with the
// expectation tracking the harmonic number.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Largest ID: expectation over random permutations vs worst case",
		Claim: "§4 further work: \"study the expectancy of the running time ... identifiers taken uniformly at random\"",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{16, 64, 256, 1024, 4096})
			trials := trialsOrDefault(cfg, 20)
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E6: pruning algorithm, E[avg radius] vs worst-case avg",
				Columns: []string{"n", "meanAvg", "H(n)", "worstAvg", "mean/worst", "meanMax", "n/2"},
			}
			var ns []int
			var means []float64
			for _, n := range sizes {
				c, err := graph.NewCycle(n)
				if err != nil {
					return nil, err
				}
				summaries := make([]measure.Summary, 0, trials)
				for trial := 0; trial < trials; trial++ {
					res, err := local.RunView(c, ids.Random(n, rng), largestid.Pruning{})
					if err != nil {
						return nil, err
					}
					summaries = append(summaries, measure.Summarize(res.Radii))
				}
				agg := measure.NewAggregate(summaries)

				worst, err := analytic.WorstCycleSum(n)
				if err != nil {
					return nil, err
				}
				worstAvg := float64(worst) / float64(n)
				t.AddRow(n, agg.MeanAvg, analytic.Harmonic(n), worstAvg,
					agg.MeanAvg/worstAvg, agg.MeanMax, n/2)
				ns = append(ns, n)
				means = append(means, agg.MeanAvg)
			}
			if fit, err := measure.FitAgainstLog(ns, means); err == nil {
				t.AddNote("log fit of meanAvg vs ln n: slope=%.4f, R2=%.5f — expectation is Θ(log n) too", fit.Slope, fit.R2)
			}
			t.AddNote("meanMax ≈ n/2 always: the maximum vertex pays the linear price under every permutation")
			return t, nil
		},
	}
}

// e7 addresses the characterisation question of §4: for which problems do
// the two measures separate? Largest ID separates exponentially; colouring
// and MIS do not separate at all.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Problem characterisation: max/avg separation by problem",
		Claim: "§4: \"It would be interesting to characterise the problems of the first and second types\"",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{64, 256, 1024, 4096})
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E7: max vs avg radius per problem (random permutations)",
				Columns: []string{"n", "problem", "algorithm", "max", "avg", "max/avg"},
			}
			type entry struct {
				problem string
				alg     func(a ids.Assignment) local.ViewAlgorithm
			}
			entries := []entry{
				{"largestID", func(ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }},
				{"3-coloring", func(a ids.Assignment) local.ViewAlgorithm { return coloring.ForMaxID(a.MaxID()) }},
				{"3-coloring", func(ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} }},
				{"MIS", func(a ids.Assignment) local.ViewAlgorithm {
					return mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}
				}},
			}
			ratios := map[string][]float64{}
			var ns []int
			for _, n := range sizes {
				c, err := graph.NewCycle(n)
				if err != nil {
					return nil, err
				}
				a := ids.Random(n, rng)
				ns = append(ns, n)
				for _, e := range entries {
					alg := e.alg(a)
					res, err := local.RunView(c, a, alg)
					if err != nil {
						return nil, err
					}
					ratio := math.Inf(1)
					if res.AvgRadius() > 0 {
						ratio = float64(res.MaxRadius()) / res.AvgRadius()
					}
					t.AddRow(n, e.problem, alg.Name(), res.MaxRadius(), res.AvgRadius(), ratio)
					ratios[e.problem] = append(ratios[e.problem], ratio)
				}
			}
			for _, problem := range []string{"largestID", "3-coloring", "MIS"} {
				rs := ratios[problem]
				if len(rs) < 2 {
					continue
				}
				growth := rs[len(rs)-1] / rs[0]
				kind := "second type (avg ~ max)"
				if growth > 4 {
					kind = "FIRST type (avg << max)"
				}
				t.AddNote("%s: max/avg ratio grew %.1fx across the sweep — %s", problem, growth, kind)
			}
			return t, nil
		},
	}
}
