package experiments

import (
	"context"
	"math"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/sweep"
)

// e6 explores the further-work question of §4: the EXPECTED average radius
// under uniformly random identifier permutations, compared with the
// worst-case average of E2. Both are Θ(log n) for largest ID, with the
// expectation tracking the harmonic number. The expectation is exactly the
// sweep's streaming mean — no per-trial storage.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Largest ID: expectation over random permutations vs worst case",
		Claim: "§4 further work: \"study the expectancy of the running time ... identifiers taken uniformly at random\"",
		Sweeps: func(cfg Config) ([]sweep.Spec, error) {
			spec := cycleSpec(cfg, []int{16, 64, 256, 1024, 4096}, 20)
			spec.Alg = func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
			return []sweep.Spec{spec}, nil
		},
		Tabulate: func(cfg Config, results []*sweep.Result) (*Table, error) {
			res := results[0]
			t := &Table{
				Title:   "E6: pruning algorithm, E[avg radius] vs worst-case avg",
				Columns: []string{"n", "meanAvg", "H(n)", "worstAvg", "mean/worst", "meanMax", "n/2"},
			}
			ns := make([]int, 0, len(res.Sizes))
			means := make([]float64, 0, len(res.Sizes))
			for i := range res.Sizes {
				s := &res.Sizes[i]
				worst, err := analytic.WorstCycleSum(s.N)
				if err != nil {
					return nil, err
				}
				worstAvg := float64(worst) / float64(s.N)
				t.AddRow(ci(s.N), cf(s.MeanAvg()), cf(analytic.Harmonic(s.N)), cf(worstAvg),
					cf(s.MeanAvg()/worstAvg), cf(s.MeanMax()), ci(s.N/2))
				ns = append(ns, s.N)
				means = append(means, s.MeanAvg())
			}
			if fit, err := measure.FitAgainstLog(ns, means); err == nil {
				t.AddNote("log fit of meanAvg vs ln n: slope=%.4f, R2=%.5f — expectation is Θ(log n) too", fit.Slope, fit.R2)
			}
			t.AddNote("meanMax ≈ n/2 always: the maximum vertex pays the linear price under every permutation")
			return t, nil
		},
	}
}

// e7 addresses the characterisation question of §4: for which problems do
// the two measures separate? Largest ID separates exponentially; colouring
// and MIS do not separate at all. One sweep per algorithm; the sweeps share
// the seed, so every algorithm sees the same identifier permutation at each
// size — the same controlled comparison the sequential loop used to make.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Problem characterisation: max/avg separation by problem",
		Claim: "§4: \"It would be interesting to characterise the problems of the first and second types\"",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			defSizes := []int{64, 256, 1024, 4096}
			type entry struct {
				problem string
				alg     func(a ids.Assignment) local.ViewAlgorithm
			}
			entries := []entry{
				{"largestID", func(ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }},
				{"3-coloring", func(a ids.Assignment) local.ViewAlgorithm { return coloring.ForMaxID(a.MaxID()) }},
				{"3-coloring", func(ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} }},
				{"MIS", func(a ids.Assignment) local.ViewAlgorithm {
					return mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}
				}},
			}

			type sweepOut struct {
				stats []sweep.SizeStats
				names []string
			}
			outs := make([]sweepOut, len(entries))
			for ei, e := range entries {
				spec := cycleSpec(cfg, defSizes, 1)
				// One assignment per size: the names slots below are
				// per-size, so multiple trials would race on them.
				spec.Trials = 1
				names := make([]string, len(spec.Sizes))
				spec.Alg = func(_ int, a ids.Assignment) local.ViewAlgorithm { return e.alg(a) }
				spec.Observe = func(sizeIdx, _ int, _ graph.Graph, _ ids.Assignment, res *local.Result) {
					names[sizeIdx] = res.Algorithm
				}
				res, err := sweep.Run(ctx, configSpec(spec, cfg))
				if err != nil {
					return nil, err
				}
				outs[ei] = sweepOut{stats: res.Sizes, names: names}
			}

			t := &Table{
				Title:   "E7: max vs avg radius per problem (random permutations)",
				Columns: []string{"n", "problem", "algorithm", "max", "avg", "max/avg"},
			}
			ratios := map[string][]float64{}
			for i := range outs[0].stats {
				for ei, e := range entries {
					s := outs[ei].stats[i]
					ratio := math.Inf(1)
					if s.WorstAvg.Avg > 0 {
						ratio = float64(s.WorstMax.Max) / s.WorstAvg.Avg
					}
					t.AddRow(ci(s.N), cs(e.problem), cs(outs[ei].names[i]), ci(s.WorstMax.Max), cf(s.WorstAvg.Avg), cf(ratio))
					ratios[e.problem] = append(ratios[e.problem], ratio)
				}
			}
			for _, problem := range []string{"largestID", "3-coloring", "MIS"} {
				rs := ratios[problem]
				if len(rs) < 2 {
					continue
				}
				growth := rs[len(rs)-1] / rs[0]
				kind := "second type (avg ~ max)"
				if growth > 4 {
					kind = "FIRST type (avg << max)"
				}
				t.AddNote("%s: max/avg ratio grew %.1fx across the sweep — %s", problem, growth, kind)
			}
			return t, nil
		},
	}
}
