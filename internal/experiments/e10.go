package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// e10 closes the validation ladder: the EXACT ground truth — every one of
// the n! identifier permutations enumerated through the sharded engine —
// against the Monte-Carlo estimates the large-n experiments rely on. The
// exact side is itself cross-checked against the §2 recurrence inside
// exact.CycleStats, so one table ties all three layers (analytic, exact,
// sampled) together: the sampled worst can only fall below the true worst
// (worstGap >= 0, a hard identity), and the sampled mean must land within
// sampling error of the true §4 expectation.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Exact enumeration vs Monte-Carlo sampling: ground-truth agreement",
		Claim: "§2 worst case and §4 expectation over ALL n! permutations, exactly",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			// Enumeration is n!-bounded: oversized overrides keep only their
			// feasible entries and fall back to the defaults when none fit.
			defSizes := []int{5, 6, 7, 8, 9}
			sizes := make([]int, 0, len(cfg.Sizes))
			clamped := false
			for _, n := range cfg.Sizes {
				if n >= 3 && n <= exact.MaxEnumerationN {
					sizes = append(sizes, n)
				} else {
					clamped = true
				}
			}
			if len(sizes) == 0 {
				sizes, clamped = defSizes, clamped && len(cfg.Sizes) > 0
			}
			trials := trialsOrDefault(cfg, 2000)

			// Exact side: one exhaustive engine enumeration per size, each
			// internally sharded across the worker pool.
			opt := exact.Options{Workers: cfg.Workers, NoAtlas: cfg.NoAtlas, NoKernels: cfg.NoKernels}
			exacts := make([]exact.Stats, len(sizes))
			for i, n := range sizes {
				st, err := exact.CycleStats(ctx, n, opt)
				if err != nil {
					return nil, fmt.Errorf("E10 exact n=%d: %w", n, err)
				}
				exacts[i] = st
			}

			// Sampled side: the standard Monte-Carlo sweep. Built directly —
			// not via cycleSpec, whose size resolution would resurrect the
			// oversized cfg.Sizes entries clamped away above.
			mcRes, err := sweep.Run(ctx, sweep.Spec{
				Seed:      cfg.Seed,
				Sizes:     sizes,
				Trials:    trials,
				Workers:   cfg.Workers,
				NoAtlas:   cfg.NoAtlas,
				NoKernels: cfg.NoKernels,
				Graph:     func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
				Alg:       func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
				Verify:    verifyLargestID,
			})
			if err != nil {
				return nil, fmt.Errorf("E10 sampled: %w", err)
			}

			t := &Table{
				Title: fmt.Sprintf("E10: exact (all n! permutations) vs sampled (%d permutations)", trials),
				Columns: []string{"n", "perms", "sampled/n!", "exWorstAvg", "mcWorstAvg", "worstGap",
					"exMeanAvg", "mcMeanAvg", "meanErr", "exP90", "mcP90"},
			}
			worstOK := true
			for i, ex := range exacts {
				mc := mcRes.Sizes[i]
				worstGap := ex.WorstAvg() - mc.WorstAvg.Avg
				if worstGap < 0 {
					worstOK = false
				}
				t.AddRow(ci(ex.N), ci(ex.Perms), cf(float64(trials)/float64(ex.Perms)),
					cf(ex.WorstAvg()), cf(mc.WorstAvg.Avg), cf(worstGap),
					cf(ex.MeanAvg()), cf(mc.MeanAvg()), cf(mc.MeanAvg()-ex.MeanAvg()),
					cf(ex.Quantile(0.9)), cf(mc.Quantile(0.9)))
			}
			t.AddNote("exact worst sums equal the recurrence a(n-1)+floor(n/2) at every size (checked inside exact.CycleStats)")
			t.AddNote("worstGap = exact - sampled worst average; sampling (with replacement, sampled/n! is a ratio not a coverage) can only miss the worst, so it must never be negative")
			t.AddNote("meanErr is the sampling error of the §4 expectation, O(1/sqrt(trials)) by the CLT")
			if clamped {
				t.AddNote("sizes beyond exact.MaxEnumerationN=%d were dropped: n! enumeration is the point of this table", exact.MaxEnumerationN)
			}
			if !worstOK {
				return t, fmt.Errorf("E10: a sampled worst exceeded the exact worst — enumeration or engine is broken")
			}
			return t, nil
		},
	}
}
