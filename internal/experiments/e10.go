package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/analytic"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// e10Cap is the largest feasible enumeration size under the config: the
// symmetry quotient (Config.Quotient) executes only n!/2n canonical
// representatives on the cycle, lifting the ceiling from
// exact.MaxFullEnumerationN to exact.MaxEnumerationN.
func e10Cap(cfg Config) int {
	if cfg.Quotient {
		return exact.MaxEnumerationN
	}
	return exact.MaxFullEnumerationN
}

// e10Sizes resolves the experiment's size sweep: enumeration is n!-bounded
// (n!/2n under -quotient), so oversized overrides keep only their feasible
// entries and fall back to the defaults when none fit. Shared by Sweeps and
// Tabulate so the clamped note renders identically in every process.
func e10Sizes(cfg Config) (sizes []int, clamped bool) {
	defSizes := []int{5, 6, 7, 8, 9}
	cap := e10Cap(cfg)
	sizes = make([]int, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		if n >= 3 && n <= cap {
			sizes = append(sizes, n)
		} else {
			clamped = true
		}
	}
	if len(sizes) == 0 {
		sizes, clamped = defSizes, clamped && len(cfg.Sizes) > 0
	}
	return sizes, clamped
}

// e10 closes the validation ladder: the EXACT ground truth — every one of
// the n! identifier permutations, enumerated as plan shards of the sweep
// engine — against the Monte-Carlo estimates the large-n experiments rely
// on. The exact side is cross-checked against the §2 recurrence during
// tabulation, so one table ties all three layers (analytic, exact, sampled)
// together: the sampled worst can only fall below the true worst
// (worstGap >= 0, a hard identity), and the sampled mean must land within
// sampling error of the true §4 expectation. Both sides are plain engine
// sweeps, so E10 shards across processes like every other
// Sweeps/Tabulate experiment — including the n! enumeration.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Exact enumeration vs Monte-Carlo sampling: ground-truth agreement",
		Claim: "§2 worst case and §4 expectation over ALL n! permutations, exactly",
		Sweeps: func(cfg Config) ([]sweep.Spec, error) {
			sizes, _ := e10Sizes(cfg)
			cycle := func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) }
			pruning := func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }

			// Sweep 0: exhaustive engine enumeration — the n! rank space
			// splits into the same contiguous blocks sampled trials use, so
			// it shards and checkpoints like any other sweep.
			ex := sweep.Spec{
				Seed:       cfg.Seed,
				Sizes:      sizes,
				Exhaustive: true,
				Workers:    cfg.Workers,
				NoAtlas:    cfg.NoAtlas,
				NoKernels:  cfg.NoKernels,
				Graph:      cycle,
				Alg:        pruning,
			}
			// Sweep 1: the standard Monte-Carlo sweep.
			mc := sweep.Spec{
				Seed:      cfg.Seed,
				Sizes:     sizes,
				Trials:    trialsOrDefault(cfg, 2000),
				Workers:   cfg.Workers,
				NoAtlas:   cfg.NoAtlas,
				NoKernels: cfg.NoKernels,
				Graph:     cycle,
				Alg:       pruning,
				Verify:    verifyLargestID,
			}
			return []sweep.Spec{ex, mc}, nil
		},
		Tabulate: func(cfg Config, results []*sweep.Result) (*Table, error) {
			exRes, mcRes := results[0], results[1]
			_, clamped := e10Sizes(cfg)
			trials := trialsOrDefault(cfg, 2000)

			t := &Table{
				Title: fmt.Sprintf("E10: exact (all n! permutations) vs sampled (%d permutations)", trials),
				Columns: []string{"n", "perms", "sampled/n!", "exWorstAvg", "mcWorstAvg", "worstGap",
					"exMeanAvg", "mcMeanAvg", "meanErr", "exP90", "mcP90"},
			}
			worstOK := true
			for i := range exRes.Sizes {
				ex, mc := exRes.Sizes[i], mcRes.Sizes[i]
				n := ex.N
				// The §2 identity: the enumerated worst sum over ALL
				// permutations must equal the recurrence a(n-1)+floor(n/2).
				want, err := analytic.WorstCycleSum(n)
				if err != nil {
					return nil, err
				}
				if int64(ex.WorstAvg.Sum) != want {
					return nil, fmt.Errorf("E10: enumerated worst sum %d disagrees with recurrence %d at n=%d",
						ex.WorstAvg.Sum, want, n)
				}
				exWorstAvg := float64(ex.WorstAvg.Sum) / float64(n)
				worstGap := exWorstAvg - mc.WorstAvg.Avg
				if worstGap < 0 {
					worstOK = false
				}
				t.AddRow(ci(n), ci(ex.Trials), cf(float64(trials)/float64(ex.Trials)),
					cf(exWorstAvg), cf(mc.WorstAvg.Avg), cf(worstGap),
					cf(ex.MeanAvg()), cf(mc.MeanAvg()), cf(mc.MeanAvg()-ex.MeanAvg()),
					cf(ex.Quantile(0.9)), cf(mc.Quantile(0.9)))
			}
			t.AddNote("exact worst sums equal the recurrence a(n-1)+floor(n/2) at every size (cross-checked during tabulation)")
			t.AddNote("worstGap = exact - sampled worst average; sampling (with replacement, sampled/n! is a ratio not a coverage) can only miss the worst, so it must never be negative")
			t.AddNote("meanErr is the sampling error of the §4 expectation, O(1/sqrt(trials)) by the CLT")
			if clamped {
				t.AddNote("sizes beyond the enumeration cap n=%d were dropped: n! enumeration is the point of this table (-quotient lifts the cap to %d)",
					e10Cap(cfg), exact.MaxEnumerationN)
			}
			if !worstOK {
				return t, fmt.Errorf("E10: a sampled worst exceeded the exact worst — enumeration or engine is broken")
			}
			return t, nil
		},
	}
}
