package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linial"
	"repro/internal/local"
	"repro/internal/sweep"
)

// e8 goes below the black box of §3: Theorem 1 consumes Linial's lower
// bound as given; here we compute its smallest concrete instances exactly.
// The neighbourhood graph N_r(s) is built explicitly and 3-coloured (or
// proven non-3-colourable) by exact search; feasible cases are turned into
// synthesized minimal-radius algorithms and executed on the simulator. The
// exact searches are independent, so they run sharded via sweep.Map — the
// s=7 impossibility proof no longer serialises behind the feasible cases.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Linial's bound, smallest instances: exact radius-1 feasibility thresholds",
		Claim: "§3 uses Linial's Ω(log* n) as a black box; E8 recomputes its base cases exactly",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			type q struct{ r, s int }
			cases := []q{
				{0, 4}, // K_4: radius 0 fails already at four identifiers
				{1, 4},
				{1, 5},
				{1, 6}, // the last feasible radius-1 space
				{1, 7}, // the exact impossibility threshold
			}
			type outcome struct {
				verdict   linial.Verdict
				simulated string
			}
			outs := make([]outcome, len(cases))
			if err := sweep.Map(ctx, cfg.Workers, len(cases), func(i int) error {
				c := cases[i]
				v, err := linial.ThreeColorable(c.s, c.r)
				if err != nil {
					return fmt.Errorf("E8 (s=%d,r=%d): %w", c.s, c.r, err)
				}
				outs[i].verdict = v
				outs[i].simulated = "-"
				if v.Usable && c.r == 1 {
					sim, err := runSynthesized(ctx, cfg, c.s)
					if err != nil {
						return fmt.Errorf("E8 synthesized (s=%d): %w", c.s, err)
					}
					outs[i].simulated = sim
				}
				return nil
			}); err != nil {
				return nil, err
			}
			t := &Table{
				Title:   "E8: exact 3-colourability of the neighbourhood graph N_r(s)",
				Columns: []string{"r", "s", "views", "edges", "algorithmExists", "simulated"},
			}
			for i, c := range cases {
				v := outs[i].verdict
				t.AddRow(ci(c.r), ci(c.s), ci(v.Views), ci(v.Edges), cb(v.Usable), cs(outs[i].simulated))
			}
			t.AddNote("radius-1 3-colouring exists iff the identifier space has at most 6 identifiers")
			t.AddNote("feasible tables run on the simulator at radius exactly 1 — minimal algorithms in the paper's sense")
			t.AddNote("monotonicity (N_r(s') ⊆ N_r(s) for s' <= s) extends s=7 impossibility to all larger spaces")
			return t, nil
		},
	}
}

// runSynthesized executes the synthesized radius-1 table on the largest
// in-space ring (identifiers of C_n are 0..n-1, so n = s exactly uses the
// full space), routed through a single-instance sweep with strict
// verification, and reports its radius profile.
func runSynthesized(ctx context.Context, cfg Config, s int) (string, error) {
	ta, err := linial.Synthesize(s, 1)
	if err != nil {
		return "", err
	}
	n := s
	if n < 3 {
		return "", fmt.Errorf("space %d too small for a ring", s)
	}
	spec := sweep.Spec{
		Seed:      cfg.Seed,
		Sizes:     []int{n},
		Trials:    1,
		Workers:   cfg.Workers,
		NoAtlas:   cfg.NoAtlas,
		NoKernels: cfg.NoKernels,
		Graph:     func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Assign:    assignFixed(func(n int) (ids.Assignment, error) { return ids.Identity(n), nil }),
		Alg:       func(int, ids.Assignment) local.ViewAlgorithm { return ta },
		Verify:    verifyColoring,
		Strict:    true,
	}
	res, err := sweep.Run(ctx, configSpec(spec, cfg))
	if err != nil {
		return "", err
	}
	st := res.Sizes[0]
	return fmt.Sprintf("C_%d max=%d avg=%.1f", n, st.WorstMax.Max, st.WorstAvg.Avg), nil
}
