package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linial"
	"repro/internal/local"
	"repro/internal/problems"
)

// e8 goes below the black box of §3: Theorem 1 consumes Linial's lower
// bound as given; here we compute its smallest concrete instances exactly.
// The neighbourhood graph N_r(s) is built explicitly and 3-coloured (or
// proven non-3-colourable) by exact search; feasible cases are turned into
// synthesized minimal-radius algorithms and executed on the simulator.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Linial's bound, smallest instances: exact radius-1 feasibility thresholds",
		Claim: "§3 uses Linial's Ω(log* n) as a black box; E8 recomputes its base cases exactly",
		Run: func(cfg Config) (*Table, error) {
			t := &Table{
				Title:   "E8: exact 3-colourability of the neighbourhood graph N_r(s)",
				Columns: []string{"r", "s", "views", "edges", "algorithmExists", "simulated"},
			}
			type q struct{ r, s int }
			cases := []q{
				{0, 4}, // K_4: radius 0 fails already at four identifiers
				{1, 4},
				{1, 5},
				{1, 6}, // the last feasible radius-1 space
				{1, 7}, // the exact impossibility threshold
			}
			for _, c := range cases {
				v, err := linial.ThreeColorable(c.s, c.r)
				if err != nil {
					return nil, fmt.Errorf("E8 (s=%d,r=%d): %w", c.s, c.r, err)
				}
				simulated := "-"
				if v.Usable && c.r == 1 {
					res, err := runSynthesized(c.s)
					if err != nil {
						return nil, fmt.Errorf("E8 synthesized (s=%d): %w", c.s, err)
					}
					simulated = res
				}
				t.AddRow(c.r, c.s, v.Views, v.Edges, v.Usable, simulated)
			}
			t.AddNote("radius-1 3-colouring exists iff the identifier space has at most 6 identifiers")
			t.AddNote("feasible tables run on the simulator at radius exactly 1 — minimal algorithms in the paper's sense")
			t.AddNote("monotonicity (N_r(s') ⊆ N_r(s) for s' <= s) extends s=7 impossibility to all larger spaces")
			return t, nil
		},
	}
}

// runSynthesized executes the synthesized radius-1 table on the largest
// in-space ring with an open window (n = s >= 2r+2 would include id s; use
// n = s when s <= ... identifiers of C_n are 0..n-1, so n = s exactly uses
// the full space) and reports its verified radius profile.
func runSynthesized(s int) (string, error) {
	ta, err := linial.Synthesize(s, 1)
	if err != nil {
		return "", err
	}
	n := s
	if n < 3 {
		return "", fmt.Errorf("space %d too small for a ring", s)
	}
	c, err := graph.NewCycle(n)
	if err != nil {
		return "", err
	}
	a := ids.Identity(n)
	res, err := local.RunView(c, a, ta)
	if err != nil {
		return "", err
	}
	if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
		return "", err
	}
	return fmt.Sprintf("C_%d max=%d avg=%.1f", n, res.MaxRadius(), res.AvgRadius()), nil
}
