package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/algorithms/largestid"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/problems"
	"repro/internal/sweep"
)

// verifyLargestID adapts the largest-ID checker to the sweep hook.
func verifyLargestID(g graph.Graph, a ids.Assignment, res *local.Result) error {
	return problems.LargestID{}.Verify(g, a, res.Outputs)
}

// e1 reproduces the worst-case claim of §2: the largest-ID problem has
// linear classic complexity — the maximum-ID vertex must see the whole
// cycle, radius floor(n/2), under EVERY permutation. Split into
// Sweeps/Tabulate so the sweep can shard across processes; the registry
// derives Run from the pair.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Largest ID: worst-case radius is linear (floor(n/2))",
		Claim: "§2: \"the vertex with the maximum ID needs n/2 rounds\"",
		Sweeps: func(cfg Config) ([]sweep.Spec, error) {
			spec := cycleSpec(cfg, []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}, 5)
			spec.Alg = func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
			spec.Verify = verifyLargestID
			return []sweep.Spec{spec}, nil
		},
		Tabulate: func(cfg Config, results []*sweep.Result) (*Table, error) {
			res := results[0]
			t := &Table{
				Title:   "E1: pruning algorithm, classic measure max_v r(v)",
				Columns: []string{"n", "maxRadius", "n/2", "avg/max", "verified"},
			}
			var ns []int
			var maxima []float64
			for _, s := range res.Sizes {
				worst := s.WorstMax
				ratio := 0.0
				if worst.Max > 0 {
					ratio = worst.Avg / float64(worst.Max)
				}
				t.AddRow(ci(s.N), ci(worst.Max), ci(s.N/2), cf(ratio), cb(s.Verified()))
				ns = append(ns, s.N)
				maxima = append(maxima, float64(worst.Max))
			}
			if fit, err := measure.FitAgainstLinear(ns, maxima); err == nil {
				t.AddNote("linear fit of maxRadius vs n: slope=%.4f (paper: 1/2), R2=%.5f", fit.Slope, fit.R2)
			}
			return t, nil
		},
	}
}

// e2 reproduces the separation claim of §2: the pruning algorithm's
// worst-case AVERAGE radius is Θ(log n) — exponentially below the linear
// classic measure. The exact worst-case permutation is reconstructed from
// the recurrence, so the measured sum must equal a(n-1) + floor(n/2).
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Largest ID: worst-case average radius is Θ(log n)",
		Claim: "§2: \"the average radius is logarithmic in n, exponentially smaller than the worst case\"",
		Sweeps: func(cfg Config) ([]sweep.Spec, error) {
			defSizes := []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

			// Sweep 0: the reconstructed worst permutation, one exact trial
			// per size.
			exactSpec := cycleSpec(cfg, defSizes, 1)
			exactSpec.Trials = 1
			exactSpec.Alg = func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
			exactSpec.Assign = assignFixed(func(n int) (ids.Assignment, error) {
				perm, err := analytic.WorstCyclePerm(n)
				if err != nil {
					return nil, err
				}
				return ids.FromPerm(perm)
			})

			// Sweep 1: sampled random permutations for comparison.
			rndSpec := cycleSpec(cfg, defSizes, 5)
			rndSpec.Alg = func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
			return []sweep.Spec{exactSpec, rndSpec}, nil
		},
		Tabulate: func(cfg Config, results []*sweep.Result) (*Table, error) {
			exactRes, rndRes := results[0], results[1]
			t := &Table{
				Title:   "E2: pruning algorithm, average measure (worst permutation, built exactly)",
				Columns: []string{"n", "sumRadii", "a(n-1)+n/2", "exact", "worstAvg", "ln n", "median", "p90", "sampledAvg", "max/avg"},
			}
			var ns []int
			var avgs []float64
			for i, s := range exactRes.Sizes {
				n := s.N
				theory, err := analytic.WorstCycleSum(n)
				if err != nil {
					return nil, err
				}
				worst := s.WorstAvg
				// NB: the engine's segment radii match the paper's model
				// exactly; any mismatch here falsifies the reproduction.
				exact := s.TotalSum == theory
				worstAvg := worst.Avg
				sampled := rndRes.Sizes[i].WorstAvg.Avg
				t.AddRow(ci(n), ci(worst.Sum), ci(theory), cb(exact), cf(worstAvg),
					cf(math.Log(float64(n))), cf(worst.Median), cf(worst.P90), cf(sampled),
					cf(float64(worst.Max)/worstAvg))
				ns = append(ns, n)
				avgs = append(avgs, worstAvg)
			}
			if fit, err := measure.FitAgainstLog(ns, avgs); err == nil {
				t.AddNote("log fit of worstAvg vs ln n: slope=%.4f, R2=%.5f (Θ(log n) ⇔ stable slope, R2≈1)", fit.Slope, fit.R2)
			}
			t.AddNote("separation max/avg grows ~ n/log n: exponential gap between the two measures")
			t.AddNote("median/p90 show the skew behind the average: most vertices stop almost immediately")
			return t, nil
		},
	}
}

// e3 reproduces the recurrence analysis of §2: a(p) computed by the
// recurrence equals OEIS A000788 term-by-term and grows as Θ(n ln n). The
// closed-form evaluation over the whole range is sharded with sweep.Map.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Recurrence a(p) = A000788(p) = Θ(n ln n)",
		Claim: "§2: \"this sequence ... is known to be in θ(n ln n) (see A000788)\"",
		Run: func(ctx context.Context, cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{4, 16, 64, 256, 1024, 4096, 16384, 65536})
			maxP := 0
			for _, p := range sizes {
				if p > maxP {
					maxP = p
				}
			}
			a, err := analytic.Recurrence(maxP)
			if err != nil {
				return nil, err
			}
			// Term-by-term closed forms over the whole range, not just the
			// rows, computed across the worker pool.
			closed := make([]int64, maxP+1)
			if err := sweep.Map(ctx, cfg.Workers, maxP+1, func(p int) error {
				c, err := analytic.A000788(int64(p))
				if err != nil {
					return err
				}
				closed[p] = c
				return nil
			}); err != nil {
				return nil, err
			}
			t := &Table{
				Title:   "E3: segment recurrence vs closed form vs growth",
				Columns: []string{"p", "a(p)", "A000788(p)", "equal", "a(p)/(p ln p)"},
			}
			allEqual := true
			for _, p := range sizes {
				eq := a[p] == closed[p]
				allEqual = allEqual && eq
				ratio := float64(a[p]) / analytic.NLogN(p)
				t.AddRow(ci(p), ci(a[p]), ci(closed[p]), cb(eq), cf(ratio))
			}
			for p := 0; p <= maxP; p++ {
				if a[p] != closed[p] {
					allEqual = false
					t.AddNote("MISMATCH at p=%d: a=%d closed=%d", p, a[p], closed[p])
					break
				}
			}
			t.AddNote("recurrence == A000788 for all p <= %d: %v", maxP, allEqual)
			t.AddNote("a(p)/(p ln p) -> 1/(2 ln 2) ≈ %.3f (Θ(n ln n) confirmed)", 1/(2*math.Log(2)))
			if !allEqual {
				return t, fmt.Errorf("experiments: recurrence/A000788 mismatch")
			}
			return t, nil
		},
	}
}
