package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/problems"
)

// e1 reproduces the worst-case claim of §2: the largest-ID problem has
// linear classic complexity — the maximum-ID vertex must see the whole
// cycle, radius floor(n/2), under EVERY permutation.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Largest ID: worst-case radius is linear (floor(n/2))",
		Claim: "§2: \"the vertex with the maximum ID needs n/2 rounds\"",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096})
			trials := trialsOrDefault(cfg, 5)
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E1: pruning algorithm, classic measure max_v r(v)",
				Columns: []string{"n", "maxRadius", "n/2", "avg/max", "verified"},
			}
			var ns []int
			var maxima []float64
			for _, n := range sizes {
				c, err := graph.NewCycle(n)
				if err != nil {
					return nil, err
				}
				worstMax := 0
				var ratio float64
				verified := true
				for trial := 0; trial < trials; trial++ {
					a := ids.Random(n, rng)
					res, err := local.RunView(c, a, largestid.Pruning{})
					if err != nil {
						return nil, err
					}
					if err := (problems.LargestID{}).Verify(c, a, res.Outputs); err != nil {
						verified = false
					}
					if res.MaxRadius() > worstMax {
						worstMax = res.MaxRadius()
						ratio = res.AvgRadius() / float64(res.MaxRadius())
					}
				}
				t.AddRow(n, worstMax, n/2, ratio, verified)
				ns = append(ns, n)
				maxima = append(maxima, float64(worstMax))
			}
			if fit, err := measure.FitAgainstLinear(ns, maxima); err == nil {
				t.AddNote("linear fit of maxRadius vs n: slope=%.4f (paper: 1/2), R2=%.5f", fit.Slope, fit.R2)
			}
			return t, nil
		},
	}
}

// e2 reproduces the separation claim of §2: the pruning algorithm's
// worst-case AVERAGE radius is Θ(log n) — exponentially below the linear
// classic measure. The exact worst-case permutation is reconstructed from
// the recurrence, so the measured sum must equal a(n-1) + floor(n/2).
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Largest ID: worst-case average radius is Θ(log n)",
		Claim: "§2: \"the average radius is logarithmic in n, exponentially smaller than the worst case\"",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384})
			trials := trialsOrDefault(cfg, 5)
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := &Table{
				Title:   "E2: pruning algorithm, average measure (worst permutation, built exactly)",
				Columns: []string{"n", "sumRadii", "a(n-1)+n/2", "exact", "worstAvg", "ln n", "median", "p90", "sampledAvg", "max/avg"},
			}
			var ns []int
			var avgs []float64
			for _, n := range sizes {
				c, err := graph.NewCycle(n)
				if err != nil {
					return nil, err
				}
				perm, err := analytic.WorstCyclePerm(n)
				if err != nil {
					return nil, err
				}
				a, err := ids.FromPerm(perm)
				if err != nil {
					return nil, err
				}
				res, err := local.RunView(c, a, largestid.Pruning{})
				if err != nil {
					return nil, err
				}
				theory, err := analytic.WorstCycleSum(n)
				if err != nil {
					return nil, err
				}
				// NB: the engine's segment radii match the paper's model
				// exactly; any mismatch here falsifies the reproduction.
				exact := int64(res.SumRadii()) == theory
				worstAvg := res.AvgRadius()
				dist := measure.Summarize(res.Radii)

				sampled := 0.0
				for trial := 0; trial < trials; trial++ {
					r2, err := local.RunView(c, ids.Random(n, rng), largestid.Pruning{})
					if err != nil {
						return nil, err
					}
					if r2.AvgRadius() > sampled {
						sampled = r2.AvgRadius()
					}
				}
				t.AddRow(n, res.SumRadii(), theory, exact, worstAvg,
					math.Log(float64(n)), dist.Median, dist.P90, sampled,
					float64(res.MaxRadius())/worstAvg)
				ns = append(ns, n)
				avgs = append(avgs, worstAvg)
			}
			if fit, err := measure.FitAgainstLog(ns, avgs); err == nil {
				t.AddNote("log fit of worstAvg vs ln n: slope=%.4f, R2=%.5f (Θ(log n) ⇔ stable slope, R2≈1)", fit.Slope, fit.R2)
			}
			t.AddNote("separation max/avg grows ~ n/log n: exponential gap between the two measures")
			t.AddNote("median/p90 show the skew behind the average: most vertices stop almost immediately")
			return t, nil
		},
	}
}

// e3 reproduces the recurrence analysis of §2: a(p) computed by the
// recurrence equals OEIS A000788 term-by-term and grows as Θ(n ln n).
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Recurrence a(p) = A000788(p) = Θ(n ln n)",
		Claim: "§2: \"this sequence ... is known to be in θ(n ln n) (see A000788)\"",
		Run: func(cfg Config) (*Table, error) {
			sizes := sizesOrDefault(cfg, []int{4, 16, 64, 256, 1024, 4096, 16384, 65536})
			maxP := sizes[len(sizes)-1]
			a, err := analytic.Recurrence(maxP)
			if err != nil {
				return nil, err
			}
			t := &Table{
				Title:   "E3: segment recurrence vs closed form vs growth",
				Columns: []string{"p", "a(p)", "A000788(p)", "equal", "a(p)/(p ln p)"},
			}
			allEqual := true
			for _, p := range sizes {
				closed, err := analytic.A000788(int64(p))
				if err != nil {
					return nil, err
				}
				eq := a[p] == closed
				allEqual = allEqual && eq
				ratio := float64(a[p]) / analytic.NLogN(p)
				t.AddRow(p, a[p], closed, eq, ratio)
			}
			// Term-by-term check over the whole range, not just the rows.
			for p := 0; p <= maxP; p++ {
				closed, err := analytic.A000788(int64(p))
				if err != nil {
					return nil, err
				}
				if a[p] != closed {
					allEqual = false
					t.AddNote("MISMATCH at p=%d: a=%d closed=%d", p, a[p], closed)
					break
				}
			}
			t.AddNote("recurrence == A000788 for all p <= %d: %v", maxP, allEqual)
			t.AddNote("a(p)/(p ln p) -> 1/(2 ln 2) ≈ %.3f (Θ(n ln n) confirmed)", 1/(2*math.Log(2)))
			if !allEqual {
				return t, fmt.Errorf("experiments: recurrence/A000788 mismatch")
			}
			return t, nil
		},
	}
}
