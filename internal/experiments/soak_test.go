package experiments

import (
	"context"
	"math"
	"strconv"
	"testing"
)

// TestSoakLargeSweeps runs the headline experiments at full paper scale.
// Skipped under -short; the regular suite uses reduced sweeps.
func TestSoakLargeSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	e2, err := Get("E2")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e2.Run(context.Background(), Config{Seed: 3, Sizes: []int{1 << 12, 1 << 14, 1 << 16}, Trials: 2})
	if err != nil {
		t.Fatalf("E2 soak: %v", err)
	}
	// Every row must keep the exact identity and the Θ(log n) constant.
	exactCol, avgCol, nCol := -1, -1, -1
	for i, c := range tab.Columns {
		switch c {
		case "exact":
			exactCol = i
		case "worstAvg":
			avgCol = i
		case "n":
			nCol = i
		}
	}
	for _, row := range tab.Rows {
		if row[exactCol] != "true" {
			t.Errorf("exact identity broken at scale: %v", row)
		}
		n, err := strconv.Atoi(row[nCol])
		if err != nil {
			t.Fatal(err)
		}
		avg, err := strconv.ParseFloat(row[avgCol], 64)
		if err != nil {
			t.Fatal(err)
		}
		// worstAvg ~ log2(n)/2 + O(1).
		predicted := math.Log2(float64(n)) / 2
		if math.Abs(avg-predicted) > 2 {
			t.Errorf("n=%d: worstAvg %v far from log2(n)/2 = %v", n, avg, predicted)
		}
	}

	e4, err := Get("E4")
	if err != nil {
		t.Fatal(err)
	}
	tab4, err := e4.Run(context.Background(), Config{Seed: 3, Sizes: []int{1 << 17}})
	if err != nil {
		t.Fatalf("E4 soak: %v", err)
	}
	for i, c := range tab4.Columns {
		if c != "cvMax" {
			continue
		}
		for _, row := range tab4.Rows {
			v, err := strconv.Atoi(row[i])
			if err != nil {
				t.Fatal(err)
			}
			if v > 8 {
				t.Errorf("CV radius %d at n=131072; log* plateau broken", v)
			}
		}
	}
}
