package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestSoakLargeSweeps runs the headline experiments at full paper scale.
// Skipped under -short; the regular suite uses reduced sweeps.
func TestSoakLargeSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	e2, err := Get("E2")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e2.Run(context.Background(), Config{Seed: 3, Sizes: []int{1 << 12, 1 << 14, 1 << 16}, Trials: 2})
	if err != nil {
		t.Fatalf("E2 soak: %v", err)
	}
	// Every row must keep the exact identity and the Θ(log n) constant.
	exactCol, avgCol, nCol := -1, -1, -1
	for i, c := range tab.Columns {
		switch c {
		case "exact":
			exactCol = i
		case "worstAvg":
			avgCol = i
		case "n":
			nCol = i
		}
	}
	for _, row := range tab.Rows {
		if row[exactCol] != "true" {
			t.Errorf("exact identity broken at scale: %v", row)
		}
		n, err := strconv.Atoi(row[nCol])
		if err != nil {
			t.Fatal(err)
		}
		avg, err := strconv.ParseFloat(row[avgCol], 64)
		if err != nil {
			t.Fatal(err)
		}
		// worstAvg ~ log2(n)/2 + O(1).
		predicted := math.Log2(float64(n)) / 2
		if math.Abs(avg-predicted) > 2 {
			t.Errorf("n=%d: worstAvg %v far from log2(n)/2 = %v", n, avg, predicted)
		}
	}

	e4, err := Get("E4")
	if err != nil {
		t.Fatal(err)
	}
	tab4, err := e4.Run(context.Background(), Config{Seed: 3, Sizes: []int{1 << 17}})
	if err != nil {
		t.Fatalf("E4 soak: %v", err)
	}
	for i, c := range tab4.Columns {
		if c != "cvMax" {
			continue
		}
		for _, row := range tab4.Rows {
			v, err := strconv.Atoi(row[i])
			if err != nil {
				t.Fatal(err)
			}
			if v > 8 {
				t.Errorf("CV radius %d at n=131072; log* plateau broken", v)
			}
		}
	}
}

// TestSoakLeasedUnequalWorkers drives the headline distributed experiments
// through the lease executor with three workers of deliberately unequal
// speed (a per-grain sleep injected through Throttle) over a real
// directory store. Two assertions: the merged tables are byte-identical to
// the single-process run, and the speed gap actually exercised the steal
// path — fast workers must have taken straggler tails, not waited.
// Skipped under -short like the other soaks.
func TestSoakLeasedUnequalWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cases := []struct {
		id  string
		cfg Config
	}{
		{"E2", Config{Seed: 3, Sizes: []int{1 << 10, 1 << 12}, Trials: 4}},
		{"E6", Config{Seed: 5, Sizes: []int{64, 256}, Trials: 40}},
		{"E10", Config{Seed: 7, Sizes: []int{5, 6}, Trials: 120}},
	}
	delays := []time.Duration{0, time.Millisecond, 3 * time.Millisecond}
	var total sweep.LeaseStats
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			e, err := Get(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.Run(context.Background(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sweep.NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			var (
				wg sync.WaitGroup
				mu sync.Mutex
			)
			errs := make([]error, len(delays))
			for i := range delays {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					stats, err := RunLeasedSweeps(context.Background(), e, tc.cfg, st, sweep.LeaseOptions{
						Worker:         fmt.Sprintf("w%d", i),
						GrainsPerSize:  8,
						MaxLeaseGrains: 4,
						Poll:           time.Millisecond,
						Throttle:       func(sweep.Block) { time.Sleep(delays[i]) },
					})
					errs[i] = err
					mu.Lock()
					total.Add(stats)
					mu.Unlock()
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			got, err := MergeLeased(e, tc.cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			if want.Render() != got.Render() {
				t.Errorf("leased soak table differs from single process\nwant:\n%s\ngot:\n%s",
					want.Render(), got.Render())
			}
		})
	}
	// Across the three experiments the unequal speeds must have triggered
	// work recovery: steals (or speculation on the last straggling grain).
	if total.Steals == 0 {
		t.Errorf("no steals across the whole soak; unequal workers never rebalanced: %+v", total)
	}
}
