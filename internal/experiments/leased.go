package experiments

// Leased runs: the experiment-level face of the sweep engine's
// work-stealing lease protocol (internal/sweep/lease.go). Where a static
// shard run fixes the i-of-m split up front, a leased run lets any number
// of executors — started at any time, on any machine sharing the store —
// pull grain-aligned trial ranges from the uncovered space, steal
// straggler tails and re-execute dead workers' claims, all while the
// merged table stays byte-identical to a single-process run.
//
// The store layout namespaces one run per (experiment, normalized config):
//
//	lease/<exp>-<confighash>/manifest – experiment id + full config
//	lease/<exp>-<confighash>/s<k>/…   – sweep k's lease run (plan, leases,
//	                                    per-grain completions)
//
// The manifest makes a store self-describing: a merger (cmd/sweepmerge
// -store) discovers the run, recovers the config, and tabulates without
// being told anything beyond the directory.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"

	"repro/internal/sweep"
)

// formatLeaseManifest tags a leased run's manifest record.
const formatLeaseManifest = "experiments.leasemanifest"

// LeaseManifest identifies a leased run: which experiment, which config.
// The config is stored in full (a merger needs it to Tabulate), compared
// normalized (parallelism knobs cannot change result bytes).
type LeaseManifest struct {
	Experiment string `json:"experiment"`
	Config     Config `json:"config"`
}

// JobKey is the normalized-config identity of an (experiment, config)
// run: the experiment id plus a short hash of the result-affecting config
// fields. Two submissions that must produce byte-identical tables —
// parallelism knobs and perf toggles differ, nothing else — share a key,
// which is what lets sweepd deduplicate "millions of users" submitting
// the same sweep into one computation and one cached table.
func JobKey(e Experiment, cfg Config) string {
	raw, err := json.Marshal(normalizedConfig(cfg))
	if err != nil {
		// Config is plain scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("experiments: marshal config: %v", err))
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%s-%016x", strings.ToLower(e.ID), h.Sum64())
}

// LeaseRunPrefix is the store namespace of an (experiment, config) leased
// run — the job key under "lease/", so runs of one experiment under
// different configs never share records.
func LeaseRunPrefix(e Experiment, cfg Config) string {
	return "lease/" + JobKey(e, cfg)
}

func manifestKey(prefix string) string { return prefix + "/manifest" }

func sweepPrefix(prefix string, k int) string { return fmt.Sprintf("%s/s%d", prefix, k) }

// ensureManifest writes the run's manifest, or validates an existing one
// against this executor's identity. A torn manifest is overwritten.
func ensureManifest(st sweep.Store, prefix string, e Experiment, cfg Config) error {
	key := manifestKey(prefix)
	if data, err := st.Get(key); err == nil {
		mf := &LeaseManifest{}
		if derr := sweep.DecodeFile(bytes.NewReader(data), formatLeaseManifest, mf); derr == nil {
			if mf.Experiment != e.ID ||
				!reflect.DeepEqual(normalizedConfig(mf.Config), normalizedConfig(cfg)) {
				return fmt.Errorf("experiments: lease run %q belongs to a different experiment or config", prefix)
			}
			return nil
		}
	}
	var buf bytes.Buffer
	if err := sweep.EncodeFile(&buf, formatLeaseManifest, &LeaseManifest{Experiment: e.ID, Config: cfg}); err != nil {
		return err
	}
	if err := st.Put(key, buf.Bytes()); err != nil {
		return fmt.Errorf("experiments: write lease manifest: %w", err)
	}
	return nil
}

// RunLeasedSweeps executes every sweep of a shardable experiment as one
// lease executor over the store, sweep by sweep, and returns the summed
// participation stats. opts.Prefix is ignored — the run prefix is derived
// from the experiment and config (LeaseRunPrefix) so independently started
// executors land in the same namespace by construction. The call returns
// when every sweep's target is covered; it does NOT return results —
// MergeLeased (or cmd/sweepmerge -store) collects them from the store.
func RunLeasedSweeps(ctx context.Context, e Experiment, cfg Config, st sweep.Store, opts sweep.LeaseOptions) (sweep.LeaseStats, error) {
	var total sweep.LeaseStats
	if !e.Shardable() {
		return total, fmt.Errorf("experiments: %s does not expose its sweeps; it cannot run leased", e.ID)
	}
	specs, err := expandSweeps(e, cfg)
	if err != nil {
		return total, fmt.Errorf("experiments: %s sweeps: %w", e.ID, err)
	}
	prefix := LeaseRunPrefix(e, cfg)
	if err := ensureManifest(st, prefix, e, cfg); err != nil {
		return total, err
	}
	for k := range specs {
		o := opts
		o.Prefix = sweepPrefix(prefix, k)
		stats, err := sweep.RunLeased(ctx, specs[k], st, o)
		total.Add(stats)
		if err != nil {
			return total, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
	}
	return total, nil
}

// MergeLeased collects a leased run's per-grain completion records into
// the experiment's final table — byte-identical to a single-process run.
// Incomplete runs fail with sweep's typed *IncompleteError (still
// running? worker died?), double-counting with *OverlapError.
func MergeLeased(e Experiment, cfg Config, st sweep.Store) (*Table, error) {
	if !e.Shardable() {
		return nil, fmt.Errorf("experiments: %s does not expose its sweeps; it cannot merge a leased run", e.ID)
	}
	specs, err := expandSweeps(e, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s sweeps: %w", e.ID, err)
	}
	prefix := LeaseRunPrefix(e, cfg)
	results := make([]*sweep.Result, len(specs))
	for k := range specs {
		plan, err := sweep.PlanOf(specs[k])
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		res, err := sweep.CollectLeased(st, sweepPrefix(prefix, k), plan)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		results[k] = res
	}
	return e.Tabulate(cfg, results)
}

// FindLeasedRuns lists the leased runs a store holds, by reading every
// manifest under "lease/". Torn or foreign manifests are skipped.
func FindLeasedRuns(st sweep.Store) ([]LeaseManifest, error) {
	runs, err := DiscoverLeasedRuns(st)
	if err != nil {
		return nil, err
	}
	out := make([]LeaseManifest, len(runs))
	for i, r := range runs {
		out[i] = r.Manifest
	}
	return out, nil
}

// LeasedRun is one discovered run: its manifest plus the store prefix its
// records live under.
type LeasedRun struct {
	Manifest LeaseManifest
	Prefix   string
}

// DiscoverLeasedRuns lists the leased runs a store holds with their store
// prefixes — the resumable-run discovery a restarted sweepd re-attaches
// with: every manifest under "lease/" whose bytes decode names a run whose
// durable per-grain progress is still in the store. Torn or foreign
// manifests are skipped.
func DiscoverLeasedRuns(st sweep.Store) ([]LeasedRun, error) {
	names, err := st.List("lease/")
	if err != nil {
		return nil, err
	}
	var runs []LeasedRun
	for _, name := range names {
		prefix, ok := strings.CutSuffix(name, "/manifest")
		if !ok {
			continue
		}
		data, err := st.Get(name)
		if err != nil {
			continue
		}
		mf := LeaseManifest{}
		if derr := sweep.DecodeFile(bytes.NewReader(data), formatLeaseManifest, &mf); derr != nil {
			continue
		}
		runs = append(runs, LeasedRun{Manifest: mf, Prefix: prefix})
	}
	return runs, nil
}

// LeasedProgress snapshots a leased run's per-sweep coverage and live
// claims without joining it: one Progress per sweep, in Sweeps order. A
// store holding no records for the run yet reports zero coverage.
func LeasedProgress(e Experiment, cfg Config, st sweep.Store) ([]*sweep.Progress, error) {
	if !e.Shardable() {
		return nil, fmt.Errorf("experiments: %s does not expose its sweeps; it has no leased progress", e.ID)
	}
	specs, err := expandSweeps(e, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s sweeps: %w", e.ID, err)
	}
	prefix := LeaseRunPrefix(e, cfg)
	out := make([]*sweep.Progress, len(specs))
	for k := range specs {
		plan, err := sweep.PlanOf(specs[k])
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		p, err := sweep.LeaseProgress(st, sweepPrefix(prefix, k), plan)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		out[k] = p
	}
	return out, nil
}
