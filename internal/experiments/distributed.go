package experiments

// Distributed runs: the experiment-level face of the sweep engine's
// plan/execute/merge split. A shardable experiment (one defining
// Sweeps/Tabulate) can be executed as m independent processes — each
// running the contiguous shard i/m of every sweep's trial space and
// writing its partial aggregates to a shard file — and any process holding
// all m files folds them (MergeShards) into the final table, byte-
// identical to a single-process run. A checkpoint file makes either mode
// restartable: progress is committed after every completed block, and a
// resumed run executes only the complement.

import (
	"context"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"

	"repro/internal/sweep"
)

// Format tags of the experiment-level files, framed by the sweep codec's
// versioned envelope.
const (
	formatShard      = "experiments.shard"
	formatCheckpoint = "experiments.checkpoint"
)

// ShardFile is one process's contribution to a distributed experiment run:
// the shard's partial aggregates for every sweep of the experiment, plus
// the identity (experiment, config, shard) MergeShards validates before
// folding.
type ShardFile struct {
	Experiment string          `json:"experiment"`
	Config     Config          `json:"config"`
	Shard      sweep.Shard     `json:"shard"`
	Results    []*sweep.Result `json:"results"`
	// Ranges records, per sweep and per size, the trial range the
	// aggregates actually cover — the file's explicit claim, checked for
	// cross-file disjointness at merge time. Files written before this
	// field existed omit it; the merge then derives the claim from Shard.
	Ranges [][]sweep.TrialRange `json:"ranges,omitempty"`
}

// WriteShardFile serializes the shard's aggregates with the versioned
// envelope codec.
func WriteShardFile(w io.Writer, f *ShardFile) error {
	return sweep.EncodeFile(w, formatShard, f)
}

// ReadShardFile decodes one shard file; corrupted or foreign input —
// including missing per-sweep aggregates and payloads violating the
// aggregate invariants — fails with the codec's typed *sweep.DecodeError,
// never a panic.
func ReadShardFile(r io.Reader) (*ShardFile, error) {
	f := &ShardFile{}
	if err := sweep.DecodeFile(r, formatShard, f); err != nil {
		return nil, err
	}
	for k, res := range f.Results {
		if res == nil {
			return nil, &sweep.DecodeError{Format: formatShard,
				Reason: fmt.Sprintf("sweep %d: missing aggregates", k)}
		}
		if err := sweep.ValidateResult(res); err != nil {
			return nil, err
		}
	}
	if f.Ranges != nil {
		if len(f.Ranges) != len(f.Results) {
			return nil, &sweep.DecodeError{Format: formatShard,
				Reason: fmt.Sprintf("%d range claims for %d sweeps", len(f.Ranges), len(f.Results))}
		}
		for k, rs := range f.Ranges {
			if len(rs) != len(f.Results[k].Sizes) {
				return nil, &sweep.DecodeError{Format: formatShard,
					Reason: fmt.Sprintf("sweep %d: %d range claims for %d sizes", k, len(rs), len(f.Results[k].Sizes))}
			}
			for i, r := range rs {
				if r.T0 < 0 || r.T0 > r.T1 {
					return nil, &sweep.DecodeError{Format: formatShard,
						Reason: fmt.Sprintf("sweep %d size %d: invalid range claim [%d,%d)", k, i, r.T0, r.T1)}
				}
			}
		}
	}
	return f, nil
}

// runCheckpoint is the progress record of one (experiment, config, shard)
// run: one engine checkpoint per sweep.
type runCheckpoint struct {
	Experiment string              `json:"experiment"`
	Config     Config              `json:"config"`
	Shard      sweep.Shard         `json:"shard"`
	Sweeps     []*sweep.Checkpoint `json:"sweeps"`
}

// normalizedConfig strips the fields that cannot change result bytes —
// worker count, the perf toggles, and the ball-sourcing backend — so shards
// launched with different parallelism or backends still merge. StreamIDs
// stays: it selects a different permutation family and thus different
// bytes.
func normalizedConfig(cfg Config) Config {
	cfg.Workers = 0
	cfg.NoAtlas = false
	cfg.NoKernels = false
	cfg.Backend = ""
	return cfg
}

// RunSweeps executes every sweep of a shardable experiment and returns the
// merged per-sweep aggregates, in Sweeps order. A non-zero shard restricts
// each sweep to its contiguous slice of the trial space. A non-empty
// checkpointPath makes the run restartable: an existing file (validated
// against the experiment, normalized config, shard and per-sweep plans)
// resumes from its last completed block, progress is committed after every
// block, and the file is removed once the run completes. Shard runs that
// must persist their aggregates afterwards use RunShardToFile instead,
// which keeps the checkpoint until the shard file is durably written.
func RunSweeps(ctx context.Context, e Experiment, cfg Config, shard sweep.Shard, checkpointPath string) ([]*sweep.Result, error) {
	return runSweeps(ctx, e, cfg, shard, checkpointPath, false)
}

// runSweeps is RunSweeps with the checkpoint-retention policy explicit:
// keepCheckpoint leaves the finished file on disk for the caller to remove
// once its own durable output (a shard file) exists.
func runSweeps(ctx context.Context, e Experiment, cfg Config, shard sweep.Shard, checkpointPath string, keepCheckpoint bool) ([]*sweep.Result, error) {
	if !e.Shardable() {
		return nil, fmt.Errorf("experiments: %s does not expose its sweeps; it cannot run sharded or checkpointed", e.ID)
	}
	specs, err := expandSweeps(e, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s sweeps: %w", e.ID, err)
	}
	for k := range specs {
		specs[k].Shard = shard
	}

	var (
		ck *runCheckpoint
		w  *sweep.CheckpointWriter
	)
	if checkpointPath != "" {
		if ck, err = loadOrInitCheckpoint(checkpointPath, e, cfg, shard, specs); err != nil {
			return nil, err
		}
		w = sweep.NewCheckpointWriterFunc(ck.Sweeps,
			func() error { return sweep.SaveFile(checkpointPath, formatCheckpoint, ck) })
	}

	results := make([]*sweep.Result, len(specs))
	for k := range specs {
		spec := specs[k]
		runCtx := ctx
		if w != nil {
			spec.Done = ck.Sweeps[k].Done
			spec.OnBlock = w.OnBlockFor(k)
			// Fail fast on a dead checkpoint: a private cancel aborts the
			// sweep promptly instead of completing hours of unresumable
			// work.
			var cancel context.CancelFunc
			runCtx, cancel = context.WithCancel(ctx)
			w.FailFast(cancel)
			defer cancel()
		}
		partial, err := sweep.Run(runCtx, spec)
		if w != nil {
			// A persistence failure outranks the cancellation it caused.
			if werr := w.Err(); werr != nil {
				return nil, fmt.Errorf("experiments: %s checkpoint: %w", e.ID, werr)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		if w != nil {
			// The checkpoint aggregates exactly Done (prior + this run's
			// blocks); reading the result off it avoids double-counting the
			// resumed complement against the prior record.
			results[k] = ck.Sweeps[k].Result()
		} else {
			results[k] = partial
		}
	}
	if ck != nil && !keepCheckpoint {
		if err := removeCheckpoint(checkpointPath); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// removeCheckpoint deletes a finished run's checkpoint file.
func removeCheckpoint(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("experiments: remove finished checkpoint: %w", err)
	}
	return nil
}

// loadOrInitCheckpoint returns the resumable record at path, or a fresh one
// when the file does not exist. An existing record must match the run's
// identity exactly — a checkpoint from a different experiment, config,
// shard or plan must never silently merge.
func loadOrInitCheckpoint(path string, e Experiment, cfg Config, shard sweep.Shard, specs []sweep.Spec) (*runCheckpoint, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		ck := &runCheckpoint{Experiment: e.ID, Config: cfg, Shard: shard,
			Sweeps: make([]*sweep.Checkpoint, len(specs))}
		for k := range specs {
			plan, err := sweep.PlanOf(specs[k])
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep %d plan: %w", k, err)
			}
			ck.Sweeps[k] = sweep.NewCheckpoint(plan)
		}
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: open checkpoint: %w", err)
	}
	defer f.Close()
	ck := &runCheckpoint{}
	if err := sweep.DecodeFile(f, formatCheckpoint, ck); err != nil {
		return nil, err
	}
	// Structural validation before any identity check or fold: a corrupted
	// or forged record must fail with the codec's typed error here, never
	// nil-deref at Plan.Equal or blow an index inside Fold mid-run.
	for k, s := range ck.Sweeps {
		if s == nil {
			return nil, &sweep.DecodeError{Format: formatCheckpoint,
				Reason: fmt.Sprintf("sweep %d: missing checkpoint record", k)}
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	if ck.Experiment != e.ID {
		return nil, fmt.Errorf("experiments: checkpoint %s belongs to %s, not %s", path, ck.Experiment, e.ID)
	}
	if !reflect.DeepEqual(normalizedConfig(ck.Config), normalizedConfig(cfg)) {
		return nil, fmt.Errorf("experiments: checkpoint %s was written with a different config", path)
	}
	if ck.Shard != shard {
		return nil, fmt.Errorf("experiments: checkpoint %s covers shard %d/%d, not %d/%d",
			path, ck.Shard.Index, ck.Shard.Count, shard.Index, shard.Count)
	}
	if len(ck.Sweeps) != len(specs) {
		return nil, fmt.Errorf("experiments: checkpoint %s has %d sweeps, experiment has %d", path, len(ck.Sweeps), len(specs))
	}
	for k := range specs {
		plan, err := sweep.PlanOf(specs[k])
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep %d plan: %w", k, err)
		}
		if !ck.Sweeps[k].Plan.Equal(plan) {
			return nil, fmt.Errorf("experiments: checkpoint %s sweep %d plan does not match the experiment's", path, k)
		}
	}
	return ck, nil
}

// RunShard executes shard i/m of the experiment (checkpointed when
// checkpointPath is non-empty) and packages the partial aggregates for a
// later MergeShards. A checkpoint is NOT removed on completion — the
// aggregates only exist in the returned value, so the caller must persist
// them before dropping the resumable record (RunShardToFile does both in
// the safe order).
func RunShard(ctx context.Context, e Experiment, cfg Config, shard sweep.Shard, checkpointPath string) (*ShardFile, error) {
	results, err := runSweeps(ctx, e, cfg, shard, checkpointPath, true)
	if err != nil {
		return nil, err
	}
	ranges, err := shardRanges(e, cfg, shard)
	if err != nil {
		return nil, err
	}
	return &ShardFile{Experiment: e.ID, Config: cfg, Shard: shard, Results: results, Ranges: ranges}, nil
}

// shardRanges spells out the trial range a shard's aggregates cover, per
// sweep and size — the explicit claim MergeShards checks for cross-file
// disjointness.
func shardRanges(e Experiment, cfg Config, shard sweep.Shard) ([][]sweep.TrialRange, error) {
	specs, err := expandSweeps(e, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s sweeps: %w", e.ID, err)
	}
	ranges := make([][]sweep.TrialRange, len(specs))
	for k := range specs {
		plan, err := sweep.PlanOf(specs[k])
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		counts, err := plan.Counts()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		ranges[k] = make([]sweep.TrialRange, len(counts))
		for i, total := range counts {
			lo, hi := shard.Range(total)
			ranges[k][i] = sweep.TrialRange{T0: lo, T1: hi}
		}
	}
	return ranges, nil
}

// RunShardToFile is the durable form of RunShard: it opens outPath up
// front (a typo'd path fails before any sweep runs), executes the shard,
// writes and syncs the shard file, and only then removes the checkpoint —
// so at every instant either the checkpoint or the finished shard file
// exists, and a crash in the window between them cannot strand completed
// work.
func RunShardToFile(ctx context.Context, e Experiment, cfg Config, shard sweep.Shard, checkpointPath, outPath string) error {
	out, err := os.Create(outPath)
	if err != nil {
		return fmt.Errorf("experiments: create shard output: %w", err)
	}
	sf, err := RunShard(ctx, e, cfg, shard, checkpointPath)
	if err != nil {
		out.Close()
		os.Remove(outPath) // leave no half-truthful empty shard file behind
		return err
	}
	if err := WriteShardFile(out, sf); err != nil {
		out.Close()
		os.Remove(outPath)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return fmt.Errorf("experiments: sync shard output: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("experiments: close shard output: %w", err)
	}
	if checkpointPath != "" {
		return removeCheckpoint(checkpointPath)
	}
	return nil
}

// MergeShards validates that the files are the complete shard set of one
// (experiment, config) run — same identity everywhere, indices covering
// 0..m-1 exactly once — folds the per-sweep aggregates with the engine's
// deterministic merge, and tabulates the final table: byte-identical to
// the table a single process renders.
func MergeShards(files ...*ShardFile) (Experiment, *Table, error) {
	if len(files) == 0 {
		return Experiment{}, nil, fmt.Errorf("experiments: no shard files to merge")
	}
	first := files[0]
	e, err := Get(first.Experiment)
	if err != nil {
		return Experiment{}, nil, err
	}
	if !e.Shardable() {
		return Experiment{}, nil, fmt.Errorf("experiments: %s is not shardable; refusing a forged shard file", e.ID)
	}
	m := first.Shard.Count
	if first.Shard.IsZero() {
		m = 1
	}
	if len(files) != m {
		return Experiment{}, nil, fmt.Errorf("experiments: %s was sharded %d ways but %d file(s) given", e.ID, m, len(files))
	}
	// The experiment's own sweep plans define the shape every file must
	// have — sweep count, sizes per sweep — so a forged or truncated file
	// is rejected here with a descriptive error instead of panicking in
	// the merge or in Tabulate.
	specs, err := expandSweeps(e, first.Config)
	if err != nil {
		return Experiment{}, nil, fmt.Errorf("experiments: %s sweeps: %w", e.ID, err)
	}
	countsBySweep := make([][]int, len(specs))
	plansBySweep := make([]sweep.Plan, len(specs))
	for k := range specs {
		if plansBySweep[k], err = sweep.PlanOf(specs[k]); err != nil {
			return Experiment{}, nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
		if countsBySweep[k], err = plansBySweep[k].Counts(); err != nil {
			return Experiment{}, nil, fmt.Errorf("experiments: %s sweep %d: %w", e.ID, k, err)
		}
	}
	// claims[k][i] collects every file's trial-range claim at (sweep, size)
	// for the cross-file disjointness and coverage check below.
	type claim struct {
		r     sweep.TrialRange
		shard sweep.Shard
	}
	claims := make([][][]claim, len(specs))
	for k := range specs {
		claims[k] = make([][]claim, len(specs[k].Sizes))
	}
	seen := make([]bool, m)
	for _, f := range files {
		if f.Experiment != first.Experiment {
			return Experiment{}, nil, fmt.Errorf("experiments: mixing shards of %s and %s", first.Experiment, f.Experiment)
		}
		if !reflect.DeepEqual(normalizedConfig(f.Config), normalizedConfig(first.Config)) {
			return Experiment{}, nil, fmt.Errorf("experiments: shard files disagree on the config")
		}
		idx, count := f.Shard.Index, f.Shard.Count
		if f.Shard.IsZero() {
			idx, count = 0, 1
		}
		if count != m {
			return Experiment{}, nil, fmt.Errorf("experiments: shard counts disagree (%d vs %d)", count, m)
		}
		if seen[idx] {
			return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d appears twice", idx, m)
		}
		seen[idx] = true
		if len(f.Results) != len(specs) {
			return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d carries %d sweep(s), %s defines %d", idx, m, len(f.Results), e.ID, len(specs))
		}
		for k, res := range f.Results {
			if res == nil {
				return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d sweep %d: missing aggregates", idx, m, k)
			}
			if len(res.Sizes) != len(specs[k].Sizes) {
				return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d sweep %d has %d sizes, %s expects %d",
					idx, m, k, len(res.Sizes), e.ID, len(specs[k].Sizes))
			}
			for i := range res.Sizes {
				if res.Sizes[i].N != specs[k].Sizes[i] {
					return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d sweep %d size %d is n=%d, %s expects n=%d",
						idx, m, k, i, res.Sizes[i].N, e.ID, specs[k].Sizes[i])
				}
				// Every file's aggregate must carry exactly the trials of
				// the range it claims — the explicit Ranges claim when
				// present, its shard's contiguous slice otherwise. A
				// truncated-but-self-consistent aggregate is rejected here,
				// not silently averaged into the table.
				total := countsBySweep[k][i]
				lo, hi := f.Shard.Range(total)
				if f.Ranges != nil {
					lo, hi = f.Ranges[k][i].T0, f.Ranges[k][i].T1
				}
				if hi > total {
					return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d sweep %d size n=%d claims trials [%d,%d), the space ends at %d",
						idx, m, k, res.Sizes[i].N, lo, hi, total)
				}
				// Under a quotient plan every executed representative folds
				// weight virtual trials, so a claimed range owes
				// (hi-lo)·weight trials in the aggregate.
				weight := plansBySweep[k].Weight(i)
				if res.Sizes[i].Trials != (hi-lo)*weight {
					return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d sweep %d size n=%d carries %d trials, its claimed range owes %d",
						idx, m, k, res.Sizes[i].N, res.Sizes[i].Trials, (hi-lo)*weight)
				}
				// The extremal trial indices are absolute coordinates; a
				// duplicated file relabelled as another shard still points
				// at the original slice and is caught here even when the
				// trial counts happen to match. Quotient aggregates record
				// extremal trials as FULL lexicographic ranks — coordinates
				// of a different (larger) space than the claimed canonical
				// range — so the containment check only applies unweighted.
				if res.Sizes[i].Trials > 0 && weight == 1 {
					for _, ti := range []int{res.Sizes[i].WorstAvgTrial, res.Sizes[i].WorstMaxTrial, res.Sizes[i].BestAvgTrial} {
						if ti < lo || ti >= hi {
							return Experiment{}, nil, fmt.Errorf("experiments: shard %d/%d sweep %d size n=%d: extremal trial %d lies outside its claimed range [%d,%d)",
								idx, m, k, res.Sizes[i].N, ti, lo, hi)
						}
					}
				}
				claims[k][i] = append(claims[k][i], claim{r: sweep.TrialRange{T0: lo, T1: hi}, shard: f.Shard})
			}
		}
	}
	// Cross-file check: at every (sweep, size) the claimed ranges must tile
	// the trial space exactly once. An overlap means the same trials would
	// be double-counted — a typed *sweep.OverlapError the callers
	// (cmd/sweepmerge) can distinguish from I/O trouble.
	for k := range claims {
		for i := range claims[k] {
			cs := claims[k][i]
			sort.Slice(cs, func(a, b int) bool { return cs[a].r.T0 < cs[b].r.T0 })
			cur := 0
			var prev sweep.TrialRange
			for _, c := range cs {
				if c.r.T0 < cur {
					return Experiment{}, nil, &sweep.OverlapError{N: specs[k].Sizes[i], A: prev, B: c.r}
				}
				if c.r.T0 > cur {
					return Experiment{}, nil, fmt.Errorf("experiments: sweep %d size n=%d: trials [%d,%d) claimed by no shard",
						k, specs[k].Sizes[i], cur, c.r.T0)
				}
				prev, cur = c.r, c.r.T1
			}
			if cur != countsBySweep[k][i] {
				return Experiment{}, nil, fmt.Errorf("experiments: sweep %d size n=%d: trials [%d,%d) claimed by no shard",
					k, specs[k].Sizes[i], cur, countsBySweep[k][i])
			}
		}
	}
	// Fold in shard order for a stable (if immaterial) merge sequence.
	sorted := append([]*ShardFile(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard.Index < sorted[j].Shard.Index })
	merged := make([]*sweep.Result, len(first.Results))
	for k := range merged {
		parts := make([]*sweep.Result, len(sorted))
		for i, f := range sorted {
			parts[i] = f.Results[k]
		}
		res, err := sweep.MergeResults(parts...)
		if err != nil {
			return Experiment{}, nil, fmt.Errorf("experiments: merge %s sweep %d: %w", e.ID, k, err)
		}
		merged[k] = res
	}
	tab, err := e.Tabulate(first.Config, merged)
	if err != nil {
		return Experiment{}, nil, err
	}
	return e, tab, nil
}
