package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/problems"
)

func cycleSpec(seed int64, sizes []int, trials, workers int) Spec {
	return Spec{
		Seed:    seed,
		Sizes:   sizes,
		Trials:  trials,
		Workers: workers,
		Graph:   func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:     func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
		Verify: func(g graph.Graph, a ids.Assignment, res *local.Result) error {
			return problems.LargestID{}.Verify(g, a, res.Outputs)
		},
	}
}

// TestDeterministicAcrossWorkerCounts is the sweep's core guarantee: the
// same seed produces byte-identical aggregates — integer totals, float
// means, extremal-trial summaries, pooled histograms — at any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	base, err := Run(context.Background(), cycleSpec(42, []int{16, 33, 64}, 9, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := Run(context.Background(), cycleSpec(42, []int{16, 33, 64}, 9, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: aggregates differ from sequential run\nseq: %+v\ngot: %+v", workers, base, got)
		}
	}
}

// TestMatchesSequentialLoop cross-checks the streaming aggregation against
// the naive loop the experiments used to hand-roll: same seeds, same graph,
// same per-trial executions, summaries folded with measure.Summarize.
func TestMatchesSequentialLoop(t *testing.T) {
	const (
		seed   = 7
		trials = 6
	)
	sizes := []int{12, 27}
	res, err := Run(context.Background(), cycleSpec(seed, sizes, trials, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes {
		c := graph.MustCycle(n)
		var worstBySum, worstByMax measure.Summary
		var totalSum, totalMax int64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(trialSeed(seed, i, trial)))
			r, err := local.RunView(c, ids.Random(n, rng), largestid.Pruning{})
			if err != nil {
				t.Fatal(err)
			}
			s := measure.Summarize(r.Radii)
			totalSum += int64(s.Sum)
			totalMax += int64(s.Max)
			if trial == 0 || s.Sum > worstBySum.Sum {
				worstBySum = s
			}
			if trial == 0 || s.Max > worstByMax.Max {
				worstByMax = s
			}
		}
		st := &res.Sizes[i]
		if st.Trials != trials || st.TotalSum != totalSum || st.TotalMax != totalMax {
			t.Errorf("n=%d: totals diverge: %+v want sum=%d max=%d", n, st, totalSum, totalMax)
		}
		if st.WorstAvg != worstBySum {
			t.Errorf("n=%d: WorstAvg %+v, sequential loop found %+v", n, st.WorstAvg, worstBySum)
		}
		if st.WorstMax != worstByMax {
			t.Errorf("n=%d: WorstMax %+v, sequential loop found %+v", n, st.WorstMax, worstByMax)
		}
		if !st.Verified() {
			t.Errorf("n=%d: verification failed unexpectedly", n)
		}
	}
}

// TestAtlasOnOffIdentical is the atlas acceptance guarantee at the sweep
// level: the same seed produces byte-identical aggregates with the atlas
// on, off, and at any worker count — the atlas is purely a throughput
// optimisation.
func TestAtlasOnOffIdentical(t *testing.T) {
	base := cycleSpec(17, []int{16, 33, 64}, 7, 1)
	base.NoAtlas = true
	want, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		spec := cycleSpec(17, []int{16, 33, 64}, 7, workers)
		got, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("atlas workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: atlas-backed aggregates differ from builder run", workers)
		}
	}
}

// TestAtlasMemLimitFallbackIdentical pins the degraded mode end to end: a
// sweep whose atlases exhaust mid-run still emits identical tables.
func TestAtlasMemLimitFallbackIdentical(t *testing.T) {
	base := cycleSpec(21, []int{48}, 6, 2)
	base.NoAtlas = true
	want, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	spec := cycleSpec(21, []int{48}, 6, 2)
	spec.AtlasMemLimit = 2048
	got, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("memory-capped atlas sweep diverged from builder sweep")
	}
}

// TestAtlasAcrossFamilies runs the sweep's atlas path over non-ring
// families (the E9 shapes) against the builder path.
func TestAtlasAcrossFamilies(t *testing.T) {
	builders := map[string]func(n int, rng *rand.Rand) (graph.Graph, error){
		"path": func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewPath(n) },
		"grid": func(_ int, _ *rand.Rand) (graph.Graph, error) { return graph.NewGrid(5, 5) },
		"tree": func(n int, rng *rand.Rand) (graph.Graph, error) { return graph.NewRandomTree(n, rng) },
		"gnp":  func(n int, rng *rand.Rand) (graph.Graph, error) { return graph.NewGNP(n, 0.15, rng) },
	}
	for name, build := range builders {
		spec := cycleSpec(5, []int{25}, 4, 3)
		spec.Graph = build
		spec.Verify = nil // GNP may be disconnected; skip the ring verifier
		spec.NoAtlas = true
		want, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s builder: %v", name, err)
		}
		spec.NoAtlas = false
		got, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s atlas: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: atlas sweep diverged from builder sweep", name)
		}
	}
}

// TestCancellationReturnsPartial cancels a long sweep mid-flight and
// demands a prompt return carrying both the partial aggregates and a
// wrapped context error.
func TestCancellationReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := cycleSpec(3, []int{64}, 100000, 2)
	go func() {
		// Give the sweep a moment to start some trials, then cancel.
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	res, err := Run(ctx, spec)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if res == nil {
		t.Fatal("cancelled sweep returned nil partial result")
	}
	if got := res.Sizes[0].Trials; got >= 100000 {
		t.Errorf("cancelled sweep completed all %d trials", got)
	}
}

// TestCancellationAfterCompletionIsClean regresses the late-fire edge: a
// context cancelled after the final trial completed cost no results, so the
// sweep (and Map) must return success, not a bogus "partial results" error.
func TestCancellationAfterCompletionIsClean(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := cycleSpec(2, []int{8, 12}, 3, 1)
	spec.Observe = func(sizeIdx, trial int, _ graph.Graph, _ ids.Assignment, _ *local.Result) {
		// The sequential path executes sizes largest-first, so n=8 (sizeIdx
		// 0) runs last and its final trial is the sweep's last.
		if sizeIdx == 0 && trial == 2 {
			cancel()
		}
	}
	res, err := Run(ctx, spec)
	if err != nil {
		t.Fatalf("fully completed sweep reported %v", err)
	}
	if res.Sizes[0].Trials != 3 || res.Sizes[1].Trials != 3 {
		t.Fatalf("trials lost: %+v", res.Sizes)
	}

	mctx, mcancel := context.WithCancel(context.Background())
	defer mcancel()
	if err := Map(mctx, 1, 5, func(i int) error {
		if i == 4 {
			mcancel()
		}
		return nil
	}); err != nil {
		t.Fatalf("fully completed Map reported %v", err)
	}
}

// TestStrictVerifyAborts wires a rejecting verifier and expects the sweep
// to fail fast in Strict mode but only count in loose mode.
func TestStrictVerifyAborts(t *testing.T) {
	spec := cycleSpec(1, []int{8}, 4, 2)
	spec.Verify = func(graph.Graph, ids.Assignment, *local.Result) error {
		return fmt.Errorf("rejected")
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("loose verify must not abort: %v", err)
	}
	if res.Sizes[0].Failures != 4 || res.Sizes[0].Verified() {
		t.Errorf("loose verify: %d failures recorded, want 4", res.Sizes[0].Failures)
	}
	spec.Strict = true
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("strict verify did not abort the sweep")
	}
}

// TestSummarizeHistMatchesMeasure pins the histogram summary to the
// reference implementation on awkward distributions.
func TestSummarizeHistMatchesMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		radii := make([]int, n)
		maxR := 0
		for i := range radii {
			radii[i] = rng.Intn(12)
			if radii[i] > maxR {
				maxR = radii[i]
			}
		}
		hist := make([]int64, maxR+1)
		for _, r := range radii {
			hist[r]++
		}
		want := measure.Summarize(radii)
		got := summarizeHist(hist)
		if got != want {
			t.Fatalf("radii %v: summarizeHist %+v, measure.Summarize %+v", radii, got, want)
		}
	}
}

// TestFixedAssignment pins a deterministic Assign: a single trial on the
// identity permutation must reproduce a direct engine run exactly.
func TestFixedAssignment(t *testing.T) {
	const n = 24
	spec := cycleSpec(5, []int{n}, 1, 3)
	spec.Assign = func(_, n, _ int, _ *rand.Rand) (ids.Assignment, error) {
		return ids.Identity(n), nil
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := local.RunView(graph.MustCycle(n), ids.Identity(n), largestid.Pruning{})
	if err != nil {
		t.Fatal(err)
	}
	want := measure.Summarize(direct.Radii)
	if got := res.Sizes[0].WorstAvg; got != want {
		t.Errorf("single fixed trial summary %+v, direct run %+v", got, want)
	}
	if res.Sizes[0].TotalSum != int64(want.Sum) {
		t.Errorf("TotalSum %d, want %d", res.Sizes[0].TotalSum, want.Sum)
	}
}

// TestSpecValidation covers the required-field errors.
func TestSpecValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	s := cycleSpec(1, []int{4}, 1, 1)
	s.Alg = nil
	if _, err := Run(context.Background(), s); err == nil {
		t.Error("nil Alg accepted")
	}
	s = cycleSpec(1, []int{4}, 1, 1)
	s.Graph = nil
	if _, err := Run(context.Background(), s); err == nil {
		t.Error("nil Graph accepted")
	}
	s = cycleSpec(1, []int{4}, 1, 1)
	s.Graph = func(int, *rand.Rand) (graph.Graph, error) { return nil, fmt.Errorf("boom") }
	if _, err := Run(context.Background(), s); err == nil {
		t.Error("graph build error swallowed")
	}
}

func TestMap(t *testing.T) {
	out := make([]int, 100)
	if err := Map(context.Background(), 8, len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	wantErr := fmt.Errorf("slot failure")
	if err := Map(context.Background(), 4, 50, func(i int) error {
		if i == 17 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("Map error = %v, want %v", err, wantErr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Map(ctx, 4, 1000, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Map error = %v", err)
	}
}
