package sweep

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// equivWorkerCounts is the worker grid of the kernel equivalence suite.
func equivWorkerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// runConfigs executes spec under every (kernels on/off, atlas on/off,
// worker count) configuration and demands byte-identical aggregates.
func runConfigs(t *testing.T, name string, spec Spec) {
	t.Helper()
	base := spec
	base.Workers = 1
	base.NoAtlas = true
	want, err := Run(context.Background(), base)
	if err != nil {
		t.Fatalf("%s builder: %v", name, err)
	}
	for _, workers := range equivWorkerCounts() {
		for _, noKernels := range []bool{false, true} {
			got := spec
			got.Workers = workers
			got.NoKernels = noKernels
			res, err := Run(context.Background(), got)
			if err != nil {
				t.Fatalf("%s workers=%d nokernels=%v: %v", name, workers, noKernels, err)
			}
			if !reflect.DeepEqual(want, res) {
				t.Errorf("%s workers=%d nokernels=%v: aggregates diverge from builder run",
					name, workers, noKernels)
			}
		}
	}
}

// TestKernelsOnOffIdentical is the sweep half of the kernel acceptance
// guarantee: kernels on, kernels off and the builder path produce
// byte-identical tables at any worker count, across the experiment's graph
// families and for every kernel-capable algorithm.
func TestKernelsOnOffIdentical(t *testing.T) {
	families := []struct {
		name  string
		build func(n int, rng *rand.Rand) (graph.Graph, error)
	}{
		{"cycle", func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) }},
		{"path", func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewPath(n) }},
		{"grid", func(_ int, _ *rand.Rand) (graph.Graph, error) { return graph.NewGrid(5, 6) }},
		{"tree", func(n int, rng *rand.Rand) (graph.Graph, error) { return graph.NewRandomTree(n, rng) }},
		{"gnp", func(n int, rng *rand.Rand) (graph.Graph, error) { return graph.NewGNP(n, 0.12, rng) }},
	}
	algs := []struct {
		name string
		alg  local.ViewAlgorithm
	}{
		{"pruning", largestid.Pruning{}},
		{"fullview", largestid.FullView{}},
	}
	for _, fam := range families {
		for _, al := range algs {
			alg := al.alg
			spec := Spec{
				Seed:   31,
				Sizes:  []int{18, 30},
				Trials: 5,
				Graph:  fam.build,
				Alg:    func(int, ids.Assignment) local.ViewAlgorithm { return alg },
			}
			runConfigs(t, fam.name+"/"+al.name, spec)
		}
	}
}

// TestKernelsUniformIdentical covers the ring-only Uniform kernel through
// the sweep: same tables with the kernel, the view path and the builder.
func TestKernelsUniformIdentical(t *testing.T) {
	spec := Spec{
		Seed:   37,
		Sizes:  []int{16, 40},
		Trials: 4,
		Graph:  func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:    func(int, ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} },
	}
	runConfigs(t, "cycle/uniform", spec)
}

// TestKernelsCappedAtlasIdentical drives the kernels' unserved-vertex
// fallback through the sweep: a memory-capped atlas degrades mid-run and
// tables stay byte-identical.
func TestKernelsCappedAtlasIdentical(t *testing.T) {
	base := cycleSpec(41, []int{48}, 6, 2)
	base.NoAtlas = true
	want, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	capped := cycleSpec(41, []int{48}, 6, 2)
	capped.AtlasMemLimit = 2048
	got, err := Run(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("memory-capped kernel sweep diverged from builder sweep")
	}
}

// TestKernelSweepSharedAtlasHammer oversubscribes the worker pool against
// one shared (cached) atlas with kernels on — the -race configuration of
// the acceptance criteria — and checks determinism against one worker.
func TestKernelSweepSharedAtlasHammer(t *testing.T) {
	spec := cycleSpec(43, []int{64, 96}, 12, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = runtime.NumCPU() * 3
	got, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("oversubscribed kernel sweep diverged from sequential run")
	}
}
