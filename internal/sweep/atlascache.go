package sweep

import (
	"reflect"
	"sync"

	"repro/internal/graph"
)

// The atlas cache shares ball atlases across sweep runs: atlas content is
// a pure function of the graph, so two sweeps over the same instance — the
// two sweeps of E2, the four of E7, repeated avgbench invocations over the
// same sizes — can reuse one layer store instead of re-deriving it. Cached
// entries keep growing lazily as later sweeps reach deeper radii.
//
// Only value-shaped comparable graphs are cacheable: types like Cycle and
// Path compare equal across independent constructions and hit. Pointer-
// shaped graphs (e.g. *Adj) would key by identity, and sweeps rebuild
// their graphs per run, so caching them could only pin memory without
// ever hitting — they get private atlases. Only default-capped atlases
// are shared (a custom AtlasMemLimit gets a private atlas — its cap is
// the caller's business).
//
// Eviction is LRU, bounded both by entry count and by total resident
// bytes (atlases keep growing after insertion, so the byte bound is
// re-checked on every access); exhausted atlases — memory-capped, serving
// only fallbacks — are dropped eagerly.
const (
	atlasCacheBound    = 32
	atlasCacheMemBound = 1 << 30 // 1 GiB across all cached atlases
)

var atlasCache = struct {
	mu      sync.Mutex
	entries map[graph.Graph]*graph.BallAtlas
	order   []graph.Graph // LRU: oldest first
}{entries: make(map[graph.Graph]*graph.BallAtlas)}

// atlasFor returns the shared atlas for g, creating and caching it when
// absent. memLimit != 0 bypasses the cache entirely.
func atlasFor(g graph.Graph, memLimit int64) *graph.BallAtlas {
	if memLimit != 0 || !cacheable(g) {
		return graph.NewBallAtlas(g, memLimit)
	}
	c := &atlasCache
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[g]
	if ok {
		// Bump to most-recently-used in place; cache hits sit on the sweep
		// setup path and must not allocate.
		for i, k := range c.order {
			if k == g {
				copy(c.order[i:], c.order[i+1:])
				c.order[len(c.order)-1] = g
				break
			}
		}
	} else {
		a = graph.NewBallAtlas(g, 0)
		c.entries[g] = a
		c.order = append(c.order, g)
	}
	// Evict oldest-first past either bound, and exhausted atlases
	// anywhere; the just-returned atlas is always kept.
	var total int64
	for _, k := range c.order {
		total += c.entries[k].MemUsed()
	}
	kept := c.order[:0]
	for i, k := range c.order {
		last := i == len(c.order)-1 // most recently used: the caller's
		over := len(c.order)-i > atlasCacheBound || total > atlasCacheMemBound
		if !last && (over || c.entries[k].Exhausted()) {
			total -= c.entries[k].MemUsed()
			delete(c.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	c.order = kept
	return a
}

// cacheable reports whether g can key the cross-run cache: comparable and
// not pointer-shaped (pointer identities never repeat across sweep runs).
func cacheable(g graph.Graph) bool {
	t := reflect.TypeOf(g)
	return t != nil && t.Kind() != reflect.Ptr && t.Comparable()
}
