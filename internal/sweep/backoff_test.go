package sweep

import (
	"context"
	"testing"
	"time"
)

// Delays must grow geometrically from Base to the Max cap, never exceed
// the un-jittered envelope, and never shrink below (1-Jitter) of it.
func TestBackoffDelayEnvelope(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, Jitter: 0.2, Seed: 7}
	envelope := []time.Duration{10, 20, 40, 80, 160, 200, 200}
	for k, e := range envelope {
		e *= time.Millisecond
		d := b.Delay(k)
		if d > e {
			t.Errorf("Delay(%d) = %v exceeds envelope %v", k, d, e)
		}
		if lo := time.Duration(float64(e) * 0.8); d < lo {
			t.Errorf("Delay(%d) = %v below jitter floor %v", k, d, lo)
		}
	}
}

// Equal (Seed, attempt) pairs must yield equal delays — the determinism
// replayed chaos scenarios rely on — and distinct seeds should decorrelate.
func TestBackoffDeterministicJitter(t *testing.T) {
	a := Backoff{Base: 10 * time.Millisecond, Seed: 1}
	for k := 0; k < 8; k++ {
		if a.Delay(k) != a.Delay(k) {
			t.Fatalf("Delay(%d) not deterministic", k)
		}
	}
	bt := Backoff{Base: 10 * time.Millisecond, Seed: 2}
	same := 0
	for k := 0; k < 8; k++ {
		if a.Delay(k) == bt.Delay(k) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("distinct seeds produced identical jitter streams")
	}
}

// The zero value must be usable, negative Jitter must disable jitter
// (exact envelope delays), and Factor <= 1 must freeze the delay at Base.
func TestBackoffDefaultsAndFlats(t *testing.T) {
	var zero Backoff
	if d := zero.Delay(0); d <= 0 || d > 25*time.Millisecond {
		t.Fatalf("zero-value Delay(0) = %v, want (0, 25ms]", d)
	}
	exact := Backoff{Base: 5 * time.Millisecond, Factor: 2, Jitter: -1}
	if d := exact.Delay(3); d != 40*time.Millisecond {
		t.Fatalf("jitterless Delay(3) = %v, want 40ms", d)
	}
	flat := Backoff{Base: 5 * time.Millisecond, Factor: 0.5, Jitter: -1}
	if d := flat.Delay(6); d != 5*time.Millisecond {
		t.Fatalf("flat-policy Delay(6) = %v, want 5ms", d)
	}
}

// Wait must return promptly with the context's error when cancelled
// mid-delay, and nil after an undisturbed wait.
func TestBackoffWaitContext(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Jitter: -1}
	if err := b.Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := Backoff{Base: time.Hour, Jitter: -1}
	start := time.Now()
	if err := slow.Wait(ctx, 0); err != context.Canceled {
		t.Fatalf("cancelled Wait = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled Wait blocked")
	}
}
