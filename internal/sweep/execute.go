package sweep

// This file is the EXECUTE layer: the worker pool that runs one plan's
// blocks. Workers own all per-trial scratch — the local.Runner, the
// histogram buffer, the reseedable rng, the permutation buffer — so
// steady-state blocks allocate nothing, and each worker folds its trials
// into a private shard of SizeStats that the MERGE layer combines at the
// end (finish, merge.go).

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// worker is the per-worker reusable state: the execution scratch, the trial
// histogram buffer, the reseedable trial rng, the permutation buffer, and
// this shard's partial aggregates. Everything a trial needs is drawn from
// here, so steady-state batches allocate nothing.
type worker struct {
	runner *local.Runner
	hist   []int64
	shard  []SizeStats
	opts   []local.Option
	// rng is one reusable generator: each trial reseeds it with its
	// (size, trial)-derived seed, which reproduces a fresh
	// rand.New(rand.NewSource(seed)) bit for bit — including the Read
	// buffer, which Rand.Seed resets — without the two allocations per
	// trial.
	rng *rand.Rand
	// assign is the caller-owned permutation storage ids.RandomInto (or
	// ids.StreamInto) fills when Spec.Assign is unset.
	assign []int
	// impl is the worker's implicit-backend ball synthesizer, built lazily
	// and cached by graph identity (implG): consecutive blocks at the same
	// size reuse it, so its scratch skeleton survives across blocks exactly
	// like the runner's buffers. Nil outside the implicit backend.
	impl  *graph.ImplicitBalls
	implG graph.Graph
}

// execute runs the planned blocks across the worker pool and merges the
// worker shards into the final Result. quotients (non-nil only under
// Spec.Quotient) hold each size's canonical ranker. total is the planned
// WEIGHTED trial count (after shard and Done carve-outs) used for
// cancellation accounting.
func execute(ctx context.Context, spec Spec, graphs []graph.Graph, atlases []*graph.BallAtlas, quotients []*ids.Quotient, blocks []Block, total, workers int) (*Result, error) {
	// The sequential path needs no cancel broadcast — its loop checks
	// firstErr directly — so it skips the WithCancel context entirely.
	runCtx, cancel := ctx, func() {}
	if workers > 1 {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	// The worker's permutation buffer is sized for the largest instance up
	// front, so batches at growing sizes never regrow it.
	maxN := 0
	for _, g := range graphs {
		if n := g.N(); n > maxN {
			maxN = n
		}
	}

	// All workers share one option slice (read-only), one backing array for
	// their per-size shards, and one worker array: worker setup cost stays a
	// handful of allocations per worker, not a dozen.
	opts := append(make([]local.Option, 0, 4), local.WithContext(runCtx))
	if spec.MaxRadius > 0 {
		opts = append(opts, local.WithMaxRadius(spec.MaxRadius))
	}
	if spec.NoKernels {
		opts = append(opts, local.WithoutKernels())
	}
	if spec.Assign == nil {
		// Workers draw their own permutations with ids.RandomInto — valid
		// by construction, so the engine's per-trial Validate is redundant.
		opts = append(opts, local.WithValidatedIDs())
	}
	ws := make([]worker, workers)
	shardBacking := make([]SizeStats, workers*len(spec.Sizes))
	for wi := range ws {
		initWorker(&ws[wi], spec, opts, shardBacking[wi*len(spec.Sizes):(wi+1)*len(spec.Sizes)], maxN)
	}

	if workers == 1 {
		// True sequential path: no goroutines, no channels — the baseline
		// the sharded path is benchmarked against, and the cheapest way to
		// run tiny sweeps.
		w := &ws[0]
		for _, b := range blocks {
			if runCtx.Err() != nil {
				break
			}
			if err := w.runBlock(runCtx, spec, graphs[b.SizeIdx], atlases[b.SizeIdx], quotientAt(quotients, b.SizeIdx), b); err != nil {
				if runCtx.Err() == nil {
					fail(err)
				}
				break
			}
			if firstErr != nil {
				break
			}
		}
		return finish(ctx, spec, total, ws, firstErr)
	}

	blockCh := make(chan Block)
	go func() {
		defer close(blockCh)
		for _, b := range blocks {
			select {
			case blockCh <- b:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		w := &ws[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range blockCh {
				if runCtx.Err() != nil {
					return
				}
				if err := w.runBlock(runCtx, spec, graphs[b.SizeIdx], atlases[b.SizeIdx], quotientAt(quotients, b.SizeIdx), b); err != nil {
					if runCtx.Err() == nil {
						fail(err)
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	return finish(ctx, spec, total, ws, err)
}

// initWorker populates one worker's reusable state. opts is shared
// (read-only) across workers; shard is the worker's slice of the shared
// backing array; maxN is the largest instance size the worker may draw
// permutations for.
func initWorker(w *worker, spec Spec, opts []local.Option, shard []SizeStats, maxN int) {
	w.runner = local.NewRunner()
	w.shard = shard
	w.opts = opts
	w.rng = rand.New(rand.NewSource(0)) // reseeded per trial from (size, trial)
	if spec.Assign == nil {
		w.assign = make([]int, maxN)
	}
}

// quotientAt returns the size's canonical ranker, or nil outside the
// quotient path.
func quotientAt(quotients []*ids.Quotient, i int) *ids.Quotient {
	if quotients == nil {
		return nil
	}
	return quotients[i]
}

// runBlock executes one contiguous block of trials at a single size and
// folds each into the worker's shard. Batching is what amortises the
// per-trial harness overhead: the atlas is attached once, the histogram
// buffer is cleared once, the trial rng is reseeded instead of reallocated,
// and (when the spec draws its own permutations) one worker-owned buffer is
// refilled in place by ids.RandomInto. atlas (nil when disabled) is the
// size's shared ball store; q (nil outside Spec.Quotient) is the size's
// canonical ranker. A context cancellation mid-block returns nil; the
// caller observes the context itself.
//
// Under a quotient the block is a contiguous range of CANONICAL ranks, but
// every fold uses the representative's FULL lexicographic rank as its
// trial index: orbit members share their radius multiset, the extremal
// achiever set is orbit-closed, and the lowest-full-rank achiever of any
// extremum is canonical — so weighted folds reproduce the full
// enumeration's aggregate, including tie-broken extremal trial indices,
// bit for bit.
//
// When Spec.OnBlock is set the block's trials fold into a block-local
// aggregate first, which is merged into the shard and — only if the block
// ran to completion — handed to the hook. The hot path (OnBlock nil) folds
// straight into the shard exactly as before the plan/execute split.
func (w *worker) runBlock(ctx context.Context, spec Spec, g graph.Graph, atlas *graph.BallAtlas, q *ids.Quotient, b Block) error {
	if spec.Backend == BackendImplicit {
		// Run validated every graph as a comparable graph.Implicit, so the
		// assertion and the identity comparison are both safe here.
		if w.implG != g {
			w.impl = graph.NewImplicitBalls(g.(graph.Implicit))
			w.implG = g
		}
		w.runner.SetSource(w.impl)
	} else {
		w.runner.SetAtlas(atlas)
	}
	n := g.N()
	if spec.Assign == nil && cap(w.assign) < n {
		w.assign = make([]int, n)
	}
	// The hot path folds trials straight into the worker's shard. Only a
	// checkpointing sweep (OnBlock set) pays for a block-local aggregate —
	// kept behind a pointer so the common case allocates nothing per block.
	dst := &w.shard[b.SizeIdx]
	var blockStats *SizeStats
	if spec.OnBlock != nil {
		blockStats = &SizeStats{N: n}
		dst = blockStats
	}
	// One clear per batch establishes the all-zeros invariant; each trial
	// restores it below by zeroing only the entries it incremented.
	for r := range w.hist {
		w.hist[r] = 0
	}
	weight := 1
	fullRank := 0
	if spec.Exhaustive {
		if q != nil {
			// The block is a contiguous CANONICAL rank range: unrank its
			// first representative, recover its full lexicographic rank
			// once (O(n²)), then track the rank incrementally from the
			// walk's step counts.
			weight = int(q.Order())
			if _, err := q.CanonicalUnrankInto(w.assign[:n], uint64(b.T0)); err != nil {
				return fmt.Errorf("sweep: size %d canonical rank %d: %w", n, b.T0, err)
			}
			fr, err := ids.Assignment(w.assign[:n]).Rank()
			if err != nil {
				return fmt.Errorf("sweep: size %d canonical rank %d: %w", n, b.T0, err)
			}
			fullRank = int(fr)
		} else {
			// The block is a contiguous rank range: unrank its first
			// permutation once, then each later trial is one successor step.
			ids.UnrankInto(w.assign[:n], uint64(b.T0))
		}
	}
	for trial := b.T0; trial < b.T1; trial++ {
		if ctx.Err() != nil {
			w.flushBlock(b, blockStats)
			return nil
		}
		var (
			a   ids.Assignment
			err error
		)
		switch {
		case spec.Exhaustive:
			// No per-trial randomness: the permutation IS the trial
			// coordinate, so the (expensive) rng reseed is skipped too.
			if trial > b.T0 {
				if q != nil {
					steps, ok := q.NextCanonicalInto(w.assign[:n])
					if !ok {
						w.flushBlock(b, blockStats)
						return fmt.Errorf("sweep: size %d: canonical walk ended before rank %d", n, trial)
					}
					fullRank += int(steps)
				} else {
					ids.NextInto(w.assign[:n])
				}
			}
			a = ids.Assignment(w.assign[:n])
		case spec.Assign != nil:
			w.rng.Seed(trialSeed(spec.Seed, b.SizeIdx, trial))
			a, err = spec.Assign(b.SizeIdx, n, trial, w.rng)
			if err != nil {
				w.flushBlock(b, blockStats)
				return fmt.Errorf("sweep: assign size %d trial %d: %w", n, trial, err)
			}
		case spec.StreamIDs:
			// The streaming draw needs no rng at all: the Feistel keys
			// derive from the same (size, trial) seed coordinates.
			a = ids.StreamInto(w.assign[:n], uint64(trialSeed(spec.Seed, b.SizeIdx, trial)))
		default:
			w.rng.Seed(trialSeed(spec.Seed, b.SizeIdx, trial))
			a = ids.RandomInto(w.assign[:n], w.rng)
		}
		res, err := w.runner.Run(g, a, spec.Alg(n, a), w.opts...)
		if err != nil {
			w.flushBlock(b, blockStats)
			return err
		}

		// Fill the trial's histogram in one pass over the radii, growing
		// the buffer and tracking the maximum as we go — no separate scan,
		// no full reset between trials.
		maxR := 0
		for _, r := range res.Radii {
			if r >= len(w.hist) {
				w.hist = growHist(w.hist, r+1)
			}
			w.hist[r]++
			if r > maxR {
				maxR = r
			}
		}
		hist := w.hist[:maxR+1]
		sum := summarizeHist(hist)
		if err := dst.checkFoldWeighted(maxR, sum, hist, weight); err != nil {
			w.flushBlock(b, blockStats)
			return fmt.Errorf("sweep: fold size %d trial %d: %w", n, trial, err)
		}

		verifyFailed := false
		if spec.Verify != nil {
			if verr := spec.Verify(g, a, res); verr != nil {
				if spec.Strict {
					w.flushBlock(b, blockStats)
					return fmt.Errorf("sweep: verify size %d trial %d: %w", n, trial, verr)
				}
				verifyFailed = true
			}
		}
		if spec.Observe != nil {
			spec.Observe(b.SizeIdx, trial, g, a, res)
		}
		// Under a quotient the fold's trial index is the representative's
		// full lexicographic rank — the coordinate full enumeration would
		// have used — so extremal tie-breaking stays orbit-stable.
		foldTrial := trial
		if q != nil {
			foldTrial = fullRank
		}
		dst.addTrialWeighted(foldTrial, sum, hist, verifyFailed, weight)
		for _, r := range res.Radii {
			hist[r] = 0
		}
	}
	if blockStats != nil {
		w.shard[b.SizeIdx].Merge(blockStats)
		spec.OnBlock(b, blockStats)
	}
	return nil
}

// flushBlock folds a block-local aggregate back into the shard on early
// exits (cancellation, errors), so a block's completed trials still
// surface in the partial Result. The block is NOT reported to OnBlock —
// it did not complete — so a resume re-executes it. No-op on the hot path
// (nil blockStats).
func (w *worker) flushBlock(b Block, blockStats *SizeStats) {
	if blockStats != nil && blockStats.Trials > 0 {
		w.shard[b.SizeIdx].Merge(blockStats)
	}
}
