package sweep

// This file is the MERGE layer: the deterministic folding of partial
// aggregates back into one Result. It is the same fold the execute layer
// applies in-process — integer totals add, histograms add, extremal trials
// are selected by (value, trial index) — exported so aggregates can cross a
// process boundary: shard files from m processes, a checkpoint's record
// plus a resumed run, or any other partition of the trial space, all merge
// to bytes identical to a single uninterrupted run.

import (
	"context"
	"fmt"
)

// finish merges the worker shards into the final Result and classifies how
// the sweep ended: clean, failed, or cancelled with partial aggregates.
// total is the number of WEIGHTED trials the plan asked for (after the
// shard and Done carve-outs) — under a quotient each planned
// representative counts its whole orbit, matching what SizeStats.Trials
// accumulates.
func finish(ctx context.Context, spec Spec, total int, ws []worker, firstErr error) (*Result, error) {
	res := &Result{Sizes: make([]SizeStats, len(spec.Sizes))}
	done := 0
	for i, n := range spec.Sizes {
		res.Sizes[i].N = n
		for wi := range ws {
			res.Sizes[i].Merge(&ws[wi].shard[i])
		}
		done += res.Sizes[i].Trials
	}
	if firstErr != nil {
		return res, firstErr
	}
	// A context that fires after the final trial completed did not cost any
	// results; only report cancellation when work was actually skipped.
	if cerr := ctx.Err(); cerr != nil && done < total {
		return res, fmt.Errorf("sweep: cancelled with partial results (%d/%d trials): %w",
			done, total, cerr)
	}
	return res, nil
}

// MergeResults folds any number of partial Results — shard files, a
// checkpoint plus a resumed run — into one. All inputs must agree on the
// size list (length and per-slot N); inputs covering disjoint trial sets
// merge to exactly the aggregate a single process computes over their
// union, in any argument order, because every fold is commutative and
// extremal ties resolve by trial index exactly like the in-process path.
// The inputs are not modified; the merged Result shares no mutable state
// with them.
func MergeResults(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("sweep: nothing to merge")
	}
	first := results[0]
	out := &Result{Sizes: make([]SizeStats, len(first.Sizes))}
	for i, s := range first.Sizes {
		out.Sizes[i].N = s.N
	}
	for k, r := range results {
		if len(r.Sizes) != len(first.Sizes) {
			return nil, fmt.Errorf("sweep: merge input %d has %d sizes, input 0 has %d", k, len(r.Sizes), len(first.Sizes))
		}
		for i := range r.Sizes {
			if r.Sizes[i].N != out.Sizes[i].N {
				return nil, fmt.Errorf("sweep: merge input %d size %d is n=%d, input 0 has n=%d",
					k, i, r.Sizes[i].N, out.Sizes[i].N)
			}
			out.Sizes[i].Merge(&r.Sizes[i])
		}
	}
	return out, nil
}
