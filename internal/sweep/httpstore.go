package sweep

// The Store interface over HTTP: StoreHandler serves any Store as a small
// REST API, HTTPStore is the matching client, and RetryStore wraps any
// Store in the IsRetryable/Backoff retry discipline. Together they are the
// remote half of the lease protocol — a sweepd coordinator mounts
// StoreHandler over its DirStore root and any sweepworker process on any
// machine joins the run through an HTTPStore, with exactly the semantics
// the in-process executors get:
//
//	PUT    /{name}          write the object (idempotent; see below)
//	GET    /{name}          read the object (404 ⇒ fs.ErrNotExist)
//	GET    /?prefix=P       list object names under the prefix, ascending
//	DELETE /{name}          remove the object (missing is fine)
//
// Status mapping is the contract that carries the store's typed faults
// through the network boundary: 404 ⇒ fs.ErrNotExist (a missing object,
// or a vanished store root), 403 ⇒ fs.ErrPermission (a read-only root),
// 400 ⇒ a name-grammar violation, and 5xx or any transport failure ⇒ a
// *TransientError wrapping an *UnreachableError — the retryable class.
//
// Idempotent Put: Store.Put is atomic last-write-wins, so a retried write
// is harmless by construction — two Puts of the same bytes leave the same
// object as one. The handler strengthens that to "provably at most one
// media write": the client sends the content hash as If-None-Match, and a
// PUT whose bytes already live under the name is acknowledged without
// touching the medium. A response lost after the server applied the write
// therefore costs one retry and zero state: the retry matches the stored
// hash and short-circuits.
//
// This API is a cluster-internal protocol between cooperating processes,
// not a public surface: no auth, names validated by the store grammar.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// contentETag is the content address both sides agree on: fnv64a of the
// object bytes, quoted per the ETag grammar.
func contentETag(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("\"fnv64a-%016x\"", h.Sum64())
}

// StoreHandler serves st over HTTP under the handler's root path. Mount it
// stripped of its prefix: http.StripPrefix("/store/", StoreHandler(st)).
func StoreHandler(st Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.Trim(r.URL.Path, "/")
		if name == "" {
			if r.Method != http.MethodGet {
				http.Error(w, "sweep: store root accepts GET (list) only", http.StatusMethodNotAllowed)
				return
			}
			names, err := st.List(r.URL.Query().Get("prefix"))
			if err != nil {
				storeHTTPError(w, err)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, n := range names {
				fmt.Fprintln(w, n)
			}
			return
		}
		if err := validStoreName(name); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := st.Get(name)
			if err != nil {
				storeHTTPError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("ETag", contentETag(data))
			w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, fmt.Sprintf("sweep: store put %s: read body: %v", name, err), http.StatusBadRequest)
				return
			}
			etag := contentETag(data)
			// The idempotency fast path: a retried Put whose bytes already
			// landed is acknowledged without a second media write.
			if match := r.Header.Get("If-None-Match"); match == etag {
				if existing, gerr := st.Get(name); gerr == nil && bytes.Equal(existing, data) {
					w.Header().Set("ETag", etag)
					w.Header().Set("X-Sweep-Idempotent", "hit")
					w.WriteHeader(http.StatusOK)
					return
				}
			}
			if err := st.Put(name, data); err != nil {
				storeHTTPError(w, err)
				return
			}
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			if err := st.Delete(name); err != nil {
				storeHTTPError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "sweep: store objects accept GET, PUT, DELETE", http.StatusMethodNotAllowed)
		}
	})
}

// storeHTTPError maps a Store failure onto the status code the client maps
// back to the same typed error.
func storeHTTPError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, fs.ErrNotExist):
		code = http.StatusNotFound
	case errors.Is(err, fs.ErrPermission):
		code = http.StatusForbidden
	}
	http.Error(w, err.Error(), code)
}

// HTTPStore is the Store client over a StoreHandler endpoint. Safe for
// concurrent use; every request gets its own deadline, so a hung endpoint
// surfaces as a retryable fault instead of a stuck worker. HTTPStore does
// NOT retry — wrap it in a RetryStore to ride out transient faults.
type HTTPStore struct {
	base    string
	client  *http.Client
	timeout time.Duration
}

// NewHTTPStore opens a client against a StoreHandler mount, e.g.
// "http://coordinator:8350/store".
func NewHTTPStore(base string) *HTTPStore {
	return &HTTPStore{
		base:    strings.TrimRight(base, "/"),
		client:  &http.Client{},
		timeout: 10 * time.Second,
	}
}

// WithTimeout sets the per-request deadline (default 10s) and returns s.
func (s *HTTPStore) WithTimeout(d time.Duration) *HTTPStore {
	if d > 0 {
		s.timeout = d
	}
	return s
}

// WithClient substitutes the underlying HTTP client (tests, custom
// transports) and returns s.
func (s *HTTPStore) WithClient(c *http.Client) *HTTPStore {
	if c != nil {
		s.client = c
	}
	return s
}

// do runs one request against the endpoint and returns the response body
// for 2xx statuses; every other outcome is mapped to the typed error the
// equivalent local store operation would produce.
func (s *HTTPStore) do(method, rawURL string, body []byte, header http.Header) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rawURL, rd)
	if err != nil {
		return nil, fmt.Errorf("sweep: http store %s %s: %w", method, rawURL, err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := s.client.Do(req)
	if err != nil {
		// Transport-level failure: refused, reset, timed out, partitioned.
		return nil, Transient(&UnreachableError{URL: rawURL, Err: err})
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// The response died mid-body — the server may well have applied the
		// operation; a retry is harmless by the Put idempotency contract.
		return nil, Transient(&UnreachableError{URL: rawURL, Err: err})
	}
	msg := strings.TrimSpace(string(data))
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return data, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("sweep: http store %s %s: %s: %w", method, rawURL, msg, fs.ErrNotExist)
	case resp.StatusCode == http.StatusForbidden:
		return nil, fmt.Errorf("sweep: http store %s %s: %s: %w", method, rawURL, msg, fs.ErrPermission)
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		// The endpoint is alive but failing; the class a flapping backend
		// or mid-restart coordinator produces. Retryable.
		return nil, Transient(&UnreachableError{URL: rawURL,
			Err: fmt.Errorf("status %s: %s", resp.Status, msg)})
	default:
		return nil, fmt.Errorf("sweep: http store %s %s: status %s: %s", method, rawURL, resp.Status, msg)
	}
}

func (s *HTTPStore) objectURL(name string) string { return s.base + "/" + name }

// Put writes the object through the endpoint. The content hash rides along
// as If-None-Match, so a retry of a write whose response was lost after
// the server applied it is acknowledged without a second media write.
func (s *HTTPStore) Put(name string, data []byte) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	h := http.Header{}
	h.Set("If-None-Match", contentETag(data))
	_, err := s.do(http.MethodPut, s.objectURL(name), data, h)
	return err
}

// Get reads the object; a 404 surfaces as fs.ErrNotExist exactly like a
// local store's missing object.
func (s *HTTPStore) Get(name string) ([]byte, error) {
	if err := validStoreName(name); err != nil {
		return nil, err
	}
	return s.do(http.MethodGet, s.objectURL(name), nil, nil)
}

// List returns the names under the prefix, ascending — the server's own
// List order, one name per line.
func (s *HTTPStore) List(prefix string) ([]string, error) {
	u := s.base + "/?prefix=" + url.QueryEscape(prefix)
	data, err := s.do(http.MethodGet, u, nil, nil)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return names, nil
}

// Delete removes the object; missing objects are fine.
func (s *HTTPStore) Delete(name string) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	_, err := s.do(http.MethodDelete, s.objectURL(name), nil, nil)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // deleting a missing object is not an error
	}
	return err
}

// RetryStore wraps a Store in the engine's retry discipline: every
// operation that fails with a retryable fault (IsRetryable) is retried
// under the Backoff policy up to Retries extra attempts; final faults
// (vanished root, permission, cancellation, corrupt data) return
// immediately. A flapping network degrades throughput, never correctness —
// and when the budget runs out the last fault is returned unwrapped, so
// its type still drives the caller's own classification.
type RetryStore struct {
	inner   Store
	ctx     context.Context
	retries int
	backoff Backoff
}

// NewRetryStore wraps inner. The context bounds every backoff wait (a
// draining worker stops retrying immediately); retries is the extra
// attempts per operation (default 3 when <= 0); policy is the pacing
// (zero value: the Backoff defaults).
func NewRetryStore(ctx context.Context, inner Store, retries int, policy Backoff) *RetryStore {
	if ctx == nil {
		ctx = context.Background()
	}
	if retries <= 0 {
		retries = 3
	}
	return &RetryStore{inner: inner, ctx: ctx, retries: retries, backoff: policy}
}

func (s *RetryStore) retry(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !IsRetryable(err) || attempt >= s.retries {
			return err
		}
		if s.backoff.Wait(s.ctx, attempt) != nil {
			return err // context fired mid-backoff: report the fault, not the wait
		}
	}
}

// Put retries transient faults; safe because Put is idempotent end to end.
func (s *RetryStore) Put(name string, data []byte) error {
	return s.retry(func() error { return s.inner.Put(name, data) })
}

// Get retries transient faults; a missing object is final immediately.
func (s *RetryStore) Get(name string) ([]byte, error) {
	var data []byte
	err := s.retry(func() error {
		var e error
		data, e = s.inner.Get(name)
		return e
	})
	return data, err
}

// List retries transient faults.
func (s *RetryStore) List(prefix string) ([]string, error) {
	var names []string
	err := s.retry(func() error {
		var e error
		names, e = s.inner.List(prefix)
		return e
	})
	return names, err
}

// Delete retries transient faults.
func (s *RetryStore) Delete(name string) error {
	return s.retry(func() error { return s.inner.Delete(name) })
}
