package sweep

// The remote store's contract tests: the HTTP client/server pair must be
// indistinguishable from a local store — same conformance suite, same
// typed faults through the network boundary — and a retried Put whose
// first response was lost after the server applied the write must be
// provably harmless at the store layer.

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// newHTTPStorePair serves st over a live test server and returns the
// matching client.
func newHTTPStorePair(t *testing.T, st Store) (*HTTPStore, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(StoreHandler(st))
	t.Cleanup(srv.Close)
	return NewHTTPStore(srv.URL).WithTimeout(5 * time.Second), srv
}

// The full Store conformance suite runs against HTTPStore exactly as it
// does against DirStore and MemStore — over both backing media.
func TestHTTPStoreConformance(t *testing.T) {
	t.Run("over-mem", func(t *testing.T) {
		hs, _ := newHTTPStorePair(t, NewMemStore())
		testStoreContract(t, hs)
	})
	t.Run("over-dir", func(t *testing.T) {
		st, err := NewDirStore(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatal(err)
		}
		hs, _ := newHTTPStorePair(t, st)
		testStoreContract(t, hs)
	})
}

// The DirStore fault cases must keep their types through the HTTP
// boundary: a vanished root is fs.ErrNotExist from every method, never an
// empty store.
func TestHTTPStoreRootDeletedMidRun(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := newHTTPStorePair(t, st)
	if err := hs.Put("run/done/0-0", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	if err := hs.Put("run/done/0-8", []byte("x")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Put after root deletion = %v, want fs.ErrNotExist", err)
	}
	if _, err := hs.List("run/"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("List after root deletion = %v, want fs.ErrNotExist", err)
	}
	if _, err := hs.Get("run/done/0-0"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get after root deletion = %v, want fs.ErrNotExist", err)
	}
	// None of those are worth retrying: the predicate agrees across the wire.
	if err := hs.Put("run/done/0-8", []byte("x")); IsRetryable(err) {
		t.Errorf("vanished root classified retryable through HTTP: %v", err)
	}
}

// A read-only root keeps its fs.ErrPermission type through the boundary.
func TestHTTPStoreReadOnlyRoot(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	root := filepath.Join(t.TempDir(), "store")
	st, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := newHTTPStorePair(t, st)
	if err := hs.Put("run/done/0-0", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.Chmod(root, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(root, 0o755) })
	if err := hs.Put("other/0-0", []byte("x")); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("Put under read-only root = %v, want fs.ErrPermission", err)
	}
	if got, err := hs.Get("run/done/0-0"); err != nil || string(got) != "payload" {
		t.Fatalf("Get under read-only root = %q, %v", got, err)
	}
}

// countingStore counts how many writes actually reach the medium.
type countingStore struct {
	Store
	puts atomic.Int64
}

func (s *countingStore) Put(name string, data []byte) error {
	s.puts.Add(1)
	return s.Store.Put(name, data)
}

// dropNextResponse makes the next n responses vanish AFTER the inner
// handler ran — the server applied the operation, the client never hears.
type dropNextResponse struct {
	inner http.Handler
	drops atomic.Int64
}

func (d *dropNextResponse) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.drops.Add(-1) >= 0 {
		rec := httptest.NewRecorder()
		d.inner.ServeHTTP(rec, r) // the write lands...
		panic(http.ErrAbortHandler) // ...and the response dies on the wire
	}
	d.inner.ServeHTTP(w, r)
}

// The idempotency proof at the store layer: a Put whose response was
// dropped after the server applied the write fails retryably; the retry
// succeeds, the object holds exactly the written bytes, and the medium
// saw exactly one write — the retry was acknowledged from the content
// hash, not re-applied.
func TestHTTPStorePutIdempotentAfterDroppedResponse(t *testing.T) {
	backing := &countingStore{Store: NewMemStore()}
	dropper := &dropNextResponse{inner: StoreHandler(backing)}
	dropper.drops.Store(1)
	srv := httptest.NewServer(dropper)
	defer srv.Close()
	hs := NewHTTPStore(srv.URL).WithTimeout(5 * time.Second)

	payload := []byte("grain aggregate bytes")
	err := hs.Put("run/done/0-0", payload)
	if err == nil {
		t.Fatal("first Put: want a lost-response failure")
	}
	if !IsRetryable(err) {
		t.Fatalf("lost response classified final: %v", err)
	}
	var un *UnreachableError
	if !errors.As(err, &un) || un.URL == "" {
		t.Fatalf("lost response error = %v, want *UnreachableError naming the URL", err)
	}
	// The server applied the write despite the lost response.
	if got, gerr := backing.Get("run/done/0-0"); gerr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("server-side object after lost response = %q, %v", got, gerr)
	}
	// The retry is harmless: it succeeds without a second media write.
	if err := hs.Put("run/done/0-0", payload); err != nil {
		t.Fatalf("retried Put: %v", err)
	}
	if got, gerr := hs.Get("run/done/0-0"); gerr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("object after retry = %q, %v", got, gerr)
	}
	if n := backing.puts.Load(); n != 1 {
		t.Errorf("medium saw %d writes for one logical Put + one retry, want 1", n)
	}
	// And a RetryStore turns the whole episode into one successful call.
	dropper.drops.Store(1)
	backing.puts.Store(0)
	rs := NewRetryStore(context.Background(), hs, 3, Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond})
	if err := rs.Put("run/done/0-8", payload); err != nil {
		t.Fatalf("RetryStore.Put through a dropped response: %v", err)
	}
	if got, gerr := rs.Get("run/done/0-8"); gerr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("RetryStore.Get = %q, %v", got, gerr)
	}
}

// flakyStore fails each operation a set number of times with a transient
// fault before letting it through.
type flakyStore struct {
	Store
	remaining atomic.Int64
	calls     atomic.Int64
}

func (s *flakyStore) Put(name string, data []byte) error {
	s.calls.Add(1)
	if s.remaining.Add(-1) >= 0 {
		return Transient(errors.New("flaky medium"))
	}
	return s.Store.Put(name, data)
}

// RetryStore rides out transient faults under its budget and gives up
// cleanly past it; final faults pass through without burning attempts.
func TestRetryStorePolicy(t *testing.T) {
	fast := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	t.Run("transient under budget succeeds", func(t *testing.T) {
		fl := &flakyStore{Store: NewMemStore()}
		fl.remaining.Store(2)
		rs := NewRetryStore(context.Background(), fl, 3, fast)
		if err := rs.Put("a", []byte("x")); err != nil {
			t.Fatalf("Put = %v, want success after 2 transient faults", err)
		}
		if n := fl.calls.Load(); n != 3 {
			t.Errorf("attempts = %d, want 3", n)
		}
	})
	t.Run("budget exhausted returns the typed fault", func(t *testing.T) {
		fl := &flakyStore{Store: NewMemStore()}
		fl.remaining.Store(100)
		rs := NewRetryStore(context.Background(), fl, 2, fast)
		err := rs.Put("a", []byte("x"))
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("exhausted Put = %v, want the last *TransientError", err)
		}
		if n := fl.calls.Load(); n != 3 {
			t.Errorf("attempts = %d, want 3 (1 + 2 retries)", n)
		}
	})
	t.Run("final faults are not retried", func(t *testing.T) {
		st := NewMemStore()
		rs := NewRetryStore(context.Background(), st, 5, fast)
		if _, err := rs.Get("missing"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Get missing = %v, want fs.ErrNotExist", err)
		}
	})
	t.Run("cancelled context stops retrying", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		fl := &flakyStore{Store: NewMemStore()}
		fl.remaining.Store(100)
		rs := NewRetryStore(ctx, fl, 50, Backoff{Base: time.Minute})
		err := rs.Put("a", []byte("x"))
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("cancelled Put = %v, want the fault, not the wait", err)
		}
		if n := fl.calls.Load(); n != 1 {
			t.Errorf("attempts = %d under a dead context, want 1", n)
		}
	})
}

// A whole leased run must work over the HTTP boundary: executors against
// an HTTPStore produce the byte-identical single-process result.
func TestRunLeasedOverHTTPStore(t *testing.T) {
	spec := cycleSpec(17, []int{8, 16}, 12, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	backing := NewMemStore()
	hs, _ := newHTTPStorePair(t, backing)
	rs := NewRetryStore(context.Background(), hs, 3, Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond})
	if _, err := RunLeased(context.Background(), spec, rs, LeaseOptions{
		Worker: "remote", GrainsPerSize: 4, Poll: time.Millisecond,
	}); err != nil {
		t.Fatalf("RunLeased over HTTP: %v", err)
	}
	got, err := CollectLeased(rs, "leaserun", mustPlanOf(spec))
	if err != nil {
		t.Fatalf("CollectLeased over HTTP: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("leased-over-HTTP result differs from single process\nwant: %+v\ngot: %+v", want, got)
	}
}
