package sweep

// Work-stealing shard leases over a Store: the dynamic replacement for the
// static i-of-m Shard split. Executors lease variable-size, grain-aligned
// trial ranges out of the plan's uncovered space (the Done-complement
// subtractRanges computes), execute them one grain at a time through the
// ordinary engine, and publish an immutable per-grain completion record
// after each grain. Fast workers drain the free pool, then steal the tail
// half of the largest straggler lease, then speculatively re-execute live
// stragglers — so heterogeneous workers finish together instead of waiting
// on the slowest static slice.
//
// Safety never rests on mutual exclusion. Every grain's aggregate is a
// deterministic function of the plan and the grain's coordinates alone, so
// two workers racing on one grain publish byte-identical records and the
// first write wins; a lost lease, a duplicated completion or a crashed
// worker only ever duplicates work. The merge (CollectLeased) folds one
// record per grain in ascending trial order — bit-identical to a single
// uninterrupted run — and rejects anything else: overlapping ranges are a
// typed *OverlapError (double-counting), gaps a typed *IncompleteError,
// and torn or foreign records fail decoding with the codec's *DecodeError.
//
// Liveness uses heartbeats, not wall-clock: a lease whose Beat counter
// stays frozen across ExpireScans of an idle observer's scans is expired
// and its remainder returns to the free pool. False expiry is safe (it
// only duplicates), so the protocol needs no clock agreement between
// workers — which also keeps the chaos suite deterministic and shrinkable.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"time"
)

// Lease is one executor's mutable claim record: the grain-aligned trial
// range it intends to execute, its progress cursor, a heartbeat counter,
// and the fencing token steals are ordered by. Stored at
// <run>/lease/<worker> and rewritten after every grain.
type Lease struct {
	// PlanSum fingerprints the plan this claim belongs to; records with a
	// foreign sum are ignored by scans.
	PlanSum uint64 `json:"plansum"`
	// Worker is the claiming executor's id.
	Worker string `json:"worker"`
	// SizeIdx, T0, T1 locate the claimed range in the plan's trial space.
	SizeIdx int `json:"size"`
	T0      int `json:"t0"`
	T1      int `json:"t1"`
	// Next is the first trial not yet executed: [T0, Next) is published as
	// completions, [Next, T1) is the remainder a thief may take.
	Next int `json:"next"`
	// Beat increments after every grain — the liveness signal expiry
	// watches.
	Beat int64 `json:"beat"`
	// Seq is the claim's fencing token: a steal writes a higher Seq, and
	// the victim cedes any tail a higher-Seq lease overlaps.
	Seq int64 `json:"seq"`
}

// Completion is the immutable per-grain result record: the block
// coordinate plus the aggregate of exactly its trials. Stored at
// <run>/done/<size>-<t0>; duplicates of one grain are byte-identical in
// every field except Worker, which is why Worker is excluded from the
// merge's equality reasoning.
type Completion struct {
	PlanSum uint64 `json:"plansum"`
	Worker  string `json:"worker"`
	Block   Block  `json:"block"`
	// Weight is the per-trial fold weight of the block's aggregate: the
	// orbit size under a quotient plan, omitted (meaning 1) otherwise.
	// Scans treat a record whose weight disagrees with the plan's as
	// foreign — its aggregate covers a different mass.
	Weight int64     `json:"weight,omitempty"`
	Stats  SizeStats `json:"stats"`
}

// normWeight maps the wire encoding (0 = field omitted = weight 1) to the
// effective fold weight.
func normWeight(w int64) int64 {
	if w == 0 {
		return 1
	}
	return w
}

// leasePlan is the run's identity record at <run>/plan: cooperating
// executors must agree on the plan AND the grain schedule, or their
// completion ranges would not tile.
type leasePlan struct {
	Plan   Plan `json:"plan"`
	Grains int  `json:"grains"`
}

// EncodeLease serializes a claim record with the shared versioned envelope.
func EncodeLease(w io.Writer, l *Lease) error {
	return EncodeFile(w, FormatLease, l)
}

// DecodeLease reads a claim record and validates its internal structure;
// forged or truncated input fails with a typed *DecodeError, never a panic.
func DecodeLease(r io.Reader) (*Lease, error) {
	l := &Lease{}
	if err := DecodeFile(r, FormatLease, l); err != nil {
		return nil, err
	}
	reject := func(reason string) (*Lease, error) {
		return nil, &DecodeError{Format: FormatLease, Reason: reason}
	}
	if l.Worker == "" {
		return reject("missing worker id")
	}
	if l.SizeIdx < 0 {
		return reject(fmt.Sprintf("negative size index %d", l.SizeIdx))
	}
	if l.T0 < 0 || l.T0 >= l.T1 {
		return reject(fmt.Sprintf("invalid claim range [%d,%d)", l.T0, l.T1))
	}
	if l.Next < l.T0 || l.Next > l.T1 {
		return reject(fmt.Sprintf("cursor %d outside claim [%d,%d]", l.Next, l.T0, l.T1))
	}
	if l.Beat < 0 {
		return reject(fmt.Sprintf("negative heartbeat %d", l.Beat))
	}
	return l, nil
}

// EncodeCompletion serializes a completion record.
func EncodeCompletion(w io.Writer, c *Completion) error {
	return EncodeFile(w, FormatCompletion, c)
}

// DecodeCompletion reads a completion record and validates it: the block
// range must be sane, and the aggregate must cover exactly the block's
// trials and satisfy the codec invariants. Failures are *DecodeError.
func DecodeCompletion(r io.Reader) (*Completion, error) {
	c := &Completion{}
	if err := DecodeFile(r, FormatCompletion, c); err != nil {
		return nil, err
	}
	reject := func(reason string) (*Completion, error) {
		return nil, &DecodeError{Format: FormatCompletion, Reason: reason}
	}
	if c.Block.SizeIdx < 0 {
		return reject(fmt.Sprintf("negative size index %d", c.Block.SizeIdx))
	}
	if c.Block.T0 < 0 || c.Block.T0 >= c.Block.T1 {
		return reject(fmt.Sprintf("invalid block range [%d,%d)", c.Block.T0, c.Block.T1))
	}
	if c.Stats.N <= 0 {
		return reject(fmt.Sprintf("aggregate for impossible size n=%d", c.Stats.N))
	}
	if c.Weight < 0 {
		return reject(fmt.Sprintf("negative fold weight %d", c.Weight))
	}
	// The aggregate owes (T1-T0)·weight trials. The weight is untrusted
	// input, so the multiply is overflow-guarded by division.
	w := normWeight(c.Weight)
	span := int64(c.Block.T1 - c.Block.T0)
	if w > math.MaxInt64/span {
		return reject(fmt.Sprintf("weighted trial count of block [%d,%d) × %d overflows",
			c.Block.T0, c.Block.T1, w))
	}
	if got, want := int64(c.Stats.Trials), span*w; got != want {
		return reject(fmt.Sprintf("aggregate carries %d trials, block [%d,%d) × weight %d owes %d",
			got, c.Block.T0, c.Block.T1, w, want))
	}
	if err := validateSizes([]SizeStats{c.Stats}, FormatCompletion); err != nil {
		return nil, err
	}
	return c, nil
}

// OverlapError reports two trial ranges claiming the same trials — merging
// them would double-count. It is the typed rejection of the first-write-
// wins precondition, raised by CollectLeased and by the experiment-level
// shard merge.
type OverlapError struct {
	// N is the instance size whose trial space collided.
	N int
	// A and B are the colliding ranges.
	A, B TrialRange
	// Key names the offending completion record in the store (range B's),
	// when the overlap was found collecting a leased run; empty for the
	// file-based shard merge.
	Key string
}

func (e *OverlapError) Error() string {
	msg := fmt.Sprintf("sweep: n=%d: trial range [%d,%d) overlaps [%d,%d); merging would double-count trials",
		e.N, e.A.T0, e.A.T1, e.B.T0, e.B.T1)
	if e.Key != "" {
		msg += fmt.Sprintf(" (offending record %q)", e.Key)
	}
	return msg
}

// IncompleteError reports a collect over a store that does not yet cover
// the plan's whole trial space.
type IncompleteError struct {
	// N is the first instance size with uncovered trials.
	N int
	// Missing lists its uncovered ranges, ascending.
	Missing []TrialRange
	// Prefix is the run's store namespace, when the gap was found
	// collecting a leased run; empty for the file-based shard merge.
	Prefix string
}

func (e *IncompleteError) Error() string {
	msg := fmt.Sprintf("sweep: n=%d: trial ranges %v not yet completed", e.N, e.Missing)
	if e.Prefix != "" {
		msg += fmt.Sprintf(" (run %q)", e.Prefix)
	}
	return msg
}

// LeaseOptions tunes one executor's participation in a lease run.
type LeaseOptions struct {
	// Prefix is the run's namespace inside the store (default "leaserun").
	// Executors sharing a prefix cooperate on one plan.
	Prefix string
	// Worker is this executor's unique id (required; store-name-safe).
	Worker string
	// GrainsPerSize is the target number of grains each size's trial space
	// is quantized into (default 16). All executors of a run must agree —
	// the run's plan record enforces it.
	GrainsPerSize int
	// MaxLeaseGrains caps how many grains one claim takes from the free
	// pool (default 4), so the tail stays stealable.
	MaxLeaseGrains int
	// ExpireScans is how many idle scans a lease's heartbeat may stay
	// frozen before the observer treats it as dead and adopts its
	// remainder (default 8). Expiry is per-observer and false positives
	// are safe: they only duplicate deterministic work.
	ExpireScans int
	// SpeculateScans is how many idle scans an executor waits before
	// speculatively re-executing a live straggler's remaining range
	// (default 3).
	SpeculateScans int
	// Poll is the idle wait between scans when no work is claimable
	// (default 25ms). Consecutive idle scans back off from Poll under the
	// Retry policy instead of hammering the store at a fixed rate.
	Poll time.Duration
	// Retry paces transient-store-fault retries and idle rescans. The zero
	// value derives a policy from Poll (base Poll, ×1.5 growth, 8×Poll
	// cap) with jitter seeded from the worker id, so replays stay
	// deterministic. sweepd and the CLI tune this same knob.
	Retry Backoff
	// StoreRetries bounds how many backed-off retries one store operation
	// gets before the executor gives up on it (default 2): a completion
	// write that still fails leaves its grain uncovered for any executor
	// to redo, a scan that still fails ends the run with a *WorkerError.
	StoreRetries int
	// Static degrades the executor to the classic i-of-m schedule: it
	// claims exactly the grains whose start falls in this shard's slice,
	// never steals, and exits when ITS slice is covered rather than the
	// whole space. The zero value is the dynamic work-stealing schedule.
	Static Shard
	// Throttle, when set, runs before every grain execution — the test
	// hook unequal-speed soak workers and chaos kills are built on.
	Throttle func(b Block)
}

// LeaseStats summarises one executor's participation.
type LeaseStats struct {
	// Grains counts grain executions, including speculative duplicates.
	Grains int
	// Duplicates counts grains skipped because a valid completion already
	// existed when this executor reached them.
	Duplicates int
	// Claims counts fresh leases taken from the free pool.
	Claims int
	// Steals counts straggler tails taken from live leases.
	Steals int
	// Adopted counts expired leases whose remainder this executor took.
	Adopted int
	// Speculated counts live stragglers re-executed speculatively.
	Speculated int
}

// Add folds another executor's stats into s.
func (s *LeaseStats) Add(o LeaseStats) {
	s.Grains += o.Grains
	s.Duplicates += o.Duplicates
	s.Claims += o.Claims
	s.Steals += o.Steals
	s.Adopted += o.Adopted
	s.Speculated += o.Speculated
}

// WorkerError attributes a leased executor's failure to its worker id —
// the unit a supervisor (internal/serve) restarts and counts toward its
// circuit breaker. Everything RunLeased fails with after option validation
// is wrapped in one; Unwrap keeps errors.Is/As working on the cause
// (context.Canceled, fs.ErrNotExist, ...).
type WorkerError struct {
	// Worker is the failing executor's id.
	Worker string
	// Err is the underlying failure.
	Err error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("sweep: worker %s: %v", e.Worker, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// planSum fingerprints a plan for cheap foreign-record rejection. It is
// not a security boundary — the codec's structural validation is — just a
// guard against honest cross-run mixups.
func planSum(p Plan) uint64 {
	raw, err := json.Marshal(p)
	if err != nil {
		// A Plan is plain ints and bools; Marshal cannot fail on it.
		panic(fmt.Sprintf("sweep: marshal plan: %v", err))
	}
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// Store layout helpers.
func leasePlanKey(prefix string) string { return prefix + "/plan" }
func leaseKey(prefix, worker string) string {
	return prefix + "/lease/" + worker
}
func completionKey(prefix string, b Block) string {
	return fmt.Sprintf("%s/done/%d-%d", prefix, b.SizeIdx, b.T0)
}

// grainSize quantizes one size's trial count into about grains pieces.
func grainSize(count, grains int) int {
	g := (count + grains - 1) / grains
	if g < 1 {
		g = 1
	}
	return g
}

// alignUp rounds t up to the next grain boundary.
func alignUp(t, grain int) int {
	return ((t + grain - 1) / grain) * grain
}

// ensureLeasePlan anchors the run's identity in the store: the first
// executor writes the plan+grain record, later ones must present an equal
// one. A torn existing record is overwritten (it decodes to nothing).
func ensureLeasePlan(st Store, prefix string, lp *leasePlan) error {
	key := leasePlanKey(prefix)
	if data, err := st.Get(key); err == nil {
		existing := &leasePlan{}
		if derr := DecodeFile(bytes.NewReader(data), FormatLeasePlan, existing); derr == nil {
			if !existing.Plan.Equal(lp.Plan) || existing.Grains != lp.Grains {
				return fmt.Errorf("sweep: lease run %q was planned differently (plan or grain schedule mismatch)", prefix)
			}
			return nil
		}
	}
	var buf bytes.Buffer
	if err := EncodeFile(&buf, FormatLeasePlan, lp); err != nil {
		return err
	}
	if err := st.Put(key, buf.Bytes()); err != nil {
		return fmt.Errorf("sweep: write lease plan: %w", err)
	}
	return nil
}

// scanState is one snapshot of the run: which trials are covered by valid
// completions, which claims are live, and the highest fencing token seen.
type scanState struct {
	coverage [][]TrialRange
	leases   map[string]*Lease
	maxSeq   int64
}

// leaseScanner reads the run's records, caching decoded completions (they
// are immutable once valid) so repeated scans cost O(new records), not
// O(all records).
type leaseScanner struct {
	st      Store
	prefix  string
	sum     uint64
	counts  []int
	weights []int
	comps   map[string]*Completion
}

func newLeaseScanner(st Store, prefix string, sum uint64, counts, weights []int) *leaseScanner {
	return &leaseScanner{st: st, prefix: prefix, sum: sum, counts: counts,
		weights: weights, comps: make(map[string]*Completion)}
}

// planWeights derives the per-size fold weights of a plan whose Counts
// already validated (Orders aligned with Sizes under Quotient).
func planWeights(p Plan) []int {
	ws := make([]int, len(p.Sizes))
	for i := range ws {
		ws[i] = p.Weight(i)
	}
	return ws
}

func (s *leaseScanner) scan() (*scanState, error) {
	names, err := s.st.List(s.prefix + "/done/")
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if _, ok := s.comps[name]; ok {
			continue
		}
		data, err := s.st.Get(name)
		if err != nil {
			continue // vanished mid-scan: absent
		}
		c, derr := DecodeCompletion(bytes.NewReader(data))
		if derr != nil {
			continue // torn or forged: absent until overwritten with valid bytes
		}
		if c.PlanSum != s.sum || c.Block.SizeIdx >= len(s.counts) ||
			c.Block.T1 > s.counts[c.Block.SizeIdx] ||
			normWeight(c.Weight) != int64(s.weights[c.Block.SizeIdx]) {
			continue // foreign record (wrong plan, range, or fold weight)
		}
		s.comps[name] = c
	}
	sc := &scanState{coverage: make([][]TrialRange, len(s.counts)), leases: make(map[string]*Lease)}
	for _, c := range s.comps {
		sc.coverage[c.Block.SizeIdx] = insertRange(sc.coverage[c.Block.SizeIdx],
			TrialRange{T0: c.Block.T0, T1: c.Block.T1})
	}
	lnames, err := s.st.List(s.prefix + "/lease/")
	if err != nil {
		return nil, err
	}
	for _, name := range lnames {
		data, err := s.st.Get(name)
		if err != nil {
			continue
		}
		l, derr := DecodeLease(bytes.NewReader(data))
		if derr != nil || l.PlanSum != s.sum || l.SizeIdx >= len(s.counts) ||
			l.T1 > s.counts[l.SizeIdx] {
			continue
		}
		sc.leases[l.Worker] = l
		if l.Seq > sc.maxSeq {
			sc.maxSeq = l.Seq
		}
	}
	return sc, nil
}

// covered reports whether the coalesced ascending range list contains
// [r.T0, r.T1) entirely.
func covered(ranges []TrialRange, r TrialRange) bool {
	if r.T0 >= r.T1 {
		return true
	}
	for _, x := range ranges {
		if x.T0 <= r.T0 && r.T1 <= x.T1 {
			return true
		}
	}
	return false
}

// claimKind classifies how a claim was obtained, for stats accounting.
type claimKind int

const (
	claimFresh claimKind = iota
	claimSteal
	claimAdopt
	claimSpec
)

// leaseRunner is one RunLeased invocation's working state.
type leaseRunner struct {
	spec    Spec
	st      Store
	opts    LeaseOptions
	prefix  string
	sum     uint64
	counts  []int
	weights []int        // fold weight per size index (quotient orbit size)
	grain   []int        // grain size per size index
	target  []TrialRange // this worker's target range per size
	order   []int        // size indices, largest instance first
	stats   LeaseStats
	scanner *leaseScanner
}

// RunLeased executes the spec's plan as one cooperating lease executor
// against the store and returns this executor's participation stats. The
// call returns when the executor's target is fully covered by valid
// completion records — the whole trial space for the dynamic schedule, or
// this shard's grains under Static — from any combination of workers.
// Merge the records with CollectLeased; the result is byte-identical to a
// single uninterrupted Run of the same spec.
//
// The spec must leave Shard, Done and OnBlock unset: the lease schedule
// owns the trial-space slicing, and per-grain completions are the progress
// record (there is no separate checkpoint — a restarted executor resumes
// from whatever the store already covers).
func RunLeased(ctx context.Context, spec Spec, st Store, opts LeaseOptions) (LeaseStats, error) {
	var zero LeaseStats
	if st == nil {
		return zero, fmt.Errorf("sweep: RunLeased needs a store")
	}
	if opts.Worker == "" {
		return zero, fmt.Errorf("sweep: RunLeased needs a worker id")
	}
	if err := validStoreName(opts.Worker); err != nil {
		return zero, fmt.Errorf("sweep: worker id: %w", err)
	}
	if !spec.Shard.IsZero() || spec.Done != nil || spec.OnBlock != nil {
		return zero, fmt.Errorf("sweep: RunLeased owns the schedule; Spec.Shard, Done and OnBlock must be unset")
	}
	if err := opts.Static.validate(); err != nil {
		return zero, err
	}
	if opts.Prefix == "" {
		opts.Prefix = "leaserun"
	}
	if err := validStoreName(opts.Prefix); err != nil {
		return zero, fmt.Errorf("sweep: lease prefix: %w", err)
	}
	if opts.GrainsPerSize <= 0 {
		opts.GrainsPerSize = 16
	}
	if opts.MaxLeaseGrains <= 0 {
		opts.MaxLeaseGrains = 4
	}
	if opts.ExpireScans <= 0 {
		opts.ExpireScans = 8
	}
	if opts.SpeculateScans <= 0 {
		opts.SpeculateScans = 3
	}
	if opts.Poll <= 0 {
		opts.Poll = 25 * time.Millisecond
	}
	// The retry policy inherits Poll as its base and jitters on a stream
	// seeded from the worker id: deterministic per worker, decorrelated
	// across a fleet.
	opts.Retry = opts.Retry.withBase(opts.Poll)
	if opts.Retry.Seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(opts.Worker))
		opts.Retry.Seed = h.Sum64()
	}
	if opts.Retry.Factor == 0 {
		opts.Retry.Factor = 1.5
	}
	if opts.StoreRetries <= 0 {
		opts.StoreRetries = 2
	}
	if ctx == nil {
		ctx = context.Background()
	}

	plan, err := PlanOf(spec)
	if err != nil {
		return zero, err
	}
	counts, err := plan.Counts()
	if err != nil {
		return zero, err
	}
	if err := ensureLeasePlan(st, opts.Prefix, &leasePlan{Plan: plan, Grains: opts.GrainsPerSize}); err != nil {
		return zero, &WorkerError{Worker: opts.Worker, Err: err}
	}

	r := &leaseRunner{
		spec: spec, st: st, opts: opts, prefix: opts.Prefix,
		sum: planSum(plan), counts: counts, weights: planWeights(plan),
		grain:  make([]int, len(counts)),
		target: make([]TrialRange, len(counts)),
	}
	for i, c := range counts {
		r.grain[i] = grainSize(c, opts.GrainsPerSize)
		lo, hi := 0, c
		if !opts.Static.IsZero() {
			// The degenerate schedule: grain g belongs to the shard whose
			// classic slice contains g's start, so m static workers tile
			// the grain set exactly once with no coordination.
			slo, shi := opts.Static.Range(c)
			lo = min(alignUp(slo, r.grain[i]), c)
			hi = min(alignUp(shi, r.grain[i]), c)
		}
		r.target[i] = TrialRange{T0: lo, T1: hi}
	}
	// Largest instance first, like the engine's own block planner.
	r.order = make([]int, len(plan.Sizes))
	for i := range r.order {
		r.order[i] = i
	}
	sort.SliceStable(r.order, func(a, b int) bool {
		return plan.Sizes[r.order[a]] > plan.Sizes[r.order[b]]
	})
	r.scanner = newLeaseScanner(st, r.prefix, r.sum, counts, r.weights)

	defer st.Delete(leaseKey(r.prefix, opts.Worker))
	if err = r.loop(ctx); err != nil {
		// Everything past option validation is a worker-attributable
		// failure the supervisor counts.
		err = &WorkerError{Worker: opts.Worker, Err: err}
	}
	return r.stats, err
}

// beatTrack follows one remote lease's heartbeat across idle scans.
type beatTrack struct {
	beat     int64
	stagnant int
}

// loop is the executor's claim-execute cycle.
func (r *leaseRunner) loop(ctx context.Context) error {
	beats := make(map[string]*beatTrack)
	idle := 0
	scanFaults := 0
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sweep: leased run cancelled: %w", err)
		}
		sc, err := r.scanner.scan()
		if err != nil {
			// A transiently faulting store gets StoreRetries backed-off
			// rescans before the executor dies (and the supervisor counts
			// the death); a final fault — vanished root, permission — kills
			// the executor immediately, one predicate (IsRetryable)
			// deciding for this loop and RetryStore alike.
			if scanFaults++; !IsRetryable(err) || scanFaults > r.opts.StoreRetries {
				return err
			}
			r.opts.Retry.Wait(ctx, scanFaults-1)
			continue
		}
		scanFaults = 0
		done := true
		for i, t := range r.target {
			if !covered(sc.coverage[i], t) {
				done = false
			}
		}
		if done {
			return nil
		}
		// Heartbeat bookkeeping happens on every scan — a busy executor
		// must still notice a dead peer, or its frozen lease would pin the
		// uncovered head of the space forever. Stagnation counts scans with
		// an unchanged Beat; false expiry (a merely slow peer) is safe, it
		// only duplicates deterministic work.
		for w, l := range sc.leases {
			if w == r.opts.Worker {
				continue
			}
			if bt := beats[w]; bt != nil && bt.beat == l.Beat {
				bt.stagnant++
			} else {
				beats[w] = &beatTrack{beat: l.Beat}
			}
		}
		for w := range beats {
			if _, live := sc.leases[w]; !live {
				delete(beats, w)
			}
		}
		expired := make(map[string]bool)
		for w, bt := range beats {
			if bt.stagnant >= r.opts.ExpireScans {
				expired[w] = true
			}
		}
		b, kind, ok := r.chooseClaim(sc, expired, idle)
		if !ok {
			// Someone else holds all remaining work: back off and rescan,
			// waiting longer the longer nothing is claimable.
			r.opts.Retry.Wait(ctx, idle)
			idle++
			continue
		}
		idle = 0
		switch kind {
		case claimFresh:
			r.stats.Claims++
		case claimSteal:
			r.stats.Steals++
		case claimAdopt:
			r.stats.Adopted++
		case claimSpec:
			r.stats.Speculated++
		}
		if err := r.executeLease(ctx, b, sc.maxSeq+1); err != nil {
			return err
		}
	}
}

// chooseClaim picks this executor's next lease: a fresh range from the
// free pool (adopting expired claims' remainders), else a stolen straggler
// tail, else — after some idle patience — a speculative duplicate of a
// live straggler.
func (r *leaseRunner) chooseClaim(sc *scanState, expired map[string]bool, idle int) (Block, claimKind, bool) {
	// Live remote claims block the free pool; expired ones do not.
	live := make([]*Lease, 0, len(sc.leases))
	for w, l := range sc.leases {
		if w == r.opts.Worker || expired[w] || l.Next >= l.T1 {
			continue
		}
		live = append(live, l)
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Worker < live[b].Worker })

	for _, i := range r.order {
		busy := append([]TrialRange(nil), sc.coverage[i]...)
		for _, l := range live {
			if l.SizeIdx == i {
				busy = insertRange(busy, TrialRange{T0: l.Next, T1: l.T1})
			}
		}
		avail := subtractRanges(r.target[i].T0, r.target[i].T1, busy)
		if len(avail) == 0 {
			continue
		}
		g := r.grain[i]
		rng := avail[0]
		t1 := rng.T0 + r.opts.MaxLeaseGrains*g
		if t1 > rng.T1 {
			t1 = rng.T1
		}
		b := Block{SizeIdx: i, T0: rng.T0, T1: t1}
		kind := claimFresh
		for w, l := range sc.leases {
			if expired[w] && l.SizeIdx == i && l.Next < b.T1 && b.T0 < l.T1 {
				kind = claimAdopt
			}
		}
		return b, kind, true
	}
	if !r.opts.Static.IsZero() {
		// The degenerate schedule never steals: its slice is either done
		// (loop exits) or being executed by this very worker.
		return Block{}, 0, false
	}

	// Steal: take the tail half of the largest live UNCOVERED remainder,
	// if it still spans at least two grains. Subtracting coverage matters
	// for progress: a tail that is already covered by completions must not
	// be stolen again and again while the victim's head stays pinned.
	var victim *Lease
	var victimRem []TrialRange
	victimGrains := 1
	for _, l := range live {
		rem := subtractRanges(l.Next, l.T1, sc.coverage[l.SizeIdx])
		g := r.grain[l.SizeIdx]
		k := 0
		for _, x := range rem {
			k += (x.T1 - x.T0 + g - 1) / g
		}
		if k > victimGrains {
			victim, victimRem, victimGrains = l, rem, k
		}
	}
	if victim != nil {
		g := r.grain[victim.SizeIdx]
		need := victimGrains / 2
		t0 := victim.Next
		for j := len(victimRem) - 1; j >= 0; j-- {
			x := victimRem[j]
			k := (x.T1 - x.T0 + g - 1) / g
			if k >= need {
				t0 = x.T0 + (k-need)*g
				break
			}
			need -= k
		}
		return Block{SizeIdx: victim.SizeIdx, T0: t0, T1: victim.T1}, claimSteal, true
	}

	// Speculation: every remaining claim is a single in-flight grain. After
	// a little patience, re-execute one — duplicates are byte-identical, so
	// the only cost is work, and the benefit is not waiting on a straggler
	// that may never finish. Only claims with uncovered work qualify.
	if idle >= r.opts.SpeculateScans {
		for _, l := range live {
			rem := subtractRanges(l.Next, l.T1, sc.coverage[l.SizeIdx])
			if len(rem) > 0 {
				return Block{SizeIdx: l.SizeIdx, T0: rem[0].T0, T1: l.T1}, claimSpec, true
			}
		}
	}
	return Block{}, 0, false
}

// executeLease publishes the claim and executes it grain by grain: skip
// grains someone already completed, run the rest through the engine, write
// a completion per grain, heartbeat the lease, and cede any tail a
// higher-Seq thief has taken.
func (r *leaseRunner) executeLease(ctx context.Context, b Block, seq int64) error {
	l := Lease{PlanSum: r.sum, Worker: r.opts.Worker,
		SizeIdx: b.SizeIdx, T0: b.T0, T1: b.T1, Next: b.T0, Seq: seq}
	r.putLease(&l) // advisory: a failed write only hides the claim, never corrupts
	g := r.grain[b.SizeIdx]
	for l.Next < l.T1 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sweep: leased run cancelled: %w", err)
		}
		t1 := l.Next + g
		if t1 > l.T1 {
			t1 = l.T1
		}
		gb := Block{SizeIdx: b.SizeIdx, T0: l.Next, T1: t1}
		key := completionKey(r.prefix, gb)
		if data, err := r.st.Get(key); err == nil {
			if _, derr := DecodeCompletion(bytes.NewReader(data)); derr == nil {
				// First write wins: a valid record is never overwritten.
				r.stats.Duplicates++
				r.advance(&l, t1)
				continue
			}
		}
		if r.opts.Throttle != nil {
			r.opts.Throttle(gb)
		}
		stats, err := r.runGrain(ctx, gb)
		if err != nil {
			return err
		}
		comp := &Completion{PlanSum: r.sum, Worker: r.opts.Worker, Block: gb, Stats: stats}
		if w := r.weights[gb.SizeIdx]; w > 1 {
			comp.Weight = int64(w)
		}
		var buf bytes.Buffer
		if err := EncodeCompletion(&buf, comp); err != nil {
			return err
		}
		for attempt := 0; ; attempt++ {
			// Bounded, backed-off retries ride out transient faults — the
			// same IsRetryable predicate RetryStore applies, so a final
			// fault (vanished root, permission) stops immediately. A grain
			// whose record still fails to land simply stays uncovered: some
			// executor (possibly this one, next claim) re-runs it and
			// overwrites whatever garbage the failed write left.
			perr := r.st.Put(key, buf.Bytes())
			if perr == nil || !IsRetryable(perr) {
				break
			}
			if attempt >= r.opts.StoreRetries || r.opts.Retry.Wait(ctx, attempt) != nil {
				break
			}
		}
		r.stats.Grains++
		r.advance(&l, t1)
	}
	r.st.Delete(leaseKey(r.prefix, r.opts.Worker))
	return nil
}

// advance moves the lease cursor past a finished (or skipped) grain,
// cedes any tail a higher-Seq claim overlaps, and heartbeats the record.
func (r *leaseRunner) advance(l *Lease, next int) {
	l.Next = next
	l.Beat++
	if names, err := r.st.List(r.prefix + "/lease/"); err == nil {
		for _, name := range names {
			if name == leaseKey(r.prefix, l.Worker) {
				continue
			}
			data, err := r.st.Get(name)
			if err != nil {
				continue
			}
			o, derr := DecodeLease(bytes.NewReader(data))
			if derr != nil || o.PlanSum != r.sum || o.SizeIdx != l.SizeIdx || o.Seq <= l.Seq {
				continue
			}
			// A higher-Seq claim overlapping our remainder wins it.
			if o.T0 < l.T1 && l.Next < o.T1 && o.T0 >= l.Next {
				l.T1 = o.T0
			}
		}
	}
	if l.Next > l.T1 {
		l.Next = l.T1
	}
	r.putLease(l)
}

func (r *leaseRunner) putLease(l *Lease) {
	var buf bytes.Buffer
	if err := EncodeLease(&buf, l); err != nil {
		return
	}
	r.st.Put(leaseKey(r.prefix, l.Worker), buf.Bytes())
}

// runGrain executes exactly the grain's trials through the ordinary
// engine: the rest of the trial space is declared Done, so the planner
// emits the grain and nothing else. Graphs are rebuilt per grain (cheap,
// deterministic) and the per-size atlas comes from the engine's cross-run
// cache, so repeated grains at one size share their BFS layers.
func (r *leaseRunner) runGrain(ctx context.Context, b Block) (SizeStats, error) {
	s := r.spec
	s.Shard = Shard{}
	done := make([][]TrialRange, len(r.counts))
	for j, c := range r.counts {
		if j != b.SizeIdx {
			done[j] = []TrialRange{{T0: 0, T1: c}}
			continue
		}
		var rs []TrialRange
		if b.T0 > 0 {
			rs = append(rs, TrialRange{T0: 0, T1: b.T0})
		}
		if b.T1 < c {
			rs = append(rs, TrialRange{T0: b.T1, T1: c})
		}
		done[j] = rs
	}
	s.Done = done
	res, err := Run(ctx, s)
	if err != nil {
		return SizeStats{}, err
	}
	return res.Sizes[b.SizeIdx], nil
}

// sleepCtx waits d or until the context fires, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// SizeProgress is one size's coverage in a leased run: how many of its
// trials are covered by valid completion records.
type SizeProgress struct {
	N     int `json:"n"`
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Progress is one lease-scan snapshot of a run — the supervisor-facing
// view sweepd serves as job status and watches for wedged workers: a run
// whose Covered count and Beats sum both freeze across snapshots while
// claims are live is making no progress.
type Progress struct {
	// Sizes is the per-size completion coverage, in plan order.
	Sizes []SizeProgress `json:"sizes"`
	// Workers counts the live claim records in the store.
	Workers int `json:"workers"`
	// Beats sums the live claims' heartbeat counters.
	Beats int64 `json:"beats"`
}

// Covered returns the total completed trials across sizes.
func (p *Progress) Covered() int {
	t := 0
	for _, s := range p.Sizes {
		t += s.Done
	}
	return t
}

// Total returns the run's total trial count across sizes.
func (p *Progress) Total() int {
	t := 0
	for _, s := range p.Sizes {
		t += s.Total
	}
	return t
}

// Complete reports whether every size's trial space is fully covered.
func (p *Progress) Complete() bool { return p.Covered() == p.Total() }

// LeaseProgress snapshots a lease run's coverage and live claims without
// joining it: one scan over the run's records, the same validation the
// executors apply (torn, foreign or overlapping-plan records read as
// absent). A store holding no records yet reports zero coverage, not an
// error — the run simply has not started.
func LeaseProgress(st Store, prefix string, plan Plan) (*Progress, error) {
	counts, err := plan.Counts()
	if err != nil {
		return nil, err
	}
	sc, err := newLeaseScanner(st, prefix, planSum(plan), counts, planWeights(plan)).scan()
	if err != nil {
		return nil, err
	}
	p := &Progress{Sizes: make([]SizeProgress, len(plan.Sizes)), Workers: len(sc.leases)}
	for i, n := range plan.Sizes {
		done := 0
		for _, r := range sc.coverage[i] {
			done += r.T1 - r.T0
		}
		p.Sizes[i] = SizeProgress{N: n, Done: done, Total: counts[i]}
	}
	for _, l := range sc.leases {
		p.Beats += l.Beat
	}
	return p, nil
}

// CollectLeased folds a lease run's completion records into the Result a
// single uninterrupted Run of the plan's spec produces, byte for byte. It
// is strict: per size, the valid records must tile the plan's trial space
// exactly once — overlaps fail with *OverlapError (the first-write-wins
// precondition), gaps with *IncompleteError, and a store whose plan record
// disagrees with the expected plan is rejected outright. Torn or foreign
// records are skipped (they are "absent", exactly as executors treat
// them), so they surface as gaps, never as corrupted aggregates.
func CollectLeased(st Store, prefix string, plan Plan) (*Result, error) {
	counts, err := plan.Counts()
	if err != nil {
		return nil, err
	}
	if data, err := st.Get(leasePlanKey(prefix)); err == nil {
		lp := &leasePlan{}
		if derr := DecodeFile(bytes.NewReader(data), FormatLeasePlan, lp); derr == nil && !lp.Plan.Equal(plan) {
			return nil, fmt.Errorf("sweep: lease run %q holds a different plan", prefix)
		}
	}
	sum := planSum(plan)
	names, err := st.List(prefix + "/done/")
	if err != nil {
		return nil, err
	}
	// Each completion keeps its store key so a collect failure can name the
	// offending record, not just describe the collision.
	type keyed struct {
		c   *Completion
		key string
	}
	bySize := make([][]keyed, len(plan.Sizes))
	for _, name := range names {
		data, err := st.Get(name)
		if err != nil {
			continue
		}
		c, derr := DecodeCompletion(bytes.NewReader(data))
		if derr != nil {
			continue
		}
		if c.PlanSum != sum || c.Block.SizeIdx >= len(counts) ||
			c.Block.T1 > counts[c.Block.SizeIdx] || c.Stats.N != plan.Sizes[c.Block.SizeIdx] ||
			normWeight(c.Weight) != int64(plan.Weight(c.Block.SizeIdx)) {
			continue
		}
		bySize[c.Block.SizeIdx] = append(bySize[c.Block.SizeIdx], keyed{c: c, key: name})
	}

	out := &Result{Sizes: make([]SizeStats, len(plan.Sizes))}
	for i, n := range plan.Sizes {
		out.Sizes[i].N = n
		comps := bySize[i]
		sort.Slice(comps, func(a, b int) bool {
			if comps[a].c.Block.T0 != comps[b].c.Block.T0 {
				return comps[a].c.Block.T0 < comps[b].c.Block.T0
			}
			return comps[a].c.Block.T1 < comps[b].c.Block.T1
		})
		lo, hi := plan.Shard.Range(counts[i])
		var missing []TrialRange
		var prev TrialRange
		cur := lo
		for _, kc := range comps {
			c := kc.c
			if c.Block.T0 < cur {
				return nil, &OverlapError{N: n, A: prev,
					B: TrialRange{T0: c.Block.T0, T1: c.Block.T1}, Key: kc.key}
			}
			if c.Block.T0 > cur {
				missing = append(missing, TrialRange{T0: cur, T1: c.Block.T0})
			}
			prev = TrialRange{T0: c.Block.T0, T1: c.Block.T1}
			cur = c.Block.T1
		}
		if cur < hi {
			missing = append(missing, TrialRange{T0: cur, T1: hi})
		}
		if len(missing) > 0 {
			return nil, &IncompleteError{N: n, Missing: missing, Prefix: prefix}
		}
		for _, kc := range comps {
			out.Sizes[i].Merge(&kc.c.Stats)
		}
	}
	return out, nil
}
