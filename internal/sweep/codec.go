package sweep

// Versioned serialization for the MERGE layer. Every file the engine (or a
// caller, like the experiment shard files) writes is a JSON envelope — a
// format tag, a version, a payload — so a reader can reject a foreign or
// future file with a typed error instead of silently mis-merging it. The
// payload shapes are the exported aggregate structs with explicit JSON
// tags; Go's JSON float encoding is shortest-round-trip, so decoded
// aggregates are bit-identical to the encoded ones and cross-process
// merges stay byte-exact.

import (
	"encoding/json"
	"fmt"
	"io"
)

// codecVersion is the current envelope version. Bump it on any change to
// the serialized shape of SizeStats, Plan, TrialRange or the envelope
// itself; readers reject other versions with a *DecodeError. Version 2
// added the quotient-plan fields (Plan.Quotient/Orders) and the
// per-completion fold weight (Completion.Weight).
const codecVersion = 2

// Format tags distinguish the file kinds sharing the envelope.
const (
	// FormatResult tags a serialized Result: the partial aggregates one
	// plan shard produced (avgbench -shard writes these inside its shard
	// files; MergeResults folds them).
	FormatResult = "sweep.result"
	// FormatCheckpoint tags a serialized Checkpoint: a plan identity plus
	// the completed blocks and their aggregates.
	FormatCheckpoint = "sweep.checkpoint"
	// FormatLeasePlan tags a lease run's identity record: the plan plus the
	// grain schedule every cooperating executor must agree on (lease.go).
	FormatLeasePlan = "sweep.leaseplan"
	// FormatLease tags one executor's mutable claim record: the leased
	// trial range, its progress cursor, heartbeat and fencing token.
	FormatLease = "sweep.lease"
	// FormatCompletion tags an immutable per-grain completion record: the
	// block coordinate plus its aggregate.
	FormatCompletion = "sweep.completion"
)

// DecodeError is the typed failure of every codec read: corrupted JSON, a
// wrong format tag, an unsupported version, or a payload violating the
// aggregate invariants. It is an error the caller can distinguish
// (errors.As) from I/O failures — and the codec never panics on arbitrary
// input, however corrupted (fuzzed in codec_fuzz_test.go).
type DecodeError struct {
	// Format is the format tag the reader expected.
	Format string
	// Reason describes what was wrong with the input.
	Reason string
	// Err is the underlying cause (a json error), when there is one.
	Err error
	// Key names the offending file or store record, when the caller knows
	// it — the codec itself only sees a reader.
	Key string
}

func (e *DecodeError) Error() string {
	msg := fmt.Sprintf("sweep: decode %s: %s", e.Format, e.Reason)
	if e.Err != nil {
		msg += fmt.Sprintf(": %v", e.Err)
	}
	if e.Key != "" {
		msg += fmt.Sprintf(" (in %q)", e.Key)
	}
	return msg
}

func (e *DecodeError) Unwrap() error { return e.Err }

// envelope is the on-disk frame shared by every codec file.
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// EncodeFile writes payload inside a versioned envelope with the given
// format tag. It is shared by the engine's own files and by callers
// framing their payloads the same way (the experiment shard files).
func EncodeFile(w io.Writer, format string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("sweep: encode %s payload: %w", format, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(envelope{Format: format, Version: codecVersion, Payload: raw}); err != nil {
		return fmt.Errorf("sweep: encode %s: %w", format, err)
	}
	return nil
}

// DecodeFile reads one envelope from r, checks its format tag and version,
// and unmarshals the payload into out. All failures are *DecodeError.
func DecodeFile(r io.Reader, format string, out any) error {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return &DecodeError{Format: format, Reason: "malformed envelope", Err: err}
	}
	if env.Format != format {
		return &DecodeError{Format: format, Reason: fmt.Sprintf("file is %q, not %q", env.Format, format)}
	}
	if env.Version != codecVersion {
		return &DecodeError{Format: format,
			Reason: fmt.Sprintf("unsupported version %d (this build reads %d)", env.Version, codecVersion)}
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return &DecodeError{Format: format, Reason: "malformed payload", Err: err}
	}
	return nil
}

// EncodeResult serializes a Result (typically one shard's partial
// aggregates) for a later MergeResults in another process.
func EncodeResult(w io.Writer, res *Result) error {
	return EncodeFile(w, FormatResult, res)
}

// DecodeResult reads a Result written by EncodeResult and validates the
// aggregate invariants; failures are *DecodeError, never a panic.
func DecodeResult(r io.Reader) (*Result, error) {
	res := &Result{}
	if err := DecodeFile(r, FormatResult, res); err != nil {
		return nil, err
	}
	if err := validateSizes(res.Sizes, FormatResult); err != nil {
		return nil, err
	}
	return res, nil
}

// ValidateResult checks a decoded Result against the aggregate invariants
// the way DecodeResult does. Callers embedding Results inside their own
// envelopes (the experiment shard files) must run it on every decoded
// aggregate before merging; failures are *DecodeError.
func ValidateResult(res *Result) error {
	return validateSizes(res.Sizes, FormatResult)
}

// validateSizes rejects decoded aggregates that violate invariants no run
// can produce — a fold of such a payload would corrupt a merge silently.
func validateSizes(sizes []SizeStats, format string) error {
	for i, s := range sizes {
		reject := func(reason string) error {
			return &DecodeError{Format: format, Reason: fmt.Sprintf("size %d: %s", i, reason)}
		}
		if s.Trials < 0 || s.Failures < 0 || s.Failures > s.Trials {
			return reject(fmt.Sprintf("impossible trial counts (trials=%d failures=%d)", s.Trials, s.Failures))
		}
		if s.TotalSum < 0 || s.TotalMax < 0 {
			return reject("negative radius totals")
		}
		if s.Trials > 0 && (s.WorstAvgTrial < 0 || s.WorstMaxTrial < 0 || s.BestAvgTrial < 0) {
			return reject("negative extremal trial index")
		}
		for r, c := range s.Hist {
			if c < 0 {
				return reject(fmt.Sprintf("negative histogram count at radius %d", r))
			}
		}
	}
	return nil
}
