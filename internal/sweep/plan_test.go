package sweep

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// mustPlanOf derives a spec's plan for tests whose specs cannot make
// PlanOf fail (no quotient, or a quotient over supported families).
func mustPlanOf(spec Spec) Plan {
	p, err := PlanOf(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// TestShardRangePartition is the plan layer's core invariant: for any
// (total, count), the m shard ranges are contiguous, cover [0, total)
// exactly once, and differ in size by at most one.
func TestShardRangePartition(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 40, 719, 5040} {
		for _, count := range []int{1, 2, 3, 4, 7, 16} {
			next := 0
			minLen, maxLen := total+1, -1
			for i := 0; i < count; i++ {
				lo, hi := Shard{Index: i, Count: count}.Range(total)
				if lo != next {
					t.Fatalf("total=%d count=%d: shard %d starts at %d, want %d", total, count, i, lo, next)
				}
				if hi < lo {
					t.Fatalf("total=%d count=%d: shard %d inverted [%d,%d)", total, count, i, lo, hi)
				}
				if l := hi - lo; l < minLen {
					minLen = l
				} else if l > maxLen {
					maxLen = l
				}
				if l := hi - lo; l > maxLen {
					maxLen = l
				}
				next = hi
			}
			if next != total {
				t.Fatalf("total=%d count=%d: shards end at %d", total, count, next)
			}
			if maxLen >= 0 && maxLen-minLen > 1 {
				t.Fatalf("total=%d count=%d: shard lengths spread %d..%d", total, count, minLen, maxLen)
			}
		}
	}
	if lo, hi := (Shard{}).Range(42); lo != 0 || hi != 42 {
		t.Fatalf("zero shard range [%d,%d), want [0,42)", lo, hi)
	}
}

// TestShardValidation rejects malformed shards at Run time.
func TestShardValidation(t *testing.T) {
	for _, s := range []Shard{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -1}, {Index: 1, Count: 0}} {
		spec := cycleSpec(1, []int{8}, 2, 1)
		spec.Shard = s
		if _, err := Run(context.Background(), spec); err == nil {
			t.Errorf("shard %+v accepted", s)
		}
	}
}

// TestSubtractRanges pins the complement computation resume is built on.
func TestSubtractRanges(t *testing.T) {
	cases := []struct {
		lo, hi int
		done   []TrialRange
		want   []TrialRange
	}{
		{0, 10, nil, []TrialRange{{0, 10}}},
		{0, 10, []TrialRange{{0, 10}}, nil},
		{0, 10, []TrialRange{{3, 5}}, []TrialRange{{0, 3}, {5, 10}}},
		{0, 10, []TrialRange{{0, 4}, {6, 8}}, []TrialRange{{4, 6}, {8, 10}}},
		{2, 8, []TrialRange{{0, 3}, {7, 12}}, []TrialRange{{3, 7}}},
		{5, 6, []TrialRange{{0, 2}}, []TrialRange{{5, 6}}},
		{0, 6, []TrialRange{{5, 6}}, []TrialRange{{0, 5}}},
		// Edge cases the lease scheduler leans on: an empty window, Done
		// covering the whole space and beyond, single-trial ranges and
		// complements, and Done exactly tiling the window.
		{3, 3, nil, nil},                                                           // empty window, nothing done
		{3, 3, []TrialRange{{0, 10}}, nil},                                         // empty window, everything done
		{0, 10, []TrialRange{{0, 25}}, nil},                                        // done overshoots the window
		{4, 8, []TrialRange{{0, 4}, {8, 12}}, []TrialRange{{4, 8}}},                // done only outside
		{0, 1, nil, []TrialRange{{0, 1}}},                                          // single-trial space
		{0, 1, []TrialRange{{0, 1}}, nil},                                          // single-trial space, done
		{0, 5, []TrialRange{{0, 1}, {2, 3}, {4, 5}}, []TrialRange{{1, 2}, {3, 4}}}, // single-trial holes
		{0, 4, []TrialRange{{0, 2}, {2, 4}}, nil},                                  // exact tiling in two pieces
		{7, 9, []TrialRange{{8, 9}}, []TrialRange{{7, 8}}},                         // tail already done
	}
	for _, c := range cases {
		got := subtractRanges(c.lo, c.hi, c.done)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("subtract [%d,%d) - %v = %v, want %v", c.lo, c.hi, c.done, got, c.want)
		}
	}
}

// TestPlanBlocksCoverage: for any shard/done carve-out, the planned blocks
// cover exactly the runnable coordinates, each exactly once, in ascending
// order within every size.
func TestPlanBlocksCoverage(t *testing.T) {
	counts := []int{40, 17, 100}
	order := []int{2, 0, 1}
	done := [][]TrialRange{{{3, 9}}, nil, {{0, 50}, {90, 95}}}
	for _, count := range []int{1, 2, 3} {
		for shardIdx := 0; shardIdx < count; shardIdx++ {
			shard := Shard{Index: shardIdx, Count: count}
			if count == 1 {
				shard = Shard{}
			}
			blocks := planBlocks(order, counts, shard, done, 4)
			seen := make([]map[int]bool, len(counts))
			last := make([]int, len(counts))
			for i := range seen {
				seen[i] = make(map[int]bool)
				last[i] = -1
			}
			for _, b := range blocks {
				if b.T0 >= b.T1 {
					t.Fatalf("empty block %+v", b)
				}
				if b.T0 < last[b.SizeIdx] {
					t.Fatalf("blocks out of ascending order at %+v", b)
				}
				last[b.SizeIdx] = b.T1
				for tr := b.T0; tr < b.T1; tr++ {
					if seen[b.SizeIdx][tr] {
						t.Fatalf("trial (%d,%d) planned twice", b.SizeIdx, tr)
					}
					seen[b.SizeIdx][tr] = true
				}
			}
			for i, c := range counts {
				lo, hi := shard.Range(c)
				for tr := lo; tr < hi; tr++ {
					inDone := false
					for _, d := range done[i] {
						if tr >= d.T0 && tr < d.T1 {
							inDone = true
						}
					}
					if seen[i][tr] == inDone {
						t.Fatalf("shard %d/%d size %d trial %d: planned=%v done=%v", shardIdx, count, i, tr, seen[i][tr], inDone)
					}
				}
			}
		}
	}
}

// TestPlanOfEqual: PlanOf normalises the trial count and Equal compares by
// value including the size list.
func TestPlanOfEqual(t *testing.T) {
	spec := cycleSpec(9, []int{8, 16}, 0, 1)
	p := mustPlanOf(spec)
	if p.Trials != 1 {
		t.Errorf("PlanOf left Trials=%d, want normalised 1", p.Trials)
	}
	ex := exhaustiveSpec([]int{5}, 1)
	pe := mustPlanOf(ex)
	if pe.Trials != 0 || !pe.Exhaustive {
		t.Errorf("exhaustive PlanOf = %+v", pe)
	}
	q := mustPlanOf(spec)
	if !p.Equal(q) {
		t.Error("equal plans reported unequal")
	}
	q.Sizes = []int{8, 17}
	if p.Equal(q) {
		t.Error("plans with different sizes reported equal")
	}
	q = mustPlanOf(spec)
	q.Shard = Shard{Index: 0, Count: 2}
	if p.Equal(q) {
		t.Error("plans with different shards reported equal")
	}
}

// TestDoneValidation rejects malformed resume lists.
func TestDoneValidation(t *testing.T) {
	bad := [][][]TrialRange{
		{{{T0: -1, T1: 2}}, nil},        // negative start
		{{{T0: 0, T1: 10}}, nil},        // beyond count
		{{{T0: 3, T1: 3}}, nil},         // empty range
		{{{T0: 0, T1: 4}, {2, 6}}, nil}, // overlapping
		{{{T0: 4, T1: 6}, {0, 2}}, nil}, // descending
		{nil},                           // wrong length
	}
	for _, done := range bad {
		spec := cycleSpec(1, []int{8, 12}, 5, 1)
		spec.Done = done
		if _, err := Run(context.Background(), spec); err == nil {
			t.Errorf("Done %v accepted", done)
		}
	}
	spec := cycleSpec(1, []int{8, 12}, 5, 1)
	spec.Done = [][]TrialRange{{{T0: 0, T1: 2}}, nil}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Errorf("valid Done rejected: %v", err)
	}
	// The degenerate extremes are valid too: Done covering the whole space
	// (nothing left to run) and single-trial ranges tiling it.
	spec = cycleSpec(1, []int{8, 12}, 5, 1)
	spec.Done = [][]TrialRange{{{T0: 0, T1: 5}}, {{T0: 0, T1: 5}}}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("fully-done spec rejected: %v", err)
	}
	for i, s := range res.Sizes {
		if s.Trials != 0 {
			t.Errorf("fully-done run executed %d trials at size %d", s.Trials, i)
		}
	}
	spec = cycleSpec(1, []int{8, 12}, 5, 1)
	spec.Done = [][]TrialRange{{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, {{1, 2}, {3, 4}}}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Errorf("single-trial Done tiling rejected: %v", err)
	}
}

// TestLeasePartitionProperty is the merge's property test: ANY partition
// of the trial space into ranges — executed independently, each as its own
// "lease" with the rest of the space declared done, in shuffled order —
// folds back to the bytes of the uninterrupted run. This is the invariant
// the whole lease protocol rests on; grains are just one such partition.
func TestLeasePartitionProperty(t *testing.T) {
	spec := cycleSpec(17, []int{9, 13}, 24, 2)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{24, 24}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// Draw a random partition of every size's trial space.
		type piece struct {
			size int
			r    TrialRange
		}
		var pieces []piece
		for i, c := range counts {
			cur := 0
			for cur < c {
				w := 1 + rng.Intn(c-cur)
				pieces = append(pieces, piece{size: i, r: TrialRange{T0: cur, T1: cur + w}})
				cur += w
			}
		}
		rng.Shuffle(len(pieces), func(a, b int) { pieces[a], pieces[b] = pieces[b], pieces[a] })
		// Execute each piece independently: Done = complement of the piece.
		got := &Result{Sizes: make([]SizeStats, len(counts))}
		for i, n := range spec.Sizes {
			got.Sizes[i].N = n
		}
		type keyed struct {
			piece
			stats SizeStats
		}
		var parts []keyed
		for _, p := range pieces {
			s := spec
			done := make([][]TrialRange, len(counts))
			for j, c := range counts {
				if j != p.size {
					done[j] = []TrialRange{{T0: 0, T1: c}}
					continue
				}
				var rs []TrialRange
				if p.r.T0 > 0 {
					rs = append(rs, TrialRange{T0: 0, T1: p.r.T0})
				}
				if p.r.T1 < c {
					rs = append(rs, TrialRange{T0: p.r.T1, T1: c})
				}
				done[j] = rs
			}
			s.Done = done
			res, err := Run(context.Background(), s)
			if err != nil {
				t.Fatalf("trial %d piece %+v: %v", trial, p, err)
			}
			parts = append(parts, keyed{piece: p, stats: res.Sizes[p.size]})
		}
		// Fold in ascending trial order per size, the way CollectLeased does.
		sort.Slice(parts, func(a, b int) bool {
			if parts[a].size != parts[b].size {
				return parts[a].size < parts[b].size
			}
			return parts[a].r.T0 < parts[b].r.T0
		})
		for _, p := range parts {
			got.Sizes[p.size].Merge(&p.stats)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: partition fold differs from uninterrupted run\nwant: %+v\ngot:  %+v", trial, want, got)
		}
	}
}
