package sweep_test

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// Example runs the paper's flagship sweep in miniature: the pruning
// algorithm for the largest-ID problem on cycles, across sizes and sampled
// identifier permutations, sharded over 4 workers. The aggregates are
// deterministic for the seed no matter the worker count.
func Example() {
	spec := sweep.Spec{
		Seed:    1,
		Sizes:   []int{16, 64},
		Trials:  8,
		Workers: 4,
		Graph:   func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:     func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	for _, s := range res.Sizes {
		fmt.Printf("n=%d trials=%d worstMax=%d worstAvg=%.3f\n",
			s.N, s.Trials, s.WorstMax.Max, s.WorstAvg.Avg)
	}
	// Output:
	// n=16 trials=8 worstMax=8 worstAvg=2.188
	// n=64 trials=8 worstMax=32 worstAvg=2.938
}
