package sweep

import (
	"testing"

	"repro/internal/graph"
)

// TestAtlasCacheSharing pins the cache contract: equal comparable graph
// values share one atlas, pointer-shaped graphs never enter the cache,
// custom memory limits get private atlases, and the entry bound evicts
// oldest-first.
func TestAtlasCacheSharing(t *testing.T) {
	a1 := atlasFor(graph.MustCycle(10), 0)
	a2 := atlasFor(graph.MustCycle(10), 0)
	if a1 != a2 {
		t.Error("equal cycle values must share one cached atlas")
	}
	if atlasFor(graph.MustCycle(10), 4096) == a1 {
		t.Error("custom mem limit must bypass the cache")
	}
	adj, err := graph.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if atlasFor(adj, 0) == atlasFor(adj, 0) {
		t.Error("pointer-shaped graphs must get private atlases")
	}
	// Flood the cache past its entry bound: the first cycle must be gone.
	for n := 20; n < 20+atlasCacheBound+4; n++ {
		atlasFor(graph.MustCycle(n), 0)
	}
	if atlasFor(graph.MustCycle(10), 0) == a1 {
		t.Error("flooded cache did not evict the oldest entry")
	}
}
