package sweep

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"testing"
)

// One predicate decides what is worth backing off on; pin its verdicts.
func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"declared transient", Transient(errors.New("blip")), true},
		{"transient deep in a chain", fmt.Errorf("worker: %w", Transient(errors.New("blip"))), true},
		{"unreachable endpoint", Transient(&UnreachableError{URL: "http://x/store/a", Err: errors.New("refused")}), true},
		{"cancellation", context.Canceled, false},
		{"deadline", fmt.Errorf("scan: %w", context.DeadlineExceeded), false},
		{"vanished root", fmt.Errorf("sweep: store put: %w", fs.ErrNotExist), false},
		{"read-only root", fmt.Errorf("sweep: store put: %w", fs.ErrPermission), false},
		{"corrupt record", &DecodeError{Format: FormatLease, Reason: "garbage"}, false},
		{"unclassified media fault", errors.New("crashed mid-write"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsRetryable(tc.err); got != tc.want {
				t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// Transient(nil) must stay nil, and the wrapper must keep errors.Is/As
// working on the cause.
func TestTransientWrapping(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	inner := &UnreachableError{URL: "http://coord:1/store/run/plan", Err: errors.New("reset")}
	err := Transient(inner)
	var un *UnreachableError
	if !errors.As(err, &un) || un.URL != inner.URL {
		t.Fatalf("UnreachableError lost through Transient: %v", err)
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("not a *TransientError: %v", err)
	}
}

// A scan fault that is final (vanished root) must kill the executor on
// its first occurrence instead of burning the whole retry budget; only
// transient faults are worth the backed-off rescans.
func TestLeaseScanFinalFaultFailsFast(t *testing.T) {
	st := NewMemStore()
	spec := cycleSpec(3, []int{8}, 4, 1)
	faults := 0
	fs1 := &faultingStore{Store: st, onList: func(prefix string) error {
		faults++
		return fmt.Errorf("sweep: store list: %w", fs.ErrNotExist)
	}}
	_, err := RunLeased(context.Background(), spec, fs1, LeaseOptions{
		Worker: "w", StoreRetries: 5, Poll: 1,
	})
	if err == nil || !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("RunLeased over vanished store = %v, want fs.ErrNotExist", err)
	}
	if faults != 1 {
		t.Errorf("final fault was retried %d times; IsRetryable should stop the loop at 1", faults)
	}
}

// faultingStore lets a test fail specific operations of a real store.
type faultingStore struct {
	Store
	onList func(prefix string) error
}

func (s *faultingStore) List(prefix string) ([]string, error) {
	if s.onList != nil {
		if err := s.onList(prefix); err != nil {
			return nil, err
		}
	}
	return s.Store.List(prefix)
}
