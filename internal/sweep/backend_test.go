package sweep

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// implicitFamilySpecs is the backend-equivalence graph grid: every implicit
// family the graph package ships, at sizes small enough for the builder
// baseline.
func implicitFamilySpecs() []struct {
	name  string
	build func(n int, rng *rand.Rand) (graph.Graph, error)
	sizes []int
} {
	return []struct {
		name  string
		build func(n int, rng *rand.Rand) (graph.Graph, error)
		sizes []int
	}{
		{"cycle", func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) }, []int{17, 64}},
		{"path", func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewPath(n) }, []int{16, 41}},
		{"torus", func(_ int, _ *rand.Rand) (graph.Graph, error) { return graph.NewTorus(5, 7) }, []int{35}},
		{"tree", func(_ int, _ *rand.Rand) (graph.Graph, error) { return graph.NewImplicitTree(3, 3) }, []int{40}},
	}
}

// TestBackendsByteIdentical is the cross-backend acceptance hold: for every
// implicit family, algorithm and worker count, the implicit, atlas and
// builder backends produce byte-identical aggregates under equal seeds.
func TestBackendsByteIdentical(t *testing.T) {
	algs := []struct {
		name string
		alg  local.ViewAlgorithm
	}{
		{"pruning", largestid.Pruning{}},
		{"fullview", largestid.FullView{}},
	}
	for _, fam := range implicitFamilySpecs() {
		for _, al := range algs {
			alg := al.alg
			base := Spec{
				Seed:    53,
				Sizes:   fam.sizes,
				Trials:  5,
				Graph:   fam.build,
				Alg:     func(int, ids.Assignment) local.ViewAlgorithm { return alg },
				Workers: 1,
				Backend: BackendBuilder,
			}
			want, err := Run(context.Background(), base)
			if err != nil {
				t.Fatalf("%s/%s builder: %v", fam.name, al.name, err)
			}
			for _, backend := range []Backend{BackendAtlas, BackendBuilder, BackendImplicit} {
				for _, workers := range []int{1, 4, runtime.NumCPU()} {
					spec := base
					spec.Backend = backend
					spec.Workers = workers
					got, err := Run(context.Background(), spec)
					if err != nil {
						t.Fatalf("%s/%s %s workers=%d: %v", fam.name, al.name, backend, workers, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("%s/%s %s workers=%d: aggregates diverge from builder",
							fam.name, al.name, backend, workers)
					}
				}
			}
		}
	}
}

// TestStreamIDsBackendInvariant checks the streaming draw's own identity:
// byte-identical across backends and worker counts, and a genuinely
// different permutation family from the default draw.
func TestStreamIDsBackendInvariant(t *testing.T) {
	base := cycleSpec(59, []int{33, 64}, 6, 1)
	base.StreamIDs = true
	base.Backend = BackendBuilder
	want, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendAtlas, BackendImplicit} {
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			spec := base
			spec.Backend = backend
			spec.Workers = workers
			got, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", backend, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s workers=%d: streaming aggregates diverge", backend, workers)
			}
		}
	}
	buffered := cycleSpec(59, []int{33, 64}, 6, 1)
	res, err := Run(context.Background(), buffered)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(want, res) {
		t.Error("StreamIDs run matches the buffered draw exactly — the toggle is not changing the permutations")
	}
}

// TestCappedAtlasMidSweepIdentical is the materialised-fallback regression:
// an atlas that exhausts a crushingly low memory limit mid-sweep (kernels
// marking vertices unserved, the engine degrading to the builder) must still
// produce byte-identical tables, including against the implicit backend.
func TestCappedAtlasMidSweepIdentical(t *testing.T) {
	want, err := Run(context.Background(), cycleSpec(61, []int{96}, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{512, 2048, 16384} {
		capped := cycleSpec(61, []int{96}, 8, 2)
		capped.AtlasMemLimit = limit
		got, err := Run(context.Background(), capped)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("limit %d: capped-atlas sweep diverged", limit)
		}
	}
	implicit := cycleSpec(61, []int{96}, 8, 2)
	implicit.Backend = BackendImplicit
	got, err := Run(context.Background(), implicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("implicit sweep diverged from the default-atlas sweep")
	}
}

// TestParseBackend covers the name table and the typed unknown error.
func TestParseBackend(t *testing.T) {
	for _, ok := range []string{"", "atlas", "builder", "implicit"} {
		if _, err := ParseBackend(ok); err != nil {
			t.Errorf("ParseBackend(%q): %v", ok, err)
		}
	}
	var unknown *UnknownBackendError
	if _, err := ParseBackend("csr"); !errors.As(err, &unknown) {
		t.Fatalf("ParseBackend(csr) = %v, want *UnknownBackendError", err)
	} else if unknown.Name != "csr" || !strings.Contains(err.Error(), "implicit") {
		t.Fatalf("unknown-backend error carries %+v: %v", unknown, err)
	}
}

// TestBackendValidation covers the spec-level conflicts and the typed
// implicit-unsupported refusal.
func TestBackendValidation(t *testing.T) {
	gnp := cycleSpec(67, []int{24}, 2, 1)
	gnp.Backend = BackendImplicit
	gnp.Graph = func(n int, rng *rand.Rand) (graph.Graph, error) { return graph.NewGNP(n, 0.2, rng) }
	gnp.Verify = nil
	var unsupported *ImplicitUnsupportedError
	if _, err := Run(context.Background(), gnp); !errors.As(err, &unsupported) {
		t.Fatalf("implicit over GNP = %v, want *ImplicitUnsupportedError", err)
	} else if unsupported.N != 24 || len(unsupported.Qualifying) == 0 || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unsupported error carries %+v: %v", unsupported, err)
	}

	conflict := cycleSpec(67, []int{12}, 1, 1)
	conflict.NoAtlas = true
	conflict.Backend = BackendImplicit
	if _, err := Run(context.Background(), conflict); err == nil {
		t.Fatal("NoAtlas + implicit backend accepted")
	}

	badName := cycleSpec(67, []int{12}, 1, 1)
	badName.Backend = Backend("fast")
	var unknown *UnknownBackendError
	if _, err := Run(context.Background(), badName); !errors.As(err, &unknown) {
		t.Fatalf("unknown backend through Run = %v, want *UnknownBackendError", err)
	}

	streamExhaustive := Spec{
		Seed:       71,
		Sizes:      []int{4},
		Exhaustive: true,
		StreamIDs:  true,
		Graph:      func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:        func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
	}
	if _, err := Run(context.Background(), streamExhaustive); err == nil {
		t.Fatal("StreamIDs + Exhaustive accepted")
	}

	streamAssign := cycleSpec(71, []int{8}, 2, 1)
	streamAssign.StreamIDs = true
	streamAssign.Assign = func(_, n, _ int, rng *rand.Rand) (ids.Assignment, error) {
		return ids.Random(n, rng), nil
	}
	if _, err := Run(context.Background(), streamAssign); err == nil {
		t.Fatal("StreamIDs + Assign accepted")
	}
}
