package sweep

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// runShards executes the spec as m independent shard runs — each round-
// tripped through the binary codec to simulate the process boundary — and
// merges them with MergeResults.
func runShards(t *testing.T, spec Spec, m int, workersOf func(i int) int) *Result {
	t.Helper()
	parts := make([]*Result, m)
	for i := 0; i < m; i++ {
		s := spec
		s.Shard = Shard{Index: i, Count: m}
		s.Workers = workersOf(i)
		res, err := Run(context.Background(), s)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
		var buf bytes.Buffer
		if err := EncodeResult(&buf, res); err != nil {
			t.Fatalf("encode shard %d/%d: %v", i, m, err)
		}
		decoded, err := DecodeResult(&buf)
		if err != nil {
			t.Fatalf("decode shard %d/%d: %v", i, m, err)
		}
		parts[i] = decoded
	}
	merged, err := MergeResults(parts...)
	if err != nil {
		t.Fatalf("merge %d shards: %v", m, err)
	}
	return merged
}

// TestShardMergeIdenticalSampled is the tentpole acceptance at the engine
// level: m shard processes + merge are byte-identical to a single-process
// sampled run, for m in {1, 2, 4}, across shard-local worker counts.
func TestShardMergeIdenticalSampled(t *testing.T) {
	spec := cycleSpec(42, []int{16, 33, 64}, 9, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 4} {
		got := runShards(t, spec, m, func(i int) int { return 1 + i%3 })
		if !reflect.DeepEqual(want, got) {
			t.Errorf("m=%d: shard+merge diverges from single process\nwant: %+v\ngot:  %+v", m, want, got)
		}
	}
}

// TestShardMergeIdenticalExhaustive: the same guarantee for full n!
// enumeration — rank blocks partition across processes like trials do.
func TestShardMergeIdenticalExhaustive(t *testing.T) {
	spec := exhaustiveSpec([]int{5, 6}, 2)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 4} {
		got := runShards(t, spec, m, func(i int) int { return 1 + i })
		if !reflect.DeepEqual(want, got) {
			t.Errorf("m=%d: exhaustive shard+merge diverges from single process", m)
		}
	}
}

// TestShardMergeMoreShardsThanTrials: degenerate slicing — more shards
// than trials leaves some shards empty; the merge must still be exact.
func TestShardMergeMoreShardsThanTrials(t *testing.T) {
	spec := cycleSpec(3, []int{8}, 2, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := runShards(t, spec, 5, func(int) int { return 2 })
	if !reflect.DeepEqual(want, got) {
		t.Errorf("empty-shard merge diverges:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestMergeResultsValidation pins the mismatch errors.
func TestMergeResultsValidation(t *testing.T) {
	if _, err := MergeResults(); err == nil {
		t.Error("empty merge accepted")
	}
	a := &Result{Sizes: []SizeStats{{N: 8}}}
	b := &Result{Sizes: []SizeStats{{N: 8}, {N: 16}}}
	if _, err := MergeResults(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	c := &Result{Sizes: []SizeStats{{N: 9}}}
	if _, err := MergeResults(a, c); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestMergeResultsDoesNotMutateInputs: merging must deep-copy histograms,
// not alias the shard files' slices.
func TestMergeResultsDoesNotMutateInputs(t *testing.T) {
	spec := cycleSpec(11, []int{12}, 4, 1)
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]int64(nil), res.Sizes[0].Hist...)
	merged, err := MergeResults(res, res)
	if err != nil {
		t.Fatal(err)
	}
	merged.Sizes[0].Hist[0] += 1000
	if !reflect.DeepEqual(res.Sizes[0].Hist, snapshot) {
		t.Error("MergeResults aliased an input histogram")
	}
	if merged.Sizes[0].Trials != 2*res.Sizes[0].Trials {
		t.Errorf("double merge trials = %d, want %d", merged.Sizes[0].Trials, 2*res.Sizes[0].Trials)
	}
}
