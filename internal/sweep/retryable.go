package sweep

// Error classification for retry loops: one predicate — IsRetryable —
// decides what is worth backing off on, shared by the lease executors'
// StoreRetries path (lease.go) and the RetryStore client wrapper
// (httpstore.go). Before this file each retry site had its own ad-hoc
// idea of "transient"; now a store implementation marks a failure as
// transient by wrapping it in *TransientError, and everything else is
// classified by type: cancellation, missing/permission faults and corrupt
// records are final, unclassified media faults are presumed transient
// (retrying a fault that turns out permanent only costs bounded time —
// the retry budgets stay small — while giving up on a blip costs a worker
// death the supervisor has to absorb).

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
)

// TransientError marks a failure as worth backing off and retrying: the
// operation may succeed verbatim on a later attempt (a network blip, a
// busy endpoint, a 5xx). It is the positive signal IsRetryable looks for
// first; wrap with Transient.
type TransientError struct {
	// Err is the underlying failure.
	Err error
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("sweep: transient fault: %v", e.Err)
}

func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a retryable fault; nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// UnreachableError reports a store endpoint that could not be reached or
// would not answer: connection failures, request timeouts, and 5xx
// responses from an HTTPStore all carry one, naming the offending URL so
// a CLI failure report (internal/cli) can print where the network broke.
// It is always wrapped in *TransientError by the HTTP client — an
// unreachable endpoint is the textbook retryable fault.
type UnreachableError struct {
	// URL is the request URL that failed.
	URL string
	// Err is the transport or status failure.
	Err error
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("sweep: store endpoint %s unreachable: %v", e.URL, e.Err)
}

func (e *UnreachableError) Unwrap() error { return e.Err }

// IsRetryable reports whether a store operation's failure is worth a
// backed-off retry of the same operation. The classification:
//
//   - *TransientError anywhere in the chain: yes, by declaration;
//   - context cancellation or deadline: no — the caller is being told to
//     stop, not the medium failing;
//   - fs.ErrNotExist / fs.ErrPermission: no — a vanished or read-only
//     store does not heal by retrying (the lease protocol treats it as a
//     worker death the supervisor counts);
//   - *DecodeError: no — corrupt bytes re-read identically;
//   - anything else: yes — an unclassified media fault is presumed
//     transient, preserving the lease loop's long-standing behavior of
//     riding out faults it cannot name.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) {
		return false
	}
	var de *DecodeError
	if errors.As(err, &de) {
		return false
	}
	return true
}
