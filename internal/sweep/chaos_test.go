package sweep

// The chaos suite is the lease protocol's correctness argument made
// executable: whatever combination of worker kills, steals, speculative
// duplicates, replayed completions and torn store writes a scenario throws
// at a run, the surviving records must still collect to the bytes of a
// single uninterrupted Run. Scenarios are seeded and self-contained — a
// failure names its seed in the subtest name, so
//
//	go test -run 'TestChaosLeaseEquivalence/seed7' ./internal/sweep/
//
// replays exactly the failing schedule-independent scenario (worker
// counts, kill points, fault periods and delays all derive from the seed;
// only goroutine interleaving varies, which the protocol must tolerate by
// design). The deterministic protocol tests alongside pin each recovery
// mechanism — steal, speculation, adoption — individually.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLeasedStealFromStraggler pins the steal path: a slow worker claims
// the whole trial space, a fast worker arriving late finds the free pool
// empty and must take the straggler's tail — and the merge is unharmed.
func TestLeasedStealFromStraggler(t *testing.T) {
	spec := cycleSpec(21, []int{9}, 32, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	claimed := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	var slowErr error
	go func() {
		defer wg.Done()
		_, slowErr = RunLeased(context.Background(), spec, st, LeaseOptions{
			Worker:         "slow",
			GrainsPerSize:  8,
			MaxLeaseGrains: 8, // claim everything at once: nothing left but stealing
			Throttle: func(Block) {
				once.Do(func() { close(claimed) })
				time.Sleep(4 * time.Millisecond)
			},
		})
	}()
	<-claimed
	fast, err := RunLeased(context.Background(), spec, st, LeaseOptions{
		Worker:        "fast",
		GrainsPerSize: 8,
		Poll:          time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fast worker: %v", err)
	}
	wg.Wait()
	if slowErr != nil {
		t.Fatalf("slow worker: %v", slowErr)
	}
	if fast.Steals == 0 {
		t.Errorf("fast worker never stole: %+v", fast)
	}
	got, err := CollectLeased(st, "leaserun", mustPlanOf(spec))
	if err != nil {
		t.Fatalf("CollectLeased: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("stolen run differs from direct run\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestLeasedSpeculateOnStraggler pins speculation: when the only remaining
// work is a single in-flight grain, an idle worker re-executes it rather
// than waiting forever, and the duplicate completion changes nothing.
func TestLeasedSpeculateOnStraggler(t *testing.T) {
	spec := cycleSpec(22, []int{8}, 6, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	claimed := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	var slowErr error
	go func() {
		defer wg.Done()
		_, slowErr = RunLeased(context.Background(), spec, st, LeaseOptions{
			Worker:        "slow",
			GrainsPerSize: 1, // the whole size is one grain: unstealable
			Throttle: func(Block) {
				once.Do(func() { close(claimed) })
				time.Sleep(30 * time.Millisecond)
			},
		})
	}()
	<-claimed
	fast, err := RunLeased(context.Background(), spec, st, LeaseOptions{
		Worker:         "fast",
		GrainsPerSize:  1,
		Poll:           time.Millisecond,
		SpeculateScans: 2,
	})
	if err != nil {
		t.Fatalf("fast worker: %v", err)
	}
	wg.Wait()
	if slowErr != nil {
		t.Fatalf("slow worker: %v", slowErr)
	}
	if fast.Speculated == 0 {
		t.Errorf("fast worker never speculated: %+v", fast)
	}
	got, err := CollectLeased(st, "leaserun", mustPlanOf(spec))
	if err != nil {
		t.Fatalf("CollectLeased: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("speculated run differs from direct run\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestLeasedAdoptExpiredLease pins adoption: a lease whose heartbeat froze
// (its worker crashed without cleaning up) is expired after the observer's
// patience and its remainder returns to the free pool.
func TestLeasedAdoptExpiredLease(t *testing.T) {
	spec := cycleSpec(23, []int{10}, 24, 1)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	// A crashed worker's leftover claim: covers the whole space, Beat
	// frozen forever. RunLeased cleans its own record up even on error, so
	// the crash is simulated by planting the record directly.
	plan := mustPlanOf(spec)
	dead := &Lease{PlanSum: planSum(plan), Worker: "dead", SizeIdx: 0, T0: 0, T1: 24, Next: 0, Seq: 1}
	if err := ensureLeasePlan(st, "leaserun", &leasePlan{Plan: plan, Grains: 6}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeLease(&buf, dead); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("leaserun/lease/dead", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	stats, err := RunLeased(context.Background(), spec, st, LeaseOptions{
		Worker:        "healer",
		GrainsPerSize: 6,
		Poll:          time.Millisecond,
		ExpireScans:   3,
	})
	if err != nil {
		t.Fatalf("healer: %v", err)
	}
	if stats.Adopted == 0 {
		t.Errorf("healer never adopted the dead lease: %+v", stats)
	}
	got, err := CollectLeased(st, "leaserun", plan)
	if err != nil {
		t.Fatalf("CollectLeased: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("adopted run differs from direct run\nwant: %+v\ngot:  %+v", want, got)
	}
}

// chaosScenario is everything a seed determines about one chaos run.
type chaosScenario struct {
	spec       Spec
	grains     int
	tornPeriod int  // tear every nth done/-write (0: no faults)
	replay     bool // re-publish completions under a different worker id
	waves      [][]chaosWorker
}

type chaosWorker struct {
	killAfter int // cancel the worker's context after this many grains (0: immortal)
	delay     time.Duration
}

// scenarioFor derives a full scenario from a seed. The last wave is always
// clean — immortal workers, faults off — so every scenario terminates.
func scenarioFor(seed int64) chaosScenario {
	rng := rand.New(rand.NewSource(seed))
	nsizes := 1 + rng.Intn(2)
	sizes := make([]int, nsizes)
	for i := range sizes {
		sizes[i] = 6 + rng.Intn(9)
	}
	sc := chaosScenario{
		spec:       cycleSpec(seed, sizes, 12+rng.Intn(21), 2),
		grains:     3 + rng.Intn(6),
		tornPeriod: rng.Intn(4), // 0 or tear every 1st..3rd write
		replay:     rng.Intn(2) == 1,
	}
	waves := 2 + rng.Intn(3)
	for w := 0; w < waves; w++ {
		last := w == waves-1
		n := 2 + rng.Intn(3)
		wave := make([]chaosWorker, n)
		for i := range wave {
			wave[i].delay = time.Duration(rng.Intn(1500)) * time.Microsecond
			if !last && rng.Intn(2) == 0 {
				wave[i].killAfter = 1 + rng.Intn(5)
			}
		}
		sc.waves = append(sc.waves, wave)
	}
	return sc
}

// TestChaosLeaseEquivalence is the headline harness: every seeded scenario
// of kills, duplicates, steals and torn writes must end in a store whose
// CollectLeased equals the single-process Run byte for byte.
func TestChaosLeaseEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaosScenario(t, scenarioFor(seed))
		})
	}
}

func runChaosScenario(t *testing.T, sc chaosScenario) {
	t.Helper()
	want, err := Run(context.Background(), sc.spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	if sc.tornPeriod > 0 {
		// Tear every tornPeriod-th completion write — but with a bounded
		// per-object budget (one or two failures), so a write eventually
		// lands however unlucky the schedule: an unbounded fault would
		// starve immortal workers forever, which is a test-harness bug,
		// not a protocol finding.
		var mu sync.Mutex
		writes := 0
		doomed := make(map[string]int)
		st.FaultPuts(func(name string, data []byte) ([]byte, error) {
			if !strings.Contains(name, "/done/") {
				return data, nil
			}
			mu.Lock()
			defer mu.Unlock()
			writes++
			if budget, hit := doomed[name]; hit {
				if budget > 0 {
					doomed[name] = budget - 1
					return data[:len(data)/2], fmt.Errorf("chaos: torn write of %s", name)
				}
				return data, nil
			}
			if writes%sc.tornPeriod == 0 {
				doomed[name] = writes % 2 // this failure, plus maybe the retry
				return data[:len(data)/2], fmt.Errorf("chaos: torn write of %s", name)
			}
			return data, nil
		})
	}
	plan := mustPlanOf(sc.spec)
	for w, wave := range sc.waves {
		if w == len(sc.waves)-1 {
			st.FaultPuts(nil) // the last wave always lands its writes
		}
		var wg sync.WaitGroup
		errs := make([]error, len(wave))
		kills := make([]bool, len(wave))
		for i, cw := range wave {
			wg.Add(1)
			go func(i int, cw chaosWorker) {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				grains := 0
				var mu sync.Mutex
				_, err := RunLeased(ctx, sc.spec, st, LeaseOptions{
					Worker:         fmt.Sprintf("wave%d-w%d", w, i),
					GrainsPerSize:  sc.grains,
					Poll:           time.Millisecond,
					ExpireScans:    4,
					SpeculateScans: 2,
					Throttle: func(Block) {
						mu.Lock()
						grains++
						doomed := cw.killAfter > 0 && grains >= cw.killAfter
						mu.Unlock()
						if doomed {
							kills[i] = true
							cancel()
						}
						time.Sleep(cw.delay)
					},
				})
				errs[i] = err
			}(i, cw)
		}
		wg.Wait()
		for i, err := range errs {
			// A killed worker must die with its context's error; a worker
			// that outlived its kill budget (someone else finished the work
			// first) must exit cleanly.
			if kills[i] && err == nil {
				t.Fatalf("wave %d worker %d: killed but returned nil", w, i)
			}
			if !kills[i] && err != nil {
				t.Fatalf("wave %d worker %d: %v", w, i, err)
			}
		}
		if sc.replay {
			replayCompletions(t, st)
		}
		if got, err := CollectLeased(st, "leaserun", plan); err == nil {
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("wave %d: chaos run differs from direct run\nwant: %+v\ngot:  %+v", w, want, got)
			}
			return
		}
	}
	// The final wave is clean and immortal; reaching here means it exited
	// without covering the space — a protocol bug.
	_, err = CollectLeased(st, "leaserun", plan)
	t.Fatalf("store never became collectable: %v", err)
}

// replayCompletions models a duplicate publisher: existing completion
// records re-Put under another worker's name. The stats payload is
// untouched, so the merge must not care.
func replayCompletions(t *testing.T, st *MemStore) {
	t.Helper()
	names, err := st.List("leaserun/done/")
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if i%3 != 0 {
			continue
		}
		data, err := st.Get(name)
		if err != nil {
			continue
		}
		c, derr := DecodeCompletion(bytes.NewReader(data))
		if derr != nil {
			continue
		}
		c.Worker = "replayer"
		var buf bytes.Buffer
		if err := EncodeCompletion(&buf, c); err != nil {
			t.Fatal(err)
		}
		if err := st.Put(name, buf.Bytes()); err != nil {
			// Faulted stores may refuse the replay; that is chaos working.
			continue
		}
	}
}
