package sweep

import (
	"fmt"
	"math"

	"repro/internal/measure"
)

// maxHistRadius bounds the radius the pooled histogram will materialise a
// bucket for: one int64 bucket per radius up to 2^31 is already a 16 GiB
// histogram, and every realisable radius is at most the graph's diameter —
// so crossing this bound means a corrupted radius, not a big sweep.
const maxHistRadius = math.MaxInt32

// AggregateOverflowError reports a trial whose fold would overflow the
// streaming aggregate: a histogram bucket index past maxHistRadius, or an
// int64 total that would wrap. Typed so sweep drivers can distinguish the
// aggregate ceiling from algorithm failures.
type AggregateOverflowError struct {
	// Radius is the offending bucket index, or -1 when the totals overflow.
	Radius int
	// Total and Add are the int64 accumulator and addend at the wrap point
	// (zero when Radius is the offender).
	Total, Add int64
}

func (e *AggregateOverflowError) Error() string {
	if e.Radius >= 0 {
		return fmt.Sprintf("radius %d exceeds the %d histogram bucket bound", e.Radius, maxHistRadius)
	}
	return fmt.Sprintf("folding %d into aggregate total %d overflows int64", e.Add, e.Total)
}

// checkFold validates one trial's fold into the aggregate before addTrial
// commits it: the histogram stays addressable and the integer totals stay
// exact. Radii are bounded by graph diameters in every sweep Run plans, so
// a failure here indicates corrupted inputs; the guard exists so the
// corruption surfaces as a typed error instead of silent wraparound.
func (s *SizeStats) checkFold(maxR int, sum measure.Summary) error {
	if maxR > maxHistRadius {
		return &AggregateOverflowError{Radius: maxR}
	}
	if int64(sum.Sum) > math.MaxInt64-s.TotalSum {
		return &AggregateOverflowError{Radius: -1, Total: s.TotalSum, Add: int64(sum.Sum)}
	}
	if int64(sum.Max) > math.MaxInt64-s.TotalMax {
		return &AggregateOverflowError{Radius: -1, Total: s.TotalMax, Add: int64(sum.Max)}
	}
	return nil
}

// checkFoldWeighted is checkFold for a weight-w fold (a quotient
// representative settling its whole orbit). The weighted addends can be
// enormous (weight is up to n!), so the guards divide instead of multiply
// — and the histogram buckets, safe from overflow at weight 1 by the
// totals' guards, need their own per-bucket checks here.
func (s *SizeStats) checkFoldWeighted(maxR int, sum measure.Summary, hist []int64, weight int) error {
	if weight == 1 {
		return s.checkFold(maxR, sum)
	}
	if maxR > maxHistRadius {
		return &AggregateOverflowError{Radius: maxR}
	}
	w := int64(weight)
	if sum.Sum > 0 && w > (math.MaxInt64-s.TotalSum)/int64(sum.Sum) {
		return &AggregateOverflowError{Radius: -1, Total: s.TotalSum, Add: int64(sum.Sum)}
	}
	if sum.Max > 0 && w > (math.MaxInt64-s.TotalMax)/int64(sum.Max) {
		return &AggregateOverflowError{Radius: -1, Total: s.TotalMax, Add: int64(sum.Max)}
	}
	if s.Trials > math.MaxInt-weight {
		return &AggregateOverflowError{Radius: -1, Total: int64(s.Trials), Add: w}
	}
	for r, c := range hist {
		if c == 0 {
			continue
		}
		var cur int64
		if r < len(s.Hist) {
			cur = s.Hist[r]
		}
		if w > (math.MaxInt64-cur)/c {
			return &AggregateOverflowError{Radius: r, Total: cur, Add: c}
		}
	}
	return nil
}

// SizeStats is the streaming aggregate of every trial executed at one sweep
// size. It is O(max radius) in memory — not O(trials) — because trials fold
// into integer totals, a pooled radius histogram, and the summaries of the
// two extremal trials. All folds are commutative and tie-broken by trial
// index, so merged shards produce bit-identical statistics at any worker
// count.
// The JSON tags define the stable serialized shape the versioned codec
// (codec.go) writes into shard and checkpoint files; renaming one is a
// format change and must bump the codec version.
type SizeStats struct {
	// N is the number of vertices at this sweep size.
	N int `json:"n"`
	// Trials counts completed trials (smaller than requested after a
	// cancellation).
	Trials int `json:"trials"`
	// Failures counts trials whose Verify hook rejected the outputs.
	Failures int `json:"failures,omitempty"`
	// TotalSum is Σ over trials of Σ_v r(v). Integer, hence
	// order-independent; MeanAvg derives from it exactly.
	TotalSum int64 `json:"totalSum"`
	// TotalMax is Σ over trials of max_v r(v).
	TotalMax int64 `json:"totalMax"`
	// WorstAvg summarises the trial maximising the per-trial radius sum —
	// the paper's worst-case average measure over the sampled permutations.
	WorstAvg measure.Summary `json:"worstAvg"`
	// WorstAvgTrial is the index of that trial (lowest index on ties).
	WorstAvgTrial int `json:"worstAvgTrial"`
	// WorstMax summarises the trial maximising the per-trial maximum radius
	// — the classic measure over the sampled permutations.
	WorstMax measure.Summary `json:"worstMax"`
	// WorstMaxTrial is the index of that trial (lowest index on ties).
	WorstMaxTrial int `json:"worstMaxTrial"`
	// BestAvg summarises the trial minimising the per-trial radius sum —
	// the most favourable permutation seen. Exhaustive sweeps turn it into
	// the exact best case over ALL assignments.
	BestAvg measure.Summary `json:"bestAvg"`
	// BestAvgTrial is the index of that trial (lowest index on ties).
	BestAvgTrial int `json:"bestAvgTrial"`
	// Hist pools the radius histogram over all vertices of all trials:
	// Hist[r] executions decided at radius exactly r.
	Hist []int64 `json:"hist"`
}

// MeanAvg is the empirical expectation of the average radius over trials.
func (s *SizeStats) MeanAvg() float64 {
	if s.Trials == 0 || s.N == 0 {
		return 0
	}
	return float64(s.TotalSum) / float64(int64(s.Trials)*int64(s.N))
}

// MeanMax is the empirical expectation of the maximum radius over trials.
func (s *SizeStats) MeanMax() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.TotalMax) / float64(s.Trials)
}

// Verified reports whether every completed trial passed verification.
func (s *SizeStats) Verified() bool { return s.Failures == 0 }

// Quantile returns the q-quantile of the pooled radius distribution, with
// the same order-statistic interpolation as measure.Quantile.
func (s *SizeStats) Quantile(q float64) float64 { return HistQuantile(s.Hist, q) }

// HistQuantile returns the q-quantile of the multiset encoded by hist
// (hist[r] = number of values equal to r), interpolating between order
// statistics exactly like measure.Quantile. It is shared by the sweep
// aggregates and the exact-enumeration statistics so the two layers report
// comparable shapes.
func HistQuantile(hist []int64, q float64) float64 {
	var count int64
	for _, c := range hist {
		count += c
	}
	return quantileHist(hist, count, q)
}

// addTrial folds one completed trial into the aggregate. hist is the
// trial's own radius histogram; sum its Summary.
func (s *SizeStats) addTrial(trial int, sum measure.Summary, hist []int64, verifyFailed bool) {
	s.addTrialWeighted(trial, sum, hist, verifyFailed, 1)
}

// addTrialWeighted folds one executed trial that stands for weight
// identical trials — a quotient's canonical representative settling its
// whole orbit. Counts, totals and histogram mass scale by weight; the
// extremal summaries do not (every orbit member realises the same
// summary, and trial is already the lowest full rank achieving it), so a
// weighted fold commutes with Merge exactly like weight unit folds.
func (s *SizeStats) addTrialWeighted(trial int, sum measure.Summary, hist []int64, verifyFailed bool, weight int) {
	wasEmpty := s.Trials == 0
	s.Trials += weight
	if verifyFailed {
		s.Failures += weight
	}
	w := int64(weight)
	s.TotalSum += w * int64(sum.Sum)
	s.TotalMax += w * int64(sum.Max)
	s.Hist = growHist(s.Hist, len(hist))
	for r, c := range hist {
		s.Hist[r] += w * c
	}
	if wasEmpty {
		s.WorstAvg, s.WorstAvgTrial = sum, trial
		s.WorstMax, s.WorstMaxTrial = sum, trial
		s.BestAvg, s.BestAvgTrial = sum, trial
		return
	}
	if worseSum(sum, trial, s.WorstAvg, s.WorstAvgTrial) {
		s.WorstAvg, s.WorstAvgTrial = sum, trial
	}
	if worseMax(sum, trial, s.WorstMax, s.WorstMaxTrial) {
		s.WorstMax, s.WorstMaxTrial = sum, trial
	}
	if betterSum(sum, trial, s.BestAvg, s.BestAvgTrial) {
		s.BestAvg, s.BestAvgTrial = sum, trial
	}
}

// Merge folds another partial aggregate for the same size into s. Commutes
// with addTrial in any interleaving: integer totals add, histograms add,
// and the extremal-trial selection depends only on (value, trial index) —
// so worker shards, cross-process shard files and checkpoint records all
// merge to the bytes a single uninterrupted run produces. o is not
// modified, and s shares no mutable state with it afterwards.
func (s *SizeStats) Merge(o *SizeStats) {
	if o.Trials == 0 {
		return
	}
	if s.Trials == 0 {
		n := s.N // worker shards don't know the size; keep the caller's
		*s = *o
		s.N = n
		// Deep-copy the histogram: o's shard may be reused by the caller.
		s.Hist = append([]int64(nil), o.Hist...)
		return
	}
	s.Trials += o.Trials
	s.Failures += o.Failures
	s.TotalSum += o.TotalSum
	s.TotalMax += o.TotalMax
	s.Hist = growHist(s.Hist, len(o.Hist))
	for r, c := range o.Hist {
		s.Hist[r] += c
	}
	if worseSum(o.WorstAvg, o.WorstAvgTrial, s.WorstAvg, s.WorstAvgTrial) {
		s.WorstAvg, s.WorstAvgTrial = o.WorstAvg, o.WorstAvgTrial
	}
	if worseMax(o.WorstMax, o.WorstMaxTrial, s.WorstMax, s.WorstMaxTrial) {
		s.WorstMax, s.WorstMaxTrial = o.WorstMax, o.WorstMaxTrial
	}
	if betterSum(o.BestAvg, o.BestAvgTrial, s.BestAvg, s.BestAvgTrial) {
		s.BestAvg, s.BestAvgTrial = o.BestAvg, o.BestAvgTrial
	}
}

// worseSum reports whether trial a (summary sa) beats trial b as the
// worst-by-radius-sum trial. Integer comparison with lowest-index
// tie-breaking keeps the selection independent of fold order.
func worseSum(sa measure.Summary, a int, sb measure.Summary, b int) bool {
	if sa.Sum != sb.Sum {
		return sa.Sum > sb.Sum
	}
	return a < b
}

// worseMax is worseSum for the worst-by-maximum-radius trial.
func worseMax(sa measure.Summary, a int, sb measure.Summary, b int) bool {
	if sa.Max != sb.Max {
		return sa.Max > sb.Max
	}
	return a < b
}

// betterSum is worseSum mirrored: the best-by-radius-sum trial, lowest
// index on ties.
func betterSum(sa measure.Summary, a int, sb measure.Summary, b int) bool {
	if sa.Sum != sb.Sum {
		return sa.Sum < sb.Sum
	}
	return a < b
}

// growHist returns h zero-extended to length need, doubling capacity on
// reallocation: radius histograms grow every time a trial sets a new
// record-high radius, and exact-fit appends would pay two allocations per
// record instead of an amortised O(1).
func growHist(h []int64, need int) []int64 {
	if need <= len(h) {
		return h
	}
	if need <= cap(h) {
		old := len(h)
		h = h[:need]
		for i := old; i < need; i++ {
			h[i] = 0
		}
		return h
	}
	c := 2 * cap(h)
	if c < need {
		c = need
	}
	nh := make([]int64, need, c)
	copy(nh, h)
	return nh
}

// summarizeHist computes the measure.Summary of one trial from its radius
// histogram in O(max radius), matching measure.Summarize (which sorts the
// raw radii) exactly.
func summarizeHist(hist []int64) measure.Summary {
	var s measure.Summary
	var count int64
	for r, c := range hist {
		if c == 0 {
			continue
		}
		count += c
		s.Sum += r * int(c)
		s.Max = r
	}
	s.N = int(count)
	if count == 0 {
		return s
	}
	s.Avg = float64(s.Sum) / float64(count)
	s.Median = interpHist(hist, count, 0.5)
	s.P90 = interpHist(hist, count, 0.9)
	return s
}

// quantileHist is measure.Quantile evaluated against a histogram instead of
// a raw value slice: linear interpolation between the floor and ceiling
// order statistics of position q*(count-1).
func quantileHist(hist []int64, count int64, q float64) float64 {
	if count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return float64(kthHist(hist, 0))
	}
	if q >= 1 {
		return float64(kthHist(hist, count-1))
	}
	return interpHist(hist, count, q)
}

// interpHist is quantileHist's interior case (0 < q < 1), fetching both
// bracketing order statistics in a single histogram scan — summarizeHist
// calls it twice per trial, so the scan count matters on the sweep hot
// path.
func interpHist(hist []int64, count int64, q float64) float64 {
	pos := q * float64(count-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	frac := pos - float64(lo)
	vlo, vhi := kthHist2(hist, lo, hi)
	return float64(vlo)*(1-frac) + float64(vhi)*frac
}

// kthHist2 returns the klo-th and khi-th (klo <= khi) 0-based order
// statistics of the histogram's multiset in one pass.
func kthHist2(hist []int64, klo, khi int64) (int, int) {
	var c int64
	vlo, found := len(hist)-1, false
	for r, cnt := range hist {
		c += cnt
		if !found && c > klo {
			vlo, found = r, true
		}
		if c > khi {
			return vlo, r
		}
	}
	return vlo, len(hist) - 1
}

// kthHist returns the 0-based k-th order statistic of the histogram's
// multiset.
func kthHist(hist []int64, k int64) int {
	var c int64
	for r, cnt := range hist {
		c += cnt
		if c > k {
			return r
		}
	}
	return len(hist) - 1
}
