package sweep

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
)

func exhaustiveSpec(sizes []int, workers int) Spec {
	return Spec{
		Sizes:      sizes,
		Workers:    workers,
		Exhaustive: true,
		Graph:      func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:        func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
	}
}

// TestExhaustiveDeterministicAcrossWorkerCounts is the enumeration mode's
// core guarantee: the full-rank-space aggregates are byte-identical at any
// worker count (and with the atlas/kernel fast paths toggled off, since
// enumeration rides the same execution substrate as sampling).
func TestExhaustiveDeterministicAcrossWorkerCounts(t *testing.T) {
	sizes := []int{5, 6, 7}
	base, err := Run(context.Background(), exhaustiveSpec(sizes, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got, err := Run(context.Background(), exhaustiveSpec(sizes, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: exhaustive aggregates differ\nseq: %+v\ngot: %+v", workers, base, got)
		}
	}
	for _, noAtlas := range []bool{false, true} {
		spec := exhaustiveSpec(sizes, 3)
		spec.NoAtlas = noAtlas
		spec.NoKernels = !noAtlas
		got, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("noAtlas=%v: %v", noAtlas, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("noAtlas=%v noKernels=%v: aggregates differ from fast path", noAtlas, !noAtlas)
		}
	}
}

// TestExhaustiveCoversEveryRankOnce is the block-partition guarantee: across
// any worker layout, every rank in [0, n!) is executed exactly once and the
// trial coordinate carries exactly its unranked permutation.
func TestExhaustiveCoversEveryRankOnce(t *testing.T) {
	const n = 6
	f, err := ids.Factorial(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		visits := make([]int32, f)
		var mismatches atomic.Int32
		spec := exhaustiveSpec([]int{n}, workers)
		spec.Observe = func(_, trial int, _ graph.Graph, a ids.Assignment, _ *local.Result) {
			atomic.AddInt32(&visits[trial], 1)
			want := ids.UnrankInto(make([]int, n), uint64(trial))
			if !reflect.DeepEqual(a, want) {
				mismatches.Add(1)
			}
		}
		if _, err := Run(context.Background(), spec); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := mismatches.Load(); got != 0 {
			t.Errorf("workers=%d: %d trials ran a permutation other than their rank's", workers, got)
		}
		for rank, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: rank %d visited %d times", workers, rank, v)
			}
		}
	}
}

// TestExhaustiveMatchesBruteForce folds every permutation through the view
// engine by hand and compares all streaming aggregates — totals, extremal
// trials (including the new BestAvg), pooled histogram.
func TestExhaustiveMatchesBruteForce(t *testing.T) {
	const n = 6
	res, err := Run(context.Background(), exhaustiveSpec([]int{n}, 4))
	if err != nil {
		t.Fatal(err)
	}
	c := graph.MustCycle(n)
	f, _ := ids.Factorial(n)
	var (
		want      SizeStats
		buf       = make([]int, n)
		histSized []int64
	)
	want.N = n
	for rank := uint64(0); rank < f; rank++ {
		a := ids.UnrankInto(buf, rank)
		r, err := local.RunView(c, a, largestid.Pruning{})
		if err != nil {
			t.Fatal(err)
		}
		s := measure.Summarize(r.Radii)
		histSized = histSized[:0]
		for _, rad := range r.Radii {
			for len(histSized) <= rad {
				histSized = append(histSized, 0)
			}
			histSized[rad]++
		}
		want.addTrial(int(rank), s, histSized, false)
	}
	got := res.Sizes[0]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("exhaustive sweep diverges from brute force\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestExhaustiveSpecValidation pins the misuse errors: Assign and Trials
// conflict with enumeration, and sizes beyond ids.MaxRankN are rejected.
func TestExhaustiveSpecValidation(t *testing.T) {
	spec := exhaustiveSpec([]int{5}, 1)
	spec.Assign = func(_, n, _ int, rng *rand.Rand) (ids.Assignment, error) {
		return ids.Random(n, rng), nil
	}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("Exhaustive with Assign accepted")
	}
	spec = exhaustiveSpec([]int{5}, 1)
	spec.Trials = 3
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("Exhaustive with Trials accepted")
	}
	spec = exhaustiveSpec([]int{ids.MaxRankN + 1}, 1)
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("size beyond MaxRankN accepted")
	}
}

// TestExhaustiveCancellation: a pre-cancelled context must abort with the
// partial-results error, not enumerate 7! permutations.
func TestExhaustiveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, exhaustiveSpec([]int{7}, 2))
	if err == nil {
		t.Fatal("cancelled exhaustive run returned no error")
	}
	if res == nil {
		t.Fatal("cancelled run returned nil partial result")
	}
}
