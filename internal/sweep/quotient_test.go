package sweep

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// quotientSpec builds an exhaustive spec over the given family with the
// quotient toggled by q. The pruning algorithm depends only on the
// port-forgetting labeled ball, so it is invariant under every declared
// automorphism group — the precondition for bit-identical quotient folds.
func quotientSpec(sizes []int, workers int, q bool,
	mk func(n int) (graph.Graph, error)) Spec {
	return Spec{
		Sizes:      sizes,
		Workers:    workers,
		Exhaustive: true,
		Quotient:   q,
		Graph:      func(n int, _ *rand.Rand) (graph.Graph, error) { return mk(n) },
		Alg:        func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
	}
}

// quotientFamilies enumerates every family declaring automorphisms, at
// sizes small enough that the full n! fold stays cheap to compute.
func quotientFamilies() []struct {
	name  string
	sizes []int
	mk    func(n int) (graph.Graph, error)
} {
	return []struct {
		name  string
		sizes []int
		mk    func(n int) (graph.Graph, error)
	}{
		{"cycle", []int{5, 6, 7}, func(n int) (graph.Graph, error) { return graph.NewCycle(n) }},
		// 3x3 is the smallest legal torus (dims >= 3); a non-square one would
		// need n >= 12, where the full-fold baseline is too slow for a test.
		{"torus", []int{9}, func(n int) (graph.Graph, error) { return graph.NewTorus(3, 3) }},
		{"complete", []int{5, 6}, func(n int) (graph.Graph, error) { return graph.NewCompleteGraph(n) }},
		{"tree", []int{7}, func(n int) (graph.Graph, error) { return graph.NewImplicitTree(2, 2) }},
	}
}

// TestQuotientMatchesFullFold is the tentpole's core guarantee: folding
// only canonical representatives with orbit weight reproduces the full n!
// aggregates bit for bit — every SizeStats field, including the pooled
// histogram, the float summaries and the extremal trial indices (which a
// quotient run reports in full-rank coordinates) — at any worker count.
func TestQuotientMatchesFullFold(t *testing.T) {
	for _, fam := range quotientFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			full, err := Run(context.Background(), quotientSpec(fam.sizes, 1, false, fam.mk))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				quot, err := Run(context.Background(), quotientSpec(fam.sizes, workers, true, fam.mk))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(full, quot) {
					t.Errorf("workers=%d: quotient fold diverges from full fold\nfull:     %+v\nquotient: %+v",
						workers, full, quot)
				}
			}
		})
	}
}

// TestSoakQuotientFullFoldN10: the fold equivalence at the largest size a
// full n! baseline is still affordable — 3,628,800 permutations against
// 181,440 representatives. Every SizeStats field must match bit for bit,
// including the quantiles and the extremal best/worst trial indices the
// smaller cases also pin. Excluded from -short alongside the other soaks.
func TestSoakQuotientFullFoldN10(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10 full fold enumerates 10! permutations; skipped in -short")
	}
	mk := func(n int) (graph.Graph, error) { return graph.NewCycle(n) }
	full, err := Run(context.Background(), quotientSpec([]int{10}, 0, false, mk))
	if err != nil {
		t.Fatal(err)
	}
	quot, err := Run(context.Background(), quotientSpec([]int{10}, 0, true, mk))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, quot) {
		t.Errorf("n=10: quotient fold diverges from full fold\nfull:     %+v\nquotient: %+v", full, quot)
	}
}

// TestQuotientShardMerge: slicing the canonical-rank space into static
// shards and merging the partials reproduces the unsharded (and hence the
// full-space) bytes, exactly like sharding the full rank space does.
func TestQuotientShardMerge(t *testing.T) {
	mk := func(n int) (graph.Graph, error) { return graph.NewCycle(n) }
	sizes := []int{6, 7}
	full, err := Run(context.Background(), quotientSpec(sizes, 2, false, mk))
	if err != nil {
		t.Fatal(err)
	}
	const m = 3
	parts := make([]*Result, m)
	for i := 0; i < m; i++ {
		spec := quotientSpec(sizes, 2, true, mk)
		spec.Shard = Shard{Index: i, Count: m}
		if parts[i], err = Run(context.Background(), spec); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := MergeResults(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, merged) {
		t.Errorf("merged quotient shards diverge from full fold\nfull:   %+v\nmerged: %+v", full, merged)
	}
}

// TestQuotientLeased: a quotient run through the lease protocol — two
// concurrent executors pulling grains from one store — collects to the
// same bytes as the full-space single-process run. Completion records
// carry the fold weight, so the collector's owed-trials accounting works
// in orbit-weighted units.
func TestQuotientLeased(t *testing.T) {
	spec := quotientSpec([]int{6}, 2, true, func(n int) (graph.Graph, error) { return graph.NewCycle(n) })
	want, err := Run(context.Background(), quotientSpec([]int{6}, 1, false, func(n int) (graph.Graph, error) { return graph.NewCycle(n) }))
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	_, got := runLeasedAll(t, spec, st, 2, func(i int) LeaseOptions {
		return LeaseOptions{Worker: []string{"a", "b"}[i], GrainsPerSize: 3}
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("leased quotient run diverges from full fold\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestQuotientCoversEachOrbitOnce: the executed representatives are
// exactly the canonical assignments, each visited once, and the weighted
// representative count recovers n! — the n!/|G| work reduction is real,
// not a re-labeling of the same trials.
func TestQuotientCoversEachOrbitOnce(t *testing.T) {
	const n = 6
	c := graph.MustCycle(n)
	q, err := ids.NewQuotient(n, c.Automorphisms().Generators, c.Automorphisms().Order, false)
	if err != nil {
		t.Fatal(err)
	}
	visits := make(map[int]int)
	spec := quotientSpec([]int{n}, 1, true, func(n int) (graph.Graph, error) { return graph.NewCycle(n) })
	spec.Observe = func(_, trial int, _ graph.Graph, a ids.Assignment, _ *local.Result) {
		visits[trial]++
		if !q.IsCanonical(a) {
			t.Errorf("trial %d executed non-canonical assignment %v", trial, a)
		}
	}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if uint64(len(visits)) != q.Count() {
		t.Fatalf("executed %d representatives, quotient has %d", len(visits), q.Count())
	}
	for trial, v := range visits {
		if v != 1 {
			t.Errorf("representative trial %d visited %d times", trial, v)
		}
	}
	f, _ := ids.Factorial(n)
	if got := q.Count() * q.Order(); got != f {
		t.Errorf("weighted representative count %d != %d!=%d", got, n, f)
	}
}

// TestQuotientSpecValidation: Quotient is only meaningful on the
// exhaustive path, and the conflict surfaces as the typed
// *SpecConflictError the CLI diagnosis layer renders.
func TestQuotientSpecValidation(t *testing.T) {
	spec := quotientSpec([]int{6}, 1, true, func(n int) (graph.Graph, error) { return graph.NewCycle(n) })
	spec.Exhaustive = false
	spec.Trials = 4
	_, err := Run(context.Background(), spec)
	var ce *SpecConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("Quotient without Exhaustive: got %v, want *SpecConflictError", err)
	}
	if !reflect.DeepEqual(ce.Fields, []string{"Quotient", "Exhaustive"}) {
		t.Errorf("conflict fields = %v", ce.Fields)
	}
}

// TestQuotientUnsupportedFamily: a family that does not declare
// automorphisms (GNP) fails with the typed decline naming the families
// that do qualify — mirroring the implicit backend's unsupported error.
func TestQuotientUnsupportedFamily(t *testing.T) {
	spec := quotientSpec([]int{6}, 1, true, func(n int) (graph.Graph, error) {
		return graph.NewGNP(6, 0.5, rand.New(rand.NewSource(1)))
	})
	_, err := Run(context.Background(), spec)
	var qe *QuotientUnsupportedError
	if !errors.As(err, &qe) {
		t.Fatalf("quotient over GNP: got %v, want *QuotientUnsupportedError", err)
	}
	if len(qe.Qualifying) == 0 {
		t.Error("decline does not name the qualifying families")
	}
	if qe.N != 6 {
		t.Errorf("decline N = %d, want 6", qe.N)
	}
}

// TestQuotientCheckpointResume: a quotient run interrupted after a prefix
// of blocks resumes through Spec.Done to the same bytes — checkpointing
// operates in representative-rank space and composes with the weighted
// fold unchanged.
func TestQuotientCheckpointResume(t *testing.T) {
	mk := func(n int) (graph.Graph, error) { return graph.NewCycle(n) }
	want, err := Run(context.Background(), quotientSpec([]int{6, 7}, 1, true, mk))
	if err != nil {
		t.Fatal(err)
	}
	// First pass: only a leading slice of each size's representative space.
	first := quotientSpec([]int{6, 7}, 1, true, mk)
	plan := mustPlanOf(first)
	counts, err := plan.Counts()
	if err != nil {
		t.Fatal(err)
	}
	// Counts are already in representative-rank space under Quotient; Done
	// lists are carved out of the same space.
	done := make([][]TrialRange, len(counts))
	for i, c := range counts {
		done[i] = []TrialRange{{T0: 0, T1: c / 2}}
	}
	second := quotientSpec([]int{6, 7}, 1, true, mk)
	second.Done = done
	rest, err := Run(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	third := quotientSpec([]int{6, 7}, 1, true, mk)
	for i := range done {
		done[i] = []TrialRange{{T0: done[i][0].T1, T1: counts[i]}}
	}
	third.Done = done
	head, err := Run(context.Background(), third)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeResults(head, rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, merged) {
		t.Errorf("resumed quotient run diverges\nwant:   %+v\nmerged: %+v", want, merged)
	}
}
