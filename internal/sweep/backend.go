package sweep

// This file is the backend selector: how workers source per-vertex balls.
// The default materialised atlas is the right call up to the atlas memory
// cap; past it — sweeps at n = 10^6..10^8 — the implicit backend serves the
// same skeletons synthesized from closed forms in O(workers) memory.

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/graph"
)

// Backend names a ball-sourcing strategy for sweep workers. The zero value
// is automatic selection (the shared atlas, or the ball builder under
// NoAtlas); results are byte-identical across all backends for every seed,
// size and worker count — the choice trades memory against per-trial work,
// never bytes.
type Backend string

const (
	// BackendAuto picks the default: the shared per-size atlas, degraded to
	// the builder when Spec.NoAtlas is set.
	BackendAuto Backend = ""
	// BackendAtlas materialises one shared graph.BallAtlas per size; all
	// workers serve views and kernels from it. O(n · ball) memory per size.
	BackendAtlas Backend = "atlas"
	// BackendBuilder runs every vertex on the per-worker ball builder — no
	// shared state, the baseline the other backends are proven against.
	BackendBuilder Backend = "builder"
	// BackendImplicit synthesizes skeleton windows from the graph's closed
	// forms (graph.Implicit) in one per-worker scratch ball — O(workers ·
	// ball) memory total, no adjacency, no CSR — which is what lets sweeps
	// reach n = 10^7 and beyond. Every size's graph must implement
	// graph.Implicit with a comparable dynamic type.
	BackendImplicit Backend = "implicit"
)

// ParseBackend validates a user-facing backend name ("" selects auto).
// Unknown names return an *UnknownBackendError.
func ParseBackend(s string) (Backend, error) {
	switch b := Backend(s); b {
	case BackendAuto, BackendAtlas, BackendBuilder, BackendImplicit:
		return b, nil
	default:
		return BackendAuto, &UnknownBackendError{Name: s}
	}
}

// UnknownBackendError reports a backend name outside the known set.
type UnknownBackendError struct {
	Name string
}

func (e *UnknownBackendError) Error() string {
	return fmt.Sprintf("sweep: unknown backend %q (valid: %q, %q, %q, or empty for auto)",
		e.Name, BackendAtlas, BackendBuilder, BackendImplicit)
}

// ImplicitUnsupportedError reports a graph the implicit backend cannot
// serve: its type does not implement graph.Implicit (or is not comparable,
// which the per-worker source cache requires). Qualifying lists the
// families that do qualify, for the CLI's remediation message.
type ImplicitUnsupportedError struct {
	// Graph is the offending instance's Go type (fmt %T).
	Graph string
	// N is the instance's vertex count.
	N int
	// Qualifying lists the implicit families shipped by the graph package.
	Qualifying []string
}

func (e *ImplicitUnsupportedError) Error() string {
	return fmt.Sprintf("sweep: implicit backend cannot serve %s (n=%d): the graph family must provide closed-form layers; qualifying families: %s",
		e.Graph, e.N, strings.Join(e.Qualifying, ", "))
}

// resolveBackend validates Spec.Backend against the spec's toggles and the
// built graphs, and returns the effective (non-auto) backend.
func resolveBackend(spec *Spec, graphs []graph.Graph) (Backend, error) {
	b, err := ParseBackend(string(spec.Backend))
	if err != nil {
		return BackendAuto, err
	}
	if spec.NoAtlas && b != BackendAuto && b != BackendBuilder {
		return BackendAuto, fmt.Errorf("sweep: NoAtlas conflicts with Backend %q; drop one of the two", b)
	}
	if b == BackendAuto {
		if spec.NoAtlas {
			return BackendBuilder, nil
		}
		return BackendAtlas, nil
	}
	if b == BackendImplicit {
		for _, g := range graphs {
			if _, ok := g.(graph.Implicit); !ok || !reflect.TypeOf(g).Comparable() {
				return BackendAuto, &ImplicitUnsupportedError{
					Graph:      fmt.Sprintf("%T", g),
					N:          g.N(),
					Qualifying: graph.ImplicitFamilies(),
				}
			}
		}
	}
	return b, nil
}
