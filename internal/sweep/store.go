package sweep

// This file abstracts the MERGE layer's medium: every shard, checkpoint,
// lease and completion record the engine persists goes through a small
// Store interface instead of bare *os.File paths. Two implementations
// ship: DirStore, the local-directory store every CLI run uses (atomic
// temp+rename writes, so a kill mid-Put never leaves a torn object), and
// MemStore, an in-memory store whose fault hooks let the chaos suite
// inject torn and failed writes deterministically. An S3-style object
// store slots in behind the same four methods later.
//
// Store names are '/'-separated paths of safe segments (letters, digits,
// '.', '_', '-'); the lease protocol (lease.go) builds its run layout out
// of them:
//
//	<run>/plan            – the run's plan identity + grain schedule
//	<run>/lease/<worker>  – one mutable claim record per executor
//	<run>/done/<s>-<t0>   – immutable per-grain completion records
//
// Writers may race: Put is last-write-wins, and the lease protocol is
// designed so racing writers only ever duplicate work, never corrupt it.

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the persistence interface of distributed sweeps. Implementations
// must be safe for concurrent use by multiple goroutines (and, for shared
// media like directories, by multiple processes).
type Store interface {
	// Put atomically replaces the named object with data. Readers never
	// observe a torn object from a correct implementation; a failed Put may
	// leave the previous object or — on faulty media — garbage a reader
	// must reject by content (the codec's job).
	Put(name string, data []byte) error
	// Get returns the named object's bytes. A missing object reports an
	// error satisfying errors.Is(err, fs.ErrNotExist).
	Get(name string) ([]byte, error)
	// List returns, in ascending order, the names of all objects whose
	// name starts with prefix.
	List(prefix string) ([]string, error)
	// Delete removes the named object; deleting a missing object is not an
	// error.
	Delete(name string) error
}

// validStoreName enforces the name grammar shared by every implementation:
// non-empty '/'-separated segments of [A-Za-z0-9._-], no empty segments, no
// "." or ".." (a DirStore must never escape its root).
func validStoreName(name string) error {
	if name == "" {
		return fmt.Errorf("sweep: empty store name")
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("sweep: store name %q has an invalid path segment", name)
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '.', r == '_', r == '-':
			default:
				return fmt.Errorf("sweep: store name %q contains %q; use letters, digits, '.', '_', '-'", name, r)
			}
		}
	}
	return nil
}

// DirStore is the local-directory Store: objects are files under a root,
// written atomically (temp + rename in the target directory), so a SIGKILL
// at any instant leaves either the previous object or the new one — never
// a torn file. Multiple processes sharing the directory cooperate safely.
type DirStore struct {
	root string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, fmt.Errorf("sweep: open dir store: %w", err)
	}
	return &DirStore{root: root}, nil
}

func (s *DirStore) path(name string) string {
	return filepath.Join(s.root, filepath.FromSlash(name))
}

// Put writes the object atomically: temp file in the final directory,
// synced, renamed over the destination.
func (s *DirStore) Put(name string, data []byte) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	// A vanished root must fail the write, not be silently recreated:
	// MkdirAll would happily resurrect an empty store and strand this
	// object in it, hiding from the writer that every other record — the
	// run's plan, its completions — is gone.
	if _, err := os.Stat(s.root); err != nil {
		return fmt.Errorf("sweep: store put %s: root: %w", name, err)
	}
	path := s.path(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("sweep: store put %s: %w", name, err)
	}
	if err := atomicWriteFile(path, data); err != nil {
		return fmt.Errorf("sweep: store put %s: %w", name, err)
	}
	return nil
}

// Get reads the object; missing objects satisfy errors.Is(_, fs.ErrNotExist).
func (s *DirStore) Get(name string) ([]byte, error) {
	if err := validStoreName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(s.path(name))
}

// List walks the root and returns every object name with the prefix, in
// ascending order.
func (s *DirStore) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrently deleted entry is not an error for a scan —
			// but the ROOT vanishing is a store fault, not an empty store:
			// a lease executor must die visibly rather than conclude no
			// work was ever done and replan the world.
			if os.IsNotExist(err) && path != s.root {
				return nil
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: store list %q: %w", prefix, err)
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes the object; missing objects are fine.
func (s *DirStore) Delete(name string) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	if err := os.Remove(s.path(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sweep: store delete %s: %w", name, err)
	}
	return nil
}

// atomicWriteFile writes data to path via a temp file in the same
// directory, synced and renamed into place — the write either fully
// happens or leaves the previous content. Shared by DirStore.Put and the
// checkpoint layer's SaveFile.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// PutFault intercepts one MemStore.Put: it returns the bytes actually
// stored (possibly truncated — a torn write) and the error reported to the
// writer. Returning (data, nil) passes the write through unchanged;
// returning (nil, err) stores nothing and fails the Put; returning
// (prefix, err) models a crash mid-write on non-atomic media: garbage
// lands AND the writer learns it failed.
type PutFault func(name string, data []byte) ([]byte, error)

// MemStore is the in-memory Store the test suites run the lease protocol
// against: no filesystem, deterministic fault injection. Safe for
// concurrent use.
type MemStore struct {
	mu      sync.Mutex
	objects map[string][]byte
	onPut   PutFault
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// FaultPuts installs (or, with nil, removes) the Put interceptor. The hook
// runs under the store's lock — keep it cheap and non-reentrant.
func (s *MemStore) FaultPuts(f PutFault) {
	s.mu.Lock()
	s.onPut = f
	s.mu.Unlock()
}

// Put stores a copy of data under name, subject to the installed fault.
func (s *MemStore) Put(name string, data []byte) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stored, err := data, error(nil)
	if s.onPut != nil {
		stored, err = s.onPut(name, data)
	}
	if stored != nil {
		s.objects[name] = append([]byte(nil), stored...)
	}
	return err
}

// Get returns a copy of the object's bytes, or fs.ErrNotExist.
func (s *MemStore) Get(name string) ([]byte, error) {
	if err := validStoreName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[name]
	if !ok {
		return nil, fmt.Errorf("sweep: store object %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// List returns all names with the prefix, ascending.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objects))
	for name := range s.objects {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes the object; missing objects are fine.
func (s *MemStore) Delete(name string) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.objects, name)
	s.mu.Unlock()
	return nil
}
