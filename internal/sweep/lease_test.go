package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// runLeasedAll drives workers cooperating executors of spec over st until
// the run completes, returning their summed stats and the collected result.
func runLeasedAll(t *testing.T, spec Spec, st Store, workers int, optsOf func(i int) LeaseOptions) (LeaseStats, *Result) {
	t.Helper()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total LeaseStats
	)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := optsOf(i)
			stats, err := RunLeased(context.Background(), spec, st, opts)
			errs[i] = err
			mu.Lock()
			total.Add(stats)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	prefix := optsOf(0).Prefix
	if prefix == "" {
		prefix = "leaserun"
	}
	got, err := CollectLeased(st, prefix, mustPlanOf(spec))
	if err != nil {
		t.Fatalf("CollectLeased: %v", err)
	}
	return total, got
}

// A single leased executor must reproduce the uninterrupted engine bytes,
// sampled and exhaustive alike.
func TestLeasedSingleWorkerIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"sampled", cycleSpec(42, []int{8, 13, 21}, 15, 2)},
		{"exhaustive", exhaustiveSpec([]int{4, 5}, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			st := NewMemStore()
			stats, got := runLeasedAll(t, tc.spec, st, 1, func(int) LeaseOptions {
				return LeaseOptions{Worker: "solo", GrainsPerSize: 4}
			})
			if !reflect.DeepEqual(want, got) {
				t.Errorf("leased aggregates differ from direct run\nwant: %+v\ngot:  %+v", want, got)
			}
			if stats.Grains == 0 || stats.Claims == 0 {
				t.Errorf("solo worker did no work: %+v", stats)
			}
		})
	}
}

// Concurrent unequal-speed executors over one store must still merge to
// the single-process bytes, whatever interleaving the scheduler picks.
func TestLeasedConcurrentWorkersIdentical(t *testing.T) {
	spec := cycleSpec(7, []int{8, 12, 17}, 24, 2)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	delays := []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond}
	stats, got := runLeasedAll(t, spec, st, 3, func(i int) LeaseOptions {
		return LeaseOptions{
			Worker:        fmt.Sprintf("w%d", i),
			GrainsPerSize: 6,
			Poll:          time.Millisecond,
			Throttle:      func(Block) { time.Sleep(delays[i]) },
		}
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("leased aggregates differ from direct run\nwant: %+v\ngot:  %+v", want, got)
	}
	if stats.Claims == 0 {
		t.Errorf("no claims recorded: %+v", stats)
	}
}

// Static leases are the degenerate i-of-m schedule: m executors, run even
// sequentially (no one to steal from), tile the grain set exactly once and
// collect to the uninterrupted bytes.
func TestLeasedStaticScheduleIdentical(t *testing.T) {
	spec := cycleSpec(11, []int{9, 14}, 22, 2)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	const m = 3
	st := NewMemStore()
	var total LeaseStats
	for i := 0; i < m; i++ {
		stats, err := RunLeased(context.Background(), spec, st, LeaseOptions{
			Worker:        fmt.Sprintf("static%d", i),
			GrainsPerSize: 5,
			Static:        Shard{Index: i, Count: m},
		})
		if err != nil {
			t.Fatalf("static worker %d: %v", i, err)
		}
		total.Add(stats)
	}
	if total.Steals != 0 || total.Speculated != 0 {
		t.Errorf("static schedule stole or speculated: %+v", total)
	}
	got, err := CollectLeased(st, "leaserun", mustPlanOf(spec))
	if err != nil {
		t.Fatalf("CollectLeased: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("static leased aggregates differ from direct run\nwant: %+v\ngot:  %+v", want, got)
	}
}

// A worker killed mid-run loses nothing: a fresh worker resumes from the
// store's completion records and the final merge is byte-identical.
func TestLeasedResumeAfterKill(t *testing.T) {
	spec := cycleSpec(3, []int{8, 11}, 18, 2)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	ctx, cancel := context.WithCancel(context.Background())
	grains := 0
	_, err = RunLeased(ctx, spec, st, LeaseOptions{
		Worker:        "victim",
		GrainsPerSize: 6,
		Throttle: func(Block) {
			if grains++; grains == 3 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run: want error")
	}
	if _, err := CollectLeased(st, "leaserun", mustPlanOf(spec)); err == nil {
		t.Fatal("collect of a half-dead run: want IncompleteError")
	}
	stats, err := RunLeased(context.Background(), spec, st, LeaseOptions{
		Worker:        "rescuer",
		GrainsPerSize: 6,
	})
	if err != nil {
		t.Fatalf("rescuer: %v", err)
	}
	if stats.Grains == 0 {
		t.Errorf("rescuer did no work: %+v", stats)
	}
	got, err := CollectLeased(st, "leaserun", mustPlanOf(spec))
	if err != nil {
		t.Fatalf("CollectLeased: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed aggregates differ from direct run\nwant: %+v\ngot:  %+v", want, got)
	}
}

// RunLeased owns the schedule: specs or options that fight it are rejected
// up front.
func TestRunLeasedValidation(t *testing.T) {
	base := cycleSpec(1, []int{6}, 4, 1)
	st := NewMemStore()
	cases := []struct {
		name string
		spec Spec
		st   Store
		opts LeaseOptions
	}{
		{"nil store", base, nil, LeaseOptions{Worker: "w"}},
		{"missing worker", base, st, LeaseOptions{}},
		{"bad worker name", base, st, LeaseOptions{Worker: "a/b c"}},
		{"bad prefix", base, st, LeaseOptions{Worker: "w", Prefix: "../up"}},
		{"bad static shard", base, st, LeaseOptions{Worker: "w", Static: Shard{Index: 3, Count: 2}}},
		{"spec shard set", func() Spec { s := base; s.Shard = Shard{Index: 0, Count: 2}; return s }(), st, LeaseOptions{Worker: "w"}},
		{"spec done set", func() Spec { s := base; s.Done = [][]TrialRange{{{T0: 0, T1: 1}}}; return s }(), st, LeaseOptions{Worker: "w"}},
		{"spec onblock set", func() Spec { s := base; s.OnBlock = func(Block, *SizeStats) {}; return s }(), st, LeaseOptions{Worker: "w"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunLeased(context.Background(), tc.spec, tc.st, tc.opts); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// Executors must agree on the run identity: a second worker presenting a
// different plan or grain schedule is turned away.
func TestLeaseRunIdentityMismatch(t *testing.T) {
	spec := cycleSpec(5, []int{6}, 8, 1)
	st := NewMemStore()
	if _, err := RunLeased(context.Background(), spec, st, LeaseOptions{Worker: "a", GrainsPerSize: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunLeased(context.Background(), spec, st, LeaseOptions{Worker: "b", GrainsPerSize: 8}); err == nil {
		t.Fatal("grain schedule mismatch: want error")
	}
	other := cycleSpec(6, []int{6}, 8, 1)
	if _, err := RunLeased(context.Background(), other, st, LeaseOptions{Worker: "c", GrainsPerSize: 4}); err == nil {
		t.Fatal("plan mismatch: want error")
	}
	if _, err := CollectLeased(st, "leaserun", mustPlanOf(other)); err == nil {
		t.Fatal("collect with foreign plan: want error")
	}
}

// CollectLeased is strict: a missing grain is a typed IncompleteError
// naming the gap, an overlapping record a typed OverlapError.
func TestCollectLeasedTypedErrors(t *testing.T) {
	spec := cycleSpec(9, []int{7}, 16, 1)
	st := NewMemStore()
	if _, err := RunLeased(context.Background(), spec, st, LeaseOptions{Worker: "w", GrainsPerSize: 4}); err != nil {
		t.Fatal(err)
	}
	plan := mustPlanOf(spec)

	// Tear a hole: grain [4,8) vanishes.
	if err := st.Delete("leaserun/done/0-4"); err != nil {
		t.Fatal(err)
	}
	var inc *IncompleteError
	_, err := CollectLeased(st, "leaserun", plan)
	if !errors.As(err, &inc) {
		t.Fatalf("gap: want *IncompleteError, got %v", err)
	}
	if inc.N != 7 || !reflect.DeepEqual(inc.Missing, []TrialRange{{T0: 4, T1: 8}}) {
		t.Fatalf("IncompleteError = %+v", inc)
	}

	// Refill the hole with a record that overlaps its neighbour: [4,9)
	// collides with [8,12). Internally valid, so only the merge can
	// reject it.
	forged := &Completion{
		PlanSum: planSum(plan),
		Worker:  "forger",
		Block:   Block{SizeIdx: 0, T0: 4, T1: 9},
		Stats:   SizeStats{N: 7, Trials: 5},
	}
	var buf bytes.Buffer
	if err := EncodeCompletion(&buf, forged); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("leaserun/done/0-4", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var ov *OverlapError
	_, err = CollectLeased(st, "leaserun", plan)
	if !errors.As(err, &ov) {
		t.Fatalf("overlap: want *OverlapError, got %v", err)
	}
	if ov.N != 7 {
		t.Fatalf("OverlapError = %+v", ov)
	}
	if !strings.Contains(ov.Error(), "double-count") {
		t.Fatalf("OverlapError message %q should explain the double-count", ov.Error())
	}
}

// Torn completion records are "absent", not fatal: the scan skips them,
// executors re-run and overwrite them, and the final bytes are unharmed.
func TestLeasedTornWritesRecovered(t *testing.T) {
	spec := cycleSpec(13, []int{8, 10}, 20, 2)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	var mu sync.Mutex
	torn := 0
	st.FaultPuts(func(name string, data []byte) ([]byte, error) {
		if !strings.Contains(name, "/done/") {
			return data, nil
		}
		mu.Lock()
		defer mu.Unlock()
		// Tear every third completion write once; the executor's retry and
		// later re-executions heal each one.
		if torn++; torn%3 == 0 {
			return data[:len(data)/2], errors.New("torn write")
		}
		return data, nil
	})
	stats, got := runLeasedAll(t, spec, st, 2, func(i int) LeaseOptions {
		return LeaseOptions{Worker: fmt.Sprintf("w%d", i), GrainsPerSize: 5, Poll: time.Millisecond}
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("aggregates differ after torn writes\nwant: %+v\ngot:  %+v", want, got)
	}
	if stats.Grains == 0 {
		t.Errorf("no grains executed: %+v", stats)
	}
}

// Lease and completion codecs reject forged structure with typed errors
// and round-trip valid records exactly.
func TestLeaseCodecValidation(t *testing.T) {
	l := &Lease{PlanSum: 99, Worker: "w1", SizeIdx: 1, T0: 4, T1: 12, Next: 8, Beat: 3, Seq: 2}
	var buf bytes.Buffer
	if err := EncodeLease(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLease(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatalf("lease round-trip = %+v, want %+v", got, l)
	}
	badLeases := []Lease{
		{PlanSum: 1, Worker: "", T0: 0, T1: 4, Next: 0},
		{PlanSum: 1, Worker: "w", SizeIdx: -1, T0: 0, T1: 4, Next: 0},
		{PlanSum: 1, Worker: "w", T0: 4, T1: 4, Next: 4},
		{PlanSum: 1, Worker: "w", T0: -1, T1: 4, Next: 0},
		{PlanSum: 1, Worker: "w", T0: 0, T1: 4, Next: 5},
		{PlanSum: 1, Worker: "w", T0: 2, T1: 4, Next: 1},
		{PlanSum: 1, Worker: "w", T0: 0, T1: 4, Next: 0, Beat: -1},
	}
	for i, bad := range badLeases {
		buf.Reset()
		if err := EncodeLease(&buf, &bad); err != nil {
			t.Fatal(err)
		}
		var de *DecodeError
		if _, err := DecodeLease(bytes.NewReader(buf.Bytes())); !errors.As(err, &de) {
			t.Errorf("bad lease %d: want *DecodeError, got %v", i, err)
		}
	}

	c := &Completion{PlanSum: 7, Worker: "w", Block: Block{SizeIdx: 0, T0: 4, T1: 8},
		Stats: SizeStats{N: 5, Trials: 4}}
	buf.Reset()
	if err := EncodeCompletion(&buf, c); err != nil {
		t.Fatal(err)
	}
	gotC, err := DecodeCompletion(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, gotC) {
		t.Fatalf("completion round-trip = %+v, want %+v", gotC, c)
	}
	badComps := []Completion{
		{Block: Block{SizeIdx: -1, T0: 0, T1: 4}, Stats: SizeStats{N: 5, Trials: 4}},
		{Block: Block{SizeIdx: 0, T0: 4, T1: 4}, Stats: SizeStats{N: 5, Trials: 0}},
		{Block: Block{SizeIdx: 0, T0: 0, T1: 4}, Stats: SizeStats{N: 0, Trials: 4}},
		{Block: Block{SizeIdx: 0, T0: 0, T1: 4}, Stats: SizeStats{N: 5, Trials: 3}},
		{Block: Block{SizeIdx: 0, T0: 0, T1: 4}, Stats: SizeStats{N: 5, Trials: 4, Failures: 9}},
	}
	for i, bad := range badComps {
		buf.Reset()
		if err := EncodeCompletion(&buf, &bad); err != nil {
			t.Fatal(err)
		}
		var de *DecodeError
		if _, err := DecodeCompletion(bytes.NewReader(buf.Bytes())); !errors.As(err, &de) {
			t.Errorf("bad completion %d: want *DecodeError, got %v", i, err)
		}
	}
}

func TestGrainHelpers(t *testing.T) {
	cases := []struct{ count, grains, want int }{
		{20, 16, 2}, {16, 16, 1}, {1, 16, 1}, {100, 16, 7}, {5, 100, 1},
	}
	for _, tc := range cases {
		if got := grainSize(tc.count, tc.grains); got != tc.want {
			t.Errorf("grainSize(%d,%d) = %d, want %d", tc.count, tc.grains, got, tc.want)
		}
	}
	aligns := []struct{ t, g, want int }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8}, {7, 3, 9},
	}
	for _, tc := range aligns {
		if got := alignUp(tc.t, tc.g); got != tc.want {
			t.Errorf("alignUp(%d,%d) = %d, want %d", tc.t, tc.g, got, tc.want)
		}
	}
}

// A store fault mid-run — here the DirStore root vanishing under the
// executor — must surface from RunLeased as a typed *WorkerError carrying
// the executor's id, still unwrapping to the store's cause, so a
// supervisor can count worker deaths while callers keep errors.Is working.
func TestLeasedStoreFaultSurfacesWorkerError(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := NewDirStore(root)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	spec := cycleSpec(3, []int{8}, 12, 1)
	opts := LeaseOptions{
		Worker: "doomed", GrainsPerSize: 4, Poll: time.Millisecond,
		Throttle: func(Block) { os.RemoveAll(root) },
	}
	_, err = RunLeased(context.Background(), spec, st, opts)
	if err == nil {
		t.Fatal("RunLeased survived its store's deletion")
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want a *WorkerError in the chain", err)
	}
	if we.Worker != "doomed" {
		t.Fatalf("WorkerError.Worker = %q, want %q", we.Worker, "doomed")
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err chain %v does not unwrap to fs.ErrNotExist", err)
	}
}

// The lease-scan progress snapshot must track coverage from empty through
// complete without joining the run, and count live claims.
func TestLeaseProgressSnapshot(t *testing.T) {
	spec := cycleSpec(11, []int{6, 9}, 8, 1)
	plan := mustPlanOf(spec)
	st := NewMemStore()
	p, err := LeaseProgress(st, "leaserun", plan)
	if err != nil {
		t.Fatalf("LeaseProgress on empty store: %v", err)
	}
	if p.Covered() != 0 || p.Total() != 16 || p.Complete() || p.Workers != 0 {
		t.Fatalf("empty-store progress = %+v", p)
	}
	if _, err := RunLeased(context.Background(), spec, st, LeaseOptions{Worker: "solo", GrainsPerSize: 4}); err != nil {
		t.Fatalf("RunLeased: %v", err)
	}
	p, err = LeaseProgress(st, "leaserun", plan)
	if err != nil {
		t.Fatalf("LeaseProgress: %v", err)
	}
	if !p.Complete() || p.Covered() != 16 {
		t.Fatalf("post-run progress = %+v, want complete 16/16", p)
	}
	for i, want := range []int{6, 9} {
		if p.Sizes[i].N != want || p.Sizes[i].Done != 8 || p.Sizes[i].Total != 8 {
			t.Fatalf("size %d progress = %+v", i, p.Sizes[i])
		}
	}
}
