package sweep

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// FuzzDecodeResult is the codec's robustness contract: arbitrary input
// must either decode cleanly or fail with an error — never panic — and
// anything that decodes must re-encode and re-decode to the identical
// aggregate (including histogram and best-trial fields).
func FuzzDecodeResult(f *testing.F) {
	res, err := Run(context.Background(), cycleSpec(5, []int{8, 11}, 4, 1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte(`{"format":"sweep.result","version":2,"payload":{"sizes":[]}}`))
	f.Add([]byte(`{"format":"sweep.result","version":2,"payload":{}}`))
	f.Add([]byte(`{"format":"sweep.checkpoint","version":2,"payload":{}}`))
	f.Add([]byte(`{`))
	f.Add(bytes.Replace(valid, []byte(`"trials"`), []byte(`"trails"`), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var out bytes.Buffer
		if err := EncodeResult(&out, res); err != nil {
			t.Fatalf("decoded aggregate failed to re-encode: %v", err)
		}
		again, err := DecodeResult(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded aggregate failed to decode: %v", err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("codec round trip not lossless\nfirst:  %+v\nsecond: %+v", res, again)
		}
	})
}

// FuzzDecodeCheckpoint: same contract for the checkpoint record, whose
// payload additionally carries the plan and done-range bookkeeping.
func FuzzDecodeCheckpoint(f *testing.F) {
	spec := cycleSpec(5, []int{8}, 6, 2)
	ck := NewCheckpoint(mustPlanOf(spec))
	spec.OnBlock = func(b Block, partial *SizeStats) {
		// Serialised by the sequential fold below (workers=2 may race, so
		// run single-worker for the seed corpus).
		ck.Fold(b, partial)
	}
	spec.Workers = 1
	if _, err := Run(context.Background(), spec); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"format":"sweep.checkpoint","version":2,"payload":{"plan":{"sizes":[]},"done":[],"sizes":[]}}`))
	f.Add([]byte(`{"format":"sweep.checkpoint","version":2,"payload":{"plan":{"sizes":[4]},"done":[[{"t0":1,"t1":0}]],"sizes":[{"n":4}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeCheckpoint(&out, ck); err != nil {
			t.Fatalf("decoded checkpoint failed to re-encode: %v", err)
		}
		again, err := DecodeCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if !reflect.DeepEqual(ck, again) {
			t.Fatalf("checkpoint round trip not lossless")
		}
	})
}
