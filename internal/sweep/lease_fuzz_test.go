package sweep

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodeLease is the lease record's robustness contract: forged,
// truncated or bit-flipped claim records must either decode cleanly or
// fail with the codec's typed *DecodeError — never panic — and anything
// that decodes must round-trip losslessly. (A replayed stale-but-valid
// record decodes fine by design; the protocol neutralises it with the
// PlanSum check and the Seq fencing token, not the codec.)
func FuzzDecodeLease(f *testing.F) {
	l := &Lease{PlanSum: 0xfeed, Worker: "w0", SizeIdx: 1, T0: 8, T1: 24, Next: 16, Beat: 5, Seq: 3}
	var buf bytes.Buffer
	if err := EncodeLease(&buf, l); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-envelope
	f.Add([]byte(`{"format":"sweep.lease","version":2,"payload":{}}`))
	f.Add([]byte(`{"format":"sweep.lease","version":2,"payload":{"worker":"w","t0":4,"t1":2,"next":3}}`))
	f.Add([]byte(`{"format":"sweep.lease","version":2,"payload":{"worker":"w","t0":0,"t1":4,"next":9}}`))
	f.Add([]byte(`{"format":"sweep.lease","version":2,"payload":{}}`))
	f.Add([]byte(`{"format":"sweep.completion","version":2,"payload":{}}`))
	f.Add(bytes.Replace(valid, []byte(`"next"`), []byte(`"nxet"`), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLease(bytes.NewReader(data))
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("rejection is not a typed *DecodeError: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := EncodeLease(&out, l); err != nil {
			t.Fatalf("decoded lease failed to re-encode: %v", err)
		}
		again, err := DecodeLease(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded lease failed to decode: %v", err)
		}
		if !reflect.DeepEqual(l, again) {
			t.Fatalf("lease round trip not lossless\nfirst:  %+v\nsecond: %+v", l, again)
		}
	})
}

// FuzzDecodeCompletion: same contract for the per-grain completion record,
// whose payload additionally carries an aggregate that must satisfy the
// size invariants and cover exactly the block's trials.
func FuzzDecodeCompletion(f *testing.F) {
	c := &Completion{PlanSum: 0xbeef, Worker: "w1",
		Block: Block{SizeIdx: 0, T0: 4, T1: 8},
		Stats: SizeStats{N: 9, Trials: 4}}
	var buf bytes.Buffer
	if err := EncodeCompletion(&buf, c); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3]) // torn write
	f.Add([]byte(`{"format":"sweep.completion","version":2,"payload":{}}`))
	f.Add([]byte(`{"format":"sweep.completion","version":2,"payload":{"block":{"size":0,"t0":0,"t1":4},"stats":{"n":5,"trials":3}}}`))
	f.Add([]byte(`{"format":"sweep.completion","version":2,"payload":{"block":{"size":0,"t0":0,"t1":4},"stats":{"n":5,"trials":4,"failures":7}}}`))
	f.Add([]byte(`{"format":"sweep.lease","version":2,"payload":{}}`))
	f.Add(bytes.Replace(valid, []byte(`"trials"`), []byte(`"trails"`), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCompletion(bytes.NewReader(data))
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("rejection is not a typed *DecodeError: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := EncodeCompletion(&out, c); err != nil {
			t.Fatalf("decoded completion failed to re-encode: %v", err)
		}
		again, err := DecodeCompletion(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded completion failed to decode: %v", err)
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("completion round trip not lossless\nfirst:  %+v\nsecond: %+v", c, again)
		}
	})
}
