// Package sweep is the shared execution engine for the paper's experiments:
// it turns "(graph generator, permutation source, algorithm) × trials" into
// batched jobs dispatched across a worker pool and streams the results into
// per-size aggregates.
//
// Every experiment in the repository is a sweep over graph sizes × sampled
// identifier permutations, measuring the two running-time measures under
// comparison (max_v r(v) and (Σ_v r(v))/n). The package factors out the
// loop all of them used to hand-roll, and adds what a full-size table needs.
// It is organised as three explicit layers:
//
//   - PLAN (plan.go): a serializable description of the work — seed, sizes,
//     trial space, and a contiguous shard range. Sampled trial indices and
//     exhaustive permutation ranks partition identically, so a Plan means
//     the same thing to every process that holds it.
//   - EXECUTE (execute.go, this file's Run): the worker pool running one
//     plan shard. Each worker owns a local.Runner, so ball builders, label
//     slices and result buffers are recycled across every trial the worker
//     executes — steady-state sweeps allocate almost nothing. Trials are
//     chunked into contiguous blocks (Spec.Workers bounds the pool, default
//     GOMAXPROCS) and fold into O(sizes)-memory SizeStats — integer totals,
//     extremal-trial summaries, pooled radius histograms — never into
//     per-trial slices.
//   - MERGE (merge.go, codec.go, checkpoint.go): exported deterministic
//     aggregate merging plus a stable versioned codec, so partial
//     aggregates survive process boundaries: shard files from m processes
//     merge to the bytes a single process produces, and a checkpoint file
//     resumes an interrupted sweep from its last completed block.
//
// Determinism is the package contract: each (size, trial) derives its own
// rng seed from the sweep seed and its coordinates alone, and all folds
// commute (ties broken by trial index), so a given seed produces
// bit-identical results at any worker count, across any shard partition,
// and through any kill/resume sequence. Cancellation is prompt: the context
// is polled between vertices, trials and blocks; a cancelled Run returns
// the partial aggregates and a wrapped context error.
package sweep

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// Spec describes one sharded permutation sweep.
type Spec struct {
	// Seed drives all randomness. Equal seeds reproduce results exactly,
	// independent of Workers.
	Seed int64
	// Sizes is the n sweep; one SizeStats is produced per entry.
	Sizes []int
	// Trials is the number of sampled permutations per size (default 1).
	// Ignored under Exhaustive.
	Trials int
	// Exhaustive replaces sampling with full enumeration: every size runs
	// ALL n! identifier permutations exactly once, trial t executing the
	// rank-t permutation in lexicographic factorial-number-system order
	// (ids.Rank/Unrank). The rank space splits into the same contiguous
	// blocks sampled trials use — each worker unranks its block's
	// first permutation and walks lexicographic successors in place — so
	// the atlas, the kernel fast path and the streaming aggregation all
	// apply unchanged and results stay byte-identical at any worker
	// count. Seed then only affects Graph construction; Trials and Assign
	// must be unset. Sizes are capped at ids.MaxRankN, and wall-clock is
	// the caller's business: bound enormous enumerations with the context.
	Exhaustive bool
	// Quotient, valid only with Exhaustive, compresses full enumeration by
	// the graph's symmetry: every size's graph must declare its
	// automorphism group (graph.Automorphisms), trial t executes the
	// rank-t CANONICAL representative — the lexicographic minimum of its
	// orbit (ids.CanonicalUnrank order) — and folds with weight |Aut| at
	// the representative's FULL lexicographic rank. The action on
	// injective assignments is free and the observed radius multiset is
	// orbit-invariant, so the merged aggregates (totals, histograms, the
	// extremal trials and their indices) are bit-for-bit identical to the
	// full n! enumeration while executing only n!/|Aut| trials per size.
	// Graphs that do not declare a group fail with
	// *QuotientUnsupportedError, mirroring the implicit backend's decline.
	Quotient bool
	// Shard restricts the run to the contiguous slice Shard.Index of
	// Shard.Count of every size's trial space (sampled indices or
	// exhaustive ranks alike). The zero value runs everything. Partial
	// aggregates from all Shard.Count processes merge (MergeResults) to
	// bytes identical to an unsharded run.
	Shard Shard
	// Done lists, per size index, ascending non-overlapping trial ranges a
	// previous run already executed (a checkpoint's record): planned blocks
	// cover the shard's complement of Done, and the returned aggregates
	// contain only the newly executed trials — merge them with the
	// checkpoint's to recover the full shard. Empty means nothing is done.
	Done [][]TrialRange
	// OnBlock, when set, observes every fully completed block together with
	// the block's own partial aggregate (checkpoint writers fold these).
	// Called from worker goroutines — must be safe for concurrent use — and
	// partial is only valid during the call. Blocks cut short by
	// cancellation are not reported: their trials still appear in the
	// returned partial Result, but a resume re-executes them.
	OnBlock func(b Block, partial *SizeStats)
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// MaxRadius overrides the engine's safety cap when positive.
	MaxRadius int
	// Graph builds the size-n instance. The rng is seeded from (Seed, size
	// index) so random families are reproducible. Required.
	Graph func(n int, rng *rand.Rand) (graph.Graph, error)
	// Assign produces the identifier assignment of one trial; the rng is
	// seeded from (Seed, size index, trial). sizeIdx indexes Sizes, which
	// disambiguates duplicate size values. Defaults to uniformly random
	// permutations.
	Assign func(sizeIdx, n, trial int, rng *rand.Rand) (ids.Assignment, error)
	// Alg instantiates the algorithm for one trial (assignment-dependent
	// algorithms like Cole-Vishkin's ForMaxID need a). Required.
	Alg func(n int, a ids.Assignment) local.ViewAlgorithm
	// Verify optionally checks the outputs of every trial. Failures are
	// counted in SizeStats.Failures — or abort the sweep when Strict is
	// set. Must be safe for concurrent use.
	Verify func(g graph.Graph, a ids.Assignment, res *local.Result) error
	// Strict promotes a Verify failure into a sweep-aborting error.
	Strict bool
	// Observe, when set, sees every trial's raw execution from inside the
	// worker (res, its slices, and a are only valid during the call — the
	// worker reuses the assignment buffer across the trials of a batch).
	// Must be
	// safe for concurrent use: trials run on different workers, so writes
	// must be keyed by the full (sizeIdx, trial) coordinate — or guarded by
	// a trial check, or the sweep restricted to Trials = 1. A slot keyed by
	// sizeIdx alone races between the trials that share the size.
	Observe func(sizeIdx, trial int, g graph.Graph, a ids.Assignment, res *local.Result)
	// NoAtlas disables the shared per-size ball atlas. By default the sweep
	// builds one graph.BallAtlas per size and every worker serves its views
	// from it, turning the per-trial inner loop from BFS + adjacency
	// rebuild into relabel + decide; ball structure is permutation-
	// invariant, so results are byte-identical either way.
	NoAtlas bool
	// NoKernels pins atlas-backed runs to the per-vertex view path even for
	// algorithms implementing local.Kernel. By default a kernel-capable
	// algorithm decides every vertex in one flat pass over the atlas
	// skeleton; results are byte-identical either way, so the toggle exists
	// for A/B profiling and perf bisection.
	NoKernels bool
	// AtlasMemLimit caps each size's atlas memory in bytes: 0 applies
	// graph.DefaultAtlasMemLimit, negative disables the cap. A capped
	// atlas transparently degrades to the ball-builder path.
	AtlasMemLimit int64
	// Backend selects how workers source balls: the shared materialised
	// atlas (default), the per-worker ball builder, or closed-form implicit
	// synthesis for graph.Implicit families — see the Backend constants.
	// Results are byte-identical across backends for equal seeds; the
	// implicit backend is what holds sweep memory to O(workers) at
	// n = 10^6..10^8. BackendImplicit requires every size's graph to
	// implement graph.Implicit with a comparable dynamic type, and explicit
	// non-builder backends conflict with NoAtlas.
	Backend Backend
	// StreamIDs replaces the default buffered identifier draw
	// (ids.RandomInto) with the streaming permutation family
	// (ids.StreamInto): each trial's assignment is a seeded O(1)-per-vertex
	// Feistel bijection, deterministic across workers, shards and backends.
	// The permutations differ from the default family's, so StreamIDs
	// changes result bytes — it is part of the sweep's identity, like Seed.
	// Incompatible with Assign and Exhaustive (both already define their
	// own draws).
	StreamIDs bool
}

// Result is a completed (or cancelled) sweep: one aggregate per size, in
// Spec.Sizes order.
type Result struct {
	Sizes []SizeStats `json:"sizes"`
}

// SpecConflictError reports Spec toggles that define the same thing twice,
// or a toggle missing its prerequisite: the typed form of the
// exhaustive-path validation failures, so drivers diagnose a Quotient,
// Exhaustive or StreamIDs conflict the same way they diagnose backend
// declines (internal/cli).
type SpecConflictError struct {
	// Fields names the Spec fields whose combination cannot run.
	Fields []string
	// Reason explains the conflict and how to resolve it.
	Reason string
}

func (e *SpecConflictError) Error() string {
	return fmt.Sprintf("sweep: %s: %s", strings.Join(e.Fields, "+"), e.Reason)
}

// QuotientUnsupportedError reports a graph the symmetry-quotient path
// cannot serve: its family does not implement graph.Automorphisms, or it
// declined to declare a group at this size. Qualifying lists the families
// that do declare, for the CLI's remediation message.
type QuotientUnsupportedError struct {
	// Graph is the offending instance's Go type (fmt %T).
	Graph string
	// N is the instance's vertex count.
	N int
	// Qualifying lists the symmetry-declaring families the graph package
	// ships.
	Qualifying []string
}

func (e *QuotientUnsupportedError) Error() string {
	return fmt.Sprintf("sweep: quotient enumeration cannot serve %s (n=%d): the graph family must declare its automorphism group; qualifying families: %s",
		e.Graph, e.N, strings.Join(e.Qualifying, ", "))
}

// buildGraphs builds every size's graph once, up front: Graph
// implementations are immutable, so all workers share them. One reseeded
// generator serves every build; Rand.Seed reproduces a fresh generator bit
// for bit, so PlanOf and Run derive identical instances.
func buildGraphs(spec Spec) ([]graph.Graph, error) {
	graphs := make([]graph.Graph, len(spec.Sizes))
	grng := rand.New(rand.NewSource(0))
	for i, n := range spec.Sizes {
		grng.Seed(graphSeed(spec.Seed, i))
		g, err := spec.Graph(n, grng)
		if err != nil {
			return nil, fmt.Errorf("sweep: build size %d: %w", n, err)
		}
		graphs[i] = g
	}
	return graphs, nil
}

// quotientsFor derives each size's canonical-rank quotient from the
// graph's declared automorphism group. A family that does not implement
// graph.Automorphisms — or declines at this size — fails with a typed
// *QuotientUnsupportedError; a declaration the closure cross-check
// rejects surfaces the ids layer's typed error.
func quotientsFor(graphs []graph.Graph) ([]*ids.Quotient, error) {
	qs := make([]*ids.Quotient, len(graphs))
	for i, g := range graphs {
		var sym graph.Symmetry
		if ag, ok := g.(graph.Automorphisms); ok {
			sym = ag.Automorphisms()
		}
		if !sym.Declares() {
			return nil, &QuotientUnsupportedError{
				Graph:      fmt.Sprintf("%T", g),
				N:          g.N(),
				Qualifying: graph.AutomorphismFamilies(),
			}
		}
		q, err := ids.NewQuotient(g.N(), sym.Generators, sym.Order, sym.Full)
		if err != nil {
			return nil, fmt.Errorf("sweep: quotient size %d: %w", g.N(), err)
		}
		qs[i] = q
	}
	return qs, nil
}

// Run executes the sweep. On cancellation it returns the partial aggregates
// together with an error wrapping the context's; on any other failure the
// first error wins and the sweep stops early.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if len(spec.Sizes) == 0 {
		return nil, fmt.Errorf("sweep: no sizes")
	}
	if spec.Alg == nil {
		return nil, fmt.Errorf("sweep: nil Alg")
	}
	if spec.Graph == nil {
		return nil, fmt.Errorf("sweep: nil Graph")
	}
	if spec.Exhaustive {
		if spec.Assign != nil {
			return nil, &SpecConflictError{Fields: []string{"Exhaustive", "Assign"},
				Reason: "Exhaustive enumerates permutations itself; Assign must be nil"}
		}
		if spec.Trials > 0 {
			return nil, &SpecConflictError{Fields: []string{"Exhaustive", "Trials"},
				Reason: "Exhaustive ignores Trials; leave it zero"}
		}
	}
	if spec.Quotient && !spec.Exhaustive {
		return nil, &SpecConflictError{Fields: []string{"Quotient", "Exhaustive"},
			Reason: "Quotient compresses the exhaustive rank space; set Exhaustive too"}
	}
	if err := spec.Shard.validate(); err != nil {
		return nil, err
	}
	if spec.StreamIDs {
		if spec.Assign != nil {
			return nil, &SpecConflictError{Fields: []string{"StreamIDs", "Assign"},
				Reason: "StreamIDs replaces the default identifier draw; Assign must be nil"}
		}
		if spec.Exhaustive {
			return nil, &SpecConflictError{Fields: []string{"StreamIDs", "Exhaustive"},
				Reason: "StreamIDs and Exhaustive both define the trial's permutation; pick one"}
		}
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	graphs, err := buildGraphs(spec)
	if err != nil {
		return nil, err
	}

	// Under Quotient, every size's declared group is materialized once and
	// shared read-only by all workers (Quotient methods are concurrency-
	// safe on distinct buffers).
	var quotients []*ids.Quotient
	if spec.Quotient {
		if quotients, err = quotientsFor(graphs); err != nil {
			return nil, err
		}
	}

	// Per-size trial counts of the GLOBAL space: the sampled count
	// everywhere, the full n! rank space under Exhaustive, or the
	// canonical n!/|Aut| rank space under Quotient — with weights[i]
	// restoring the full space's mass through the weighted fold. The shard
	// range and the Done complement are carved out of these below.
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	counts := make([]int, len(spec.Sizes))
	weights := make([]int, len(spec.Sizes))
	globalTotal := 0
	for i, g := range graphs {
		counts[i], weights[i] = trials, 1
		if spec.Exhaustive {
			f, err := ids.Factorial(g.N())
			if err != nil {
				return nil, fmt.Errorf("sweep: exhaustive size %d: %w", g.N(), err)
			}
			if quotients != nil {
				counts[i] = int(quotients[i].Count())
				weights[i] = int(quotients[i].Order())
			} else {
				counts[i] = int(f)
			}
		}
		// globalTotal counts WEIGHTED trials — the full space's mass even
		// under a quotient — matching the unit finish() accounts in.
		if globalTotal += counts[i] * weights[i]; globalTotal < 0 {
			return nil, fmt.Errorf("sweep: exhaustive trial count overflows across sizes %v", spec.Sizes)
		}
	}
	if err := validateDone(spec.Done, counts); err != nil {
		return nil, err
	}

	// Resolve the ball-sourcing backend against the built graphs, then pin
	// the resolved value into the spec copy so EXECUTE never re-derives it.
	backend, err := resolveBackend(&spec, graphs)
	if err != nil {
		return nil, err
	}
	spec.Backend = backend

	// One shared ball atlas per size: BFS layers depend only on the graph,
	// so all trials and workers reuse them; layers grow lazily inside the
	// atlas under its own synchronisation, and atlases for comparable
	// graph values are shared across sweep runs (see atlasFor). The
	// builder backend runs without them, and the implicit backend replaces
	// them with per-worker synthesizers attached in runBlock.
	atlases := make([]*graph.BallAtlas, len(graphs))
	if backend == BackendAtlas {
		for i, g := range graphs {
			atlases[i] = atlasFor(g, spec.AtlasMemLimit)
		}
	}

	// PLAN: blocks are emitted largest instance first — the first block a
	// worker executes then grows every reusable buffer (result slices,
	// histogram, permutation scratch) to its final size, and smaller sizes
	// reuse them. Aggregation is commutative and trials are seeded (or,
	// exhaustively, ranked) by coordinates, so the order is unobservable in
	// the results.
	order := make([]int, len(spec.Sizes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: sizes lists are short
		for k := i; k > 0 && graphs[order[k]].N() > graphs[order[k-1]].N(); k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	blocks := planBlocks(order, counts, spec.Shard, spec.Done, workers)
	planned := plannedTrials(blocks)
	if workers > planned && planned > 0 {
		workers = planned
	}
	// Cancellation accounting is in WEIGHTED trials: each executed
	// canonical representative settles its whole orbit. Overflow is
	// covered by the globalTotal check above (blocks tile a subset of the
	// global space).
	total := 0
	for _, b := range blocks {
		total += (b.T1 - b.T0) * weights[b.SizeIdx]
	}

	// EXECUTE: run the planned blocks through the pool, then MERGE the
	// worker shards into the final per-size aggregates.
	return execute(ctx, spec, graphs, atlases, quotients, blocks, total, workers)
}
