// Package sweep is the shared execution engine for the paper's experiments:
// it turns "(graph generator, permutation source, algorithm) × trials" into
// batched jobs dispatched across a worker pool and streams the results into
// per-size aggregates.
//
// Every experiment in the repository is a sweep over graph sizes × sampled
// identifier permutations, measuring the two running-time measures under
// comparison (max_v r(v) and (Σ_v r(v))/n). The package factors out the
// loop all of them used to hand-roll, and adds what a full-size table needs:
//
//   - sharding: trials are chunked into jobs and executed by a bounded
//     worker pool (Spec.Workers, default GOMAXPROCS);
//   - scratch reuse: each worker owns a local.Runner, so ball builders,
//     label slices and result buffers are recycled across every trial the
//     worker executes — steady-state sweeps allocate almost nothing;
//   - streaming aggregation: trials fold into O(sizes)-memory SizeStats
//     (integer totals, extremal-trial summaries, pooled radius histograms),
//     never into per-trial slices;
//   - determinism: each (size, trial) derives its own rng seed from the
//     sweep seed and its coordinates alone, and all folds commute, so a
//     given seed produces bit-identical results at any worker count;
//   - cancellation: the context is polled between vertices, trials and
//     jobs; a cancelled Run returns promptly with the partial aggregates
//     and a wrapped context error.
package sweep

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// Spec describes one sharded permutation sweep.
type Spec struct {
	// Seed drives all randomness. Equal seeds reproduce results exactly,
	// independent of Workers.
	Seed int64
	// Sizes is the n sweep; one SizeStats is produced per entry.
	Sizes []int
	// Trials is the number of sampled permutations per size (default 1).
	// Ignored under Exhaustive.
	Trials int
	// Exhaustive replaces sampling with full enumeration: every size runs
	// ALL n! identifier permutations exactly once, trial t executing the
	// rank-t permutation in lexicographic factorial-number-system order
	// (ids.Rank/Unrank). The rank space splits into the same contiguous
	// job blocks sampled trials use — each worker unranks its block's
	// first permutation and walks lexicographic successors in place — so
	// the atlas, the kernel fast path and the streaming aggregation all
	// apply unchanged and results stay byte-identical at any worker
	// count. Seed then only affects Graph construction; Trials and Assign
	// must be unset. Sizes are capped at ids.MaxRankN, and wall-clock is
	// the caller's business: bound enormous enumerations with the context.
	Exhaustive bool
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// MaxRadius overrides the engine's safety cap when positive.
	MaxRadius int
	// Graph builds the size-n instance. The rng is seeded from (Seed, size
	// index) so random families are reproducible. Required.
	Graph func(n int, rng *rand.Rand) (graph.Graph, error)
	// Assign produces the identifier assignment of one trial; the rng is
	// seeded from (Seed, size index, trial). sizeIdx indexes Sizes, which
	// disambiguates duplicate size values. Defaults to uniformly random
	// permutations.
	Assign func(sizeIdx, n, trial int, rng *rand.Rand) (ids.Assignment, error)
	// Alg instantiates the algorithm for one trial (assignment-dependent
	// algorithms like Cole-Vishkin's ForMaxID need a). Required.
	Alg func(n int, a ids.Assignment) local.ViewAlgorithm
	// Verify optionally checks the outputs of every trial. Failures are
	// counted in SizeStats.Failures — or abort the sweep when Strict is
	// set. Must be safe for concurrent use.
	Verify func(g graph.Graph, a ids.Assignment, res *local.Result) error
	// Strict promotes a Verify failure into a sweep-aborting error.
	Strict bool
	// Observe, when set, sees every trial's raw execution from inside the
	// worker (res, its slices, and a are only valid during the call — the
	// worker reuses the assignment buffer across the trials of a batch).
	// Must be
	// safe for concurrent use: trials run on different workers, so writes
	// must be keyed by the full (sizeIdx, trial) coordinate — or guarded by
	// a trial check, or the sweep restricted to Trials = 1. A slot keyed by
	// sizeIdx alone races between the trials that share the size.
	Observe func(sizeIdx, trial int, g graph.Graph, a ids.Assignment, res *local.Result)
	// NoAtlas disables the shared per-size ball atlas. By default the sweep
	// builds one graph.BallAtlas per size and every worker serves its views
	// from it, turning the per-trial inner loop from BFS + adjacency
	// rebuild into relabel + decide; ball structure is permutation-
	// invariant, so results are byte-identical either way.
	NoAtlas bool
	// NoKernels pins atlas-backed runs to the per-vertex view path even for
	// algorithms implementing local.Kernel. By default a kernel-capable
	// algorithm decides every vertex in one flat pass over the atlas
	// skeleton; results are byte-identical either way, so the toggle exists
	// for A/B profiling and perf bisection.
	NoKernels bool
	// AtlasMemLimit caps each size's atlas memory in bytes: 0 applies
	// graph.DefaultAtlasMemLimit, negative disables the cap. A capped
	// atlas transparently degrades to the ball-builder path.
	AtlasMemLimit int64
}

// Result is a completed (or cancelled) sweep: one aggregate per size, in
// Spec.Sizes order.
type Result struct {
	Sizes []SizeStats
}

// job is a batch of consecutive trials at one size.
type job struct {
	sizeIdx int
	t0, t1  int
}

// worker is the per-worker reusable state: the execution scratch, the trial
// histogram buffer, the reseedable trial rng, the permutation buffer, and
// this shard's partial aggregates. Everything a trial needs is drawn from
// here, so steady-state batches allocate nothing.
type worker struct {
	runner *local.Runner
	hist   []int64
	shard  []SizeStats
	opts   []local.Option
	// rng is one reusable generator: each trial reseeds it with its
	// (size, trial)-derived seed, which reproduces a fresh
	// rand.New(rand.NewSource(seed)) bit for bit — including the Read
	// buffer, which Rand.Seed resets — without the two allocations per
	// trial.
	rng *rand.Rand
	// assign is the caller-owned permutation storage ids.RandomInto fills
	// when Spec.Assign is unset.
	assign []int
}

// Run executes the sweep. On cancellation it returns the partial aggregates
// together with an error wrapping the context's; on any other failure the
// first error wins and the sweep stops early.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if len(spec.Sizes) == 0 {
		return nil, fmt.Errorf("sweep: no sizes")
	}
	if spec.Alg == nil {
		return nil, fmt.Errorf("sweep: nil Alg")
	}
	if spec.Graph == nil {
		return nil, fmt.Errorf("sweep: nil Graph")
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	if spec.Exhaustive {
		if spec.Assign != nil {
			return nil, fmt.Errorf("sweep: Exhaustive enumerates permutations itself; Assign must be nil")
		}
		if spec.Trials > 0 {
			return nil, fmt.Errorf("sweep: Exhaustive ignores Trials; leave it zero")
		}
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Build every size's graph once, up front: Graph implementations are
	// immutable, so all workers share them. One reseeded generator serves
	// every build; Rand.Seed reproduces a fresh generator bit for bit.
	graphs := make([]graph.Graph, len(spec.Sizes))
	grng := rand.New(rand.NewSource(0))
	for i, n := range spec.Sizes {
		grng.Seed(graphSeed(spec.Seed, i))
		g, err := spec.Graph(n, grng)
		if err != nil {
			return nil, fmt.Errorf("sweep: build size %d: %w", n, err)
		}
		graphs[i] = g
	}

	// Per-size trial counts: the sampled count everywhere, or the full
	// n! rank space under Exhaustive.
	counts := make([]int, len(spec.Sizes))
	total := 0
	for i, g := range graphs {
		counts[i] = trials
		if spec.Exhaustive {
			f, err := ids.Factorial(g.N())
			if err != nil {
				return nil, fmt.Errorf("sweep: exhaustive size %d: %w", g.N(), err)
			}
			counts[i] = int(f)
		}
		if total += counts[i]; total < 0 {
			return nil, fmt.Errorf("sweep: exhaustive trial count overflows across sizes %v", spec.Sizes)
		}
	}
	if workers > total {
		workers = total
	}

	// One shared ball atlas per size: BFS layers depend only on the graph,
	// so all trials and workers reuse them; layers grow lazily inside the
	// atlas under its own synchronisation, and atlases for comparable
	// graph values are shared across sweep runs (see atlasFor).
	atlases := make([]*graph.BallAtlas, len(graphs))
	if !spec.NoAtlas {
		for i, g := range graphs {
			atlases[i] = atlasFor(g, spec.AtlasMemLimit)
		}
	}

	// Jobs are emitted largest instance first: the first job a worker
	// executes then grows every reusable buffer (result slices, histogram,
	// permutation scratch) to its final size, and smaller sizes reuse them.
	// Aggregation is commutative and trials are seeded (or, exhaustively,
	// ranked) by coordinates, so the order is unobservable in the results.
	order := make([]int, len(spec.Sizes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: sizes lists are short
		for k := i; k > 0 && graphs[order[k]].N() > graphs[order[k-1]].N(); k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	// Chunk each size's trials into jobs: a few batches per worker
	// balances load without serialising on the channel.
	jobs := make([]job, 0, len(spec.Sizes)*(4*workers+1))
	for _, i := range order {
		chunk := counts[i] / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		for t0 := 0; t0 < counts[i]; t0 += chunk {
			t1 := t0 + chunk
			if t1 > counts[i] {
				t1 = counts[i]
			}
			jobs = append(jobs, job{sizeIdx: i, t0: t0, t1: t1})
		}
	}

	// The sequential path needs no cancel broadcast — its loop checks
	// firstErr directly — so it skips the WithCancel context entirely.
	runCtx, cancel := ctx, func() {}
	if workers > 1 {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	// The worker's permutation buffer is sized for the largest instance up
	// front, so batches at growing sizes never regrow it.
	maxN := 0
	for _, g := range graphs {
		if n := g.N(); n > maxN {
			maxN = n
		}
	}

	// All workers share one option slice (read-only), one backing array for
	// their per-size shards, and one worker array: worker setup cost stays a
	// handful of allocations per worker, not a dozen.
	opts := append(make([]local.Option, 0, 4), local.WithContext(runCtx))
	if spec.MaxRadius > 0 {
		opts = append(opts, local.WithMaxRadius(spec.MaxRadius))
	}
	if spec.NoKernels {
		opts = append(opts, local.WithoutKernels())
	}
	if spec.Assign == nil {
		// Workers draw their own permutations with ids.RandomInto — valid
		// by construction, so the engine's per-trial Validate is redundant.
		opts = append(opts, local.WithValidatedIDs())
	}
	ws := make([]worker, workers)
	shardBacking := make([]SizeStats, workers*len(spec.Sizes))
	for wi := range ws {
		initWorker(&ws[wi], spec, opts, shardBacking[wi*len(spec.Sizes):(wi+1)*len(spec.Sizes)], maxN)
	}

	if workers == 1 {
		// True sequential path: no goroutines, no channels — the baseline
		// the sharded path is benchmarked against, and the cheapest way to
		// run tiny sweeps.
		w := &ws[0]
		for _, j := range jobs {
			if runCtx.Err() != nil {
				break
			}
			if err := w.runJob(runCtx, spec, graphs[j.sizeIdx], atlases[j.sizeIdx], j); err != nil {
				if runCtx.Err() == nil {
					fail(err)
				}
				break
			}
			if firstErr != nil {
				break
			}
		}
		return finish(ctx, spec, total, ws, firstErr)
	}

	jobCh := make(chan job)
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		w := &ws[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if runCtx.Err() != nil {
					return
				}
				if err := w.runJob(runCtx, spec, graphs[j.sizeIdx], atlases[j.sizeIdx], j); err != nil {
					if runCtx.Err() == nil {
						fail(err)
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	return finish(ctx, spec, total, ws, err)
}

// initWorker populates one worker's reusable state. opts is shared
// (read-only) across workers; shard is the worker's slice of the shared
// backing array; maxN is the largest instance size the worker may draw
// permutations for.
func initWorker(w *worker, spec Spec, opts []local.Option, shard []SizeStats, maxN int) {
	w.runner = local.NewRunner()
	w.shard = shard
	w.opts = opts
	w.rng = rand.New(rand.NewSource(0)) // reseeded per trial from (size, trial)
	if spec.Assign == nil {
		w.assign = make([]int, maxN)
	}
}

// finish merges the worker shards into the final Result and classifies how
// the sweep ended: clean, failed, or cancelled with partial aggregates.
// total is the number of trials the spec asked for across all sizes.
func finish(ctx context.Context, spec Spec, total int, ws []worker, firstErr error) (*Result, error) {
	res := &Result{Sizes: make([]SizeStats, len(spec.Sizes))}
	done := 0
	for i, n := range spec.Sizes {
		res.Sizes[i].N = n
		for wi := range ws {
			res.Sizes[i].merge(&ws[wi].shard[i])
		}
		done += res.Sizes[i].Trials
	}
	if firstErr != nil {
		return res, firstErr
	}
	// A context that fires after the final trial completed did not cost any
	// results; only report cancellation when work was actually skipped.
	if cerr := ctx.Err(); cerr != nil && done < total {
		return res, fmt.Errorf("sweep: cancelled with partial results (%d/%d trials): %w",
			done, total, cerr)
	}
	return res, nil
}

// runJob executes one batch of consecutive trials at a single size and
// folds each into the worker's shard. Batching is what amortises the
// per-trial harness overhead: the atlas is attached once, the histogram
// buffer is cleared once, the trial rng is reseeded instead of reallocated,
// and (when the spec draws its own permutations) one worker-owned buffer is
// refilled in place by ids.RandomInto. atlas (nil when disabled) is the
// size's shared ball store. A context cancellation mid-batch returns nil;
// the caller observes the context itself.
func (w *worker) runJob(ctx context.Context, spec Spec, g graph.Graph, atlas *graph.BallAtlas, j job) error {
	w.runner.SetAtlas(atlas)
	n := g.N()
	if spec.Assign == nil && cap(w.assign) < n {
		w.assign = make([]int, n)
	}
	// One clear per batch establishes the all-zeros invariant; each trial
	// restores it below by zeroing only the entries it incremented.
	for r := range w.hist {
		w.hist[r] = 0
	}
	if spec.Exhaustive {
		// The batch is a contiguous rank block: unrank its first
		// permutation once, then each later trial is one successor step.
		ids.UnrankInto(w.assign[:n], uint64(j.t0))
	}
	for trial := j.t0; trial < j.t1; trial++ {
		if ctx.Err() != nil {
			return nil
		}
		var (
			a   ids.Assignment
			err error
		)
		switch {
		case spec.Exhaustive:
			// No per-trial randomness: the permutation IS the trial
			// coordinate, so the (expensive) rng reseed is skipped too.
			if trial > j.t0 {
				ids.NextInto(w.assign[:n])
			}
			a = ids.Assignment(w.assign[:n])
		case spec.Assign != nil:
			w.rng.Seed(trialSeed(spec.Seed, j.sizeIdx, trial))
			a, err = spec.Assign(j.sizeIdx, n, trial, w.rng)
			if err != nil {
				return fmt.Errorf("sweep: assign size %d trial %d: %w", n, trial, err)
			}
		default:
			w.rng.Seed(trialSeed(spec.Seed, j.sizeIdx, trial))
			a = ids.RandomInto(w.assign[:n], w.rng)
		}
		res, err := w.runner.Run(g, a, spec.Alg(n, a), w.opts...)
		if err != nil {
			return err
		}

		// Fill the trial's histogram in one pass over the radii, growing
		// the buffer and tracking the maximum as we go — no separate scan,
		// no full reset between trials.
		maxR := 0
		for _, r := range res.Radii {
			if r >= len(w.hist) {
				w.hist = growHist(w.hist, r+1)
			}
			w.hist[r]++
			if r > maxR {
				maxR = r
			}
		}
		hist := w.hist[:maxR+1]

		verifyFailed := false
		if spec.Verify != nil {
			if verr := spec.Verify(g, a, res); verr != nil {
				if spec.Strict {
					return fmt.Errorf("sweep: verify size %d trial %d: %w", n, trial, verr)
				}
				verifyFailed = true
			}
		}
		if spec.Observe != nil {
			spec.Observe(j.sizeIdx, trial, g, a, res)
		}
		w.shard[j.sizeIdx].addTrial(trial, summarizeHist(hist), hist, verifyFailed)
		for _, r := range res.Radii {
			hist[r] = 0
		}
	}
	return nil
}
