package sweep

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Both implementations must satisfy the same contract; run the shared
// conformance suite over each.
func TestStoreConformance(t *testing.T) {
	t.Run("dir", func(t *testing.T) {
		st, err := NewDirStore(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatalf("NewDirStore: %v", err)
		}
		testStoreContract(t, st)
	})
	t.Run("mem", func(t *testing.T) {
		testStoreContract(t, NewMemStore())
	})
}

func testStoreContract(t *testing.T, st Store) {
	t.Helper()
	if _, err := st.Get("run/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get missing: want fs.ErrNotExist, got %v", err)
	}
	if err := st.Delete("run/missing"); err != nil {
		t.Fatalf("Delete missing: %v", err)
	}
	puts := map[string]string{
		"run/plan":        "the plan",
		"run/done/0-0":    "first",
		"run/done/0-8":    "second",
		"run/lease/alice": "claim",
		"other/plan":      "foreign",
	}
	for name, data := range puts {
		if err := st.Put(name, []byte(data)); err != nil {
			t.Fatalf("Put %s: %v", name, err)
		}
	}
	for name, data := range puts {
		got, err := st.Get(name)
		if err != nil || string(got) != data {
			t.Fatalf("Get %s = %q, %v; want %q", name, got, err, data)
		}
	}
	// Put replaces.
	if err := st.Put("run/plan", []byte("replaced")); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	if got, _ := st.Get("run/plan"); string(got) != "replaced" {
		t.Fatalf("Get after replace = %q", got)
	}
	names, err := st.List("run/done/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if want := []string{"run/done/0-0", "run/done/0-8"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("List run/done/ = %v, want %v", names, want)
	}
	all, err := st.List("run/")
	if err != nil {
		t.Fatalf("List run/: %v", err)
	}
	if want := []string{"run/done/0-0", "run/done/0-8", "run/lease/alice", "run/plan"}; !reflect.DeepEqual(all, want) {
		t.Fatalf("List run/ = %v, want %v", all, want)
	}
	if err := st.Delete("run/lease/alice"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := st.Get("run/lease/alice"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get deleted: want fs.ErrNotExist, got %v", err)
	}
	// The name grammar is enforced on every entry point.
	for _, bad := range []string{"", "a//b", "../escape", "run/..", "a b", "sl\\ash", "é"} {
		if err := st.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put %q: want name error", bad)
		}
		if _, err := st.Get(bad); err == nil {
			t.Errorf("Get %q: want name error", bad)
		}
		if err := st.Delete(bad); err == nil {
			t.Errorf("Delete %q: want name error", bad)
		}
	}
}

// A faulted MemStore Put can tear the object (store a prefix) or drop it,
// and the writer always learns it failed.
func TestMemStoreFaultPuts(t *testing.T) {
	st := NewMemStore()
	st.FaultPuts(func(name string, data []byte) ([]byte, error) {
		switch name {
		case "torn":
			return data[:2], errors.New("crashed mid-write")
		case "dropped":
			return nil, errors.New("media gone")
		}
		return data, nil
	})
	if err := st.Put("torn", []byte("payload")); err == nil {
		t.Fatal("torn Put: want error")
	}
	if got, _ := st.Get("torn"); string(got) != "pa" {
		t.Fatalf("torn object = %q, want prefix \"pa\"", got)
	}
	if err := st.Put("dropped", []byte("payload")); err == nil {
		t.Fatal("dropped Put: want error")
	}
	if _, err := st.Get("dropped"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("dropped object: want fs.ErrNotExist, got %v", err)
	}
	if err := st.Put("fine", []byte("payload")); err != nil {
		t.Fatalf("passthrough Put: %v", err)
	}
	st.FaultPuts(nil)
	if err := st.Put("torn", []byte("payload")); err != nil {
		t.Fatalf("Put after removing fault: %v", err)
	}
	if got, _ := st.Get("torn"); string(got) != "payload" {
		t.Fatalf("healed object = %q", got)
	}
}

// A DirStore whose root turns read-only must fail writes with a typed
// error (errors.Is fs.ErrPermission) and never panic; reads of existing
// objects keep working — graceful degradation to a read-only replica.
func TestDirStoreReadOnlyRoot(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	root := filepath.Join(t.TempDir(), "store")
	st, err := NewDirStore(root)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	if err := st.Put("run/done/0-0", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.Chmod(root, 0o555); err != nil {
		t.Fatalf("chmod: %v", err)
	}
	t.Cleanup(func() { os.Chmod(root, 0o755) })
	if err := st.Put("other/0-0", []byte("x")); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("Put under read-only root = %v, want fs.ErrPermission", err)
	}
	if got, err := st.Get("run/done/0-0"); err != nil || string(got) != "payload" {
		t.Fatalf("Get under read-only root = %q, %v", got, err)
	}
	if names, err := st.List("run/"); err != nil || len(names) != 1 {
		t.Fatalf("List under read-only root = %v, %v", names, err)
	}
}

// A DirStore whose root is deleted mid-run must return typed errors from
// every method — Put must NOT silently recreate an empty root, and List
// must NOT read the vanished store as "no work was ever done".
func TestDirStoreRootDeletedMidRun(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := NewDirStore(root)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	if err := st.Put("run/done/0-0", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.RemoveAll(root); err != nil {
		t.Fatalf("remove root: %v", err)
	}
	if err := st.Put("run/done/0-8", []byte("x")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Put after root deletion = %v, want fs.ErrNotExist", err)
	}
	if _, err := os.Stat(root); err == nil {
		t.Fatal("Put resurrected the deleted root")
	}
	if _, err := st.List("run/"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("List after root deletion = %v, want fs.ErrNotExist", err)
	}
	if _, err := st.Get("run/done/0-0"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get after root deletion = %v, want fs.ErrNotExist", err)
	}
}

// DirStore.List must not surface in-flight temp files as objects.
func TestDirStoreListSkipsTempFiles(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	if err := st.Put("run/done/0-0", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate a crashed writer's leftover temp file.
	leftover := filepath.Join(st.root, "run", "done", ".tmp-12345")
	if err := atomicWriteFile(leftover, []byte("junk")); err != nil {
		t.Fatalf("write leftover: %v", err)
	}
	names, err := st.List("run/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if want := []string{"run/done/0-0"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
}
