package sweep

import (
	"errors"
	"math"
	"testing"

	"repro/internal/measure"
)

// TestCheckFoldBoundary is the table-driven boundary check of the streaming
// aggregate's overflow guard: bucket indices straddling maxHistRadius and
// int64 totals straddling the wrap point.
func TestCheckFoldBoundary(t *testing.T) {
	cases := []struct {
		name     string
		maxR     int
		sum      measure.Summary
		totalSum int64
		totalMax int64
		ok       bool
	}{
		{"small", 5, measure.Summary{Sum: 10, Max: 5}, 100, 20, true},
		{"radius at bound", maxHistRadius, measure.Summary{}, 0, 0, true},
		{"radius past bound", maxHistRadius + 1, measure.Summary{}, 0, 0, false},
		{"sum at bound", 1, measure.Summary{Sum: 1}, math.MaxInt64 - 1, 0, true},
		{"sum past bound", 1, measure.Summary{Sum: 2}, math.MaxInt64 - 1, 0, false},
		{"max at bound", 1, measure.Summary{Max: 3}, 0, math.MaxInt64 - 3, true},
		{"max past bound", 1, measure.Summary{Max: 4}, 0, math.MaxInt64 - 3, false},
	}
	for _, tc := range cases {
		s := &SizeStats{TotalSum: tc.totalSum, TotalMax: tc.totalMax}
		err := s.checkFold(tc.maxR, tc.sum)
		if tc.ok {
			if err != nil {
				t.Errorf("%s: checkFold rejected: %v", tc.name, err)
			}
			continue
		}
		var ov *AggregateOverflowError
		if !errors.As(err, &ov) {
			t.Errorf("%s: checkFold = %v, want *AggregateOverflowError", tc.name, err)
		}
	}
}

// TestCheckFoldErrorShape pins the two message forms' carried fields.
func TestCheckFoldErrorShape(t *testing.T) {
	s := &SizeStats{}
	var ov *AggregateOverflowError
	if err := s.checkFold(maxHistRadius+1, measure.Summary{}); !errors.As(err, &ov) || ov.Radius != maxHistRadius+1 {
		t.Fatalf("radius overflow = %v carrying %+v", err, ov)
	}
	s = &SizeStats{TotalSum: math.MaxInt64}
	if err := s.checkFold(1, measure.Summary{Sum: 1}); !errors.As(err, &ov) || ov.Radius != -1 || ov.Total != math.MaxInt64 || ov.Add != 1 {
		t.Fatalf("total overflow = %v carrying %+v", err, ov)
	}
}
