package sweep

// Backoff is the retry-pacing policy shared by everything in the engine
// that waits on a flaky or busy medium: lease executors riding out
// transient store faults, idle executors pacing their rescans, and the
// sweepd supervisor restarting crashed workers. One policy type instead of
// scattered fixed sleeps, so the CLI and the service tune the same knob.
//
// Delays grow exponentially with the attempt number, are capped at Max,
// and carry deterministic jitter: the jitter for a given (Seed, attempt)
// pair is a pure function, so replayed chaos scenarios and restarted
// supervisors pace identically. Real fleets get decorrelation by seeding
// per worker (RunLeased hashes the worker id).

import (
	"context"
	"math"
	"time"
)

// Backoff computes the delay before retry attempt k (0-based). The zero
// value is a usable default policy (25ms base, ×2 growth, 2s cap, 20%
// jitter). Methods are value receivers on an immutable policy: safe for
// concurrent use.
type Backoff struct {
	// Base is the delay before attempt 0 (default 25ms).
	Base time.Duration
	// Max caps every delay (default 80×Base).
	Max time.Duration
	// Factor is the per-attempt growth (default 2; values <= 1 freeze the
	// delay at Base — a fixed-interval policy).
	Factor float64
	// Jitter is the fraction of each delay drawn back uniformly: the wait
	// lands in [d·(1−Jitter), d]. 0 means the default 0.2; negative
	// disables jitter entirely.
	Jitter float64
	// Seed selects the deterministic jitter stream. Equal (Seed, attempt)
	// pairs always produce equal delays.
	Seed uint64
}

// Delay returns attempt k's wait. It never blocks and is a pure function
// of the policy and k.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 80 * base
	}
	factor := b.Factor
	if factor <= 0 {
		factor = 2
	}
	if factor < 1 {
		factor = 1
	}
	if attempt < 0 {
		attempt = 0
	}
	d := float64(base) * math.Pow(factor, float64(attempt))
	if d > float64(max) {
		d = float64(max)
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		// splitmix64 of (Seed, attempt) → uniform u in [0,1): deterministic
		// per pair, decorrelated across seeds.
		u := float64(splitmix64(b.Seed^(uint64(attempt)+1)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
		d *= 1 - jitter*u
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Wait blocks for attempt k's delay or until the context fires, whichever
// is first, and returns the context's error so retry loops can bail on
// cancellation without a separate check.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	sleepCtx(ctx, b.Delay(attempt))
	return ctx.Err()
}

// withBase returns the policy with Base (and, if unset, Max) derived from
// d — how lease executors turn their Poll interval into an idle-scan
// policy without configuring a second duration.
func (b Backoff) withBase(d time.Duration) Backoff {
	if b.Base <= 0 {
		b.Base = d
		if b.Max <= 0 {
			b.Max = 8 * d
		}
	}
	return b
}
