package sweep

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// TestInsertRangeCoalesces pins the done-range bookkeeping.
func TestInsertRangeCoalesces(t *testing.T) {
	var rs []TrialRange
	for _, r := range []TrialRange{{4, 6}, {0, 2}, {6, 8}, {2, 4}} {
		rs = insertRange(rs, r)
	}
	if want := []TrialRange{{0, 8}}; !reflect.DeepEqual(rs, want) {
		t.Fatalf("coalesced ranges %v, want %v", rs, want)
	}
	rs = insertRange(nil, TrialRange{10, 12})
	rs = insertRange(rs, TrialRange{0, 2})
	rs = insertRange(rs, TrialRange{20, 22})
	if want := []TrialRange{{0, 2}, {10, 12}, {20, 22}}; !reflect.DeepEqual(rs, want) {
		t.Fatalf("disjoint ranges %v, want %v", rs, want)
	}
	rs = insertRange(rs, TrialRange{2, 10})
	if want := []TrialRange{{0, 12}, {20, 22}}; !reflect.DeepEqual(rs, want) {
		t.Fatalf("bridged ranges %v, want %v", rs, want)
	}
}

// TestCheckpointFullRunMatches: a checkpointed run's final record holds
// exactly the bytes of the run itself — Result() is the merged aggregate
// and Done covers the whole trial space.
func TestCheckpointFullRunMatches(t *testing.T) {
	spec := cycleSpec(19, []int{16, 24}, 8, 3)
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	w := NewCheckpointWriter(path, NewCheckpoint(mustPlanOf(spec)))
	spec.OnBlock = w.OnBlock
	got, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatalf("checkpoint writes failed: %v", w.Err())
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("OnBlock changed the sweep's own aggregates")
	}
	ck := w.Checkpoint()
	if !reflect.DeepEqual(want, ck.Result()) {
		t.Errorf("checkpoint aggregates diverge from the run\nwant %+v\ngot  %+v", want, ck.Result())
	}
	for i, ranges := range ck.Done {
		if want := []TrialRange{{0, 8}}; !reflect.DeepEqual(ranges, want) {
			t.Errorf("size %d done ranges %v, want %v", i, ranges, want)
		}
	}
	// And the file round-trips to the same record.
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, ck) {
		t.Error("loaded checkpoint differs from the in-memory record")
	}
}

// TestCheckpointResumeIdentical is the kill+resume acceptance: interrupt a
// sweep mid-flight, reload the checkpoint file, run the complement, and
// demand bytes identical to an uninterrupted run — for both sampled and
// exhaustive sweeps.
func TestCheckpointResumeIdentical(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"sampled", cycleSpec(23, []int{12, 20}, 30, 2)},
		{"exhaustive", exhaustiveSpec([]int{5, 6}, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}

			// Phase 1: cancel after a few completed blocks — the "kill".
			path := filepath.Join(t.TempDir(), "ck.json")
			w := NewCheckpointWriter(path, NewCheckpoint(mustPlanOf(tc.spec)))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var blocks atomic.Int32
			spec := tc.spec
			spec.OnBlock = func(b Block, partial *SizeStats) {
				w.OnBlock(b, partial)
				if blocks.Add(1) == 3 {
					cancel()
				}
			}
			if _, err := Run(ctx, spec); err == nil && blocks.Load() < 3 {
				t.Fatal("phase 1 finished before any block completed; cannot exercise resume")
			}
			if w.Err() != nil {
				t.Fatalf("phase 1 checkpoint writes failed: %v", w.Err())
			}

			// Phase 2: a fresh process — reload the file, verify the plan,
			// run the complement, and read the final aggregates off the
			// checkpoint.
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if !ck.Plan.Equal(mustPlanOf(tc.spec)) {
				t.Fatalf("checkpoint plan %+v does not match the spec's %+v", ck.Plan, mustPlanOf(tc.spec))
			}
			resume := tc.spec
			resume.Done = ck.Done
			w2 := NewCheckpointWriter(path, ck)
			resume.OnBlock = w2.OnBlock
			if _, err := Run(context.Background(), resume); err != nil {
				t.Fatalf("resume: %v", err)
			}
			if w2.Err() != nil {
				t.Fatalf("resume checkpoint writes failed: %v", w2.Err())
			}
			if got := w2.Checkpoint().Result(); !reflect.DeepEqual(want, got) {
				t.Errorf("resumed aggregates diverge from the uninterrupted run\nwant %+v\ngot  %+v", want, got)
			}
		})
	}
}

// TestCheckpointWriterSurvivesBadPath: a write failure is retained in Err
// without aborting the sweep.
func TestCheckpointWriterSurvivesBadPath(t *testing.T) {
	spec := cycleSpec(7, []int{10}, 4, 2)
	w := NewCheckpointWriter("/nonexistent-dir/sub/ck.json", NewCheckpoint(mustPlanOf(spec)))
	spec.OnBlock = w.OnBlock
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if w.Err() == nil {
		t.Error("unwritable checkpoint path produced no error")
	}
}

// TestLoadCheckpointMissing: a missing file is reported as not-exist so
// callers start fresh.
func TestLoadCheckpointMissing(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json"))
	if !os.IsNotExist(err) {
		t.Errorf("missing checkpoint error = %v, want not-exist", err)
	}
}

// TestCancelledFinishMergesExactly is the direct coverage of the cancelled
// path through finish: the partial aggregates of a context-cancelled run
// must equal — byte for byte — the fold of exactly the trials that
// completed, and those trials must merge shard-style to the same bytes.
func TestCancelledFinishMergesExactly(t *testing.T) {
	const (
		seed   = 31
		n      = 16
		trials = 5000
	)
	spec := cycleSpec(seed, []int{n}, trials, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed [trials]atomic.Bool
	var count atomic.Int32
	spec.Observe = func(_, trial int, _ graph.Graph, _ ids.Assignment, _ *local.Result) {
		completed[trial].Store(true)
		if count.Add(1) == 40 {
			cancel()
		}
	}
	res, err := Run(ctx, spec)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error; cannot exercise the partial path")
	}
	if res.Sizes[0].Trials >= trials {
		t.Fatal("cancellation completed everything; nothing partial to check")
	}

	// Recompute every completed trial independently and fold it the way the
	// engine does — Observe fires immediately before the engine's own fold,
	// with no cancellation point between, so the recorded set IS the
	// aggregated set.
	c := graph.MustCycle(n)
	want := SizeStats{N: n}
	var firstHalf, secondHalf SizeStats
	firstHalf.N, secondHalf.N = n, n
	folded := 0
	for trial := 0; trial < trials; trial++ {
		if !completed[trial].Load() {
			continue
		}
		rng := rand.New(rand.NewSource(trialSeed(seed, 0, trial)))
		r, err := local.RunView(c, ids.Random(n, rng), largestid.Pruning{})
		if err != nil {
			t.Fatal(err)
		}
		hist := histOf(r.Radii)
		sum := summarizeHist(hist)
		want.addTrial(trial, sum, hist, false)
		if folded%2 == 0 {
			firstHalf.addTrial(trial, sum, hist, false)
		} else {
			secondHalf.addTrial(trial, sum, hist, false)
		}
		folded++
	}
	if folded != res.Sizes[0].Trials {
		t.Fatalf("observed %d completed trials, aggregate counted %d", folded, res.Sizes[0].Trials)
	}
	if !reflect.DeepEqual(res.Sizes[0], want) {
		t.Errorf("cancelled partial aggregates diverge from the completed trials\ngot  %+v\nwant %+v", res.Sizes[0], want)
	}

	// The same trials split across two shard-style partials must merge to
	// the identical bytes — the guarantee cross-process resume rests on.
	merged := SizeStats{N: n}
	merged.Merge(&secondHalf)
	merged.Merge(&firstHalf)
	if !reflect.DeepEqual(merged, want) {
		t.Errorf("split-and-merge of the completed trials diverges\ngot  %+v\nwant %+v", merged, want)
	}
}

// histOf builds one trial's radius histogram, trimmed to its max radius —
// the exact shape the engine folds.
func histOf(radii []int) []int64 {
	var hist []int64
	for _, r := range radii {
		for len(hist) <= r {
			hist = append(hist, 0)
		}
		hist[r]++
	}
	return hist
}

// TestCheckpointWriterFailFast: an armed writer aborts the sweep at the
// first failed persistence instead of completing unresumable work.
func TestCheckpointWriterFailFast(t *testing.T) {
	spec := cycleSpec(7, []int{32}, 20000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewCheckpointWriter("/nonexistent-dir/sub/ck.json", NewCheckpoint(mustPlanOf(spec)))
	w.FailFast(cancel)
	spec.OnBlock = w.OnBlock
	res, err := Run(ctx, spec)
	if err == nil {
		t.Fatal("sweep with a dead fail-fast checkpoint completed cleanly")
	}
	if w.Err() == nil {
		t.Error("writer retained no persistence error")
	}
	if res.Sizes[0].Trials >= 20000 {
		t.Error("sweep ran every trial despite the dead checkpoint")
	}
}
