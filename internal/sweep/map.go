package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) across a bounded worker pool and
// returns the first error. It is the sweep engine for experiment stages
// that are not permutation trials — closed-form checks, exact searches —
// where each index owns its own output slot, so results stay deterministic
// at any worker count.
//
// The context is polled between indices; on cancellation Map stops handing
// out work and returns the context's error. workers <= 0 means GOMAXPROCS.
func Map(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if ctx == nil {
		ctx = context.Background()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next      atomic.Int64
		completed atomic.Int64
		mu        sync.Mutex
		firstErr  error
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	// Only surface the context error when it actually cost indices.
	if completed.Load() < int64(n) {
		return ctx.Err()
	}
	return nil
}
