package sweep

// Checkpointing rides the plan/execute/merge split: the PLAN layer makes
// completed work describable (contiguous trial ranges), the execute layer
// reports each finished block through Spec.OnBlock, and the MERGE layer
// guarantees that "previously completed ranges + freshly run complement"
// folds to the bytes of an uninterrupted run. A checkpoint file is just
// that record — the plan identity, the coalesced done ranges, and their
// aggregates — rewritten atomically after every block, so a killed sweep
// resumes from its last completed block with nothing lost and nothing
// double-counted.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
)

// Checkpoint is the serializable progress record of one plan's execution:
// which trial ranges completed and what they folded to. Methods are not
// safe for concurrent use — CheckpointWriter serialises access during a
// run.
type Checkpoint struct {
	// Plan identifies the work; a resume must present an equal plan.
	Plan Plan `json:"plan"`
	// Done holds, per size index, the ascending coalesced trial ranges
	// whose blocks completed.
	Done [][]TrialRange `json:"done"`
	// Sizes aggregates exactly the trials in Done, one entry per plan size.
	Sizes []SizeStats `json:"sizes"`
}

// NewCheckpoint returns the empty progress record of a plan.
func NewCheckpoint(p Plan) *Checkpoint {
	c := &Checkpoint{
		Plan:  p,
		Done:  make([][]TrialRange, len(p.Sizes)),
		Sizes: make([]SizeStats, len(p.Sizes)),
	}
	for i, n := range p.Sizes {
		c.Sizes[i].N = n
	}
	return c
}

// Fold records one completed block: its range joins Done (coalescing with
// neighbours) and its aggregate merges into the size's stats.
func (c *Checkpoint) Fold(b Block, partial *SizeStats) {
	c.Done[b.SizeIdx] = insertRange(c.Done[b.SizeIdx], TrialRange{T0: b.T0, T1: b.T1})
	c.Sizes[b.SizeIdx].Merge(partial)
}

// Result returns the checkpoint's aggregates as a Result, ready to merge
// with a resumed run's partial via MergeResults.
func (c *Checkpoint) Result() *Result {
	return &Result{Sizes: c.Sizes}
}

// insertRange adds r to an ascending non-overlapping range list, merging
// with adjacent or overlapping neighbours. Blocks of one plan never
// overlap, so in practice this only ever coalesces exact adjacency.
func insertRange(ranges []TrialRange, r TrialRange) []TrialRange {
	at := len(ranges)
	for i, x := range ranges {
		if r.T0 <= x.T1 {
			at = i
			break
		}
	}
	// Absorb every range that touches [r.T0, r.T1).
	end := at
	for end < len(ranges) && ranges[end].T0 <= r.T1 {
		if ranges[end].T0 < r.T0 {
			r.T0 = ranges[end].T0
		}
		if ranges[end].T1 > r.T1 {
			r.T1 = ranges[end].T1
		}
		end++
	}
	out := append(ranges[:at:at], r)
	return append(out, ranges[end:]...)
}

// EncodeCheckpoint serializes the record with the shared versioned
// envelope.
func EncodeCheckpoint(w io.Writer, c *Checkpoint) error {
	return EncodeFile(w, FormatCheckpoint, c)
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint and
// validates its internal consistency; failures are *DecodeError, never a
// panic.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	c := &Checkpoint{}
	if err := DecodeFile(r, FormatCheckpoint, c); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the record's internal structure the way DecodeCheckpoint
// does: done/sizes aligned with the plan, aggregate invariants, ascending
// disjoint ranges. Callers embedding Checkpoints inside their own
// envelopes (the experiment run checkpoints) must run it on every decoded
// record before folding into it; failures are *DecodeError.
func (c *Checkpoint) Validate() error {
	if len(c.Done) != len(c.Plan.Sizes) || len(c.Sizes) != len(c.Plan.Sizes) {
		return &DecodeError{Format: FormatCheckpoint,
			Reason: fmt.Sprintf("plan has %d sizes but done/sizes have %d/%d entries",
				len(c.Plan.Sizes), len(c.Done), len(c.Sizes))}
	}
	if err := validateSizes(c.Sizes, FormatCheckpoint); err != nil {
		return err
	}
	for i, ranges := range c.Done {
		prev := -1
		for _, r := range ranges {
			if r.T0 < 0 || r.T0 >= r.T1 || r.T0 <= prev {
				return &DecodeError{Format: FormatCheckpoint,
					Reason: fmt.Sprintf("size %d: done ranges not ascending and disjoint", i)}
			}
			prev = r.T1
		}
	}
	return nil
}

// SaveFile writes an enveloped payload atomically via the same temp+rename
// primitive DirStore.Put uses — a kill mid-write leaves the previous file
// intact, never a torn one. It serves the engine's own checkpoints and any
// caller framing files with EncodeFile (the experiment layer's run
// checkpoints).
func SaveFile(path, format string, payload any) error {
	var buf bytes.Buffer
	if err := EncodeFile(&buf, format, payload); err != nil {
		return err
	}
	if err := atomicWriteFile(path, buf.Bytes()); err != nil {
		return fmt.Errorf("sweep: commit %s: %w", format, err)
	}
	return nil
}

// SaveCheckpoint writes the record atomically via SaveFile.
func SaveCheckpoint(path string, c *Checkpoint) error {
	return SaveFile(path, FormatCheckpoint, c)
}

// LoadCheckpoint reads a checkpoint file; a missing file is reported via
// os.IsNotExist / errors.Is(err, fs.ErrNotExist) so callers can start
// fresh.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// CheckpointWriter adapts Checkpoint records to Spec.OnBlock: every
// completed block folds into its record under one mutex and the
// persistence function rewrites the file atomically, so the on-disk state
// always describes a complete, resumable prefix of the work. The first
// write failure is retained (Err) and stops further writes — by default
// the run itself continues and the caller decides whether a dead
// checkpoint is fatal; arm FailFast to abort promptly instead.
//
// NewCheckpointWriter serves callers driving sweep.Run directly: one
// record, one file. NewCheckpointWriterFunc generalises the same protocol
// over any persistence shape — the experiment layer wraps several records
// plus a run-identity header in its own envelope and supplies the save
// function (internal/experiments).
type CheckpointWriter struct {
	mu      sync.Mutex
	records []*Checkpoint
	save    func() error
	err     error
	onFail  func()
}

// NewCheckpointWriter wraps an (empty or loaded) checkpoint record for
// concurrent OnBlock folding into the file at path.
func NewCheckpointWriter(path string, ck *Checkpoint) *CheckpointWriter {
	return NewCheckpointWriterFunc([]*Checkpoint{ck},
		func() error { return SaveCheckpoint(path, ck) })
}

// NewCheckpointWriterFunc wraps one record per concurrently-checkpointed
// sweep, with save persisting them all (called under the writer's lock
// after every fold). OnBlockFor(k) yields the hook folding into
// records[k].
func NewCheckpointWriterFunc(records []*Checkpoint, save func() error) *CheckpointWriter {
	return &CheckpointWriter{records: records, save: save}
}

// FailFast arms hook to run once, under the writer's lock, when
// persistence first fails — typically the sweep context's cancel, so a
// run that can no longer checkpoint aborts instead of completing
// unresumable work.
func (w *CheckpointWriter) FailFast(hook func()) {
	w.mu.Lock()
	w.onFail = hook
	w.mu.Unlock()
}

// OnBlock is the Spec.OnBlock hook for the single-record form.
func (w *CheckpointWriter) OnBlock(b Block, partial *SizeStats) {
	w.fold(0, b, partial)
}

// OnBlockFor returns the Spec.OnBlock hook folding into records[k].
func (w *CheckpointWriter) OnBlockFor(k int) func(Block, *SizeStats) {
	return func(b Block, partial *SizeStats) { w.fold(k, b, partial) }
}

func (w *CheckpointWriter) fold(k int, b Block, partial *SizeStats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records[k].Fold(b, partial)
	if w.err == nil {
		if w.err = w.save(); w.err != nil && w.onFail != nil {
			w.onFail()
		}
	}
}

// Checkpoint returns the first wrapped record. Only call after the
// sweep's Run returned — the writer mutates it from worker goroutines
// during a run.
func (w *CheckpointWriter) Checkpoint() *Checkpoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records[0]
}

// Err reports the first persistence failure, if any.
func (w *CheckpointWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
