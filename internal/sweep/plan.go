package sweep

import (
	"fmt"
	"math"

	"repro/internal/ids"
)

// This file is the PLAN layer of the engine: the serializable description
// of what a sweep executes — seed, sizes, trial space, shard range — and
// the deterministic chunking of that space into contiguous blocks. Plans
// carry none of the Spec's functions (Graph, Alg, ...); they are the part
// of a sweep that can cross a process boundary, be compared for a resume,
// or be recorded in a checkpoint. The EXECUTE layer (execute.go) runs the
// planned blocks through the worker pool; the MERGE layer (merge.go,
// codec.go) folds the per-shard aggregates back together.

// Shard selects the contiguous slice Index (0-based) of Count of every
// size's trial space: sampled trial indices and exhaustive permutation
// ranks partition identically, so m shard runs cover each (size, trial)
// coordinate exactly once and their merged aggregates are byte-identical
// to a single run. The zero value selects everything.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// IsZero reports the unsharded zero value.
func (s Shard) IsZero() bool { return s == Shard{} }

// validate accepts the zero value or 0 <= Index < Count.
func (s Shard) validate() error {
	if s.IsZero() {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: invalid shard %d/%d: need 0 <= index < count", s.Index, s.Count)
	}
	return nil
}

// Range returns the half-open trial subrange [lo, hi) of a size with total
// trials owned by this shard: contiguous, nearly equal, with the remainder
// spread over the lowest shard indices. The zero-value shard owns [0, total).
func (s Shard) Range(total int) (lo, hi int) {
	if s.IsZero() {
		return 0, total
	}
	base, rem := total/s.Count, total%s.Count
	lo = s.Index*base + min(s.Index, rem)
	hi = lo + base
	if s.Index < rem {
		hi++
	}
	return lo, hi
}

// TrialRange is a half-open range [T0, T1) of trial indices (or, under
// Exhaustive, permutation ranks) at one size — the unit checkpoints record
// completed work in.
type TrialRange struct {
	T0 int `json:"t0"`
	T1 int `json:"t1"`
}

// Block is one schedulable unit of a plan: a contiguous trial range at one
// size index. Blocks are what workers execute, what Spec.OnBlock observes,
// and what checkpoints mark as done.
type Block struct {
	SizeIdx int `json:"size"`
	T0      int `json:"t0"`
	T1      int `json:"t1"`
}

// Plan is the serializable coordinate description of one sweep shard. Two
// processes holding equal Plans (and equivalent Spec functions) execute
// disjoint-or-identical work depending only on Shard, so a Plan is the
// identity a checkpoint or a shard file validates against before merging.
type Plan struct {
	Seed int64 `json:"seed"`
	// Sizes is the n sweep, in Spec order.
	Sizes []int `json:"sizes"`
	// Trials is the sampled-permutation count per size; 0 under Exhaustive.
	Trials int `json:"trials,omitempty"`
	// Exhaustive marks full n! rank enumeration instead of sampling.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Quotient marks symmetry-quotient enumeration: the trial space is the
	// canonical-representative rank space (n!/Orders[i] per size) and every
	// executed trial folds with weight Orders[i]. Only valid with
	// Exhaustive.
	Quotient bool `json:"quotient,omitempty"`
	// Orders holds, per size, the declared automorphism group order — the
	// uniform orbit size and hence the fold weight — when Quotient is set.
	// It is part of the plan's identity: two quotient plans tile the same
	// trial space only if they quotient by the same groups.
	Orders []uint64 `json:"orders,omitempty"`
	// Shard is the contiguous slice of every size's trial space this plan
	// covers; the zero value covers everything.
	Shard Shard `json:"shard"`
}

// PlanOf derives the plan a Spec executes, normalising the trial count the
// way Run does (unset sampled Trials means 1; Exhaustive pins it to 0).
// Under Quotient it builds the spec's graphs (the same seeded construction
// Run performs) to record each size's declared group order, so deriving a
// quotient plan can fail the way Run would.
func PlanOf(spec Spec) (Plan, error) {
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	if spec.Exhaustive {
		trials = 0
	}
	p := Plan{
		Seed:       spec.Seed,
		Sizes:      append([]int(nil), spec.Sizes...),
		Trials:     trials,
		Exhaustive: spec.Exhaustive,
		Quotient:   spec.Quotient,
		Shard:      spec.Shard,
	}
	if spec.Quotient {
		graphs, err := buildGraphs(spec)
		if err != nil {
			return Plan{}, err
		}
		qs, err := quotientsFor(graphs)
		if err != nil {
			return Plan{}, err
		}
		p.Orders = make([]uint64, len(qs))
		for i, q := range qs {
			p.Orders[i] = q.Order()
		}
	}
	return p, nil
}

// Counts returns the per-size GLOBAL trial counts the plan's coordinates
// range over: the sampled count everywhere, the full n! rank space under
// Exhaustive, or the n!/Orders[i] canonical rank space under Quotient.
// This is the space Shard ranges, Done lists and lease schedules are
// carved out of.
func (p Plan) Counts() ([]int, error) {
	trials := p.Trials
	if trials <= 0 {
		trials = 1
	}
	counts := make([]int, len(p.Sizes))
	for i, n := range p.Sizes {
		counts[i] = trials
		if p.Exhaustive {
			f, err := ids.Factorial(n)
			if err != nil {
				return nil, fmt.Errorf("sweep: exhaustive size %d: %w", n, err)
			}
			if p.Quotient {
				if i >= len(p.Orders) || p.Orders[i] == 0 || f%p.Orders[i] != 0 {
					return nil, fmt.Errorf("sweep: quotient plan carries no valid group order for size %d", n)
				}
				f /= p.Orders[i]
			}
			if f > math.MaxInt {
				return nil, fmt.Errorf("sweep: exhaustive trial count %d overflows int at size %d", f, n)
			}
			counts[i] = int(f)
		}
	}
	return counts, nil
}

// Weight returns the fold weight of one executed trial at size index i:
// the orbit size Orders[i] under Quotient, 1 otherwise. Call Counts first
// on untrusted plans — it validates that Orders aligns with Sizes.
func (p Plan) Weight(i int) int {
	if !p.Quotient {
		return 1
	}
	return int(p.Orders[i])
}

// Equal reports whether two plans describe the same work.
func (p Plan) Equal(o Plan) bool {
	if p.Seed != o.Seed || p.Trials != o.Trials || p.Exhaustive != o.Exhaustive ||
		p.Quotient != o.Quotient || p.Shard != o.Shard ||
		len(p.Sizes) != len(o.Sizes) || len(p.Orders) != len(o.Orders) {
		return false
	}
	for i, n := range p.Sizes {
		if o.Sizes[i] != n {
			return false
		}
	}
	for i, w := range p.Orders {
		if o.Orders[i] != w {
			return false
		}
	}
	return true
}

// validateDone checks a Spec.Done resume list against the per-size global
// trial counts: ranges must be ascending, non-overlapping, and inside
// [0, count). An empty list (or a nil inner slice) is always valid.
func validateDone(done [][]TrialRange, counts []int) error {
	if len(done) == 0 {
		return nil
	}
	if len(done) != len(counts) {
		return fmt.Errorf("sweep: Done has %d size entries, spec has %d sizes", len(done), len(counts))
	}
	for i, ranges := range done {
		prev := 0
		for k, r := range ranges {
			if r.T0 < 0 || r.T1 > counts[i] || r.T0 >= r.T1 {
				return fmt.Errorf("sweep: Done size %d range [%d,%d) outside [0,%d)", i, r.T0, r.T1, counts[i])
			}
			if k > 0 && r.T0 < prev {
				return fmt.Errorf("sweep: Done size %d ranges out of order or overlapping at [%d,%d)", i, r.T0, r.T1)
			}
			prev = r.T1
		}
	}
	return nil
}

// subtractRanges returns the ascending complement of done within [lo, hi).
// done must be ascending and non-overlapping (validateDone enforces it).
func subtractRanges(lo, hi int, done []TrialRange) []TrialRange {
	var out []TrialRange
	cur := lo
	for _, d := range done {
		if d.T1 <= cur {
			continue
		}
		if d.T0 >= hi {
			break
		}
		if d.T0 > cur {
			out = append(out, TrialRange{T0: cur, T1: min(d.T0, hi)})
		}
		if d.T1 > cur {
			cur = d.T1
		}
		if cur >= hi {
			return out
		}
	}
	if cur < hi {
		out = append(out, TrialRange{T0: cur, T1: hi})
	}
	return out
}

// planBlocks chunks every size's runnable trial ranges — the shard's slice
// of the global space minus the Done ranges — into worker-pool blocks.
// order lists size indices largest instance first (the buffer-growth
// heuristic of the execute layer); within a size, blocks stay in ascending
// trial order. A few blocks per worker balances load without serialising
// on the job channel, exactly like the pre-split engine's chunking.
func planBlocks(order, counts []int, shard Shard, done [][]TrialRange, workers int) []Block {
	blocks := make([]Block, 0, len(counts)*(4*workers+1))
	// The common case — no resume — runs one whole range per size; a
	// stack-backed singleton keeps that path allocation-free.
	var whole [1]TrialRange
	for _, i := range order {
		lo, hi := shard.Range(counts[i])
		whole[0] = TrialRange{T0: lo, T1: hi}
		runnable := whole[:]
		if len(done) > 0 {
			runnable = subtractRanges(lo, hi, done[i])
		}
		planned := 0
		for _, r := range runnable {
			planned += r.T1 - r.T0
		}
		chunk := planned / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		for _, r := range runnable {
			for t0 := r.T0; t0 < r.T1; t0 += chunk {
				t1 := t0 + chunk
				if t1 > r.T1 {
					t1 = r.T1
				}
				blocks = append(blocks, Block{SizeIdx: i, T0: t0, T1: t1})
			}
		}
	}
	return blocks
}

// plannedTrials sums the trial counts of a block list per size index and in
// total — the execute layer's cancellation accounting.
func plannedTrials(blocks []Block) int {
	total := 0
	for _, b := range blocks {
		total += b.T1 - b.T0
	}
	return total
}
