package sweep

import (
	"fmt"
	"math"

	"repro/internal/ids"
)

// This file is the PLAN layer of the engine: the serializable description
// of what a sweep executes — seed, sizes, trial space, shard range — and
// the deterministic chunking of that space into contiguous blocks. Plans
// carry none of the Spec's functions (Graph, Alg, ...); they are the part
// of a sweep that can cross a process boundary, be compared for a resume,
// or be recorded in a checkpoint. The EXECUTE layer (execute.go) runs the
// planned blocks through the worker pool; the MERGE layer (merge.go,
// codec.go) folds the per-shard aggregates back together.

// Shard selects the contiguous slice Index (0-based) of Count of every
// size's trial space: sampled trial indices and exhaustive permutation
// ranks partition identically, so m shard runs cover each (size, trial)
// coordinate exactly once and their merged aggregates are byte-identical
// to a single run. The zero value selects everything.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// IsZero reports the unsharded zero value.
func (s Shard) IsZero() bool { return s == Shard{} }

// validate accepts the zero value or 0 <= Index < Count.
func (s Shard) validate() error {
	if s.IsZero() {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: invalid shard %d/%d: need 0 <= index < count", s.Index, s.Count)
	}
	return nil
}

// Range returns the half-open trial subrange [lo, hi) of a size with total
// trials owned by this shard: contiguous, nearly equal, with the remainder
// spread over the lowest shard indices. The zero-value shard owns [0, total).
func (s Shard) Range(total int) (lo, hi int) {
	if s.IsZero() {
		return 0, total
	}
	base, rem := total/s.Count, total%s.Count
	lo = s.Index*base + min(s.Index, rem)
	hi = lo + base
	if s.Index < rem {
		hi++
	}
	return lo, hi
}

// TrialRange is a half-open range [T0, T1) of trial indices (or, under
// Exhaustive, permutation ranks) at one size — the unit checkpoints record
// completed work in.
type TrialRange struct {
	T0 int `json:"t0"`
	T1 int `json:"t1"`
}

// Block is one schedulable unit of a plan: a contiguous trial range at one
// size index. Blocks are what workers execute, what Spec.OnBlock observes,
// and what checkpoints mark as done.
type Block struct {
	SizeIdx int `json:"size"`
	T0      int `json:"t0"`
	T1      int `json:"t1"`
}

// Plan is the serializable coordinate description of one sweep shard. Two
// processes holding equal Plans (and equivalent Spec functions) execute
// disjoint-or-identical work depending only on Shard, so a Plan is the
// identity a checkpoint or a shard file validates against before merging.
type Plan struct {
	Seed int64 `json:"seed"`
	// Sizes is the n sweep, in Spec order.
	Sizes []int `json:"sizes"`
	// Trials is the sampled-permutation count per size; 0 under Exhaustive.
	Trials int `json:"trials,omitempty"`
	// Exhaustive marks full n! rank enumeration instead of sampling.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Shard is the contiguous slice of every size's trial space this plan
	// covers; the zero value covers everything.
	Shard Shard `json:"shard"`
}

// PlanOf derives the plan a Spec executes, normalising the trial count the
// way Run does (unset sampled Trials means 1; Exhaustive pins it to 0).
func PlanOf(spec Spec) Plan {
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	if spec.Exhaustive {
		trials = 0
	}
	return Plan{
		Seed:       spec.Seed,
		Sizes:      append([]int(nil), spec.Sizes...),
		Trials:     trials,
		Exhaustive: spec.Exhaustive,
		Shard:      spec.Shard,
	}
}

// Counts returns the per-size GLOBAL trial counts the plan's coordinates
// range over: the sampled count everywhere, or the full n! rank space
// under Exhaustive. This is the space Shard ranges, Done lists and lease
// schedules are carved out of.
func (p Plan) Counts() ([]int, error) {
	trials := p.Trials
	if trials <= 0 {
		trials = 1
	}
	counts := make([]int, len(p.Sizes))
	for i, n := range p.Sizes {
		counts[i] = trials
		if p.Exhaustive {
			f, err := ids.Factorial(n)
			if err != nil {
				return nil, fmt.Errorf("sweep: exhaustive size %d: %w", n, err)
			}
			if f > math.MaxInt {
				return nil, fmt.Errorf("sweep: exhaustive trial count %d overflows int at size %d", f, n)
			}
			counts[i] = int(f)
		}
	}
	return counts, nil
}

// Equal reports whether two plans describe the same work.
func (p Plan) Equal(o Plan) bool {
	if p.Seed != o.Seed || p.Trials != o.Trials || p.Exhaustive != o.Exhaustive ||
		p.Shard != o.Shard || len(p.Sizes) != len(o.Sizes) {
		return false
	}
	for i, n := range p.Sizes {
		if o.Sizes[i] != n {
			return false
		}
	}
	return true
}

// validateDone checks a Spec.Done resume list against the per-size global
// trial counts: ranges must be ascending, non-overlapping, and inside
// [0, count). An empty list (or a nil inner slice) is always valid.
func validateDone(done [][]TrialRange, counts []int) error {
	if len(done) == 0 {
		return nil
	}
	if len(done) != len(counts) {
		return fmt.Errorf("sweep: Done has %d size entries, spec has %d sizes", len(done), len(counts))
	}
	for i, ranges := range done {
		prev := 0
		for k, r := range ranges {
			if r.T0 < 0 || r.T1 > counts[i] || r.T0 >= r.T1 {
				return fmt.Errorf("sweep: Done size %d range [%d,%d) outside [0,%d)", i, r.T0, r.T1, counts[i])
			}
			if k > 0 && r.T0 < prev {
				return fmt.Errorf("sweep: Done size %d ranges out of order or overlapping at [%d,%d)", i, r.T0, r.T1)
			}
			prev = r.T1
		}
	}
	return nil
}

// subtractRanges returns the ascending complement of done within [lo, hi).
// done must be ascending and non-overlapping (validateDone enforces it).
func subtractRanges(lo, hi int, done []TrialRange) []TrialRange {
	var out []TrialRange
	cur := lo
	for _, d := range done {
		if d.T1 <= cur {
			continue
		}
		if d.T0 >= hi {
			break
		}
		if d.T0 > cur {
			out = append(out, TrialRange{T0: cur, T1: min(d.T0, hi)})
		}
		if d.T1 > cur {
			cur = d.T1
		}
		if cur >= hi {
			return out
		}
	}
	if cur < hi {
		out = append(out, TrialRange{T0: cur, T1: hi})
	}
	return out
}

// planBlocks chunks every size's runnable trial ranges — the shard's slice
// of the global space minus the Done ranges — into worker-pool blocks.
// order lists size indices largest instance first (the buffer-growth
// heuristic of the execute layer); within a size, blocks stay in ascending
// trial order. A few blocks per worker balances load without serialising
// on the job channel, exactly like the pre-split engine's chunking.
func planBlocks(order, counts []int, shard Shard, done [][]TrialRange, workers int) []Block {
	blocks := make([]Block, 0, len(counts)*(4*workers+1))
	// The common case — no resume — runs one whole range per size; a
	// stack-backed singleton keeps that path allocation-free.
	var whole [1]TrialRange
	for _, i := range order {
		lo, hi := shard.Range(counts[i])
		whole[0] = TrialRange{T0: lo, T1: hi}
		runnable := whole[:]
		if len(done) > 0 {
			runnable = subtractRanges(lo, hi, done[i])
		}
		planned := 0
		for _, r := range runnable {
			planned += r.T1 - r.T0
		}
		chunk := planned / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		for _, r := range runnable {
			for t0 := r.T0; t0 < r.T1; t0 += chunk {
				t1 := t0 + chunk
				if t1 > r.T1 {
					t1 = r.T1
				}
				blocks = append(blocks, Block{SizeIdx: i, T0: t0, T1: t1})
			}
		}
	}
	return blocks
}

// plannedTrials sums the trial counts of a block list per size index and in
// total — the execute layer's cancellation accounting.
func plannedTrials(blocks []Block) int {
	total := 0
	for _, b := range blocks {
		total += b.T1 - b.T0
	}
	return total
}
