package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// realResult produces an aggregate with every field exercised (histogram,
// extremal trials, float summaries) for round-trip checks.
func realResult(t *testing.T) *Result {
	t.Helper()
	res, err := Run(context.Background(), cycleSpec(13, []int{9, 16}, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResultCodecRoundTrip: encode → decode is lossless for every
// aggregate field, including float summaries (Go's JSON floats are
// shortest-round-trip) and the pooled histogram.
func TestResultCodecRoundTrip(t *testing.T) {
	res := realResult(t)
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Errorf("round trip lost data\nin:  %+v\nout: %+v", res, got)
	}
}

// TestDecodeResultRejects pins the typed-error contract on every corruption
// class: garbage bytes, wrong format tag, foreign version, payload with
// impossible aggregates.
func TestDecodeResultRejects(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"garbage", "not json at all", "malformed envelope"},
		{"wrongFormat", `{"format":"sweep.checkpoint","version":2,"payload":{}}`, "not"},
		{"futureVersion", `{"format":"sweep.result","version":99,"payload":{}}`, "unsupported version"},
		{"badPayload", `{"format":"sweep.result","version":2,"payload":[1,2,3]}`, "malformed payload"},
		{"negativeTrials", `{"format":"sweep.result","version":2,"payload":{"sizes":[{"n":4,"trials":-1}]}}`, "impossible trial counts"},
		{"failuresOverTrials", `{"format":"sweep.result","version":2,"payload":{"sizes":[{"n":4,"trials":1,"failures":2}]}}`, "impossible trial counts"},
		{"negativeHist", `{"format":"sweep.result","version":2,"payload":{"sizes":[{"n":4,"trials":1,"hist":[-5]}]}}`, "negative histogram"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeResult(strings.NewReader(c.input))
			if err == nil {
				t.Fatal("corrupted input accepted")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v is not a *DecodeError", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestCheckpointCodecRejects covers the checkpoint-specific validation.
func TestCheckpointCodecRejects(t *testing.T) {
	cases := []string{
		`{"format":"sweep.checkpoint","version":2,"payload":{"plan":{"sizes":[4]},"done":[],"sizes":[]}}`,
		`{"format":"sweep.checkpoint","version":2,"payload":{"plan":{"sizes":[4]},"done":[[{"t0":5,"t1":2}]],"sizes":[{"n":4}]}}`,
		`{"format":"sweep.checkpoint","version":2,"payload":{"plan":{"sizes":[4]},"done":[[{"t0":0,"t1":4},{"t0":2,"t1":6}]],"sizes":[{"n":4}]}}`,
	}
	for i, input := range cases {
		_, err := DecodeCheckpoint(strings.NewReader(input))
		if err == nil {
			t.Errorf("case %d: inconsistent checkpoint accepted", i)
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("case %d: error %v is not a *DecodeError", i, err)
		}
	}
}

// TestDecodeErrorMessage: the error names the expected format and unwraps
// to its cause.
func TestDecodeErrorMessage(t *testing.T) {
	cause := fmt.Errorf("boom")
	err := &DecodeError{Format: FormatResult, Reason: "r", Err: cause}
	if !strings.Contains(err.Error(), FormatResult) {
		t.Errorf("message %q missing format", err)
	}
	if !errors.Is(err, cause) {
		t.Error("DecodeError does not unwrap")
	}
}
