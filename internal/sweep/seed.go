package sweep

// Deterministic seed derivation. Every unit of work — one graph build, one
// (size, trial) execution — gets its own 64-bit seed computed purely from
// the sweep seed and the work's coordinates, never from which worker or in
// which order the work happens to run. This is the whole determinism story:
// the shard layout can change with the worker count, the per-unit
// randomness cannot.

// splitmix64 is the finaliser of the SplitMix64 generator — a cheap,
// well-mixed 64-bit permutation (Steele, Lea & Flood, OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// derive mixes the sweep seed with two work coordinates into an rng seed.
func derive(seed int64, a, b uint64) int64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ (a+1)*0x9e3779b97f4a7c15)
	x = splitmix64(x ^ (b+1)*0xd1b54a32d192ed03)
	return int64(x)
}

// graphSeed seeds the generator handed to Spec.Graph for size index i.
func graphSeed(seed int64, sizeIdx int) int64 {
	return derive(seed, uint64(sizeIdx), 0)
}

// trialSeed seeds the generator handed to Spec.Assign for one trial.
func trialSeed(seed int64, sizeIdx, trial int) int64 {
	return derive(seed, uint64(sizeIdx), uint64(trial)+1)
}
