package cli

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func TestReportClassifiesAndNamesOffenders(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		wantCode int
		wantSubs []string
	}{
		{
			name: "incomplete is recoverable",
			err: fmt.Errorf("experiments: E6 sweep 0: %w",
				&sweep.IncompleteError{N: 16, Missing: []sweep.TrialRange{{T0: 4, T1: 8}}, Prefix: "lease/e6-abc/s0"}),
			wantCode: ExitIncomplete,
			wantSubs: []string{"incomplete run", `"lease/e6-abc/s0"`, "caused by: sweep: n=16"},
		},
		{
			name: "overlap is corrupt and names the record",
			err: &sweep.OverlapError{N: 24, A: sweep.TrialRange{T0: 0, T1: 8},
				B: sweep.TrialRange{T0: 4, T1: 12}, Key: "lease/e6-abc/s0/done/24-4"},
			wantCode: ExitCorrupt,
			wantSubs: []string{"corrupt data", "double-count", `"lease/e6-abc/s0/done/24-4"`},
		},
		{
			name:     "decode is corrupt and names the file",
			err:      fmt.Errorf("s1.json: %w", &sweep.DecodeError{Format: "shardfile", Reason: "bad json", Key: "s1.json"}),
			wantCode: ExitCorrupt,
			wantSubs: []string{"failed decoding", `"s1.json"`},
		},
		{
			name: "unreachable endpoint is a network fault naming the URL",
			err: fmt.Errorf("sweepworker: assignment E6: %w", sweep.Transient(
				&sweep.UnreachableError{URL: "http://coord:8350/store/lease/e6-ff/s0/plan",
					Err: errors.New("connection refused")})),
			wantCode: ExitUnreachable,
			wantSubs: []string{"network fault", `"http://coord:8350/store/lease/e6-ff/s0/plan"`,
				"caused by: sweep: store endpoint", "retry"},
		},
		{
			name: "implicit-unsupported is configuration and lists qualifying families",
			err: fmt.Errorf("E11: %w", &sweep.ImplicitUnsupportedError{
				Graph: "*graph.CSRGraph", N: 10000000,
				Qualifying: []string{"cycle (graph.Cycle)", "path (graph.Path)"}}),
			wantCode: ExitFailure,
			wantSubs: []string{"configuration", "*graph.CSRGraph", "n=10000000",
				"cycle (graph.Cycle)", "path (graph.Path)", "drop -backend implicit"},
		},
		{
			name:     "unknown backend is configuration and names the valid set",
			err:      fmt.Errorf("avgbench: %w", &sweep.UnknownBackendError{Name: "csr"}),
			wantCode: ExitFailure,
			wantSubs: []string{"configuration", `"csr"`, "atlas, builder, implicit"},
		},
		{
			name: "quotient-unsupported is configuration and lists qualifying families",
			err: fmt.Errorf("E10: %w", &sweep.QuotientUnsupportedError{
				Graph: "*graph.Adj", N: 12,
				Qualifying: []string{"cycle (graph.Cycle)", "torus (graph.Torus)"}}),
			wantCode: ExitFailure,
			wantSubs: []string{"configuration", "*graph.Adj", "n=12",
				"cycle (graph.Cycle)", "torus (graph.Torus)", "drop -quotient"},
		},
		{
			name: "spec conflict is configuration and names both fields",
			err: fmt.Errorf("avgbench: %w", &sweep.SpecConflictError{
				Fields: []string{"Quotient", "Exhaustive"},
				Reason: "Quotient compresses the exhaustive rank space; set Exhaustive too"}),
			wantCode: ExitFailure,
			wantSubs: []string{"configuration", "Quotient and Exhaustive", "rank space"},
		},
		{
			name:     "anything else is generic",
			err:      errors.New("no shard files given"),
			wantCode: ExitFailure,
			wantSubs: []string{"no shard files given"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			code := Report(&out, "tool", tc.err)
			if code != tc.wantCode {
				t.Errorf("code = %d, want %d\noutput:\n%s", code, tc.wantCode, out.String())
			}
			for _, sub := range tc.wantSubs {
				if !strings.Contains(out.String(), sub) {
					t.Errorf("output missing %q:\n%s", sub, out.String())
				}
			}
		})
	}
}
