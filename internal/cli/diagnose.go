// Package cli is the error-reporting discipline avgbench and sweepmerge
// share: typed sweep failures are printed as a readable cause chain with
// the offending store key or file, and the process exit code tells scripts
// WHAT failed — an incomplete run a retry can finish (exit 2) versus
// corrupt data no retry will fix (exit 3) versus everything else (exit 1).
package cli

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/sweep"
)

// Exit codes scripts can branch on. A wrapper that sees ExitIncomplete can
// start another executor or simply re-run the merge later; ExitCorrupt
// means a human must look at the named record before anything is merged.
const (
	// ExitFailure is any failure without a more specific diagnosis.
	ExitFailure = 1
	// ExitIncomplete marks a recoverable state: the run's trial space is
	// not yet fully covered (*sweep.IncompleteError).
	ExitIncomplete = 2
	// ExitCorrupt marks data no retry will fix: overlapping trial-range
	// claims (*sweep.OverlapError) or records that fail decoding
	// (*sweep.DecodeError).
	ExitCorrupt = 3
	// ExitUnreachable marks a network fault: the coordinator or store
	// endpoint could not be reached (*sweep.UnreachableError). The data is
	// presumed fine — retry once the network or the coordinator is back.
	ExitUnreachable = 4
)

// Report prints err to w as "tool: err" plus its unwrap chain and a typed
// diagnosis line, and returns the exit code for the failure class.
func Report(w io.Writer, tool string, err error) int {
	fmt.Fprintf(w, "%s: %v\n", tool, err)
	for cause := errors.Unwrap(err); cause != nil; cause = errors.Unwrap(cause) {
		fmt.Fprintf(w, "%s:   caused by: %v\n", tool, cause)
	}

	var inc *sweep.IncompleteError
	var ov *sweep.OverlapError
	var dec *sweep.DecodeError
	var un *sweep.UnreachableError
	var impl *sweep.ImplicitUnsupportedError
	var ub *sweep.UnknownBackendError
	var quo *sweep.QuotientUnsupportedError
	var conf *sweep.SpecConflictError
	switch {
	case errors.As(err, &quo):
		fmt.Fprintf(w, "%s: diagnosis: configuration — symmetry-quotient enumeration needs a graph family declaring its automorphism group, and %s (n=%d) declines", tool, quo.Graph, quo.N)
		if len(quo.Qualifying) > 0 {
			fmt.Fprintf(w, "; qualifying families: %s", strings.Join(quo.Qualifying, ", "))
		}
		fmt.Fprintf(w, "; pick one of them or drop -quotient (exit %d)\n", ExitFailure)
		return ExitFailure
	case errors.As(err, &conf):
		fmt.Fprintf(w, "%s: diagnosis: configuration — conflicting sweep options %s: %s (exit %d)\n",
			tool, strings.Join(conf.Fields, " and "), conf.Reason, ExitFailure)
		return ExitFailure
	case errors.As(err, &impl):
		fmt.Fprintf(w, "%s: diagnosis: configuration — the implicit backend needs a graph family with closed-form balls, and %s (n=%d) has none", tool, impl.Graph, impl.N)
		if len(impl.Qualifying) > 0 {
			fmt.Fprintf(w, "; qualifying families: %s", strings.Join(impl.Qualifying, ", "))
		}
		fmt.Fprintf(w, "; pick one of them or drop -backend implicit (exit %d)\n", ExitFailure)
		return ExitFailure
	case errors.As(err, &ub):
		fmt.Fprintf(w, "%s: diagnosis: configuration — backend %q is not one of atlas, builder, implicit (exit %d)\n", tool, ub.Name, ExitFailure)
		return ExitFailure
	case errors.As(err, &inc):
		fmt.Fprintf(w, "%s: diagnosis: incomplete run — coverage has gaps at n=%d", tool, inc.N)
		if inc.Prefix != "" {
			fmt.Fprintf(w, " under %q", inc.Prefix)
		}
		fmt.Fprintf(w, "; recoverable: finish or restart the executors, then merge again (exit %d)\n", ExitIncomplete)
		return ExitIncomplete
	case errors.As(err, &ov):
		fmt.Fprintf(w, "%s: diagnosis: corrupt data — overlapping trial-range claims at n=%d would double-count", tool, ov.N)
		if ov.Key != "" {
			fmt.Fprintf(w, "; inspect store record %q", ov.Key)
		}
		fmt.Fprintf(w, " (exit %d)\n", ExitCorrupt)
		return ExitCorrupt
	case errors.As(err, &dec):
		fmt.Fprintf(w, "%s: diagnosis: corrupt data — %s record failed decoding", tool, dec.Format)
		if dec.Key != "" {
			fmt.Fprintf(w, "; inspect %q", dec.Key)
		}
		fmt.Fprintf(w, " (exit %d)\n", ExitCorrupt)
		return ExitCorrupt
	case errors.As(err, &un):
		fmt.Fprintf(w, "%s: diagnosis: network fault — store endpoint unreachable", tool)
		if un.URL != "" {
			fmt.Fprintf(w, " at %q", un.URL)
		}
		fmt.Fprintf(w, "; the data is presumed intact: check the coordinator and the network, then retry (exit %d)\n", ExitUnreachable)
		return ExitUnreachable
	}
	return ExitFailure
}
