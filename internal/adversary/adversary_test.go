package adversary

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestDefaultTargetRadius(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{4, 1},      // log*(2)/2 = 0 -> clamped to 1
		{32, 1},     // log*(16) = 3 -> 1
		{200000, 2}, // log*(100000) = 5 -> 2
	}
	for _, tt := range tests {
		if got := DefaultTargetRadius(tt.n); got != tt.want {
			t.Errorf("DefaultTargetRadius(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestBuildProducesValidPermutation(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(30))
	b := Builder{Alg: coloring.ForMaxID(n - 1)}
	pi, report, err := b.Build(n, rng)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := pi.Validate(); err != nil {
		t.Fatalf("pi invalid: %v", err)
	}
	if len(pi) != n {
		t.Fatalf("pi length %d", len(pi))
	}
	if report.Slices == 0 {
		t.Error("no slices carved")
	}
	wantCover := report.Slices*(2*report.TargetRadius+1) + report.Tail
	if wantCover != n {
		t.Errorf("slices+tail cover %d, want %d", wantCover, n)
	}
	// More than half the identifiers must sit in carved slices (the loop
	// runs while the pool exceeds n/2).
	if report.Tail > n/2 {
		t.Errorf("tail %d exceeds n/2", report.Tail)
	}
}

// TestSliceCentersKeepTargetRadius is the transplant property at the heart
// of the proof: every slice centre retains radius >= R under pi.
func TestSliceCentersKeepTargetRadius(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(31))
	alg := coloring.ForMaxID(n - 1)
	b := Builder{Alg: alg}
	pi, report, err := b.Build(n, rng)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := graph.MustCycle(n)
	res, err := local.RunView(c, pi, alg)
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, pi, res.Outputs); err != nil {
		t.Fatalf("colouring under pi broken: %v", err)
	}
	for _, centre := range report.SliceCenters {
		if res.Radii[centre] < report.TargetRadius {
			t.Errorf("slice centre %d has radius %d < target %d",
				centre, res.Radii[centre], report.TargetRadius)
		}
	}
}

// TestAdversaryKeepsAverageUp is E5 in miniature: under the adversarial pi
// the average radius stays at the algorithm's floor — averaging does not
// beat Ω(log* n).
func TestAdversaryKeepsAverageUp(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(32))
	alg := coloring.Uniform{}
	b := Builder{Alg: alg}
	pi, _, err := b.Build(n, rng)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := graph.MustCycle(n)
	advRes, err := local.RunView(c, pi, alg)
	if err != nil {
		t.Fatalf("RunView adversarial: %v", err)
	}
	rndRes, err := local.RunView(c, ids.Random(n, rng), alg)
	if err != nil {
		t.Fatalf("RunView random: %v", err)
	}
	if advRes.AvgRadius() < 1 {
		t.Errorf("adversarial average %v below 1", advRes.AvgRadius())
	}
	// The adversary must do at least as well as (close to) a random draw.
	if advRes.AvgRadius() < rndRes.AvgRadius()/3 {
		t.Errorf("adversarial avg %v far below random avg %v",
			advRes.AvgRadius(), rndRes.AvgRadius())
	}
}

// TestBuildDeterministicAcrossWorkers pins the parallel-scoring refactor:
// the built permutation depends only on the rng stream, so any worker
// count (and the serial path) produces byte-identical results.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	const n = 128
	build := func(workers int) (ids.Assignment, *Report) {
		b := Builder{Alg: coloring.ForMaxID(n - 1), Workers: workers}
		pi, report, err := b.Build(n, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pi, report
	}
	basePi, baseReport := build(1)
	for _, workers := range []int{2, 4, 8} {
		pi, report := build(workers)
		if !reflect.DeepEqual(pi, basePi) {
			t.Errorf("workers=%d: permutation differs from serial build", workers)
		}
		if !reflect.DeepEqual(report, baseReport) {
			t.Errorf("workers=%d: report differs: %+v vs %+v", workers, report, baseReport)
		}
	}
}

func TestBuildRejectsTinyCycles(t *testing.T) {
	b := Builder{Alg: coloring.ForMaxID(4)}
	if _, _, err := b.Build(2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestBuildUnreachableTarget(t *testing.T) {
	// A radius-0 algorithm can never be forced to radius 5.
	b := Builder{Alg: constantAlg{}, TargetRadius: 5, MaxTries: 4}
	_, _, err := b.Build(64, rand.New(rand.NewSource(2)))
	if !errors.Is(err, ErrNoHardInstance) {
		t.Errorf("err = %v, want ErrNoHardInstance", err)
	}
}

// constantAlg decides instantly — an (incorrect) colouring stand-in used to
// exercise the failure path.
type constantAlg struct{}

func (constantAlg) Name() string                  { return "constant" }
func (constantAlg) Decide(local.View) (int, bool) { return 0, true }

func TestLemma2ViolationsFlatRadii(t *testing.T) {
	c := graph.MustCycle(16)
	flat := make([]int, 16)
	for i := range flat {
		flat[i] = 3
	}
	if v := Lemma2Violations(c, flat, 5); v != 0 {
		t.Errorf("flat radii produced %d violations", v)
	}
}

func TestLemma2ViolationsSpike(t *testing.T) {
	// One huge radius between two tiny ones violates the bound for small k.
	c := graph.MustCycle(12)
	radii := make([]int, 12)
	radii[5] = 100
	if v := Lemma2Violations(c, radii, 3); v == 0 {
		t.Error("spike not flagged")
	}
}

func TestLemma2ViolationsLengthMismatch(t *testing.T) {
	c := graph.MustCycle(8)
	if v := Lemma2Violations(c, []int{1, 2}, 3); v != 0 {
		t.Errorf("mismatched input produced %d", v)
	}
}

func TestLemma3RatioFlat(t *testing.T) {
	c := graph.MustCycle(10)
	radii := []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4}
	ratio, ok := Lemma3Ratio(c, radii)
	if !ok {
		t.Fatal("no ratio computed")
	}
	if ratio != 1 {
		t.Errorf("flat ratio = %v, want 1", ratio)
	}
}

func TestLemma3RatioSpike(t *testing.T) {
	// An isolated radius spike amid zeros drives the ratio down.
	c := graph.MustCycle(20)
	radii := make([]int, 20)
	radii[7] = 10
	ratio, ok := Lemma3Ratio(c, radii)
	if !ok {
		t.Fatal("no ratio computed")
	}
	if ratio > 0.2 {
		t.Errorf("spiky ratio = %v, want small", ratio)
	}
}

func TestLemma3RatioNoEligibleVertices(t *testing.T) {
	c := graph.MustCycle(5)
	if _, ok := Lemma3Ratio(c, []int{0, 1, 0, 1, 0}); ok {
		t.Error("ratio reported with no radius >= 2")
	}
	if _, ok := Lemma3Ratio(c, []int{1, 2}); ok {
		t.Error("mismatched input accepted")
	}
}
