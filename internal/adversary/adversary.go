// Package adversary implements the lower-bound machinery from the proof of
// Theorem 1: the construction of a permutation pi of the identifiers that
// keeps the AVERAGE radius of any 3-colouring algorithm at Ω(log* n).
//
// The construction (§3 of the paper): as long as more than n/2 identifiers
// remain, find an arrangement of the remaining identifiers on a cycle that
// forces some vertex to radius at least R = ½·log*(n/2) (Linial's bound
// guarantees one exists), carve out the R-ball around that vertex, and
// concatenate the carved slices; the leftovers fill the tail. Transplanting
// a slice preserves its centre's radius, because a deterministic view
// algorithm's decision depends only on the ball it sees; Lemma 3 then lifts
// the centre's radius to the slice average.
//
// The package also provides executable versions of the two regularity
// lemmas (Lemma 2 and Lemma 3) used to audit radius distributions.
package adversary

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// Builder constructs Theorem-1 adversarial permutations against a concrete
// view algorithm.
type Builder struct {
	// Alg is the 3-colouring (or other) view algorithm to stress.
	Alg local.ViewAlgorithm
	// TargetRadius is the per-slice radius goal R. Zero means the paper's
	// value max(1, ceil(log*(n/2)/2)).
	TargetRadius int
	// MaxTries bounds the arrangements sampled per slice (default 32).
	MaxTries int
	// Workers bounds the pool scoring a slice's candidate arrangements
	// (0 = GOMAXPROCS). All candidates are drawn from the rng up front and
	// the first reaching the target is selected regardless of which worker
	// scored it, so the built permutation depends only on the rng stream,
	// never on the worker count.
	Workers int
}

// Report describes how the permutation was assembled.
type Report struct {
	// TargetRadius is the per-slice radius goal R actually used.
	TargetRadius int
	// Slices is the number of carved R-balls.
	Slices int
	// SliceCenters are the positions (in the final permutation) of the
	// carved balls' centres: slice j is centred at (2R+1)j + R.
	SliceCenters []int
	// Tail is the number of leftover identifiers appended at the end.
	Tail int
}

// ErrNoHardInstance indicates the sampler could not force the target radius
// within MaxTries arrangements — for honest algorithms with Ω(log* n)
// radius this only happens if TargetRadius is set too high.
var ErrNoHardInstance = errors.New("adversary: no arrangement reached the target radius")

// DefaultTargetRadius is the paper's R = ½·log*(n/2), at least 1.
func DefaultTargetRadius(n int) int {
	r := analytic.LogStar(float64(n)/2) / 2
	if r < 1 {
		return 1
	}
	return r
}

// Build assembles the adversarial permutation for an n-cycle. The returned
// assignment is a permutation of {0..n-1}.
func (b Builder) Build(n int, rng *rand.Rand) (ids.Assignment, *Report, error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("adversary: need n >= 3, got %d", n)
	}
	target := b.TargetRadius
	if target <= 0 {
		target = DefaultTargetRadius(n)
	}
	maxTries := b.MaxTries
	if maxTries <= 0 {
		maxTries = 32
	}

	pool := make([]int, n)
	for i := range pool {
		pool[i] = i
	}
	var windows [][]int
	report := &Report{TargetRadius: target}
	slice := 2*target + 1
	for len(pool) > n/2 && len(pool) >= slice && len(pool) >= 3 {
		window, rest, err := b.carve(pool, target, maxTries, rng)
		if err != nil {
			return nil, nil, err
		}
		report.SliceCenters = append(report.SliceCenters, slice*report.Slices+target)
		report.Slices++
		windows = append(windows, window)
		pool = rest
	}
	if report.Slices == 0 {
		return nil, nil, fmt.Errorf("adversary: target radius %d admits no %d-vertex slice on an %d-cycle", target, slice, n)
	}
	report.Tail = len(pool)
	pi, err := ids.FromWindows(n, windows, pool)
	if err != nil {
		return nil, nil, fmt.Errorf("adversary: assemble pi: %w", err)
	}
	return pi, report, nil
}

// carve finds an arrangement of pool on a len(pool)-cycle forcing some
// vertex to the target radius and cuts out that vertex's ball.
//
// All maxTries candidate arrangements are drawn from the rng up front —
// the stream's consumption is then a pure function of (pool, maxTries) —
// and scored in parallel waves over sweep.Map, each execution served from
// one shared ball atlas of the slice's cycle instead of re-running BFS per
// try. The first candidate (in draw order) reaching the target wins, so
// the selection is byte-identical to a serial scan at any worker count.
func (b Builder) carve(pool []int, target, maxTries int, rng *rand.Rand) (window, rest []int, err error) {
	m := len(pool)
	c, err := graph.NewCycle(m)
	if err != nil {
		return nil, nil, err
	}
	arrangements := make([]ids.Assignment, maxTries)
	for t := range arrangements {
		arrangement := make(ids.Assignment, m)
		for i, j := range rng.Perm(m) {
			arrangement[i] = pool[j]
		}
		arrangements[t] = arrangement
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// One atlas per slice: every candidate shares the cycle's BFS layers,
	// and kernel-capable algorithms take the flat path. Runners are pooled
	// because sweep.Map hands out indices, not worker slots.
	atlas := graph.NewBallAtlas(c, 0)
	runners := sync.Pool{New: func() any {
		r := local.NewRunner()
		r.SetAtlas(atlas)
		return r
	}}
	// hits[t] is the first vertex candidate t forces to the target radius,
	// or -1. Waves keep the typical case cheap: the first wave usually
	// contains a hit, so later candidates are never executed at all.
	hits := make([]int, maxTries)
	for wave := 0; wave < maxTries; wave += workers {
		end := wave + workers
		if end > maxTries {
			end = maxTries
		}
		if err := sweep.Map(context.Background(), workers, end-wave, func(i int) error {
			t := wave + i
			r := runners.Get().(*local.Runner)
			defer runners.Put(r)
			res, err := r.Run(c, arrangements[t], b.Alg)
			if err != nil {
				return err
			}
			hits[t] = -1
			for u, rad := range res.Radii {
				if rad >= target {
					hits[t] = u
					break
				}
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
		for t := wave; t < end; t++ {
			v := hits[t]
			if v < 0 {
				continue
			}
			w, err := arrangements[t].Window(v, target)
			if err != nil {
				return nil, nil, err
			}
			used := make(map[int]bool, len(w))
			for _, id := range w {
				used[id] = true
			}
			rest = make([]int, 0, m-len(w))
			for _, id := range pool {
				if !used[id] {
					rest = append(rest, id)
				}
			}
			return w, rest, nil
		}
	}
	return nil, nil, fmt.Errorf("%w (target %d, m=%d)", ErrNoHardInstance, target, m)
}

// Lemma2Violations counts, over all arcs of at most maxGap interior
// vertices, how many interior vertices exceed the Lemma 2 regularity bound
// max{r(x), r(y)} + k, where x and y are the arc endpoints and k the number
// of interior vertices. For a minimal algorithm the count is provably zero
// (for 4-colouring); for honest implementations it is an audit statistic.
func Lemma2Violations(c graph.Cycle, radii []int, maxGap int) int {
	n := c.N()
	if len(radii) != n {
		return 0
	}
	violations := 0
	for x := 0; x < n; x++ {
		rMax := radii[x]
		for k := 1; k <= maxGap && k <= n-2; k++ {
			y := (x + k + 1) % n
			bound := radii[y]
			if rMax > bound {
				bound = rMax
			}
			bound += k
			for d := 1; d <= k; d++ {
				if radii[(x+d)%n] > bound {
					violations++
				}
			}
		}
	}
	return violations
}

// Lemma3Ratio returns, for each vertex v with radius r(v) >= 2, the ratio
// between the average radius of the vertices at distance at most r(v)/2
// from v and r(v) itself. Lemma 3 asserts the ratio is bounded below by a
// constant for minimal algorithms; the minimum observed ratio is the audit
// statistic experiments report.
func Lemma3Ratio(c graph.Cycle, radii []int) (minRatio float64, ok bool) {
	n := c.N()
	if len(radii) != n {
		return 0, false
	}
	minRatio = -1
	for v := 0; v < n; v++ {
		r := radii[v]
		if r < 2 {
			continue
		}
		half := r / 2
		sum, count := 0, 0
		for d := -half; d <= half; d++ {
			sum += radii[((v+d)%n+n)%n]
			count++
		}
		ratio := float64(sum) / float64(count) / float64(r)
		if minRatio < 0 || ratio < minRatio {
			minRatio = ratio
		}
	}
	if minRatio < 0 {
		return 0, false
	}
	return minRatio, true
}
