package linial

import (
	"fmt"

	"repro/internal/algorithms/coloring"
	"repro/internal/local"
)

// TableAlgorithm is a 3-colouring algorithm SYNTHESIZED from a proper
// colouring of the neighbourhood graph: every radius-r window of distinct
// identifiers below S is mapped to its colour by table lookup. By
// construction it is correct on every ring of length >= 2r+1 whose
// identifiers are below S, and it decides at radius exactly r at every
// vertex — the minimum any algorithm can achieve for that identifier
// space. This is the paper's "minimal algorithm" notion made concrete:
// Theorem 1's proof quantifies over algorithms none of which can beat
// these tables on average.
type TableAlgorithm struct {
	s, r  int
	table map[string]int
}

var _ local.ViewAlgorithm = (*TableAlgorithm)(nil)

// Synthesize builds a radius-r 3-colouring table for identifier space s by
// 3-colouring N_r(s) exactly. It fails if no such algorithm exists (the
// neighbourhood graph is not 3-colourable) or the exact search exceeds its
// budget.
func Synthesize(s, r int) (*TableAlgorithm, error) {
	g, views, err := NeighborhoodGraph(s, r)
	if err != nil {
		return nil, err
	}
	ok, colours, err := IsKColorable(g, 3)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("linial: no radius-%d 3-colouring algorithm exists for identifier space %d", r, s)
	}
	table := make(map[string]int, len(views))
	for i, view := range views {
		table[tupleKey(view)] = colours[i]
	}
	return &TableAlgorithm{s: s, r: r, table: table}, nil
}

// Radius reports the fixed decision radius of the table.
func (ta *TableAlgorithm) Radius() int { return ta.r }

// Name implements local.ViewAlgorithm.
func (ta *TableAlgorithm) Name() string {
	return fmt.Sprintf("linial/table(s=%d,r=%d)", ta.s, ta.r)
}

// Decide looks the centre's radius-r identifier window up in the table.
// On rings so short that the view closes within radius r (length <=
// 2r+1), every vertex switches to the canonical full-view greedy rule —
// consistently, since closure happens at the same radius ring-wide.
// Identifiers outside the synthesis space make the node undecidable (the
// engine's radius cap will report it) — the table's contract is rings with
// identifiers below S.
func (ta *TableAlgorithm) Decide(v local.View) (int, bool) {
	if v.Closed(2) && v.Radius() <= ta.r {
		// Ring of length <= 2r+2 that closed within the table radius:
		// every vertex reaches this branch at the same radius, so the
		// canonical full-view rule is applied consistently ring-wide.
		return coloring.FullViewGreedy{}.Decide(v)
	}
	if v.Radius() < ta.r {
		return 0, false
	}
	window, ok := ringWindow(v, ta.r)
	if !ok {
		return 0, false
	}
	colour, found := ta.table[tupleKey(window)]
	if !found {
		return 0, false
	}
	return colour, true
}

// ringWindow reads the identifiers at ring offsets -r..r around the viewing
// vertex, in clockwise order, using the oriented-ring port convention. Only
// interior rows of the view are followed, which a radius >= r view of a
// ring always provides.
func ringWindow(v local.View, r int) ([]int, bool) {
	window := make([]int, 2*r+1)
	window[r] = v.CenterID()
	cur := 0
	for i := 1; i <= r; i++ {
		row := v.Neighbors(cur)
		if len(row) < 2 {
			return nil, false
		}
		cur = row[0] // successor
		window[r+i] = v.ID(cur)
	}
	cur = 0
	for i := 1; i <= r; i++ {
		row := v.Neighbors(cur)
		if len(row) < 2 {
			return nil, false
		}
		cur = row[1] // predecessor
		window[r-i] = v.ID(cur)
	}
	return window, true
}
