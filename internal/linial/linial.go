// Package linial implements the combinatorial core of Linial's lower bound
// [Linial 1992], which Theorem 1 of the paper uses as a black box: the
// NEIGHBOURHOOD GRAPH N_r(s) of the oriented ring. Its vertices are the
// possible radius-r views (ordered (2r+1)-tuples of distinct identifiers
// from {0..s-1}); two views are adjacent when they can occur at adjacent
// ring vertices (they overlap in 2r identifiers). A radius-r algorithm
// that k-colours every ring with identifiers from [s] IS a proper
// k-colouring of N_r(s) — so deciding the chromatic number of N_r(s)
// decides exactly how much radius a k-colouring needs.
//
// The package builds N_r(s) explicitly and decides k-colourability by
// exact backtracking, yielding machine-checked impossibility certificates:
// "no radius-r 3-colouring algorithm exists for identifier space s".
package linial

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// MaxViews caps the neighbourhood-graph size (number of views) to keep the
// construction and the exact search tractable.
const MaxViews = 200000

// NeighborhoodGraph builds N_r(s) together with the view tuple of each
// vertex. Views are ordered tuples (x_-r, ..., x_0, ..., x_r) of distinct
// identifiers read clockwise; vertex i of the result corresponds to
// views[i].
//
// The adjacency models rings of length at least 2r+2 (so that 2r+2
// consecutive ring vertices carry distinct identifiers) — the standard
// Linial object. Rings of length exactly 2r+1 are NOT encoded: a radius-r
// view there is closed (the node sees the whole ring) and is therefore
// distinguishable from every open window; TableAlgorithm handles that case
// by a canonical full-view rule instead of the lookup table.
func NeighborhoodGraph(s, r int) (*graph.Adj, [][]int, error) {
	if r < 0 {
		return nil, nil, fmt.Errorf("linial: negative radius %d", r)
	}
	w := 2*r + 1
	if s < w+1 {
		// A ring long enough to make all views realisable needs at least
		// w+1 distinct identifiers; below that N_r(s) is degenerate.
		return nil, nil, fmt.Errorf("linial: identifier space %d too small for window %d", s, w)
	}
	count := 1
	for i := 0; i < w; i++ {
		count *= s - i
		if count > MaxViews {
			return nil, nil, fmt.Errorf("linial: N_%d(%d) exceeds the %d-view cap", r, s, MaxViews)
		}
	}
	views := enumerateTuples(s, w)
	index := make(map[string]int, len(views))
	for i, v := range views {
		index[tupleKey(v)] = i
	}
	seen := make(map[[2]int]bool)
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		seen[[2]int{i, j}] = true
	}
	suffix := make([]int, w)
	for i, v := range views {
		// Rings longer than the window: successor views share the last 2r
		// identifiers of v as their first 2r; the appended identifier is
		// fresh within the (2r+2)-window (2r+2 consecutive ring vertices
		// are distinct on such rings).
		copy(suffix, v[1:])
		for d := 0; d < s; d++ {
			if contains(v, d) {
				continue
			}
			suffix[w-1] = d
			if j, ok := index[tupleKey(suffix)]; ok {
				addEdge(i, j)
			}
		}
	}
	edges := make([][2]int, 0, len(seen))
	for e := range seen {
		edges = append(edges, e)
	}
	sortEdges(edges)
	g, err := graph.NewAdj(len(views), edges)
	if err != nil {
		return nil, nil, err
	}
	return g, views, nil
}

// enumerateTuples lists all ordered w-tuples of distinct values below s in
// lexicographic order.
func enumerateTuples(s, w int) [][]int {
	var out [][]int
	tuple := make([]int, 0, w)
	used := make([]bool, s)
	var rec func()
	rec = func() {
		if len(tuple) == w {
			out = append(out, append([]int(nil), tuple...))
			return
		}
		for v := 0; v < s; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			tuple = append(tuple, v)
			rec()
			tuple = tuple[:len(tuple)-1]
			used[v] = false
		}
	}
	rec()
	return out
}

func tupleKey(t []int) string {
	key := make([]byte, 0, 2*len(t))
	for _, v := range t {
		key = append(key, byte(v), ':')
	}
	return string(key)
}

func contains(t []int, v int) bool {
	for _, x := range t {
		if x == v {
			return true
		}
	}
	return false
}

// sortEdges orders the deduplicated edge set deterministically.
func sortEdges(edges [][2]int) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
}

// SearchBudget caps the number of backtracking steps in IsKColorable.
const SearchBudget = 50_000_000

// ErrBudget indicates the exact search exceeded its step budget without a
// verdict.
var ErrBudget = fmt.Errorf("linial: colourability search budget exhausted")

// IsKColorable decides by exact DSATUR-style backtracking whether g admits
// a proper k-colouring, returning the colouring when one exists. At every
// step the most colour-constrained uncoloured vertex is branched on
// (saturated vertices force or fail immediately), and colour symmetry is
// broken by never introducing colour c before colours 0..c-1 have been
// used.
func IsKColorable(g *graph.Adj, k int) (bool, []int, error) {
	n := g.N()
	if k >= 31 {
		return false, nil, fmt.Errorf("linial: k=%d too large for the bitmask solver", k)
	}
	colours := make([]int, n)
	forbidden := make([]uint32, n) // bitmask of neighbour colours
	for i := range colours {
		colours[i] = -1
	}
	full := uint32(1)<<uint(k) - 1
	steps := 0

	var rec func(coloured, maxUsed int) (bool, error)
	rec = func(coloured, maxUsed int) (bool, error) {
		if coloured == n {
			return true, nil
		}
		steps++
		if steps > SearchBudget {
			return false, ErrBudget
		}
		// Most-saturated uncoloured vertex; ties by degree.
		best, bestSat := -1, -1
		for v := 0; v < n; v++ {
			if colours[v] >= 0 {
				continue
			}
			sat := popcount(forbidden[v] & full)
			if sat > bestSat || (sat == bestSat && best >= 0 && g.Degree(v) > g.Degree(best)) {
				best, bestSat = v, sat
			}
		}
		v := best
		// Symmetry breaking: allow at most one brand-new colour.
		limit := maxUsed + 1
		if limit >= k {
			limit = k - 1
		}
		for c := 0; c <= limit; c++ {
			if forbidden[v]&(1<<uint(c)) != 0 {
				continue
			}
			colours[v] = c
			var bumped []int
			for p := 0; p < g.Degree(v); p++ {
				w := g.Neighbor(v, p)
				if forbidden[w]&(1<<uint(c)) == 0 {
					forbidden[w] |= 1 << uint(c)
					bumped = append(bumped, w)
				}
			}
			nextMax := maxUsed
			if c > maxUsed {
				nextMax = c
			}
			done, err := rec(coloured+1, nextMax)
			if err != nil {
				return false, err
			}
			if done {
				return true, nil
			}
			colours[v] = -1
			for _, w := range bumped {
				forbidden[w] &^= 1 << uint(c)
			}
		}
		return false, nil
	}
	ok, err := rec(0, -1)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, colours, nil
}

func popcount(x uint32) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// Verdict is the outcome of a radius-r / ID-space-s feasibility question.
type Verdict struct {
	S, R   int
	Views  int
	Edges  int
	Usable bool // a radius-r 3-colouring algorithm exists for ID space s
}

// ThreeColorable reports whether a radius-r 3-colouring algorithm exists
// for identifier space s, by deciding the 3-colourability of N_r(s).
func ThreeColorable(s, r int) (Verdict, error) {
	g, views, err := NeighborhoodGraph(s, r)
	if err != nil {
		return Verdict{}, err
	}
	ok, colouring, err := IsKColorable(g, 3)
	if err != nil {
		return Verdict{}, err
	}
	if ok {
		// Double-check the witness before reporting feasibility.
		for _, e := range graph.Edges(g) {
			if colouring[e[0]] == colouring[e[1]] {
				return Verdict{}, fmt.Errorf("linial: invalid colouring witness")
			}
		}
	}
	return Verdict{S: s, R: r, Views: len(views), Edges: graph.NumEdges(g), Usable: ok}, nil
}

// SmallestHardSpace returns the smallest identifier space s in
// [minS, maxS] for which NO radius-r 3-colouring algorithm exists, or
// ok=false if every s in range is still colourable.
func SmallestHardSpace(r, minS, maxS int) (int, bool, error) {
	for s := minS; s <= maxS; s++ {
		v, err := ThreeColorable(s, r)
		if err != nil {
			return 0, false, err
		}
		if !v.Usable {
			return s, true, nil
		}
	}
	return 0, false, nil
}
