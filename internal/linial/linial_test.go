package linial

import (
	"testing"

	"repro/internal/graph"
)

func TestNeighborhoodGraphRadiusZero(t *testing.T) {
	// N_0(s): views are single identifiers; any two distinct identifiers
	// can be adjacent on a ring, so N_0(s) = K_s.
	g, views, err := NeighborhoodGraph(4, 0)
	if err != nil {
		t.Fatalf("NeighborhoodGraph: %v", err)
	}
	if len(views) != 4 {
		t.Fatalf("views = %d, want 4", len(views))
	}
	if graph.NumEdges(g) != 6 {
		t.Errorf("N_0(4) has %d edges, want K_4's 6", graph.NumEdges(g))
	}
}

func TestRadiusZeroThreeColourability(t *testing.T) {
	// K_3 is 3-colourable, K_4 is not: a radius-0 3-colouring algorithm
	// exists exactly when the identifier space has at most 3 identifiers.
	// (s=3 means rings of length 3 at most — the degenerate base case.)
	v4, err := ThreeColorable(4, 0)
	if err != nil {
		t.Fatalf("ThreeColorable(4,0): %v", err)
	}
	if v4.Usable {
		t.Error("radius-0 3-colouring reported possible for s=4")
	}
}

func TestNeighborhoodGraphStructure(t *testing.T) {
	g, views, err := NeighborhoodGraph(5, 1)
	if err != nil {
		t.Fatalf("NeighborhoodGraph: %v", err)
	}
	if len(views) != 5*4*3 {
		t.Fatalf("views = %d, want 60", len(views))
	}
	if err := graph.Validate(g); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	// Spot-check adjacency semantics: (0,1,2) must neighbour (1,2,3).
	idx := func(a, b, c int) int {
		for i, v := range views {
			if v[0] == a && v[1] == b && v[2] == c {
				return i
			}
		}
		t.Fatalf("view (%d,%d,%d) not found", a, b, c)
		return -1
	}
	if !graph.Adjacent(g, idx(0, 1, 2), idx(1, 2, 3)) {
		t.Error("(0,1,2) not adjacent to (1,2,3)")
	}
	// No rotation edge: rings of length exactly 3 are handled by the
	// closed-view branch of TableAlgorithm, not by the window table.
	if graph.Adjacent(g, idx(0, 1, 2), idx(1, 2, 0)) {
		t.Error("(0,1,2) adjacent to its rotation (1,2,0); length-3 rings are out of scope here")
	}
	if graph.Adjacent(g, idx(0, 1, 2), idx(2, 3, 4)) {
		t.Error("non-overlapping views adjacent")
	}
	if graph.Adjacent(g, idx(0, 1, 2), idx(1, 4, 2)) {
		t.Error("views with mismatched overlap adjacent")
	}
}

func TestNeighborhoodGraphErrors(t *testing.T) {
	if _, _, err := NeighborhoodGraph(3, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, _, err := NeighborhoodGraph(3, 1); err == nil {
		t.Error("too-small identifier space accepted")
	}
	if _, _, err := NeighborhoodGraph(50, 2); err == nil {
		t.Error("oversized construction accepted (cap)")
	}
}

func TestIsKColorableKnownGraphs(t *testing.T) {
	c5 := cycleAdj(t, 5)
	if ok, _, err := IsKColorable(c5, 2); err != nil || ok {
		t.Errorf("C5 reported 2-colourable (ok=%v err=%v)", ok, err)
	}
	ok, colours, err := IsKColorable(c5, 3)
	if err != nil || !ok {
		t.Fatalf("C5 not 3-colourable (err=%v)", err)
	}
	for _, e := range graph.Edges(c5) {
		if colours[e[0]] == colours[e[1]] {
			t.Fatalf("witness colouring improper at %v", e)
		}
	}
	k4, err := graph.NewComplete(4)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := IsKColorable(k4, 3); ok {
		t.Error("K4 reported 3-colourable")
	}
	if ok, _, _ := IsKColorable(k4, 4); !ok {
		t.Error("K4 reported not 4-colourable")
	}
}

func cycleAdj(t *testing.T, n int) *graph.Adj {
	t.Helper()
	edges := make([][2]int, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	g, err := graph.NewAdj(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRadiusOneThreshold pins the exact radius-1 feasibility threshold this
// module computes: a radius-1 3-colouring algorithm for the oriented ring
// exists for identifier spaces up to SIX identifiers and provably not for
// seven. (Monotonicity — N_1(s') is a subgraph of N_1(s) for s' <= s —
// extends the impossibility to every larger space, which is Linial's
// phenomenon in its smallest concrete instance.)
func TestRadiusOneThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("exact search skipped in -short mode")
	}
	for s := 4; s <= 6; s++ {
		v, err := ThreeColorable(s, 1)
		if err != nil {
			t.Fatalf("ThreeColorable(%d,1): %v", s, err)
		}
		if !v.Usable {
			t.Errorf("s=%d: expected feasible", s)
		}
	}
	v7, err := ThreeColorable(7, 1)
	if err != nil {
		t.Fatalf("ThreeColorable(7,1): %v", err)
	}
	if v7.Usable {
		t.Error("s=7: expected infeasible (the exact threshold)")
	}
	s, found, err := SmallestHardSpace(1, 4, 7)
	if err != nil {
		t.Fatalf("SmallestHardSpace: %v", err)
	}
	if !found || s != 7 {
		t.Errorf("SmallestHardSpace = (%d,%v), want (7,true)", s, found)
	}
}
