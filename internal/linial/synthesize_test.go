package linial

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func TestSynthesizeRadiusOne(t *testing.T) {
	// s=6 is the LARGEST identifier space admitting a radius-1 3-colouring
	// (see TestRadiusOneThreshold). The synthesized table must colour
	// every ring of length 3..6 with identifiers below 6, at radius
	// exactly 1 on every open-window ring.
	ta, err := Synthesize(6, 1)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if ta.Radius() != 1 {
		t.Fatalf("Radius = %d", ta.Radius())
	}
	for n := 3; n <= 6; n++ {
		c := graph.MustCycle(n)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				a, err := ids.FromPerm(perm)
				if err != nil {
					t.Fatal(err)
				}
				res, err := local.RunView(c, a, ta)
				if err != nil {
					t.Fatalf("n=%d perm %v: %v", n, perm, err)
				}
				if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
					t.Fatalf("n=%d perm %v: %v", n, perm, err)
				}
				if res.MaxRadius() > 1 {
					t.Fatalf("n=%d perm %v: max radius %d, want <= 1", n, perm, res.MaxRadius())
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
	}
}

func TestSynthesizeRejectsInfeasible(t *testing.T) {
	// Radius 0 with 4 identifiers is provably impossible (N_0(4) = K_4),
	// and radius 1 with 7 identifiers is the exact radius-1 threshold.
	if _, err := Synthesize(4, 0); err == nil {
		t.Fatal("impossible radius-0 synthesis succeeded")
	}
	if _, err := Synthesize(7, 1); err == nil {
		t.Fatal("impossible radius-1 synthesis succeeded for s=7")
	}
}

func TestSynthesizeRadiusZeroTinySpace(t *testing.T) {
	// With only 3 identifiers the only rings are C_3 relabelings and a
	// radius-0 table works.
	ta, err := Synthesize(3, 0)
	if err != nil {
		t.Fatalf("Synthesize(3,0): %v", err)
	}
	c := graph.MustCycle(3)
	a := ids.Identity(3)
	res, err := local.RunView(c, a, ta)
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
		t.Errorf("radius-0 table colouring invalid: %v", err)
	}
}

func TestTableAlgorithmOutOfSpaceUndecidable(t *testing.T) {
	ta, err := Synthesize(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// n=6 brings identifier 5 into play, outside the synthesis space, on a
	// ring too long for the closed-view fallback: the engine must report
	// the violation instead of mis-colouring.
	c := graph.MustCycle(6)
	if _, err := local.RunView(c, ids.Identity(6), ta); err == nil {
		t.Error("out-of-space identifiers silently accepted")
	}
}

// TestSynthesizedBeatsColeVishkin pins the radius comparison: the table
// decides at radius 1 where Cole-Vishkin needs its full k+3 schedule — the
// synthesized table is a MINIMAL algorithm in the paper's sense for its
// identifier space.
func TestSynthesizedBeatsColeVishkin(t *testing.T) {
	ta, err := Synthesize(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// n=6 has closure radius 3 > 1: pure window lookups everywhere.
	c := graph.MustCycle(6)
	a, err := ids.FromPerm([]int{3, 0, 4, 1, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.RunView(c, a, ta)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.Coloring{K: 3}).Verify(c, a, res.Outputs); err != nil {
		t.Fatalf("colouring invalid: %v", err)
	}
	if res.MaxRadius() != 1 || res.AvgRadius() != 1 {
		t.Errorf("table: max=%d avg=%v, want 1/1", res.MaxRadius(), res.AvgRadius())
	}
}
