package measure

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]int{0, 1, 2, 3, 4})
	if s.N != 5 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("N=%d Max=%d Sum=%d, want 5,4,10", s.N, s.Max, s.Sum)
	}
	if s.Avg != 2 {
		t.Errorf("Avg = %v, want 2", s.Avg)
	}
	if s.Median != 2 {
		t.Errorf("Median = %v, want 2", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Max != 0 || s.Sum != 0 || s.Avg != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSkewed(t *testing.T) {
	// One long runner among many early stoppers — the largest-ID shape.
	radii := make([]int, 100)
	radii[37] = 50
	s := Summarize(radii)
	if s.Max != 50 {
		t.Errorf("Max = %d", s.Max)
	}
	if s.Avg != 0.5 {
		t.Errorf("Avg = %v, want 0.5", s.Avg)
	}
	if s.Median != 0 {
		t.Errorf("Median = %v, want 0", s.Median)
	}
}

func TestQuantile(t *testing.T) {
	vals := []int{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{-1, 1},
		{2, 4},
	}
	for _, tt := range tests {
		if got := Quantile(vals, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []int{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Quantile sorted its input in place")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 0, 1, 3})
	want := []int{2, 1, 0, 1}
	if len(h) != len(want) {
		t.Fatalf("Histogram = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Errorf("histogram mass = %d, want 4", total)
	}
}

func TestHistogramMassInvariant(t *testing.T) {
	prop := func(raw []uint8) bool {
		radii := make([]int, len(raw))
		for i, r := range raw {
			radii[i] = int(r) % 32
		}
		total := 0
		for _, c := range Histogram(radii) {
			total += c
		}
		return total == len(radii)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("histogram loses mass: %v", err)
	}
}

func TestNewAggregate(t *testing.T) {
	summaries := []Summary{
		{N: 4, Max: 3, Sum: 4, Avg: 1.0},
		{N: 4, Max: 5, Sum: 8, Avg: 2.0},
		{N: 4, Max: 2, Sum: 6, Avg: 1.5},
	}
	agg := NewAggregate(summaries)
	if agg.Runs != 3 {
		t.Errorf("Runs = %d", agg.Runs)
	}
	if agg.WorstAvg != 2.0 {
		t.Errorf("WorstAvg = %v, want 2", agg.WorstAvg)
	}
	if agg.WorstMax != 5 {
		t.Errorf("WorstMax = %d, want 5", agg.WorstMax)
	}
	if agg.MeanAvg != 1.5 {
		t.Errorf("MeanAvg = %v, want 1.5", agg.MeanAvg)
	}
	if math.Abs(agg.MeanMax-10.0/3) > 1e-12 {
		t.Errorf("MeanMax = %v, want 10/3", agg.MeanMax)
	}
}

func TestNewAggregateEmpty(t *testing.T) {
	agg := NewAggregate(nil)
	if agg.Runs != 0 || agg.WorstAvg != 0 || agg.WorstMax != 0 {
		t.Errorf("empty aggregate not zero: %+v", agg)
	}
}

func TestAggregateStringStable(t *testing.T) {
	agg := NewAggregate([]Summary{{N: 2, Max: 1, Sum: 1, Avg: 0.5}})
	want := "runs=1 worstAvg=0.500 worstMax=1 meanAvg=0.500 meanMax=1.0"
	if agg.String() != want {
		t.Errorf("String = %q, want %q", agg.String(), want)
	}
}
