package measure

import (
	"errors"
	"math"
)

// Fit is a least-squares fit y ≈ Slope*x + Intercept with its coefficient
// of determination. The experiments use it to check growth rates: fitting
// the measured average radius against ln n should give a stable positive
// slope and R² near 1 if the quantity is Θ(log n), and a slope tending to
// zero if it is o(log n).
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// ErrFitUnderdetermined indicates fewer than two distinct x values.
var ErrFitUnderdetermined = errors.New("measure: fit needs at least two distinct x values")

// LinearFit computes the ordinary least-squares line through (x[i], y[i]).
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, errors.New("measure: fit inputs have different lengths")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Fit{}, ErrFitUnderdetermined
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, ErrFitUnderdetermined
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		// All y equal: the horizontal line fits exactly.
		f.R2 = 1
		return f, nil
	}
	var ssRes float64
	for i := range x {
		d := y[i] - (f.Slope*x[i] + f.Intercept)
		ssRes += d * d
	}
	f.R2 = 1 - ssRes/ssTot
	return f, nil
}

// FitAgainstLog fits y against ln(n): the Θ(log n) growth check.
func FitAgainstLog(ns []int, y []float64) (Fit, error) {
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = math.Log(float64(n))
	}
	return LinearFit(x, y)
}

// FitAgainstLinear fits y against n: the Θ(n) growth check.
func FitAgainstLinear(ns []int, y []float64) (Fit, error) {
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = float64(n)
	}
	return LinearFit(x, y)
}

// FitAgainstNLogN fits y against n·ln(n): the Θ(n ln n) growth check for
// the recurrence a(n).
func FitAgainstNLogN(ns []int, y []float64) (Fit, error) {
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = float64(n) * math.Log(float64(n))
	}
	return LinearFit(x, y)
}

// GrowthRatios returns y[i+1]/y[i] for consecutive sweep points; a sequence
// tending to 1 indicates sub-polynomial growth (log-like), a sequence
// tending to the n-ratio indicates linear growth.
func GrowthRatios(y []float64) []float64 {
	if len(y) < 2 {
		return nil
	}
	out := make([]float64, 0, len(y)-1)
	for i := 1; i < len(y); i++ {
		if y[i-1] == 0 {
			out = append(out, math.Inf(1))
			continue
		}
		out = append(out, y[i]/y[i-1])
	}
	return out
}
