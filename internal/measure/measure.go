// Package measure computes the complexity measures the paper compares —
// the classic worst-case radius max_v r(v) and the new average radius
// (Σ_v r(v))/n — together with the aggregation across identifier
// permutations (worst case or expectation) and the curve fits used to check
// growth rates (Θ(log n), Θ(n ln n), Θ(log* n)).
package measure

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses one radius vector into the statistics the experiments
// report. The JSON tags define the stable serialized shape the sweep
// engine's versioned codec embeds in shard and checkpoint files; renaming
// one is a format change there.
type Summary struct {
	N   int     `json:"n"`
	Max int     `json:"max"`
	Sum int     `json:"sum"`
	Avg float64 `json:"avg"`
	// Median and P90 describe the distribution's shape: for largest-ID the
	// paper predicts a heavily skewed distribution (most vertices stop
	// early, few run long), for colouring a flat one.
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
}

// Summarize computes a Summary of one radius vector.
func Summarize(radii []int) Summary {
	s := Summary{N: len(radii)}
	if len(radii) == 0 {
		return s
	}
	for _, r := range radii {
		s.Sum += r
		if r > s.Max {
			s.Max = r
		}
	}
	s.Avg = float64(s.Sum) / float64(s.N)
	s.Median = Quantile(radii, 0.5)
	s.P90 = Quantile(radii, 0.9)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the values using linear
// interpolation between order statistics. It returns NaN for empty input.
func Quantile(values []int, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	if q <= 0 {
		return float64(sorted[0])
	}
	if q >= 1 {
		return float64(sorted[len(sorted)-1])
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// Histogram counts radii into unit bins 0..max.
func Histogram(radii []int) []int {
	max := 0
	for _, r := range radii {
		if r > max {
			max = r
		}
	}
	h := make([]int, max+1)
	for _, r := range radii {
		if r < 0 {
			continue
		}
		h[r]++
	}
	return h
}

// Aggregate combines summaries across identifier permutations of the same
// instance size: the paper's measures take the worst case over assignments,
// the further-work section asks about the expectation.
type Aggregate struct {
	Runs int
	// WorstAvg is max over runs of the per-run average radius — the paper's
	// average-complexity measure estimated over the sampled permutations.
	WorstAvg float64
	// WorstMax is max over runs of the per-run maximum radius — the classic
	// measure over the sampled permutations.
	WorstMax int
	// MeanAvg is the empirical expectation of the average radius over the
	// sampled permutations (uniformly random identifiers).
	MeanAvg float64
	// MeanMax is the empirical expectation of the maximum radius.
	MeanMax float64
}

// NewAggregate folds per-run summaries into an Aggregate.
func NewAggregate(summaries []Summary) Aggregate {
	agg := Aggregate{Runs: len(summaries)}
	if len(summaries) == 0 {
		return agg
	}
	var sumAvg, sumMax float64
	for _, s := range summaries {
		if s.Avg > agg.WorstAvg {
			agg.WorstAvg = s.Avg
		}
		if s.Max > agg.WorstMax {
			agg.WorstMax = s.Max
		}
		sumAvg += s.Avg
		sumMax += float64(s.Max)
	}
	agg.MeanAvg = sumAvg / float64(len(summaries))
	agg.MeanMax = sumMax / float64(len(summaries))
	return agg
}

// String renders the aggregate compactly for experiment tables.
func (a Aggregate) String() string {
	return fmt.Sprintf("runs=%d worstAvg=%.3f worstMax=%d meanAvg=%.3f meanMax=%.1f",
		a.Runs, a.WorstAvg, a.WorstMax, a.MeanAvg, a.MeanMax)
}
