package measure

import (
	"math"
	"testing"
)

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatalf("LinearFit: %v", err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
}

func TestLinearFitConstant(t *testing.T) {
	f, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatalf("LinearFit: %v", err)
	}
	if math.Abs(f.Slope) > 1e-12 {
		t.Errorf("slope = %v, want 0", f.Slope)
	}
	if f.R2 != 1 {
		t.Errorf("R2 = %v, want 1 for exact horizontal fit", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFitAgainstLogDetectsLogGrowth(t *testing.T) {
	// y = 3 ln n exactly.
	ns := []int{16, 64, 256, 1024, 4096}
	y := make([]float64, len(ns))
	for i, n := range ns {
		y[i] = 3 * math.Log(float64(n))
	}
	f, err := FitAgainstLog(ns, y)
	if err != nil {
		t.Fatalf("FitAgainstLog: %v", err)
	}
	if math.Abs(f.Slope-3) > 1e-9 || f.R2 < 0.999 {
		t.Errorf("fit = %+v, want slope 3 R2~1", f)
	}
}

func TestFitAgainstLinearDetectsLinearGrowth(t *testing.T) {
	ns := []int{10, 20, 40, 80}
	y := []float64{5, 10, 20, 40} // y = n/2
	f, err := FitAgainstLinear(ns, y)
	if err != nil {
		t.Fatalf("FitAgainstLinear: %v", err)
	}
	if math.Abs(f.Slope-0.5) > 1e-12 || f.R2 < 0.999 {
		t.Errorf("fit = %+v, want slope 0.5", f)
	}
}

func TestFitAgainstNLogN(t *testing.T) {
	ns := []int{8, 32, 128, 512}
	y := make([]float64, len(ns))
	for i, n := range ns {
		y[i] = 1.5*float64(n)*math.Log(float64(n)) + 2
	}
	f, err := FitAgainstNLogN(ns, y)
	if err != nil {
		t.Fatalf("FitAgainstNLogN: %v", err)
	}
	if math.Abs(f.Slope-1.5) > 1e-9 || f.R2 < 0.999 {
		t.Errorf("fit = %+v, want slope 1.5", f)
	}
}

func TestGrowthRatios(t *testing.T) {
	got := GrowthRatios([]float64{2, 4, 8})
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Errorf("GrowthRatios = %v, want [2 2]", got)
	}
	if GrowthRatios([]float64{1}) != nil {
		t.Error("single point should yield nil")
	}
	inf := GrowthRatios([]float64{0, 5})
	if len(inf) != 1 || !math.IsInf(inf[0], 1) {
		t.Errorf("zero predecessor should yield +Inf, got %v", inf)
	}
}

// TestLogVsLinearDiscrimination drives the discrimination logic the
// experiments rely on: logarithmic data must fit ln n far better than a
// line through the origin region fits it, and vice versa.
func TestLogVsLinearDiscrimination(t *testing.T) {
	ns := []int{16, 64, 256, 1024, 4096, 16384}
	logData := make([]float64, len(ns))
	linData := make([]float64, len(ns))
	for i, n := range ns {
		logData[i] = 2 * math.Log(float64(n))
		linData[i] = float64(n) / 4
	}
	logFitOfLinear, err := FitAgainstLog(ns, linData)
	if err != nil {
		t.Fatal(err)
	}
	logFitOfLog, err := FitAgainstLog(ns, logData)
	if err != nil {
		t.Fatal(err)
	}
	if logFitOfLog.R2 < 0.999 {
		t.Errorf("log data badly fit by log curve: R2=%v", logFitOfLog.R2)
	}
	if logFitOfLinear.R2 > 0.9 {
		t.Errorf("linear data suspiciously well fit by log curve: R2=%v", logFitOfLinear.R2)
	}
}
