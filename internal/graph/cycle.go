package graph

import "fmt"

// Cycle is the n-vertex ring C_n, the topology every claim in the paper is
// stated on. It is consistently oriented: port 0 at every vertex leads to the
// clockwise successor (v+1 mod n) and port 1 to the predecessor, so Cycle
// implements OrientedRing.
type Cycle struct {
	n int
}

var _ OrientedRing = Cycle{}

// NewCycle constructs C_n. It returns an error for n < 3, since smaller
// rings are not simple graphs.
func NewCycle(n int) (Cycle, error) {
	if n < 3 {
		return Cycle{}, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	return Cycle{n: n}, nil
}

// MustCycle is NewCycle for static sizes known to be valid; it panics on
// invalid n and is intended for tests and examples.
func MustCycle(n int) Cycle {
	c, err := NewCycle(n)
	if err != nil {
		panic(err)
	}
	return c
}

// N reports the number of vertices.
func (c Cycle) N() int { return c.n }

// Degree is 2 for every vertex of a cycle.
func (c Cycle) Degree(int) int { return 2 }

// Neighbor returns the successor for port 0 and the predecessor for port 1.
func (c Cycle) Neighbor(v, p int) int {
	switch p {
	case 0:
		return c.Successor(v)
	case 1:
		return c.Predecessor(v)
	default:
		panic(fmt.Sprintf("graph: cycle port %d out of range", p))
	}
}

// Successor returns (v+1) mod n.
func (c Cycle) Successor(v int) int {
	if v == c.n-1 {
		return 0
	}
	return v + 1
}

// Predecessor returns (v-1) mod n.
func (c Cycle) Predecessor(v int) int {
	if v == 0 {
		return c.n - 1
	}
	return v - 1
}

// Dist returns the ring distance between a and b: min(|a-b|, n-|a-b|).
func (c Cycle) Dist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if other := c.n - d; other < d {
		return other
	}
	return d
}

// Cycle's BFS structure is closed-form, so it implements Implicit: the
// radius-r layer around any centre is {c+r, c-r} mod n (collapsing to one
// vertex at the even-n antipode), and the eccentricity is floor(n/2).
var _ Implicit = Cycle{}

// ImplicitFamily implements Implicit.
func (Cycle) ImplicitFamily() string { return "cycle" }

// EccentricityOf implements Implicit: every centre sees the whole ring at
// radius floor(n/2).
func (c Cycle) EccentricityOf(int) int { return c.n / 2 }

// DistTo implements Implicit.
func (c Cycle) DistTo(center, v int) int { return c.Dist(center, v) }

// LayerSize implements Implicit: 2 vertices per layer until the antipode,
// which is a single vertex when n is even.
func (c Cycle) LayerSize(_, r int) int {
	switch {
	case r == 0:
		return 1
	case r > c.n/2:
		return 0
	case 2*r == c.n:
		return 1
	default:
		return 2
	}
}

// AppendLayer implements Implicit, successor side first — the BFS discovery
// order of the port numbering (port 0 is the successor).
func (c Cycle) AppendLayer(buf []int, center, r int) []int {
	if r < 1 || r > c.n/2 {
		return buf
	}
	fw := center + r
	if fw >= c.n {
		fw -= c.n
	}
	buf = append(buf, fw)
	if 2*r < c.n {
		bw := center - r
		if bw < 0 {
			bw += c.n
		}
		buf = append(buf, bw)
	}
	return buf
}
