package graph

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
)

// isAutomorphism checks that σ preserves adjacency: {u,v} is an edge iff
// {σ(u),σ(v)} is.
func isAutomorphism(g Graph, sigma []int) bool {
	n := g.N()
	if len(sigma) != n {
		return false
	}
	for v := 0; v < n; v++ {
		for p := 0; p < g.Degree(v); p++ {
			if !Adjacent(g, sigma[v], sigma[g.Neighbor(v, p)]) {
				return false
			}
		}
	}
	return true
}

// TestDeclaredSymmetries cross-checks every family's declared group: each
// generator must be a genuine automorphism, and the declared order must
// match the materialized closure (ids.NewQuotient verifies it and the
// divisibility of n!).
func TestDeclaredSymmetries(t *testing.T) {
	cases := []struct {
		name  string
		g     Automorphisms
		order uint64
	}{
		{"cycle-3", MustCycle(3), 6},
		{"cycle-7", MustCycle(7), 14},
		{"cycle-10", MustCycle(10), 20},
		{"torus-3x3", MustTorus(3, 3), 9 * 8},
		{"torus-3x4", MustTorus(3, 4), 12 * 4},
		{"torus-4x4", MustTorus(4, 4), 16 * 8},
		{"tree-2x2", MustImplicitTree(2, 2), 8},    // 2!^3 internal nodes
		{"tree-3x1", MustImplicitTree(3, 1), 6},    // 3! at the root
		{"tree-2x3", MustImplicitTree(2, 3), 128},  // 2!^7
		{"tree-3x2", MustImplicitTree(3, 2), 1296}, // 3!^4
	}
	for _, tc := range cases {
		sym := tc.g.Automorphisms()
		if !sym.Declares() {
			t.Errorf("%s: declined, want a declared group", tc.name)
			continue
		}
		if sym.Order != tc.order {
			t.Errorf("%s: declared order %d, want %d", tc.name, sym.Order, tc.order)
		}
		for gi, sigma := range sym.Generators {
			if !isAutomorphism(tc.g, sigma) {
				t.Errorf("%s: generator %d is not an automorphism", tc.name, gi)
			}
		}
		if _, err := ids.NewQuotient(tc.g.N(), sym.Generators, sym.Order, sym.Full); err != nil {
			t.Errorf("%s: closure disagrees with declaration: %v", tc.name, err)
		}
	}
}

// TestCompleteGraph checks the zero-storage K_n value type: structural
// validity, the S_n declaration, and the quotient collapsing to a single
// representative.
func TestCompleteGraph(t *testing.T) {
	g := MustCompleteGraph(6)
	if err := Validate(g); err != nil {
		t.Fatalf("Validate(K_6): %v", err)
	}
	if NumEdges(g) != 15 {
		t.Fatalf("K_6 has %d edges, want 15", NumEdges(g))
	}
	sym := g.Automorphisms()
	if !sym.Full || !sym.Declares() {
		t.Fatalf("K_6 declared %+v, want Full", sym)
	}
	q, err := ids.NewQuotient(g.N(), sym.Generators, sym.Order, sym.Full)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count() != 1 || q.Order() != 720 {
		t.Fatalf("K_6 quotient: Count=%d Order=%d, want 1 and 720", q.Count(), q.Order())
	}
	if _, err := NewCompleteGraph(1); err == nil {
		t.Fatal("NewCompleteGraph(1) succeeded")
	}
}

// TestSymmetryDeclines pins the decline behaviour: huge sizes decline
// (generators at implicit scale would be waste), and families without
// symmetry declarations simply do not implement the interface.
func TestSymmetryDeclines(t *testing.T) {
	if sym := MustCycle(maxSymmetryN + 1).Automorphisms(); sym.Declares() {
		t.Errorf("cycle above maxSymmetryN declared %+v", sym)
	}
	if sym := MustTorus(9, 9).Automorphisms(); sym.Declares() {
		t.Errorf("81-vertex torus declared %+v", sym)
	}
	if sym := MustImplicitTree(2, 6).Automorphisms(); sym.Declares() {
		t.Errorf("127-vertex tree declared %+v", sym)
	}
	gnp, err := NewGNP(8, 0.5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Graph(gnp).(Automorphisms); ok {
		t.Error("GNP implements Automorphisms; arbitrary families must decline")
	}
}
