package graph

import (
	"fmt"
	"math/rand"
)

// NewGrid builds the rows x cols king-free grid graph (4-neighbour mesh).
// Vertex (r, c) has index r*cols + c.
func NewGrid(rows, cols int) (*Adj, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				edges = append(edges, [2]int{v, v + 1})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{v, v + cols})
			}
		}
	}
	return NewAdj(rows*cols, edges)
}

// NewComplete builds K_n.
func NewComplete(n int) (*Adj, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: complete graph needs n >= 1, got %d", n)
	}
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return NewAdj(n, edges)
}

// NewStar builds the star K_{1,n-1} with centre 0.
func NewStar(n int) (*Adj, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: star needs n >= 1, got %d", n)
	}
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return NewAdj(n, edges)
}

// NewBalancedTree builds the complete b-ary tree of the given depth
// (depth 0 is a single root). Vertices are numbered in BFS order.
func NewBalancedTree(branching, depth int) (*Adj, error) {
	if branching < 1 || depth < 0 {
		return nil, fmt.Errorf("graph: balanced tree needs branching >= 1, depth >= 0, got b=%d d=%d", branching, depth)
	}
	n := 1
	width := 1
	for i := 0; i < depth; i++ {
		width *= branching
		n += width
	}
	var edges [][2]int
	next := 1
	for parent := 0; next < n; parent++ {
		for c := 0; c < branching && next < n; c++ {
			edges = append(edges, [2]int{parent, next})
			next++
		}
	}
	return NewAdj(n, edges)
}

// NewRandomTree samples a uniformly random labelled tree on n vertices via a
// random Prüfer sequence drawn from rng. The result is deterministic given
// the rng state.
func NewRandomTree(n int, rng *rand.Rand) (*Adj, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: random tree needs n >= 1, got %d", n)
	}
	if n == 1 {
		return NewAdj(1, nil)
	}
	if n == 2 {
		return NewAdj(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	return treeFromPrufer(n, prufer)
}

func treeFromPrufer(n int, prufer []int) (*Adj, error) {
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	edges := make([][2]int, 0, n-1)
	for _, v := range prufer {
		for leaf := 0; leaf < n; leaf++ {
			if degree[leaf] == 1 {
				edges = append(edges, [2]int{leaf, v})
				degree[leaf]--
				degree[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	edges = append(edges, [2]int{u, w})
	return NewAdj(n, edges)
}

// NewGNP samples an Erdős–Rényi graph G(n, p) from rng. The result is
// deterministic given the rng state. Note the sample may be disconnected;
// callers that need connectivity should check IsConnected and resample.
func NewGNP(n int, p float64, rng *rand.Rand) (*Adj, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: G(n,p) needs n >= 0, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: G(n,p) needs p in [0,1], got %v", p)
	}
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return NewAdj(n, edges)
}
