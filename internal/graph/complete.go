package graph

import "fmt"

// Complete is the complete graph K_n as a zero-storage value type: every
// pair of vertices is adjacent, vertex v's port p leads to the p-th other
// vertex in index order. It exists for the symmetry-quotient path — K_n's
// automorphism group is all of S_n, so its exact distribution needs exactly
// ONE representative per size — while NewComplete (an *Adj) remains the
// materialized form for adjacency-driven experiments.
type Complete struct {
	n int
}

var _ Automorphisms = Complete{}

// NewCompleteGraph constructs K_n for n >= 2.
func NewCompleteGraph(n int) (Complete, error) {
	if n < 2 {
		return Complete{}, fmt.Errorf("graph: complete graph needs n >= 2, got %d", n)
	}
	return Complete{n: n}, nil
}

// MustCompleteGraph is NewCompleteGraph for static sizes known to be valid.
func MustCompleteGraph(n int) Complete {
	g, err := NewCompleteGraph(n)
	if err != nil {
		panic(err)
	}
	return g
}

// N reports the number of vertices.
func (g Complete) N() int { return g.n }

// Degree is n-1 everywhere.
func (g Complete) Degree(int) int { return g.n - 1 }

// Neighbor returns the p-th other vertex in index order: 0..v-1 on ports
// 0..v-1, v+1..n-1 on ports v..n-2.
func (g Complete) Neighbor(v, p int) int {
	if p < 0 || p >= g.n-1 {
		panic(fmt.Sprintf("graph: complete graph port %d out of range", p))
	}
	if p < v {
		return p
	}
	return p + 1
}

// Automorphisms declares the full symmetric group S_n: every vertex
// permutation preserves K_n.
func (g Complete) Automorphisms() Symmetry {
	if g.n > maxSymmetryN {
		return Symmetry{}
	}
	return Symmetry{Full: true}
}
