package graph

import "fmt"

// BallSource is what the execution engine actually needs from a ball store:
// the graph under execution and, per centre, an AtlasBall able to serve the
// radius-r view. *BallAtlas (materialised BFS layers over any Graph) and
// *ImplicitBalls (closed-form synthesis over an Implicit family) both
// implement it, which is what lets the flat decision kernels run unchanged
// at n = 10^7 with zero adjacency storage.
//
// Ensure returns nil only when the source cannot grow further (a
// memory-capped atlas); callers then fall back to the incremental
// BallBuilder for that vertex.
type BallSource interface {
	// Graph returns the graph the balls are drawn from.
	Graph() Graph
	// Ensure returns a snapshot able to serve the radius-r view around
	// center, or nil when the source cannot provide it.
	Ensure(center, r int) *AtlasBall
}

var (
	_ BallSource = (*BallAtlas)(nil)
	_ BallSource = (*ImplicitBalls)(nil)
)

// Implicit is implemented by graph families whose BFS ball structure is
// closed-form: per-centre layer membership, layer sizes and eccentricities
// are computable directly from the family's parameters, so sweeps need
// neither an adjacency materialisation nor a BallAtlas. Cycle, Path, Torus
// and ImplicitTree implement it; density-driven families (GNP) cannot —
// their layers depend on the sampled edge set, which IS the adjacency.
//
// Implementations must be immutable value types that are comparable (the
// engine caches and compares them by value) and must describe a connected
// graph: an empty layer below the eccentricity would be read as component
// completeness.
//
// The per-layer vertex order produced by AppendLayer must be deterministic
// for the family but is NOT required to match BFS discovery order: every
// kernel in the repository scans layer windows for existence/extrema, so
// decisions and radii are order-independent within a layer. Code that needs
// the exact discovery order (adjacency rows, view-path ball clones) must
// use a materialised BallAtlas instead.
type Implicit interface {
	Graph
	// ImplicitFamily names the family for diagnostics ("cycle", "torus", ...).
	ImplicitFamily() string
	// EccentricityOf returns max_v dist(center, v).
	EccentricityOf(center int) int
	// DistTo returns the shortest-path distance from center to v.
	DistTo(center, v int) int
	// LayerSize returns |{v : dist(center, v) == r}| for r >= 0 in closed
	// form; 0 for every r above the centre's eccentricity.
	LayerSize(center, r int) int
	// AppendLayer appends the distance-r vertices around center to buf, in
	// the family's deterministic order, for r >= 1.
	AppendLayer(buf []int, center, r int) []int
}

// ImplicitFamilies lists the implicit-capable families shipped with the
// package, for diagnostics when a backend request names a family that does
// not qualify.
func ImplicitFamilies() []string {
	return []string{
		"cycle (graph.Cycle)",
		"path (graph.Path)",
		"torus (graph.Torus)",
		"complete b-ary tree (graph.ImplicitTree)",
	}
}

// ImplicitBalls synthesizes AtlasBall skeletons for an Implicit family:
// layer membership from AppendLayer, own-degrees from DistTo, completeness
// from the first empty layer — semantically identical to what a BallAtlas
// materialises, field for field, with O(ball) work and O(largest ball
// served) memory in total. It is the implicit backend's BallSource: one per
// worker, zero shared state, no adjacency anywhere.
//
// Unlike a BallAtlas, the snapshot is a single reusable scratch: Ensure
// returns the SAME *AtlasBall every call, grown append-only while the
// centre is unchanged and rebuilt from scratch when it changes. That is
// exactly the access pattern of the kernels (one centre at a time,
// reloading the snapshot's slices after every Ensure), and why an
// ImplicitBalls — unlike an atlas — must not be shared between goroutines.
type ImplicitBalls struct {
	g      Implicit
	center int
	ball   AtlasBall
}

// NewImplicitBalls returns a synthesizer over g with nothing materialised.
func NewImplicitBalls(g Implicit) *ImplicitBalls {
	return &ImplicitBalls{g: g, center: -1}
}

// Graph returns the implicit family the balls are synthesized from.
func (s *ImplicitBalls) Graph() Graph { return s.g }

// Ensure returns the scratch snapshot grown to serve the radius-r view
// around center. It never returns nil: closed-form synthesis has no memory
// cap to exhaust. The returned pointer is invalidated — contents rebuilt —
// by the next Ensure with a different centre.
func (s *ImplicitBalls) Ensure(center, r int) *AtlasBall {
	b := &s.ball
	if center != s.center {
		s.reset(center)
	}
	for !b.Complete && b.MaxRadius < r {
		s.growLayer()
	}
	return b
}

// reset re-seeds the scratch snapshot with center's radius-0 ball,
// reusing every slice's backing storage.
func (s *ImplicitBalls) reset(center int) {
	s.center = center
	deg := s.g.Degree(center)
	b := &s.ball
	b.MaxRadius = 0
	b.Complete = false
	b.Verts = append(b.Verts[:0], center)
	b.Dist = append(b.Dist[:0], 0)
	b.Degs = append(b.Degs[:0], deg)
	b.LayerEnd = append(b.LayerEnd[:0], 1)
	b.ownDeg = append(b.ownDeg[:0], 0)
	b.layerFull = append(b.layerFull[:0], deg == 0)
}

// growLayer synthesizes the next layer, mirroring BallAtlas.grow exactly:
// distances and true degrees per new vertex, the vertex's own induced
// degree (neighbours at distance <= its own radius), the layer's
// completeness bit, and component completeness on the first empty layer.
func (s *ImplicitBalls) growLayer() {
	g, c, b := s.g, s.center, &s.ball
	r := b.MaxRadius + 1
	start := len(b.Verts)
	b.Verts = g.AppendLayer(b.Verts, c, r)
	if want := g.LayerSize(c, r); len(b.Verts)-start != want {
		panic(fmt.Sprintf("graph: %s layer %d around %d: AppendLayer produced %d vertices, LayerSize says %d",
			g.ImplicitFamily(), r, c, len(b.Verts)-start, want))
	}
	full := true
	for i := start; i < len(b.Verts); i++ {
		v := b.Verts[i]
		deg := g.Degree(v)
		b.Dist = append(b.Dist, r)
		b.Degs = append(b.Degs, deg)
		var own int32
		for p := 0; p < deg; p++ {
			if g.DistTo(c, g.Neighbor(v, p)) <= r {
				own++
			}
		}
		b.ownDeg = append(b.ownDeg, own)
		full = full && int(own) == deg
	}
	b.layerFull = append(b.layerFull, full)
	b.LayerEnd = append(b.LayerEnd, len(b.Verts))
	b.MaxRadius = r
	if start == len(b.Verts) {
		b.Complete = true
	}
}
