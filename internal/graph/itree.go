package graph

import "fmt"

// ImplicitTree is the complete b-ary tree of the given depth in BFS (heap)
// numbering: vertex 0 is the root, vertex v's children are v*b+1 .. v*b+b,
// its parent is (v-1)/b, and every leaf sits at exactly depth levels below
// the root. The heap numbering makes a node's depth-j descendants one
// CONTIGUOUS index range, so per-centre BFS layers decompose into O(depth)
// ranges — closed-form, zero storage, hence Implicit.
//
// Ports: the root numbers its b children 0..b-1; every other internal
// vertex uses port 0 for its parent and ports 1..b for its children; a
// leaf has only port 0 (parent).
type ImplicitTree struct {
	b, depth, n int
}

var _ Implicit = ImplicitTree{}

// maxImplicitTreeN bounds the vertex count so every index and range
// computation stays far from int64 overflow.
const maxImplicitTreeN = int(1) << 47

// NewImplicitTree constructs the complete branching-ary tree of the given
// depth (depth 0 is the single root). branching must be at least 2 — a
// 1-ary "tree" is Path — and the vertex count must stay below 2^47.
func NewImplicitTree(branching, depth int) (ImplicitTree, error) {
	if branching < 2 {
		return ImplicitTree{}, fmt.Errorf("graph: implicit tree needs branching >= 2, got %d (use Path for chains)", branching)
	}
	if depth < 0 {
		return ImplicitTree{}, fmt.Errorf("graph: implicit tree needs depth >= 0, got %d", depth)
	}
	n, width := 1, 1
	for l := 1; l <= depth; l++ {
		width *= branching
		n += width
		if n > maxImplicitTreeN {
			return ImplicitTree{}, fmt.Errorf("graph: implicit tree %d^%d exceeds %d vertices", branching, depth, maxImplicitTreeN)
		}
	}
	return ImplicitTree{b: branching, depth: depth, n: n}, nil
}

// MustImplicitTree is NewImplicitTree for static parameters known to be
// valid.
func MustImplicitTree(branching, depth int) ImplicitTree {
	t, err := NewImplicitTree(branching, depth)
	if err != nil {
		panic(err)
	}
	return t
}

// Branching reports the arity b.
func (t ImplicitTree) Branching() int { return t.b }

// Depth reports the leaf depth.
func (t ImplicitTree) Depth() int { return t.depth }

// N reports the number of vertices.
func (t ImplicitTree) N() int { return t.n }

// Degree is b at the root, 1 at leaves, b+1 in between (0 for the
// single-vertex tree).
func (t ImplicitTree) Degree(v int) int {
	switch {
	case t.n == 1:
		return 0
	case v == 0:
		return t.b
	case v*t.b+1 >= t.n: // no children: a leaf
		return 1
	default:
		return t.b + 1
	}
}

// Neighbor follows the port convention documented on ImplicitTree.
func (t ImplicitTree) Neighbor(v, p int) int {
	if p < 0 || p >= t.Degree(v) {
		panic(fmt.Sprintf("graph: implicit tree vertex %d port %d out of range", v, p))
	}
	if v == 0 {
		return p + 1
	}
	if p == 0 {
		return (v - 1) / t.b
	}
	return v*t.b + p // child p-1 is v*b+1+(p-1)
}

// ImplicitFamily implements Implicit.
func (ImplicitTree) ImplicitFamily() string { return "tree" }

// depthOf returns v's depth below the root by walking level boundaries.
func (t ImplicitTree) depthOf(v int) int {
	start, width, d := 0, 1, 0
	for v >= start+width {
		start += width
		width *= t.b
		d++
	}
	return d
}

// DistTo implements Implicit: lift the deeper endpoint, then both, to the
// lowest common ancestor, counting steps.
func (t ImplicitTree) DistTo(center, v int) int {
	dc, dv := t.depthOf(center), t.depthOf(v)
	dist := 0
	for dc > dv {
		center = (center - 1) / t.b
		dc--
		dist++
	}
	for dv > dc {
		v = (v - 1) / t.b
		dv--
		dist++
	}
	for center != v {
		center = (center - 1) / t.b
		v = (v - 1) / t.b
		dist += 2
	}
	return dist
}

// EccentricityOf implements Implicit: the farthest vertex from a non-root
// centre is a full-depth leaf in a different root subtree (the root has at
// least two, each complete), at distance depth(center) + depth; the root
// itself sees everything within depth.
func (t ImplicitTree) EccentricityOf(center int) int {
	if center == 0 {
		return t.depth
	}
	return t.depthOf(center) + t.depth
}

// LayerSize implements Implicit: distance-r vertices are the centre's own
// depth-r descendants plus, for each proper ancestor u at height k, u
// itself (k == r) or u's depth-(r-k) descendants outside the subtree the
// centre came from.
func (t ImplicitTree) LayerSize(center, r int) int {
	if r == 0 {
		return 1
	}
	dc := t.depthOf(center)
	total := 0
	if dc+r <= t.depth {
		total += t.pow(r)
	}
	u := center
	for k := 1; k <= dc && k <= r; k++ {
		u = (u - 1) / t.b
		j := r - k
		if j == 0 {
			total++
			continue
		}
		if (dc-k)+j <= t.depth {
			total += (t.b - 1) * t.pow(j-1)
		}
	}
	return total
}

// AppendLayer implements Implicit: descendant ranges first (ascending
// index within each range), then per ancestor. Deterministic but not BFS
// discovery order — see the Implicit contract.
func (t ImplicitTree) AppendLayer(buf []int, center, r int) []int {
	if r < 1 {
		return buf
	}
	dc := t.depthOf(center)
	if dc+r <= t.depth {
		lo := t.leftDesc(center, r)
		for v, hi := lo, lo+t.pow(r); v < hi; v++ {
			buf = append(buf, v)
		}
	}
	child, u := center, center
	for k := 1; k <= dc && k <= r; k++ {
		child = u
		u = (u - 1) / t.b
		j := r - k
		if j == 0 {
			buf = append(buf, u)
			continue
		}
		if (dc-k)+j > t.depth {
			continue
		}
		// u's depth-j descendants minus those under child (the subtree the
		// centre sits in): two contiguous ranges around the excluded one.
		lo := t.leftDesc(u, j)
		hi := lo + t.pow(j)
		exLo := t.leftDesc(child, j-1)
		exHi := exLo + t.pow(j-1)
		for v := lo; v < exLo; v++ {
			buf = append(buf, v)
		}
		for v := exHi; v < hi; v++ {
			buf = append(buf, v)
		}
	}
	return buf
}

// pow returns b^e; callers only ask for exponents whose ranges exist in
// the tree, so the result is bounded by n.
func (t ImplicitTree) pow(e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= t.b
	}
	return p
}

// leftDesc returns the leftmost depth-j descendant of u:
// u*b^j + (b^j-1)/(b-1), the j-fold leftChild map.
func (t ImplicitTree) leftDesc(u, j int) int {
	bj := t.pow(j)
	return u*bj + (bj-1)/(t.b-1)
}
