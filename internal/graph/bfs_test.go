package graph

import "testing"

func TestBFSDistancesOnPath(t *testing.T) {
	p := MustPath(5)
	got := BFSDistances(p, 0)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	g := MustAdj(4, [][2]int{{0, 1}, {2, 3}})
	d := BFSDistances(g, 0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Errorf("distances to other component = %d,%d, want Unreachable", d[2], d[3])
	}
	if d[1] != 1 {
		t.Errorf("dist[1] = %d, want 1", d[1])
	}
}

func TestDiameterKnown(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
		want int
	}{
		{"C3", MustCycle(3), 1},
		{"C6", MustCycle(6), 3},
		{"C7", MustCycle(7), 3},
		{"C100", MustCycle(100), 50},
		{"P10", MustPath(10), 9},
		{"P1", MustPath(1), 0},
		{"K5", mustComplete(t, 5), 1},
		{"star6", mustStar(t, 6), 2},
	}
	for _, tt := range tests {
		if got := Diameter(tt.g); got != tt.want {
			t.Errorf("%s: Diameter = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := MustAdj(4, [][2]int{{0, 1}, {2, 3}})
	if got := Diameter(g); got != Unreachable {
		t.Errorf("Diameter = %d, want Unreachable", got)
	}
	if IsConnected(g) {
		t.Error("IsConnected = true for disconnected graph")
	}
}

func TestEccentricityCycle(t *testing.T) {
	c := MustCycle(9)
	for v := 0; v < c.N(); v++ {
		if got := Eccentricity(c, v); got != 4 {
			t.Errorf("Eccentricity(%d) = %d, want 4", v, got)
		}
	}
}

func TestIsConnectedEmptyAndSingleton(t *testing.T) {
	if !IsConnected(MustAdj(0, nil)) {
		t.Error("empty graph should count as connected")
	}
	if !IsConnected(MustAdj(1, nil)) {
		t.Error("singleton should be connected")
	}
}

func TestDistSymmetric(t *testing.T) {
	g := MustAdj(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}})
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if Dist(g, u, v) != Dist(g, v, u) {
				t.Errorf("Dist(%d,%d) != Dist(%d,%d)", u, v, v, u)
			}
		}
	}
}
