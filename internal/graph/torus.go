package graph

import "fmt"

// Torus is the rows×cols discrete torus: vertex r*cols+c sits at (row r,
// col c) and is adjacent to its four wraparound grid neighbours. Distances
// decompose as the sum of two independent ring distances, which makes every
// ball closed-form — Torus is the smallest two-dimensional member of the
// Implicit backend, where the per-layer count grows linearly in r instead
// of the ring's constant 2.
//
// Ports: 0 = right (col+1), 1 = down (row+1), 2 = left, 3 = up, all modulo
// the respective dimension. Both dimensions must be at least 3 so the
// wraparound neighbours stay distinct (no parallel edges).
type Torus struct {
	rows, cols int
}

var _ Implicit = Torus{}

// NewTorus constructs the rows×cols torus; both dimensions must be >= 3.
func NewTorus(rows, cols int) (Torus, error) {
	if rows < 3 || cols < 3 {
		return Torus{}, fmt.Errorf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	return Torus{rows: rows, cols: cols}, nil
}

// MustTorus is NewTorus for static dimensions known to be valid.
func MustTorus(rows, cols int) Torus {
	t, err := NewTorus(rows, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// Rows reports the number of rows.
func (t Torus) Rows() int { return t.rows }

// Cols reports the number of columns.
func (t Torus) Cols() int { return t.cols }

// N reports the number of vertices.
func (t Torus) N() int { return t.rows * t.cols }

// Degree is 4 everywhere.
func (t Torus) Degree(int) int { return 4 }

// Neighbor follows the port convention documented on Torus.
func (t Torus) Neighbor(v, p int) int {
	row, col := v/t.cols, v%t.cols
	switch p {
	case 0:
		col++
		if col == t.cols {
			col = 0
		}
	case 1:
		row++
		if row == t.rows {
			row = 0
		}
	case 2:
		col--
		if col < 0 {
			col = t.cols - 1
		}
	case 3:
		row--
		if row < 0 {
			row = t.rows - 1
		}
	default:
		panic(fmt.Sprintf("graph: torus port %d out of range", p))
	}
	return row*t.cols + col
}

// ImplicitFamily implements Implicit.
func (Torus) ImplicitFamily() string { return "torus" }

// EccentricityOf implements Implicit: the two ring eccentricities add.
func (t Torus) EccentricityOf(int) int { return t.rows/2 + t.cols/2 }

// DistTo implements Implicit: the L1 distance under both wraparounds.
func (t Torus) DistTo(center, v int) int {
	return ringDist(t.rows, center/t.cols, v/t.cols) + ringDist(t.cols, center%t.cols, v%t.cols)
}

// LayerSize implements Implicit by summing, over each feasible row
// distance a, the ring multiplicities of a and of the residual column
// distance r-a. O(min(r, rows)) — within the O(layer) budget synthesis
// already pays.
func (t Torus) LayerSize(_, r int) int {
	if r == 0 {
		return 1
	}
	total := 0
	maxA := r
	if maxA > t.rows/2 {
		maxA = t.rows / 2
	}
	for a := 0; a <= maxA; a++ {
		b := r - a
		if b > t.cols/2 {
			continue
		}
		total += ringMult(t.rows, a) * ringMult(t.cols, b)
	}
	return total
}

// AppendLayer implements Implicit: row offsets ±a (ascending a), and for
// each the column offsets ±(r-a). The order is deterministic but not BFS
// discovery order — see the Implicit contract.
func (t Torus) AppendLayer(buf []int, center, r int) []int {
	if r < 1 {
		return buf
	}
	crow, ccol := center/t.cols, center%t.cols
	maxA := r
	if maxA > t.rows/2 {
		maxA = t.rows / 2
	}
	for a := 0; a <= maxA; a++ {
		b := r - a
		if b > t.cols/2 {
			continue
		}
		rowOff, rowN := ringOffsets(t.rows, crow, a), ringMult(t.rows, a)
		colOff, colN := ringOffsets(t.cols, ccol, b), ringMult(t.cols, b)
		for ri := 0; ri < rowN; ri++ {
			for ci := 0; ci < colN; ci++ {
				buf = append(buf, rowOff[ri]*t.cols+colOff[ci])
			}
		}
	}
	return buf
}

// ringDist is the distance between positions a and b on an n-ring.
func ringDist(n, a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if other := n - d; other < d {
		return other
	}
	return d
}

// ringMult counts the positions of an n-ring at distance d from a fixed
// one: 1 at distance 0, 2 strictly inside, 1 at the even antipode, 0
// beyond.
func ringMult(n, d int) int {
	switch {
	case d == 0:
		return 1
	case 2*d < n:
		return 2
	case 2*d == n:
		return 1
	default:
		return 0
	}
}

// ringOffsets returns the ring positions at distance d from c on an
// n-ring, forward first; only the first ringMult(n, d) entries are
// meaningful.
func ringOffsets(n, c, d int) [2]int {
	fw := c + d
	if fw >= n {
		fw -= n
	}
	bw := c - d
	if bw < 0 {
		bw += n
	}
	return [2]int{fw, bw}
}
