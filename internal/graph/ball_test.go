package graph

import (
	"testing"
	"testing/quick"
)

func TestBallSizeOnCycle(t *testing.T) {
	c := MustCycle(11)
	for r := 0; r <= 8; r++ {
		b := NewBall(c, 4, r)
		want := 2*r + 1
		if want > c.N() {
			want = c.N()
		}
		if b.Size() != want {
			t.Errorf("r=%d: ball size %d, want %d", r, b.Size(), want)
		}
	}
}

func TestBallCenterIsLocalZero(t *testing.T) {
	c := MustCycle(7)
	b := NewBall(c, 3, 2)
	if b.Verts[0] != 3 || b.Dist[0] != 0 {
		t.Errorf("centre = vertex %d at dist %d, want 3 at 0", b.Verts[0], b.Dist[0])
	}
}

func TestBallDistancesMatchBFS(t *testing.T) {
	g := MustAdj(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {1, 5}})
	bfs := BFSDistances(g, 0)
	b := NewBall(g, 0, 3)
	for i, orig := range b.Verts {
		if b.Dist[i] != bfs[orig] {
			t.Errorf("ball dist of %d = %d, BFS = %d", orig, b.Dist[i], bfs[orig])
		}
		if b.Dist[i] > 3 {
			t.Errorf("vertex %d at dist %d > radius", orig, b.Dist[i])
		}
	}
}

// TestBallClosureRadiusOnCycle pins down the radius at which a node can first
// certify it has seen the whole cycle (all induced degrees equal 2). The
// paper's n/2 worst case for the largest-ID vertex rests on this threshold:
// closure happens exactly at r = ceil((n-1)/2).
func TestBallClosureRadiusOnCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7, 10, 11, 31, 32} {
		c := MustCycle(n)
		closure := (n - 1 + 1) / 2 // ceil((n-1)/2)
		for r := 0; r <= closure+1; r++ {
			b := NewBall(c, 0, r)
			closed := b.AllDegreesWithin(2)
			if r < closure && closed {
				t.Errorf("n=%d r=%d: ball closed too early", n, r)
			}
			if r >= closure && !closed {
				t.Errorf("n=%d r=%d: ball not closed at/after closure radius %d", n, r, closure)
			}
		}
	}
}

func TestBallAdjacencyIsInduced(t *testing.T) {
	c := MustCycle(9)
	b := NewBall(c, 2, 4) // covers the whole cycle
	if b.Size() != 9 {
		t.Fatalf("ball should cover C9, got %d vertices", b.Size())
	}
	for i := range b.Verts {
		if len(b.Adj[i]) != 2 {
			t.Errorf("local %d: induced degree %d, want 2", i, len(b.Adj[i]))
		}
		for _, j := range b.Adj[i] {
			if !Adjacent(c, b.Verts[i], b.Verts[j]) {
				t.Errorf("ball edge %d-%d not in graph", b.Verts[i], b.Verts[j])
			}
		}
	}
}

func TestBallNegativeRadiusClamped(t *testing.T) {
	b := NewBall(MustCycle(5), 0, -3)
	if b.Size() != 1 || b.Radius != 0 {
		t.Errorf("negative radius: size %d radius %d, want 1 and 0", b.Size(), b.Radius)
	}
}

// TestBallCanonicalShiftInvariant verifies that transplanting the same ID
// window to a different position of the cycle yields an identical canonical
// encoding — the property the paper's slice argument relies on (a vertex
// whose ball is moved wholesale into a new permutation keeps its radius).
func TestBallCanonicalShiftInvariant(t *testing.T) {
	c := MustCycle(12)
	window := []int{9, 8, 1, 7, 6}
	idsA := make([]int, 12)
	idsB := make([]int, 12)
	for i := range idsA {
		idsA[i] = 100 + i
		idsB[i] = 200 + i
	}
	copy(idsA[1:], window) // window centred at vertex 3 in assignment A
	copy(idsB[5:], window) // window centred at vertex 7 in assignment B
	b3 := NewBall(c, 3, 2).Canonical(func(v int) int { return idsA[v] })
	b7 := NewBall(c, 7, 2).Canonical(func(v int) int { return idsB[v] })
	if b3 != b7 {
		t.Errorf("transplanted balls canonicalise differently:\n%s\n%s", b3, b7)
	}
}

func TestBallCanonicalDistinguishesIDs(t *testing.T) {
	c := MustCycle(8)
	idsA := func(v int) int { return v }
	idsB := func(v int) int { return v + 1 }
	a := NewBall(c, 0, 2).Canonical(idsA)
	b := NewBall(c, 0, 2).Canonical(idsB)
	if a == b {
		t.Error("different ID labellings canonicalise identically")
	}
}

func TestBallSizeMonotonic(t *testing.T) {
	g := MustAdj(10, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 0}, {0, 5}})
	monotone := func(rRaw, vRaw uint8) bool {
		r := int(rRaw) % 6
		v := int(vRaw) % g.N()
		return NewBall(g, v, r).Size() <= NewBall(g, v, r+1).Size()
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Errorf("ball size not monotone in radius: %v", err)
	}
}
