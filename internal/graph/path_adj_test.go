package graph

import "testing"

func TestNewPathRejectsNonPositive(t *testing.T) {
	for _, n := range []int{-3, 0} {
		if _, err := NewPath(n); err == nil {
			t.Errorf("NewPath(%d) succeeded, want error", n)
		}
	}
}

func TestPathStructure(t *testing.T) {
	p := MustPath(6)
	if got := p.Degree(0); got != 1 {
		t.Errorf("Degree(0) = %d, want 1", got)
	}
	if got := p.Degree(5); got != 1 {
		t.Errorf("Degree(5) = %d, want 1", got)
	}
	for v := 1; v <= 4; v++ {
		if got := p.Degree(v); got != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, got)
		}
	}
	if got := p.Neighbor(0, 0); got != 1 {
		t.Errorf("Neighbor(0,0) = %d, want 1", got)
	}
	if got := p.Neighbor(5, 0); got != 4 {
		t.Errorf("Neighbor(5,0) = %d, want 4", got)
	}
	if got := p.Neighbor(3, 0); got != 4 {
		t.Errorf("Neighbor(3,0) = %d, want 4", got)
	}
	if got := p.Neighbor(3, 1); got != 2 {
		t.Errorf("Neighbor(3,1) = %d, want 2", got)
	}
}

func TestPathSingleton(t *testing.T) {
	p := MustPath(1)
	if p.N() != 1 {
		t.Fatalf("N = %d", p.N())
	}
	if p.Degree(0) != 0 {
		t.Errorf("Degree(0) = %d, want 0", p.Degree(0))
	}
}

func TestNewAdjErrors(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"negativeN", -1, nil},
		{"outOfRange", 3, [][2]int{{0, 3}}},
		{"negativeVertex", 3, [][2]int{{-1, 0}}},
		{"selfLoop", 3, [][2]int{{1, 1}}},
		{"duplicate", 3, [][2]int{{0, 1}, {1, 0}}},
	}
	for _, tt := range tests {
		if _, err := NewAdj(tt.n, tt.edges); err == nil {
			t.Errorf("%s: NewAdj succeeded, want error", tt.name)
		}
	}
}

func TestAdjPortsSorted(t *testing.T) {
	g := MustAdj(5, [][2]int{{4, 0}, {2, 0}, {0, 1}, {3, 0}})
	want := []int{1, 2, 3, 4}
	got := Neighbors(g, 0)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", got, want)
		}
	}
}

func TestAdjCloneIndependent(t *testing.T) {
	g := MustAdj(3, [][2]int{{0, 1}, {1, 2}})
	c := g.Clone()
	g.adj[0][0] = 2 // corrupt the original
	if c.Neighbor(0, 0) != 1 {
		t.Error("Clone shares adjacency storage with the original")
	}
}

func TestAdjEmptyGraph(t *testing.T) {
	g := MustAdj(0, nil)
	if g.N() != 0 {
		t.Errorf("N = %d, want 0", g.N())
	}
	if err := Validate(g); err != nil {
		t.Errorf("Validate(empty) = %v", err)
	}
}
