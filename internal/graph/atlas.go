package graph

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// DefaultAtlasMemLimit is the per-atlas memory cap applied when a BallAtlas
// is created with limit 0: beyond it the atlas stops materialising layers
// and callers fall back to the incremental BallBuilder. The default is
// sized so that every cycle/path/tree/grid sweep in the repository fits
// comfortably while a dense family (GNP near the connectivity threshold,
// cliques at large n) cannot take the process down.
const DefaultAtlasMemLimit = 256 << 20 // 256 MiB

// BallAtlas is a per-graph, read-only, lazily grown store of every vertex's
// BFS ball layers. It exists because permutation sweeps run thousands of
// identifier assignments over the SAME graph instance, yet ball structure
// (discovery order, distances, induced adjacency) depends only on the graph
// — so the BFS work of the view engine is identical across trials and can
// be paid once.
//
// For each centre the atlas records the full BFS discovery order (exploring
// ports in increasing order, exactly the order NewBall and BallBuilder use),
// flattened into Verts/Dist/Degs arrays with per-radius layer offsets. The
// radius-r ball is then a PREFIX WINDOW of those arrays.
//
// Storage is two-tier, because most algorithms never look at edges:
//
//   - The SKELETON (always materialised) additionally stores each local
//     vertex's induced degree at its own discovery radius (OwnDeg). Over
//     the lifetime of a growing ball, local vertex i (discovered at
//     distance d) has exactly two induced degrees: OwnDeg(i) at radius d
//     and its true degree at every radius > d (all neighbours sit at
//     distance <= d+1, hence inside the ball). That is everything
//     completeness and degree checks need.
//   - The ROWS (materialised per centre on first demand, see RowsFor)
//     store the actual adjacency lists, CSR-flattened in port order, in
//     the same two variants: the row truncated to the ball at the
//     vertex's own radius, and the complete row.
//
// Growth is lazy and radius-incremental with geometric lookahead: only
// radii within a constant factor of what some trial actually reaches are
// ever materialised, and a memory cap (see NewBallAtlas) bounds the total
// footprint — when the cap is hit, Ensure returns nil and callers fall
// back to their own BallBuilder. An atlas is safe for concurrent use:
// readers are lock-free (snapshots are published via atomic pointers and
// all arrays are append-only), growth is serialised per centre.
type BallAtlas struct {
	g         Graph
	budget    atomic.Int64
	exhausted atomic.Bool
	balls     []vertexAtlas
	scratch   sync.Pool // *atlasScratch

	// Flat CSR copy of the graph, built once on first growth: BFS over
	// offset/adjacency arrays runs several times faster than through the
	// Graph interface, and every centre's growth shares it.
	csrOnce sync.Once
	csrOff  []int32
	csrAdj  []int32
	csrErr  atomic.Pointer[CSROverflowError]
}

// CSROverflowError is the typed refusal of an atlas whose graph cannot be
// CSR-flattened with int32 offsets (more than 2^31-1 vertices or edge
// endpoints). The atlas then behaves exactly like a memory-capped one —
// Ensure returns nil, callers fall back to the ball builder — but Err
// names the real cause instead of silently wrapping it into "exhausted".
// Graphs that large should run through the Implicit backend, which never
// builds a CSR.
type CSROverflowError struct {
	// Verts is the graph's vertex count.
	Verts int
	// EdgeEnds is Σ_v Degree(v), the adjacency array length the CSR would
	// have needed.
	EdgeEnds int64
}

func (e *CSROverflowError) Error() string {
	return fmt.Sprintf("graph: atlas CSR offsets overflow int32: %d vertices, %d edge endpoints (use the implicit backend at this scale)",
		e.Verts, e.EdgeEnds)
}

// csrFits reports whether a graph with n vertices and edgeEnds adjacency
// entries can be CSR-flattened with int32 offsets.
func csrFits(n int, edgeEnds int64) bool {
	return int64(n) < math.MaxInt32 && edgeEnds <= math.MaxInt32
}

// vertexAtlas is one centre's slot: a mutex serialising growth and the
// atomically published immutable snapshots of the skeleton and the rows.
type vertexAtlas struct {
	mu    sync.Mutex
	state atomic.Pointer[AtlasBall]
	rows  atomic.Pointer[AtlasRows]
}

// AtlasBall is an immutable snapshot of one centre's materialised skeleton.
// All exported data is read-only and shared between every worker using the
// atlas; callers must not modify it.
type AtlasBall struct {
	// MaxRadius is the largest radius whose view this snapshot can serve.
	MaxRadius int
	// Complete reports that the ball covers the centre's whole connected
	// component: views at ANY radius are servable from this snapshot.
	Complete bool
	// Verts, Dist and Degs are parallel arrays over the BFS discovery
	// order: original vertex name, distance from the centre, and true
	// degree in the graph. The radius-r ball is the prefix [0, SizeAt(r)).
	Verts []int
	Dist  []int
	Degs  []int
	// LayerEnd[r] is the number of vertices at distance <= r, r in
	// [0, MaxRadius].
	LayerEnd []int
	// ownDeg[i] is local vertex i's induced degree in the ball at its own
	// discovery radius Dist[i]; at any larger radius its induced degree is
	// Degs[i].
	ownDeg []int32
	// layerFull[r] reports that every distance-r vertex already shows its
	// full degree inside the radius-r ball — i.e. the radius-r view is
	// provably complete (interior vertices always show full degree). One
	// flag per materialised radius turns the view engine's completeness
	// check into an O(1) lookup.
	layerFull []bool
}

// serves reports whether the snapshot can produce the radius-r view.
func (ab *AtlasBall) serves(r int) bool { return ab.Complete || ab.MaxRadius >= r }

// SizeAt returns the number of vertices in the radius-r ball. For r beyond
// MaxRadius (valid only when Complete) the ball has stopped growing.
func (ab *AtlasBall) SizeAt(r int) int {
	if r >= ab.MaxRadius {
		return ab.LayerEnd[ab.MaxRadius]
	}
	return ab.LayerEnd[r]
}

// FrontierStartAt returns the local index of the first vertex at distance
// exactly r — the boundary between interior vertices (full induced degree,
// full rows) and frontier vertices (own degree, own rows) in the radius-r
// view. Equal to SizeAt(r) when the layer is empty.
func (ab *AtlasBall) FrontierStartAt(r int) int {
	if r <= 0 {
		return 0
	}
	if r > ab.MaxRadius {
		return ab.LayerEnd[ab.MaxRadius]
	}
	return ab.LayerEnd[r-1]
}

// OwnDeg returns local vertex i's induced degree at its own discovery
// radius.
func (ab *AtlasBall) OwnDeg(i int) int { return int(ab.ownDeg[i]) }

// OwnDegs exposes the whole own-degree array (read-only) for hot loops
// that check a frontier range without per-element method calls.
func (ab *AtlasBall) OwnDegs() []int32 { return ab.ownDeg }

// CompleteAt reports whether the radius-r view is complete: every vertex
// visible at radius r shows all of its edges inside the ball. Radii past
// MaxRadius are only served when the ball is Complete, where the frontier
// is empty and completeness is trivially true.
func (ab *AtlasBall) CompleteAt(r int) bool {
	if r >= len(ab.layerFull) {
		return true
	}
	return ab.layerFull[r]
}

// memSize approximates the skeleton's footprint in bytes.
func (ab *AtlasBall) memSize() int64 {
	words := len(ab.Verts) + len(ab.Dist) + len(ab.Degs) + len(ab.LayerEnd)
	return int64(words)*8 + int64(len(ab.ownDeg))*4 + int64(len(ab.layerFull))
}

// AtlasRows is an immutable snapshot of one centre's materialised adjacency
// rows, covering the skeleton prefix [0, Size). Rows are shared and
// read-only.
type AtlasRows struct {
	// Size is the number of local vertices covered (the skeleton size at
	// materialisation time).
	Size int
	// interiorEnd bounds the prefix with full rows available.
	interiorEnd int
	ownOff      []int32
	ownData     []int
	fullOff     []int32
	fullData    []int
}

// OwnRow returns local vertex i's induced adjacency row at its own
// discovery radius (neighbours at distance <= Dist[i]), in port order.
func (ar *AtlasRows) OwnRow(i int) []int {
	return ar.ownData[ar.ownOff[i]:ar.ownOff[i+1]]
}

// FullRow returns local vertex i's complete adjacency row (every
// neighbour, mapped to local indices), in port order. Valid for interior
// vertices: i < InteriorEnd().
func (ar *AtlasRows) FullRow(i int) []int {
	return ar.fullData[ar.fullOff[i]:ar.fullOff[i+1]]
}

// InteriorEnd returns the end of the prefix whose full rows exist.
func (ar *AtlasRows) InteriorEnd() int { return ar.interiorEnd }

func (ar *AtlasRows) memSize() int64 {
	return int64(len(ar.ownData)+len(ar.fullData))*8 +
		int64(len(ar.ownOff)+len(ar.fullOff))*4
}

// atlasScratch is the pooled BFS membership scratch used during growth —
// the same epoch-stamped dense-array trick BallBuilder uses, shared
// through a pool so concurrent growth of different centres never contends
// on it.
type atlasScratch struct {
	localIdx []int32
	stamp    []uint32
	epoch    uint32
}

// NewBallAtlas creates an empty atlas over g. memLimit caps the total
// memory (in bytes, approximately) of materialised data: 0 applies
// DefaultAtlasMemLimit, negative disables the cap. Nothing is materialised
// until the first Ensure.
//
// The cap is soft: it is charged per growth step, and the step that
// crosses it completes before all further materialisation stops — so the
// overshoot is bounded by one centre's ball (or, for RowsFor, one centre's
// edge lists) and a capped atlas keeps serving everything it already
// built.
func NewBallAtlas(g Graph, memLimit int64) *BallAtlas {
	switch {
	case memLimit == 0:
		memLimit = DefaultAtlasMemLimit
	case memLimit < 0:
		memLimit = int64(1) << 62
	}
	a := &BallAtlas{g: g, balls: make([]vertexAtlas, g.N())}
	a.budget.Store(memLimit)
	return a
}

// Graph returns the graph the atlas was built over.
func (a *BallAtlas) Graph() Graph { return a.g }

// MemUsed reports the approximate bytes of materialised data.
func (a *BallAtlas) MemUsed() int64 {
	var used int64
	for i := range a.balls {
		if st := a.balls[i].state.Load(); st != nil {
			used += st.memSize()
		}
		if rows := a.balls[i].rows.Load(); rows != nil {
			used += rows.memSize()
		}
	}
	return used
}

// Exhausted reports whether the atlas hit its memory cap (or refused its
// CSR, see Err); once true, no further layers will ever be materialised.
func (a *BallAtlas) Exhausted() bool { return a.exhausted.Load() }

// Err returns the typed reason materialisation is structurally impossible
// — currently only *CSROverflowError — or nil. A merely memory-capped
// atlas reports Exhausted with a nil Err.
func (a *BallAtlas) Err() error {
	if e := a.csrErr.Load(); e != nil {
		return e
	}
	return nil
}

// csr lazily flattens the graph into offset/adjacency arrays shared by all
// growth. The copy costs O(n + E) once and is charged to the budget. On
// int32 offset overflow nothing is built: the atlas marks itself exhausted
// with a typed CSROverflowError (see Err) and returns nil arrays.
func (a *BallAtlas) csr() ([]int32, []int32) {
	a.csrOnce.Do(func() {
		g := a.g
		n := g.N()
		var edgeEnds int64
		for v := 0; v < n; v++ {
			edgeEnds += int64(g.Degree(v))
		}
		if !csrFits(n, edgeEnds) {
			a.csrErr.Store(&CSROverflowError{Verts: n, EdgeEnds: edgeEnds})
			a.exhausted.Store(true)
			return
		}
		off := make([]int32, n+1)
		for v := 0; v < n; v++ {
			off[v+1] = off[v] + int32(g.Degree(v))
		}
		adj := make([]int32, off[n])
		k := 0
		for v := 0; v < n; v++ {
			for p := 0; p < g.Degree(v); p++ {
				adj[k] = int32(g.Neighbor(v, p))
				k++
			}
		}
		a.budget.Add(-int64(len(off)+len(adj)) * 4)
		a.csrOff, a.csrAdj = off, adj
	})
	return a.csrOff, a.csrAdj
}

// Ensure returns a snapshot able to serve the radius-r view around center,
// materialising missing skeleton layers first. It returns nil when the
// memory cap prevents the required growth; already materialised radii
// remain served forever. The fast path (layers already present) is a
// single atomic load.
//
// Growth uses geometric lookahead: a call that must grow materialises past
// r (see lookahead), so a centre repeatedly asked for one more radius (the
// view engine's access pattern) re-stamps its ball O(log) times instead of
// once per radius — total build cost stays linear in the final ball size,
// and materialisation stays within a constant factor of the deepest radius
// any trial actually reaches.
func (a *BallAtlas) Ensure(center, r int) *AtlasBall {
	va := &a.balls[center]
	if st := va.state.Load(); st != nil && st.serves(r) {
		return st
	}
	if a.exhausted.Load() {
		return nil
	}
	va.mu.Lock()
	defer va.mu.Unlock()
	st := va.state.Load()
	if st != nil && st.serves(r) {
		return st
	}
	if a.exhausted.Load() {
		return nil
	}
	next := a.grow(center, st, lookahead(st, r))
	va.state.Store(next)
	return next
}

// lookahead picks the speculative growth target: a few radii on the first
// materialisation (most sweep executions stop within a handful of radii,
// and one presized growth call is much cheaper than three), then 1.5× the
// materialised radius, never less than the request.
func lookahead(st *AtlasBall, r int) int {
	if st == nil {
		if r < 3 {
			return 3
		}
		return r
	}
	if ahead := st.MaxRadius + st.MaxRadius/2 + 1; ahead > r {
		return ahead
	}
	return r
}

// grow extends st (nil: not yet materialised) to radius target (or
// completion). The growth is charged to the budget afterwards — the soft
// cap — so the snapshot always serves target, and crossing the cap stops
// all future materialisation instead of failing this one. Called with the
// centre's mutex held. The returned snapshot shares its arrays' backing
// with st — appends only ever write past the published lengths, so
// concurrent readers of older snapshots are undisturbed.
func (a *BallAtlas) grow(center int, st *AtlasBall, target int) *AtlasBall {
	csrOff, csrAdj := a.csr()
	if csrOff == nil {
		// CSR refused (int32 offset overflow): csr has already marked the
		// atlas exhausted with a typed Err; nothing can ever materialise.
		return st
	}
	sc := a.getScratch()
	defer a.scratch.Put(sc)

	next := &AtlasBall{}
	if st == nil {
		deg := int(csrOff[center+1] - csrOff[center])
		// One presized block for the three parallel int arrays: shallow
		// centres (the common case) then grow with zero reallocations.
		est := 1 + deg*target
		if est > a.g.N() {
			est = a.g.N()
		}
		block := make([]int, est, 3*est)
		next.Verts = append(block[:0:est], center)
		next.Dist = append(block[est:est:2*est], 0)
		next.Degs = append(block[2*est:2*est:3*est], deg)
		next.LayerEnd = make([]int, 1, target+1)
		next.LayerEnd[0] = 1
		next.ownDeg = append(make([]int32, 0, est), 0)
		next.layerFull = append(make([]bool, 0, target+1), deg == 0)
	} else {
		*next = *st
	}
	// Re-stamp the existing ball so membership tests see it. This is the
	// only repeated work across growth calls; the geometric lookahead
	// keeps its total O(final ball size).
	for i, v := range next.Verts {
		sc.localIdx[v] = int32(i)
		sc.stamp[v] = sc.epoch
	}

	var before int64 // first materialisation charges the initial snapshot too
	if st != nil {
		before = st.memSize()
	}
	for next.MaxRadius < target && !next.Complete {
		r := next.MaxRadius // materialising radius r+1
		fs := 0
		if r > 0 {
			fs = next.LayerEnd[r-1]
		}
		fe := next.LayerEnd[r]
		start := len(next.Verts)
		// Discover layer r+1 in frontier order × port order — the exact
		// discovery order of NewBall/BallBuilder.
		for i := fs; i < fe; i++ {
			v := next.Verts[i]
			for _, w32 := range csrAdj[csrOff[v]:csrOff[v+1]] {
				w := int(w32)
				if sc.stamp[w] == sc.epoch {
					continue
				}
				sc.localIdx[w] = int32(len(next.Verts))
				sc.stamp[w] = sc.epoch
				next.Verts = append(next.Verts, w)
				next.Dist = append(next.Dist, r+1)
				next.Degs = append(next.Degs, int(csrOff[w+1]-csrOff[w]))
			}
		}
		// Own degrees for the new layer: with layers 0..r+1 now stamped
		// and r+2 not yet discovered, the stamped neighbours of a layer-
		// (r+1) vertex are exactly its ball-(r+1) neighbours.
		full := true
		for i := start; i < len(next.Verts); i++ {
			v := next.Verts[i]
			var d int32
			for _, w := range csrAdj[csrOff[v]:csrOff[v+1]] {
				if sc.stamp[w] == sc.epoch {
					d++
				}
			}
			next.ownDeg = append(next.ownDeg, d)
			full = full && int(d) == next.Degs[i]
		}
		next.layerFull = append(next.layerFull, full)
		next.LayerEnd = append(next.LayerEnd, len(next.Verts))
		next.MaxRadius++
		if start == len(next.Verts) {
			// Empty layer: the ball covers the component; every larger
			// radius is now servable (all vertices interior).
			next.Complete = true
		}
	}
	if a.budget.Add(before-next.memSize()) < 0 {
		// Soft cap: this snapshot stands (its data is already built), but
		// nothing further will ever be materialised.
		a.exhausted.Store(true)
	}
	return next
}

// RowsFor returns adjacency rows covering at least the first size local
// vertices of center's skeleton, with full rows available for at least the
// first interiorNeed of them, materialising (or extending) the rows on
// first demand. Row materialisation never fails: a view that was already
// served from the skeleton must be able to enumerate its edges, so this
// path may overshoot the memory cap (it still charges the budget, stopping
// all future skeleton growth). size must not exceed the materialised
// skeleton, and interiorNeed must not exceed the skeleton's interior
// prefix.
func (a *BallAtlas) RowsFor(center, size, interiorNeed int) *AtlasRows {
	va := &a.balls[center]
	if rows := va.rows.Load(); rows != nil && rows.Size >= size && rows.interiorEnd >= interiorNeed {
		return rows
	}
	va.mu.Lock()
	defer va.mu.Unlock()
	if rows := va.rows.Load(); rows != nil && rows.Size >= size && rows.interiorEnd >= interiorNeed {
		return rows
	}
	st := va.state.Load()
	csrOff, csrAdj := a.csr()
	sc := a.getScratch()
	defer a.scratch.Put(sc)
	for i, v := range st.Verts {
		sc.localIdx[v] = int32(i)
		sc.stamp[v] = sc.epoch
	}
	n := len(st.Verts)
	rows := &AtlasRows{
		Size:        n,
		interiorEnd: st.FrontierStartAt(st.MaxRadius),
		ownOff:      make([]int32, 1, n+1),
		fullOff:     make([]int32, 1, n+1),
	}
	if st.Complete {
		rows.interiorEnd = n
	}
	for i := 0; i < n; i++ {
		v, d := st.Verts[i], st.Dist[i]
		for _, w32 := range csrAdj[csrOff[v]:csrOff[v+1]] {
			w := int(w32)
			// Own row: neighbours inside the ball at i's own radius.
			if sc.stamp[w] == sc.epoch && st.Dist[sc.localIdx[w]] <= d {
				rows.ownData = append(rows.ownData, int(sc.localIdx[w]))
			}
		}
		rows.ownOff = append(rows.ownOff, int32(len(rows.ownData)))
		if i < rows.interiorEnd {
			// Full row: every neighbour is stamped (all sit at distance
			// <= d+1 <= MaxRadius).
			for _, w := range csrAdj[csrOff[v]:csrOff[v+1]] {
				rows.fullData = append(rows.fullData, int(sc.localIdx[w]))
			}
			rows.fullOff = append(rows.fullOff, int32(len(rows.fullData)))
		}
	}
	delta := rows.memSize()
	if old := va.rows.Load(); old != nil {
		delta -= old.memSize() // the old snapshot is garbage once replaced
	}
	if a.budget.Add(-delta) < 0 {
		a.exhausted.Store(true)
	}
	va.rows.Store(rows)
	return rows
}

// getScratch checks a membership scratch out of the pool, sized to the
// graph, with a fresh epoch.
func (a *BallAtlas) getScratch() *atlasScratch {
	sc, _ := a.scratch.Get().(*atlasScratch)
	if sc == nil {
		sc = &atlasScratch{}
	}
	if n := a.g.N(); len(sc.localIdx) < n {
		sc.localIdx = make([]int32, n)
		sc.stamp = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 {
		// 32-bit epoch wrapped: clear stale stamps once per 2^32 uses.
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	return sc
}

// BallAt materialises the radius-r ball around center as a standalone
// Ball, byte-identical to NewBall(g, center, r) and to a BallBuilder grown
// r times. It allocates per call — the sweep hot path serves views from
// the skeleton directly — and returns nil when the atlas is memory-capped.
func (a *BallAtlas) BallAt(center, r int) *Ball {
	if r < 0 {
		r = 0
	}
	st := a.Ensure(center, r)
	if st == nil {
		return nil
	}
	end := st.SizeAt(r)
	fs := st.FrontierStartAt(r)
	rows := a.RowsFor(center, end, fs)
	b := &Ball{
		Radius: r,
		Verts:  append([]int(nil), st.Verts[:end]...),
		Dist:   append([]int(nil), st.Dist[:end]...),
		Adj:    make([][]int, end),
	}
	for i := 0; i < fs; i++ {
		b.Adj[i] = append([]int(nil), rows.FullRow(i)...)
	}
	for i := fs; i < end; i++ {
		b.Adj[i] = append([]int(nil), rows.OwnRow(i)...)
	}
	return b
}
