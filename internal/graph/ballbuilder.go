package graph

// BallBuilder grows a ball one radius step at a time, reusing state across
// steps. It exists because the view engine repeatedly enlarges every node's
// ball until the node decides; rebuilding each ball from scratch would make
// a radius-r execution cost O(r^2) per node instead of O(ball size).
//
// The Ball exposed by the builder is updated in place by Grow; callers that
// need a stable snapshot must copy it.
type BallBuilder struct {
	g        Graph
	ball     *Ball
	local    map[int]int
	frontier []int // local indices at distance exactly ball.Radius
}

// NewBallBuilder starts a radius-0 ball around center.
func NewBallBuilder(g Graph, center int) *BallBuilder {
	bb := &BallBuilder{
		g:     g,
		local: map[int]int{center: 0},
		ball: &Ball{
			Radius: 0,
			Verts:  []int{center},
			Dist:   []int{0},
			Adj:    [][]int{nil},
		},
		frontier: []int{0},
	}
	return bb
}

// Ball returns the current ball. It is mutated by subsequent Grow calls.
func (bb *BallBuilder) Ball() *Ball { return bb.ball }

// Grow extends the ball radius by one and returns the local index of the
// first vertex discovered at the new radius (== previous ball size). When
// the ball has stopped growing (it already covers the component), Grow still
// increments Radius and returns the unchanged ball size.
func (bb *BallBuilder) Grow() (frontierStart int) {
	b := bb.ball
	frontierStart = len(b.Verts)
	newRadius := b.Radius + 1
	var newFrontier []int
	for _, i := range bb.frontier {
		v := b.Verts[i]
		for p := 0; p < bb.g.Degree(v); p++ {
			w := bb.g.Neighbor(v, p)
			if _, ok := bb.local[w]; !ok {
				j := len(b.Verts)
				bb.local[w] = j
				b.Verts = append(b.Verts, w)
				b.Dist = append(b.Dist, newRadius)
				b.Adj = append(b.Adj, nil)
				newFrontier = append(newFrontier, j)
			}
		}
	}
	// Rebuild adjacency rows whose membership can have changed: the old
	// frontier (gains edges to the new layer and to peers at its own
	// distance) and the new layer. Interior rows are already complete.
	for _, i := range append(append([]int(nil), bb.frontier...), newFrontier...) {
		v := b.Verts[i]
		row := b.Adj[i][:0]
		for p := 0; p < bb.g.Degree(v); p++ {
			if j, ok := bb.local[bb.g.Neighbor(v, p)]; ok {
				row = append(row, j)
			}
		}
		b.Adj[i] = row
	}
	b.Radius = newRadius
	bb.frontier = newFrontier
	return frontierStart
}
