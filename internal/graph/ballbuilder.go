package graph

// BallBuilder grows a ball one radius step at a time, reusing state across
// steps. It exists because the view engine repeatedly enlarges every node's
// ball until the node decides; rebuilding each ball from scratch would make
// a radius-r execution cost O(r^2) per node instead of O(ball size).
//
// A builder is also reusable across centres (and across graphs) via Reset:
// sweep workers keep one builder alive for millions of vertex executions and
// pay no per-vertex allocation once the internal buffers have warmed up.
// Membership tests use an epoch-stamped dense array indexed by original
// vertex, so a Reset is O(1) rather than O(ball size).
//
// The Ball exposed by the builder is updated in place by Grow and recycled
// by Reset; callers that need a stable snapshot must copy it.
type BallBuilder struct {
	g    Graph
	ball *Ball
	// localIdx[v] is the local index of original vertex v, valid only when
	// stamp[v] == epoch. The epoch bump in Reset invalidates the whole
	// table without touching it.
	localIdx []int32
	stamp    []uint32
	epoch    uint32
	frontier []int // local indices at distance exactly ball.Radius
	next     []int // scratch for the frontier being built by Grow
}

// NewBallBuilder starts a radius-0 ball around center.
func NewBallBuilder(g Graph, center int) *BallBuilder {
	bb := &BallBuilder{ball: &Ball{}}
	bb.Reset(g, center)
	return bb
}

// Reset restarts the builder as a radius-0 ball around center in g,
// recycling all internal storage (including the Ball returned by Ball(),
// which must no longer be referenced by the previous use). g may differ
// from the graph of the previous use.
func (bb *BallBuilder) Reset(g Graph, center int) {
	bb.g = g
	if n := g.N(); len(bb.localIdx) < n {
		bb.localIdx = make([]int32, n)
		bb.stamp = make([]uint32, n)
		bb.epoch = 0
	}
	bb.epoch++
	if bb.epoch == 0 {
		// The 32-bit epoch wrapped: stale stamps could collide, so clear
		// them once every 2^32 resets and restart at epoch 1.
		for i := range bb.stamp {
			bb.stamp[i] = 0
		}
		bb.epoch = 1
	}
	b := bb.ball
	b.Radius = 0
	b.Verts = append(b.Verts[:0], center)
	b.Dist = append(b.Dist[:0], 0)
	bb.reuseAdjRow(0)
	bb.localIdx[center] = 0
	bb.stamp[center] = bb.epoch
	bb.frontier = append(bb.frontier[:0], 0)
	bb.next = bb.next[:0]
}

// reuseAdjRow extends ball.Adj to cover local index j, recycling the row
// capacity left behind by earlier uses of the builder.
func (bb *BallBuilder) reuseAdjRow(j int) {
	b := bb.ball
	if j < cap(b.Adj) {
		b.Adj = b.Adj[:j+1]
		b.Adj[j] = b.Adj[j][:0]
		return
	}
	b.Adj = append(b.Adj, nil)
}

// Ball returns the current ball. It is mutated by subsequent Grow calls and
// recycled by Reset.
func (bb *BallBuilder) Ball() *Ball { return bb.ball }

// Grow extends the ball radius by one and returns the local index of the
// first vertex discovered at the new radius (== previous ball size). When
// the ball has stopped growing (it already covers the component), Grow still
// increments Radius and returns the unchanged ball size.
func (bb *BallBuilder) Grow() (frontierStart int) {
	b := bb.ball
	frontierStart = len(b.Verts)
	newRadius := b.Radius + 1
	bb.next = bb.next[:0]
	for _, i := range bb.frontier {
		v := b.Verts[i]
		for p := 0; p < bb.g.Degree(v); p++ {
			w := bb.g.Neighbor(v, p)
			if bb.stamp[w] == bb.epoch {
				continue
			}
			j := len(b.Verts)
			b.Verts = append(b.Verts, w)
			b.Dist = append(b.Dist, newRadius)
			bb.reuseAdjRow(j)
			bb.localIdx[w] = int32(j)
			bb.stamp[w] = bb.epoch
			bb.next = append(bb.next, j)
		}
	}
	// Rebuild adjacency rows whose membership can have changed: the old
	// frontier (gains edges to the new layer and to peers at its own
	// distance) and the new layer. Interior rows are already complete.
	for _, layer := range [2][]int{bb.frontier, bb.next} {
		for _, i := range layer {
			v := b.Verts[i]
			row := b.Adj[i][:0]
			for p := 0; p < bb.g.Degree(v); p++ {
				if w := bb.g.Neighbor(v, p); bb.stamp[w] == bb.epoch {
					row = append(row, int(bb.localIdx[w]))
				}
			}
			b.Adj[i] = row
		}
	}
	b.Radius = newRadius
	bb.frontier, bb.next = bb.next, bb.frontier
	return frontierStart
}
