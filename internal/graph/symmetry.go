package graph

// Symmetry declares a graph family's automorphism group to the
// symmetry-quotient enumeration path: a generating set plus the group
// order, which is the uniform orbit size (the action on injective
// identifier assignments is free) and hence the fold weight of every
// canonical representative. The zero value declines — families without
// exploitable symmetry (GNP, arbitrary adjacency) simply do not implement
// Automorphisms, mirroring how non-closed-form families stay out of the
// Implicit backend.
type Symmetry struct {
	// Generators generate the declared group; each is a permutation of
	// {0..n-1} mapping vertex v to Generators[i][v]. The declared group
	// need not be the full automorphism group — any subgroup quotients
	// soundly, just with less reduction.
	Generators [][]int
	// Order is the exact order of the generated group, cross-checked
	// against the materialized closure by the quotient ranker. Ignored
	// when Full is set.
	Order uint64
	// Full declares the symmetric group S_n (the complete graph): the
	// closure is unmaterializable, so the ranker special-cases it — one
	// canonical representative (the identity) with weight n!.
	Full bool
}

// Declares reports whether the Symmetry actually declares a group (the
// zero value is a decline).
func (s Symmetry) Declares() bool { return s.Full || len(s.Generators) > 0 }

// Automorphisms is implemented by graph families that declare (a subgroup
// of) their automorphism group for symmetry-quotient enumeration. An
// implementation must only declare permutations σ that preserve the
// adjacency structure the executed algorithm can observe — formally, the
// radius multiset of a run must be invariant under relabeling by σ. All
// declared families guarantee this for algorithms that depend only on the
// port-forgetting labeled ball (identifier sets at each distance); a
// port-sensitive algorithm (one branching on port numbers, e.g.
// orientation-consuming Cole–Vishkin variants) is NOT invariant under the
// cycle's reflection and must not be run under a quotient.
//
// maxSymmetryN bounds the sizes at which families bother materializing
// generators: quotient enumeration is an exhaustive-path feature, and the
// rank space caps n at ids.MaxRankN long before that.
type Automorphisms interface {
	Graph
	// Automorphisms returns the declared group, or the zero Symmetry to
	// decline at this size.
	Automorphisms() Symmetry
}

// maxSymmetryN is the size cap above which families decline: generators
// are n-length permutations and the quotient ranker materializes the
// closure, so declaring at implicit-backend scales (n = 10^7) would be
// pure waste.
const maxSymmetryN = 64

// AutomorphismFamilies lists the families shipped with the package that
// declare automorphisms, for diagnostics when a quotient request names a
// family that declines.
func AutomorphismFamilies() []string {
	return []string{
		"cycle (graph.Cycle)",
		"torus (graph.Torus)",
		"complete b-ary tree (graph.ImplicitTree)",
		"complete graph (graph.Complete)",
	}
}

// Automorphisms declares the cycle's dihedral group: the rotation
// v -> v+1 and the reflection v -> -v, order 2n.
func (c Cycle) Automorphisms() Symmetry {
	n := c.n
	if n > maxSymmetryN {
		return Symmetry{}
	}
	rot := make([]int, n)
	ref := make([]int, n)
	for v := 0; v < n; v++ {
		rot[v] = (v + 1) % n
		ref[v] = (n - v) % n
	}
	return Symmetry{Generators: [][]int{rot, ref}, Order: uint64(2 * n)}
}

// Automorphisms declares the torus's translation group extended by the
// axis flips, and by the transpose when the torus is square: order
// rows*cols*4, doubled to rows*cols*8 for square tori.
func (t Torus) Automorphisms() Symmetry {
	rows, cols := t.rows, t.cols
	n := rows * cols
	if n > maxSymmetryN {
		return Symmetry{}
	}
	perm := func(f func(r, c int) (int, int)) []int {
		p := make([]int, n)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				nr, nc := f(r, c)
				p[r*cols+c] = nr*cols + nc
			}
		}
		return p
	}
	gens := [][]int{
		perm(func(r, c int) (int, int) { return (r + 1) % rows, c }),
		perm(func(r, c int) (int, int) { return r, (c + 1) % cols }),
		perm(func(r, c int) (int, int) { return (rows - r) % rows, c }),
		perm(func(r, c int) (int, int) { return r, (cols - c) % cols }),
	}
	order := uint64(n) * 4
	if rows == cols {
		gens = append(gens, perm(func(r, c int) (int, int) { return c, r }))
		order *= 2
	}
	return Symmetry{Generators: gens, Order: order}
}

// Automorphisms declares the complete b-ary tree's subtree-permutation
// group: for every internal node, adjacent child subtrees swap (by
// corresponding heap index), generating (b!)^#internal automorphisms. It
// declines when the order overflows uint64 or the tree exceeds the size
// cap.
func (t ImplicitTree) Automorphisms() Symmetry {
	n := t.n
	if n > maxSymmetryN || n == 1 {
		return Symmetry{}
	}
	// b! with overflow guard (b <= maxSymmetryN keeps this honest anyway).
	bf := uint64(1)
	for i := 2; i <= t.b; i++ {
		bf *= uint64(i)
	}
	var gens [][]int
	order := uint64(1)
	for u := 0; u*t.b+1 < n; u++ { // every internal node
		if order > (1<<63)/bf {
			return Symmetry{} // (b!)^#internal overflows
		}
		order *= bf
		for i := 1; i < t.b; i++ {
			gens = append(gens, t.swapChildren(u, i, i+1))
		}
	}
	return Symmetry{Generators: gens, Order: order}
}

// swapChildren builds the automorphism exchanging the subtrees rooted at
// u's i-th and j-th children (1-based), matching vertices by identical
// paths below the swapped roots.
func (t ImplicitTree) swapChildren(u, i, j int) []int {
	p := make([]int, t.n)
	for v := range p {
		p[v] = v
	}
	ci, cj := u*t.b+i, u*t.b+j
	// Walk both subtrees level by level; heap numbering keeps each level a
	// contiguous range of equal width under both roots.
	li, lj, width := ci, cj, 1
	for li < t.n {
		for k := 0; k < width; k++ {
			p[li+k], p[lj+k] = lj+k, li+k
		}
		li, lj, width = li*t.b+1, lj*t.b+1, width*t.b
	}
	return p
}
