// Package graph provides the network substrate for the LOCAL-model
// simulator: finite, simple, undirected, port-numbered graphs, together
// with the metric utilities (BFS, distances, balls) that the ball-view
// formulation of the LOCAL model is built on.
//
// Port numbering follows the standard LOCAL-model convention: each vertex v
// numbers its incident edges 0..Degree(v)-1, and Neighbor(v, p) is the
// vertex at the other end of port p. Port numbers are local — the two
// endpoints of an edge generally assign it different numbers.
package graph

import (
	"errors"
	"fmt"
)

// Graph is a finite, simple, undirected, port-numbered graph. Vertices are
// 0..N()-1. Implementations must be immutable after construction so that a
// Graph can be shared by concurrent simulator nodes without locking.
type Graph interface {
	// N reports the number of vertices.
	N() int
	// Degree reports the number of edges incident to v.
	Degree(v int) int
	// Neighbor returns the vertex reached from v through local port p,
	// with 0 <= p < Degree(v).
	Neighbor(v, p int) int
}

// OrientedRing is implemented by graphs whose vertices lie on a single,
// consistently oriented cycle. Successor follows the orientation ("clockwise")
// and Predecessor reverses it. Cole–Vishkin-style algorithms rely on this
// shared orientation; symmetric algorithms such as largest-ID pruning do not.
type OrientedRing interface {
	Graph
	// Successor returns the clockwise neighbour of v.
	Successor(v int) int
	// Predecessor returns the counter-clockwise neighbour of v.
	Predecessor(v int) int
}

// ErrVertexRange indicates a vertex index outside 0..N()-1.
var ErrVertexRange = errors.New("vertex index out of range")

// Neighbors collects the neighbours of v in port order.
func Neighbors(g Graph, v int) []int {
	d := g.Degree(v)
	out := make([]int, d)
	for p := 0; p < d; p++ {
		out[p] = g.Neighbor(v, p)
	}
	return out
}

// Edges enumerates every undirected edge {u, v} with u < v exactly once,
// in deterministic order.
func Edges(g Graph) [][2]int {
	var out [][2]int
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if v < w {
				out = append(out, [2]int{v, w})
			}
		}
	}
	return out
}

// NumEdges reports the number of undirected edges.
func NumEdges(g Graph) int {
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	return sum / 2
}

// MaxDegree reports the maximum vertex degree, 0 for the empty graph.
func MaxDegree(g Graph) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Validate checks the structural invariants every Graph implementation must
// satisfy: neighbour indices in range, no self-loops, no parallel edges, and
// symmetry (u adjacent to v implies v adjacent to u).
func Validate(g Graph) error {
	n := g.N()
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", n)
	}
	for v := 0; v < n; v++ {
		seen := make(map[int]bool, g.Degree(v))
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if w < 0 || w >= n {
				return fmt.Errorf("graph: vertex %d port %d: %w (%d)", v, p, ErrVertexRange, w)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if seen[w] {
				return fmt.Errorf("graph: parallel edge %d-%d", v, w)
			}
			seen[w] = true
			if !adjacent(g, w, v) {
				return fmt.Errorf("graph: asymmetric edge %d->%d", v, w)
			}
		}
	}
	return nil
}

func adjacent(g Graph, u, v int) bool {
	for p := 0; p < g.Degree(u); p++ {
		if g.Neighbor(u, p) == v {
			return true
		}
	}
	return false
}

// Adjacent reports whether u and v share an edge.
func Adjacent(g Graph, u, v int) bool {
	return adjacent(g, u, v)
}
