package graph

import (
	"fmt"
	"sort"
)

// Adj is a general graph backed by sorted adjacency lists. It is the target
// representation for generated graphs (trees, grids, G(n,p)) and for graphs
// read from edge lists. Adjacency lists are sorted by neighbour index, so
// port numbering is deterministic.
type Adj struct {
	adj [][]int
}

var _ Graph = (*Adj)(nil)

// NewAdj builds a graph on n vertices from an undirected edge list. Edges
// may appear in either orientation but not twice; self-loops are rejected.
func NewAdj(n int, edges [][2]int) (*Adj, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	adj := make([][]int, n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge %v: %w", e, ErrVertexRange)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", u)
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return nil, fmt.Errorf("graph: duplicate edge %d-%d", u, v)
		}
		seen[key] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := range adj {
		sort.Ints(adj[v])
	}
	return &Adj{adj: adj}, nil
}

// MustAdj is NewAdj for inputs known to be valid; it panics on error and is
// intended for tests and examples.
func MustAdj(n int, edges [][2]int) *Adj {
	g, err := NewAdj(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N reports the number of vertices.
func (g *Adj) N() int { return len(g.adj) }

// Degree reports the number of neighbours of v.
func (g *Adj) Degree(v int) int { return len(g.adj[v]) }

// Neighbor returns the p-th smallest neighbour of v.
func (g *Adj) Neighbor(v, p int) int { return g.adj[v][p] }

// Clone returns an independent deep copy, e.g. for mutation-based tests.
func (g *Adj) Clone() *Adj {
	adj := make([][]int, len(g.adj))
	for v, row := range g.adj {
		adj[v] = append([]int(nil), row...)
	}
	return &Adj{adj: adj}
}
