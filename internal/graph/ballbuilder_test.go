package graph

import (
	"math/rand"
	"testing"
)

func ballsEqual(a, b *Ball) bool {
	if a.Radius != b.Radius || len(a.Verts) != len(b.Verts) {
		return false
	}
	for i := range a.Verts {
		if a.Verts[i] != b.Verts[i] || a.Dist[i] != b.Dist[i] {
			return false
		}
		if len(a.Adj[i]) != len(b.Adj[i]) {
			return false
		}
		for k := range a.Adj[i] {
			if a.Adj[i][k] != b.Adj[i][k] {
				return false
			}
		}
	}
	return true
}

// TestBallBuilderMatchesNewBall is the builder's contract: growing r times
// produces exactly NewBall(g, v, r), on every graph family.
func TestBallBuilderMatchesNewBall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gnp, err := NewGNP(25, 0.15, rng)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewRandomTree(25, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGrid(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]Graph{
		"C12":  MustCycle(12),
		"P9":   MustPath(9),
		"gnp":  gnp,
		"tree": tree,
		"grid": grid,
	}
	for name, g := range graphs {
		for v := 0; v < g.N(); v += 3 {
			bb := NewBallBuilder(g, v)
			for r := 0; r <= 8; r++ {
				want := NewBall(g, v, r)
				if !ballsEqual(bb.Ball(), want) {
					t.Fatalf("%s: vertex %d radius %d: builder ball differs from NewBall", name, v, r)
				}
				bb.Grow()
			}
		}
	}
}

func TestBallBuilderFrontierStart(t *testing.T) {
	c := MustCycle(10)
	bb := NewBallBuilder(c, 0)
	if bb.Ball().Size() != 1 {
		t.Fatalf("initial size %d", bb.Ball().Size())
	}
	start := bb.Grow()
	if start != 1 {
		t.Errorf("first Grow frontierStart = %d, want 1", start)
	}
	if bb.Ball().Size() != 3 {
		t.Errorf("size after first Grow = %d, want 3", bb.Ball().Size())
	}
	start = bb.Grow()
	if start != 3 {
		t.Errorf("second Grow frontierStart = %d, want 3", start)
	}
}

// TestBallBuilderReset is the reuse contract: a Reset builder behaves
// exactly like a fresh one, across centres and across graphs of different
// sizes, with the epoch trick making stale state from earlier uses
// invisible.
func TestBallBuilderReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gnp, err := NewGNP(20, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []Graph{MustCycle(13), gnp, MustPath(6), MustCycle(30)}
	bb := NewBallBuilder(graphs[0], 0)
	for round := 0; round < 3; round++ {
		for _, g := range graphs {
			for v := 0; v < g.N(); v += 2 {
				bb.Reset(g, v)
				for r := 0; r <= 6; r++ {
					want := NewBall(g, v, r)
					if !ballsEqual(bb.Ball(), want) {
						t.Fatalf("round %d, n=%d, vertex %d, radius %d: reset builder ball differs from NewBall", round, g.N(), v, r)
					}
					bb.Grow()
				}
			}
		}
	}
}

// TestBallBuilderResetAllocs checks that warmed-up reuse is allocation-free:
// the whole point of Reset is that sweep workers pay no per-vertex garbage.
func TestBallBuilderResetAllocs(t *testing.T) {
	c := MustCycle(64)
	bb := NewBallBuilder(c, 0)
	for r := 0; r < 40; r++ { // warm every buffer to full size
		bb.Grow()
	}
	allocs := testing.AllocsPerRun(50, func() {
		bb.Reset(c, 7)
		for r := 0; r < 32; r++ {
			bb.Grow()
		}
	})
	if allocs > 0 {
		t.Errorf("warmed-up Reset+Grow cycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestBallBuilderSaturates(t *testing.T) {
	c := MustCycle(7)
	bb := NewBallBuilder(c, 2)
	for i := 0; i < 10; i++ {
		bb.Grow()
	}
	b := bb.Ball()
	if b.Size() != 7 {
		t.Errorf("saturated ball size = %d, want 7", b.Size())
	}
	if b.Radius != 10 {
		t.Errorf("radius = %d, want 10", b.Radius)
	}
	if !b.AllDegreesWithin(2) {
		t.Error("saturated cycle ball should be 2-regular")
	}
	start := bb.Grow()
	if start != 7 {
		t.Errorf("Grow on saturated ball returned %d, want 7", start)
	}
}
