package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// atlasTestFamilies builds the family zoo the equivalence suites sweep:
// linear ball growth (path, cycle), polynomial (grid), tree, dense and
// possibly disconnected (GNP), and the degenerate extremes (star, clique).
func atlasTestFamilies(t *testing.T) map[string]Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tree, err := NewRandomTree(31, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGrid(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := NewGNP(26, 0.12, rng)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewGNP(18, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := NewComplete(9)
	if err != nil {
		t.Fatal(err)
	}
	star, err := NewStar(12)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Graph{
		"path":     MustPath(17),
		"cycle":    MustCycle(16),
		"tree":     tree,
		"grid":     grid,
		"gnp":      gnp,
		"gnpDense": dense,
		"complete": complete,
		"star":     star,
		"single":   MustPath(1),
	}
}

// sameBall compares two balls structurally, treating nil and empty
// adjacency rows as equal (builders recycle rows, NewBall leaves them nil).
func sameBall(a, b *Ball) bool {
	if a.Radius != b.Radius || len(a.Verts) != len(b.Verts) {
		return false
	}
	for i := range a.Verts {
		if a.Verts[i] != b.Verts[i] || a.Dist[i] != b.Dist[i] {
			return false
		}
		ra, rb := a.Adj[i], b.Adj[i]
		if len(ra) != len(rb) {
			return false
		}
		for k := range ra {
			if ra[k] != rb[k] {
				return false
			}
		}
	}
	return true
}

// TestAtlasMatchesBuilder is the structural half of the atlas guarantee:
// for every family, centre, and radius (past the eccentricity), the
// atlas-served ball is byte-identical to a BallBuilder grown step by step.
func TestAtlasMatchesBuilder(t *testing.T) {
	for name, g := range atlasTestFamilies(t) {
		atlas := NewBallAtlas(g, 0)
		maxR := g.N()/2 + 2
		for v := 0; v < g.N(); v++ {
			bb := NewBallBuilder(g, v)
			for r := 0; r <= maxR; r++ {
				if r > 0 {
					bb.Grow()
				}
				got := atlas.BallAt(v, r)
				if got == nil {
					t.Fatalf("%s: atlas capped unexpectedly at v=%d r=%d", name, v, r)
				}
				if !sameBall(got, bb.Ball()) {
					t.Fatalf("%s: atlas ball differs at v=%d r=%d\natlas:   %+v\nbuilder: %+v",
						name, v, r, got, bb.Ball())
				}
			}
		}
	}
}

// TestAtlasMatchesNewBall cross-checks against the from-scratch gatherer on
// a sample of (centre, radius) pairs, including radius far past coverage.
func TestAtlasMatchesNewBall(t *testing.T) {
	for name, g := range atlasTestFamilies(t) {
		atlas := NewBallAtlas(g, 0)
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			v := rng.Intn(g.N())
			r := rng.Intn(g.N() + 3)
			want := NewBall(g, v, r)
			got := atlas.BallAt(v, r)
			if got == nil || !sameBall(got, want) {
				t.Fatalf("%s: atlas ball differs from NewBall at v=%d r=%d", name, v, r)
			}
		}
	}
}

// TestAtlasLazyGrowth pins the laziness contract: only requested radii are
// materialised, requests are idempotent, and completion is sticky.
func TestAtlasLazyGrowth(t *testing.T) {
	g := MustCycle(64)
	atlas := NewBallAtlas(g, 0)
	st := atlas.Ensure(3, 2)
	if st == nil || st.MaxRadius < 2 || st.MaxRadius > 3 {
		// Growth may overshoot the request by the small constant initial
		// lookahead, never more.
		t.Fatalf("Ensure(3, 2) materialised %v, want MaxRadius in [2, 3]", st)
	}
	if st.Complete {
		t.Fatal("radius-2 ball of a 64-cycle cannot be complete")
	}
	again := atlas.Ensure(3, 1)
	if again != st {
		t.Fatal("smaller-radius Ensure must return the existing snapshot")
	}
	// Growing far past the eccentricity completes and then stops growing.
	st = atlas.Ensure(3, 64)
	if st == nil || !st.Complete {
		t.Fatalf("full-coverage Ensure: %+v, want Complete", st)
	}
	if got := st.SizeAt(500); got != 64 {
		t.Fatalf("complete ball SizeAt(500) = %d, want 64", got)
	}
	if used := atlas.MemUsed(); used <= 0 {
		t.Fatalf("MemUsed() = %d after growth", used)
	}
}

// TestAtlasMemCap forces the soft cap and checks the contract: the growth
// call that crosses the cap completes (bounded overshoot), everything
// already materialised stays served, and all further materialisation is
// refused.
func TestAtlasMemCap(t *testing.T) {
	g := MustCycle(256)
	atlas := NewBallAtlas(g, 4096) // a few small balls' worth
	st := atlas.Ensure(0, 1)
	if st == nil {
		t.Fatal("tiny initial ball should fit the cap")
	}
	// The crossing call itself succeeds — the cap is enforced afterwards,
	// so the overshoot is bounded by this one centre's ball.
	if big := atlas.Ensure(1, 128); big == nil || !big.serves(128) {
		t.Fatalf("cap-crossing Ensure returned %v, want a serving snapshot", big)
	}
	if !atlas.Exhausted() {
		t.Fatal("cap hit must mark the atlas exhausted")
	}
	if atlas.Ensure(0, 1) != st {
		t.Fatal("materialised radii must stay served after exhaustion")
	}
	if atlas.Ensure(0, st.MaxRadius+1) != nil {
		t.Fatal("exhaustion is terminal: no further growth")
	}
	if atlas.BallAt(9, 3) != nil {
		t.Fatal("BallAt on an exhausted atlas must return nil")
	}
}

// TestAtlasUnlimited checks that a negative limit disables the cap.
func TestAtlasUnlimited(t *testing.T) {
	atlas := NewBallAtlas(MustCycle(128), -1)
	if atlas.Ensure(0, 64) == nil {
		t.Fatal("unlimited atlas refused growth")
	}
}

// TestAtlasConcurrentGrowth hammers one shared atlas from many goroutines
// with interleaved radii (run under -race in CI) and then verifies every
// served snapshot against the builder.
func TestAtlasConcurrentGrowth(t *testing.T) {
	g := MustCycle(48)
	atlas := NewBallAtlas(g, 0)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				v := rng.Intn(g.N())
				r := rng.Intn(30)
				st := atlas.Ensure(v, r)
				if st == nil || !st.serves(r) {
					t.Errorf("Ensure(%d, %d) under-served: %+v", v, r, st)
					return
				}
				// Spot-check the frontier boundary while others grow.
				end := st.SizeAt(r)
				fs := st.FrontierStartAt(r)
				for i := fs; i < end; i++ {
					if st.Dist[i] != r {
						t.Errorf("v=%d r=%d: frontier vertex %d at distance %d", v, r, i, st.Dist[i])
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	for v := 0; v < g.N(); v++ {
		bb := NewBallBuilder(g, v)
		for r := 0; r <= 25; r++ {
			if r > 0 {
				bb.Grow()
			}
			if got := atlas.BallAt(v, r); !sameBall(got, bb.Ball()) {
				t.Fatalf("post-hammer mismatch at v=%d r=%d", v, r)
			}
		}
	}
}
