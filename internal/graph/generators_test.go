package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridStructure(t *testing.T) {
	g, err := NewGrid(3, 4)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	// rows*(cols-1) horizontal + (rows-1)*cols vertical edges.
	if want := 3*3 + 2*4; NumEdges(g) != want {
		t.Errorf("NumEdges = %d, want %d", NumEdges(g), want)
	}
	if g.Degree(0) != 2 { // corner
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	if g.Degree(1) != 3 { // edge of border
		t.Errorf("border degree = %d, want 3", g.Degree(1))
	}
	if g.Degree(5) != 4 { // interior (1,1)
		t.Errorf("interior degree = %d, want 4", g.Degree(5))
	}
	if !IsConnected(g) {
		t.Error("grid not connected")
	}
}

func TestGridRejectsBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {3, 0}, {-1, 2}} {
		if _, err := NewGrid(dims[0], dims[1]); err == nil {
			t.Errorf("NewGrid(%d,%d) succeeded, want error", dims[0], dims[1])
		}
	}
}

func TestCompleteStructure(t *testing.T) {
	g, err := NewComplete(6)
	if err != nil {
		t.Fatalf("NewComplete: %v", err)
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Errorf("Degree(%d) = %d, want 5", v, g.Degree(v))
		}
	}
	if Diameter(g) != 1 {
		t.Errorf("Diameter = %d, want 1", Diameter(g))
	}
}

func TestBalancedTreeCounts(t *testing.T) {
	tests := []struct {
		b, d, wantN int
	}{
		{2, 0, 1},
		{2, 1, 3},
		{2, 3, 15},
		{3, 2, 13},
		{1, 4, 5}, // degenerate: a path
	}
	for _, tt := range tests {
		g, err := NewBalancedTree(tt.b, tt.d)
		if err != nil {
			t.Fatalf("NewBalancedTree(%d,%d): %v", tt.b, tt.d, err)
		}
		if g.N() != tt.wantN {
			t.Errorf("NewBalancedTree(%d,%d).N = %d, want %d", tt.b, tt.d, g.N(), tt.wantN)
		}
		if NumEdges(g) != tt.wantN-1 {
			t.Errorf("tree has %d edges, want %d", NumEdges(g), tt.wantN-1)
		}
		if !IsConnected(g) {
			t.Errorf("NewBalancedTree(%d,%d) not connected", tt.b, tt.d)
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	sizes := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		g, err := NewRandomTree(n, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return g.N() == n && NumEdges(g) == n-1 && IsConnected(g)
	}
	if err := quick.Check(sizes, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("random tree not a tree: %v", err)
	}
}

func TestRandomTreeDeterministicPerSeed(t *testing.T) {
	a, err := NewRandomTree(30, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewRandomTree: %v", err)
	}
	b, err := NewRandomTree(30, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewRandomTree: %v", err)
	}
	ea, eb := Edges(a), Edges(b)
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	empty, err := NewGNP(10, 0, rng)
	if err != nil {
		t.Fatalf("NewGNP p=0: %v", err)
	}
	if NumEdges(empty) != 0 {
		t.Errorf("G(10,0) has %d edges", NumEdges(empty))
	}
	full, err := NewGNP(10, 1, rng)
	if err != nil {
		t.Fatalf("NewGNP p=1: %v", err)
	}
	if NumEdges(full) != 45 {
		t.Errorf("G(10,1) has %d edges, want 45", NumEdges(full))
	}
}

func TestGNPRejectsBadP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{-0.1, 1.1} {
		if _, err := NewGNP(5, p, rng); err == nil {
			t.Errorf("NewGNP(p=%v) succeeded, want error", p)
		}
	}
}

func TestGeneratorsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gs := []Graph{}
	grid, err := NewGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, grid)
	tree, err := NewRandomTree(40, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, tree)
	gnp, err := NewGNP(30, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, gnp)
	for i, g := range gs {
		if err := Validate(g); err != nil {
			t.Errorf("generated graph %d invalid: %v", i, err)
		}
	}
}
