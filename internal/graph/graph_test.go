package graph

import (
	"math/rand"
	"testing"
)

// families returns one representative of every graph family for invariant
// sweeps.
func families(t *testing.T) map[string]Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	grid, err := NewGrid(4, 5)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	complete, err := NewComplete(7)
	if err != nil {
		t.Fatalf("NewComplete: %v", err)
	}
	star, err := NewStar(9)
	if err != nil {
		t.Fatalf("NewStar: %v", err)
	}
	btree, err := NewBalancedTree(3, 3)
	if err != nil {
		t.Fatalf("NewBalancedTree: %v", err)
	}
	rtree, err := NewRandomTree(20, rng)
	if err != nil {
		t.Fatalf("NewRandomTree: %v", err)
	}
	gnp, err := NewGNP(25, 0.3, rng)
	if err != nil {
		t.Fatalf("NewGNP: %v", err)
	}
	return map[string]Graph{
		"cycle":        MustCycle(11),
		"path":         MustPath(8),
		"grid":         grid,
		"complete":     complete,
		"star":         star,
		"balancedTree": btree,
		"randomTree":   rtree,
		"gnp":          gnp,
	}
}

func TestValidateAllFamilies(t *testing.T) {
	for name, g := range families(t) {
		if err := Validate(g); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
	}
}

func TestNeighborsMatchesPorts(t *testing.T) {
	for name, g := range families(t) {
		for v := 0; v < g.N(); v++ {
			ns := Neighbors(g, v)
			if len(ns) != g.Degree(v) {
				t.Fatalf("%s: vertex %d: Neighbors len %d != degree %d", name, v, len(ns), g.Degree(v))
			}
			for p, w := range ns {
				if g.Neighbor(v, p) != w {
					t.Fatalf("%s: vertex %d port %d mismatch", name, v, p)
				}
			}
		}
	}
}

func TestEdgesCountConsistency(t *testing.T) {
	for name, g := range families(t) {
		edges := Edges(g)
		if len(edges) != NumEdges(g) {
			t.Errorf("%s: Edges len %d != NumEdges %d", name, len(edges), NumEdges(g))
		}
		for _, e := range edges {
			if e[0] >= e[1] {
				t.Errorf("%s: edge %v not in canonical order", name, e)
			}
			if !Adjacent(g, e[0], e[1]) || !Adjacent(g, e[1], e[0]) {
				t.Errorf("%s: edge %v not symmetric-adjacent", name, e)
			}
		}
	}
}

func TestEdgesKnownCounts(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
		want int
	}{
		{"C11", MustCycle(11), 11},
		{"P8", MustPath(8), 7},
		{"P1", MustPath(1), 0},
		{"K7", mustComplete(t, 7), 7 * 6 / 2},
		{"star9", mustStar(t, 9), 8},
	}
	for _, tt := range tests {
		if got := NumEdges(tt.g); got != tt.want {
			t.Errorf("%s: NumEdges = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
		want int
	}{
		{"C5", MustCycle(5), 2},
		{"P6", MustPath(6), 2},
		{"P2", MustPath(2), 1},
		{"K4", mustComplete(t, 4), 3},
		{"star10", mustStar(t, 10), 9},
	}
	for _, tt := range tests {
		if got := MaxDegree(tt.g); got != tt.want {
			t.Errorf("%s: MaxDegree = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestValidateRejectsBrokenGraphs(t *testing.T) {
	if err := Validate(asymGraph{}); err == nil {
		t.Error("Validate accepted an asymmetric graph")
	}
	if err := Validate(loopGraph{}); err == nil {
		t.Error("Validate accepted a self-loop")
	}
}

// asymGraph has an edge 0->1 with no reverse.
type asymGraph struct{}

func (asymGraph) N() int                { return 2 }
func (asymGraph) Degree(v int) int      { return 1 - v }
func (asymGraph) Neighbor(_, _ int) int { return 1 }

// loopGraph has a self-loop at 0.
type loopGraph struct{}

func (loopGraph) N() int                { return 1 }
func (loopGraph) Degree(int) int        { return 1 }
func (loopGraph) Neighbor(_, _ int) int { return 0 }

func mustComplete(t *testing.T, n int) *Adj {
	t.Helper()
	g, err := NewComplete(n)
	if err != nil {
		t.Fatalf("NewComplete(%d): %v", n, err)
	}
	return g
}

func mustStar(t *testing.T, n int) *Adj {
	t.Helper()
	g, err := NewStar(n)
	if err != nil {
		t.Fatalf("NewStar(%d): %v", n, err)
	}
	return g
}
