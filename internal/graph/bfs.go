package graph

// Unreachable is the distance reported for vertices in a different connected
// component.
const Unreachable = -1

// BFSDistances returns the vector of hop distances from src to every vertex,
// with Unreachable for vertices in other components.
func BFSDistances(g Graph, src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or Unreachable.
func Dist(g Graph, u, v int) int {
	return BFSDistances(g, u)[v]
}

// Eccentricity returns the maximum distance from v to any vertex, or
// Unreachable if the graph is disconnected.
func Eccentricity(g Graph, v int) int {
	ecc := 0
	for _, d := range BFSDistances(g, v) {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity, or Unreachable if the graph is
// disconnected. The empty graph has diameter 0.
func Diameter(g Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		e := Eccentricity(g, v)
		if e == Unreachable {
			return Unreachable
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// IsConnected reports whether every vertex is reachable from vertex 0.
// The empty graph is considered connected.
func IsConnected(g Graph) bool {
	if g.N() == 0 {
		return true
	}
	for _, d := range BFSDistances(g, 0) {
		if d == Unreachable {
			return false
		}
	}
	return true
}
