package graph

import (
	"strconv"
	"strings"
)

// Ball is the radius-r view of a vertex in the gather formulation of the
// LOCAL model used by the paper ("every node gathers all the information in
// a ball around itself"): the subgraph induced by the vertices at distance
// at most r from the centre, together with the distance of each vertex from
// the centre.
//
// Local vertex 0 is always the centre. Local vertices are numbered in BFS
// discovery order, exploring ports in increasing order, so the numbering is
// derivable from information a node legitimately has (port numbers), not
// from global vertex names.
//
// Note on conventions: the induced-subgraph ball differs by at most one
// round from the knowledge a node accumulates by synchronous flooding
// (which learns edges only once an endpoint is interior). The paper's
// statements are asymptotic and unaffected; the engine equivalence tests
// account for the off-by-one.
type Ball struct {
	// Radius is the gathering radius the ball was built with.
	Radius int
	// Verts maps local index -> original vertex index. Verts[0] is the
	// centre. Intended for engine bookkeeping; algorithms must rely only
	// on structure and identifiers.
	Verts []int
	// Dist maps local index -> distance from the centre.
	Dist []int
	// Adj maps local index -> local indices of its neighbours inside the
	// ball, in the vertex's own port order.
	Adj [][]int
}

// NewBall gathers the radius-r ball around center in g.
func NewBall(g Graph, center, r int) *Ball {
	if r < 0 {
		r = 0
	}
	local := map[int]int{center: 0}
	b := &Ball{
		Radius: r,
		Verts:  []int{center},
		Dist:   []int{0},
	}
	// BFS in port order to assign deterministic local indices.
	for head := 0; head < len(b.Verts); head++ {
		v := b.Verts[head]
		if b.Dist[head] == r {
			continue
		}
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if _, ok := local[w]; !ok {
				local[w] = len(b.Verts)
				b.Verts = append(b.Verts, w)
				b.Dist = append(b.Dist, b.Dist[head]+1)
			}
		}
	}
	// Induced adjacency, in each vertex's own port order.
	b.Adj = make([][]int, len(b.Verts))
	for i, v := range b.Verts {
		for p := 0; p < g.Degree(v); p++ {
			if j, ok := local[g.Neighbor(v, p)]; ok {
				b.Adj[i] = append(b.Adj[i], j)
			}
		}
	}
	return b
}

// Size reports the number of vertices in the ball.
func (b *Ball) Size() int { return len(b.Verts) }

// Clone returns a deep copy of the ball, independent of any builder that
// may recycle the original's storage.
func (b *Ball) Clone() *Ball {
	c := &Ball{
		Radius: b.Radius,
		Verts:  append([]int(nil), b.Verts...),
		Dist:   append([]int(nil), b.Dist...),
		Adj:    make([][]int, len(b.Adj)),
	}
	for i, row := range b.Adj {
		c.Adj[i] = append([]int(nil), row...)
	}
	return c
}

// DegreeWithin reports the degree of local vertex i inside the ball.
func (b *Ball) DegreeWithin(i int) int { return len(b.Adj[i]) }

// AllDegreesWithin reports whether every ball vertex has the given degree
// inside the ball. On a graph family of known uniform degree (cycles: 2)
// this is exactly the test "the ball is the entire graph": a connected
// k-regular induced subgraph of a connected k-regular graph is the whole
// graph.
func (b *Ball) AllDegreesWithin(k int) bool {
	for i := range b.Adj {
		if len(b.Adj[i]) != k {
			return false
		}
	}
	return true
}

// Canonical renders the ball plus an identifier labelling as a deterministic
// string, suitable as a map key for memoisation or for comparing the views
// of two vertices. ids maps an original vertex index to its identifier.
func (b *Ball) Canonical(ids func(orig int) int) string {
	var sb strings.Builder
	sb.Grow(16 * len(b.Verts))
	sb.WriteString("r")
	sb.WriteString(strconv.Itoa(b.Radius))
	for i := range b.Verts {
		sb.WriteByte(';')
		sb.WriteString(strconv.Itoa(b.Dist[i]))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(ids(b.Verts[i])))
		sb.WriteByte(':')
		for k, j := range b.Adj[i] {
			if k > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(j))
		}
	}
	return sb.String()
}
