package graph

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// implicitTestFamilies is the zoo every implicit suite sweeps: rings (odd,
// even), paths (including the degenerate 1- and 2-vertex ones), tori
// (square, rectangular, odd and even dimensions) and complete b-ary trees
// (including the single root).
func implicitTestFamilies() map[string]Implicit {
	return map[string]Implicit{
		"cycle5":   MustCycle(5),
		"cycle6":   MustCycle(6),
		"cycle16":  MustCycle(16),
		"path1":    MustPath(1),
		"path2":    MustPath(2),
		"path9":    MustPath(9),
		"torus3x3": MustTorus(3, 3),
		"torus4x5": MustTorus(4, 5),
		"torus5x4": MustTorus(5, 4),
		"torus6x6": MustTorus(6, 6),
		"tree2d0":  MustImplicitTree(2, 0),
		"tree2d1":  MustImplicitTree(2, 1),
		"tree2d4":  MustImplicitTree(2, 4),
		"tree3d3":  MustImplicitTree(3, 3),
	}
}

// TestImplicitFamiliesValidate checks the new families against the package
// structural invariants (symmetry, no loops, no parallel edges).
func TestImplicitFamiliesValidate(t *testing.T) {
	for name, g := range implicitTestFamilies() {
		if err := Validate(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestImplicitClosedFormsMatchBFS pins every closed form — DistTo,
// EccentricityOf, LayerSize, AppendLayer membership — to real BFS over the
// port-numbered graph.
func TestImplicitClosedFormsMatchBFS(t *testing.T) {
	for name, g := range implicitTestFamilies() {
		n := g.N()
		for c := 0; c < n; c++ {
			dist := BFSDistances(g, c)
			ecc := 0
			for v, d := range dist {
				if got := g.DistTo(c, v); got != d {
					t.Fatalf("%s: DistTo(%d,%d)=%d, BFS says %d", name, c, v, got, d)
				}
				if d > ecc {
					ecc = d
				}
			}
			if got := g.EccentricityOf(c); got != ecc {
				t.Fatalf("%s: EccentricityOf(%d)=%d, BFS says %d", name, c, got, ecc)
			}
			for r := 0; r <= ecc+2; r++ {
				var want []int
				for v, d := range dist {
					if d == r {
						want = append(want, v)
					}
				}
				if got := g.LayerSize(c, r); got != len(want) {
					t.Fatalf("%s: LayerSize(%d,%d)=%d, BFS says %d", name, c, r, got, len(want))
				}
				if r == 0 {
					continue
				}
				got := g.AppendLayer(nil, c, r)
				sort.Ints(got)
				sort.Ints(want)
				if !equalInts(got, want) {
					t.Fatalf("%s: AppendLayer(%d,%d)=%v, BFS says %v", name, c, r, got, want)
				}
			}
		}
	}
}

// TestImplicitLayerFuzz is the randomised version of the closed-form check:
// random (family, parameters, center, r) against BFSDistances.
func TestImplicitLayerFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		var g Implicit
		switch rng.Intn(4) {
		case 0:
			g = MustCycle(3 + rng.Intn(60))
		case 1:
			g = MustPath(1 + rng.Intn(60))
		case 2:
			g = MustTorus(3+rng.Intn(7), 3+rng.Intn(7))
		default:
			g = MustImplicitTree(2+rng.Intn(3), rng.Intn(5))
		}
		c := rng.Intn(g.N())
		dist := BFSDistances(g, c)
		ecc := 0
		for _, d := range dist {
			if d > ecc {
				ecc = d
			}
		}
		r := rng.Intn(ecc + 3)
		var want []int
		for v, d := range dist {
			if d == r {
				want = append(want, v)
			}
		}
		if got := g.LayerSize(c, r); got != len(want) {
			t.Fatalf("iter %d %s n=%d: LayerSize(%d,%d)=%d, BFS says %d",
				iter, g.ImplicitFamily(), g.N(), c, r, got, len(want))
		}
		if r >= 1 {
			got := g.AppendLayer(nil, c, r)
			sort.Ints(got)
			sort.Ints(want)
			if !equalInts(got, want) {
				t.Fatalf("iter %d %s n=%d: AppendLayer(%d,%d) mismatch", iter, g.ImplicitFamily(), g.N(), c, r)
			}
		}
	}
}

// TestImplicitBallsMatchAtlas compares the synthesized skeleton against the
// materialised atlas, field for field at every (centre, radius) the sweep
// engine can ask for: sizes, frontier boundaries, completeness bits, and
// per-vertex (dist, degree, own-degree) triples. Layer order may legally
// differ (compared as sets); for the one-dimensional families it must not
// (compared exactly).
func TestImplicitBallsMatchAtlas(t *testing.T) {
	for name, g := range implicitTestFamilies() {
		atlas := NewBallAtlas(g, -1)
		src := NewImplicitBalls(g)
		if src.Graph() != Graph(g) {
			t.Fatalf("%s: Graph() mismatch", name)
		}
		_, ordered := g.(Cycle)
		if _, isPath := g.(Path); isPath {
			ordered = true
		}
		for c := 0; c < g.N(); c++ {
			ecc := g.EccentricityOf(c)
			for r := 0; r <= ecc+2; r++ {
				ib := src.Ensure(c, r)
				ab := atlas.Ensure(c, r)
				if ib == nil || ab == nil {
					t.Fatalf("%s: Ensure(%d,%d) nil snapshot", name, c, r)
				}
				if ib.SizeAt(r) != ab.SizeAt(r) || ib.FrontierStartAt(r) != ab.FrontierStartAt(r) || ib.CompleteAt(r) != ab.CompleteAt(r) {
					t.Fatalf("%s: centre %d radius %d: size/frontier/complete (%d,%d,%v) vs atlas (%d,%d,%v)",
						name, c, r, ib.SizeAt(r), ib.FrontierStartAt(r), ib.CompleteAt(r),
						ab.SizeAt(r), ab.FrontierStartAt(r), ab.CompleteAt(r))
				}
				end := ib.SizeAt(r)
				if ordered {
					for i := 0; i < end; i++ {
						if ib.Verts[i] != ab.Verts[i] {
							t.Fatalf("%s: centre %d radius %d: Verts[%d]=%d vs atlas %d",
								name, c, r, i, ib.Verts[i], ab.Verts[i])
						}
					}
				}
				type attrs struct{ dist, deg, own int }
				got := make(map[int]attrs, end)
				want := make(map[int]attrs, end)
				for i := 0; i < end; i++ {
					got[ib.Verts[i]] = attrs{ib.Dist[i], ib.Degs[i], ib.OwnDeg(i)}
					want[ab.Verts[i]] = attrs{ab.Dist[i], ab.Degs[i], ab.OwnDeg(i)}
				}
				for v, w := range want {
					if got[v] != w {
						t.Fatalf("%s: centre %d radius %d vertex %d: %+v vs atlas %+v",
							name, c, r, v, got[v], w)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s: centre %d radius %d: %d vertices vs atlas %d", name, c, r, len(got), len(want))
				}
			}
			if !src.Ensure(c, ecc+2).Complete {
				t.Fatalf("%s: centre %d not Complete past eccentricity %d", name, c, ecc)
			}
		}
	}
}

// TestImplicitBallsCentreSwitch exercises the scratch reuse: growing one
// centre, switching away mid-growth, and coming back must always serve the
// correct skeleton for the CURRENT centre.
func TestImplicitBallsCentreSwitch(t *testing.T) {
	g := MustTorus(5, 7)
	atlas := NewBallAtlas(g, -1)
	src := NewImplicitBalls(g)
	check := func(c, r int) {
		t.Helper()
		ib, ab := src.Ensure(c, r), atlas.Ensure(c, r)
		if ib.SizeAt(r) != ab.SizeAt(r) || ib.CompleteAt(r) != ab.CompleteAt(r) {
			t.Fatalf("centre %d radius %d: (%d,%v) vs atlas (%d,%v)",
				c, r, ib.SizeAt(r), ib.CompleteAt(r), ab.SizeAt(r), ab.CompleteAt(r))
		}
		gotLayer := append([]int(nil), ib.Verts[ib.FrontierStartAt(r):ib.SizeAt(r)]...)
		wantLayer := append([]int(nil), ab.Verts[ab.FrontierStartAt(r):ab.SizeAt(r)]...)
		sort.Ints(gotLayer)
		sort.Ints(wantLayer)
		if !equalInts(gotLayer, wantLayer) {
			t.Fatalf("centre %d radius %d: layer %v vs atlas %v", c, r, gotLayer, wantLayer)
		}
	}
	check(0, 1)
	check(17, 3) // switch mid-growth of centre 0
	check(0, 2)  // back: rebuilt from scratch
	check(0, 5)
	check(17, 5)
}

// hugeDegGraph lies about its degrees to trip the CSR sizing pass without
// allocating anything; Neighbor must never be reached.
type hugeDegGraph struct{ n int }

func (h hugeDegGraph) N() int       { return h.n }
func (hugeDegGraph) Degree(int) int { return math.MaxInt32 / 2 }
func (hugeDegGraph) Neighbor(int, int) int {
	panic("graph: hugeDegGraph.Neighbor called — CSR sizing should have refused first")
}

// TestAtlasCSROverflow covers the typed refusal: the boundary table for the
// sizing predicate, and the atlas behaviour (nil Ensure, Exhausted, typed
// Err) when a graph trips it.
func TestAtlasCSROverflow(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		edgeEnds int64
		fits     bool
	}{
		{"small", 10, 20, true},
		{"edge-ends at bound", 10, math.MaxInt32, true},
		{"edge-ends past bound", 10, math.MaxInt32 + 1, false},
		{"verts at bound", math.MaxInt32 - 1, 0, true},
		{"verts past bound", math.MaxInt32, 0, false},
		{"both huge", math.MaxInt32, math.MaxInt64, false},
	}
	for _, tc := range cases {
		if got := csrFits(tc.n, tc.edgeEnds); got != tc.fits {
			t.Errorf("%s: csrFits(%d, %d) = %v, want %v", tc.name, tc.n, tc.edgeEnds, got, tc.fits)
		}
	}

	a := NewBallAtlas(hugeDegGraph{n: 3}, -1)
	if a.Err() != nil {
		t.Fatalf("Err before any Ensure: %v", a.Err())
	}
	if st := a.Ensure(0, 1); st != nil {
		t.Fatalf("Ensure on overflowing graph returned %+v, want nil", st)
	}
	if !a.Exhausted() {
		t.Fatal("overflowing atlas not Exhausted")
	}
	var ov *CSROverflowError
	if err := a.Err(); !errors.As(err, &ov) {
		t.Fatalf("Err = %v, want *CSROverflowError", err)
	} else if ov.Verts != 3 || ov.EdgeEnds != 3*int64(math.MaxInt32/2) {
		t.Fatalf("Err carries %+v", ov)
	}
	// The refusal is sticky and still nil on repeat.
	if st := a.Ensure(1, 2); st != nil {
		t.Fatal("second Ensure after refusal served a snapshot")
	}
	// A healthy atlas reports no Err even when memory-capped.
	capped := NewBallAtlas(MustCycle(64), 1)
	capped.Ensure(0, 4)
	for r := 1; capped.Ensure(0, r) != nil && r < 64; r++ {
	}
	if capped.Err() != nil {
		t.Fatalf("memory-capped atlas has Err %v, want nil", capped.Err())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
