package graph

import "fmt"

// Path is the n-vertex path P_n with vertices 0..n-1 in line order. The
// recurrence a(p) in §2 of the paper is stated on path segments: a vertex of
// the cycle that is not the global maximum behaves exactly like a vertex of a
// path whose endpoints terminate its search.
//
// Ports: interior vertices use port 0 for v+1 and port 1 for v-1; vertex 0
// has only port 0 (to 1) and vertex n-1 only port 0 (to n-2).
type Path struct {
	n int
}

var _ Graph = Path{}

// NewPath constructs P_n for n >= 1.
func NewPath(n int) (Path, error) {
	if n < 1 {
		return Path{}, fmt.Errorf("graph: path needs n >= 1, got %d", n)
	}
	return Path{n: n}, nil
}

// MustPath is NewPath for sizes known to be valid; it panics on invalid n.
func MustPath(n int) Path {
	p, err := NewPath(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N reports the number of vertices.
func (p Path) N() int { return p.n }

// Degree is 1 at the endpoints and 2 in the interior (0 when n == 1).
func (p Path) Degree(v int) int {
	if p.n == 1 {
		return 0
	}
	if v == 0 || v == p.n-1 {
		return 1
	}
	return 2
}

// Neighbor follows the port convention documented on Path.
func (p Path) Neighbor(v, port int) int {
	switch {
	case v == 0 && port == 0:
		return 1
	case v == p.n-1 && port == 0:
		return p.n - 2
	case v > 0 && v < p.n-1 && port == 0:
		return v + 1
	case v > 0 && v < p.n-1 && port == 1:
		return v - 1
	default:
		panic(fmt.Sprintf("graph: path vertex %d port %d out of range", v, port))
	}
}
