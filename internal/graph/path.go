package graph

import "fmt"

// Path is the n-vertex path P_n with vertices 0..n-1 in line order. The
// recurrence a(p) in §2 of the paper is stated on path segments: a vertex of
// the cycle that is not the global maximum behaves exactly like a vertex of a
// path whose endpoints terminate its search.
//
// Ports: interior vertices use port 0 for v+1 and port 1 for v-1; vertex 0
// has only port 0 (to 1) and vertex n-1 only port 0 (to n-2).
type Path struct {
	n int
}

var _ Graph = Path{}

// NewPath constructs P_n for n >= 1.
func NewPath(n int) (Path, error) {
	if n < 1 {
		return Path{}, fmt.Errorf("graph: path needs n >= 1, got %d", n)
	}
	return Path{n: n}, nil
}

// MustPath is NewPath for sizes known to be valid; it panics on invalid n.
func MustPath(n int) Path {
	p, err := NewPath(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N reports the number of vertices.
func (p Path) N() int { return p.n }

// Degree is 1 at the endpoints and 2 in the interior (0 when n == 1).
func (p Path) Degree(v int) int {
	if p.n == 1 {
		return 0
	}
	if v == 0 || v == p.n-1 {
		return 1
	}
	return 2
}

// Path's BFS structure is closed-form, so it implements Implicit: the
// radius-r layer around c is {c+r, c-r} ∩ [0, n).
var _ Implicit = Path{}

// ImplicitFamily implements Implicit.
func (Path) ImplicitFamily() string { return "path" }

// EccentricityOf implements Implicit: the farther endpoint.
func (p Path) EccentricityOf(center int) int {
	if center > p.n-1-center {
		return center
	}
	return p.n - 1 - center
}

// DistTo implements Implicit.
func (Path) DistTo(center, v int) int {
	if v < center {
		return center - v
	}
	return v - center
}

// LayerSize implements Implicit: one vertex per in-range side.
func (p Path) LayerSize(center, r int) int {
	if r == 0 {
		return 1
	}
	size := 0
	if center+r < p.n {
		size++
	}
	if center-r >= 0 {
		size++
	}
	return size
}

// AppendLayer implements Implicit, ascending side first — the BFS discovery
// order of the port numbering (port 0 walks toward n-1 at interior
// vertices).
func (p Path) AppendLayer(buf []int, center, r int) []int {
	if r < 1 {
		return buf
	}
	if center+r < p.n {
		buf = append(buf, center+r)
	}
	if center-r >= 0 {
		buf = append(buf, center-r)
	}
	return buf
}

// Neighbor follows the port convention documented on Path.
func (p Path) Neighbor(v, port int) int {
	switch {
	case v == 0 && port == 0:
		return 1
	case v == p.n-1 && port == 0:
		return p.n - 2
	case v > 0 && v < p.n-1 && port == 0:
		return v + 1
	case v > 0 && v < p.n-1 && port == 1:
		return v - 1
	default:
		panic(fmt.Sprintf("graph: path vertex %d port %d out of range", v, port))
	}
}
