package graph

import (
	"testing"
	"testing/quick"
)

func TestNewCycleRejectsSmall(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2} {
		if _, err := NewCycle(n); err == nil {
			t.Errorf("NewCycle(%d) succeeded, want error", n)
		}
	}
}

func TestCycleSuccessorPredecessorInverse(t *testing.T) {
	c := MustCycle(17)
	for v := 0; v < c.N(); v++ {
		if got := c.Predecessor(c.Successor(v)); got != v {
			t.Errorf("Pred(Succ(%d)) = %d", v, got)
		}
		if got := c.Successor(c.Predecessor(v)); got != v {
			t.Errorf("Succ(Pred(%d)) = %d", v, got)
		}
	}
}

func TestCyclePortsMatchOrientation(t *testing.T) {
	c := MustCycle(9)
	for v := 0; v < c.N(); v++ {
		if c.Neighbor(v, 0) != c.Successor(v) {
			t.Errorf("port 0 of %d is not the successor", v)
		}
		if c.Neighbor(v, 1) != c.Predecessor(v) {
			t.Errorf("port 1 of %d is not the predecessor", v)
		}
	}
}

func TestCycleSuccessorCoversAll(t *testing.T) {
	c := MustCycle(12)
	seen := make(map[int]bool)
	v := 0
	for i := 0; i < c.N(); i++ {
		if seen[v] {
			t.Fatalf("successor walk revisited %d after %d steps", v, i)
		}
		seen[v] = true
		v = c.Successor(v)
	}
	if v != 0 {
		t.Errorf("successor walk of length n ended at %d, want 0", v)
	}
}

func TestCycleDistKnownValues(t *testing.T) {
	tests := []struct {
		n, a, b, want int
	}{
		{5, 0, 0, 0},
		{5, 0, 1, 1},
		{5, 0, 2, 2},
		{5, 0, 3, 2},
		{5, 0, 4, 1},
		{6, 0, 3, 3},
		{6, 1, 4, 3},
		{6, 5, 0, 1},
		{100, 10, 90, 20},
	}
	for _, tt := range tests {
		c := MustCycle(tt.n)
		if got := c.Dist(tt.a, tt.b); got != tt.want {
			t.Errorf("C%d.Dist(%d,%d) = %d, want %d", tt.n, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCycleDistMatchesBFS(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 13} {
		c := MustCycle(n)
		for v := 0; v < n; v++ {
			bfs := BFSDistances(c, v)
			for w := 0; w < n; w++ {
				if c.Dist(v, w) != bfs[w] {
					t.Errorf("C%d: Dist(%d,%d)=%d, BFS=%d", n, v, w, c.Dist(v, w), bfs[w])
				}
			}
		}
	}
}

func TestCycleDistProperties(t *testing.T) {
	c := MustCycle(37)
	symmetric := func(a, b uint8) bool {
		x, y := int(a)%c.N(), int(b)%c.N()
		return c.Dist(x, y) == c.Dist(y, x)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("Dist not symmetric: %v", err)
	}
	triangle := func(a, b, d uint8) bool {
		x, y, z := int(a)%c.N(), int(b)%c.N(), int(d)%c.N()
		return c.Dist(x, z) <= c.Dist(x, y)+c.Dist(y, z)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("Dist violates triangle inequality: %v", err)
	}
	bounded := func(a, b uint8) bool {
		x, y := int(a)%c.N(), int(b)%c.N()
		return c.Dist(x, y) <= c.N()/2
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("Dist exceeds n/2: %v", err)
	}
}
