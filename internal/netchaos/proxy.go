// Package netchaos is a fault-injecting HTTP proxy for network failure
// testing: it sits between a client (a sweepworker's HTTPStore) and a
// server (sweepd's /store API) and injects, deterministically per request
// index, the failure modes a real network serves up:
//
//   - added LATENCY: a seeded uniform delay before forwarding;
//   - injected ERRORS: a 502 returned without touching the backend;
//   - connection RESETS: the client's connection is torn down before the
//     request reaches the backend;
//   - dropped RESPONSES: the request is forwarded and the backend applies
//     it, then the client's connection dies — the lost-acknowledgement
//     case idempotent Puts exist for;
//   - full PARTITIONS: while partitioned, every connection is cut without
//     forwarding (schedule with SetPartitioned / PartitionFor).
//
// Fault decisions are a pure function of (Seed, request index), so a
// seeded chaos scenario injects the same schedule of faults every run —
// which request hits which fault depends only on arrival order. Stats
// counts what was injected, so a test can assert its chaos actually
// happened instead of silently passing on a quiet run.
package netchaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures the injection schedule. Zero values disable each
// fault; Every-style knobs hit every Nth request (offset decorrelated by
// Seed so different faults land on different requests).
type Faults struct {
	// Seed selects the deterministic schedule and latency stream.
	Seed uint64
	// MaxLatency adds a seeded uniform delay in [0, MaxLatency) before
	// forwarding every request (0 disables).
	MaxLatency time.Duration
	// ErrorEvery answers every Nth request with a 502 without forwarding.
	ErrorEvery int
	// ResetEvery tears down every Nth request's connection before the
	// request reaches the backend.
	ResetEvery int
	// DropEvery forwards every Nth request, lets the backend apply it, then
	// tears down the client's connection instead of relaying the response.
	DropEvery int
}

// Stats counts the faults a proxy injected.
type Stats struct {
	// Requests is the total requests the proxy accepted.
	Requests int64
	// Forwarded reached the backend (including dropped-response ones).
	Forwarded int64
	// Errors is injected 502s, Resets torn connections, Drops lost
	// responses, Partitioned connections refused during a partition.
	Errors      int64
	Resets      int64
	Drops       int64
	Partitioned int64
}

// Proxy is one running chaos proxy. Create with New, stop with Close.
type Proxy struct {
	target string
	faults Faults
	ln     net.Listener
	srv    *http.Server
	client *http.Client

	seq         atomic.Int64
	partitioned atomic.Bool
	healTimer   atomic.Pointer[time.Timer]

	requests, forwarded, errors, resets, drops, parts atomic.Int64

	closeOnce sync.Once
}

// New starts a proxy on a fresh localhost port forwarding to target (a
// base URL like "http://127.0.0.1:8350").
func New(target string, f Faults) (*Proxy, error) {
	return NewAt("127.0.0.1:0", target, f)
}

// NewAt is New on a chosen listen address.
func NewAt(addr, target string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen: %w", err)
	}
	p := &Proxy{
		target: strings.TrimRight(target, "/"),
		faults: f,
		ln:     ln,
		client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go p.srv.Serve(ln)
	return p, nil
}

// URL returns the proxy's base URL; point the client under test at it.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Close stops the proxy and cuts every in-flight connection.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		if t := p.healTimer.Load(); t != nil {
			t.Stop()
		}
		p.srv.Close()
	})
}

// SetPartitioned switches the full partition on or off: while on, every
// connection is cut without forwarding — the backend sees nothing, the
// client sees a dead network.
func (p *Proxy) SetPartitioned(v bool) { p.partitioned.Store(v) }

// Partitioned reports whether the proxy is currently partitioned.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// PartitionFor schedules a partition window: the network goes down now
// and heals after d. Overlapping calls extend the window.
func (p *Proxy) PartitionFor(d time.Duration) {
	p.SetPartitioned(true)
	t := time.AfterFunc(d, func() { p.SetPartitioned(false) })
	if old := p.healTimer.Swap(t); old != nil {
		old.Stop()
	}
}

// Stats snapshots the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:    p.requests.Load(),
		Forwarded:   p.forwarded.Load(),
		Errors:      p.errors.Load(),
		Resets:      p.resets.Load(),
		Drops:       p.drops.Load(),
		Partitioned: p.parts.Load(),
	}
}

// splitmix64 is the same mixer the sweep engine seeds trials with: a pure
// (seed, n) → uint64 function, so fault schedules replay exactly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hits reports whether fault f (salted to decorrelate from the others)
// fires on request n: every Nth request, phase-shifted by the seed.
func (p *Proxy) hits(every int, salt uint64, n int64) bool {
	if every <= 0 {
		return false
	}
	phase := int64(splitmix64(p.faults.Seed^salt) % uint64(every))
	return n%int64(every) == phase
}

// cut tears the client's connection down without a response — what a
// reset or a partition looks like from the other side.
func cut(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	conn.Close()
}

const (
	saltError = 0x9d5c
	saltReset = 0x51ab
	saltDrop  = 0xd209
	saltDelay = 0x1e77
)

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	n := p.seq.Add(1) - 1
	p.requests.Add(1)

	if p.partitioned.Load() {
		p.parts.Add(1)
		cut(w)
		return
	}
	if p.faults.MaxLatency > 0 {
		u := float64(splitmix64(p.faults.Seed^saltDelay^uint64(n))>>11) / float64(1<<53)
		time.Sleep(time.Duration(u * float64(p.faults.MaxLatency)))
	}
	if p.hits(p.faults.ResetEvery, saltReset, n) {
		p.resets.Add(1)
		cut(w)
		return
	}
	if p.hits(p.faults.ErrorEvery, saltError, n) {
		p.errors.Add(1)
		http.Error(w, "netchaos: injected error", http.StatusBadGateway)
		return
	}

	// Forward to the backend. The request body is relayed as-is; hop-by-hop
	// concerns don't apply to this test-only single-hop proxy.
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("netchaos: build request: %v", err), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("netchaos: backend: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	p.forwarded.Add(1)

	if p.hits(p.faults.DropEvery, saltDrop, n) {
		// The backend has fully processed the request; the acknowledgement
		// dies here. Drain the body first so the backend's write completed.
		io.Copy(io.Discard, resp.Body)
		p.drops.Add(1)
		cut(w)
		return
	}
	for k, vs := range resp.Header {
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
