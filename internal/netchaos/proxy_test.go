package netchaos

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
)

// echoBackend records how many requests reached it and answers 200.
func echoBackend(hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, "ok %s %s", r.Method, r.URL.Path)
	})
}

func newProxy(t *testing.T, target string, f Faults) *Proxy {
	t.Helper()
	p, err := New(target, f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// A quiet proxy is transparent: requests pass through untouched and the
// backend sees every one.
func TestProxyTransparentWhenQuiet(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(echoBackend(&hits))
	defer srv.Close()
	p := newProxy(t, srv.URL, Faults{Seed: 1})

	resp, err := http.Get(p.URL() + "/store/run/plan")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok GET /store/run/plan" {
		t.Fatalf("through quiet proxy: %d %q", resp.StatusCode, body)
	}
	if hits.Load() != 1 {
		t.Errorf("backend hits = %d, want 1", hits.Load())
	}
	st := p.Stats()
	if st.Requests != 1 || st.Forwarded != 1 || st.Errors+st.Resets+st.Drops+st.Partitioned != 0 {
		t.Errorf("quiet proxy stats = %+v", st)
	}
}

// ErrorEvery and ResetEvery fire on schedule: resets never reach the
// backend, and the same seed replays the identical fault positions. Each
// request rides its own connection — keep-alive reuse would let the Go
// client transparently retry a reset GET and shift the schedule.
func TestProxyScheduledFaultsAreSeeded(t *testing.T) {
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	run := func(seed uint64) (faultPositions []int, st Stats, backendHits int64) {
		var hits atomic.Int64
		srv := httptest.NewServer(echoBackend(&hits))
		defer srv.Close()
		p := newProxy(t, srv.URL, Faults{Seed: seed, ErrorEvery: 4, ResetEvery: 5})
		for i := 0; i < 20; i++ {
			resp, err := client.Get(p.URL() + "/x")
			if err != nil {
				faultPositions = append(faultPositions, i)
				continue
			}
			if resp.StatusCode == http.StatusBadGateway {
				faultPositions = append(faultPositions, i)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return faultPositions, p.Stats(), hits.Load()
	}
	posA, stA, hitsA := run(7)
	posB, stB, hitsB := run(7)
	if stA.Errors == 0 || stA.Resets == 0 {
		t.Fatalf("no faults injected across 20 requests: %+v", stA)
	}
	if fmt.Sprint(posA) != fmt.Sprint(posB) || stA != stB || hitsA != hitsB {
		t.Errorf("same seed, different schedule:\n%v %+v (%d hits)\n%v %+v (%d hits)",
			posA, stA, hitsA, posB, stB, hitsB)
	}
	// Resets and injected errors never touched the backend; everything else did.
	if want := 20 - stA.Errors - stA.Resets; hitsA != want {
		t.Errorf("backend hits = %d, want %d (20 minus %d errors and %d resets)",
			hitsA, want, stA.Errors, stA.Resets)
	}
	if int64(len(posA)) != stA.Errors+stA.Resets {
		t.Errorf("client saw %d faults, proxy injected %d", len(posA), stA.Errors+stA.Resets)
	}
}

// DropEvery loses the response AFTER the backend applied the request —
// the lost-acknowledgement case — and the HTTPStore's idempotent Put
// rides it out end to end through a real proxy.
func TestProxyDropsResponseAfterBackendApplied(t *testing.T) {
	backing := sweep.NewMemStore()
	srv := httptest.NewServer(sweep.StoreHandler(backing))
	defer srv.Close()
	p := newProxy(t, srv.URL, Faults{Seed: 3, DropEvery: 1}) // drop every response
	hs := sweep.NewHTTPStore(p.URL()).WithTimeout(2 * time.Second)

	err := hs.Put("run/done/0-0", []byte("payload"))
	if err == nil {
		t.Fatal("Put through a dropping proxy: want a lost-response failure")
	}
	if !sweep.IsRetryable(err) {
		t.Fatalf("lost response classified final: %v", err)
	}
	if got, gerr := backing.Get("run/done/0-0"); gerr != nil || string(got) != "payload" {
		t.Fatalf("backend object after dropped response = %q, %v", got, gerr)
	}
	if st := p.Stats(); st.Drops == 0 || st.Forwarded == 0 {
		t.Errorf("drop not recorded: %+v", st)
	}

	// The network heals (the retry reaches the backend directly); the
	// retried Put is acknowledged idempotently.
	healed := sweep.NewHTTPStore(srv.URL).WithTimeout(2 * time.Second)
	if err := healed.Put("run/done/0-0", []byte("payload")); err != nil {
		t.Fatalf("retried Put after heal: %v", err)
	}
}

// While partitioned every connection dies without forwarding; after the
// window ends the network heals by itself.
func TestProxyPartitionWindow(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(echoBackend(&hits))
	defer srv.Close()
	p := newProxy(t, srv.URL, Faults{Seed: 9})

	p.SetPartitioned(true)
	if _, err := http.Get(p.URL() + "/x"); err == nil {
		t.Fatal("request through a partition succeeded")
	}
	if hits.Load() != 0 {
		t.Fatalf("backend saw %d requests through a partition", hits.Load())
	}
	if st := p.Stats(); st.Partitioned != 1 {
		t.Errorf("partitioned counter = %d, want 1", st.Partitioned)
	}

	p.PartitionFor(50 * time.Millisecond)
	if !p.Partitioned() {
		t.Fatal("PartitionFor did not partition")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(p.URL() + "/x")
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Errorf("backend hits after heal = %d, want 1", hits.Load())
	}
}

// The proxied store keeps typed faults intact: a 404 from the far side is
// still fs.ErrNotExist through proxy, wire, and client.
func TestProxyPreservesTypedStoreFaults(t *testing.T) {
	srv := httptest.NewServer(sweep.StoreHandler(sweep.NewMemStore()))
	defer srv.Close()
	p := newProxy(t, srv.URL, Faults{Seed: 2, MaxLatency: 2 * time.Millisecond})
	hs := sweep.NewHTTPStore(p.URL()).WithTimeout(2 * time.Second)

	if _, err := hs.Get("missing/object"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get missing through proxy = %v, want fs.ErrNotExist", err)
	}
}
