package local

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

// TestRunViewParallelMatchesSequential demands bit-identical results from
// the parallel and sequential view engines.
func TestRunViewParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	algs := []ViewAlgorithm{echoAlg{}, waitAlg{k: 2}, maxInCycleAlg{}}
	for _, n := range []int{3, 16, 97} {
		c := graph.MustCycle(n)
		a := ids.Random(n, rng)
		for _, alg := range algs {
			seq, err := RunView(c, a, alg)
			if err != nil {
				t.Fatalf("n=%d %s seq: %v", n, alg.Name(), err)
			}
			par, err := RunViewParallel(c, a, alg)
			if err != nil {
				t.Fatalf("n=%d %s par: %v", n, alg.Name(), err)
			}
			for v := 0; v < n; v++ {
				if seq.Outputs[v] != par.Outputs[v] || seq.Radii[v] != par.Radii[v] {
					t.Fatalf("n=%d %s vertex %d: engines diverge", n, alg.Name(), v)
				}
			}
		}
	}
}

func TestRunViewParallelPropagatesErrors(t *testing.T) {
	c := graph.MustCycle(8)
	if _, err := RunViewParallel(c, ids.Identity(8), neverAlg{}); err == nil {
		t.Fatal("undecided algorithm did not error")
	}
	if _, err := RunViewParallel(c, ids.Identity(5), echoAlg{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestRunViewParallelHonoursContext regresses the WithContext contract on
// the parallel engine: a cancelled context must abort the run with the
// context's error instead of silently executing every vertex.
func TestRunViewParallelHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := graph.MustCycle(64)
	if _, err := RunViewParallel(c, ids.Identity(64), echoAlg{}, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel run returned %v, want context.Canceled", err)
	}
	if _, err := RunView(c, ids.Identity(64), echoAlg{}, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sequential run returned %v, want context.Canceled", err)
	}
}

func TestRunViewParallelEmptyGraph(t *testing.T) {
	res, err := RunViewParallel(graph.MustAdj(0, nil), ids.Identity(0), echoAlg{})
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if res.N() != 0 {
		t.Errorf("N = %d", res.N())
	}
}

func TestRunViewParallelObserver(t *testing.T) {
	c := graph.MustCycle(10)
	var mu sync.Mutex
	count := 0
	_, err := RunViewParallel(c, ids.Identity(10), waitAlg{k: 1},
		WithProgress(func(Progress) {
			mu.Lock()
			count++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatalf("RunViewParallel: %v", err)
	}
	if count != 20 { // radii 0 and 1 for each of 10 vertices
		t.Errorf("observed %d events, want 20", count)
	}
}
