package local

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
)

// RunMessageSeq executes a MessageAlgorithm with a single-threaded,
// deterministic round loop: the same semantics as RunMessage (synchronous
// rounds, decided nodes keep relaying, identical Result), without
// goroutines. It exists for two reasons:
//
//   - as an executable specification the concurrent engine is tested
//     against (any divergence is an engine bug, since the model is
//     deterministic); and
//   - for benchmarks and tight loops where per-node goroutines would
//     dominate the measurement.
func RunMessageSeq(g graph.Graph, a ids.Assignment, alg MessageAlgorithm, opts ...Option) (*Result, error) {
	n := g.N()
	if len(a) != n {
		return nil, fmt.Errorf("local: assignment covers %d vertices, graph has %d", len(a), n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cfg := newConfig(n, opts)
	res := &Result{
		Algorithm: alg.Name(),
		Outputs:   make([]int, n),
		Radii:     make([]int, n),
	}
	if n == 0 {
		return res, nil
	}

	nodes := make([]MessageNode, n)
	outbox := make([][]any, n)
	decided := make([]bool, n)
	allDecided := true
	for v := 0; v < n; v++ {
		nodes[v] = alg.NewNode(a[v], g.Degree(v))
		outbox[v] = nodes[v].Init()
		res.Radii[v] = -1
		if out, ok := nodes[v].Output(); ok {
			res.Outputs[v] = out
			res.Radii[v] = 0
			decided[v] = true
		} else {
			allDecided = false
		}
	}
	revPorts := make([][]int, n)
	for v := 0; v < n; v++ {
		revPorts[v] = make([]int, g.Degree(v))
		for p := 0; p < g.Degree(v); p++ {
			revPorts[v][p] = portOf(g, g.Neighbor(v, p), v)
		}
	}

	for round := 1; !allDecided; round++ {
		if round > cfg.maxRadius {
			return nil, fmt.Errorf("local: %s has undecided nodes after %d rounds", alg.Name(), cfg.maxRadius)
		}
		// Deliver: recv[v][p] is what v's port-p neighbour sent through its
		// own port towards v in this round.
		inbox := make([][]any, n)
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			inbox[v] = make([]any, d)
			for p := 0; p < d; p++ {
				w := g.Neighbor(v, p)
				wp := revPorts[v][p]
				if msgs := outbox[w]; msgs != nil && wp < len(msgs) {
					inbox[v][p] = msgs[wp]
				}
			}
		}
		allDecided = true
		for v := 0; v < n; v++ {
			outbox[v] = nodes[v].Round(inbox[v])
			if decided[v] {
				continue
			}
			if out, ok := nodes[v].Output(); ok {
				res.Outputs[v] = out
				res.Radii[v] = round
				decided[v] = true
			} else {
				allDecided = false
			}
		}
	}
	return res, nil
}
