package local

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/ids"
)

// MessageAlgorithm is a deterministic LOCAL algorithm in the round-based
// formulation: per-node state machines exchanging (unbounded) messages with
// their neighbours in synchronous rounds.
type MessageAlgorithm interface {
	// Name identifies the algorithm in results and experiment tables.
	Name() string
	// NewNode creates the state machine for a vertex with the given
	// identifier and degree. Nodes know nothing else at start — in
	// particular they do not know n.
	NewNode(id, degree int) MessageNode
}

// MessageNode is one vertex's state machine. The engine drives it as:
//
//	msgs := node.Init()            // round-0 knowledge, messages for round 1
//	check node.Output()            // a decision here is recorded as round 0
//	for t := 1, 2, ...:
//	    deliver msgs, collect recv // synchronous exchange
//	    msgs = node.Round(recv)
//	    check node.Output()        // a decision here is recorded as round t
//
// Once decided a node keeps being driven (it must keep relaying messages, as
// in the unknown-n variant of the model); only its first decision is
// recorded.
type MessageNode interface {
	// Init returns the messages to send in round 1, one per port. A nil
	// slice or nil entries mean "send nothing" on those ports.
	Init() []any
	// Round consumes the messages received in the current round (recv[p]
	// arrived through port p; nil if the neighbour sent nothing) and
	// returns the messages for the next round.
	Round(recv []any) []any
	// Output reports the node's decision, if it has made one.
	Output() (val int, decided bool)
}

// RunMessage executes alg on g under assignment a with one goroutine per
// node, synchronised round by round, until every node has decided or the
// round cap (default n, see WithMaxRadius) is exceeded. Result.Radii holds
// the round at which each node first decided.
func RunMessage(g graph.Graph, a ids.Assignment, alg MessageAlgorithm, opts ...Option) (*Result, error) {
	n := g.N()
	if len(a) != n {
		return nil, fmt.Errorf("local: assignment covers %d vertices, graph has %d", len(a), n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cfg := newConfig(n, opts)
	if n == 0 {
		return &Result{Algorithm: alg.Name()}, nil
	}

	eng := newMessageEngine(g, a, alg, cfg.maxRadius)
	return eng.run()
}

// messageEngine owns the channels and goroutines of one execution.
type messageEngine struct {
	g         graph.Graph
	a         ids.Assignment
	alg       MessageAlgorithm
	maxRounds int

	// edge channels: ch[v][p] carries messages sent BY v THROUGH its port p;
	// the receiver is the neighbour w, which finds it via its own reverse
	// port map. Buffer 1: each directed edge carries exactly one message per
	// round and rounds are separated by the coordinator barrier.
	ch [][]chan any
	// revPort[v][p] is the port at which neighbour g.Neighbor(v,p) sees v.
	revPort [][]int

	status chan nodeStatus // node -> coordinator, one per node per round
	cont   []chan bool     // coordinator -> node, per node

	decidedRound []int
	output       []int
}

type nodeStatus struct {
	vertex  int
	decided bool
}

func newMessageEngine(g graph.Graph, a ids.Assignment, alg MessageAlgorithm, maxRounds int) *messageEngine {
	n := g.N()
	eng := &messageEngine{
		g:            g,
		a:            a,
		alg:          alg,
		maxRounds:    maxRounds,
		ch:           make([][]chan any, n),
		revPort:      make([][]int, n),
		status:       make(chan nodeStatus, 1),
		cont:         make([]chan bool, n),
		decidedRound: make([]int, n),
		output:       make([]int, n),
	}
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		eng.ch[v] = make([]chan any, d)
		eng.revPort[v] = make([]int, d)
		eng.cont[v] = make(chan bool, 1)
		eng.decidedRound[v] = -1
		for p := 0; p < d; p++ {
			eng.ch[v][p] = make(chan any, 1)
			eng.revPort[v][p] = portOf(g, g.Neighbor(v, p), v)
		}
	}
	return eng
}

// portOf finds the port through which u sees v.
func portOf(g graph.Graph, u, v int) int {
	for p := 0; p < g.Degree(u); p++ {
		if g.Neighbor(u, p) == v {
			return p
		}
	}
	panic(fmt.Sprintf("local: no port from %d to %d", u, v))
}

func (eng *messageEngine) run() (*Result, error) {
	n := eng.g.N()
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			eng.nodeLoop(v)
		}(v)
	}

	undecidedErr := eng.coordinate()
	wg.Wait()

	if undecidedErr != nil {
		return nil, undecidedErr
	}
	res := &Result{
		Algorithm: eng.alg.Name(),
		Outputs:   eng.output,
		Radii:     eng.decidedRound,
	}
	return res, nil
}

// coordinate collects per-round statuses and tells the nodes whether to run
// another round. It returns an error if the round cap is hit first.
func (eng *messageEngine) coordinate() error {
	n := eng.g.N()
	for round := 0; ; round++ {
		allDecided := true
		for i := 0; i < n; i++ {
			st := <-eng.status
			if !st.decided {
				allDecided = false
			}
		}
		if allDecided {
			eng.broadcast(false)
			return nil
		}
		if round >= eng.maxRounds {
			eng.broadcast(false)
			return fmt.Errorf("local: %s has undecided nodes after %d rounds", eng.alg.Name(), eng.maxRounds)
		}
		eng.broadcast(true)
	}
}

func (eng *messageEngine) broadcast(cont bool) {
	for _, c := range eng.cont {
		c <- cont
	}
}

// nodeLoop drives one vertex: send, receive, compute, report, barrier.
func (eng *messageEngine) nodeLoop(v int) {
	d := eng.g.Degree(v)
	node := eng.alg.NewNode(eng.a[v], d)

	record := func(round int) bool {
		if eng.decidedRound[v] >= 0 {
			return true
		}
		if out, ok := node.Output(); ok {
			eng.output[v] = out
			eng.decidedRound[v] = round
			return true
		}
		return false
	}

	msgs := node.Init()
	decided := record(0)
	eng.status <- nodeStatus{vertex: v, decided: decided}
	if !<-eng.cont[v] {
		return
	}

	recv := make([]any, d)
	for round := 1; ; round++ {
		for p := 0; p < d; p++ {
			var m any
			if msgs != nil && p < len(msgs) {
				m = msgs[p]
			}
			eng.ch[v][p] <- m
		}
		for p := 0; p < d; p++ {
			w := eng.g.Neighbor(v, p)
			recv[p] = <-eng.ch[w][eng.revPort[v][p]]
		}
		msgs = node.Round(recv)
		decided = record(round)
		eng.status <- nodeStatus{vertex: v, decided: decided}
		if !<-eng.cont[v] {
			return
		}
	}
}
