package local

import (
	"fmt"
	"reflect"

	"repro/internal/graph"
	"repro/internal/ids"
)

// Runner executes view-engine runs with reusable scratch: one ball builder
// (reset per vertex instead of reallocated), the parallel identifier and
// degree slices, and the Result buffers. A warmed-up Runner performs whole
// executions without allocating, which is what makes large permutation
// sweeps allocation-bound on nothing but the algorithms themselves.
//
// A Runner is not safe for concurrent use; pools keep one per worker. The
// Result returned by Run aliases the Runner's buffers and is only valid
// until the next Run call — callers that need to retain it must copy the
// slices (RunView does exactly that ownership hand-off by dropping the
// Runner).
//
// With SetAtlas, a Runner additionally serves views from a shared
// graph.BallAtlas: ball structure is permutation-invariant, so per-trial
// work shrinks to relabelling identifiers over atlas prefix windows plus
// the algorithm's own decisions — no BFS, no adjacency rebuild, no degree
// lookups. If the algorithm also implements Kernel, the whole run
// collapses further into one flat DecideAll pass over the skeleton (see
// Kernel; WithoutKernels pins the view path). Results are byte-identical
// to the builder path either way.
type Runner struct {
	bb *graph.BallBuilder
	// src is the attached ball source serving kernel runs: a shared
	// *graph.BallAtlas (SetAtlas) or any other graph.BallSource such as a
	// per-worker implicit synthesizer (SetSource).
	src graph.BallSource
	// atlas is src when it is a materialised *graph.BallAtlas, nil
	// otherwise. Only a materialised atlas can serve the per-vertex VIEW
	// path (views enumerate adjacency rows, which synthesized skeletons do
	// not carry); non-kernel runs under any other source use the ball
	// builder — byte-identical, just without the shared-layer speedup.
	atlas *graph.BallAtlas
	// srcG is the source's graph when that graph is comparable, nil
	// otherwise — precomputed by SetSource so the per-run source check is a
	// single interface comparison (always safe: srcG's dynamic type is
	// comparable, and comparing against a value of any other type answers
	// false without inspecting the data).
	srcG    graph.Graph
	aball   graph.Ball // scratch ball whose slices window the atlas
	av      atlasView  // scratch atlas context referenced by served views
	ids     []int
	degrees []int
	res     Result
	cfg     config // per-run options, resolved into Runner-owned storage
	// cfgOpts/cfgN key the resolved cfg: batched sweeps hand the same
	// option slice to every trial, so the per-run resolution collapses to
	// an identity check. Callers must not mutate an Option slice in place
	// between Run calls (append-and-pass, the idiomatic form, is fine —
	// appending allocates a new backing array).
	cfgOpts []Option
	cfgN    int
	krun    KernelRun // scratch pass context handed to Kernel.DecideAll
}

// NewRunner returns an empty Runner; buffers are grown on first use.
func NewRunner() *Runner { return &Runner{} }

// SetAtlas attaches a shared ball atlas (nil detaches). The atlas is used
// only when its graph is the one passed to Run; vertices the atlas cannot
// serve (memory cap) transparently fall back to the ball-builder path.
func (r *Runner) SetAtlas(a *graph.BallAtlas) {
	if a == nil {
		r.SetSource(nil)
		return
	}
	r.SetSource(a)
}

// SetSource attaches any ball source (nil detaches). A *graph.BallAtlas
// serves both the kernel fast path and the per-vertex view path; every
// other source (implicit synthesizers) serves kernels only — non-kernel
// runs need adjacency rows, which only a materialised atlas carries, and
// fall back to the ball builder. The source is consulted only when its
// graph is the one passed to Run.
func (r *Runner) SetSource(src graph.BallSource) {
	r.src = src
	r.atlas, _ = src.(*graph.BallAtlas)
	r.srcG = nil
	if src != nil {
		// Interface equality panics for non-comparable dynamic graph
		// types, so those conservatively never match (and fall back to
		// the builder path).
		if sg := src.Graph(); sg != nil && reflect.TypeOf(sg).Comparable() {
			r.srcG = sg
		}
	}
}

// Run executes alg at every vertex of g under the identifier assignment a,
// exactly like RunView, but recycles the Runner's scratch and Result
// buffers. The returned Result is overwritten by the next Run. Options are
// resolved once per distinct (slice, n) pair and cached by slice identity:
// do not mutate an Option slice in place between Run calls — build a new
// one (or append, which reallocates) instead.
func (r *Runner) Run(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, opts ...Option) (*Result, error) {
	n := g.N()
	if len(a) != n {
		return nil, fmt.Errorf("local: assignment covers %d vertices, graph has %d", len(a), n)
	}
	// Batched sweeps pass the identical option slice every trial; resolving
	// it once per (slice, n) pair keeps the per-run cost to two compares.
	if r.cfgN != n || !sameOpts(r.cfgOpts, opts) {
		newConfigInto(&r.cfg, n, opts)
		r.cfgOpts, r.cfgN = opts, n
	}
	cfg := r.cfg
	if !cfg.validated {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	r.res.Algorithm = alg.Name()
	r.res.Outputs = resizeInts(r.res.Outputs, n)
	r.res.Radii = resizeInts(r.res.Radii, n)
	useSrc := g == r.srcG
	if useSrc && !cfg.noKernels && cfg.observer == nil {
		// Kernel fast path: one flat pass over the source's skeletons.
		// Progress observers need the per-radius callbacks only the view
		// path makes, so their runs stay there.
		if k, ok := alg.(Kernel); ok {
			served, err := r.runKernel(g, a, alg, k, cfg)
			if err != nil {
				return nil, err
			}
			if served {
				return &r.res, nil
			}
		}
	}
	// The view path reads adjacency rows, so it is served only from a
	// materialised atlas; other sources degrade to the ball builder.
	useAtlas := useSrc && r.atlas != nil
	for v := 0; v < n; v++ {
		if cfg.ctx != nil && v&0xff == 0 {
			if err := cfg.ctx.Err(); err != nil {
				return nil, err
			}
		}
		var (
			out, rad int
			err      error
			served   bool
		)
		if useAtlas {
			out, rad, served, err = r.runVertexAtlas(a, alg, v, cfg)
		}
		if !served && err == nil {
			out, rad, err = r.runVertex(g, a, alg, v, cfg)
		}
		if err != nil {
			return nil, err
		}
		r.res.Outputs[v] = out
		r.res.Radii[v] = rad
	}
	return &r.res, nil
}

// runKernel executes alg's flat kernel over the attached atlas and reruns
// any vertices the kernel marked unserved (memory-capped atlas) on the
// ball-builder path — the same per-vertex degradation the view path
// applies. served=false means the kernel declined the graph entirely and
// the caller must run the view path.
func (r *Runner) runKernel(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, k Kernel, cfg config) (served bool, err error) {
	// The pass context lives on the Runner: passing a stack-local struct
	// through the interface call would force one heap escape per trial.
	// Fields are reset individually — the kernel's scratch survives (grown
	// once per Runner, not once per trial), and no struct temp is copied.
	r.krun.Atlas = r.src
	r.krun.Assign = a
	r.krun.Outs = r.res.Outputs
	r.krun.Radii = r.res.Radii
	r.krun.MaxRadius = cfg.maxRadius
	r.krun.Ctx = cfg.ctx
	ok, err := k.DecideAll(&r.krun)
	if !ok || err != nil {
		return ok, err
	}
	for v, rad := range r.res.Radii {
		if cfg.ctx != nil && v&0xff == 0 {
			if err := cfg.ctx.Err(); err != nil {
				return true, err
			}
		}
		if rad != KernelUnserved {
			continue
		}
		out, rad, err := r.runVertex(g, a, alg, v, cfg)
		if err != nil {
			return true, err
		}
		r.res.Outputs[v] = out
		r.res.Radii[v] = rad
	}
	return true, nil
}

// runVertexAtlas is runVertex served from the shared atlas: the ball's
// Verts/Dist arrays are prefix windows of the centre's atlas skeleton,
// degrees alias the skeleton, degree/completeness queries answer from the
// precomputed own-degrees, and adjacency rows materialise in the atlas
// only if the algorithm enumerates edges — so the per-radius work is just
// relabelling the new layer's identifiers and the algorithm's own Decide.
// served=false (with err=nil) means the atlas hit its memory cap and the
// caller must rerun the vertex on the builder path; a WithProgress
// observer may then see the abandoned attempt's early radii twice.
func (r *Runner) runVertexAtlas(a ids.Assignment, alg ViewAlgorithm, v int, cfg config) (out, radius int, served bool, err error) {
	st := r.atlas.Ensure(v, 0)
	if st == nil {
		return 0, 0, false, nil
	}
	ball := &r.aball
	ball.Radius = 0
	ball.Verts = st.Verts[:1]
	ball.Dist = st.Dist[:1]
	ball.Adj = nil
	r.av = atlasView{st: st, atlas: r.atlas, assign: a, center: v, centerID: a[v]}
	view := View{ball: ball, frontierStart: 0, av: &r.av}
	view.degrees = st.Degs[:1]
	for {
		out, done := alg.Decide(view)
		if cfg.observer != nil {
			cfg.observer(Progress{Vertex: v, Radius: ball.Radius, Decided: done})
		}
		if done {
			return out, ball.Radius, true, nil
		}
		if ball.Radius >= cfg.maxRadius {
			return 0, 0, true, fmt.Errorf("local: %s undecided at vertex %d after radius %d", alg.Name(), v, cfg.maxRadius)
		}
		newR := ball.Radius + 1
		if !st.Complete && newR > st.MaxRadius {
			if st = r.atlas.Ensure(v, newR); st == nil {
				return 0, 0, false, nil
			}
			r.av.st = st
		}
		prevEnd := len(ball.Verts)
		newEnd := st.SizeAt(newR)
		ball.Verts = st.Verts[:newEnd]
		ball.Dist = st.Dist[:newEnd]
		ball.Radius = newR
		view.frontierStart = prevEnd
		view.degrees = st.Degs[:newEnd]
	}
}

// runVertex grows vertex v's view until alg decides, reusing the Runner's
// ball builder and label slices.
func (r *Runner) runVertex(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, v int, cfg config) (out, radius int, err error) {
	if r.bb == nil {
		r.bb = graph.NewBallBuilder(g, v)
	} else {
		r.bb.Reset(g, v)
	}
	view := View{ball: r.bb.Ball(), frontierStart: 0}
	view.ids, view.degrees = labelsFor(g, view.ball, a, r.ids[:0], r.degrees[:0])
	for {
		out, done := alg.Decide(view)
		if cfg.observer != nil {
			cfg.observer(Progress{Vertex: v, Radius: view.Radius(), Decided: done})
		}
		if done {
			// Hand the (possibly re-grown) label buffers back so their
			// capacity carries over to the next vertex.
			r.ids, r.degrees = view.ids, view.degrees
			return out, view.Radius(), nil
		}
		if view.Radius() >= cfg.maxRadius {
			r.ids, r.degrees = view.ids, view.degrees
			return 0, 0, fmt.Errorf("local: %s undecided at vertex %d after radius %d", alg.Name(), v, cfg.maxRadius)
		}
		start := r.bb.Grow()
		view.frontierStart = start
		view.ids, view.degrees = labelsFor(g, view.ball, a, view.ids[:start], view.degrees[:start])
	}
}

// sameOpts reports whether two option slices are the identical slice —
// same backing array, same length — which is how batched callers reuse one
// resolved config across trials.
func sameOpts(a, b []Option) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// resizeInts returns s with length exactly n, reusing capacity.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
