package local

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
)

// Runner executes view-engine runs with reusable scratch: one ball builder
// (reset per vertex instead of reallocated), the parallel identifier and
// degree slices, and the Result buffers. A warmed-up Runner performs whole
// executions without allocating, which is what makes large permutation
// sweeps allocation-bound on nothing but the algorithms themselves.
//
// A Runner is not safe for concurrent use; pools keep one per worker. The
// Result returned by Run aliases the Runner's buffers and is only valid
// until the next Run call — callers that need to retain it must copy the
// slices (RunView does exactly that ownership hand-off by dropping the
// Runner).
type Runner struct {
	bb      *graph.BallBuilder
	ids     []int
	degrees []int
	res     Result
}

// NewRunner returns an empty Runner; buffers are grown on first use.
func NewRunner() *Runner { return &Runner{} }

// Run executes alg at every vertex of g under the identifier assignment a,
// exactly like RunView, but recycles the Runner's scratch and Result
// buffers. The returned Result is overwritten by the next Run.
func (r *Runner) Run(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, opts ...Option) (*Result, error) {
	n := g.N()
	if len(a) != n {
		return nil, fmt.Errorf("local: assignment covers %d vertices, graph has %d", len(a), n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cfg := newConfig(n, opts)
	r.res.Algorithm = alg.Name()
	r.res.Outputs = resizeInts(r.res.Outputs, n)
	r.res.Radii = resizeInts(r.res.Radii, n)
	for v := 0; v < n; v++ {
		if cfg.ctx != nil && v&0xff == 0 {
			if err := cfg.ctx.Err(); err != nil {
				return nil, err
			}
		}
		out, rad, err := r.runVertex(g, a, alg, v, cfg)
		if err != nil {
			return nil, err
		}
		r.res.Outputs[v] = out
		r.res.Radii[v] = rad
	}
	return &r.res, nil
}

// runVertex grows vertex v's view until alg decides, reusing the Runner's
// ball builder and label slices.
func (r *Runner) runVertex(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, v int, cfg config) (out, radius int, err error) {
	if r.bb == nil {
		r.bb = graph.NewBallBuilder(g, v)
	} else {
		r.bb.Reset(g, v)
	}
	view := View{ball: r.bb.Ball(), frontierStart: 0}
	view.ids, view.degrees = labelsFor(g, view.ball, a, r.ids[:0], r.degrees[:0])
	for {
		out, done := alg.Decide(view)
		if cfg.observer != nil {
			cfg.observer(Progress{Vertex: v, Radius: view.Radius(), Decided: done})
		}
		if done {
			// Hand the (possibly re-grown) label buffers back so their
			// capacity carries over to the next vertex.
			r.ids, r.degrees = view.ids, view.degrees
			return out, view.Radius(), nil
		}
		if view.Radius() >= cfg.maxRadius {
			r.ids, r.degrees = view.ids, view.degrees
			return 0, 0, fmt.Errorf("local: %s undecided at vertex %d after radius %d", alg.Name(), v, cfg.maxRadius)
		}
		start := r.bb.Grow()
		view.frontierStart = start
		view.ids, view.degrees = labelsFor(g, view.ball, a, view.ids[:start], view.degrees[:start])
	}
}

// resizeInts returns s with length exactly n, reusing capacity.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
