// Package local implements the LOCAL model of synchronised distributed
// computing in the two equivalent formulations the paper uses:
//
//   - the view (ball) engine: every node grows a radius around itself and
//     outputs a function of the ball it sees, the formulation §1 of the
//     paper calls "more convenient"; and
//   - the message engine: one goroutine per node, synchronous rounds,
//     unbounded messages, matching the round-based definition.
//
// The engines agree: a full-information message algorithm that gathers balls
// decides at exactly the radius the view engine reports (see gather.go and
// the cross-engine tests).
//
// Nodes do not know n. A node may decide its output at any radius/round
// while (in the message engine) continuing to relay messages, which is the
// unknown-n variant of the model the paper works in. The recorded quantity
// r(v) is the radius at which v decides; the two measures under study are
// max_v r(v) and avg_v r(v).
package local

import (
	"repro/internal/graph"
	"repro/internal/ids"
)

// View is the information a vertex has gathered at its current radius: the
// induced ball around it plus the identifiers of the ball's vertices.
// Algorithms must treat a View as read-only and must not retain it after
// Decide returns; the engine reuses the underlying storage.
// A View also exposes the true degree of every visible vertex: a vertex's
// degree is part of its initial state in the LOCAL model, so it reaches the
// viewing node together with its identifier. This is what makes "I have
// reached an endpoint of the path" (§2 of the paper) detectable at radius
// exactly the distance to the endpoint.
type View struct {
	ball    *graph.Ball
	ids     []int // parallel to ball.Verts
	degrees []int // parallel to ball.Verts: true degree of each vertex
	// frontierStart is the local index of the first vertex discovered at
	// the current radius; algorithms that only need to inspect newly
	// revealed vertices can start there.
	frontierStart int

	// Atlas-backed mode (av != nil): ball's Verts/Dist are prefix windows
	// over the shared atlas skeleton and ball.Adj is nil; degree queries
	// answer from the skeleton (interior vertices show their true degree,
	// frontier vertices their own-radius induced degree) and adjacency
	// rows materialise in the atlas on first Neighbors/Canonical/Clone
	// access. Semantics are byte-identical to the builder-backed mode.
	// The pointed-to struct is runner-owned scratch, mutated between
	// Decide calls like the ball — one more reason views must not be
	// retained.
	av *atlasView
}

// atlasView is the runner-owned atlas context of an atlas-backed view.
// assign/centerID make identifier relabelling implicit: ID(i) reads the
// trial's assignment through the skeleton's vertex names, so a trial never
// copies identifier slices at all.
type atlasView struct {
	st       *graph.AtlasBall
	atlas    *graph.BallAtlas
	assign   ids.Assignment
	center   int
	centerID int
}

// Radius reports the gathering radius of the view.
func (v View) Radius() int { return v.ball.Radius }

// Size reports the number of visible vertices.
func (v View) Size() int { return v.ball.Size() }

// CenterID returns the identifier of the viewing vertex.
func (v View) CenterID() int {
	if v.av != nil {
		return v.av.centerID
	}
	return v.ids[0]
}

// ID returns the identifier of local vertex i.
func (v View) ID(i int) int {
	if v.av != nil {
		return v.av.assign[v.av.st.Verts[i]]
	}
	return v.ids[i]
}

// MaxIDIn returns the largest identifier among local vertices [from, to),
// or -1 when the range is empty. It is the bulk form of ID for scan-heavy
// algorithms (largest-ID pruning checks its whole frontier every radius):
// one call hoists the per-element indirection of both view modes out of
// the loop.
func (v View) MaxIDIn(from, to int) int {
	max := -1
	if v.av != nil {
		assign := v.av.assign
		for _, w := range v.av.st.Verts[from:to] {
			if id := assign[w]; id > max {
				max = id
			}
		}
		return max
	}
	for _, id := range v.ids[from:to] {
		if id > max {
			max = id
		}
	}
	return max
}

// Dist returns the distance of local vertex i from the centre.
func (v View) Dist(i int) int { return v.ball.Dist[i] }

// DegreeWithin returns the degree of local vertex i inside the view.
func (v View) DegreeWithin(i int) int {
	if v.av != nil {
		if i >= v.frontierStart {
			return v.av.st.OwnDeg(i)
		}
		// Interior vertices show every edge: all their neighbours are
		// within the radius, so the induced degree is the true degree.
		return v.degrees[i]
	}
	return v.ball.DegreeWithin(i)
}

// TrueDegree returns the actual degree of local vertex i in the underlying
// graph (degrees travel with identifiers in the LOCAL model).
func (v View) TrueDegree(i int) int { return v.degrees[i] }

// CenterDegree returns the viewing vertex's own degree.
func (v View) CenterDegree() int { return v.degrees[0] }

// Complete reports whether the view provably covers the node's whole
// connected component: every visible vertex shows all of its edges inside
// the view. No correct unknown-n algorithm on connected graphs can need a
// larger radius than the first complete view.
//
// Only the current frontier needs checking: a vertex at distance < Radius
// has all its neighbours within distance Radius, hence visible. This keeps
// the check O(frontier) so that radius-growth loops stay linear in the
// final ball size.
func (v View) Complete() bool {
	if v.av != nil {
		// Completeness is a graph property, precomputed per layer during
		// atlas growth: an O(1) lookup.
		return v.av.st.CompleteAt(v.ball.Radius)
	}
	for i := v.frontierStart; i < v.Size(); i++ {
		if v.ball.DegreeWithin(i) != v.degrees[i] {
			return false
		}
	}
	return true
}

// Neighbors returns the local indices adjacent to local vertex i, in i's
// port order. The returned slice is engine-owned; do not modify.
func (v View) Neighbors(i int) []int {
	if v.av != nil {
		rows := v.av.atlas.RowsFor(v.av.center, v.Size(), v.frontierStart)
		if i >= v.frontierStart {
			return rows.OwnRow(i)
		}
		return rows.FullRow(i)
	}
	return v.ball.Adj[i]
}

// FrontierStart returns the local index of the first vertex discovered at
// the current radius. Equal to Size() when the last Grow added nothing.
func (v View) FrontierStart() int { return v.frontierStart }

// Closed reports whether every visible vertex has degree k within the view.
// On a family of connected k-regular graphs (cycles: k=2) this certifies
// that the view is the entire graph.
func (v View) Closed(k int) bool {
	if v.av != nil {
		for i := 0; i < v.frontierStart; i++ {
			if v.degrees[i] != k {
				return false
			}
		}
		for i := v.frontierStart; i < v.Size(); i++ {
			if v.av.st.OwnDeg(i) != k {
				return false
			}
		}
		return true
	}
	return v.ball.AllDegreesWithin(k)
}

// Clone returns a deep copy of the view that remains valid after Decide
// returns. Algorithms must not retain the View they are handed — the engine
// recycles its storage across radii and across vertices — so any probe or
// instrumentation that wants to keep a view must keep a Clone.
func (v View) Clone() View {
	if v.av != nil {
		// Materialise a standalone builder-style view: the clone must stay
		// valid without pinning the atlas.
		size := v.Size()
		rows := v.av.atlas.RowsFor(v.av.center, size, v.frontierStart)
		ball := &graph.Ball{
			Radius: v.ball.Radius,
			Verts:  append([]int(nil), v.ball.Verts...),
			Dist:   append([]int(nil), v.ball.Dist...),
			Adj:    make([][]int, size),
		}
		idsOut := make([]int, size)
		for i := 0; i < size; i++ {
			idsOut[i] = v.av.assign[ball.Verts[i]]
			if i >= v.frontierStart {
				ball.Adj[i] = append([]int(nil), rows.OwnRow(i)...)
			} else {
				ball.Adj[i] = append([]int(nil), rows.FullRow(i)...)
			}
		}
		return View{
			ball:          ball,
			ids:           idsOut,
			degrees:       append([]int(nil), v.degrees...),
			frontierStart: v.frontierStart,
		}
	}
	return View{
		ball:          v.ball.Clone(),
		ids:           append([]int(nil), v.ids...),
		degrees:       append([]int(nil), v.degrees...),
		frontierStart: v.frontierStart,
	}
}

// Canonical renders the view (structure + identifiers) as a deterministic
// string; two vertices with isomorphic ID-labelled balls canonicalise
// identically.
func (v View) Canonical() string {
	if v.av != nil {
		// Rare path: materialise the adjacency and canonicalise the copy.
		return v.Clone().Canonical()
	}
	// The ball canonicaliser asks for IDs by original vertex name; build
	// the orig->local index once so canonicalisation stays O(size), not
	// O(size²) via a per-vertex scan of Verts.
	local := v.ids
	idx := make(map[int]int, len(v.ball.Verts))
	for i, o := range v.ball.Verts {
		idx[o] = i
	}
	return v.ball.Canonical(func(orig int) int {
		if i, ok := idx[orig]; ok {
			return local[i]
		}
		return -1
	})
}

// ViewAlgorithm is a deterministic LOCAL algorithm in the ball formulation:
// at each radius the node inspects its view and either commits to an output
// or asks for a larger radius.
type ViewAlgorithm interface {
	// Name identifies the algorithm in results and experiment tables.
	Name() string
	// Decide inspects the view and returns (output, true) to commit, or
	// (_, false) to grow the radius by one and be called again.
	Decide(v View) (output int, done bool)
}

// RunView executes alg at every vertex of g under the identifier assignment
// a, growing each vertex's radius until it decides. It returns the outputs
// and the per-vertex decision radii.
//
// The engine enforces a safety cap (default: n, configurable with
// WithMaxRadius); an algorithm still undecided at the cap is reported as an
// error rather than looping forever — no correct unknown-n algorithm on a
// connected graph needs radius beyond the point where its ball covers the
// whole graph.
func RunView(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, opts ...Option) (*Result, error) {
	// A fresh Runner is dropped on return, so the caller takes ownership of
	// the Result it would otherwise recycle.
	return NewRunner().Run(g, a, alg, opts...)
}

// labelsFor extends the parallel identifier and degree slices to cover all
// ball vertices, reusing already-filled prefixes.
func labelsFor(g graph.Graph, b *graph.Ball, a ids.Assignment, idPrefix, degPrefix []int) (idsOut, degOut []int) {
	idsOut, degOut = idPrefix, degPrefix
	for i := len(idsOut); i < len(b.Verts); i++ {
		idsOut = append(idsOut, a[b.Verts[i]])
		degOut = append(degOut, g.Degree(b.Verts[i]))
	}
	return idsOut, degOut
}
