package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

// echoAlg decides at radius 0, outputting its own identifier.
type echoAlg struct{}

func (echoAlg) Name() string              { return "echo" }
func (echoAlg) Decide(v View) (int, bool) { return v.CenterID(), true }

// waitAlg decides at a fixed radius k with output 1.
type waitAlg struct{ k int }

func (a waitAlg) Name() string { return "wait" }
func (a waitAlg) Decide(v View) (int, bool) {
	if v.Radius() >= a.k {
		return 1, true
	}
	return 0, false
}

// maxInCycleAlg waits until its view is the whole cycle (all induced degrees
// 2) and outputs the maximum identifier it sees.
type maxInCycleAlg struct{}

func (maxInCycleAlg) Name() string { return "maxInCycle" }
func (maxInCycleAlg) Decide(v View) (int, bool) {
	if !v.Closed(2) {
		return 0, false
	}
	max := v.CenterID()
	for i := 0; i < v.Size(); i++ {
		if v.ID(i) > max {
			max = v.ID(i)
		}
	}
	return max, true
}

// neverAlg never decides; used to exercise the safety cap.
type neverAlg struct{}

func (neverAlg) Name() string            { return "never" }
func (neverAlg) Decide(View) (int, bool) { return 0, false }

func TestRunViewEcho(t *testing.T) {
	c := graph.MustCycle(9)
	a := ids.Reversed(9)
	res, err := RunView(c, a, echoAlg{})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	for v := 0; v < 9; v++ {
		if res.Outputs[v] != a[v] {
			t.Errorf("output[%d] = %d, want %d", v, res.Outputs[v], a[v])
		}
		if res.Radii[v] != 0 {
			t.Errorf("radius[%d] = %d, want 0", v, res.Radii[v])
		}
	}
	if res.MaxRadius() != 0 || res.AvgRadius() != 0 {
		t.Errorf("measures: max=%d avg=%v, want zeros", res.MaxRadius(), res.AvgRadius())
	}
}

func TestRunViewFixedRadius(t *testing.T) {
	c := graph.MustCycle(20)
	res, err := RunView(c, ids.Identity(20), waitAlg{k: 3})
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	for v, r := range res.Radii {
		if r != 3 {
			t.Errorf("radius[%d] = %d, want 3", v, r)
		}
	}
	if got := res.AvgRadius(); got != 3 {
		t.Errorf("AvgRadius = %v, want 3", got)
	}
	if got := res.SumRadii(); got != 60 {
		t.Errorf("SumRadii = %d, want 60", got)
	}
}

func TestRunViewWholeCycleClosure(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 9} {
		c := graph.MustCycle(n)
		res, err := RunView(c, ids.Identity(n), maxInCycleAlg{})
		if err != nil {
			t.Fatalf("n=%d: RunView: %v", n, err)
		}
		closure := n / 2 // == ceil((n-1)/2)
		for v, r := range res.Radii {
			if r != closure {
				t.Errorf("n=%d: radius[%d] = %d, want %d", n, v, r, closure)
			}
			if res.Outputs[v] != n-1 {
				t.Errorf("n=%d: output[%d] = %d, want %d", n, v, res.Outputs[v], n-1)
			}
		}
	}
}

func TestRunViewSafetyCap(t *testing.T) {
	c := graph.MustCycle(6)
	if _, err := RunView(c, ids.Identity(6), neverAlg{}); err == nil {
		t.Fatal("undecided algorithm did not error at the safety cap")
	}
	if _, err := RunView(c, ids.Identity(6), waitAlg{k: 4}, WithMaxRadius(2)); err == nil {
		t.Fatal("WithMaxRadius(2) did not stop a radius-4 algorithm")
	}
	if _, err := RunView(c, ids.Identity(6), waitAlg{k: 2}, WithMaxRadius(2)); err != nil {
		t.Fatalf("radius-2 algorithm failed under cap 2: %v", err)
	}
}

func TestRunViewRejectsBadAssignments(t *testing.T) {
	c := graph.MustCycle(5)
	if _, err := RunView(c, ids.Identity(4), echoAlg{}); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := ids.Assignment{0, 1, 1, 2, 3}
	if _, err := RunView(c, bad, echoAlg{}); err == nil {
		t.Error("duplicate identifiers accepted")
	}
}

// frontierAlg records the FrontierStart sequence it observes.
type frontierAlg struct {
	k      int
	starts *[]int
}

func (frontierAlg) Name() string { return "frontier" }
func (a frontierAlg) Decide(v View) (int, bool) {
	*a.starts = append(*a.starts, v.FrontierStart())
	return 0, v.Radius() >= a.k
}

func TestRunViewFrontierStart(t *testing.T) {
	c := graph.MustCycle(9)
	var starts []int
	// Only vertex 0 matters; restrict the graph accordingly by checking the
	// recorded prefix for the first vertex's run (3 decisions: r=0,1,2).
	if _, err := RunView(c, ids.Identity(9), frontierAlg{k: 2, starts: &starts}); err != nil {
		t.Fatalf("RunView: %v", err)
	}
	want := []int{0, 1, 3} // radius 0: centre; radius 1: verts 1..2; radius 2: verts 3..4
	for i, w := range want {
		if starts[i] != w {
			t.Fatalf("frontier starts for vertex 0 = %v, want prefix %v", starts[:3], want)
		}
	}
}

func TestViewCanonicalConsistency(t *testing.T) {
	c := graph.MustCycle(10)
	a := ids.Random(10, rand.New(rand.NewSource(4)))
	var canon []string
	capture := captureAlg{radius: 2, out: &canon}
	if _, err := RunView(c, a, capture); err != nil {
		t.Fatalf("RunView: %v", err)
	}
	if len(canon) != 10 {
		t.Fatalf("captured %d canonical strings, want 10", len(canon))
	}
	// All vertices of a cycle with distinct IDs see structurally identical
	// balls, so canonical strings differ only via IDs: they must be pairwise
	// distinct here.
	seen := map[string]int{}
	for v, s := range canon {
		if prev, dup := seen[s]; dup {
			t.Errorf("vertices %d and %d canonicalise identically", prev, v)
		}
		seen[s] = v
	}
}

// captureAlg records each vertex's canonical view at a fixed radius.
type captureAlg struct {
	radius int
	out    *[]string
}

func (captureAlg) Name() string { return "capture" }
func (a captureAlg) Decide(v View) (int, bool) {
	if v.Radius() < a.radius {
		return 0, false
	}
	*a.out = append(*a.out, v.Canonical())
	return 0, true
}
