package local_test

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

var errMismatch = errors.New("racy run diverged from reference result")

// TestKernelMatchesViewPath is the engine half of the kernel guarantee:
// for every kernel-capable algorithm, one flat DecideAll pass produces
// byte-identical Results to the per-vertex view path (kernels forced off)
// and to the builder path (no atlas at all), across the graph zoo.
func TestKernelMatchesViewPath(t *testing.T) {
	for _, fam := range equivFamilies(t) {
		n := fam.g.N()
		atlas := graph.NewBallAtlas(fam.g, 0)
		kernelRunner := local.NewRunner()
		kernelRunner.SetAtlas(atlas)
		viewRunner := local.NewRunner()
		viewRunner.SetAtlas(atlas)
		rng := rand.New(rand.NewSource(47))
		algs := []local.ViewAlgorithm{largestid.Pruning{}, largestid.FullView{}}
		if _, isRing := fam.g.(graph.Cycle); isRing {
			algs = append(algs, coloring.Uniform{})
		}
		for trial := 0; trial < 6; trial++ {
			a := ids.Random(n, rng)
			for _, alg := range algs {
				if _, ok := alg.(local.Kernel); !ok {
					t.Fatalf("%s does not implement local.Kernel", alg.Name())
				}
				builder, err := local.RunView(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s builder: %v", fam.name, alg.Name(), err)
				}
				viewPath, err := viewRunner.Run(fam.g, a, alg, local.WithoutKernels())
				if err != nil {
					t.Fatalf("%s/%s view path: %v", fam.name, alg.Name(), err)
				}
				if !sameResult(viewPath, builder) {
					t.Fatalf("%s/%s trial %d: atlas view path differs from builder", fam.name, alg.Name(), trial)
				}
				kernel, err := kernelRunner.Run(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s kernel: %v", fam.name, alg.Name(), err)
				}
				if !sameResult(kernel, builder) {
					t.Fatalf("%s/%s trial %d: kernel result differs from builder", fam.name, alg.Name(), trial)
				}
			}
		}
	}
}

// TestKernelCapFallback pins the kernels' degraded mode: an atlas too small
// for the graph marks vertices unserved mid-pass and the engine reruns
// exactly those on the builder path, with identical results.
func TestKernelCapFallback(t *testing.T) {
	c := graph.MustCycle(96)
	rng := rand.New(rand.NewSource(51))
	for _, alg := range []local.ViewAlgorithm{largestid.Pruning{}, largestid.FullView{}} {
		atlas := graph.NewBallAtlas(c, 2048) // forces mid-pass exhaustion
		runner := local.NewRunner()
		runner.SetAtlas(atlas)
		for trial := 0; trial < 4; trial++ {
			a := ids.Random(96, rng)
			want, err := local.RunView(c, a, alg)
			if err != nil {
				t.Fatalf("%s builder: %v", alg.Name(), err)
			}
			got, err := runner.Run(c, a, alg)
			if err != nil {
				t.Fatalf("%s capped kernel: %v", alg.Name(), err)
			}
			if !sameResult(got, want) {
				t.Fatalf("%s trial %d: capped kernel differs from builder", alg.Name(), trial)
			}
		}
		if !atlas.Exhausted() {
			t.Fatalf("%s: atlas never hit its cap; fallback path untested", alg.Name())
		}
	}
}

// TestKernelMaxRadiusError demands error parity: a vertex undecided at the
// safety cap fails identically on the kernel and view paths.
func TestKernelMaxRadiusError(t *testing.T) {
	c := graph.MustCycle(32)
	a := ids.Identity(32)
	atlas := graph.NewBallAtlas(c, 0)
	runner := local.NewRunner()
	runner.SetAtlas(atlas)
	_, kerr := runner.Run(c, a, largestid.FullView{}, local.WithMaxRadius(2))
	_, verr := runner.Run(c, a, largestid.FullView{}, local.WithMaxRadius(2), local.WithoutKernels())
	if kerr == nil || verr == nil {
		t.Fatalf("expected undecided errors, kernel=%v view=%v", kerr, verr)
	}
	if kerr.Error() != verr.Error() {
		t.Fatalf("error mismatch:\nkernel: %v\nview:   %v", kerr, verr)
	}
	if !strings.Contains(kerr.Error(), "undecided at vertex") {
		t.Fatalf("unexpected error shape: %v", kerr)
	}
}

// TestUniformKernelDeclinesNonRing checks that the ring-only Uniform kernel
// declines other graphs instead of mis-serving them.
func TestUniformKernelDeclinesNonRing(t *testing.T) {
	p := graph.MustPath(8)
	atlas := graph.NewBallAtlas(p, 0)
	run := &local.KernelRun{
		Atlas:     atlas,
		Assign:    ids.Identity(8),
		Outs:      make([]int, 8),
		Radii:     make([]int, 8),
		MaxRadius: 8,
	}
	ok, err := coloring.Uniform{}.DecideAll(run)
	if err != nil {
		t.Fatalf("DecideAll on path: %v", err)
	}
	if ok {
		t.Fatal("Uniform kernel served a non-ring graph")
	}
}

// TestKernelObserverUsesViewPath pins the dispatch rule: a WithProgress
// observer needs per-radius callbacks, so its runs take the view path even
// for kernel-capable algorithms — and the observer fires.
func TestKernelObserverUsesViewPath(t *testing.T) {
	c := graph.MustCycle(24)
	a := ids.Random(24, rand.New(rand.NewSource(3)))
	atlas := graph.NewBallAtlas(c, 0)
	runner := local.NewRunner()
	runner.SetAtlas(atlas)
	events := 0
	res, err := runner.Run(c, a, largestid.Pruning{}, local.WithProgress(func(local.Progress) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("observer never fired: kernel path must not swallow WithProgress runs")
	}
	want, err := local.RunView(c, a, largestid.Pruning{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(res, want) {
		t.Fatal("observed run differs from builder run")
	}
}

// TestKernelSharedAtlasRace hammers one atlas from many goroutines running
// kernels concurrently (meaningful under -race): concurrent flat passes
// over a lazily growing skeleton must be safe and deterministic.
func TestKernelSharedAtlasRace(t *testing.T) {
	c := graph.MustCycle(128)
	atlas := graph.NewBallAtlas(c, 0)
	want, err := local.RunView(c, ids.Identity(128), largestid.Pruning{})
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.NumCPU() * 2
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			runner := local.NewRunner()
			runner.SetAtlas(atlas)
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 6; trial++ {
				a := ids.Random(128, rng)
				if _, err := runner.Run(c, a, largestid.Pruning{}); err != nil {
					errs <- err
					return
				}
			}
			got, err := runner.Run(c, ids.Identity(128), largestid.Pruning{})
			if err != nil {
				errs <- err
				return
			}
			if !sameResult(got, want) {
				errs <- errMismatch
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
