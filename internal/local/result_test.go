package local

import "testing"

func TestResultMeasures(t *testing.T) {
	r := &Result{
		Algorithm: "x",
		Outputs:   []int{1, 0, 0, 1},
		Radii:     []int{0, 3, 1, 4},
	}
	if r.N() != 4 {
		t.Errorf("N = %d", r.N())
	}
	if r.MaxRadius() != 4 {
		t.Errorf("MaxRadius = %d", r.MaxRadius())
	}
	if r.SumRadii() != 8 {
		t.Errorf("SumRadii = %d", r.SumRadii())
	}
	if r.AvgRadius() != 2 {
		t.Errorf("AvgRadius = %v", r.AvgRadius())
	}
}

func TestResultEmpty(t *testing.T) {
	r := &Result{}
	if r.N() != 0 || r.MaxRadius() != 0 || r.SumRadii() != 0 || r.AvgRadius() != 0 {
		t.Errorf("empty result not zero: %+v", r)
	}
}
