package local

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
)

// Kernel is the optional flat fast path of the view engine. A ViewAlgorithm
// may additionally implement it to compute every vertex's output and
// stopping radius in one pass over a shared atlas skeleton — no View
// objects, no per-vertex relabel scratch, no interface call per radius
// increment. Decisions like largest-ID pruning reduce to argmax scans over
// atlas prefix windows, so the kernel form is a tight loop over the
// skeleton's flat arrays.
//
// A Runner with an atlas attached detects the interface and dispatches to
// it; results must be byte-identical to the view path (the engine's
// equivalence suites enforce this for every kernel in the repository).
// Builder-path runs, MessageAlgorithm runs, runs with a WithProgress
// observer, and runs under WithoutKernels never consult the interface.
type Kernel interface {
	// DecideAll fills run.Outs and run.Radii for every vertex, marking
	// vertices it cannot serve (the atlas hit its memory cap mid-growth)
	// with run.Radii[v] = KernelUnserved; the engine reruns those on the
	// ball-builder path. ok=false declines the whole graph (e.g. a
	// ring-only kernel handed a tree) and the engine falls back to the
	// view path; Outs/Radii may then be left in any state.
	DecideAll(run *KernelRun) (ok bool, err error)
}

// KernelUnserved in Radii[v] marks a vertex the kernel could not serve.
const KernelUnserved = -1

// KernelRun carries one flat pass's inputs and outputs. Outs and Radii
// alias the engine's result buffers; Assign and the atlas are shared and
// read-only.
type KernelRun struct {
	// Atlas is the ball source of the graph under execution — a shared
	// *graph.BallAtlas on the materialised path, a per-worker
	// *graph.ImplicitBalls on the implicit one. Kernels grow it with
	// Ensure exactly like the view path; a nil snapshot means the source
	// cannot serve the vertex (memory-capped atlas) and the kernel marks
	// it KernelUnserved. Snapshots must be re-read after every Ensure and
	// never retained across centres: implicit sources reuse one scratch
	// snapshot per centre.
	Atlas graph.BallSource
	// Assign is the trial's identifier assignment, indexed by original
	// vertex name (the atlas skeleton's Verts entries).
	Assign ids.Assignment
	// Outs and Radii receive every vertex's output and stopping radius.
	Outs, Radii []int
	// MaxRadius is the engine safety cap; a vertex still undecided there
	// must fail with Undecided.
	MaxRadius int
	// Ctx cancels the pass; poll it with Err.
	Ctx context.Context
	// Scratch is kernel-owned spill storage the engine preserves across
	// the Runner's runs: a kernel that needs per-pass working memory (the
	// ring colouring's segment buffer) takes it with IntScratch instead of
	// allocating once per trial.
	Scratch []int
}

// IntScratch returns the run's scratch resized to n ints (contents
// unspecified), growing the persisted storage at most once per Runner.
func (kr *KernelRun) IntScratch(n int) []int {
	if cap(kr.Scratch) < n {
		kr.Scratch = make([]int, n)
	}
	kr.Scratch = kr.Scratch[:n]
	return kr.Scratch
}

// Err polls the run's context every 256 vertices (keyed by v, mirroring the
// view path's cadence) and returns its error once cancelled.
func (kr *KernelRun) Err(v int) error {
	if kr.Ctx != nil && v&0xff == 0 {
		return kr.Ctx.Err()
	}
	return nil
}

// Undecided formats the engine's standard over-cap error, byte-identical to
// the view path's.
func (kr *KernelRun) Undecided(name string, v int) error {
	return fmt.Errorf("local: %s undecided at vertex %d after radius %d", name, v, kr.MaxRadius)
}
