package local_test

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// implicitEquivFamilies is the zoo of the implicit-source equivalence suite:
// every Implicit family the repository ships, at sizes where the builder
// baseline stays cheap.
func implicitEquivFamilies() []struct {
	name string
	g    graph.Implicit
} {
	return []struct {
		name string
		g    graph.Implicit
	}{
		{"cycle", graph.MustCycle(33)},
		{"cycle-even", graph.MustCycle(32)},
		{"path", graph.MustPath(29)},
		{"torus", graph.MustTorus(5, 7)},
		{"tree", graph.MustImplicitTree(3, 3)},
	}
}

// TestRunnerImplicitSourceMatchesBuilder is the engine half of the implicit
// guarantee: a Runner serving kernel runs from a synthesized ImplicitBalls
// source produces byte-identical Results to both the ball-builder path and a
// materialised-atlas Runner, across families and identifier permutations.
func TestRunnerImplicitSourceMatchesBuilder(t *testing.T) {
	for _, fam := range implicitEquivFamilies() {
		n := fam.g.N()
		implicitRunner := local.NewRunner()
		implicitRunner.SetSource(graph.NewImplicitBalls(fam.g))
		atlasRunner := local.NewRunner()
		atlasRunner.SetAtlas(graph.NewBallAtlas(fam.g, 0))
		algs := []local.ViewAlgorithm{largestid.Pruning{}, largestid.FullView{}}
		if _, ok := fam.g.(graph.Cycle); ok {
			algs = append(algs, coloring.Uniform{})
		}
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 8; trial++ {
			a := ids.Random(n, rng)
			for _, alg := range algs {
				want, err := local.RunView(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s builder: %v", fam.name, alg.Name(), err)
				}
				fromAtlas, err := atlasRunner.Run(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s atlas: %v", fam.name, alg.Name(), err)
				}
				if !sameResult(fromAtlas, want) {
					t.Fatalf("%s/%s trial %d: atlas result differs from builder", fam.name, alg.Name(), trial)
				}
				got, err := implicitRunner.Run(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s implicit: %v", fam.name, alg.Name(), err)
				}
				if !sameResult(got, want) {
					t.Fatalf("%s/%s trial %d: implicit result differs from builder", fam.name, alg.Name(), trial)
				}
			}
		}
	}
}

// TestRunnerImplicitSourceViewPath pins the degradation contract: an
// implicit source cannot serve the per-vertex view path (no adjacency rows),
// so WithoutKernels runs under an implicit source must silently take the
// ball-builder path and still match the baseline byte for byte.
func TestRunnerImplicitSourceViewPath(t *testing.T) {
	g := graph.MustTorus(4, 5)
	runner := local.NewRunner()
	runner.SetSource(graph.NewImplicitBalls(g))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		a := ids.Random(g.N(), rng)
		want, err := local.RunView(g, a, largestid.Pruning{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.Run(g, a, largestid.Pruning{}, local.WithoutKernels())
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(got, want) {
			t.Fatalf("trial %d: view-path run under implicit source differs from builder", trial)
		}
	}
}
