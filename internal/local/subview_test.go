package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

// subviewProbe captures views at a fixed radius for later inspection.
type subviewProbe struct {
	radius int
	views  *[]View
}

func (subviewProbe) Name() string { return "subviewProbe" }
func (p subviewProbe) Decide(v View) (int, bool) {
	if v.Radius() < p.radius {
		return 0, false
	}
	// Views are engine-owned and recycled across vertices; retaining one
	// past Decide requires a deep copy.
	*p.views = append(*p.views, v.Clone())
	return 0, true
}

// TestSubviewMatchesDirectView checks that the subview of a neighbour u
// extracted from v's large view canonicalises identically to u's own view
// gathered directly by the engine.
func TestSubviewMatchesDirectView(t *testing.T) {
	for _, g := range []graph.Graph{graph.MustCycle(13), graph.MustPath(11)} {
		n := g.N()
		a := ids.Random(n, rand.New(rand.NewSource(23)))

		var big, small []View
		if _, err := RunView(g, a, subviewProbe{radius: 4, views: &big}); err != nil {
			t.Fatalf("RunView big: %v", err)
		}
		if _, err := RunView(g, a, subviewProbe{radius: 2, views: &small}); err != nil {
			t.Fatalf("RunView small: %v", err)
		}
		// RunView visits vertices 0..n-1 in order, so big[v] is v's view.
		byCenter := make(map[int]View, n)
		for _, w := range small {
			byCenter[w.CenterID()] = w
		}
		for v := 0; v < n; v++ {
			for _, u := range big[v].Neighbors(0) {
				sub, ok := Subview(big[v], u, 2)
				if !ok {
					t.Fatalf("vertex %d: subview of neighbour not extractable", v)
				}
				direct, found := byCenter[sub.CenterID()]
				if !found {
					t.Fatalf("vertex %d: no direct view for centre ID %d", v, sub.CenterID())
				}
				if sub.Canonical() != direct.Canonical() {
					t.Errorf("vertex %d neighbour: subview differs from direct view\nsub:    %s\ndirect: %s",
						v, sub.Canonical(), direct.Canonical())
				}
			}
		}
	}
}

func TestSubviewGuards(t *testing.T) {
	c := graph.MustCycle(9)
	var views []View
	if _, err := RunView(c, ids.Identity(9), subviewProbe{radius: 3, views: &views}); err != nil {
		t.Fatalf("RunView: %v", err)
	}
	v := views[0]
	if _, ok := Subview(v, 0, 4); ok {
		t.Error("subview deeper than radius allowed")
	}
	// A frontier vertex (distance 3) admits only q=0.
	frontier := -1
	for i := 0; i < v.Size(); i++ {
		if v.Dist(i) == 3 {
			frontier = i
			break
		}
	}
	if frontier == -1 {
		t.Fatal("no frontier vertex found")
	}
	if _, ok := Subview(v, frontier, 1); ok {
		t.Error("frontier subview of radius 1 allowed")
	}
	if sub, ok := Subview(v, frontier, 0); !ok || sub.Size() != 1 {
		t.Error("frontier subview of radius 0 should be a single vertex")
	}
	if _, ok := Subview(v, -1, 0); ok {
		t.Error("negative index allowed")
	}
	if _, ok := Subview(v, v.Size(), 0); ok {
		t.Error("out-of-range index allowed")
	}
	if _, ok := Subview(v, 0, -1); ok {
		t.Error("negative radius allowed")
	}
}

func TestSubviewOfSelfIsIdentity(t *testing.T) {
	c := graph.MustCycle(11)
	var views []View
	if _, err := RunView(c, ids.Reversed(11), subviewProbe{radius: 3, views: &views}); err != nil {
		t.Fatalf("RunView: %v", err)
	}
	var smaller []View
	if _, err := RunView(c, ids.Reversed(11), subviewProbe{radius: 2, views: &smaller}); err != nil {
		t.Fatalf("RunView: %v", err)
	}
	for v := range views {
		sub, ok := Subview(views[v], 0, 2)
		if !ok {
			t.Fatalf("self-subview failed at %d", v)
		}
		if sub.Canonical() != smaller[v].Canonical() {
			t.Errorf("vertex %d: self-subview at q=2 differs from direct radius-2 view", v)
		}
	}
}
