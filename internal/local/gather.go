package local

import (
	"repro/internal/graph"
)

// Gather adapts a ViewAlgorithm to the message engine by full-information
// flooding: every node broadcasts everything it knows each round and
// reconstructs its induced ball from the accumulated knowledge. This is the
// textbook equivalence between the two formulations of the LOCAL model.
//
// Round accounting: after t rounds of flooding a node knows the identifier
// and degree of every vertex at distance <= t and the adjacency of every
// vertex at distance <= t-1, which is exactly what is needed to reconstruct
// the induced, degree-annotated ball of radius t-1. A view decision at
// radius r >= 1 therefore lands at round r+1, and a radius-0 decision at
// round 0; the cross-engine tests pin this offset down. The +1 is a
// convention cost (a frontier vertex's own adjacency travels one extra hop)
// with no effect on any asymptotic statement.
type Gather struct {
	alg ViewAlgorithm
}

var _ MessageAlgorithm = (*Gather)(nil)

// NewGather wraps a view algorithm for execution on the message engine.
func NewGather(alg ViewAlgorithm) *Gather {
	return &Gather{alg: alg}
}

// Name reports the wrapped algorithm's name with a gather() prefix.
func (g *Gather) Name() string { return "gather(" + g.alg.Name() + ")" }

// NewNode creates the flooding state machine for one vertex.
func (g *Gather) NewNode(id, degree int) MessageNode {
	n := &gatherNode{
		alg:    g.alg,
		ownID:  id,
		degree: degree,
		know:   make(map[int]record),
	}
	n.know[id] = record{Deg: degree}
	return n
}

// record is one vertex's flooded state: its degree (known as soon as the
// vertex is) and its adjacency list in port order (known one round later;
// nil until then). Adjacency slices are write-once and shared freely.
type record struct {
	Deg int
	Adj []int
}

// announce is the round-1 message: a vertex's identifier and degree.
type announce struct {
	ID  int
	Deg int
}

type gatherNode struct {
	alg    ViewAlgorithm
	ownID  int
	degree int
	round  int
	know   map[int]record

	out     int
	decided bool
}

var _ MessageNode = (*gatherNode)(nil)

// Init tries the radius-0 view and announces the node's identifier and
// degree to all neighbours.
func (n *gatherNode) Init() []any {
	n.tryDecide(0)
	msgs := make([]any, n.degree)
	for p := range msgs {
		msgs[p] = announce{ID: n.ownID, Deg: n.degree}
	}
	return msgs
}

// Round merges received knowledge, attempts a decision on the now-complete
// induced ball of radius round-1, and rebroadcasts a frozen snapshot.
func (n *gatherNode) Round(recv []any) []any {
	n.round++
	if n.round == 1 {
		// First exchange: neighbours' announcements, in port order. This
		// completes the node's own adjacency list.
		own := make([]int, n.degree)
		for p, m := range recv {
			ann, ok := m.(announce)
			if !ok {
				panic("local: gather round-1 message is not an announcement")
			}
			own[p] = ann.ID
			if _, known := n.know[ann.ID]; !known {
				n.know[ann.ID] = record{Deg: ann.Deg}
			}
		}
		rec := n.know[n.ownID]
		rec.Adj = own
		n.know[n.ownID] = rec
	} else {
		for _, m := range recv {
			snapshot, ok := m.(map[int]record)
			if !ok {
				panic("local: gather message is not a knowledge snapshot")
			}
			for id, rec := range snapshot {
				prev, known := n.know[id]
				if !known || (prev.Adj == nil && rec.Adj != nil) {
					n.know[id] = rec
				}
			}
		}
	}
	if !n.decided {
		n.tryDecide(n.round - 1)
	}
	// Freeze a snapshot: copy the map, share the write-once rows.
	snapshot := make(map[int]record, len(n.know))
	for id, rec := range n.know {
		snapshot[id] = rec
	}
	msgs := make([]any, n.degree)
	for p := range msgs {
		msgs[p] = snapshot
	}
	return msgs
}

// Output reports the wrapped algorithm's decision.
func (n *gatherNode) Output() (int, bool) { return n.out, n.decided }

// tryDecide reconstructs the induced ball of radius r from the knowledge
// map and runs the wrapped view algorithm on it.
func (n *gatherNode) tryDecide(r int) {
	view, ok := n.reconstruct(r)
	if !ok {
		return
	}
	if out, done := n.alg.Decide(view); done {
		n.out = out
		n.decided = true
	}
}

// reconstruct builds the induced, degree-annotated ball of radius r (in the
// same BFS/port discovery order as the view engine) purely from
// identifiers. It reports false if some required knowledge is still missing.
func (n *gatherNode) reconstruct(r int) (View, bool) {
	idsInOrder := []int{n.ownID}
	dist := []int{0}
	localOf := map[int]int{n.ownID: 0}
	for head := 0; head < len(idsInOrder); head++ {
		if dist[head] == r {
			continue
		}
		rec, ok := n.know[idsInOrder[head]]
		if !ok || rec.Adj == nil {
			return View{}, false
		}
		for _, w := range rec.Adj {
			if _, seen := localOf[w]; !seen {
				localOf[w] = len(idsInOrder)
				idsInOrder = append(idsInOrder, w)
				dist = append(dist, dist[head]+1)
			}
		}
	}
	adj := make([][]int, len(idsInOrder))
	degrees := make([]int, len(idsInOrder))
	for i, id := range idsInOrder {
		rec, ok := n.know[id]
		if !ok {
			return View{}, false
		}
		degrees[i] = rec.Deg
		if rec.Adj == nil {
			if r == 0 {
				// The radius-0 view has no edges.
				continue
			}
			return View{}, false
		}
		for _, w := range rec.Adj {
			if j, seen := localOf[w]; seen {
				adj[i] = append(adj[i], j)
			}
		}
	}
	frontier := len(idsInOrder)
	for i, d := range dist {
		if d == r {
			frontier = i
			break
		}
	}
	verts := make([]int, len(idsInOrder))
	for i := range verts {
		verts[i] = i // synthetic names; algorithms must not use them
	}
	ball := &graph.Ball{Radius: r, Verts: verts, Dist: dist, Adj: adj}
	return View{ball: ball, ids: idsInOrder, degrees: degrees, frontierStart: frontier}, true
}
