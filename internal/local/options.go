package local

import "context"

// Option configures an engine run.
type Option func(*config)

// Progress describes one decision attempt of the view engine, delivered to
// a WithProgress observer.
type Progress struct {
	// Vertex is the deciding vertex.
	Vertex int
	// Radius is the view radius of the attempt.
	Radius int
	// Decided reports whether the vertex committed at this radius.
	Decided bool
}

type config struct {
	maxRadius int
	observer  func(Progress)
	ctx       context.Context
}

func newConfig(n int, opts []Option) config {
	cfg := config{maxRadius: defaultMaxRadius(n)}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// defaultMaxRadius is the engine safety cap: any correct unknown-n
// algorithm on a connected n-vertex graph decides by the time its ball
// covers the graph, i.e. by radius n.
func defaultMaxRadius(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// WithMaxRadius overrides the safety cap on radii (view engine) or rounds
// (message engine). Executions exceeding the cap fail with an error.
func WithMaxRadius(r int) Option {
	return func(c *config) {
		if r > 0 {
			c.maxRadius = r
		}
	}
}

// WithContext attaches a cancellation context to a view-engine run. The
// engine polls ctx between vertices (every 256 of them, to keep the check
// off the per-decision hot path) and aborts with ctx's error once it is
// cancelled. A nil or background context disables the checks.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		c.ctx = ctx
	}
}

// WithProgress registers an observer invoked by the view engine after
// every decision attempt — the tracing hook for debugging algorithms and
// for radius-profile instrumentation. The callback runs synchronously on
// the engine's goroutine; keep it cheap.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) {
		c.observer = fn
	}
}
