package local

import "context"

// Option configures an engine run.
type Option func(*config)

// Progress describes one decision attempt of the view engine, delivered to
// a WithProgress observer.
type Progress struct {
	// Vertex is the deciding vertex.
	Vertex int
	// Radius is the view radius of the attempt.
	Radius int
	// Decided reports whether the vertex committed at this radius.
	Decided bool
}

type config struct {
	maxRadius int
	observer  func(Progress)
	ctx       context.Context
	noKernels bool
	validated bool
}

func newConfig(n int, opts []Option) config {
	cfg := config{maxRadius: defaultMaxRadius(n)}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// newConfigInto is newConfig resolving into caller-owned storage: applying
// dynamic Option funcs to a stack-local config forces it to escape, so hot
// paths that run per trial (Runner.Run) reuse a struct they already own.
func newConfigInto(cfg *config, n int, opts []Option) {
	*cfg = config{maxRadius: defaultMaxRadius(n)}
	for _, o := range opts {
		o(cfg)
	}
}

// defaultMaxRadius is the engine safety cap: any correct unknown-n
// algorithm on a connected n-vertex graph decides by the time its ball
// covers the graph, i.e. by radius n.
func defaultMaxRadius(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// WithMaxRadius overrides the safety cap on radii (view engine) or rounds
// (message engine). Executions exceeding the cap fail with an error.
func WithMaxRadius(r int) Option {
	return func(c *config) {
		if r > 0 {
			c.maxRadius = r
		}
	}
}

// WithContext attaches a cancellation context to a view-engine run. The
// engine polls ctx between vertices (every 256 of them, to keep the check
// off the per-decision hot path) and aborts with ctx's error once it is
// cancelled. A nil or background context disables the checks.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		c.ctx = ctx
	}
}

// WithoutKernels pins an atlas-backed run to the per-vertex view path even
// when the algorithm implements Kernel. Results are byte-identical either
// way; the toggle exists for A/B profiling and perf bisection (cmd/avgbench
// exposes it as -nokernels).
func WithoutKernels() Option {
	return func(c *config) {
		c.noKernels = true
	}
}

// WithValidatedIDs asserts that the assignment handed to Run is already
// known to be valid (pairwise-distinct, non-negative), skipping the O(n)
// Validate on the engine's hot path. Use only for assignments produced by
// trusted constructors — the sweep engine's internally drawn permutations
// are valid by construction.
func WithValidatedIDs() Option {
	return func(c *config) {
		c.validated = true
	}
}

// WithProgress registers an observer invoked by the view engine after
// every decision attempt — the tracing hook for debugging algorithms and
// for radius-profile instrumentation. The callback runs synchronously on
// the engine's goroutine; keep it cheap.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) {
		c.observer = fn
	}
}
