package local_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// equivFamilies is the graph zoo of the atlas/builder equivalence suite.
func equivFamilies(t *testing.T) []struct {
	name string
	g    graph.Graph
} {
	t.Helper()
	rng := rand.New(rand.NewSource(19))
	tree, err := graph.NewRandomTree(40, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := graph.NewGrid(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := graph.NewGNP(32, 0.1, rng) // likely disconnected: component balls
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		g    graph.Graph
	}{
		{"path", graph.MustPath(33)},
		{"cycle", graph.MustCycle(32)},
		{"tree", tree},
		{"grid", grid},
		{"gnp", gnp},
	}
}

// sameResult compares two executions field by field.
func sameResult(a, b *local.Result) bool {
	if a.Algorithm != b.Algorithm || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for v := range a.Outputs {
		if a.Outputs[v] != b.Outputs[v] || a.Radii[v] != b.Radii[v] {
			return false
		}
	}
	return true
}

// TestRunnerAtlasMatchesBuilder is the engine half of the atlas guarantee:
// across graph families, sizes and identifier permutations, an atlas-backed
// Runner produces byte-identical Results to the ball-builder path.
func TestRunnerAtlasMatchesBuilder(t *testing.T) {
	for _, fam := range equivFamilies(t) {
		n := fam.g.N()
		atlas := graph.NewBallAtlas(fam.g, 0)
		runner := local.NewRunner()
		runner.SetAtlas(atlas)
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 8; trial++ {
			a := ids.Random(n, rng)
			for _, alg := range []local.ViewAlgorithm{largestid.Pruning{}, largestid.FullView{}} {
				want, err := local.RunView(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s builder: %v", fam.name, alg.Name(), err)
				}
				got, err := runner.Run(fam.g, a, alg)
				if err != nil {
					t.Fatalf("%s/%s atlas: %v", fam.name, alg.Name(), err)
				}
				if !sameResult(got, want) {
					t.Fatalf("%s/%s trial %d: atlas result differs from builder", fam.name, alg.Name(), trial)
				}
			}
		}
	}
}

// TestRunnerAtlasMatchesBuilderColouring runs the richer cycle algorithms
// (Cole–Vishkin, the uniform colouring with its Subview probes, composed
// MIS) through the atlas path: they exercise Neighbors, Subview and
// Canonical over shared atlas rows.
func TestRunnerAtlasMatchesBuilderColouring(t *testing.T) {
	c := graph.MustCycle(48)
	atlas := graph.NewBallAtlas(c, 0)
	runner := local.NewRunner()
	runner.SetAtlas(atlas)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		a := ids.Random(48, rng)
		for _, alg := range []local.ViewAlgorithm{
			coloring.ForMaxID(a.MaxID()),
			coloring.Uniform{},
			mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())},
		} {
			want, err := local.RunView(c, a, alg)
			if err != nil {
				t.Fatalf("%s builder: %v", alg.Name(), err)
			}
			got, err := runner.Run(c, a, alg)
			if err != nil {
				t.Fatalf("%s atlas: %v", alg.Name(), err)
			}
			if !sameResult(got, want) {
				t.Fatalf("%s trial %d: atlas result differs from builder", alg.Name(), trial)
			}
		}
	}
}

// TestRunnerAtlasCapFallback pins the degraded mode: with an atlas too
// small for the graph's balls, the Runner transparently reruns capped
// vertices on the builder path and results stay identical.
func TestRunnerAtlasCapFallback(t *testing.T) {
	c := graph.MustCycle(96)
	atlas := graph.NewBallAtlas(c, 2048) // forces mid-sweep exhaustion
	runner := local.NewRunner()
	runner.SetAtlas(atlas)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		a := ids.Random(96, rng)
		want, err := local.RunView(c, a, largestid.Pruning{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.Run(c, a, largestid.Pruning{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(got, want) {
			t.Fatalf("trial %d: capped-atlas result differs from builder", trial)
		}
	}
	if !atlas.Exhausted() {
		t.Fatal("2 KiB atlas over a 96-cycle sweep should have exhausted")
	}
}

// TestRunnerAtlasWrongGraphIgnored: an attached atlas for a different graph
// must be ignored, not misused.
func TestRunnerAtlasWrongGraphIgnored(t *testing.T) {
	c1, c2 := graph.MustCycle(16), graph.MustCycle(24)
	runner := local.NewRunner()
	runner.SetAtlas(graph.NewBallAtlas(c1, 0))
	a := ids.Reversed(24)
	want, err := local.RunView(c2, a, largestid.Pruning{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Run(c2, a, largestid.Pruning{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(got, want) {
		t.Fatal("mismatched atlas corrupted the run")
	}
}

// TestRunnerAtlasMaxRadiusError: the safety-cap error must fire at the same
// point with identical text on both paths.
func TestRunnerAtlasMaxRadiusError(t *testing.T) {
	c := graph.MustCycle(12)
	a := ids.Identity(12)
	runner := local.NewRunner()
	runner.SetAtlas(graph.NewBallAtlas(c, 0))
	_, wantErr := local.RunView(c, a, neverDecides{}, local.WithMaxRadius(3))
	_, gotErr := runner.Run(c, a, neverDecides{}, local.WithMaxRadius(3))
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("cap errors diverge: builder=%v atlas=%v", wantErr, gotErr)
	}
}

type neverDecides struct{}

func (neverDecides) Name() string                  { return "never" }
func (neverDecides) Decide(local.View) (int, bool) { return 0, false }

// TestRunnerAtlasSharedRace hammers ONE atlas from many concurrently
// growing workers, each with its own Runner and its own permutations, and
// checks every result against the builder path. CI runs this package under
// -race; lock-free snapshot reads and per-centre growth must both hold up.
func TestRunnerAtlasSharedRace(t *testing.T) {
	c := graph.MustCycle(64)
	atlas := graph.NewBallAtlas(c, 0)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			runner := local.NewRunner()
			runner.SetAtlas(atlas)
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 6; trial++ {
				a := ids.Random(64, rng)
				want, err := local.RunView(c, a, largestid.Pruning{})
				if err != nil {
					errs <- err
					return
				}
				got, err := runner.Run(c, a, largestid.Pruning{})
				if err != nil {
					errs <- err
					return
				}
				if !sameResult(got, want) {
					errs <- fmt.Errorf("worker seed %d trial %d: atlas diverged", seed, trial)
					return
				}
			}
		}(int64(w + 100))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
