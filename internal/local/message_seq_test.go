package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

// TestSeqMatchesConcurrentEngine is the executable-specification check:
// the goroutine engine and the sequential engine must produce identical
// results for every algorithm and instance.
func TestSeqMatchesConcurrentEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	generic := []MessageAlgorithm{
		immediateMsg{},
		fixedRoundsMsg{k: 3},
		minFloodMsg{},
		NewGather(waitAlg{k: 2}),
	}
	cases := []struct {
		g    graph.Graph
		algs []MessageAlgorithm
	}{
		{graph.MustCycle(9), append([]MessageAlgorithm{NewGather(maxInCycleAlg{})}, generic...)},
		{graph.MustCycle(12), append([]MessageAlgorithm{NewGather(maxInCycleAlg{})}, generic...)},
		{graph.MustPath(7), generic},
	}
	for _, tc := range cases {
		g := tc.g
		a := ids.Random(g.N(), rng)
		for _, alg := range tc.algs {
			conc, err := RunMessage(g, a, alg)
			if err != nil {
				t.Fatalf("%s concurrent: %v", alg.Name(), err)
			}
			seq, err := RunMessageSeq(g, a, alg)
			if err != nil {
				t.Fatalf("%s sequential: %v", alg.Name(), err)
			}
			for v := 0; v < g.N(); v++ {
				if conc.Outputs[v] != seq.Outputs[v] {
					t.Errorf("%s vertex %d: outputs differ (conc %d, seq %d)",
						alg.Name(), v, conc.Outputs[v], seq.Outputs[v])
				}
				if conc.Radii[v] != seq.Radii[v] {
					t.Errorf("%s vertex %d: rounds differ (conc %d, seq %d)",
						alg.Name(), v, conc.Radii[v], seq.Radii[v])
				}
			}
		}
	}
}

func TestSeqEngineBasics(t *testing.T) {
	c := graph.MustCycle(8)
	a := ids.Reversed(8)
	res, err := RunMessageSeq(c, a, immediateMsg{})
	if err != nil {
		t.Fatalf("RunMessageSeq: %v", err)
	}
	for v := 0; v < 8; v++ {
		if res.Outputs[v] != a[v] || res.Radii[v] != 0 {
			t.Errorf("vertex %d: out=%d round=%d", v, res.Outputs[v], res.Radii[v])
		}
	}
}

func TestSeqEngineRoundCap(t *testing.T) {
	c := graph.MustCycle(6)
	if _, err := RunMessageSeq(c, ids.Identity(6), fixedRoundsMsg{k: 10}, WithMaxRadius(3)); err == nil {
		t.Fatal("round cap did not trigger")
	}
}

func TestSeqEngineRejectsBadInput(t *testing.T) {
	c := graph.MustCycle(5)
	if _, err := RunMessageSeq(c, ids.Identity(3), immediateMsg{}); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := ids.Assignment{0, 1, 1, 2, 3}
	if _, err := RunMessageSeq(c, bad, immediateMsg{}); err == nil {
		t.Error("duplicate identifiers accepted")
	}
}

func TestSeqEngineEmptyGraph(t *testing.T) {
	res, err := RunMessageSeq(graph.MustAdj(0, nil), ids.Identity(0), immediateMsg{})
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if res.N() != 0 {
		t.Errorf("N = %d", res.N())
	}
}
