package local

// Result captures one execution of an algorithm on one graph with one
// identifier assignment: the per-vertex outputs and the per-vertex radii
// (view engine) or decision rounds (message engine).
type Result struct {
	// Algorithm is the Name() of the executed algorithm.
	Algorithm string
	// Outputs[v] is vertex v's committed output.
	Outputs []int
	// Radii[v] is the radius (or round) at which vertex v decided. This is
	// the r(v) of the paper; MaxRadius and AvgRadius are the two measures
	// under comparison.
	Radii []int
}

// N reports the number of vertices in the execution.
func (r *Result) N() int { return len(r.Radii) }

// MaxRadius is the classic running-time measure: max_v r(v).
func (r *Result) MaxRadius() int {
	max := 0
	for _, x := range r.Radii {
		if x > max {
			max = x
		}
	}
	return max
}

// SumRadii is Σ_v r(v), the quantity bounded by the paper's recurrence a(p).
func (r *Result) SumRadii() int {
	sum := 0
	for _, x := range r.Radii {
		sum += x
	}
	return sum
}

// AvgRadius is the paper's measure: (Σ_v r(v)) / n.
func (r *Result) AvgRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	return float64(r.SumRadii()) / float64(len(r.Radii))
}
