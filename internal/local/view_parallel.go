package local

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/ids"
)

// RunViewParallel is RunView with the per-vertex executions spread over a
// bounded worker pool. Vertices of the view engine are independent by
// construction (each grows its own ball; the graph and assignment are
// immutable), so the results are bit-identical to RunView — asserted in
// tests — while large sweeps use all cores.
//
// The observer option is supported; callbacks may arrive from concurrent
// workers and must be safe for concurrent use in this engine.
func RunViewParallel(g graph.Graph, a ids.Assignment, alg ViewAlgorithm, opts ...Option) (*Result, error) {
	n := g.N()
	if len(a) != n {
		return nil, fmt.Errorf("local: assignment covers %d vertices, graph has %d", len(a), n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cfg := newConfig(n, opts)
	res := &Result{
		Algorithm: alg.Name(),
		Outputs:   make([]int, n),
		Radii:     make([]int, n),
	}
	if n == 0 {
		return res, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		next     int64
		mu       sync.Mutex
		firstErr error
	)
	nextVertex := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= int64(n) {
			return -1
		}
		v := int(next)
		next++
		return v
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := NewRunner() // per-worker scratch, reused across vertices
			for {
				v := nextVertex()
				if v < 0 {
					return
				}
				if cfg.ctx != nil {
					if err := cfg.ctx.Err(); err != nil {
						fail(err)
						return
					}
				}
				out, r, err := runner.runVertex(g, a, alg, v, cfg)
				if err != nil {
					fail(err)
					return
				}
				res.Outputs[v] = out
				res.Radii[v] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
