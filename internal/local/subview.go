package local

import "repro/internal/graph"

// Subview reconstructs the radius-q view of another vertex visible in v.
// It returns ok=false when v does not contain enough information: the ball
// of radius q around the other vertex must provably lie inside v, which
// holds when Dist(at) + q <= Radius() — or unconditionally when v is
// complete (it then contains the entire connected component).
//
// Subview is what lets one node simulate the decisions of nearby nodes — the
// ingredient behind composed algorithms (MIS from colouring), the uniform
// colouring's neighbour-commitment checks, and the minimality audits of the
// lower-bound machinery.
func Subview(v View, at, q int) (View, bool) {
	if at < 0 || at >= v.Size() || q < 0 {
		return View{}, false
	}
	if v.Dist(at)+q > v.Radius() && !v.Complete() {
		return View{}, false
	}
	// BFS inside the view from `at`, cut at distance q, following each
	// vertex's port order — the same discovery order the engines use.
	order := []int{at} // local indices of v
	dist := []int{0}
	localOf := map[int]int{at: 0}
	for head := 0; head < len(order); head++ {
		if dist[head] == q {
			continue
		}
		for _, w := range v.Neighbors(order[head]) {
			if _, seen := localOf[w]; !seen {
				localOf[w] = len(order)
				order = append(order, w)
				dist = append(dist, dist[head]+1)
			}
		}
	}
	adj := make([][]int, len(order))
	idsOut := make([]int, len(order))
	degOut := make([]int, len(order))
	for i, oldIdx := range order {
		idsOut[i] = v.ID(oldIdx)
		degOut[i] = v.TrueDegree(oldIdx)
		for _, w := range v.Neighbors(oldIdx) {
			if j, seen := localOf[w]; seen {
				// Induced edge: both endpoints within distance q of `at`.
				adj[i] = append(adj[i], j)
			}
		}
	}
	frontier := len(order)
	for i, d := range dist {
		if d == q {
			frontier = i
			break
		}
	}
	verts := make([]int, len(order))
	for i := range verts {
		verts[i] = i // synthetic names, as in the gather reconstruction
	}
	ball := &graph.Ball{Radius: q, Verts: verts, Dist: dist, Adj: adj}
	return View{ball: ball, ids: idsOut, degrees: degOut, frontierStart: frontier}, true
}
