package local_test

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// firstLargerAlg answers 1 as soon as it sees an identifier above 100 and
// 0 if its view completes first — a minimal custom ViewAlgorithm.
type firstLargerAlg struct{}

func (firstLargerAlg) Name() string { return "firstLarger" }
func (firstLargerAlg) Decide(v local.View) (int, bool) {
	for i := v.FrontierStart(); i < v.Size(); i++ {
		if v.ID(i) > 100 {
			return 1, true
		}
	}
	if v.Complete() {
		return 0, true
	}
	return 0, false
}

// ExampleRunView shows the ball formulation: per-vertex radii are the r(v)
// the paper's measures aggregate.
func ExampleRunView() {
	ring := graph.MustCycle(6)
	assignment, err := ids.FromPerm([]int{1, 2, 3, 101, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := local.RunView(ring, assignment, firstLargerAlg{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("radii:", res.Radii)
	fmt.Printf("max=%d avg=%.2f\n", res.MaxRadius(), res.AvgRadius())
	// Output:
	// radii: [3 2 1 0 1 2]
	// max=3 avg=1.50
}

// ExampleRunMessage runs the same algorithm in the round-based formulation
// through the full-information gather adapter: rounds equal radii plus the
// documented +1 convention offset.
func ExampleRunMessage() {
	ring := graph.MustCycle(6)
	assignment, err := ids.FromPerm([]int{1, 2, 3, 101, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := local.RunMessage(ring, assignment, local.NewGather(firstLargerAlg{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rounds:", res.Radii)
	// Output:
	// rounds: [4 3 2 0 2 3]
}
