package local

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

func TestWithProgressObservesEveryAttempt(t *testing.T) {
	c := graph.MustCycle(6)
	var events []Progress
	res, err := RunView(c, ids.Identity(6), waitAlg{k: 2},
		WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	// Every vertex attempts radii 0, 1, 2 — three events each.
	if len(events) != 18 {
		t.Fatalf("observed %d events, want 18", len(events))
	}
	perVertex := map[int][]Progress{}
	for _, e := range events {
		perVertex[e.Vertex] = append(perVertex[e.Vertex], e)
	}
	for v := 0; v < 6; v++ {
		seq := perVertex[v]
		if len(seq) != 3 {
			t.Fatalf("vertex %d: %d events", v, len(seq))
		}
		for i, e := range seq {
			if e.Radius != i {
				t.Errorf("vertex %d event %d: radius %d", v, i, e.Radius)
			}
			wantDecided := i == 2
			if e.Decided != wantDecided {
				t.Errorf("vertex %d event %d: decided=%v", v, i, e.Decided)
			}
		}
		if seq[2].Radius != res.Radii[v] {
			t.Errorf("vertex %d: last observed radius %d != recorded %d",
				v, seq[2].Radius, res.Radii[v])
		}
	}
}

func TestWithProgressNilSafe(t *testing.T) {
	c := graph.MustCycle(4)
	if _, err := RunView(c, ids.Identity(4), echoAlg{}, WithProgress(nil)); err != nil {
		t.Fatalf("nil observer: %v", err)
	}
}

func TestWithMaxRadiusIgnoresNonPositive(t *testing.T) {
	c := graph.MustCycle(8)
	// Zero and negative caps fall back to the default (n), so a radius-3
	// algorithm still completes.
	if _, err := RunView(c, ids.Identity(8), waitAlg{k: 3}, WithMaxRadius(0)); err != nil {
		t.Errorf("cap 0: %v", err)
	}
	if _, err := RunView(c, ids.Identity(8), waitAlg{k: 3}, WithMaxRadius(-5)); err != nil {
		t.Errorf("cap -5: %v", err)
	}
}
