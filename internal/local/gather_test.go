package local

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

// TestGatherEquivalence is the engine-equivalence theorem in executable
// form: for any view algorithm, the message engine running the gather
// adapter produces identical outputs, and decision rounds equal decision
// radii shifted by the documented +1 convention offset (radius 0 stays 0).
func TestGatherEquivalence(t *testing.T) {
	algs := []ViewAlgorithm{
		echoAlg{},
		waitAlg{k: 2},
		maxInCycleAlg{},
	}
	gs := map[string]graph.Graph{
		"C7":  graph.MustCycle(7),
		"C12": graph.MustCycle(12),
	}
	for gname, g := range gs {
		a := ids.Random(g.N(), rand.New(rand.NewSource(17)))
		for _, alg := range algs {
			view, err := RunView(g, a, alg)
			if err != nil {
				t.Fatalf("%s/%s: RunView: %v", gname, alg.Name(), err)
			}
			msg, err := RunMessage(g, a, NewGather(alg))
			if err != nil {
				t.Fatalf("%s/%s: RunMessage: %v", gname, alg.Name(), err)
			}
			for v := 0; v < g.N(); v++ {
				if view.Outputs[v] != msg.Outputs[v] {
					t.Errorf("%s/%s: vertex %d outputs differ: view %d, msg %d",
						gname, alg.Name(), v, view.Outputs[v], msg.Outputs[v])
				}
				want := view.Radii[v]
				if want > 0 {
					want++
				}
				if msg.Radii[v] != want {
					t.Errorf("%s/%s: vertex %d rounds = %d, want %d (radius %d)",
						gname, alg.Name(), v, msg.Radii[v], want, view.Radii[v])
				}
			}
		}
	}
}

// TestGatherOnNonRegular runs the adapter on a path, where degrees differ
// and the reconstruction must respect per-vertex port counts.
func TestGatherOnNonRegular(t *testing.T) {
	p := graph.MustPath(6)
	a := ids.Reversed(6)
	// seesEndpoint decides once its view contains a degree-1 vertex or is
	// closed; on a path every vertex decides at its distance to the nearer
	// endpoint.
	alg := seesEndpointAlg{}
	view, err := RunView(p, a, alg)
	if err != nil {
		t.Fatalf("RunView: %v", err)
	}
	msg, err := RunMessage(p, a, NewGather(alg))
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	for v := 0; v < 6; v++ {
		near := v
		if 5-v < near {
			near = 5 - v
		}
		if view.Radii[v] != near {
			t.Errorf("view radius[%d] = %d, want %d", v, view.Radii[v], near)
		}
		want := view.Radii[v]
		if want > 0 {
			want++
		}
		if msg.Radii[v] != want {
			t.Errorf("msg round[%d] = %d, want %d", v, msg.Radii[v], want)
		}
	}
}

// seesEndpointAlg outputs 1 once its view contains a vertex of true degree
// < 2 — on a path, a vertex decides exactly at its distance to the nearer
// endpoint (degrees travel with identifiers, so endpoints are recognisable
// the moment they become visible).
type seesEndpointAlg struct{}

func (seesEndpointAlg) Name() string { return "seesEndpoint" }
func (seesEndpointAlg) Decide(v View) (int, bool) {
	for i := 0; i < v.Size(); i++ {
		if v.TrueDegree(i) < 2 {
			return 1, true
		}
	}
	return 0, false
}
