package local

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
)

// immediateMsg decides at round 0 with output = own identifier.
type immediateMsg struct{}

func (immediateMsg) Name() string { return "immediateMsg" }
func (immediateMsg) NewNode(id, degree int) MessageNode {
	return &immediateNode{id: id, degree: degree}
}

type immediateNode struct {
	id, degree int
}

func (n *immediateNode) Init() []any         { return make([]any, n.degree) }
func (n *immediateNode) Round([]any) []any   { return make([]any, n.degree) }
func (n *immediateNode) Output() (int, bool) { return n.id, true }

// fixedRoundsMsg decides at round k with output 7, sending counters around.
type fixedRoundsMsg struct{ k int }

func (fixedRoundsMsg) Name() string { return "fixedRounds" }
func (a fixedRoundsMsg) NewNode(_, degree int) MessageNode {
	return &fixedRoundsNode{k: a.k, degree: degree}
}

type fixedRoundsNode struct {
	k, degree, round int
}

func (n *fixedRoundsNode) Init() []any { return make([]any, n.degree) }
func (n *fixedRoundsNode) Round([]any) []any {
	n.round++
	return make([]any, n.degree)
}
func (n *fixedRoundsNode) Output() (int, bool) { return 7, n.round >= n.k }

// minFloodMsg floods the minimum identifier seen; a node decides once it
// has seen identifier 0. Its decision round is its distance to the vertex
// holding 0, which exercises relaying through already-decided nodes.
type minFloodMsg struct{}

func (minFloodMsg) Name() string { return "minFlood" }
func (minFloodMsg) NewNode(id, degree int) MessageNode {
	return &minFloodNode{min: id, degree: degree}
}

type minFloodNode struct {
	min, degree int
}

func (n *minFloodNode) Init() []any { return n.broadcast() }
func (n *minFloodNode) Round(recv []any) []any {
	for _, m := range recv {
		if id, ok := m.(int); ok && id < n.min {
			n.min = id
		}
	}
	return n.broadcast()
}
func (n *minFloodNode) broadcast() []any {
	msgs := make([]any, n.degree)
	for p := range msgs {
		msgs[p] = n.min
	}
	return msgs
}
func (n *minFloodNode) Output() (int, bool) { return n.min, n.min == 0 }

func TestRunMessageImmediate(t *testing.T) {
	c := graph.MustCycle(8)
	a := ids.Reversed(8)
	res, err := RunMessage(c, a, immediateMsg{})
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	for v := 0; v < 8; v++ {
		if res.Outputs[v] != a[v] {
			t.Errorf("output[%d] = %d, want %d", v, res.Outputs[v], a[v])
		}
		if res.Radii[v] != 0 {
			t.Errorf("round[%d] = %d, want 0", v, res.Radii[v])
		}
	}
}

func TestRunMessageFixedRounds(t *testing.T) {
	c := graph.MustCycle(10)
	res, err := RunMessage(c, ids.Identity(10), fixedRoundsMsg{k: 4})
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	for v, r := range res.Radii {
		if r != 4 {
			t.Errorf("round[%d] = %d, want 4", v, r)
		}
		if res.Outputs[v] != 7 {
			t.Errorf("output[%d] = %d, want 7", v, res.Outputs[v])
		}
	}
}

func TestRunMessageMinFloodDistances(t *testing.T) {
	// Identifier 0 sits at vertex 3; each vertex's decision round must be
	// its ring distance to vertex 3, proving decided nodes keep relaying.
	c := graph.MustCycle(9)
	perm := []int{5, 6, 7, 0, 8, 1, 2, 3, 4}
	a, err := ids.FromPerm(perm)
	if err != nil {
		t.Fatalf("FromPerm: %v", err)
	}
	res, err := RunMessage(c, a, minFloodMsg{})
	if err != nil {
		t.Fatalf("RunMessage: %v", err)
	}
	for v := 0; v < 9; v++ {
		want := c.Dist(v, 3)
		if res.Radii[v] != want {
			t.Errorf("round[%d] = %d, want %d", v, res.Radii[v], want)
		}
		if res.Outputs[v] != 0 {
			t.Errorf("output[%d] = %d, want 0", v, res.Outputs[v])
		}
	}
}

func TestRunMessageOnPathAndTree(t *testing.T) {
	// Non-regular topologies exercise per-vertex degrees and reverse ports.
	p := graph.MustPath(7)
	a, err := ids.MaxAt(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	inv := a.Clone()
	for v := range inv {
		inv[v] = 6 - a[v] // identifier 0 lands at vertex 0's max... recompute below
	}
	res, err := RunMessage(p, inv, minFloodMsg{})
	if err != nil {
		t.Fatalf("RunMessage on path: %v", err)
	}
	zeroAt := -1
	for v, id := range inv {
		if id == 0 {
			zeroAt = v
		}
	}
	for v := 0; v < 7; v++ {
		want := graph.Dist(p, v, zeroAt)
		if res.Radii[v] != want {
			t.Errorf("path round[%d] = %d, want %d", v, res.Radii[v], want)
		}
	}
}

func TestRunMessageRoundCap(t *testing.T) {
	c := graph.MustCycle(6)
	if _, err := RunMessage(c, ids.Identity(6), fixedRoundsMsg{k: 10}, WithMaxRadius(3)); err == nil {
		t.Fatal("round cap did not trigger")
	}
}

func TestRunMessageRejectsBadAssignment(t *testing.T) {
	c := graph.MustCycle(5)
	if _, err := RunMessage(c, ids.Identity(3), immediateMsg{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRunMessageEmptyGraph(t *testing.T) {
	g := graph.MustAdj(0, nil)
	res, err := RunMessage(g, ids.Identity(0), immediateMsg{})
	if err != nil {
		t.Fatalf("RunMessage on empty graph: %v", err)
	}
	if res.N() != 0 {
		t.Errorf("N = %d, want 0", res.N())
	}
}
