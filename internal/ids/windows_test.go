package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRotate(t *testing.T) {
	a := Assignment{10, 11, 12, 13, 14}
	r := a.Rotate(2)
	want := Assignment{12, 13, 14, 10, 11}
	for v := range want {
		if r[v] != want[v] {
			t.Fatalf("Rotate(2) = %v, want %v", r, want)
		}
	}
}

func TestRotateNegativeAndWraparound(t *testing.T) {
	a := Assignment{0, 1, 2, 3}
	cases := []struct{ k, at, want int }{
		{-1, 0, 3},
		{4, 1, 1},
		{5, 0, 1},
		{-4, 2, 2},
	}
	for _, c := range cases {
		if got := a.Rotate(c.k)[c.at]; got != c.want {
			t.Errorf("Rotate(%d)[%d] = %d, want %d", c.k, c.at, got, c.want)
		}
	}
}

func TestRotateEmpty(t *testing.T) {
	var a Assignment
	if got := a.Rotate(3); len(got) != 0 {
		t.Errorf("Rotate of empty = %v", got)
	}
}

func TestRotatePreservesValidity(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		a := Random(30, rand.New(rand.NewSource(seed)))
		return a.Rotate(int(kRaw)).Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("Rotate broke validity: %v", err)
	}
}

func TestWindow(t *testing.T) {
	a := Assignment{0, 1, 2, 3, 4, 5, 6}
	w, err := a.Window(3, 2)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("Window = %v, want %v", w, want)
		}
	}
}

func TestWindowWrapsAround(t *testing.T) {
	a := Assignment{0, 1, 2, 3, 4}
	w, err := a.Window(0, 1)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	want := []int{4, 0, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("Window wrap = %v, want %v", w, want)
		}
	}
}

func TestWindowErrors(t *testing.T) {
	a := Assignment{0, 1, 2}
	if _, err := a.Window(0, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := a.Window(0, 2); err == nil {
		t.Error("oversized window accepted")
	}
	var empty Assignment
	if _, err := empty.Window(0, 0); err == nil {
		t.Error("window of empty assignment accepted")
	}
}

func TestFromWindows(t *testing.T) {
	a, err := FromWindows(6, [][]int{{3, 4}, {0, 5}}, []int{1, 2})
	if err != nil {
		t.Fatalf("FromWindows: %v", err)
	}
	want := Assignment{3, 4, 0, 5, 1, 2}
	for v := range want {
		if a[v] != want[v] {
			t.Fatalf("FromWindows = %v, want %v", a, want)
		}
	}
}

func TestFromWindowsErrors(t *testing.T) {
	if _, err := FromWindows(4, [][]int{{0, 1}}, []int{2}); err == nil {
		t.Error("short cover accepted")
	}
	if _, err := FromWindows(3, [][]int{{0, 1}}, []int{1}); err == nil {
		t.Error("duplicate IDs across windows accepted")
	}
}

// TestWindowTransplantPreservesWindow checks the slice-transplant identity
// the Theorem 1 construction relies on: extracting a window and re-laying it
// at the start of a fresh permutation places the same identifiers around the
// new centre.
func TestWindowTransplantPreservesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Random(21, rng)
	const r = 3
	w, err := a.Window(10, r)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	used := make(map[int]bool, len(w))
	for _, id := range w {
		used[id] = true
	}
	var rest []int
	for _, id := range a {
		if !used[id] {
			rest = append(rest, id)
		}
	}
	pi, err := FromWindows(len(a), [][]int{w}, rest)
	if err != nil {
		t.Fatalf("FromWindows: %v", err)
	}
	got, err := pi.Window(r, r) // centre of the transplanted window
	if err != nil {
		t.Fatalf("Window on pi: %v", err)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("transplanted window = %v, want %v", got, w)
		}
	}
}
