package ids

import "testing"

// TestStreamPermBijective checks that the cycle-walked Feistel evaluation
// is a permutation of [0, n) at sizes straddling the even-bit domain
// boundaries (n = 4^k exactly fills a domain; n = 4^k + 1 forces walking).
func TestStreamPermBijective(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 15, 16, 17, 63, 64, 65, 100, 1000, 4096, 4097} {
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			p := NewStreamPerm(n, seed)
			seen := make([]bool, n)
			for v := 0; v < n; v++ {
				id := p.ID(v)
				if id < 0 || id >= n {
					t.Fatalf("n=%d seed=%d: ID(%d)=%d out of range", n, seed, v, id)
				}
				if seen[id] {
					t.Fatalf("n=%d seed=%d: ID(%d)=%d repeated", n, seed, v, id)
				}
				seen[id] = true
			}
		}
	}
}

// TestStreamIntoMatchesPointwise pins the buffered form to the point-wise
// evaluator and to the Assignment contract.
func TestStreamIntoMatchesPointwise(t *testing.T) {
	buf := make([]int, 257)
	a := StreamInto(buf, 99)
	if err := a.Validate(); err != nil {
		t.Fatalf("StreamInto produced an invalid assignment: %v", err)
	}
	p := NewStreamPerm(len(buf), 99)
	for v := range buf {
		if buf[v] != p.ID(v) {
			t.Fatalf("StreamInto[%d]=%d, ID says %d", v, buf[v], p.ID(v))
		}
	}
}

// TestStreamPermDeterministicAndSeeded checks reproducibility under equal
// seeds and divergence under different ones.
func TestStreamPermDeterministicAndSeeded(t *testing.T) {
	const n = 512
	a := StreamInto(make([]int, n), 7)
	b := StreamInto(make([]int, n), 7)
	for v := 0; v < n; v++ {
		if a[v] != b[v] {
			t.Fatalf("equal seeds diverge at %d: %d vs %d", v, a[v], b[v])
		}
	}
	c := StreamInto(make([]int, n), 8)
	same := 0
	for v := 0; v < n; v++ {
		if a[v] == c[v] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical permutations")
	}
}
