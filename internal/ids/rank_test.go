package ids

import (
	"reflect"
	"testing"
)

func TestFactorial(t *testing.T) {
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 5: 120, 10: 3628800, 20: 2432902008176640000}
	for n, w := range want {
		got, err := Factorial(n)
		if err != nil {
			t.Fatalf("Factorial(%d): %v", n, err)
		}
		if got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	for _, n := range []int{-1, MaxRankN + 1} {
		if _, err := Factorial(n); err == nil {
			t.Errorf("Factorial(%d) accepted", n)
		}
	}
}

// TestUnrankEndpoints pins the lexicographic convention: rank 0 is the
// identity, rank n!-1 the descending assignment.
func TestUnrankEndpoints(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 9} {
		f, err := Factorial(n)
		if err != nil {
			t.Fatal(err)
		}
		first, err := Unrank(0, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, Identity(n)) {
			t.Errorf("n=%d: Unrank(0) = %v, want identity", n, first)
		}
		last, err := Unrank(f-1, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(last, Reversed(n)) {
			t.Errorf("n=%d: Unrank(n!-1) = %v, want descending", n, last)
		}
		if _, err := Unrank(f, n); err == nil {
			t.Errorf("n=%d: out-of-range rank accepted", n)
		}
	}
}

// TestRankUnrankExhaustive round-trips every rank of small sizes in both
// directions and checks NextInto walks ranks in order — the invariant the
// sweep engine's block partition stands on.
func TestRankUnrankExhaustive(t *testing.T) {
	for n := 1; n <= 6; n++ {
		f, err := Factorial(n)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]int, n)
		walk := UnrankInto(make([]int, n), 0)
		for r := uint64(0); r < f; r++ {
			a := UnrankInto(buf, r)
			if err := a.Validate(); err != nil {
				t.Fatalf("n=%d rank %d: invalid permutation %v: %v", n, r, a, err)
			}
			got, err := a.Rank()
			if err != nil {
				t.Fatalf("n=%d rank %d: Rank(%v): %v", n, r, a, err)
			}
			if got != r {
				t.Fatalf("n=%d: Rank(Unrank(%d)) = %d", n, r, got)
			}
			if !reflect.DeepEqual(a, walk) {
				t.Fatalf("n=%d rank %d: successor walk diverged: unrank %v, walk %v", n, r, a, walk)
			}
			if advanced := NextInto(walk); advanced != (r+1 < f) {
				t.Fatalf("n=%d rank %d: NextInto = %v", n, r, advanced)
			}
		}
	}
}

func TestRankRejectsNonPermutations(t *testing.T) {
	for _, a := range []Assignment{
		{0, 0, 1},  // duplicate
		{0, 1, 3},  // out of range
		{-1, 1, 0}, // negative
		make(Assignment, MaxRankN+1),
	} {
		if _, err := a.Rank(); err == nil {
			t.Errorf("Rank(%v) accepted", a)
		}
	}
}

// FuzzRankUnrank drives the round trip from arbitrary coordinates: any
// (rank mod n!) must unrank to a valid permutation that ranks back to
// itself, and its lexicographic successor must carry rank+1.
func FuzzRankUnrank(f *testing.F) {
	f.Add(uint64(0), uint8(1))
	f.Add(uint64(5), uint8(3))
	f.Add(uint64(3628799), uint8(10))
	f.Add(uint64(1<<60), uint8(12))
	f.Fuzz(func(t *testing.T, rank uint64, size uint8) {
		n := int(size%12) + 1
		fact, err := Factorial(n)
		if err != nil {
			t.Fatal(err)
		}
		r := rank % fact
		a, err := Unrank(r, n)
		if err != nil {
			t.Fatalf("Unrank(%d, %d): %v", r, n, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Unrank(%d, %d) = %v invalid: %v", r, n, a, err)
		}
		got, err := a.Rank()
		if err != nil {
			t.Fatalf("Rank(%v): %v", a, err)
		}
		if got != r {
			t.Fatalf("Rank(Unrank(%d, %d)) = %d", r, n, got)
		}
		if NextInto(a) {
			next, err := a.Rank()
			if err != nil {
				t.Fatalf("Rank(successor): %v", err)
			}
			if next != r+1 {
				t.Fatalf("successor of rank %d ranks %d", r, next)
			}
		} else if r != fact-1 {
			t.Fatalf("NextInto refused to advance rank %d of %d!", r, n)
		}
	})
}
