package ids

import "fmt"

// Factorial-number-system ranking. Permutations of {0..n-1} are totally
// ordered lexicographically, and the Lehmer code gives a bijection between
// a permutation and its rank in [0, n!). This is what lets exhaustive
// enumeration shard: the rank space splits into contiguous per-worker
// blocks, each worker unranks its block's first permutation once and walks
// lexicographic successors in place — no coordination, every permutation
// visited exactly once, independent of the worker count.

// MaxRankN is the largest n whose n! fits the uint64 rank space (20! < 2^62;
// 21! overflows int64 and is hopeless to enumerate anyway).
const MaxRankN = 20

// FactorialRangeError reports an n whose factorial (and hence rank space)
// does not fit uint64 — the typed form callers match with errors.As to
// distinguish "too big to enumerate" from malformed input.
type FactorialRangeError struct {
	// N is the requested permutation length.
	N int
}

func (e *FactorialRangeError) Error() string {
	return fmt.Sprintf("ids: factorial of %d outside [0,%d]: %d! overflows the uint64 rank space", e.N, MaxRankN, e.N)
}

// RankRangeError reports a rank at or beyond n!, the end of the
// lexicographic permutation space.
type RankRangeError struct {
	// Rank is the offending rank, Max the exclusive bound n!.
	Rank, Max uint64
	// N is the permutation length whose space Rank missed.
	N int
}

func (e *RankRangeError) Error() string {
	return fmt.Sprintf("ids: rank %d out of range [0,%d): the %d-permutation space ends at %d!-1", e.Rank, e.Max, e.N, e.N)
}

// Factorial returns n! for 0 <= n <= MaxRankN; outside that range the error
// is a *FactorialRangeError.
func Factorial(n int) (uint64, error) {
	if n < 0 || n > MaxRankN {
		return 0, &FactorialRangeError{N: n}
	}
	f := uint64(1)
	for i := 2; i <= n; i++ {
		f *= uint64(i)
	}
	return f, nil
}

// Rank returns the lexicographic index of a among all permutations of
// {0..n-1}: the Lehmer code Σ_i L_i·(n-1-i)!, where L_i counts the entries
// right of position i smaller than a[i]. The assignment must be a
// permutation of {0..n-1} with n <= MaxRankN. Rank is the inverse of
// Unrank: a.Rank() == r ⇔ Unrank(r, len(a)) equals a.
func (a Assignment) Rank() (uint64, error) {
	n := len(a)
	if n > MaxRankN {
		return 0, fmt.Errorf("ids: rank of %d-permutation: %w", n, &FactorialRangeError{N: n})
	}
	var seen [MaxRankN]bool
	for v, id := range a {
		if id < 0 || id >= n || seen[id] {
			return 0, fmt.Errorf("ids: vertex %d: identifier %d is not part of a {0..%d} permutation", v, id, n-1)
		}
		seen[id] = true
	}
	f, _ := Factorial(n) // n <= MaxRankN checked above
	rank := uint64(0)
	for i := 0; i < n; i++ {
		f /= uint64(n - i)
		smaller := 0
		for j := i + 1; j < n; j++ {
			if a[j] < a[i] {
				smaller++
			}
		}
		rank += uint64(smaller) * f
	}
	return rank, nil
}

// Unrank returns the rank-th permutation of {0..n-1} in lexicographic
// order: Unrank(0, n) is the identity, Unrank(n!-1, n) is the descending
// assignment. rank must be below n! and n at most MaxRankN.
func Unrank(rank uint64, n int) (Assignment, error) {
	f, err := Factorial(n)
	if err != nil {
		return nil, err
	}
	if rank >= f {
		return nil, &RankRangeError{Rank: rank, Max: f, N: n}
	}
	return UnrankInto(make([]int, n), rank), nil
}

// UnrankInto fills buf with the rank-th permutation of {0..len(buf)-1} in
// lexicographic order and returns it as an Assignment. It is the alloc-free
// form of Unrank for enumeration hot loops; the caller guarantees
// len(buf) <= MaxRankN and rank < len(buf)!.
func UnrankInto(buf []int, rank uint64) Assignment {
	n := len(buf)
	for i := range buf {
		buf[i] = i
	}
	if n < 2 {
		return Assignment(buf)
	}
	f, _ := Factorial(n - 1)
	// buf[i:] holds the unused identifiers in ascending order; digit i of
	// the factorial number system selects which of them comes next, and the
	// skipped prefix shifts right to keep the remainder sorted.
	for i := 0; i < n-1; i++ {
		d := int(rank / f)
		rank %= f
		f /= uint64(n - 1 - i)
		v := buf[i+d]
		copy(buf[i+1:i+d+1], buf[i:i+d])
		buf[i] = v
	}
	return Assignment(buf)
}

// NextInto advances buf to its lexicographic successor in place (the
// classic next-permutation step), so a rank block is walked as one Unrank
// plus length-1 successor steps. It reports false — leaving buf untouched,
// in descending order — when buf is already the last permutation.
func NextInto(buf []int) bool {
	i := len(buf) - 2
	for i >= 0 && buf[i] >= buf[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(buf) - 1
	for buf[j] <= buf[i] {
		j--
	}
	buf[i], buf[j] = buf[j], buf[i]
	for l, r := i+1, len(buf)-1; l < r; l, r = l+1, r-1 {
		buf[l], buf[r] = buf[r], buf[l]
	}
	return true
}
