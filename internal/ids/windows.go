package ids

import "fmt"

// Rotate returns the assignment shifted so that vertex v gets the identifier
// previously held by vertex (v+k) mod n. Rotating an assignment of a cycle
// by k moves every ID window k positions counter-clockwise, preserving all
// radius-r views up to position.
func (a Assignment) Rotate(k int) Assignment {
	n := len(a)
	if n == 0 {
		return Assignment{}
	}
	k = ((k % n) + n) % n
	out := make(Assignment, n)
	for v := range out {
		out[v] = a[(v+k)%n]
	}
	return out
}

// Window extracts the identifiers of the 2r+1 consecutive cycle positions
// centred at vertex v: positions v-r .. v+r (mod n), in clockwise order.
// It is the "slice of identifiers" operation from the proof of Theorem 1.
func (a Assignment) Window(v, r int) ([]int, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("ids: window of empty assignment")
	}
	if r < 0 {
		return nil, fmt.Errorf("ids: negative window radius %d", r)
	}
	if 2*r+1 > n {
		return nil, fmt.Errorf("ids: window 2*%d+1 exceeds n=%d", r, n)
	}
	out := make([]int, 0, 2*r+1)
	for d := -r; d <= r; d++ {
		out = append(out, a[((v+d)%n+n)%n])
	}
	return out, nil
}

// FromWindows builds an assignment of length n by laying out the given
// identifier windows one after another starting at vertex 0, and then the
// rest slice for the remaining positions. It returns an error if the total
// length differs from n or the result is not a valid assignment. This is the
// concatenation step of the permutation pi constructed in the proof of
// Theorem 1.
func FromWindows(n int, windows [][]int, rest []int) (Assignment, error) {
	a := make(Assignment, 0, n)
	for _, w := range windows {
		a = append(a, w...)
	}
	a = append(a, rest...)
	if len(a) != n {
		return nil, fmt.Errorf("ids: windows+rest cover %d positions, want %d", len(a), n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
