package ids

// StreamPerm is a seeded random permutation of [0, n) evaluable point-wise
// in O(1) with zero storage: a 4-round Feistel network over the smallest
// even-bit-width domain 2^(2h) >= n, restricted to [0, n) by cycle-walking
// (re-encrypting any out-of-range image until it lands back in range — a
// standard format-preserving-encryption construction, and a bijection on
// [0, n) because the Feistel network is a bijection on the full domain).
//
// The point of the construction is streaming identifier draws: a sweep
// trial at n = 10^7 can hand each worker the (seed, index) coordinates and
// synthesize any identifier on demand instead of materialising and
// shuffling an n-entry buffer. The permutation is NOT the one
// rand.Perm/RandomInto produces for the same seed — it is its own seeded
// family, deterministic across workers, shards and backends.
type StreamPerm struct {
	n        int
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

// NewStreamPerm returns the seeded permutation of [0, n). n must be
// non-negative; the zero-size permutation has no valid inputs.
func NewStreamPerm(n int, seed uint64) StreamPerm {
	p := StreamPerm{n: n, halfBits: 1}
	for uint64(1)<<(2*p.halfBits) < uint64(n) {
		p.halfBits++
	}
	p.halfMask = uint64(1)<<p.halfBits - 1
	// Round keys from the seed via the splitmix64 sequence: full-period in
	// the seed, well mixed, and cheap enough to rebuild per trial.
	s := seed
	for i := range p.keys {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.keys[i] = z ^ (z >> 31)
	}
	return p
}

// N reports the permutation's domain size.
func (p StreamPerm) N() int { return p.n }

// ID returns the identifier of vertex v — the image of v under the
// permutation. v must be in [0, N()).
func (p StreamPerm) ID(v int) int {
	x := uint64(v)
	for {
		x = p.encrypt(x)
		if x < uint64(p.n) {
			return int(x)
		}
	}
}

// encrypt runs the 4-round Feistel network over the 2*halfBits-bit domain.
func (p StreamPerm) encrypt(x uint64) uint64 {
	l, r := x>>p.halfBits, x&p.halfMask
	for _, k := range p.keys {
		l, r = r, l^(mix64(r+k)&p.halfMask)
	}
	return l<<p.halfBits | r
}

// mix64 is the splitmix64 finalizer, used as the Feistel round function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StreamInto fills buf with the seeded streaming permutation of
// [0, len(buf)) and returns it as an Assignment — the buffered counterpart
// of evaluating NewStreamPerm(len(buf), seed).ID at every index, for
// callers that want the whole assignment at once. The result is valid by
// construction (a bijection), so Validate is redundant.
func StreamInto(buf []int, seed uint64) Assignment {
	p := NewStreamPerm(len(buf), seed)
	for v := range buf {
		buf[v] = p.ID(v)
	}
	return Assignment(buf)
}
