package ids

import (
	"errors"
	"testing"
)

// TestFactorialBoundary is the table-driven boundary check of the typed
// rank-space overflow errors, straddling MaxRankN on both sides.
func TestFactorialBoundary(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ok   bool
	}{
		{"zero", 0, true},
		{"one", 1, true},
		{"at bound", MaxRankN, true},
		{"past bound", MaxRankN + 1, false},
		{"far past bound", 1000, false},
		{"negative", -1, false},
	}
	for _, tc := range cases {
		_, err := Factorial(tc.n)
		if tc.ok {
			if err != nil {
				t.Errorf("%s: Factorial(%d): %v", tc.name, tc.n, err)
			}
			continue
		}
		var fr *FactorialRangeError
		if !errors.As(err, &fr) {
			t.Errorf("%s: Factorial(%d) = %v, want *FactorialRangeError", tc.name, tc.n, err)
		} else if fr.N != tc.n {
			t.Errorf("%s: error carries N=%d, want %d", tc.name, fr.N, tc.n)
		}
	}
}

// TestRankUnrankBoundary pins the typed errors at the edges of the rank
// space: the last valid rank round-trips, n! itself is a *RankRangeError,
// and over-long permutations surface *FactorialRangeError through Rank.
func TestRankUnrankBoundary(t *testing.T) {
	const n = 6
	f, err := Factorial(n)
	if err != nil {
		t.Fatal(err)
	}
	last, err := Unrank(f-1, n)
	if err != nil {
		t.Fatalf("Unrank(n!-1): %v", err)
	}
	if r, err := last.Rank(); err != nil || r != f-1 {
		t.Fatalf("Rank(Unrank(n!-1)) = %d, %v", r, err)
	}
	var rr *RankRangeError
	if _, err := Unrank(f, n); !errors.As(err, &rr) {
		t.Fatalf("Unrank(n!) = %v, want *RankRangeError", err)
	} else if rr.Rank != f || rr.Max != f || rr.N != n {
		t.Fatalf("RankRangeError carries %+v", rr)
	}

	tooLong := make(Assignment, MaxRankN+1)
	for i := range tooLong {
		tooLong[i] = i
	}
	var fr *FactorialRangeError
	if _, err := tooLong.Rank(); !errors.As(err, &fr) {
		t.Fatalf("Rank of %d-permutation = %v, want wrapped *FactorialRangeError", len(tooLong), err)
	} else if fr.N != MaxRankN+1 {
		t.Fatalf("wrapped error carries N=%d", fr.N)
	}
}

// TestCanonicalRankBoundary is the quotient-space analogue of
// TestRankUnrankBoundary: the table straddles the (n-1)!/2 canonical rank
// bound on both sides and checks the typed error's payload at each edge.
func TestCanonicalRankBoundary(t *testing.T) {
	const n = 7
	q, err := NewQuotient(n, dihedralGens(n), uint64(2*n), false)
	if err != nil {
		t.Fatal(err)
	}
	count := q.Count() // (n-1)!/2
	cases := []struct {
		name string
		rank uint64
		ok   bool
	}{
		{"first", 0, true},
		{"mid", count / 2, true},
		{"last", count - 1, true},
		{"at count", count, false},
		{"past count", count + 1, false},
		{"full-space rank", count * q.Order(), false},
		{"max uint64", ^uint64(0), false},
	}
	for _, tc := range cases {
		a, err := q.CanonicalUnrank(tc.rank)
		if tc.ok {
			if err != nil {
				t.Errorf("%s: CanonicalUnrank(%d): %v", tc.name, tc.rank, err)
				continue
			}
			if r, err := q.CanonicalRank(a); err != nil || r != tc.rank {
				t.Errorf("%s: round trip = %d, %v; want %d", tc.name, r, err, tc.rank)
			}
			continue
		}
		var cr *CanonicalRankRangeError
		if !errors.As(err, &cr) {
			t.Errorf("%s: CanonicalUnrank(%d) = %v, want *CanonicalRankRangeError", tc.name, tc.rank, err)
		} else if cr.Rank != tc.rank || cr.Max != count || cr.N != n {
			t.Errorf("%s: error carries %+v, want Rank=%d Max=%d N=%d", tc.name, cr, tc.rank, count, n)
		}
	}
}
