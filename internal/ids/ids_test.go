package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityAndReversed(t *testing.T) {
	id := Identity(5)
	rev := Reversed(5)
	for v := 0; v < 5; v++ {
		if id[v] != v {
			t.Errorf("Identity[%d] = %d", v, id[v])
		}
		if rev[v] != 4-v {
			t.Errorf("Reversed[%d] = %d, want %d", v, rev[v], 4-v)
		}
	}
	if err := id.Validate(); err != nil {
		t.Errorf("Identity invalid: %v", err)
	}
	if err := rev.Validate(); err != nil {
		t.Errorf("Reversed invalid: %v", err)
	}
}

func TestRandomIsPermutation(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) % 100
		a := Random(n, rand.New(rand.NewSource(seed)))
		if len(a) != n {
			return false
		}
		return a.Validate() == nil && (n == 0 || a.MaxID() == n-1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("Random not a permutation: %v", err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(50, rand.New(rand.NewSource(42)))
	b := Random(50, rand.New(rand.NewSource(42)))
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("same seed produced different permutations at %d", v)
		}
	}
}

func TestRandomSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a, err := RandomSparse(40, 1<<20, rng)
	if err != nil {
		t.Fatalf("RandomSparse: %v", err)
	}
	if len(a) != 40 {
		t.Fatalf("length %d", len(a))
	}
	if err := a.Validate(); err != nil {
		t.Errorf("sparse assignment invalid: %v", err)
	}
	for _, id := range a {
		if id < 0 || id >= 1<<20 {
			t.Errorf("identifier %d outside space", id)
		}
	}
	if _, err := RandomSparse(10, 5, rng); err == nil {
		t.Error("space < n accepted")
	}
	// space == n degenerates to a permutation.
	b, err := RandomSparse(12, 12, rng)
	if err != nil {
		t.Fatalf("RandomSparse tight: %v", err)
	}
	if b.MaxID() != 11 {
		t.Errorf("tight space MaxID = %d, want 11", b.MaxID())
	}
}

func TestFromPerm(t *testing.T) {
	a, err := FromPerm([]int{2, 0, 1})
	if err != nil {
		t.Fatalf("FromPerm valid: %v", err)
	}
	if a[0] != 2 {
		t.Errorf("a[0] = %d", a[0])
	}
	if _, err := FromPerm([]int{0, 0, 1}); err == nil {
		t.Error("FromPerm accepted duplicates")
	}
	if _, err := FromPerm([]int{-1, 0}); err == nil {
		t.Error("FromPerm accepted a negative identifier")
	}
}

func TestFromPermCopies(t *testing.T) {
	src := []int{1, 0, 2}
	a, err := FromPerm(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if a[0] != 1 {
		t.Error("FromPerm did not copy its input")
	}
}

func TestMaxAt(t *testing.T) {
	for _, pos := range []int{0, 3, 6} {
		a, err := MaxAt(7, pos)
		if err != nil {
			t.Fatalf("MaxAt(7,%d): %v", pos, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("MaxAt(7,%d) invalid: %v", pos, err)
		}
		if a.ArgMax() != pos {
			t.Errorf("MaxAt(7,%d).ArgMax = %d", pos, a.ArgMax())
		}
		if a.MaxID() != 6 {
			t.Errorf("MaxAt(7,%d).MaxID = %d", pos, a.MaxID())
		}
	}
	if _, err := MaxAt(5, 5); err == nil {
		t.Error("MaxAt out-of-range position accepted")
	}
	if _, err := MaxAt(5, -1); err == nil {
		t.Error("MaxAt negative position accepted")
	}
}

func TestBitReversalIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 15, 16, 17, 100} {
		a := BitReversal(n)
		if len(a) != n {
			t.Fatalf("BitReversal(%d) has length %d", n, len(a))
		}
		if err := a.Validate(); err != nil {
			t.Errorf("BitReversal(%d) invalid: %v", n, err)
		}
		if n > 0 && a.MaxID() != n-1 {
			t.Errorf("BitReversal(%d).MaxID = %d", n, a.MaxID())
		}
	}
}

func TestBitReversalScrambles(t *testing.T) {
	a := BitReversal(16)
	// Vertex 1 (binary 0001) reverses to 1000 = 8.
	if a[1] != 8 {
		t.Errorf("BitReversal(16)[1] = %d, want 8", a[1])
	}
	if a[0] != 0 {
		t.Errorf("BitReversal(16)[0] = %d, want 0", a[0])
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	bad := Assignment{3, 1, 3}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted duplicate IDs")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Identity(4)
	c := a.Clone()
	a[0] = 99
	if c[0] != 0 {
		t.Error("Clone shares storage")
	}
}

func TestArgMaxAndMaxIDEmpty(t *testing.T) {
	var a Assignment
	if a.MaxID() != -1 || a.ArgMax() != -1 {
		t.Errorf("empty assignment: MaxID=%d ArgMax=%d, want -1,-1", a.MaxID(), a.ArgMax())
	}
}

func TestInverse(t *testing.T) {
	a := Assignment{2, 0, 1}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	for v, id := range a {
		if inv[id] != v {
			t.Errorf("Inverse[%d] = %d, want %d", id, inv[id], v)
		}
	}
	if _, err := (Assignment{0, 5}).Inverse(); err == nil {
		t.Error("Inverse accepted an out-of-range identifier")
	}
	if _, err := (Assignment{0, 0}).Inverse(); err == nil {
		t.Error("Inverse accepted duplicates")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		a := Random(40, rand.New(rand.NewSource(seed)))
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		back, err := inv.Inverse()
		if err != nil {
			return false
		}
		for v := range a {
			if back[v] != a[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("Inverse not an involution: %v", err)
	}
}

// TestRandomIntoMatchesRandom pins the alloc-free permutation drawer to
// Random bit for bit: the sweep engine's determinism contract (equal seeds,
// equal tables) depends on the two being interchangeable.
func TestRandomIntoMatchesRandom(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 501} {
		seed := int64(100 + n)
		want := Random(n, rand.New(rand.NewSource(seed)))
		buf := make([]int, n)
		got := RandomInto(buf, rand.New(rand.NewSource(seed)))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("n=%d: RandomInto diverges from Random at vertex %d: %d != %d", n, v, got[v], want[v])
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// The rng streams must stay aligned after the draw too: batched
		// trials reuse one reseeded generator.
		ra, rb := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		Random(n, ra)
		RandomInto(buf, rb)
		if ra.Int63() != rb.Int63() {
			t.Fatalf("n=%d: rng state diverges after draw", n)
		}
	}
}

// TestRandomIntoReusesStorage checks the alloc-free contract.
func TestRandomIntoReusesStorage(t *testing.T) {
	buf := make([]int, 32)
	rng := rand.New(rand.NewSource(5))
	allocs := testing.AllocsPerRun(100, func() {
		RandomInto(buf, rng)
	})
	if allocs != 0 {
		t.Fatalf("RandomInto allocated %v times per draw", allocs)
	}
}
