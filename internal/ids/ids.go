// Package ids provides identifier assignments for LOCAL-model executions.
//
// In the paper's setting the adversary controls the assignment of distinct
// identifiers to vertices; every complexity statement is a worst case (or,
// in the further-work section, an expectation) over these assignments. An
// Assignment maps vertex index -> identifier; all constructors produce
// permutations of {0..n-1} (possibly affinely rescaled), which is fully
// general for comparison-based algorithms and keeps Cole–Vishkin's bit
// widths honest (IDs fit in ceil(log2 n) bits).
package ids

import (
	"errors"
	"fmt"
	"math/rand"
)

// Assignment maps each vertex index to its identifier. Identifiers must be
// pairwise distinct and non-negative.
type Assignment []int

// Errors returned by Validate.
var (
	ErrDuplicateID = errors.New("duplicate identifier")
	ErrNegativeID  = errors.New("negative identifier")
)

// Identity assigns vertex v the identifier v.
func Identity(n int) Assignment {
	a := make(Assignment, n)
	for v := range a {
		a[v] = v
	}
	return a
}

// Reversed assigns vertex v the identifier n-1-v, so vertex 0 carries the
// maximum.
func Reversed(n int) Assignment {
	a := make(Assignment, n)
	for v := range a {
		a[v] = n - 1 - v
	}
	return a
}

// Random draws a uniformly random permutation of {0..n-1} from rng.
func Random(n int, rng *rand.Rand) Assignment {
	return Assignment(rng.Perm(n))
}

// RandomInto fills buf with a uniformly random permutation of
// {0..len(buf)-1} drawn from rng and returns it as an Assignment. It is the
// alloc-free form of Random for per-trial hot loops: given equal rng
// states the two produce bit-identical permutations (the Fisher–Yates walk
// below consumes rng exactly like rand.Perm, including the redundant i=0
// draw rand.Perm is locked into for Go 1 compatibility).
func RandomInto(buf []int, rng *rand.Rand) Assignment {
	for i := range buf {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return Assignment(buf)
}

// RandomSparse draws n distinct identifiers uniformly from {0..space-1}.
// It models the standard LOCAL assumption that identifiers come from a
// space polynomially (or more) larger than n — the regime in which
// Cole-Vishkin's bit budget genuinely matters.
func RandomSparse(n int, space int, rng *rand.Rand) (Assignment, error) {
	if space < n {
		return nil, fmt.Errorf("ids: space %d smaller than n=%d", space, n)
	}
	a := make(Assignment, 0, n)
	seen := make(map[int]bool, n)
	for len(a) < n {
		id := rng.Intn(space)
		if seen[id] {
			continue
		}
		seen[id] = true
		a = append(a, id)
	}
	return a, nil
}

// FromPerm copies perm into an Assignment after validating it.
func FromPerm(perm []int) (Assignment, error) {
	a := make(Assignment, len(perm))
	copy(a, perm)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// MaxAt places the maximum identifier n-1 at vertex pos and fills the
// remaining vertices with 0..n-2 in index order. It is the canonical
// worst-case instance for the largest-ID problem's maximum vertex.
func MaxAt(n, pos int) (Assignment, error) {
	if pos < 0 || pos >= n {
		return nil, fmt.Errorf("ids: position %d out of range [0,%d)", pos, n)
	}
	a := make(Assignment, n)
	next := 0
	for v := range a {
		if v == pos {
			a[v] = n - 1
			continue
		}
		a[v] = next
		next++
	}
	return a, nil
}

// BitReversal assigns vertex v the bit-reversal of v within ceil(log2 n)
// bits, rank-compressed back to a permutation of {0..n-1}. Bit-reversal
// orders are classic worst cases for divide-and-conquer-style locality and
// give a deterministic "scrambled" assignment without randomness.
func BitReversal(n int) Assignment {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	type pair struct{ key, v int }
	pairs := make([]pair, n)
	for v := 0; v < n; v++ {
		r := 0
		for b := 0; b < bits; b++ {
			if v&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		pairs[v] = pair{key: r, v: v}
	}
	// Rank-compress keys (stable by vertex index) into 0..n-1.
	a := make(Assignment, n)
	rank := 0
	for key := 0; rank < n; key++ {
		for _, p := range pairs {
			if p.key == key {
				a[p.v] = rank
				rank++
			}
		}
	}
	return a
}

// Validate checks distinctness and non-negativity.
func (a Assignment) Validate() error {
	// Dense identifier spaces (permutations and affine rescalings, the
	// common case in sweeps) are checked with a flat table — an order of
	// magnitude cheaper than a map, and Validate sits on the per-trial hot
	// path of the sweep engine. Sparse spaces fall back to the map.
	maxID := -1
	for v, id := range a {
		if id < 0 {
			return fmt.Errorf("ids: vertex %d: %w (%d)", v, ErrNegativeID, id)
		}
		if id > maxID {
			maxID = id
		}
	}
	if maxID < 8*len(a) {
		seen := make([]int32, maxID+1)
		for v, id := range a {
			if prev := seen[id]; prev != 0 {
				return fmt.Errorf("ids: vertices %d and %d: %w (%d)", int(prev)-1, v, ErrDuplicateID, id)
			}
			seen[id] = int32(v) + 1
		}
		return nil
	}
	seen := make(map[int]int, len(a))
	for v, id := range a {
		if prev, ok := seen[id]; ok {
			return fmt.Errorf("ids: vertices %d and %d: %w (%d)", prev, v, ErrDuplicateID, id)
		}
		seen[id] = v
	}
	return nil
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	return append(Assignment(nil), a...)
}

// MaxID returns the largest identifier, or -1 for an empty assignment.
func (a Assignment) MaxID() int {
	max := -1
	for _, id := range a {
		if id > max {
			max = id
		}
	}
	return max
}

// ArgMax returns the vertex carrying the largest identifier, or -1 for an
// empty assignment.
func (a Assignment) ArgMax() int {
	arg, max := -1, -1
	for v, id := range a {
		if id > max {
			arg, max = v, id
		}
	}
	return arg
}

// Inverse returns the permutation sending each identifier to its vertex.
// It must only be called on assignments that are permutations of {0..n-1}.
func (a Assignment) Inverse() (Assignment, error) {
	inv := make(Assignment, len(a))
	for i := range inv {
		inv[i] = -1
	}
	for v, id := range a {
		if id < 0 || id >= len(a) {
			return nil, fmt.Errorf("ids: identifier %d outside permutation range [0,%d)", id, len(a))
		}
		if inv[id] != -1 {
			return nil, fmt.Errorf("ids: vertices %d and %d: %w (%d)", inv[id], v, ErrDuplicateID, id)
		}
		inv[id] = v
	}
	return inv, nil
}
