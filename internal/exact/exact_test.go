package exact

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// TestPruningRadiiMatchEngine pins the closed form to the simulator: both
// must agree on every vertex of random instances.
func TestPruningRadiiMatchEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{3, 4, 5, 9, 16, 33, 64} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 4; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunView(c, a, largestid.Pruning{})
			if err != nil {
				t.Fatalf("RunView: %v", err)
			}
			closed := PruningRadii(a)
			for v := 0; v < n; v++ {
				if closed[v] != res.Radii[v] {
					t.Fatalf("n=%d vertex %d: closed form %d, engine %d",
						n, v, closed[v], res.Radii[v])
				}
			}
		}
	}
}

// TestCycleStatsWorstMatchesRecurrence is the flagship exact validation:
// the enumerated maximum over ALL permutations equals the recurrence
// prediction a(n-1) + floor(n/2) — no sampling, no reconstruction, the
// whole space. CycleStats performs the check internally; this asserts it
// and the permutation count through both the engine and the sequential
// baseline.
func TestCycleStatsWorstMatchesRecurrence(t *testing.T) {
	for n := 3; n <= 8; n++ {
		st, err := CycleStats(context.Background(), n, Options{})
		if err != nil {
			t.Fatalf("CycleStats(%d): %v", n, err)
		}
		want, err := analytic.WorstCycleSum(n)
		if err != nil {
			t.Fatal(err)
		}
		if int64(st.WorstSum) != want {
			t.Errorf("n=%d: enumerated worst sum %d, recurrence %d", n, st.WorstSum, want)
		}
		wantPerms, err := ids.Factorial(n)
		if err != nil {
			t.Fatal(err)
		}
		if st.Perms != int64(wantPerms) {
			t.Errorf("n=%d: visited %d permutations, want %d", n, st.Perms, wantPerms)
		}
	}
}

// TestDistributionMatchesClosedFormFold is the engine-vs-closed-form
// property: for every 3 <= n <= 8 (and n=10 when not -short) the
// engine-computed exact distribution — extremes, mean, pooled histogram —
// equals the sequential Heap's-algorithm fold of PruningRadii, at several
// worker counts.
func TestDistributionMatchesClosedFormFold(t *testing.T) {
	sizes := []int{3, 4, 5, 6, 7, 8}
	if !testing.Short() {
		sizes = append(sizes, 9, 10)
	}
	for _, n := range sizes {
		want, err := CycleStatsSequential(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, err := CycleStats(context.Background(), n, Options{Workers: workers})
			if err != nil {
				t.Fatalf("CycleStats(%d, workers=%d): %v", n, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d workers=%d: engine distribution diverges from closed-form fold\ngot:  %+v\nwant: %+v",
					n, workers, got, want)
			}
		}
	}
}

// TestCycleStatsBestSum: the best case puts every non-maximum next to a
// larger identifier: sum = (n-1) + floor(n/2).
func TestCycleStatsBestSum(t *testing.T) {
	for n := 3; n <= 8; n++ {
		st, err := CycleStats(context.Background(), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := (n - 1) + n/2
		if st.BestSum != want {
			t.Errorf("n=%d: best sum %d, want %d", n, st.BestSum, want)
		}
	}
}

// TestCycleStatsMeanBounds: the exact expectation sits strictly between
// the best and worst cases and the average orderings are consistent.
func TestCycleStatsMeanBounds(t *testing.T) {
	st, err := CycleStats(context.Background(), 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanSum <= float64(st.BestSum) || st.MeanSum >= float64(st.WorstSum) {
		t.Errorf("mean %v outside (best %d, worst %d)", st.MeanSum, st.BestSum, st.WorstSum)
	}
	if st.MeanAvg() >= st.WorstAvg() {
		t.Errorf("MeanAvg %v >= WorstAvg %v", st.MeanAvg(), st.WorstAvg())
	}
	if st.BestAvg() >= st.MeanAvg() {
		t.Errorf("BestAvg %v >= MeanAvg %v", st.BestAvg(), st.MeanAvg())
	}
	if med, p90 := st.Quantile(0.5), st.Quantile(0.9); med > p90 {
		t.Errorf("median %v above p90 %v", med, p90)
	}
}

// TestCycleStatsMatchesMonteCarlo cross-checks the exact expectation
// against a direct sample mean.
func TestCycleStatsMatchesMonteCarlo(t *testing.T) {
	const n = 7
	st, err := CycleStats(context.Background(), n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	const samples = 20000
	total := 0
	for i := 0; i < samples; i++ {
		for _, r := range PruningRadii(ids.Random(n, rng)) {
			total += r
		}
	}
	mc := float64(total) / samples
	if diff := mc - st.MeanSum; diff > 0.15 || diff < -0.15 {
		t.Errorf("Monte Carlo mean %v far from exact %v", mc, st.MeanSum)
	}
}

// TestDistributionOtherAlgorithms exercises the generic API beyond pruning
// cycles: FullView on a path, uniform ring colouring, and colouring-derived
// MIS all enumerate cleanly, and constant-radius algorithms report
// degenerate (worst == best) distributions.
func TestDistributionOtherAlgorithms(t *testing.T) {
	ctx := context.Background()
	path, err := graph.NewPath(5)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := Distribution(ctx, path, func(int, ids.Assignment) local.ViewAlgorithm { return largestid.FullView{} }, Options{})
	if err != nil {
		t.Fatalf("FullView on path: %v", err)
	}
	// FullView always grows to the whole graph: the radius vector is
	// permutation-independent, so the sum distribution is a point mass.
	if fv.WorstSum != fv.BestSum {
		t.Errorf("FullView sums vary: worst %d, best %d", fv.WorstSum, fv.BestSum)
	}

	c := graph.MustCycle(6)
	uni, err := Distribution(ctx, c, func(int, ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} }, Options{})
	if err != nil {
		t.Fatalf("Uniform on cycle: %v", err)
	}
	if uni.Perms != 720 || uni.WorstSum < uni.BestSum {
		t.Errorf("Uniform stats inconsistent: %+v", uni)
	}

	// ForMaxID-derived coloring consumes the ring orientation, so it is not
	// invariant under the cycle's reflection: the quotient path must stay
	// off for it (see graph.Automorphisms).
	m, err := Distribution(ctx, c, func(_ int, a ids.Assignment) local.ViewAlgorithm {
		return mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}
	}, Options{Workers: 4, NoQuotient: true})
	if err != nil {
		t.Fatalf("MIS on cycle: %v", err)
	}
	if m.Perms != 720 || m.MeanSum < float64(m.BestSum) || m.MeanSum > float64(m.WorstSum) {
		t.Errorf("MIS stats inconsistent: %+v", m)
	}
}

func TestCycleStatsErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := CycleStats(ctx, 2, Options{}); err != nil {
		if errors.Is(err, ErrTooLarge) {
			t.Error("n=2 misreported as too large")
		}
	} else {
		t.Error("n=2 accepted")
	}
	if _, err := CycleStats(ctx, MaxEnumerationN+1, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized n: err = %v, want ErrTooLarge", err)
	}
	if _, err := CycleStatsSequential(MaxEnumerationN + 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("sequential oversized n: err = %v, want ErrTooLarge", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := CycleStats(cancelled, 7, Options{}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestPruningRadiiEmpty(t *testing.T) {
	if got := PruningRadii(nil); len(got) != 0 {
		t.Errorf("empty assignment produced radii %v", got)
	}
}

// TestDistributionShardedMergeIdentical: splitting the n! rank space into
// m plan shards and merging the partial Stats reproduces the unsharded
// enumeration byte for byte — exact ground truth can cross processes.
func TestDistributionShardedMergeIdentical(t *testing.T) {
	const n = 6
	c := graph.MustCycle(n)
	alg := func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
	want, err := Distribution(context.Background(), c, alg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 3, 4} {
		merged := Stats{N: n}
		for i := 0; i < m; i++ {
			part, err := Distribution(context.Background(), c, alg,
				Options{Shard: sweep.Shard{Index: i, Count: m}, Workers: 1 + i})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, m, err)
			}
			if merged, err = merged.Merge(part); err != nil {
				t.Fatalf("merge shard %d/%d: %v", i, m, err)
			}
		}
		if !reflect.DeepEqual(want, merged) {
			t.Errorf("m=%d: sharded enumeration diverges\nwant %+v\ngot  %+v", m, want, merged)
		}
	}
	// Mismatched instances must refuse to merge; sharded CycleStats must
	// refuse to run at all.
	if _, err := want.Merge(Stats{N: n + 1, Perms: 1}); err == nil {
		t.Error("cross-instance merge accepted")
	}
	if _, err := CycleStats(context.Background(), n, Options{Shard: sweep.Shard{Index: 0, Count: 2}}); err == nil {
		t.Error("sharded CycleStats accepted")
	}
}

// TestDistributionQuotientBitIdentical: for families declaring their
// automorphism group, the auto-routed quotient enumeration returns Stats
// bit-for-bit identical to the pinned full n! fold — every field,
// including the pooled histogram and the float MeanSum.
func TestDistributionQuotientBitIdentical(t *testing.T) {
	alg := func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
	for _, g := range []graph.Graph{
		graph.MustCycle(7),
		graph.MustTorus(3, 3),
		graph.MustCompleteGraph(6),
		graph.MustImplicitTree(2, 2),
	} {
		quot, err := Distribution(context.Background(), g, alg, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%T quotient: %v", g, err)
		}
		full, err := Distribution(context.Background(), g, alg, Options{Workers: 4, NoQuotient: true})
		if err != nil {
			t.Fatalf("%T full: %v", g, err)
		}
		if !reflect.DeepEqual(quot, full) {
			t.Errorf("%T: quotient stats diverge from full fold\nquotient: %+v\nfull:     %+v", g, quot, full)
		}
		f, _ := ids.Factorial(g.N())
		if uint64(quot.Perms) != f {
			t.Errorf("%T: quotient Perms = %d, want %d! = %d", g, quot.Perms, g.N(), f)
		}
	}
}

// TestDistributionEnumerationCaps pins the two ceilings: the full fold
// stops at MaxFullEnumerationN (no-symmetry families and NoQuotient runs),
// the quotient path carries symmetric families to MaxEnumerationN — and a
// beyond-full-cap cycle actually executes through the quotient (a thin
// shard keeps the test fast).
func TestDistributionEnumerationCaps(t *testing.T) {
	ctx := context.Background()
	alg := func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }
	over := MaxFullEnumerationN + 1

	gnp, err := graph.NewGNP(over, 0.5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distribution(ctx, gnp, alg, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("GNP n=%d: err = %v, want ErrTooLarge", over, err)
	}
	c := graph.MustCycle(over)
	if _, err := Distribution(ctx, c, alg, Options{NoQuotient: true}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("NoQuotient cycle n=%d: err = %v, want ErrTooLarge", over, err)
	}
	if _, err := Distribution(ctx, graph.MustCycle(MaxEnumerationN+1), alg, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("cycle n=%d: err = %v, want ErrTooLarge", MaxEnumerationN+1, err)
	}
	st, err := Distribution(ctx, c, alg,
		Options{Shard: sweep.Shard{Index: 0, Count: 1 << 20}, Workers: 2})
	if err != nil {
		t.Fatalf("quotient cycle n=%d: %v", over, err)
	}
	if st.Perms <= 0 || st.Perms%int64(2*over) != 0 {
		t.Errorf("thin quotient shard at n=%d folded Perms=%d, want a positive multiple of |G|=%d",
			over, st.Perms, 2*over)
	}
}
