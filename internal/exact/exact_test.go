package exact

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms/largestid"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// TestPruningRadiiMatchEngine pins the closed form to the simulator: both
// must agree on every vertex of random instances.
func TestPruningRadiiMatchEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{3, 4, 5, 9, 16, 33, 64} {
		c := graph.MustCycle(n)
		for trial := 0; trial < 4; trial++ {
			a := ids.Random(n, rng)
			res, err := local.RunView(c, a, largestid.Pruning{})
			if err != nil {
				t.Fatalf("RunView: %v", err)
			}
			closed := PruningRadii(a)
			for v := 0; v < n; v++ {
				if closed[v] != res.Radii[v] {
					t.Fatalf("n=%d vertex %d: closed form %d, engine %d",
						n, v, closed[v], res.Radii[v])
				}
			}
		}
	}
}

// TestCycleStatsWorstMatchesRecurrence is the flagship exact validation:
// the enumerated maximum over ALL permutations equals the recurrence
// prediction a(n-1) + floor(n/2) — no sampling, no reconstruction, the
// whole space.
func TestCycleStatsWorstMatchesRecurrence(t *testing.T) {
	for n := 3; n <= 8; n++ {
		st, err := CycleStats(n)
		if err != nil {
			t.Fatalf("CycleStats(%d): %v", n, err)
		}
		want, err := analytic.WorstCycleSum(n)
		if err != nil {
			t.Fatal(err)
		}
		if int64(st.WorstSum) != want {
			t.Errorf("n=%d: enumerated worst sum %d, recurrence %d", n, st.WorstSum, want)
		}
		wantPerms := int64(1)
		for i := 2; i <= n; i++ {
			wantPerms *= int64(i)
		}
		if st.Perms != wantPerms {
			t.Errorf("n=%d: visited %d permutations, want %d", n, st.Perms, wantPerms)
		}
	}
}

// TestCycleStatsBestSum: the best case puts every non-maximum next to a
// larger identifier: sum = (n-1) + floor(n/2).
func TestCycleStatsBestSum(t *testing.T) {
	for n := 3; n <= 8; n++ {
		st, err := CycleStats(n)
		if err != nil {
			t.Fatal(err)
		}
		want := (n - 1) + n/2
		if st.BestSum != want {
			t.Errorf("n=%d: best sum %d, want %d", n, st.BestSum, want)
		}
	}
}

// TestCycleStatsMeanBounds: the exact expectation sits strictly between
// the best and worst cases and the average orderings are consistent.
func TestCycleStatsMeanBounds(t *testing.T) {
	st, err := CycleStats(7)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanSum <= float64(st.BestSum) || st.MeanSum >= float64(st.WorstSum) {
		t.Errorf("mean %v outside (best %d, worst %d)", st.MeanSum, st.BestSum, st.WorstSum)
	}
	if st.MeanAvg() >= st.WorstAvg() {
		t.Errorf("MeanAvg %v >= WorstAvg %v", st.MeanAvg(), st.WorstAvg())
	}
}

// TestCycleStatsMatchesMonteCarlo cross-checks the exact expectation
// against a direct sample mean.
func TestCycleStatsMatchesMonteCarlo(t *testing.T) {
	const n = 7
	st, err := CycleStats(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	const samples = 20000
	total := 0
	for i := 0; i < samples; i++ {
		for _, r := range PruningRadii(ids.Random(n, rng)) {
			total += r
		}
	}
	mc := float64(total) / samples
	if diff := mc - st.MeanSum; diff > 0.15 || diff < -0.15 {
		t.Errorf("Monte Carlo mean %v far from exact %v", mc, st.MeanSum)
	}
}

func TestCycleStatsErrors(t *testing.T) {
	if _, err := CycleStats(2); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := CycleStats(MaxEnumerationN + 1); err == nil {
		t.Error("oversized n accepted")
	}
}

func TestPruningRadiiEmpty(t *testing.T) {
	if got := PruningRadii(nil); len(got) != 0 {
		t.Errorf("empty assignment produced radii %v", got)
	}
}
