// Package exact provides exhaustive-enumeration ground truth for small
// cycles: the §2 pruning radii computed in closed form and their exact
// statistics over ALL identifier permutations. It is the strongest
// validation layer of the reproduction — the recurrence, the engine and
// the Monte-Carlo estimates must all agree with it.
package exact

import (
	"fmt"

	"repro/internal/ids"
)

// MaxEnumerationN bounds full permutation enumeration (n! growth).
const MaxEnumerationN = 10

// PruningRadii computes the pruning algorithm's decision radii on a cycle
// directly from the assignment: a non-maximum vertex stops at its ring
// distance to the nearest strictly larger identifier; the maximum vertex
// needs the closure radius floor(n/2). This closed form is validated
// against the simulator in tests and lets enumeration skip the engine.
func PruningRadii(a ids.Assignment) []int {
	n := len(a)
	radii := make([]int, n)
	if n == 0 {
		return radii
	}
	maxAt := a.ArgMax()
	for v := 0; v < n; v++ {
		if v == maxAt {
			radii[v] = n / 2
			continue
		}
		best := n
		for d := 1; d < n; d++ {
			right := (v + d) % n
			left := ((v-d)%n + n) % n
			if a[right] > a[v] || a[left] > a[v] {
				best = d
				break
			}
		}
		radii[v] = best
	}
	return radii
}

// Stats are exact statistics of the pruning radius sum over every
// identifier permutation of an n-cycle.
type Stats struct {
	N     int
	Perms int64
	// WorstSum is max over permutations of Σ r(v) — the paper's measure
	// times n; it must equal a(n-1) + floor(n/2).
	WorstSum int
	// BestSum is the minimum achievable radius sum.
	BestSum int
	// MeanSum is the expectation of the radius sum under a uniformly
	// random permutation (§4's further-work quantity, exactly).
	MeanSum float64
}

// WorstAvg is the paper's average measure: WorstSum / n.
func (s Stats) WorstAvg() float64 { return float64(s.WorstSum) / float64(s.N) }

// MeanAvg is the exact expected average radius.
func (s Stats) MeanAvg() float64 { return s.MeanSum / float64(s.N) }

// CycleStats enumerates all n! permutations (n <= MaxEnumerationN) with
// Heap's algorithm and folds the radius sums.
func CycleStats(n int) (Stats, error) {
	if n < 3 {
		return Stats{}, fmt.Errorf("exact: need n >= 3, got %d", n)
	}
	if n > MaxEnumerationN {
		return Stats{}, fmt.Errorf("exact: n=%d exceeds enumeration cap %d", n, MaxEnumerationN)
	}
	perm := make(ids.Assignment, n)
	for i := range perm {
		perm[i] = i
	}
	st := Stats{N: n, WorstSum: -1, BestSum: -1}
	var totalSum float64

	visit := func() {
		sum := 0
		for _, r := range PruningRadii(perm) {
			sum += r
		}
		if st.WorstSum < 0 || sum > st.WorstSum {
			st.WorstSum = sum
		}
		if st.BestSum < 0 || sum < st.BestSum {
			st.BestSum = sum
		}
		totalSum += float64(sum)
		st.Perms++
	}

	// Heap's algorithm, iterative.
	c := make([]int, n)
	visit()
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			visit()
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	st.MeanSum = totalSum / float64(st.Perms)
	return st, nil
}
