// Package exact provides exhaustive-enumeration ground truth: the
// statistics of an algorithm's radius distribution over ALL n! identifier
// assignments of a small instance — the §2 worst-case average and the §4
// further-work expectation, computed exactly rather than sampled. It is the
// strongest validation layer of the reproduction: the analytic recurrence,
// the engine and the Monte-Carlo estimates must all agree with it.
//
// Enumeration runs through the sharded sweep engine (sweep.Spec.Exhaustive)
// — the same atlas, flat-kernel and streaming-aggregation substrate the
// Monte-Carlo sweeps use — so it works for any algorithm and graph family
// and parallelises across all cores with byte-identical results at any
// worker count. The pre-engine sequential Heap's-algorithm loop over the
// closed-form cycle radii is kept (CycleStatsSequential) as the independent
// cross-check and the benchmark baseline.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/sweep"
)

// MaxEnumerationN bounds exact enumeration. For graph families declaring
// their automorphism group (graph.Automorphisms: cycle, torus, complete
// graph, complete b-ary tree) Distribution enumerates only canonical orbit
// representatives — n!/|G| executions instead of n!, a 2n× reduction on
// the cycle — which lifts the ceiling to 14: 14!/28 ≈ 3.1e9 representative
// executions, feasible under parallel enumeration on a multicore machine.
// There is no internal wall-clock guard beyond the cap — bound long runs
// with the context handed to Distribution.
const MaxEnumerationN = 14

// MaxFullEnumerationN bounds the full n!-fold path — families without a
// declared automorphism group, and runs pinning Options.NoQuotient: 12! ≈
// 4.8e8 executions. Beyond it only the quotient path is feasible, so
// larger instances without one fail with ErrTooLarge.
const MaxFullEnumerationN = 12

// ErrTooLarge marks instances beyond MaxEnumerationN. Callers distinguish
// it (errors.Is) from execution failures: "fall back to sampling" is the
// right response to ErrTooLarge only.
var ErrTooLarge = errors.New("exact: instance exceeds the enumeration cap")

// Algorithm instantiates the view algorithm for one enumerated assignment,
// matching sweep.Spec.Alg (assignment-dependent algorithms like
// Cole-Vishkin's ForMaxID need the assignment).
type Algorithm func(n int, a ids.Assignment) local.ViewAlgorithm

// Options tunes an enumeration run; the zero value uses all cores with the
// atlas and kernel fast paths on.
type Options struct {
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS).
	Workers int
	// Shard restricts Distribution to the contiguous rank-block slice
	// Shard.Index of Shard.Count of the n! space — the engine's plan shards
	// applied to exhaustive enumeration, so exact ground truth can be split
	// across processes. The partial Stats of all Shard.Count runs combine
	// with Stats.Merge to bytes identical to an unsharded run. CycleStats
	// rejects shards: its recurrence identity needs the full space.
	Shard sweep.Shard
	// NoAtlas / NoKernels pin the enumeration to the slower execution
	// paths — results are byte-identical; the toggles exist for A/B
	// profiling, exactly as in sweep.Spec.
	NoAtlas   bool
	NoKernels bool
	// NoQuotient disables the symmetry-quotient fast path even for graphs
	// declaring automorphisms, forcing the full n! fold — the A/B baseline
	// the quotient's bit-identity is benchmarked and tested against. With
	// it set, n is capped at MaxFullEnumerationN. The quotient path is only
	// sound for automorphism-invariant algorithms (see graph.Automorphisms);
	// pin NoQuotient when enumerating a port-sensitive algorithm on a
	// symmetric family.
	NoQuotient bool
}

// PruningRadii computes the pruning algorithm's decision radii on a cycle
// directly from the assignment: a non-maximum vertex stops at its ring
// distance to the nearest strictly larger identifier; the maximum vertex
// needs the closure radius floor(n/2). This closed form is validated
// against the simulator in tests and lets sequential enumeration skip the
// engine.
func PruningRadii(a ids.Assignment) []int {
	n := len(a)
	radii := make([]int, n)
	if n == 0 {
		return radii
	}
	maxAt := a.ArgMax()
	for v := 0; v < n; v++ {
		if v == maxAt {
			radii[v] = n / 2
			continue
		}
		best := n
		for d := 1; d < n; d++ {
			right := (v + d) % n
			left := ((v-d)%n + n) % n
			if a[right] > a[v] || a[left] > a[v] {
				best = d
				break
			}
		}
		radii[v] = best
	}
	return radii
}

// Stats are exact statistics of an algorithm's radius distribution over
// every identifier permutation of one instance (or, under Options.Shard,
// over one contiguous rank block of them — Merge recombines the blocks).
type Stats struct {
	N     int
	Perms int64
	// WorstSum is max over permutations of Σ r(v) — the paper's average
	// measure times n; for the pruning algorithm on a cycle it must equal
	// a(n-1) + floor(n/2).
	WorstSum int
	// BestSum is the minimum achievable radius sum.
	BestSum int
	// TotalSum is Σ over permutations of Σ r(v): the integer MeanSum
	// derives from, carried explicitly so sharded partials merge to the
	// exact division an unsharded run performs.
	TotalSum int64
	// MeanSum is the expectation of the radius sum under a uniformly
	// random permutation (§4's further-work quantity, exactly). Always
	// TotalSum / Perms.
	MeanSum float64
	// Hist pools the radius histogram over every vertex of every
	// permutation: Hist[r] = #(vertex, permutation) pairs decided at
	// radius exactly r. Quantiles of it describe the distribution's shape
	// beyond the sum extremes.
	Hist []int64
}

// WorstAvg is the paper's average measure: WorstSum / n.
func (s Stats) WorstAvg() float64 { return float64(s.WorstSum) / float64(s.N) }

// BestAvg is the most favourable permutation's average radius.
func (s Stats) BestAvg() float64 { return float64(s.BestSum) / float64(s.N) }

// MeanAvg is the exact expected average radius.
func (s Stats) MeanAvg() float64 { return s.MeanSum / float64(s.N) }

// Quantile returns the q-quantile of the pooled per-vertex radius
// distribution, with the same interpolation as measure.Quantile.
func (s Stats) Quantile(q float64) float64 { return sweep.HistQuantile(s.Hist, q) }

// Merge combines two shard partials (Options.Shard) covering disjoint rank
// blocks of the SAME instance into the statistics of their union: extremes
// take the max/min, integer totals and histograms add, and MeanSum is
// re-derived from the merged integers — so merging all Shard.Count
// partials reproduces an unsharded run's Stats byte for byte, in any merge
// order. Neither input is modified.
func (s Stats) Merge(o Stats) (Stats, error) {
	if s.N != o.N {
		return Stats{}, fmt.Errorf("exact: merging stats of different instances (n=%d vs n=%d)", s.N, o.N)
	}
	if o.Perms == 0 {
		return s, nil
	}
	if s.Perms == 0 {
		return o, nil
	}
	out := s
	out.Perms += o.Perms
	out.TotalSum += o.TotalSum
	if o.WorstSum > out.WorstSum {
		out.WorstSum = o.WorstSum
	}
	if o.BestSum < out.BestSum {
		out.BestSum = o.BestSum
	}
	out.MeanSum = float64(out.TotalSum) / float64(out.Perms)
	out.Hist = make([]int64, max(len(s.Hist), len(o.Hist)))
	copy(out.Hist, s.Hist)
	for r, c := range o.Hist {
		out.Hist[r] += c
	}
	return out, nil
}

// quotientEligible reports whether g declares an automorphism group the
// quotient path can exploit at its size.
func quotientEligible(g graph.Graph) bool {
	a, ok := g.(graph.Automorphisms)
	return ok && a.Automorphisms().Declares()
}

// Distribution enumerates every identifier permutation of g through the
// sharded sweep engine and returns the exact radius-sum statistics of alg
// over the full n! space. When g declares its automorphism group
// (graph.Automorphisms) and Options.NoQuotient is unset, the engine
// executes only the n!/|G| canonical orbit representatives and folds each
// with orbit weight — the returned Stats are bit-for-bit identical to the
// full fold, just 2n× (cycle) cheaper to compute. The enumeration reuses
// the engine's shared ball atlas and flat decision kernels, so it
// parallelises across all cores and the result is byte-identical at any
// worker count. n is capped at MaxEnumerationN on the quotient path and
// MaxFullEnumerationN on the full path (ErrTooLarge beyond); a cancelled
// context aborts with the sweep's partial-results error.
func Distribution(ctx context.Context, g graph.Graph, alg Algorithm, opt Options) (Stats, error) {
	n := g.N()
	if n < 1 {
		return Stats{}, fmt.Errorf("exact: empty graph")
	}
	quotient := quotientEligible(g) && !opt.NoQuotient
	if n > MaxEnumerationN {
		return Stats{}, fmt.Errorf("exact: n=%d beyond %d: %w", n, MaxEnumerationN, ErrTooLarge)
	}
	if !quotient && n > MaxFullEnumerationN {
		return Stats{}, fmt.Errorf("exact: n=%d beyond %d without a symmetry quotient: %w",
			n, MaxFullEnumerationN, ErrTooLarge)
	}
	res, err := sweep.Run(ctx, sweep.Spec{
		Sizes:      []int{n},
		Exhaustive: true,
		Quotient:   quotient,
		Shard:      opt.Shard,
		Workers:    opt.Workers,
		NoAtlas:    opt.NoAtlas,
		NoKernels:  opt.NoKernels,
		Graph:      func(int, *rand.Rand) (graph.Graph, error) { return g, nil },
		Alg:        alg,
	})
	if err != nil {
		return Stats{}, err
	}
	s := res.Sizes[0]
	st := Stats{
		N:        n,
		Perms:    int64(s.Trials),
		WorstSum: s.WorstAvg.Sum,
		BestSum:  s.BestAvg.Sum,
		TotalSum: s.TotalSum,
		Hist:     s.Hist,
	}
	// A shard sliced thinner than the rank space can be empty; 0/0 must not
	// leak a NaN into a later Merge.
	if s.Trials > 0 {
		st.MeanSum = float64(s.TotalSum) / float64(s.Trials)
	}
	return st, nil
}

// CycleStats enumerates the pruning algorithm over all n! permutations of
// an n-cycle through the engine AND cross-checks the result against the §2
// closed form: the worst sum must equal a(n-1) + floor(n/2) from the
// recurrence, or an error is returned. It is the flagship identity between
// the analytic, exact and engine layers.
func CycleStats(ctx context.Context, n int, opt Options) (Stats, error) {
	if n < 3 {
		return Stats{}, fmt.Errorf("exact: need n >= 3, got %d", n)
	}
	if !opt.Shard.IsZero() {
		return Stats{}, fmt.Errorf("exact: CycleStats needs the full rank space for the recurrence identity; shard via Distribution and Merge instead")
	}
	c, err := graph.NewCycle(n)
	if err != nil {
		return Stats{}, err
	}
	st, err := Distribution(ctx, c, func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }, opt)
	if err != nil {
		return Stats{}, err
	}
	want, err := analytic.WorstCycleSum(n)
	if err != nil {
		return Stats{}, err
	}
	if int64(st.WorstSum) != want {
		return st, fmt.Errorf("exact: enumerated worst sum %d disagrees with recurrence %d at n=%d", st.WorstSum, want, n)
	}
	return st, nil
}

// CycleStatsSequential enumerates all n! permutations with Heap's algorithm
// on one core, folding the closed-form PruningRadii — no engine, no atlas,
// no sharding. It is the independent baseline CycleStats is validated (and
// benchmarked) against.
func CycleStatsSequential(n int) (Stats, error) {
	if n < 3 {
		return Stats{}, fmt.Errorf("exact: need n >= 3, got %d", n)
	}
	if n > MaxFullEnumerationN {
		return Stats{}, fmt.Errorf("exact: n=%d beyond %d: %w", n, MaxFullEnumerationN, ErrTooLarge)
	}
	perm := make(ids.Assignment, n)
	for i := range perm {
		perm[i] = i
	}
	st := Stats{N: n}
	var totalSum int64

	visit := func() {
		sum := 0
		for _, r := range PruningRadii(perm) {
			for len(st.Hist) <= r {
				st.Hist = append(st.Hist, 0)
			}
			st.Hist[r]++
			sum += r
		}
		// Extremes initialise from the first visit, so the -1 sentinels the
		// zero Stats used to carry can never leak into a result.
		if st.Perms == 0 || sum > st.WorstSum {
			st.WorstSum = sum
		}
		if st.Perms == 0 || sum < st.BestSum {
			st.BestSum = sum
		}
		totalSum += int64(sum)
		st.Perms++
	}

	// Heap's algorithm, iterative.
	c := make([]int, n)
	visit()
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			visit()
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	st.TotalSum = totalSum
	st.MeanSum = float64(totalSum) / float64(st.Perms)
	return st, nil
}
