package exact

import (
	"testing"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// FuzzPruningRadiiAgainstEngine differentially fuzzes the closed-form
// radius computation against the full simulator: any byte string is turned
// into a permutation, and the two implementations must agree vertex by
// vertex. Run with `go test -fuzz=FuzzPruningRadii ./internal/exact/`;
// under plain `go test` the seed corpus below runs as regression cases.
func FuzzPruningRadiiAgainstEngine(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{3, 141, 59, 26, 53, 58, 97, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data)
		if n < 3 || n > 48 {
			t.Skip()
		}
		a := permFromBytes(data)
		closed := PruningRadii(a)

		c, err := graph.NewCycle(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := local.RunView(c, a, largestid.Pruning{})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		for v := 0; v < n; v++ {
			if closed[v] != res.Radii[v] {
				t.Fatalf("perm %v vertex %d: closed %d, engine %d", a, v, closed[v], res.Radii[v])
			}
		}
	})
}

// permFromBytes deterministically turns arbitrary bytes into a permutation
// of {0..n-1} via a byte-keyed Fisher-Yates shuffle.
func permFromBytes(data []byte) ids.Assignment {
	n := len(data)
	a := make(ids.Assignment, n)
	for i := range a {
		a[i] = i
	}
	state := uint64(0)
	for _, b := range data {
		state = state*131 + uint64(b) + 17
	}
	for i := n - 1; i > 0; i-- {
		state = state*2862933555777941757 + 3037000493
		j := int(state % uint64(i+1))
		a[i], a[j] = a[j], a[i]
	}
	return a
}
