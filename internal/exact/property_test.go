package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analytic"
	"repro/internal/ids"
)

// TestRecurrenceUpperBoundsEveryPermutation is the a(p) bound as a
// property test: no permutation of any tested size may exceed the
// recurrence prediction — beyond the exhaustive range of CycleStats.
func TestRecurrenceUpperBoundsEveryPermutation(t *testing.T) {
	bounds := map[int]int64{}
	for _, n := range []int{8, 16, 32, 64, 128} {
		w, err := analytic.WorstCycleSum(n)
		if err != nil {
			t.Fatal(err)
		}
		bounds[n] = w
	}
	prop := func(seed int64, pick uint8) bool {
		sizes := []int{8, 16, 32, 64, 128}
		n := sizes[int(pick)%len(sizes)]
		a := ids.Random(n, rand.New(rand.NewSource(seed)))
		sum := 0
		for _, r := range PruningRadii(a) {
			sum += r
		}
		return int64(sum) <= bounds[n]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("recurrence bound violated: %v", err)
	}
}

// TestWorstCyclePermIsTight closes the loop: the reconstructed worst
// permutation achieves the bound that the property test shows nothing
// exceeds.
func TestWorstCyclePermIsTight(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		perm, err := analytic.WorstCyclePerm(n)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ids.FromPerm(perm)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, r := range PruningRadii(a) {
			sum += r
		}
		want, err := analytic.WorstCycleSum(n)
		if err != nil {
			t.Fatal(err)
		}
		if int64(sum) != want {
			t.Errorf("n=%d: reconstructed permutation achieves %d, bound is %d", n, sum, want)
		}
	}
}
