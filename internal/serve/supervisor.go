package serve

// The supervisor loop: one goroutine per running job, restarting its
// in-process lease workers when they die, in the requeue-on-failure
// controller shape. All durable state is the store's per-grain completion
// records, so supervision never risks the result — a worker death, a
// duplicated grain or a replaced wave only costs work, never bytes.
//
// Failure handling, in order of escalation:
//
//   - a worker PANIC is recovered at the goroutine boundary and converted
//     to a *PanicError exit — one worker's bug never kills the daemon;
//   - a worker DEATH (panic or error) restarts that slot after an
//     exponentially backed-off, jittered wait;
//   - the CIRCUIT BREAKER parks the job as failed after MaxAttempts
//     consecutive deaths with no coverage growth in between — graceful
//     degradation instead of a hot crash loop — while a fleet that keeps
//     completing grains between deaths is merely degraded and keeps going;
//   - the WEDGE WATCHDOG handles workers that neither die nor progress:
//     when coverage and lease heartbeats both freeze across two watchdog
//     intervals, the whole wave's context is cancelled, goroutines that
//     refuse to exit are abandoned (their claims expire under the lease
//     protocol and get adopted), and a fresh wave starts.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// PanicError is a recovered worker panic, surfaced as an ordinary worker
// death the supervisor can count.
type PanicError struct {
	// Worker is the executor whose goroutine panicked.
	Worker string
	// Value is the panic value's rendering.
	Value string
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: worker %s panicked: %s", e.Worker, e.Value)
}

// ParkedError is the circuit breaker's verdict: the job failed its
// attempt budget and will not be retried.
type ParkedError struct {
	// Attempts is the consecutive-failure count that tripped the breaker.
	Attempts int
	// Err is the last worker error.
	Err error
}

func (e *ParkedError) Error() string {
	return fmt.Sprintf("serve: parked after %d consecutive worker failures: %v", e.Attempts, e.Err)
}

func (e *ParkedError) Unwrap() error { return e.Err }

// runJob owns one job's life: admission, supervision, terminal state.
func (c *Coordinator) runJob(j *job) {
	defer c.wg.Done()
	// Admission: at most MaxRunning jobs execute at once; the rest wait
	// here, still answering status queries as "queued".
	select {
	case c.slots <- struct{}{}:
	case <-c.ctx.Done():
		return // still queued; a restarted coordinator resumes it
	}
	defer func() { <-c.slots }()
	j.setState(StateRunning)
	c.logf("job %s: running", j.key)

	ctx := c.ctx
	cancel := context.CancelFunc(func() {})
	if c.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.opts.JobTimeout)
	}
	defer cancel()

	table, err := c.supervise(ctx, j)
	c.mu.Lock()
	c.admitted--
	c.mu.Unlock()
	switch {
	case err == nil:
		j.finish(table)
		c.logf("job %s: done (%d bytes)", j.key, len(table))
	case c.ctx.Err() != nil:
		// Coordinator drain, not a job failure: park back to queued. The
		// store keeps every completed grain; Resume picks the job up.
		j.setState(StateQueued)
		c.logf("job %s: drained, returning to queue", j.key)
	default:
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("serve: job exceeded its %v timeout: %w", c.opts.JobTimeout, err)
		}
		j.fail(err)
		c.logf("job %s: failed: %v", j.key, err)
	}
}

// workerExit is one worker goroutine's death certificate.
type workerExit struct {
	wave int
	slot int
	err  error
}

// supervise runs the job's worker fleet to completion, enforcing the
// restart/breaker/watchdog policy, and returns the rendered table bytes.
func (c *Coordinator) supervise(ctx context.Context, j *job) ([]byte, error) {
	// supCtx releases exiting workers once supervision ends, so abandoned
	// goroutines delivering late exits never leak on the send.
	supCtx, supDone := context.WithCancel(context.Background())
	defer supDone()
	exits := make(chan workerExit, c.opts.Workers)

	// RemoteOnly leaves execution to the registered remote fleet: no local
	// workers are spawned, so no exit can signal completion — a poll ticker
	// watches the store's coverage instead.
	localWorkers := c.opts.Workers
	if c.opts.RemoteOnly {
		localWorkers = 0
	}

	// Each wave gets its own cancellable context; cancels are kept so the
	// final defer releases whichever wave is current when supervision ends.
	// MaxAttempts bounds the wave count, so the slice stays tiny.
	wave := 0
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	newWave := func() context.Context {
		wc, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		return wc
	}
	wctx := newWave()
	spawn := func(slot int) {
		id := c.workerID(slot)
		wv, wx := wave, wctx
		go func() {
			err := c.runWorker(wx, j, id)
			select {
			case exits <- workerExit{wave: wv, slot: slot, err: err}:
			case <-supCtx.Done():
			}
		}()
	}
	for slot := 0; slot < localWorkers; slot++ {
		spawn(slot)
	}

	var watch <-chan time.Time
	if c.opts.WedgeTimeout > 0 {
		t := time.NewTicker(c.opts.WedgeTimeout)
		defer t.Stop()
		watch = t.C
	}
	var poll <-chan time.Time
	if localWorkers == 0 {
		t := time.NewTicker(c.opts.PollInterval)
		defer t.Stop()
		poll = t.C
	}

	consecutive := 0 // worker deaths since the last observed coverage growth
	lastCovered := -1
	var lastBeats int64 = -1
	stagnant := 0

	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()

		case e := <-exits:
			if e.wave != wave {
				continue // an abandoned worker's late death; already replaced
			}
			if e.err == nil {
				// The trial space is covered: merge the durable grains and
				// render. Everything here is deterministic, so the bytes
				// equal the single-process CLI run's.
				return c.finishTable(j)
			}
			j.noteRestart(e.err)
			c.restarts.Add(1)
			if cov, _, ok := c.snapshot(j); ok && cov > lastCovered {
				lastCovered = cov
				consecutive = 0
			}
			consecutive++
			c.logf("job %s: worker died (%d consecutive): %v", j.key, consecutive, e.err)
			if consecutive >= c.opts.MaxAttempts {
				return nil, &ParkedError{Attempts: consecutive, Err: e.err}
			}
			if err := c.opts.Restart.Wait(ctx, consecutive-1); err != nil {
				return nil, err
			}
			spawn(e.slot)

		case <-poll:
			// No local workers: completion is decided by the store alone.
			// When every sweep's coverage is full — remote workers put the
			// grains there — merge and serve, exactly as a local worker's
			// clean exit would have.
			if done, err := c.remoteComplete(j); err == nil && done {
				return c.finishTable(j)
			}

		case <-watch:
			cov, beats, ok := c.snapshot(j)
			if !ok {
				continue // store fault: workers will surface it as deaths
			}
			if cov > lastCovered || beats > lastBeats {
				if cov > lastCovered {
					consecutive = 0
				}
				lastCovered, lastBeats = cov, beats
				stagnant = 0
				continue
			}
			if stagnant++; stagnant < 2 {
				continue
			}
			stagnant = 0
			if localWorkers == 0 {
				// There is no local wave to replace: a frozen remote fleet is
				// partitioned, dead, or absent. Count the stall and let the
				// breaker park the job if the fleet never comes back; coverage
				// growth in between (a healed partition, a new worker) resets
				// the count above.
				c.remoteStalls.Add(1)
				err := fmt.Errorf("serve: no remote progress for %v: fleet presumed partitioned or dead (%d live worker(s) on job)",
					2*c.opts.WedgeTimeout, c.liveRemoteWorkersFor(j.key))
				j.noteRestart(err)
				consecutive++
				c.logf("job %s: %v (%d consecutive)", j.key, err, consecutive)
				if consecutive >= c.opts.MaxAttempts {
					return nil, &ParkedError{Attempts: consecutive, Err: err}
				}
				continue
			}
			// Coverage and heartbeats both frozen across two intervals:
			// every worker is presumed wedged. Cancel the wave, abandon
			// whatever refuses to exit (the lease expiry path hands its
			// claims to the replacements), and start fresh workers.
			c.wedges.Add(1)
			err := fmt.Errorf("serve: no progress for %v: worker wave presumed wedged", 2*c.opts.WedgeTimeout)
			j.noteRestart(err)
			consecutive++
			c.logf("job %s: %v (%d consecutive)", j.key, err, consecutive)
			if consecutive >= c.opts.MaxAttempts {
				return nil, &ParkedError{Attempts: consecutive, Err: err}
			}
			cancels[wave]()
			wave++
			wctx = newWave()
			for slot := 0; slot < localWorkers; slot++ {
				spawn(slot)
			}
		}
	}
}

// runWorker executes one lease worker over the job's sweeps, converting
// panics into ordinary errors at the goroutine boundary.
func (c *Coordinator) runWorker(ctx context.Context, j *job, id string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			c.panics.Add(1)
			err = &PanicError{Worker: id, Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	o := sweep.LeaseOptions{Worker: id, GrainsPerSize: c.opts.Grains}
	if c.opts.hookLease != nil {
		c.opts.hookLease(j.key, id, &o)
	}
	_, err = experiments.RunLeasedSweeps(ctx, j.exp, j.cfg, c.opts.Store, o)
	return err
}

// remoteComplete reports whether the store's coverage of the job is
// full — the completion signal when remote workers do the executing. A
// store fault reads as "not yet": the watchdog escalates persistent ones.
func (c *Coordinator) remoteComplete(j *job) (bool, error) {
	progs, err := experiments.LeasedProgress(j.exp, j.cfg, c.opts.Store)
	if err != nil {
		return false, err
	}
	for _, p := range progs {
		if !p.Complete() {
			return false, nil
		}
	}
	return len(progs) > 0, nil
}

// snapshot reads the job's total covered trials and summed lease
// heartbeats from the store — the watchdog's progress signal.
func (c *Coordinator) snapshot(j *job) (covered int, beats int64, ok bool) {
	progs, err := experiments.LeasedProgress(j.exp, j.cfg, c.opts.Store)
	if err != nil {
		return 0, 0, false
	}
	for _, p := range progs {
		covered += p.Covered()
		beats += p.Beats
	}
	return covered, beats, true
}

// finishTable merges the job's completed run and renders exactly the bytes
// `avgbench -e <ID>` prints for the config, caching them in the store
// under the job's content address.
func (c *Coordinator) finishTable(j *job) ([]byte, error) {
	tab, err := experiments.MergeLeased(j.exp, j.cfg, c.opts.Store)
	if err != nil {
		return nil, fmt.Errorf("serve: merge job %s: %w", j.key, err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s\n   claim: %s\n", j.exp.ID, j.exp.Title, j.exp.Claim)
	buf.WriteString(tab.Render())
	buf.WriteByte('\n')
	if err := c.opts.Store.Put(cacheKey(j.key), buf.Bytes()); err != nil {
		// A cache-write fault degrades to serving from memory: this
		// coordinator still answers, the next life recomputes.
		c.logf("job %s: cache write failed: %v", j.key, err)
	}
	return buf.Bytes(), nil
}

func (j *job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) noteRestart(err error) {
	j.mu.Lock()
	j.restarts++
	j.err = err
	j.mu.Unlock()
}

func (j *job) finish(table []byte) {
	j.mu.Lock()
	j.state = StateDone
	j.table = table
	j.err = nil
	j.mu.Unlock()
	close(j.done)
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err
	j.mu.Unlock()
	close(j.done)
}
