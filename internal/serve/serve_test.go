package serve

// The robustness acceptance suite: every scenario checks the same thing —
// that the table a battered coordinator eventually serves is byte-for-byte
// the table a single healthy process computes — plus that degradation is
// graceful (parked, not hot-looped; refused, not queued forever).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// testConfig is small enough to finish in milliseconds but still spans
// multiple sizes and grains.
var testConfig = experiments.Config{Seed: 11, Sizes: []int{16, 24}, Trials: 12}

// cliBytes renders what `avgbench -e <id>` prints for the config — the
// bytes every served table must equal.
func cliBytes(t *testing.T, id string, cfg experiments.Config) []byte {
	t.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
	buf.WriteString(tab.Render())
	buf.WriteByte('\n')
	return buf.Bytes()
}

// fastOptions keeps supervision snappy for tests: quick polls, quick
// restarts, watchdog off unless a test turns it on.
func fastOptions(st sweep.Store) Options {
	return Options{
		Store:        st,
		Workers:      2,
		Grains:       4,
		WedgeTimeout: -1,
		Restart:      sweep.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		hookLease: func(_, _ string, o *sweep.LeaseOptions) {
			o.Poll = time.Millisecond
		},
	}
}

func contextWithTestTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func waitDone(t *testing.T, c *Coordinator, id string) *JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

// A healthy submission runs to done, serves the CLI bytes, and identical
// submissions deduplicate into the same job.
func TestSubmitServesCLIBytesAndDedupes(t *testing.T) {
	st := sweep.NewMemStore()
	c, err := New(fastOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID != experiments.JobKey(mustGet(t, "E6"), testConfig) {
		t.Fatalf("job id = %q, want the normalized-config job key", s1.ID)
	}
	// An identical submission while queued/running joins the same job.
	s2, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID != s1.ID || s2.Submissions != 2 {
		t.Fatalf("dedupe: id %q submissions %d, want %q and 2", s2.ID, s2.Submissions, s1.ID)
	}
	// Parallelism knobs must not change the identity.
	alt := testConfig
	alt.Workers = 7
	alt.NoAtlas = true
	if s3, err := c.Submit("E6", alt); err != nil || s3.ID != s1.ID {
		t.Fatalf("normalized identity: id %q err %v, want %q", s3.ID, err, s1.ID)
	}
	fin := waitDone(t, c, s1.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	table, err := c.Table(s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(table, want) {
		t.Errorf("served table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want, table)
	}
	// The finished table is durable in the store's result cache.
	if cached, err := st.Get(cacheKey(s1.ID)); err != nil || !bytes.Equal(cached, table) {
		t.Errorf("cached table = %d bytes, %v; want the served bytes", len(cached), err)
	}
}

// Submissions that cannot become jobs are refused with useful errors.
func TestSubmitRejections(t *testing.T) {
	c, err := New(fastOptions(sweep.NewMemStore()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("E99", testConfig); err == nil {
		t.Error("unknown experiment: want error")
	}
	var unknown *experiments.UnknownExperimentError
	if _, err := c.Submit("E99", testConfig); !errors.As(err, &unknown) {
		t.Errorf("unknown experiment error = %v, want *UnknownExperimentError", err)
	}
}

// A worker panic mid-grain is recovered, the slot restarts, and the final
// table is still byte-identical: crash-then-resume must not double-count.
func TestWorkerPanicRecoveredMidGrain(t *testing.T) {
	st := sweep.NewMemStore()
	opts := fastOptions(st)
	var bombs atomic.Int64
	bombs.Store(2) // the first two grain executions panic
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		o.Throttle = func(sweep.Block) {
			if bombs.Add(-1) >= 0 {
				panic("injected mid-grain crash")
			}
		}
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, c, s.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done after panic recovery", fin.State, fin.Error)
	}
	if fin.Restarts == 0 {
		t.Error("job survived injected panics with zero recorded restarts")
	}
	if c.panics.Load() == 0 {
		t.Error("panic counter not incremented")
	}
	table, err := c.Table(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(table, want) {
		t.Errorf("post-panic table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want, table)
	}
}

// A job whose workers die every time is parked as failed after MaxAttempts
// consecutive deaths — a circuit breaker, not a hot crash loop.
func TestCircuitBreakerParksPersistentFailure(t *testing.T) {
	st := sweep.NewMemStore()
	opts := fastOptions(st)
	opts.MaxAttempts = 3
	var deaths atomic.Int64
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		o.Throttle = func(sweep.Block) {
			deaths.Add(1)
			panic("injected persistent crash")
		}
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, c, s.ID)
	if fin.State != StateFailed {
		t.Fatalf("state = %s, want failed", fin.State)
	}
	if _, err := c.Table(s.ID); err == nil {
		t.Error("Table of a parked job: want error")
	}
	var parked *ParkedError
	if _, jerr := c.Table(s.ID); !errors.As(jerr, &parked) {
		t.Fatalf("parked job error = %v, want *ParkedError in the chain", jerr)
	}
	if parked.Attempts != 3 {
		t.Errorf("parked after %d attempts, want 3", parked.Attempts)
	}
	var pe *PanicError
	if !errors.As(parked.Err, &pe) {
		t.Errorf("parked cause = %v, want *PanicError", parked.Err)
	}
	// Bounded retries: every worker death executes at most one grain probe,
	// so total injected deaths stay near MaxAttempts, never a hot loop.
	if n := deaths.Load(); n > 10 {
		t.Errorf("%d worker deaths for MaxAttempts=3: retry loop not bounded", n)
	}
	// Resubmitting the parked config reports the parked job, not a retry.
	again, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateFailed || again.ID != s.ID {
		t.Errorf("resubmit of parked job = %s/%s, want same job parked", again.ID, again.State)
	}
}

// Workers that neither die nor progress are detected by the heartbeat
// watchdog, cancelled, and replaced; the job still finishes with the CLI
// bytes because the replacements adopt the wedged claims via lease expiry.
func TestWedgedWorkersCancelledAndReplaced(t *testing.T) {
	st := sweep.NewMemStore()
	opts := fastOptions(st)
	opts.WedgeTimeout = 25 * time.Millisecond
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	var victims atomic.Int64
	victims.Store(int64(opts.Workers)) // the whole first wave wedges
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		if victims.Add(-1) >= 0 {
			o.Throttle = func(sweep.Block) { <-release }
		}
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, c, s.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done after wedge recovery", fin.State, fin.Error)
	}
	if c.wedges.Load() == 0 {
		t.Error("wedge watchdog never fired")
	}
	table, err := c.Table(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(table, want) {
		t.Errorf("post-wedge table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want, table)
	}
}

// The admission queue is bounded: submissions beyond QueueLimit are
// refused with ErrQueueFull instead of growing without bound.
func TestQueueFullBackpressure(t *testing.T) {
	st := sweep.NewMemStore()
	opts := fastOptions(st)
	opts.QueueLimit = 1
	opts.MaxRunning = 1
	gate := make(chan struct{})
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		o.Throttle = func(sweep.Block) { <-gate }
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	other := testConfig
	other.Seed = 99
	if _, err := c.Submit("E6", other); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit = %v, want ErrQueueFull", err)
	}
	// A duplicate of the admitted job still deduplicates — backpressure
	// never refuses work the queue already holds.
	if _, err := c.Submit("E6", testConfig); err != nil {
		t.Fatalf("duplicate submit under full queue: %v", err)
	}
	close(gate)
	if fin := waitDone(t, c, s1.ID); fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	// Capacity freed: new configs are admitted again.
	if _, err := c.Submit("E6", other); err != nil {
		t.Fatalf("submit after drain of queue: %v", err)
	}
}

// Drain refuses new work and stops workers; a second coordinator over the
// same store resumes the interrupted job from its durable grains and still
// serves the CLI bytes. This is the SIGTERM path; the SIGKILL path (no
// Drain at all) is the same minus the courtesy, and the CI smoke covers it
// against a real process.
func TestDrainThenResumeFinishesJob(t *testing.T) {
	st, err := sweep.NewDirStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions(st)
	opts.MaxAttempts = 4
	started := make(chan struct{})
	var once atomic.Bool
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		o.Throttle = func(sweep.Block) {
			if once.CompareAndSwap(false, true) {
				close(started) // first grain reached: some work is durable soon
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	c1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c1.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := c1.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// New work is refused while draining (an existing job's duplicate still
	// deduplicates — that refuses nothing the queue doesn't already hold).
	fresh := testConfig
	fresh.Seed = 42
	if _, err := c1.Submit("E6", fresh); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}

	// Second life: a fresh coordinator over the same store re-attaches.
	c2, err := New(fastOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	n, err := c2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if n == 0 {
		// The first life may have finished and cached the table before the
		// drain won the race; then Resume correctly requeues nothing and a
		// submission is a cache hit.
		s2, err := c2.Submit("E6", testConfig)
		if err != nil {
			t.Fatal(err)
		}
		if !s2.CacheHit {
			t.Fatalf("Resume requeued nothing and submit was no cache hit: %+v", s2)
		}
	}
	fin := waitDone(t, c2, s.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed job state = %s (%s), want done", fin.State, fin.Error)
	}
	table, err := c2.Table(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(table, want) {
		t.Errorf("resumed table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want, table)
	}
}

// A table cached by an earlier coordinator life is served by the next one
// without recomputation, marked as a cache hit.
func TestColdCacheHitAcrossLives(t *testing.T) {
	st, err := sweep.NewDirStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(fastOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c1.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c1, s.ID)
	want, err := c1.Table(s.ID)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := New(fastOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	if s2.State != StateDone || !s2.CacheHit {
		t.Fatalf("second life submit = %s cacheHit=%v, want done cache hit", s2.State, s2.CacheHit)
	}
	got, err := c2.Table(s2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cache-served table differs from computed table")
	}
	// Resume skips runs whose table is already cached.
	c3, err := New(fastOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c3.Resume(); err != nil || n != 0 {
		t.Errorf("Resume over a fully cached store = %d, %v; want 0 requeued", n, err)
	}
}

// A store that vanishes mid-run surfaces as worker deaths the breaker
// counts; the job parks as failed instead of crashing or hot-looping the
// coordinator — and the status API keeps answering without progress.
func TestStoreFaultParksJob(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := sweep.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions(st)
	opts.MaxAttempts = 2
	// One worker: the saboteur is never racing a sibling's Put, whose
	// directory re-creation could resurrect the root it just removed.
	opts.Workers = 1
	var sabotage atomic.Bool
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		o.StoreRetries = 1
		o.Throttle = func(sweep.Block) {
			if sabotage.CompareAndSwap(false, true) {
				os.RemoveAll(root)
			}
		}
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, c, s.ID)
	if fin.State != StateFailed {
		t.Fatalf("state = %s, want failed under a vanished store", fin.State)
	}
	var parked *ParkedError
	if _, jerr := c.Table(s.ID); !errors.As(jerr, &parked) {
		t.Fatalf("faulted-store job error = %v, want *ParkedError", jerr)
	}
	if !errors.Is(parked.Err, fs.ErrNotExist) {
		t.Errorf("parked cause = %v, want the store's fs.ErrNotExist in the chain", parked.Err)
	}
	// Status still answers, degraded to no live progress.
	if js, ok := c.Status(s.ID); !ok || js.State != StateFailed {
		t.Errorf("Status after store fault = %+v, %v", js, ok)
	}
}

func mustGet(t *testing.T, id string) experiments.Experiment {
	t.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
