// Package serve is the resident sweep coordinator behind cmd/sweepd: a
// long-lived service that accepts experiment sweep submissions, keys each
// job by the normalized-config identity internal/experiments computes, and
// serves finished tables from a content-addressed result cache over the
// engine's sweep.Store — identical submissions from any number of clients
// deduplicate to one computation, and a cache hit is byte-identical to the
// avgbench CLI output for the same config.
//
// The robustness core is a supervisor loop over in-process RunLeased
// workers (supervisor.go): per-worker panic recovery, crash restart with
// exponential backoff + jitter, a circuit breaker that parks a job as
// failed after N consecutive worker deaths instead of retrying it in a hot
// loop, a heartbeat watchdog that cancels-and-replaces wedged workers (the
// lease protocol's expiry/steal path reassigns their claims), per-job
// timeouts, and a bounded admission queue with backpressure. Everything a
// worker completes is durable in the store as per-grain completion
// records, so a coordinator that dies — SIGKILL included — re-attaches on
// restart (Resume) and finishes incomplete jobs from wherever their grains
// left off.
//
// Job lifecycle: queued → running → done | failed. A failed job stays
// parked with its last error; resubmitting its config reports the parked
// status rather than re-entering the queue.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Sentinel errors the HTTP layer maps to backpressure responses.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// QueueLimit — 429 with Retry-After, the client's cue to back off.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions while the coordinator shuts down.
	ErrDraining = errors.New("serve: coordinator draining")
)

// Options tunes a Coordinator. The zero value of every field but Store is
// usable.
type Options struct {
	// Store is the shared medium jobs run over (required). Everything
	// durable — grains, manifests, cached tables — lives here, which is
	// why a restarted coordinator can resume from it.
	Store sweep.Store
	// Workers is the number of in-process lease executors per running job
	// (default 2; they steal from each other like any lease fleet).
	Workers int
	// MaxRunning bounds how many jobs execute concurrently; admitted jobs
	// beyond it wait in the queue (default 2).
	MaxRunning int
	// QueueLimit bounds the admitted (queued + running) jobs; submissions
	// beyond it fail with ErrQueueFull (default 64).
	QueueLimit int
	// MaxAttempts is the circuit breaker: a job whose workers die this
	// many times consecutively — without the run's coverage growing in
	// between — is parked as failed with the last error (default 5).
	MaxAttempts int
	// JobTimeout caps one job's wall clock from first execution; expiry
	// parks it as failed (default 0: no limit).
	JobTimeout time.Duration
	// WedgeTimeout is the watchdog interval for heartbeat-driven wedge
	// detection: two consecutive intervals with no coverage growth and no
	// lease heartbeats while workers run cancels and replaces the whole
	// worker wave (default 30s; negative disables the watchdog).
	WedgeTimeout time.Duration
	// Grains is the per-size grain count handed to workers (0 = engine
	// default).
	Grains int
	// RemoteOnly runs jobs without any in-process workers: execution is
	// left entirely to registered remote workers pulling assignments over
	// the worker API, and the supervisor merges when the store's coverage
	// completes (checked every PollInterval).
	RemoteOnly bool
	// WorkerTTL is remote-worker liveness: a worker that has not polled
	// within the TTL is reported dead, and one dark past 2×TTL is forgotten
	// and must re-register (default 10s).
	WorkerTTL time.Duration
	// PollInterval paces the supervisor's completion scan when no local
	// workers run (default 500ms).
	PollInterval time.Duration
	// Restart paces worker restarts after a death (zero value: 100ms
	// base, ×2 growth, 5s cap, jittered).
	Restart sweep.Backoff
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)

	// hookLease, set only by tests, edits each spawned worker's
	// LeaseOptions — the injection point for panics, wedges and store
	// faults.
	hookLease func(jobKey, worker string, o *sweep.LeaseOptions)
}

// Coordinator is the resident sweep service: a deduplicating job queue, a
// supervisor per running job, and a result cache, all over one Store.
type Coordinator struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	slots  chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	admitted int
	draining bool

	// Remote worker registry (workers.go). wmu is ordered after mu: code
	// holding both takes mu first.
	wmu     sync.Mutex
	workers map[string]*remoteWorker

	// Fleet counters, served by /metrics and /healthz.
	submissions atomic.Int64
	cacheHits   atomic.Int64
	restarts    atomic.Int64
	panics      atomic.Int64
	wedges      atomic.Int64

	// Remote-fleet counters.
	remoteRegistered atomic.Int64
	remoteExpired    atomic.Int64
	remoteSteals     atomic.Int64
	remoteStalls     atomic.Int64

	spawnSeq  atomic.Int64
	workerSeq atomic.Int64
}

// job is one deduplicated (experiment, config) computation.
type job struct {
	key  string
	exp  experiments.Experiment
	cfg  experiments.Config
	done chan struct{}

	mu          sync.Mutex
	state       State
	err         error
	table       []byte
	cacheHit    bool
	submissions int
	restarts    int
}

// JobStatus is the JSON shape GET /jobs/{id} serves.
type JobStatus struct {
	ID         string             `json:"id"`
	Experiment string             `json:"experiment"`
	Config     experiments.Config `json:"config"`
	State      State              `json:"state"`
	// Error carries a failed job's last worker error.
	Error string `json:"error,omitempty"`
	// CacheHit marks a job served from the result cache without running.
	CacheHit bool `json:"cacheHit"`
	// Submissions counts how many identical submissions deduplicated into
	// this job.
	Submissions int `json:"submissions"`
	// Restarts counts worker deaths survived over the job's life.
	Restarts int `json:"restarts"`
	// Progress is the live per-size lease-scan coverage of a queued or
	// running job, across the job's sweeps in order.
	Progress []sweep.SizeProgress `json:"progress,omitempty"`
	// RemoteWorkers counts the live registered remote workers currently
	// assigned to this job.
	RemoteWorkers int `json:"remoteWorkers,omitempty"`
}

// New builds a Coordinator over the store. Call Resume to re-attach to
// runs an earlier coordinator left in it.
func New(opts Options) (*Coordinator, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("serve: Options.Store is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.MaxRunning <= 0 {
		opts.MaxRunning = 2
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 64
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.WedgeTimeout == 0 {
		opts.WedgeTimeout = 30 * time.Second
	}
	if opts.WorkerTTL <= 0 {
		opts.WorkerTTL = 10 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if (opts.Restart == sweep.Backoff{}) {
		opts.Restart = sweep.Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Coordinator{
		opts:    opts,
		ctx:     ctx,
		cancel:  cancel,
		slots:   make(chan struct{}, opts.MaxRunning),
		jobs:    make(map[string]*job),
		workers: make(map[string]*remoteWorker),
	}, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// cacheKey is the content address of a finished table: the job key IS the
// content identity (the table is a deterministic function of it).
func cacheKey(jobKey string) string { return "cache/" + jobKey + "/table" }

// Submit enqueues (or deduplicates) a job for the experiment and config.
// Identical normalized configs share one job and one cached table; the
// returned status carries the job's current state — StateDone on a cache
// hit. ErrQueueFull and ErrDraining report backpressure; unknown or
// non-shardable experiments fail with the experiments package's errors.
func (c *Coordinator) Submit(expID string, cfg experiments.Config) (*JobStatus, error) {
	e, err := experiments.Get(strings.ToUpper(expID))
	if err != nil {
		return nil, err
	}
	if !e.Shardable() {
		return nil, fmt.Errorf("serve: %s does not expose its sweeps; it cannot run as a job", e.ID)
	}
	key := experiments.JobKey(e, cfg)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.submissions.Add(1)
	if j, ok := c.jobs[key]; ok {
		j.mu.Lock()
		j.submissions++
		if j.state == StateDone {
			c.cacheHits.Add(1)
		}
		j.mu.Unlock()
		return c.status(j), nil
	}
	// Cold-cache probe: a table cached by a previous coordinator life
	// completes the job without running anything.
	if table, gerr := c.opts.Store.Get(cacheKey(key)); gerr == nil && len(table) > 0 {
		j := newJob(key, e, cfg)
		j.state = StateDone
		j.table = table
		j.cacheHit = true
		close(j.done)
		c.jobs[key] = j
		c.cacheHits.Add(1)
		return c.status(j), nil
	}
	if c.draining {
		return nil, ErrDraining
	}
	if c.admitted >= c.opts.QueueLimit {
		return nil, ErrQueueFull
	}
	j := newJob(key, e, cfg)
	c.jobs[key] = j
	c.admitted++
	c.wg.Add(1)
	go c.runJob(j)
	return c.status(j), nil
}

func newJob(key string, e experiments.Experiment, cfg experiments.Config) *job {
	return &job{key: key, exp: e, cfg: cfg, state: StateQueued,
		submissions: 1, done: make(chan struct{})}
}

// Status returns a job's current status by id (the job key POST /jobs
// returned), or false for an unknown id.
func (c *Coordinator) Status(id string) (*JobStatus, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return c.status(j), true
}

// Table returns a done job's rendered table bytes — exactly the bytes
// `avgbench -e <ID>` prints for the job's config. The error distinguishes
// a job that is not done yet from one parked as failed.
func (c *Coordinator) Table(id string) ([]byte, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.table, nil
	case StateFailed:
		return nil, fmt.Errorf("serve: job %s failed: %w", id, j.err)
	default:
		return nil, fmt.Errorf("serve: job %s is %s; table not ready", id, j.state)
	}
}

// Wait blocks until the job reaches done or failed, the job is unknown, or
// the context fires. It exists for tests and synchronous clients.
func (c *Coordinator) Wait(ctx context.Context, id string) (*JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-j.done:
		return c.status(j), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// status snapshots a job. Queued and running jobs get live lease-scan
// progress; a store fault during the scan degrades to omitting progress
// rather than failing the status read.
func (c *Coordinator) status(j *job) *JobStatus {
	j.mu.Lock()
	s := &JobStatus{
		ID:          j.key,
		Experiment:  j.exp.ID,
		Config:      j.cfg,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Submissions: j.submissions,
		Restarts:    j.restarts,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	j.mu.Unlock()
	if s.State == StateQueued || s.State == StateRunning {
		if progs, err := experiments.LeasedProgress(j.exp, j.cfg, c.opts.Store); err == nil {
			for _, p := range progs {
				s.Progress = append(s.Progress, p.Sizes...)
			}
		}
		s.RemoteWorkers = c.liveRemoteWorkersFor(j.key)
	}
	return s
}

// Resume re-attaches the coordinator to its store: every leased run whose
// manifest names a registered experiment is resubmitted. Complete runs
// merge straight from their durable grains (the supervisor's first worker
// scan finds full coverage), incomplete ones continue from wherever their
// grains left off. Returns how many jobs were requeued.
func (c *Coordinator) Resume() (int, error) {
	runs, err := experiments.DiscoverLeasedRuns(c.opts.Store)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, r := range runs {
		e, err := experiments.Get(r.Manifest.Experiment)
		if err != nil {
			c.logf("resume: skipping run %s: %v", r.Prefix, err)
			continue
		}
		key := experiments.JobKey(e, r.Manifest.Config)
		c.mu.Lock()
		_, known := c.jobs[key]
		c.mu.Unlock()
		if known {
			continue
		}
		if _, err := c.opts.Store.Get(cacheKey(key)); err == nil {
			// Already merged and cached; served lazily on next submit.
			continue
		}
		if _, err := c.Submit(r.Manifest.Experiment, r.Manifest.Config); err != nil {
			c.logf("resume: %s: %v", key, err)
			continue
		}
		c.logf("resume: requeued %s from %s", key, r.Prefix)
		n++
	}
	return n, nil
}

// Drain shuts the coordinator down gracefully: new submissions are
// refused, every worker's context is cancelled (grains already published
// stay durable in the store; only in-flight grain compute is abandoned),
// and running jobs park back to queued so a restarted coordinator resumes
// them. Blocks until the supervisors exit or the context fires.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.cancel()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// JobCounts tallies jobs by state.
func (c *Coordinator) JobCounts() map[State]int {
	counts := map[State]int{}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

// workerID mints a store-name-safe, process-unique lease executor id:
// stale records from a SIGKILLed coordinator's workers can never collide
// with a live worker's.
func (c *Coordinator) workerID(slot int) string {
	return fmt.Sprintf("sweepd-%d-w%d-s%d", os.Getpid(), slot, c.spawnSeq.Add(1))
}
