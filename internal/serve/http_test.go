package serve

// API-level tests over httptest: status codes, backpressure headers, and
// the served table bytes — the same contract the CI smoke exercises
// against a real sweepd process.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, st
}

func TestHTTPJobLifecycle(t *testing.T) {
	c, err := New(fastOptions(sweep.NewMemStore()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"experiment":"E6","config":{"seed":%d,"sizes":[16,24],"trials":%d}}`,
		testConfig.Seed, testConfig.Trials)
	resp, st := postJob(t, srv, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}

	// Poll status until done, as a client would.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		json.NewDecoder(r.Body).Decode(&cur)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/{id} = %d", r.StatusCode)
		}
		if cur.State == StateDone {
			break
		}
		if cur.State == StateFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(srv.URL + "/jobs/" + st.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET table = %d", r.StatusCode)
	}
	var got bytes.Buffer
	got.ReadFrom(r.Body)
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("HTTP table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want, got.Bytes())
	}

	// An identical resubmission answers 200 with the finished job.
	resp2, st2 := postJob(t, srv, body)
	if resp2.StatusCode != http.StatusOK || st2.State != StateDone || st2.ID != st.ID {
		t.Errorf("resubmit = %d %s %s, want 200 done %s", resp2.StatusCode, st2.State, st2.ID, st.ID)
	}
}

func TestHTTPErrors(t *testing.T) {
	c, err := New(fastOptions(sweep.NewMemStore()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"experiment":`, http.StatusBadRequest},
		{"unknown field", `{"experiment":"E6","conf":{}}`, http.StatusBadRequest},
		{"missing experiment", `{"config":{"seed":1}}`, http.StatusBadRequest},
		{"unknown experiment", `{"experiment":"E99","config":{"seed":1}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if resp, _ := postJob(t, srv, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: POST = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if r, err := http.Get(srv.URL + "/jobs/nope"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job = %v, %v; want 404", r.StatusCode, err)
	}
	if r, err := http.Get(srv.URL + "/jobs/nope/table"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown table = %v, %v; want 404", r.StatusCode, err)
	}
}

func TestHTTPBackpressureAndNotReady(t *testing.T) {
	opts := fastOptions(sweep.NewMemStore())
	opts.QueueLimit = 1
	opts.MaxRunning = 1
	gate := make(chan struct{})
	inner := opts.hookLease
	opts.hookLease = func(key, w string, o *sweep.LeaseOptions) {
		inner(key, w, o)
		o.Throttle = func(sweep.Block) { <-gate }
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, st := postJob(t, srv, `{"experiment":"E6","config":{"seed":11,"sizes":[16,24],"trials":12}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d", resp.StatusCode)
	}
	// The running job's table is not ready: 409, not 200 or 500.
	if r, _ := http.Get(srv.URL + "/jobs/" + st.ID + "/table"); r.StatusCode != http.StatusConflict {
		t.Errorf("GET table of running job = %d, want 409", r.StatusCode)
	}
	// The queue is full for new work: 429 with a Retry-After hint.
	resp2, _ := postJob(t, srv, `{"experiment":"E6","config":{"seed":99,"sizes":[16,24],"trials":12}}`)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit POST = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(gate)
	ctx, cancel := contextWithTestTimeout()
	defer cancel()
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	c, err := New(fastOptions(sweep.NewMemStore()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	r, err := http.Get(srv.URL + "/healthz")
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %v, %v; want 200", r.StatusCode, err)
	}
	r.Body.Close()

	s, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTestTimeout()
	defer cancel()
	if _, err := c.Wait(ctx, s.ID); err != nil {
		t.Fatal(err)
	}
	m, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(m.Body)
	for _, want := range []string{
		`sweepd_jobs{state="done"} 1`,
		"sweepd_submissions_total 1",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, body.String())
		}
	}

	// Draining flips healthz to 503.
	ctx2, cancel2 := contextWithTestTimeout()
	defer cancel2()
	if err := c.Drain(ctx2); err != nil {
		t.Fatal(err)
	}
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil || h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz while draining = %v, %v; want 503", h.StatusCode, err)
	}
	h.Body.Close()
}
