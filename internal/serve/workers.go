package serve

// The remote worker registry: the coordinator's view of a fleet of
// sweepworker processes on the far side of a network. Registration is
// soft state — a worker that stops polling past its TTL is merely
// presumed dead and eventually forgotten; everything that matters for
// correctness (grains, leases, completions) is durable in the shared
// store under the lease protocol, which already tolerates executors
// vanishing and reappearing. The registry exists for ASSIGNMENT (which
// job should this worker pull?) and OBSERVABILITY (who is alive, who
// went dark, who is stealing), never for safety.
//
// Polling doubles as the heartbeat: a worker mid-job keeps polling and
// keeps receiving the same assignment idempotently. A worker that comes
// back from a partition longer than 2×TTL finds itself forgotten (404),
// re-registers under a fresh id and carries on — its half-done claims
// expire under the lease protocol and are stolen or adopted, and if it
// still finishes its old grains they deduplicate byte-identically.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// ErrUnknownWorker rejects polls and reports from ids the registry does
// not hold — never registered, expired past 2×TTL, or deregistered. The
// worker's move is to register again.
var ErrUnknownWorker = errors.New("serve: unknown or expired worker; register again")

// WorkerInfo is the JSON shape of one registered remote worker, served
// by GET /workers.
type WorkerInfo struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Live is the TTL verdict: the worker polled within WorkerTTL.
	Live bool `json:"live"`
	// Job is the worker's current assignment, if any.
	Job string `json:"job,omitempty"`
	// Polls counts heartbeats over the registration's life.
	Polls int64 `json:"polls"`
	// Grains and Steals accumulate the lease stats of the worker's done
	// reports.
	Grains int `json:"grains"`
	Steals int `json:"steals"`
	// LastError is the worker's most recent reported run failure.
	LastError string `json:"lastError,omitempty"`
}

// Assignment is what a poll hands a worker: one running job to execute
// over the shared store. A nil assignment means "no work; poll again".
type Assignment struct {
	Job        string             `json:"job"`
	Experiment string             `json:"experiment"`
	Config     experiments.Config `json:"config"`
	// Grains is the coordinator's grain quantization; workers must use it
	// so their plans agree with every other executor's.
	Grains int `json:"grains"`
}

// remoteWorker is one registration record.
type remoteWorker struct {
	id       string
	name     string
	lastBeat time.Time
	job      string
	polls    int64
	grains   int
	steals   int
	lastErr  string
}

// sanitizeWorkerName keeps the store-name-safe characters of a
// client-supplied name so worker ids can appear in lease records.
func sanitizeWorkerName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "worker"
	}
	return b.String()
}

// RegisterWorker admits a remote worker and returns its registration.
// The id is fresh per registration: a worker that re-registers after an
// expiry is a new identity, so stale lease records never collide.
func (c *Coordinator) RegisterWorker(name string) *WorkerInfo {
	id := fmt.Sprintf("r%d-%s", c.workerSeq.Add(1), sanitizeWorkerName(name))
	w := &remoteWorker{id: id, name: sanitizeWorkerName(name), lastBeat: time.Now()}
	c.wmu.Lock()
	c.workers[id] = w
	c.wmu.Unlock()
	c.remoteRegistered.Add(1)
	c.logf("worker %s: registered", id)
	return &WorkerInfo{ID: id, Name: w.name, Live: true}
}

// live reports the TTL verdict for a record at time now.
func (c *Coordinator) live(w *remoteWorker, now time.Time) bool {
	return now.Sub(w.lastBeat) <= c.opts.WorkerTTL
}

// expireWorkersLocked forgets workers dark past 2×TTL. Callers hold wmu.
func (c *Coordinator) expireWorkersLocked(now time.Time) {
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) > 2*c.opts.WorkerTTL {
			delete(c.workers, id)
			c.remoteExpired.Add(1)
			c.logf("worker %s: expired (dark for %v)", id, now.Sub(w.lastBeat).Round(time.Millisecond))
		}
	}
}

// WorkerPoll is the fleet's pull loop: it heartbeats the registration
// and returns the worker's assignment — the same one idempotently while
// its job still runs, a fresh running job otherwise, nil when there is
// no work. Unknown or expired ids get ErrUnknownWorker.
func (c *Coordinator) WorkerPoll(id string) (*Assignment, error) {
	now := time.Now()
	// Lock order is mu → wmu everywhere both are held.
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.expireWorkersLocked(now)
	w, ok := c.workers[id]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastBeat = now
	w.polls++

	if w.job != "" {
		if j, ok := c.jobs[w.job]; ok && jobState(j) == StateRunning {
			return c.assignmentLocked(j), nil
		}
		w.job = "" // finished, parked or gone: pull something new
	}
	j := c.pickJobLocked(now)
	if j == nil {
		return nil, nil
	}
	w.job = j.key
	return c.assignmentLocked(j), nil
}

func jobState(j *job) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (c *Coordinator) assignmentLocked(j *job) *Assignment {
	return &Assignment{Job: j.key, Experiment: j.exp.ID, Config: j.cfg, Grains: c.opts.Grains}
}

// pickJobLocked chooses the running job with the fewest live remote
// workers already on it (ties broken by key for determinism), spreading
// the fleet instead of piling everyone on one job. Callers hold mu+wmu.
func (c *Coordinator) pickJobLocked(now time.Time) *job {
	load := make(map[string]int)
	for _, w := range c.workers {
		if w.job != "" && c.live(w, now) {
			load[w.job]++
		}
	}
	var best *job
	for key, j := range c.jobs {
		if jobState(j) != StateRunning {
			continue
		}
		if best == nil || load[key] < load[best.key] ||
			(load[key] == load[best.key] && key < best.key) {
			best = j
		}
	}
	return best
}

// WorkerDone records a worker's completion report for an assignment:
// the lease stats it accumulated (steals feed the fleet counters) and
// its error, if the run failed. The job's own completion is not decided
// here — the store's coverage is the only authority; the supervisor's
// completion poll merges when the trial space is covered.
func (c *Coordinator) WorkerDone(id, jobKey string, stats sweep.LeaseStats, runErr string) error {
	now := time.Now()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.expireWorkersLocked(now)
	w, ok := c.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	w.lastBeat = now
	if w.job == jobKey {
		w.job = ""
	}
	w.grains += stats.Grains
	w.steals += stats.Steals
	c.remoteSteals.Add(int64(stats.Steals))
	if runErr != "" {
		w.lastErr = runErr
		c.logf("worker %s: job %s failed remotely: %s", id, jobKey, runErr)
	}
	return nil
}

// DeregisterWorker removes a registration — the drain path of a worker
// exiting cleanly. Unknown ids are a no-op: deregistering twice (or
// after an expiry) is fine.
func (c *Coordinator) DeregisterWorker(id string) {
	c.wmu.Lock()
	if _, ok := c.workers[id]; ok {
		delete(c.workers, id)
		c.logf("worker %s: deregistered", id)
	}
	c.wmu.Unlock()
}

// Workers snapshots the registry, expired records pruned, sorted by id.
func (c *Coordinator) Workers() []WorkerInfo {
	now := time.Now()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.expireWorkersLocked(now)
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID: w.id, Name: w.name, Live: c.live(w, now), Job: w.job,
			Polls: w.polls, Grains: w.grains, Steals: w.steals, LastError: w.lastErr,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// liveRemoteWorkersFor counts live workers assigned to a job — the
// per-job fleet gauge in job status and /metrics. Safe to call with or
// without mu held (it only takes wmu).
func (c *Coordinator) liveRemoteWorkersFor(jobKey string) int {
	now := time.Now()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.job == jobKey && c.live(w, now) {
			n++
		}
	}
	return n
}
