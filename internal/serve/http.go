package serve

// The HTTP face of the coordinator: a small JSON API over the job queue,
// plus the two surfaces a remote fleet runs on — the store API and the
// worker registry.
//
//	POST /jobs            {"experiment":"E6","config":{…}} → JobStatus
//	                      202 queued/running · 200 done/failed (idempotent)
//	                      400 bad request · 429 queue full · 503 draining
//	GET  /jobs/{id}       → JobStatus · 404
//	GET  /jobs/{id}/table → the finished table, byte-identical to the
//	                      avgbench CLI · 409 not ready · 500 failed · 404
//	/store/…              → the coordinator's sweep.Store over HTTP
//	                      (sweep.StoreHandler): what remote workers'
//	                      HTTPStores read grains from and publish them to
//	POST /workers         {"name":"…"} → registration (201) with the id
//	                      polls and reports use
//	GET  /workers         → the registry with TTL liveness verdicts
//	POST /workers/{id}/poll → assignment (200) · no work (204) ·
//	                      unknown/expired worker (404): register again
//	POST /workers/{id}/done {"job":…,"stats":…,"error":…} → 204 · 404
//	DELETE /workers/{id}  → 204 (idempotent): a worker draining out
//	GET  /healthz         → 200 ok / 503 draining or store unreachable
//	GET  /metrics         → plain-text fleet counters, local and remote
//
// Backpressure responses carry Retry-After so well-behaved clients pace
// themselves instead of hammering a full queue.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Experiment string             `json:"experiment"`
	Config     experiments.Config `json:"config"`
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/table", c.handleTable)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.Handle("/store/", http.StripPrefix("/store/", sweep.StoreHandler(c.opts.Store)))
	mux.HandleFunc("POST /workers", c.handleRegister)
	mux.HandleFunc("GET /workers", c.handleWorkers)
	mux.HandleFunc("POST /workers/{id}/poll", c.handlePoll)
	mux.HandleFunc("POST /workers/{id}/done", c.handleDone)
	mux.HandleFunc("DELETE /workers/{id}", c.handleDeregister)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad submit body: %w", err))
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: submit needs an experiment id"))
		return
	}
	st, err := c.Submit(req.Experiment, req.Config)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK // terminal already: nothing was enqueued
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := c.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	table, err := c.Table(id)
	if err != nil {
		code := http.StatusConflict // queued/running: retry later
		if st.State == StateFailed {
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(table)
}

// registerRequest is the POST /workers body.
type registerRequest struct {
	Name string `json:"name"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad register body: %w", err))
		return
	}
	if c.Draining() {
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusCreated, c.RegisterWorker(req.Name))
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	a, err := c.WorkerPoll(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownWorker):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case a == nil:
		w.WriteHeader(http.StatusNoContent) // registered, alive, no work
	default:
		writeJSON(w, http.StatusOK, a)
	}
}

// doneRequest is the POST /workers/{id}/done body: the worker's lease
// stats for the assignment, and its error when the run failed.
type doneRequest struct {
	Job   string           `json:"job"`
	Stats sweep.LeaseStats `json:"stats"`
	Error string           `json:"error,omitempty"`
}

func (c *Coordinator) handleDone(w http.ResponseWriter, r *http.Request) {
	var req doneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad done body: %w", err))
		return
	}
	if err := c.WorkerDone(r.PathValue("id"), req.Job, req.Stats, req.Error); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	c.DeregisterWorker(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := c.JobCounts()
	body := map[string]any{"status": "ok", "jobs": counts, "store": "ok"}
	code := http.StatusOK
	// Probe the store: a coordinator whose medium is gone cannot serve
	// workers, however healthy its process looks.
	if _, err := c.opts.Store.List("cache/"); err != nil {
		body["status"] = "store-unreachable"
		body["store"] = err.Error()
		code = http.StatusServiceUnavailable
	}
	if c.Draining() {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := c.JobCounts()
	var b strings.Builder
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		fmt.Fprintf(&b, "sweepd_jobs{state=%q} %d\n", s, counts[s])
	}
	fmt.Fprintf(&b, "sweepd_submissions_total %d\n", c.submissions.Load())
	fmt.Fprintf(&b, "sweepd_cache_hits_total %d\n", c.cacheHits.Load())
	fmt.Fprintf(&b, "sweepd_worker_restarts_total %d\n", c.restarts.Load())
	fmt.Fprintf(&b, "sweepd_worker_panics_total %d\n", c.panics.Load())
	fmt.Fprintf(&b, "sweepd_wedge_recoveries_total %d\n", c.wedges.Load())
	workers := c.Workers()
	live := 0
	perJob := map[string]int{}
	for _, wk := range workers {
		if wk.Live {
			live++
			if wk.Job != "" {
				perJob[wk.Job]++
			}
		}
	}
	fmt.Fprintf(&b, "sweepd_remote_workers_registered_total %d\n", c.remoteRegistered.Load())
	fmt.Fprintf(&b, "sweepd_remote_workers_live %d\n", live)
	fmt.Fprintf(&b, "sweepd_remote_workers_expired_total %d\n", c.remoteExpired.Load())
	fmt.Fprintf(&b, "sweepd_remote_steals_total %d\n", c.remoteSteals.Load())
	fmt.Fprintf(&b, "sweepd_remote_stalls_total %d\n", c.remoteStalls.Load())
	for _, jobKey := range sortedKeys(perJob) {
		fmt.Fprintf(&b, "sweepd_job_remote_workers{job=%q} %d\n", jobKey, perJob[jobKey])
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
