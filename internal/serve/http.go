package serve

// The HTTP face of the coordinator: a small JSON API over the job queue.
//
//	POST /jobs            {"experiment":"E6","config":{…}} → JobStatus
//	                      202 queued/running · 200 done/failed (idempotent)
//	                      400 bad request · 429 queue full · 503 draining
//	GET  /jobs/{id}       → JobStatus · 404
//	GET  /jobs/{id}/table → the finished table, byte-identical to the
//	                      avgbench CLI · 409 not ready · 500 failed · 404
//	GET  /healthz         → 200 ok / 503 draining, with job counts
//	GET  /metrics         → plain-text fleet counters
//
// Backpressure responses carry Retry-After so well-behaved clients pace
// themselves instead of hammering a full queue.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/experiments"
)

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Experiment string             `json:"experiment"`
	Config     experiments.Config `json:"config"`
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/table", c.handleTable)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad submit body: %w", err))
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: submit needs an experiment id"))
		return
	}
	st, err := c.Submit(req.Experiment, req.Config)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK // terminal already: nothing was enqueued
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := c.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	table, err := c.Table(id)
	if err != nil {
		code := http.StatusConflict // queued/running: retry later
		if st.State == StateFailed {
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(table)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := c.JobCounts()
	body := map[string]any{"status": "ok", "jobs": counts}
	code := http.StatusOK
	if c.Draining() {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := c.JobCounts()
	var b strings.Builder
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		fmt.Fprintf(&b, "sweepd_jobs{state=%q} %d\n", s, counts[s])
	}
	fmt.Fprintf(&b, "sweepd_submissions_total %d\n", c.submissions.Load())
	fmt.Fprintf(&b, "sweepd_cache_hits_total %d\n", c.cacheHits.Load())
	fmt.Fprintf(&b, "sweepd_worker_restarts_total %d\n", c.restarts.Load())
	fmt.Fprintf(&b, "sweepd_worker_panics_total %d\n", c.panics.Load())
	fmt.Fprintf(&b, "sweepd_wedge_recoveries_total %d\n", c.wedges.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
