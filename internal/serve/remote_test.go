package serve

// The remote-fleet acceptance suite: registration and assignment over
// the worker API, TTL liveness and expiry, remote-only completion (the
// supervisor merges what a fleet it never spawned put in the store),
// stall parking when the fleet goes dark, and — the core bar — a remote
// run through a fault-injecting chaos proxy serving bytes identical to
// the single-process CLI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/netchaos"
	"repro/internal/sweep"
)

// remoteOptions is fastOptions for a coordinator that spawns no workers.
func remoteOptions(st sweep.Store) Options {
	o := fastOptions(st)
	o.RemoteOnly = true
	o.PollInterval = 2 * time.Millisecond
	o.WorkerTTL = 250 * time.Millisecond
	return o
}

// Registration, polling and assignment: a worker registers, pulls the
// running job idempotently, reports done, and shows up in the registry
// and the job's status.
func TestWorkerRegistrationAndAssignment(t *testing.T) {
	st := sweep.NewMemStore()
	c, err := New(remoteOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	// No work yet: a registered worker polls empty.
	w1 := c.RegisterWorker("alpha")
	if w1.ID == "" || !w1.Live {
		t.Fatalf("registration = %+v", w1)
	}
	if a, err := c.WorkerPoll(w1.ID); err != nil || a != nil {
		t.Fatalf("poll with no jobs = %+v, %v; want nil, nil", a, err)
	}

	js, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	// The job admits and starts running with no local workers.
	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			s, _ := c.Status(js.ID)
			if s.State == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job never reached %s (now %s)", want, s.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitState(StateRunning)

	a, err := c.WorkerPoll(w1.ID)
	if err != nil || a == nil {
		t.Fatalf("poll = %v, %v", a, err)
	}
	if a.Job != js.ID || a.Experiment != "E6" || a.Grains != 4 {
		t.Fatalf("assignment = %+v, want job %s on E6 with 4 grains", a, js.ID)
	}
	// Polling again while the job runs is an idempotent heartbeat.
	a2, err := c.WorkerPoll(w1.ID)
	if err != nil || a2 == nil || a2.Job != a.Job {
		t.Fatalf("re-poll = %+v, %v; want the same assignment", a2, err)
	}
	// The assignment is visible in job status and the registry.
	if s, _ := c.Status(js.ID); s.RemoteWorkers != 1 {
		t.Errorf("status.RemoteWorkers = %d, want 1", s.RemoteWorkers)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Job != js.ID || ws[0].Polls != 3 {
		t.Errorf("registry = %+v, want alpha on the job with 3 polls", ws)
	}

	// A second worker spreads onto the same (only) job.
	w2 := c.RegisterWorker("beta")
	if a3, err := c.WorkerPoll(w2.ID); err != nil || a3 == nil || a3.Job != js.ID {
		t.Fatalf("second worker's poll = %+v, %v", a3, err)
	}

	// Reports from unknown ids bounce; known ones record stats.
	if err := c.WorkerDone("r99-ghost", js.ID, sweep.LeaseStats{}, ""); err != ErrUnknownWorker {
		t.Errorf("done from ghost = %v, want ErrUnknownWorker", err)
	}
	if err := c.WorkerDone(w1.ID, js.ID, sweep.LeaseStats{Grains: 7, Steals: 2}, ""); err != nil {
		t.Fatal(err)
	}
	for _, wk := range c.Workers() {
		if wk.ID == w1.ID && (wk.Grains != 7 || wk.Steals != 2 || wk.Job != "") {
			t.Errorf("after done: %+v, want 7 grains, 2 steals, no assignment", wk)
		}
	}
	if got := c.remoteSteals.Load(); got != 2 {
		t.Errorf("remoteSteals = %d, want 2", got)
	}

	// Deregistration is idempotent and removes the record.
	c.DeregisterWorker(w2.ID)
	c.DeregisterWorker(w2.ID)
	if ws := c.Workers(); len(ws) != 1 || ws[0].ID != w1.ID {
		t.Errorf("registry after deregister = %+v", ws)
	}
}

// TTL liveness: a silent worker turns dead at TTL, is forgotten at 2×TTL,
// and its poll after the purge demands re-registration.
func TestWorkerTTLExpiry(t *testing.T) {
	st := sweep.NewMemStore()
	o := remoteOptions(st)
	o.WorkerTTL = 30 * time.Millisecond
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("quiet")
	deadline := time.Now().Add(5 * time.Second)
	for { // dead at TTL, still listed
		ws := c.Workers()
		if len(ws) == 0 {
			break // already past 2×TTL on a slow machine; fine
		}
		if !ws[0].Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never turned dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for { // forgotten at 2×TTL
		if len(c.Workers()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.remoteExpired.Load() == 0 {
		t.Error("expiry not counted")
	}
	if _, err := c.WorkerPoll(w.ID); err != ErrUnknownWorker {
		t.Errorf("poll after expiry = %v, want ErrUnknownWorker", err)
	}
}

// Remote-only completion: an in-process "remote" executor runs the job
// over an HTTPStore against the coordinator's own /store API — through a
// chaos proxy dropping responses and injecting errors — and the
// supervisor, which spawned nothing, merges and serves the exact CLI
// bytes once coverage completes.
func TestRemoteOnlyJobCompletesThroughChaosProxy(t *testing.T) {
	st := sweep.NewMemStore()
	c, err := New(remoteOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	proxy, err := netchaos.New(srv.URL, netchaos.Faults{Seed: 41, ErrorEvery: 13, DropEvery: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	js, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	w := c.RegisterWorker("inproc")
	var a *Assignment
	deadline := time.Now().Add(5 * time.Second)
	for a == nil {
		if a, err = c.WorkerPoll(w.ID); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("never assigned")
		}
		time.Sleep(time.Millisecond)
	}

	// The worker side, exactly as cmd/sweepworker wires it: a retrying
	// HTTPStore over the chaos proxy.
	e, err := experiments.Get(a.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTestTimeout()
	defer cancel()
	hs := sweep.NewHTTPStore(proxy.URL() + "/store").WithTimeout(5 * time.Second)
	rs := sweep.NewRetryStore(ctx, hs, 5, sweep.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond})
	stats, err := experiments.RunLeasedSweeps(ctx, e, a.Config, rs, sweep.LeaseOptions{
		Worker: w.ID, GrainsPerSize: a.Grains, Poll: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("remote run through chaos proxy: %v", err)
	}
	if err := c.WorkerDone(w.ID, a.Job, stats, ""); err != nil {
		t.Fatal(err)
	}

	fin := waitDone(t, c, js.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	table, err := c.Table(js.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(table, want) {
		t.Errorf("remote table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want, table)
	}
	if ps := proxy.Stats(); ps.Errors == 0 && ps.Drops == 0 {
		t.Errorf("the chaos proxy injected nothing (%+v); the test proved less than it claims", ps)
	}
}

// A remote-only job whose fleet never shows up (or froze behind a
// partition) is parked by the breaker after MaxAttempts stall verdicts,
// and the stalls are counted.
func TestRemoteStallParksJob(t *testing.T) {
	st := sweep.NewMemStore()
	o := remoteOptions(st)
	o.WedgeTimeout = 10 * time.Millisecond
	o.MaxAttempts = 2
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	js, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, c, js.ID)
	if fin.State != StateFailed {
		t.Fatalf("state = %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "no remote progress") {
		t.Errorf("parked error = %q, want a remote-stall diagnosis", fin.Error)
	}
	if c.remoteStalls.Load() < 2 {
		t.Errorf("remoteStalls = %d, want >= 2", c.remoteStalls.Load())
	}
}

// The worker HTTP API end to end: register, poll, done, deregister, the
// registry listing, and the remote counters in /metrics.
func TestWorkerHTTPAPI(t *testing.T) {
	st := sweep.NewMemStore()
	c, err := New(remoteOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	resp, body := post("/workers", `{"name":"api worker/1"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var w WorkerInfo
	if err := json.Unmarshal(body, &w); err != nil {
		t.Fatal(err)
	}
	// The slash and space cannot survive into a store-name-safe id.
	if strings.ContainsAny(w.ID, "/ ") {
		t.Errorf("id %q is not store-name-safe", w.ID)
	}

	resp, _ = post("/workers/"+w.ID+"/poll", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("poll with no jobs: %d, want 204", resp.StatusCode)
	}
	js, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	var a Assignment
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = post("/workers/"+w.ID+"/poll", "")
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &a); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poll never returned an assignment")
		}
		time.Sleep(time.Millisecond)
	}
	if a.Job != js.ID {
		t.Fatalf("assignment %+v, want job %s", a, js.ID)
	}

	resp, body = post("/workers/"+w.ID+"/done",
		fmt.Sprintf(`{"job":%q,"stats":{"Grains":3,"Steals":1},"error":""}`, a.Job))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("done: %d %s", resp.StatusCode, body)
	}

	resp, body = post("/workers/r0-ghost/poll", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost poll: %d %s, want 404", resp.StatusCode, body)
	}

	wresp, err := http.Get(srv.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	wbody, _ := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	var listing struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal(wbody, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Workers) != 1 || listing.Workers[0].Grains != 3 {
		t.Errorf("GET /workers = %s", wbody)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"sweepd_remote_workers_registered_total 1",
		"sweepd_remote_workers_live 1",
		"sweepd_remote_steals_total 1",
		"sweepd_remote_workers_expired_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/workers/"+w.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("deregister: %d", dresp.StatusCode)
	}
	if ws := c.Workers(); len(ws) != 0 {
		t.Errorf("registry after deregister = %+v", ws)
	}
}

// /healthz probes the store: a coordinator whose medium vanished turns
// unhealthy even though its process is fine.
func TestHealthzProbesStore(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := sweep.NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(remoteOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode || !strings.Contains(string(body), wantStatus) {
			t.Errorf("healthz = %d %s, want %d with %q", resp.StatusCode, body, wantCode, wantStatus)
		}
	}
	check(http.StatusOK, `"ok"`)
	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	check(http.StatusServiceUnavailable, "store-unreachable")
}

// Mixed mode still works: local workers and a remote executor share one
// job's lease space, and the table stays byte-identical.
func TestMixedLocalAndRemoteWorkers(t *testing.T) {
	st := sweep.NewMemStore()
	o := fastOptions(st) // local workers ON
	o.WorkerTTL = time.Second
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	js, err := c.Submit("E6", testConfig)
	if err != nil {
		t.Fatal(err)
	}
	// A remote worker joins the same run over HTTP while local workers run.
	w := c.RegisterWorker("helper")
	go func() {
		a, err := c.WorkerPoll(w.ID)
		if err != nil || a == nil {
			return // the local fleet already finished; nothing to help with
		}
		e, gerr := experiments.Get(a.Experiment)
		if gerr != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		hs := sweep.NewHTTPStore(srv.URL + "/store").WithTimeout(5 * time.Second)
		rs := sweep.NewRetryStore(ctx, hs, 3, sweep.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond})
		experiments.RunLeasedSweeps(ctx, e, a.Config, rs, sweep.LeaseOptions{
			Worker: w.ID, GrainsPerSize: a.Grains, Poll: time.Millisecond,
		})
	}()

	fin := waitDone(t, c, js.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	table, err := c.Table(js.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := cliBytes(t, "E6", testConfig); !bytes.Equal(table, want) {
		t.Errorf("mixed-mode table differs from CLI bytes")
	}
}
