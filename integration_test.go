package repro

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linial"
	"repro/internal/local"
	"repro/internal/problems"
)

// TestIntegrationMatrix runs every algorithm on every topology it supports,
// end to end through the public façade, with verified outputs — the
// "does the whole system hang together" sweep.
func TestIntegrationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(90))

	rings := []graph.Graph{graph.MustCycle(5), graph.MustCycle(24), graph.MustCycle(97)}
	tree, err := graph.NewRandomTree(30, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := graph.NewGrid(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	anyTopology := append(append([]graph.Graph{}, rings...), graph.MustPath(19), tree, grid)

	type entry struct {
		name    string
		graphs  []graph.Graph
		alg     func(a ids.Assignment) local.ViewAlgorithm
		problem problems.Problem
	}
	cases := []entry{
		{
			name:    "pruning",
			graphs:  anyTopology,
			alg:     func(ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
			problem: problems.LargestID{},
		},
		{
			name:    "fullview",
			graphs:  anyTopology,
			alg:     func(ids.Assignment) local.ViewAlgorithm { return largestid.FullView{} },
			problem: problems.LargestID{},
		},
		{
			name:    "colevishkin",
			graphs:  rings,
			alg:     func(a ids.Assignment) local.ViewAlgorithm { return coloring.ForMaxID(a.MaxID()) },
			problem: problems.Coloring{K: 3},
		},
		{
			name:    "uniform",
			graphs:  rings,
			alg:     func(ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} },
			problem: problems.Coloring{K: 3},
		},
		{
			name:    "greedy",
			graphs:  anyTopology,
			alg:     func(ids.Assignment) local.ViewAlgorithm { return coloring.FullViewGreedy{} },
			problem: problems.Coloring{K: 5}, // grid max degree 4
		},
		{
			name:   "mis",
			graphs: rings,
			alg: func(a ids.Assignment) local.ViewAlgorithm {
				return mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}
			},
			problem: problems.MIS{},
		},
		{
			name:   "misGreedy",
			graphs: anyTopology,
			alg: func(ids.Assignment) local.ViewAlgorithm {
				return mis.FromColoring{Base: coloring.FullViewGreedy{}}
			},
			problem: problems.MIS{},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for gi, g := range tc.graphs {
				a := ids.Random(g.N(), rng)
				ev, err := core.Evaluate(g, a, tc.alg(a), tc.problem)
				if err != nil {
					t.Fatalf("graph %d (n=%d): %v", gi, g.N(), err)
				}
				if ev.Classic < 0 || ev.Average < 0 {
					t.Fatalf("graph %d: nonsensical measures %+v", gi, ev)
				}
			}
		})
	}
}

// TestIntegrationEngineTriangle runs one algorithm through all three
// engines (view, concurrent message via gather, sequential message) and
// demands agreement.
func TestIntegrationEngineTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := graph.MustCycle(15)
	a := ids.Random(15, rng)
	alg := largestid.Pruning{}

	view, err := local.RunView(g, a, alg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := local.RunMessage(g, a, local.NewGather(alg))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := local.RunMessageSeq(g, a, local.NewGather(alg))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if view.Outputs[v] != conc.Outputs[v] || conc.Outputs[v] != seq.Outputs[v] {
			t.Errorf("vertex %d: outputs diverge across engines", v)
		}
		if conc.Radii[v] != seq.Radii[v] {
			t.Errorf("vertex %d: message engines disagree on rounds", v)
		}
		want := view.Radii[v]
		if want > 0 {
			want++
		}
		if conc.Radii[v] != want {
			t.Errorf("vertex %d: gather offset broken (rounds %d, radius %d)", v, conc.Radii[v], view.Radii[v])
		}
	}
}

// TestIntegrationSynthesizedVsClassic pits the synthesized minimal-radius
// table against Cole-Vishkin on the same instances: same problem, verified
// outputs, strictly smaller radii.
func TestIntegrationSynthesizedVsClassic(t *testing.T) {
	table, err := linial.Synthesize(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustCycle(6)
	a, err := ids.FromPerm([]int{2, 5, 1, 4, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := core.Compare(g, a, table, coloring.ForMaxID(5), problems.Coloring{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.A.Classic >= cmp.B.Classic {
		t.Errorf("synthesized table (max %d) not faster than Cole-Vishkin (max %d)",
			cmp.A.Classic, cmp.B.Classic)
	}
	if cmp.A.Classic != 1 {
		t.Errorf("synthesized table max radius %d, want 1", cmp.A.Classic)
	}
}
