// Command bench2json converts `go test -bench` text output on stdin into a
// JSON array on stdout, so CI can archive benchmark results as a
// machine-readable artifact and the perf trajectory of the sweep engine is
// tracked run over run.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkSweep' -benchmem . | bench2json > BENCH_sweep.json
//
// Context lines (goos/goarch/pkg/cpu) are attached to every subsequent
// result. Unparseable lines are ignored, so PASS/ok trailers and -v noise
// are harmless.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line plus the context it ran under.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	results, err := Parse(bufio.NewScanner(in))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// Parse consumes benchmark output line by line. Exported for the tests.
func Parse(sc *bufio.Scanner) ([]Result, error) {
	var (
		results      = []Result{}
		goos, goarch string
		pkg, cpu     string
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo ... FAIL"
		}
		r := Result{Iterations: iters, Goos: goos, Goarch: goarch, Pkg: pkg, CPU: cpu}
		r.Name, r.Procs = splitProcs(fields[0])
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsOp = val
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// splitProcs separates the "-8" GOMAXPROCS suffix from a benchmark name.
func splitProcs(name string) (string, int) {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i], p
		}
	}
	return name, 0
}
